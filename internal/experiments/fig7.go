package experiments

import (
	"fmt"
	"math"

	"painter/internal/bgp"
	"painter/internal/core"
	"painter/internal/topology"
)

// Fig7Point is one day of the Fig. 7 drift experiment for one budget.
type Fig7Point struct {
	Budget int
	Day    int
	// DynamicDropPct is the % of day-0 benefit lost when UGs may switch
	// prefixes daily (solid lines).
	DynamicDropPct float64
	// StaticDropPct is the loss when each UG keeps its day-0 prefix
	// choice (dashed lines).
	StaticDropPct float64
}

// RunFig7 solves a configuration on day 0 and replays it over `days` of
// latency drift and failures, comparing dynamic vs static prefix choice.
func RunFig7(env *Env, budgets []int, days, iters int) ([]Fig7Point, error) {
	defer env.World.SetDay(0)
	var out []Fig7Point
	for _, budget := range budgets {
		env.World.SetDay(0)
		params := core.DefaultParams(budget)
		params.MaxIterations = iters
		exec := core.NewWorldExecutor(env.World, env.UGs, 0.5, env.Seed+33)
		o, err := core.New(env.Inputs, exec, params)
		if err != nil {
			return nil, err
		}
		cfg, err := o.Solve()
		if err != nil {
			return nil, err
		}

		// Day-0 evaluation and per-UG prefix choice.
		res0, err := core.Evaluate(env.World, env.UGs, cfg)
		if err != nil {
			return nil, err
		}
		if res0.Benefit <= 0 {
			return nil, fmt.Errorf("experiments: fig7 budget %d has no day-0 benefit", budget)
		}
		staticChoice, err := bestPrefixPerUG(env, cfg)
		if err != nil {
			return nil, err
		}

		for day := 1; day <= days; day++ {
			env.World.SetDay(day)
			resD, err := core.Evaluate(env.World, env.UGs, cfg)
			if err != nil {
				return nil, err
			}
			staticBenefit, err := staticChoiceBenefit(env, cfg, staticChoice)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig7Point{
				Budget:         budget,
				Day:            day,
				DynamicDropPct: 100 * math.Max(0, 1-resD.Benefit/res0.Benefit),
				StaticDropPct:  100 * math.Max(0, 1-staticBenefit/res0.Benefit),
			})
		}
	}
	return out, nil
}

// bestPrefixPerUG returns each UG's best prefix index (-1 = anycast) on
// the world's current day.
func bestPrefixPerUG(env *Env, cfg core.Config) (map[int32]int, error) {
	anyLat, _, err := core.AnycastLatencies(env.World, env.UGs)
	if err != nil {
		return nil, err
	}
	choice := make(map[int32]int, env.UGs.Len())
	sels, err := resolveAll(env, cfg)
	if err != nil {
		return nil, err
	}
	for _, ug := range env.UGs.UGs {
		base, ok := anyLat[ug.ID]
		if !ok {
			continue
		}
		best, bestP := base, -1
		for pi, sel := range sels {
			r, ok := sel[ug.ASN]
			if !ok {
				continue
			}
			ms, err := env.World.LatencyMs(ug.ASN, ug.Metro, r.Ingress)
			if err != nil {
				return nil, err
			}
			if ms < best {
				best, bestP = ms, pi
			}
		}
		choice[int32(ug.ID)] = bestP
	}
	return choice, nil
}

// staticChoiceBenefit evaluates Eq. (1) when each UG is stuck with its
// recorded prefix choice on the current day.
func staticChoiceBenefit(env *Env, cfg core.Config, choice map[int32]int) (float64, error) {
	anyLat, _, err := core.AnycastLatencies(env.World, env.UGs)
	if err != nil {
		return 0, err
	}
	sels, err := resolveAll(env, cfg)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, ug := range env.UGs.UGs {
		base, ok := anyLat[ug.ID]
		if !ok {
			continue
		}
		ms := base
		if p, ok := choice[int32(ug.ID)]; ok && p >= 0 && p < len(sels) {
			if r, ok := sels[p][ug.ASN]; ok {
				if v, err := env.World.LatencyMs(ug.ASN, ug.Metro, r.Ingress); err == nil {
					ms = v
				}
			}
		}
		// Static choice can be worse than anycast today: the UG is
		// committed to its day-0 prefix even if it degraded.
		total += ug.Weight * (base - ms)
	}
	return total, nil
}

// Fig7Table renders the drift series.
func Fig7Table(points []Fig7Point) Table {
	t := Table{
		Title:  "Fig 7 — % benefit drop over days (dynamic vs static prefix choice)",
		Header: []string{"budget", "day", "dynamic drop%", "static drop%"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Budget), fmt.Sprintf("%d", p.Day),
			F(p.DynamicDropPct), F(p.StaticDropPct),
		})
	}
	return t
}

// resolveAll resolves every prefix of a config once, returning per-
// prefix route selections.
func resolveAll(env *Env, cfg core.Config) ([]map[topology.ASN]bgp.Route, error) {
	sels := make([]map[topology.ASN]bgp.Route, 0, len(cfg.Prefixes))
	for _, peerings := range cfg.Prefixes {
		sel, err := env.World.ResolveIngress(peerings)
		if err != nil {
			return nil, err
		}
		sels = append(sels, sel)
	}
	return sels, nil
}
