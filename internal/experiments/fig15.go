package experiments

import (
	"fmt"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/netsim"
	"painter/internal/usergroup"
)

// prefixesToReach returns how many leading prefixes of cfg are needed to
// reach the given fraction of the deployment's possible benefit (0 when
// even the full config falls short; callers treat that as "all").
func prefixesToReach(w *netsim.World, ugs *usergroup.Set, cfg advertise.Config, frac float64) (int, error) {
	for n := 1; n <= cfg.NumPrefixes(); n++ {
		partial := advertise.Config{Prefixes: cfg.Prefixes[:n]}
		res, err := core.Evaluate(w, ugs, partial)
		if err != nil {
			return 0, err
		}
		if res.FractionOfPossible() >= frac {
			return n, nil
		}
	}
	return cfg.NumPrefixes(), nil
}

// Fig15aPoint is the prefixes required at one deployment size.
type Fig15aPoint struct {
	// PeerPct is the % of the full deployment's peerings retained.
	PeerPct  float64
	Peerings int
	// Prefixes needed for 90/95/99% of that deployment's possible
	// benefit.
	P90, P95, P99 int
}

// RunFig15a sub-samples the deployment's peerings and measures how many
// prefixes PAINTER needs for fixed benefit levels (Appendix E.2: should
// scale roughly linearly with deployment size).
func RunFig15a(env *Env, pcts []float64, iters int) ([]Fig15aPoint, error) {
	if len(pcts) == 0 {
		pcts = []float64{0.25, 0.5, 0.75, 1.0}
	}
	all := env.Deploy.AllPeeringIDs()
	var out []Fig15aPoint
	for _, pct := range pcts {
		n := int(pct * float64(len(all)))
		if n < 2 {
			n = 2
		}
		// Keep every k-th peering to retain geographic spread.
		var keep []bgp.IngressID
		for i := 0; i < n; i++ {
			keep = append(keep, all[i*len(all)/n])
		}
		sub, err := subDeployment(env.Deploy, keep)
		if err != nil {
			return nil, err
		}
		w, err := netsim.New(env.Graph, sub, env.Seed+2)
		if err != nil {
			return nil, err
		}
		in, covered, err := core.SimInputs(w, env.AllUGs, nil)
		if err != nil {
			return nil, err
		}
		params := core.DefaultParams(len(keep))
		params.MaxIterations = iters
		exec := core.NewWorldExecutor(w, covered, 0.5, env.Seed+66)
		o, err := core.New(in, exec, params)
		if err != nil {
			return nil, err
		}
		cfg, err := o.Solve()
		if err != nil {
			return nil, err
		}
		pt := Fig15aPoint{PeerPct: pct, Peerings: len(keep)}
		if pt.P90, err = prefixesToReach(w, covered, cfg, 0.90); err != nil {
			return nil, err
		}
		if pt.P95, err = prefixesToReach(w, covered, cfg, 0.95); err != nil {
			return nil, err
		}
		if pt.P99, err = prefixesToReach(w, covered, cfg, 0.99); err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// subDeployment builds a deployment containing only the kept peerings
// (PoPs left without peerings are dropped).
func subDeployment(d *cloud.Deployment, keep []bgp.IngressID) (*cloud.Deployment, error) {
	keepSet := make(map[bgp.IngressID]bool, len(keep))
	for _, id := range keep {
		keepSet[id] = true
	}
	var peerings []cloud.Peering
	usedPoPs := make(map[cloud.PoPID]bool)
	for _, pr := range d.Peerings {
		if keepSet[pr.ID] {
			peerings = append(peerings, pr)
			usedPoPs[pr.PoP] = true
		}
	}
	var pops []cloud.PoP
	for _, p := range d.PoPs {
		if usedPoPs[p.ID] {
			pops = append(pops, p)
		}
	}
	return cloud.New(d.ASN, pops, peerings)
}

// Fig15aTable renders the scaling sweep.
func Fig15aTable(rows []Fig15aPoint) Table {
	t := Table{
		Title:  "Fig 15a — prefixes required vs deployment size",
		Header: []string{"% of peerings", "peerings", "90% benefit", "95% benefit", "99% benefit"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			Pct(r.PeerPct), fmt.Sprintf("%d", r.Peerings),
			fmt.Sprintf("%d", r.P90), fmt.Sprintf("%d", r.P95), fmt.Sprintf("%d", r.P99),
		})
	}
	return t
}

// Fig15bPoint is one D_reuse setting's cost/uncertainty tradeoff.
type Fig15bPoint struct {
	ReuseKm float64
	// PrefixesFor99 is the solution cost at this reuse distance.
	PrefixesFor99 int
	// UncertaintyPct is the gap between upper and estimated benefit at
	// the full configuration (fraction of possible benefit).
	UncertaintyPct float64
}

// RunFig15b sweeps D_reuse (Appendix E.2): larger reuse distances admit
// fewer incorrect assumptions (less uncertainty) but require more
// prefixes for the same benefit.
func RunFig15b(env *Env, reuses []float64, iters int) ([]Fig15bPoint, error) {
	if len(reuses) == 0 {
		reuses = []float64{500, 1000, 1500, 2000, 2500, 3000}
	}
	budget := len(env.Deploy.AllPeeringIDs())
	var out []Fig15bPoint
	for _, reuse := range reuses {
		params := core.DefaultParams(budget)
		params.ReuseKm = reuse
		params.MaxIterations = iters
		exec := core.NewWorldExecutor(env.World, env.UGs, 0.5, env.Seed+88)
		o, err := core.New(env.Inputs, exec, params)
		if err != nil {
			return nil, err
		}
		cfg, err := o.Solve()
		if err != nil {
			return nil, err
		}
		pt := Fig15bPoint{ReuseKm: reuse}
		if pt.PrefixesFor99, err = prefixesToReach(env.World, env.UGs, cfg, 0.99); err != nil {
			return nil, err
		}
		rng, err := core.EvaluateRange(env.World, env.UGs, cfg)
		if err != nil {
			return nil, err
		}
		pt.UncertaintyPct = rng.Upper - rng.Estimated
		out = append(out, pt)
	}
	return out, nil
}

// Fig15bTable renders the D_reuse tradeoff.
func Fig15bTable(rows []Fig15bPoint) Table {
	t := Table{
		Title:  "Fig 15b — D_reuse tradeoff: prefixes for 99% benefit vs benefit uncertainty",
		Header: []string{"D_reuse (km)", "prefixes@99%", "uncertainty (% possible)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			F(r.ReuseKm), fmt.Sprintf("%d", r.PrefixesFor99), Pct(r.UncertaintyPct),
		})
	}
	return t
}
