package experiments

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"painter/internal/bgp"
	"painter/internal/netsim/emul"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

// Fig10Config shapes the live failover run. Durations are wall-clock;
// the defaults compress the paper's 128-second timeline into a few
// seconds while keeping every phase (steady state, withdrawal, anycast
// outage, BGP path exploration, reconvergence).
type Fig10Config struct {
	// PreFail is how long the system runs before PoP-A fails.
	PreFail time.Duration
	// PostFail is how long to keep sampling after the failure.
	PostFail time.Duration
	// SampleInterval is the time-series sampling cadence.
	SampleInterval time.Duration
	// ProbeInterval for the TM-Edge.
	ProbeInterval time.Duration
	// AnycastOutage is how long the anycast prefix is unreachable after
	// withdrawal (the paper observed ~1 s).
	AnycastOutage time.Duration
	// ConvergeAfter is when the anycast path settles on its final
	// (higher-latency) route, accompanied by the RIS update spike (~15 s
	// in the paper).
	ConvergeAfter time.Duration
	// Link one-way delays.
	DelayAnycastA, DelayAnycastB time.Duration
	DelayUnicastA, DelayUnicastB time.Duration
}

// DefaultFig10Config returns the compressed timeline.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		PreFail:        1500 * time.Millisecond,
		PostFail:       2500 * time.Millisecond,
		SampleInterval: 100 * time.Millisecond,
		ProbeInterval:  4 * time.Millisecond,
		AnycastOutage:  400 * time.Millisecond,
		ConvergeAfter:  1200 * time.Millisecond,
		DelayAnycastA:  10 * time.Millisecond,
		DelayAnycastB:  16 * time.Millisecond,
		DelayUnicastA:  6 * time.Millisecond,
		DelayUnicastB:  13 * time.Millisecond,
	}
}

// Fig10Sample is one time-series point.
type Fig10Sample struct {
	T time.Duration // since run start
	// RTTMs per prefix name; negative when the destination is dead.
	RTTMs map[string]float64
	// Selected prefix name.
	Selected string
	// BGPUpdates observed by the RIS-like collector in this bucket.
	BGPUpdates int
}

// Fig10Result is the full run outcome.
type Fig10Result struct {
	Samples []Fig10Sample
	// FailAt is when the withdrawal happened (since start).
	FailAt time.Duration
	// DetectedAfter is how long after the failure the edge declared the
	// selected destination dead.
	DetectedAfter time.Duration
	// SwitchedAfter is how long after the failure the edge selected the
	// backup prefix.
	SwitchedAfter time.Duration
	// DetectionRTTs expresses DetectedAfter in units of the dead path's
	// RTT (the paper: typically 1.3 RTT, minimum 0.5).
	DetectionRTTs float64
	// AnycastOutage / ConvergeAfter echo the scenario for reporting.
	AnycastOutage, ConvergeAfter time.Duration
	TotalBGPUpdates              int
}

// RunFig10 stands up the live prototype: two TM-PoPs, four unicast
// prefixes (two per PoP) plus the anycast prefix, all reached through
// latency-emulating UDP links; a BGP speaker pair emulating a RIS
// collector view of the anycast reconvergence; and a TM-Edge that must
// fail over when PoP-A's prefixes are withdrawn.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	popA, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		return nil, err
	}
	defer popA.Close()
	popB, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 2})
	if err != nil {
		return nil, err
	}
	defer popB.Close()

	// Five prefixes: anycast (served by A pre-failure), two unicast at A,
	// two at B.
	mkLink := func(target string, d time.Duration, seed int64) (*emul.Link, error) {
		return emul.NewLink(target, d, seed)
	}
	anycast, err := mkLink(popA.Addr(), cfg.DelayAnycastA, 11)
	if err != nil {
		return nil, err
	}
	defer anycast.Close()
	uniA1, err := mkLink(popA.Addr(), cfg.DelayUnicastA, 12)
	if err != nil {
		return nil, err
	}
	defer uniA1.Close()
	uniA2, err := mkLink(popA.Addr(), cfg.DelayUnicastA+3*time.Millisecond, 13)
	if err != nil {
		return nil, err
	}
	defer uniA2.Close()
	uniB1, err := mkLink(popB.Addr(), cfg.DelayUnicastB, 14)
	if err != nil {
		return nil, err
	}
	defer uniB1.Close()
	uniB2, err := mkLink(popB.Addr(), cfg.DelayUnicastB+6*time.Millisecond, 15)
	if err != nil {
		return nil, err
	}
	defer uniB2.Close()

	names := map[string]string{} // dest key -> prefix name
	mkDest := func(l *emul.Link, pop uint32, name string, anycastFlag bool) tmproto.Destination {
		ap := netip.MustParseAddrPort(l.Addr())
		d := tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: pop, Anycast: anycastFlag}
		names[l.Addr()] = name
		return d
	}
	dests := []tmproto.Destination{
		mkDest(anycast, 1, "1.1.1.0/24 (anycast)", true),
		mkDest(uniA1, 1, "2.2.2.0/24 (PoP-A)", false),
		mkDest(uniA2, 1, "4.4.4.0/24 (PoP-A)", false),
		mkDest(uniB1, 2, "3.3.3.0/24 (PoP-B)", false),
		mkDest(uniB2, 2, "5.5.5.0/24 (PoP-B)", false),
	}

	var failNanos atomic.Int64
	var detectedAfter, switchedAfter atomic.Int64
	var deadRTTMs atomic.Int64 // micro-ms *1000 for precision

	edgeCfg := tm.DefaultEdgeConfig()
	edgeCfg.Destinations = dests
	edgeCfg.ProbeInterval = cfg.ProbeInterval
	// Tolerate Go-timer scheduling jitter: at millisecond probe cadences
	// a single delayed tick must not read as path death.
	edgeCfg.MinFailureTimeout = 3 * cfg.ProbeInterval
	edgeCfg.OnEvent = func(ev tm.Event) {
		f := failNanos.Load()
		if f == 0 {
			return
		}
		since := ev.At.UnixNano() - f
		if since <= 0 {
			// Scheduling jitter can surface a pre-failure event after the
			// withdrawal timestamp is recorded; it is not a detection.
			return
		}
		switch ev.Kind {
		case tm.EventDestDead:
			if ev.Dest.PoP == 1 && !ev.Dest.Anycast && detectedAfter.Load() == 0 {
				detectedAfter.Store(since)
				deadRTTMs.Store(int64(ev.RTT / time.Microsecond))
			}
		case tm.EventSelected:
			if ev.Dest.PoP == 2 && switchedAfter.Load() == 0 {
				switchedAfter.Store(since)
			}
		}
	}
	edge, err := tm.NewEdge(edgeCfg)
	if err != nil {
		return nil, err
	}
	defer edge.Close()

	// RIS-like collector: a BGP session over loopback TCP; the "router"
	// side replays the anycast withdrawal and path-exploration updates.
	collector, router, updates, err := startCollector()
	if err != nil {
		return nil, err
	}
	defer collector.Close()
	defer router.Close()

	res := &Fig10Result{
		AnycastOutage: cfg.AnycastOutage,
		ConvergeAfter: cfg.ConvergeAfter,
		FailAt:        cfg.PreFail,
	}
	start := time.Now()
	ticker := time.NewTicker(cfg.SampleInterval)
	defer ticker.Stop()

	failed := false
	total := cfg.PreFail + cfg.PostFail
	var lastUpdates uint64
	for now := range ticker.C {
		el := now.Sub(start)
		if el >= total {
			break
		}
		if !failed && el >= cfg.PreFail {
			failed = true
			failNanos.Store(time.Now().UnixNano())
			// Withdraw everything at PoP-A: unicast prefixes die; the
			// anycast prefix blackholes then reconverges via PoP-B.
			uniA1.SetDown(true)
			uniA2.SetDown(true)
			anycast.SetDown(true)
			go replayReconvergence(router, cfg)
			go func() {
				time.Sleep(cfg.AnycastOutage)
				anycast.SetDelay(cfg.DelayAnycastB)
				anycast.SetDown(false)
			}()
		}
		sample := Fig10Sample{T: el, RTTMs: make(map[string]float64)}
		for _, ds := range edge.Status() {
			name := names[fmt.Sprintf("%s:%d", ds.Dest.Addr, ds.Dest.Port)]
			if ds.Alive {
				sample.RTTMs[name] = float64(ds.RTT) / float64(time.Millisecond)
			} else {
				sample.RTTMs[name] = -1
			}
			if ds.Selected {
				sample.Selected = name
			}
		}
		cur := updates.Load()
		sample.BGPUpdates = int(cur - lastUpdates)
		lastUpdates = cur
		res.Samples = append(res.Samples, sample)
	}
	res.TotalBGPUpdates = int(updates.Load())
	res.DetectedAfter = time.Duration(detectedAfter.Load())
	res.SwitchedAfter = time.Duration(switchedAfter.Load())
	if rtt := time.Duration(deadRTTMs.Load()) * time.Microsecond; rtt > 0 && res.DetectedAfter > 0 {
		res.DetectionRTTs = float64(res.DetectedAfter) / float64(rtt)
	}
	return res, nil
}

// startCollector starts a RIS-like collector speaker and a router
// speaker connected over loopback TCP, returning an update counter.
func startCollector() (collector, router *bgp.Speaker, updates *atomic.Uint64, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	updates = &atomic.Uint64{}
	accepted := make(chan *bgp.Speaker, 1)
	go func() {
		conn, err := ln.Accept()
		_ = ln.Close()
		if err != nil {
			close(accepted)
			return
		}
		s := bgp.NewSpeaker(conn, 64999, x0a00felix(), 30*time.Second)
		s.OnUpdate = func(bgp.Update) { updates.Add(1) }
		if err := s.Handshake(); err != nil {
			close(accepted)
			return
		}
		go func() { _ = s.Run() }()
		accepted <- s
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, nil, err
	}
	router = bgp.NewSpeaker(conn, 64500, 0x0a000001, 30*time.Second)
	if err := router.Handshake(); err != nil {
		_ = conn.Close()
		return nil, nil, nil, err
	}
	go func() { _ = router.Run() }()
	var ok bool
	collector, ok = <-accepted
	if !ok {
		_ = conn.Close()
		return nil, nil, nil, fmt.Errorf("experiments: collector handshake failed")
	}
	// Announce the anycast prefix once (steady state).
	_ = router.SendUpdate(bgp.Update{
		Origin: bgp.OriginIGP, ASPath: []uint16{64500},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("1.1.1.0/24")},
	})
	return collector, router, updates, nil
}

// 0x0a00felix is a memorable BGP identifier for the collector.
func x0a00felix() uint32 { return 0x0a00f311 }

// replayReconvergence sends the BGP churn a RIS collector would see:
// the withdrawal, a burst of path-exploration announcements spread over
// the convergence window, then the final stable path.
func replayReconvergence(router *bgp.Speaker, cfg Fig10Config) {
	prefix := netip.MustParsePrefix("1.1.1.0/24")
	_ = router.SendUpdate(bgp.Update{Withdrawn: []netip.Prefix{prefix}})
	const explorationUpdates = 24
	var wg sync.WaitGroup
	for i := 0; i < explorationUpdates; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(cfg.ConvergeAfter * time.Duration(i) / explorationUpdates)
			_ = router.SendUpdate(bgp.Update{
				Origin:  bgp.OriginIGP,
				ASPath:  []uint16{64500, uint16(65000 + i%7), uint16(65100 + i%5)},
				NextHop: netip.MustParseAddr("192.0.2.1"),
				NLRI:    []netip.Prefix{prefix},
			})
		}(i)
	}
	wg.Wait()
	_ = router.SendUpdate(bgp.Update{
		Origin: bgp.OriginIGP, ASPath: []uint16{64500, 65001},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{prefix},
	})
}

// Fig10Table renders the time series.
func Fig10Table(r *Fig10Result) Table {
	t := Table{
		Title: fmt.Sprintf("Fig 10 — failover time series (fail@%v, detected +%v = %.2f RTT, switched +%v, BGP updates %d)",
			r.FailAt, r.DetectedAfter, r.DetectionRTTs, r.SwitchedAfter, r.TotalBGPUpdates),
		Header: []string{"t", "selected", "bgp-upd", "anycast", "2.2.2.0 (A)", "3.3.3.0 (B)"},
	}
	for _, s := range r.Samples {
		rtt := func(name string) string {
			for k, v := range s.RTTMs {
				if len(k) >= len(name) && k[:len(name)] == name {
					if v < 0 {
						return "DOWN"
					}
					return F(v)
				}
			}
			return "?"
		}
		t.Rows = append(t.Rows, []string{
			s.T.Truncate(time.Millisecond).String(), s.Selected,
			fmt.Sprintf("%d", s.BGPUpdates),
			rtt("1.1.1.0"), rtt("2.2.2.0"), rtt("3.3.3.0"),
		})
	}
	return t
}
