package experiments

import (
	"fmt"

	"painter/internal/sdwan"
	"painter/internal/stats"
)

// Fig11aResult summarizes the path/PoP diversity CDFs of §5.2.4.
type Fig11aResult struct {
	// PathDiffCDF is the CDF of (PAINTER lower-bound paths − SD-WAN
	// paths) per UG; PathDiffUpperCDF uses the all-policy-compliant
	// upper bound; PoPDiffCDF is (PAINTER PoPs − SD-WAN PoPs).
	PathDiffCDF, PathDiffUpperCDF, PoPDiffCDF *stats.CDF
	// MedianExtraPaths is the headline "PAINTER exposes N more paths for
	// most UGs" number.
	MedianExtraPaths float64
	// FracUGsWithMorePaths is the fraction of UGs where PAINTER exposes
	// strictly more paths.
	FracUGsWithMorePaths float64
}

// RunFig11a computes the Fig. 11a distributions.
func RunFig11a(env *Env) (Fig11aResult, error) {
	an, err := sdwan.NewAnalyzer(env.World, env.UGs)
	if err != nil {
		return Fig11aResult{}, err
	}
	var lower, upper, pops []float64
	more := 0
	for _, u := range env.UGs.UGs {
		pc, err := an.Counts(u)
		if err != nil {
			return Fig11aResult{}, err
		}
		lower = append(lower, float64(pc.PainterLower-pc.SDWAN))
		upper = append(upper, float64(pc.PainterUpper-pc.SDWAN))
		pops = append(pops, float64(pc.PainterPoPs-pc.SDWANPoPs))
		if pc.PainterLower > pc.SDWAN {
			more++
		}
	}
	res := Fig11aResult{
		PathDiffCDF:      stats.NewCDF(lower),
		PathDiffUpperCDF: stats.NewCDF(upper),
		PoPDiffCDF:       stats.NewCDF(pops),
	}
	if med, err := stats.Median(lower); err == nil {
		res.MedianExtraPaths = med
	}
	if len(lower) > 0 {
		res.FracUGsWithMorePaths = float64(more) / float64(len(lower))
	}
	return res, nil
}

// Fig11aTable renders the CDFs at standard quantiles.
func Fig11aTable(r Fig11aResult) Table {
	t := Table{
		Title:  "Fig 11a — exposed paths/PoPs difference (PAINTER - SD-WAN), quantiles",
		Header: []string{"quantile", "best-paths diff", "all-paths diff", "PoPs diff"},
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		l, _ := r.PathDiffCDF.Quantile(q)
		u, _ := r.PathDiffUpperCDF.Quantile(q)
		p, _ := r.PoPDiffCDF.Quantile(q)
		t.Rows = append(t.Rows, []string{Pct(q), F(l), F(u), F(p)})
	}
	t.Rows = append(t.Rows, []string{"UGs w/ more paths", Pct(r.FracUGsWithMorePaths), "", ""})
	return t
}

// Fig11bResult is the avoidance comparison of Fig. 11b.
type Fig11bResult struct {
	PainterCDF, SDWANCDF *stats.CDF
	// FullAvoidance: fraction of UGs for which ALL default-path ASes can
	// be avoided (paper: PAINTER 90.7%, SD-WAN 69.5%).
	PainterFullAvoid, SDWANFullAvoid float64
}

// RunFig11b computes Fig. 11b.
func RunFig11b(env *Env) (Fig11bResult, error) {
	an, err := sdwan.NewAnalyzer(env.World, env.UGs)
	if err != nil {
		return Fig11bResult{}, err
	}
	var ps, ss []float64
	pFull, sFull := 0, 0
	for _, u := range env.UGs.UGs {
		p, s, err := an.AvoidanceFractions(u)
		if err != nil {
			return Fig11bResult{}, err
		}
		ps = append(ps, p)
		ss = append(ss, s)
		if p >= 1 {
			pFull++
		}
		if s >= 1 {
			sFull++
		}
	}
	res := Fig11bResult{PainterCDF: stats.NewCDF(ps), SDWANCDF: stats.NewCDF(ss)}
	if len(ps) > 0 {
		res.PainterFullAvoid = float64(pFull) / float64(len(ps))
		res.SDWANFullAvoid = float64(sFull) / float64(len(ss))
	}
	return res, nil
}

// Fig11bTable renders the avoidance CDF summary.
func Fig11bTable(r Fig11bResult) Table {
	t := Table{
		Title:  "Fig 11b — fraction of default-path ASes avoidable",
		Header: []string{"metric", "PAINTER", "SD-WAN"},
	}
	for _, q := range []float64{0.1, 0.25, 0.5} {
		p, _ := r.PainterCDF.Quantile(q)
		s, _ := r.SDWANCDF.Quantile(q)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("q%.0f avoid frac", q*100), F(p), F(s)})
	}
	t.Rows = append(t.Rows, []string{"UGs avoiding ALL", Pct(r.PainterFullAvoid), Pct(r.SDWANFullAvoid)})
	return t
}
