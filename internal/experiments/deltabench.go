package experiments

// Delta-vs-full propagation microbenchmark for the BGP engine: a
// deterministic churn chain (peering withdrawals/re-announcements and
// tie-break preference flips) is applied to a full-deployment injection
// set, and every step is computed both ways — PropagateDelta from the
// previous settled Result, and a from-scratch PropagateResult. The two
// are asserted byte-identical per step (the same equivalence the
// differential suite pins), then timed; speedups are bucketed by the
// size of the changed-AS set the delta run reports, i.e. by how much of
// the catchment the event actually moved.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"painter/internal/benchmeta"
	"painter/internal/bgp"
	"painter/internal/netsim"
	"painter/internal/stats"
	"painter/internal/topology"
)

// DeltaBenchConfig parameterizes the benchmark.
type DeltaBenchConfig struct {
	// Seed drives the event chain.
	Seed int64
	// Trials is the number of timed propagation steps (default 60).
	Trials int
	// Reps is how many times each propagation is re-run per trial, the
	// minimum duration winning (default 3; both engines are pure, so
	// repeats see identical inputs).
	Reps int
}

// DeltaBucket is one changed-set-size class of trials.
type DeltaBucket struct {
	Label         string  `json:"label"`
	Trials        int     `json:"trials"`
	DeltaMedianUs float64 `json:"delta_median_us"`
	FullMedianUs  float64 `json:"full_median_us"`
	MedianSpeedup float64 `json:"median_speedup"`
}

// DeltaBenchResult is the benchmark outcome; it marshals directly to
// BENCH_DELTA.json. Meta stays zero here (deterministic library code);
// cmd/painter-bench stamps it just before writing.
type DeltaBenchResult struct {
	benchmeta.Meta
	Scale    string `json:"scale"`
	Seed     int64  `json:"seed"`
	ASes     int    `json:"ases"`
	Peerings int    `json:"peerings"`
	Trials   int    `json:"trials"`

	Buckets []DeltaBucket `json:"buckets"`

	OverallDeltaMedianUs float64 `json:"overall_delta_median_us"`
	OverallFullMedianUs  float64 `json:"overall_full_median_us"`
	OverallMedianSpeedup float64 `json:"overall_median_speedup"`
}

// deltaBucketEdges classify a trial by |changed|: exclusive upper
// bounds, with the last bucket unbounded.
var deltaBucketEdges = []struct {
	label string
	max   int // inclusive; -1 = unbounded
}{
	{"0", 0},
	{"1-10", 10},
	{"11-100", 100},
	{"101-1000", 1000},
	{">1000", -1},
}

func deltaBucketOf(changed int) int {
	for i, b := range deltaBucketEdges {
		if b.max < 0 || changed <= b.max {
			return i
		}
	}
	return len(deltaBucketEdges) - 1
}

// RunDeltaBench runs the delta-vs-full propagation chain.
func RunDeltaBench(env *Env, cfg DeltaBenchConfig) (*DeltaBenchResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 60
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	// Private world: pref-flip trials mutate hidden preferences, and the
	// bench must not perturb an Env shared with other experiments.
	w, err := netsim.New(env.Graph, env.Deploy, env.Seed+2)
	if err != nil {
		return nil, err
	}
	ids := env.Deploy.AllPeeringIDs()
	ugs := env.AllUGs.UGs
	rng := stats.NewRand(cfg.Seed + 0xde17a)

	full := append([]bgp.IngressID(nil), ids...)
	inj, err := env.Deploy.Injections(full)
	if err != nil {
		return nil, err
	}
	tb := w.TieBreaker()
	prev, err := bgp.PropagateResult(env.Graph, inj, tb)
	if err != nil {
		return nil, err
	}

	res := &DeltaBenchResult{
		Scale: env.Scale.String(), Seed: cfg.Seed,
		ASes: env.Graph.Len(), Peerings: len(ids),
	}
	// held lists the peerings that actually win catchment under the full
	// announcement (ascending for determinism). Withdrawals are biased
	// toward these — withdrawing a peering nobody selected moves nothing
	// and would pile every trial into the "0" bucket.
	var held []bgp.IngressID
	{
		seen := map[bgp.IngressID]bool{}
		for _, r := range prev.Selections() {
			seen[r.Ingress] = true
		}
		for _, id := range ids {
			if seen[id] {
				held = append(held, id)
			}
		}
	}
	idPos := make(map[bgp.IngressID]int, len(ids))
	for k, id := range ids {
		idPos[id] = k
	}
	type sample struct {
		bucket          int
		deltaUs, fullUs float64
	}
	var samples []sample

	// Each step perturbs the injection set or the tie-breaker, then
	// chains: the delta result becomes the next step's base, so bases at
	// every catchment distance occur, not just one-off repairs of the
	// same snapshot.
	down := false // a withdrawal is outstanding; next step re-announces
	for t := 0; t < cfg.Trials; t++ {
		var stepInj []bgp.Injection
		var flipped []topology.ASN
		switch {
		case down:
			// Re-announce the withdrawn peerings: back to the full set.
			stepInj = inj
			down = false
		default:
			switch rng.Intn(3) {
			case 0:
				// Withdraw 1, 2, 4, or 8 peerings, mostly catchment
				// holders, so changed-set sizes span the buckets.
				n := 1 << rng.Intn(4)
				if n > len(ids)-1 {
					n = len(ids) - 1
				}
				omit := map[int]bool{}
				for len(omit) < n {
					var id bgp.IngressID
					if len(held) > 0 && rng.Intn(3) > 0 {
						id = held[rng.Intn(len(held))]
					} else {
						id = ids[rng.Intn(len(ids))]
					}
					omit[idPos[id]] = true
				}
				sub := make([]bgp.IngressID, 0, len(ids)-n)
				for k, id := range ids {
					if !omit[k] {
						sub = append(sub, id)
					}
				}
				stepInj, err = env.Deploy.Injections(sub)
				if err != nil {
					return nil, err
				}
				down = true
			case 1:
				// Flip one AS's hidden tie-break preference.
				as := ugs[rng.Intn(len(ugs))].ASN
				ev := netsim.Event{Kind: netsim.EventPrefFlip, AS: as, Ingress: ids[rng.Intn(len(ids))]}
				if err := w.ApplyEvent(ev); err != nil {
					return nil, err
				}
				stepInj = inj
				flipped = []topology.ASN{as}
			default:
				// No-op step: identical inputs, exercises the zero-work
				// fast path ("0" bucket).
				stepInj = inj
			}
		}

		var cur *bgp.Result
		var changed []topology.ASN
		deltaBest := time.Duration(1<<62 - 1)
		for r := 0; r < cfg.Reps; r++ {
			t0 := time.Now()
			cur, changed, err = bgp.PropagateDelta(prev, env.Graph, stepInj, flipped, tb)
			if d := time.Since(t0); d < deltaBest {
				deltaBest = d
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: delta bench trial %d: %w", t, err)
			}
		}
		var ref *bgp.Result
		fullBest := time.Duration(1<<62 - 1)
		for r := 0; r < cfg.Reps; r++ {
			t0 := time.Now()
			ref, err = bgp.PropagateResult(env.Graph, stepInj, tb)
			if d := time.Since(t0); d < fullBest {
				fullBest = d
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: delta bench trial %d full: %w", t, err)
			}
		}
		if !bytes.Equal(cur.Bytes(), ref.Bytes()) {
			return nil, fmt.Errorf("experiments: delta bench trial %d: delta and full results diverged", t)
		}

		samples = append(samples, sample{
			bucket:  deltaBucketOf(len(changed)),
			deltaUs: float64(deltaBest.Nanoseconds()) / 1e3,
			fullUs:  float64(fullBest.Nanoseconds()) / 1e3,
		})
		res.Trials++
		prev = cur
	}

	var allDelta, allFull, allSpeed []float64
	for bi, edge := range deltaBucketEdges {
		var dUs, fUs, sp []float64
		for _, s := range samples {
			if s.bucket != bi {
				continue
			}
			dUs = append(dUs, s.deltaUs)
			fUs = append(fUs, s.fullUs)
			sp = append(sp, s.fullUs/s.deltaUs)
		}
		if len(dUs) == 0 {
			continue
		}
		res.Buckets = append(res.Buckets, DeltaBucket{
			Label: edge.label, Trials: len(dUs),
			DeltaMedianUs: quantile(dUs, 0.5),
			FullMedianUs:  quantile(fUs, 0.5),
			MedianSpeedup: quantile(sp, 0.5),
		})
	}
	for _, s := range samples {
		allDelta = append(allDelta, s.deltaUs)
		allFull = append(allFull, s.fullUs)
		allSpeed = append(allSpeed, s.fullUs/s.deltaUs)
	}
	res.OverallDeltaMedianUs = quantile(allDelta, 0.5)
	res.OverallFullMedianUs = quantile(allFull, 0.5)
	res.OverallMedianSpeedup = quantile(allSpeed, 0.5)
	return res, nil
}

// Table renders the result for painter-bench.
func (r *DeltaBenchResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("delta vs full propagation (%s scale, %d ASes, %d peerings, %d trials)",
			r.Scale, r.ASes, r.Peerings, r.Trials),
		Header: []string{"changed ASes", "trials", "delta median us", "full median us", "speedup"},
	}
	for _, b := range r.Buckets {
		t.Rows = append(t.Rows, []string{
			b.Label, fmt.Sprintf("%d", b.Trials),
			fmt.Sprintf("%.1f", b.DeltaMedianUs),
			fmt.Sprintf("%.1f", b.FullMedianUs),
			fmt.Sprintf("%.1fx", b.MedianSpeedup),
		})
	}
	t.Rows = append(t.Rows, []string{
		"overall", fmt.Sprintf("%d", r.Trials),
		fmt.Sprintf("%.1f", r.OverallDeltaMedianUs),
		fmt.Sprintf("%.1f", r.OverallFullMedianUs),
		fmt.Sprintf("%.1fx", r.OverallMedianSpeedup),
	})
	return t
}

// WriteJSON writes the result to path as indented JSON.
func (r *DeltaBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
