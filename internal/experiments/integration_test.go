package experiments

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"painter/internal/bgp"
	"painter/internal/core"
	"painter/internal/netsim/emul"
	"painter/internal/routeserver"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

// TestEndToEndControlAndDataPlane wires the whole system together the
// way Fig. 4 draws it:
//
//  1. the Advertisement Orchestrator computes a configuration;
//  2. the configuration is installed: announced over a real BGP session
//     to a route server, and pushed as destination sets into TM-PoPs;
//  3. a TM-Edge resolves its destination set from a TM-PoP over the
//     wire, probes the tunnels, and carries client traffic end to end.
func TestEndToEndControlAndDataPlane(t *testing.T) {
	e := env(t)

	// --- 1. Control plane: solve.
	params := core.DefaultParams(4)
	params.MaxIterations = 1
	orch, err := core.New(e.Inputs, core.NewWorldExecutor(e.World, e.UGs, 0, 1), params)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := orch.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumPrefixes() == 0 {
		t.Fatal("empty configuration")
	}

	// --- 2a. Install: announce prefixes to a route server over BGP.
	rs, err := routeserver.New(routeserver.Config{
		ListenAddr: "127.0.0.1:0", LocalAS: 64999, BGPID: 1, HoldTime: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	conn, err := net.Dial("tcp", rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sp := bgp.NewSpeaker(conn, 64500, 2, 5*time.Second)
	if err := sp.Handshake(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = sp.Run() }()
	defer sp.Close()
	for i := range cfg.Prefixes {
		u := bgp.Update{
			Origin:  bgp.OriginIGP,
			ASPath:  []uint16{64500},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)},
		}
		if err := sp.SendUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && rs.RIB().Size() != cfg.NumPrefixes() {
		time.Sleep(5 * time.Millisecond)
	}
	if rs.RIB().Size() != cfg.NumPrefixes() {
		t.Fatalf("route server learned %d prefixes, want %d", rs.RIB().Size(), cfg.NumPrefixes())
	}

	// --- 2b. Install: one TM-PoP per configured prefix (scaled-down:
	// prefix i terminates at PoP i), each behind a latency link; the
	// first PoP also advertises the full destination set for resolution.
	nPrefixes := cfg.NumPrefixes()
	if nPrefixes > 3 {
		nPrefixes = 3 // keep the socket count reasonable
	}
	pops := make([]*tm.PoP, nPrefixes)
	links := make([]*emul.Link, nPrefixes)
	dests := make([]tmproto.Destination, nPrefixes)
	for i := 0; i < nPrefixes; i++ {
		pop, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: uint32(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		defer pop.Close()
		pops[i] = pop
		link, err := emul.NewLink(pop.Addr(), time.Duration(4+4*i)*time.Millisecond, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		defer link.Close()
		links[i] = link
		ap := netip.MustParseAddrPort(link.Addr())
		dests[i] = tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: uint32(i + 1)}
	}
	pops[0].SetDestinations(dests)

	// --- 3. Data plane: edge resolves the destination set over the wire
	// and carries traffic.
	echo := make(chan []byte, 16)
	edgeCfg := tm.DefaultEdgeConfig()
	edgeCfg.ProbeInterval = 15 * time.Millisecond
	edgeCfg.OnReturn = func(_ tmproto.FlowKey, p []byte) { echo <- p }
	edge, err := tm.NewEdge(edgeCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	if err := edge.ResolveFrom(pops[0].Addr(), "svc", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(edge.Status()); got != nPrefixes {
		t.Fatalf("edge resolved %d destinations, want %d", got, nPrefixes)
	}

	// Wait for selection; the lowest-latency tunnel (PoP 1) must win.
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if d, ok := edge.Selected(); ok && d.PoP == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d, ok := edge.Selected(); !ok || d.PoP != 1 {
		t.Fatalf("edge selected %+v, want PoP 1 (lowest latency)", d)
	}

	flow := tmproto.FlowKey{
		Proto: 6,
		Src:   netip.MustParseAddr("10.1.1.1"), Dst: netip.MustParseAddr("203.0.113.5"),
		SrcPort: 5555, DstPort: 443,
	}
	if err := edge.Send(flow, []byte("end-to-end")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-echo:
		if string(p) != "end-to-end" {
			t.Errorf("echo = %q", p)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no echo through the tunnel")
	}

	// Withdraw the chosen prefix (fail PoP 1): the edge must fail over
	// and traffic must keep flowing — the whole point of the system.
	if nPrefixes >= 2 {
		links[0].SetDown(true)
		deadline = time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if d, ok := edge.Selected(); ok && d.PoP != 1 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if d, ok := edge.Selected(); !ok || d.PoP == 1 {
			t.Fatal("edge did not fail over after withdrawal")
		}
		if err := edge.Send(flow, []byte("after-failover")); err != nil {
			t.Fatal(err)
		}
		select {
		case p := <-echo:
			if string(p) != "after-failover" {
				t.Errorf("echo = %q", p)
			}
		case <-time.After(3 * time.Second):
			t.Fatal("no echo after failover")
		}
	}
}
