package experiments

import (
	"fmt"

	"painter/internal/advertise"
	"painter/internal/core"
	"painter/internal/usergroup"
)

// Fig6aResult is one row of Fig. 6a: at one prefix budget, the
// estimated fraction of possible benefit each strategy attains (Azure-
// scale, simulated/estimated measurements).
type Fig6aResult struct {
	Budget       int
	BudgetFrac   float64
	Painter      core.RangeResult
	OnePerPoP    core.RangeResult
	OnePerPoPR   core.RangeResult
	OnePerPeer   core.RangeResult
	RegionalOnce core.RangeResult // budget-independent; repeated per row
}

// RunFig6a sweeps prefix budgets and evaluates PAINTER against the
// baseline strategies using the Fig. 6a estimated-benefit metric. As in
// the paper, the orchestrator optimizes over the same measurement
// dataset the strategies are evaluated on (the Appendix-C simulated
// measurements ARE the ground truth of this figure); uncertainty comes
// from not knowing which policy-compliant ingress each UG lands on, not
// from measurement error. The Regional baseline is evaluated by ground
// truth and reported in RegionalOnce (the paper found it offered little
// benefit and dropped it from the figure).
func RunFig6a(env *Env, fracs []float64, iters int) ([]Fig6aResult, error) {
	if len(fracs) == 0 {
		fracs = StandardBudgetFracs
	}
	in := env.Inputs
	regional, err := core.EvaluateRange(env.World, env.UGs, advertise.Regional(env.Deploy))
	if err != nil {
		return nil, err
	}
	nPeerings := len(env.Deploy.AllPeeringIDs())
	var out []Fig6aResult
	for _, budget := range env.Budgets(fracs) {
		params := core.DefaultParams(budget)
		params.MaxIterations = iters
		exec := core.NewWorldExecutor(env.World, in.UGs, 0, env.Seed+99)
		o, err := core.New(in, exec, params)
		if err != nil {
			return nil, err
		}
		cfg, err := o.Solve()
		if err != nil {
			return nil, err
		}
		row := Fig6aResult{Budget: budget, BudgetFrac: float64(budget) / float64(nPeerings),
			RegionalOnce: regional}
		if row.Painter, err = core.EvaluateRange(env.World, env.UGs, cfg); err != nil {
			return nil, err
		}
		if row.OnePerPoP, err = core.EvaluateRange(env.World, env.UGs, advertise.OnePerPoP(env.Deploy, budget)); err != nil {
			return nil, err
		}
		if row.OnePerPoPR, err = core.EvaluateRange(env.World, env.UGs, advertise.OnePerPoPWithReuse(env.Deploy, budget, params.ReuseKm)); err != nil {
			return nil, err
		}
		if row.OnePerPeer, err = core.EvaluateRange(env.World, env.UGs, advertise.OnePerPeering(env.Deploy, budget)); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig6aTable renders the results as the paper's series.
func Fig6aTable(rows []Fig6aResult) Table {
	t := Table{
		Title:  "Fig 6a — estimated % of possible benefit vs % prefix budget",
		Header: []string{"budget", "%budget", "PAINTER", "OnePerPeering", "OnePerPoP", "OnePerPoP+Reuse"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Budget), Pct(r.BudgetFrac),
			Pct(r.Painter.Estimated), Pct(r.OnePerPeer.Estimated),
			Pct(r.OnePerPoP.Estimated), Pct(r.OnePerPoPR.Estimated),
		})
	}
	return t
}

// Fig6bResult is one row of Fig. 6b: mean latency improvement (ms) over
// UGs with non-zero improvement, per strategy, on the prototype-scale
// deployment with real (in-world) advertisements.
type Fig6bResult struct {
	Budget     int
	BudgetFrac float64
	// Mean improvement in ms over improved UGs.
	PainterMs, OnePerPeerMs, OnePerPoPMs, OnePerPoPRMs float64
	// ImprovedUGs under PAINTER.
	ImprovedUGs int
}

// RunFig6b sweeps budgets on the PEERING-profile environment with
// direct measurements (prototype mode).
func RunFig6b(env *Env, fracs []float64, iters int) ([]Fig6bResult, error) {
	if len(fracs) == 0 {
		fracs = StandardBudgetFracs
	}
	nPeerings := len(env.Deploy.AllPeeringIDs())

	// The paper averages over "clients that have non-zero improvement":
	// fix that population once, as the UGs improvable at all (positive
	// improvement under the full One-per-Peering exposure), and average
	// every strategy over the same set.
	full, err := core.Evaluate(env.World, env.UGs,
		advertise.OnePerPeering(env.Deploy, nPeerings))
	if err != nil {
		return nil, err
	}
	improvable := make(map[usergroup.ID]bool)
	for id, imp := range full.PerUG {
		if imp > 1e-9 {
			improvable[id] = true
		}
	}
	if len(improvable) == 0 {
		return nil, fmt.Errorf("experiments: no improvable UGs")
	}

	var out []Fig6bResult
	for _, budget := range env.Budgets(fracs) {
		params := core.DefaultParams(budget)
		params.MaxIterations = iters
		exec := core.NewWorldExecutor(env.World, env.UGs, 0.5, env.Seed+77)
		o, err := core.New(env.Inputs, exec, params)
		if err != nil {
			return nil, err
		}
		cfg, err := o.Solve()
		if err != nil {
			return nil, err
		}
		row := Fig6bResult{Budget: budget, BudgetFrac: float64(budget) / float64(nPeerings)}
		eval := func(c advertise.Config) (float64, int, error) {
			res, err := core.Evaluate(env.World, env.UGs, c)
			if err != nil {
				return 0, 0, err
			}
			var sum float64
			n := 0
			for id := range improvable {
				sum += res.PerUG[id]
				if res.PerUG[id] > 1e-9 {
					n++
				}
			}
			return sum / float64(len(improvable)), n, nil
		}
		var n int
		if row.PainterMs, n, err = eval(cfg); err != nil {
			return nil, err
		}
		row.ImprovedUGs = n
		if row.OnePerPeerMs, _, err = eval(advertise.OnePerPeering(env.Deploy, budget)); err != nil {
			return nil, err
		}
		if row.OnePerPoPMs, _, err = eval(advertise.OnePerPoP(env.Deploy, budget)); err != nil {
			return nil, err
		}
		if row.OnePerPoPRMs, _, err = eval(advertise.OnePerPoPWithReuse(env.Deploy, budget, params.ReuseKm)); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig6bTable renders Fig. 6b.
func Fig6bTable(rows []Fig6bResult) Table {
	t := Table{
		Title:  "Fig 6b — mean latency improvement (ms, improved UGs) vs % prefix budget (prototype)",
		Header: []string{"budget", "%budget", "PAINTER", "OnePerPeering", "OnePerPoP", "OnePerPoP+Reuse", "improvedUGs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Budget), Pct(r.BudgetFrac),
			F(r.PainterMs), F(r.OnePerPeerMs), F(r.OnePerPoPMs), F(r.OnePerPoPRMs),
			fmt.Sprintf("%d", r.ImprovedUGs),
		})
	}
	return t
}

// Fig6cResult is one learning-iteration curve point: realized benefit
// plus the pre-execution uncertainty band.
type Fig6cResult struct {
	Iteration                        int
	RealizedBenefitMs                float64
	PredictedMs, LowerMs, UpperMs    float64
	FactsLearned, AdvertisementsUsed int
	// FinalConfigUncertaintyFresh/Learned isolate the learning effect:
	// the final configuration's prediction band width under a fresh
	// (unlearned) routing model vs under the fully learned one. These
	// are identical across rows; the narrowing is the paper's "going
	// from 44 ms uncertainty to 8 ms".
	FinalConfigUncertaintyFresh, FinalConfigUncertaintyLearned float64
}

// RunFig6c runs the orchestrator for several learning iterations at a
// fixed budget and reports the per-iteration realized benefit and
// uncertainty (the shaded bands of Fig. 6c).
func RunFig6c(env *Env, budget, iters int) ([]Fig6cResult, error) {
	params := core.DefaultParams(budget)
	params.MaxIterations = iters
	params.MinIterBenefitGain = -1 // run all iterations for the figure
	// Fig. 6c is about learning correcting a wrong initial model, so the
	// orchestrator starts from Appendix-B/C *estimated* measurements and
	// replaces them with real observations as it iterates.
	in, err := env.EstimatedInputs()
	if err != nil {
		return nil, err
	}
	exec := core.NewWorldExecutor(env.World, in.UGs, 0.5, env.Seed+55)
	o, err := core.New(in, exec, params)
	if err != nil {
		return nil, err
	}
	cfg, err := o.Solve()
	if err != nil {
		return nil, err
	}
	// Isolate learning: predict the final configuration's benefit band
	// with a fresh model vs the learned one.
	_, loL, upL := o.PredictBenefit(cfg)
	fresh, err := core.New(in, nil, params)
	if err != nil {
		return nil, err
	}
	_, loF, upF := fresh.PredictBenefit(cfg)

	var out []Fig6cResult
	for _, rep := range o.Reports() {
		out = append(out, Fig6cResult{
			Iteration:                     rep.Iteration,
			RealizedBenefitMs:             rep.RealizedBenefit,
			PredictedMs:                   rep.PredictedBenefit,
			LowerMs:                       rep.PredictedLower,
			UpperMs:                       rep.PredictedUpper,
			FactsLearned:                  rep.FactsLearned,
			AdvertisementsUsed:            rep.AdvertisementsUsed,
			FinalConfigUncertaintyFresh:   upF - loF,
			FinalConfigUncertaintyLearned: upL - loL,
		})
	}
	return out, nil
}

// Fig6cTable renders Fig. 6c.
func Fig6cTable(rows []Fig6cResult) Table {
	t := Table{
		Title:  "Fig 6c — benefit across learning iterations (uncertainty = upper-lower)",
		Header: []string{"iter", "realized(ms)", "predicted(ms)", "lower", "upper", "uncertainty", "facts", "adverts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Iteration), F(r.RealizedBenefitMs), F(r.PredictedMs),
			F(r.LowerMs), F(r.UpperMs), F(r.UpperMs - r.LowerMs),
			fmt.Sprintf("%d", r.FactsLearned), fmt.Sprintf("%d", r.AdvertisementsUsed),
		})
	}
	if len(rows) > 0 {
		t.Rows = append(t.Rows, []string{
			"final-config uncertainty", "fresh model:", F(rows[0].FinalConfigUncertaintyFresh),
			"learned:", F(rows[0].FinalConfigUncertaintyLearned), "", "", "",
		})
	}
	return t
}

// Fig14Table renders the full benefit ranges (Appendix E.1) from Fig6a
// results.
func Fig14Table(rows []Fig6aResult) Table {
	t := Table{
		Title:  "Fig 14 — benefit ranges (lower/mean/estimated/upper) per strategy",
		Header: []string{"budget", "strategy", "lower", "mean", "estimated", "upper"},
	}
	for _, r := range rows {
		add := func(name string, rr core.RangeResult) {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r.Budget), name,
				Pct(rr.Lower), Pct(rr.Mean), Pct(rr.Estimated), Pct(rr.Upper),
			})
		}
		add(advertise.StrategyPainter, r.Painter)
		add(advertise.StrategyOnePerPeering, r.OnePerPeer)
		add(advertise.StrategyOnePerPoP, r.OnePerPoP)
		add(advertise.StrategyOnePerPoPReuse, r.OnePerPoPR)
	}
	return t
}
