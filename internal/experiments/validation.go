package experiments

import (
	"fmt"

	"painter/internal/bgp"
	"painter/internal/topology"
)

// ComplianceValidation reproduces §3.1's validation of the policy-
// compliance model: the paper derived compliant ingresses from BGP feeds
// and ProbLink-inferred customer cones, then checked them against
// millions of traceroutes, finding only 4% violations.
//
// Here the ground-truth graph plays the Internet; AS paths harvested
// from route propagation play the BGP feeds; topology.InferRelationships
// plays ProbLink; and the observed anycast selections play the
// traceroutes. A violation is an observed ingress that the inferred
// model calls non-compliant.
type ComplianceValidation struct {
	// InferenceAccuracy is the fraction of inferred relationships that
	// match ground truth.
	InferenceAccuracy float64
	// PathsHarvested is how many AS paths fed the inference.
	PathsHarvested int
	// ObservedSelections is how many (UG, ingress) observations were
	// checked.
	ObservedSelections int
	// ViolationRate is the fraction of observations whose ingress the
	// inferred compliance model rejects (paper: 4%).
	ViolationRate float64
	// MeanCompliantSetSize is the average per-AS compliant ingress count
	// under the inferred model.
	MeanCompliantSetSize float64
}

// RunComplianceValidation executes the §3.1 validation on an Env.
func RunComplianceValidation(env *Env) (ComplianceValidation, error) {
	var out ComplianceValidation

	// 1. Harvest AS paths the way BGP feeds expose them: for each
	//    advertised peering, the Via-chains of the anycast propagation.
	sel, err := env.World.ResolveIngress(env.Deploy.AllPeeringIDs())
	if err != nil {
		return out, err
	}
	var paths [][]topology.ASN
	for _, start := range env.Graph.ASNs() {
		r, ok := sel[start]
		if !ok {
			continue
		}
		path := []topology.ASN{start}
		cur := start
		rr := r
		for hops := 0; hops < 32 && rr.Via != cur; hops++ {
			cur = rr.Via
			path = append(path, cur)
			var ok bool
			rr, ok = sel[cur]
			if !ok {
				break
			}
		}
		if len(path) >= 2 {
			paths = append(paths, path)
		}
	}
	out.PathsHarvested = len(paths)
	if len(paths) == 0 {
		return out, fmt.Errorf("experiments: no AS paths harvested")
	}

	// 2. Infer relationships (ProbLink stand-in) and rebuild a graph.
	rels := topology.InferRelationships(paths)
	out.InferenceAccuracy = topology.InferAccuracy(env.Graph, rels)
	inferred, err := topology.BuildFromInferred(rels)
	if err != nil {
		return out, err
	}

	// 3. Compliance under the inferred model, matching §3.1's two rules:
	//    an ingress is compliant if the UG's AS is in the peer's inferred
	//    customer cone (peer-class), or for transit providers, always
	//    ("we add all UGs to customer cones of Azure transit providers").
	compliantInferred := func(asn topology.ASN, ing bgp.IngressID) bool {
		pr := env.Deploy.Peering(ing)
		if pr == nil {
			return false
		}
		if pr.IsTransit() {
			return true
		}
		if !inferred.Has(pr.PeerASN) || !inferred.Has(asn) {
			return false
		}
		return inferred.InCone(pr.PeerASN, asn)
	}

	// 4. Check observed selections ("traceroutes") against the model.
	var total, violations, compliantSum int
	for _, ug := range env.UGs.UGs {
		r, ok := sel[ug.ASN]
		if !ok {
			continue
		}
		total++
		if !compliantInferred(ug.ASN, r.Ingress) {
			violations++
		}
		n := 0
		for _, ing := range env.Deploy.AllPeeringIDs() {
			if compliantInferred(ug.ASN, ing) {
				n++
			}
		}
		compliantSum += n
	}
	out.ObservedSelections = total
	if total > 0 {
		out.ViolationRate = float64(violations) / float64(total)
		out.MeanCompliantSetSize = float64(compliantSum) / float64(total)
	}
	return out, nil
}

// ComplianceValidationTable renders the validation.
func ComplianceValidationTable(v ComplianceValidation) Table {
	return Table{
		Title:  "§3.1 validation — inferred compliance model vs observed routing",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"AS paths harvested", fmt.Sprintf("%d", v.PathsHarvested)},
			{"relationship inference accuracy", Pct(v.InferenceAccuracy)},
			{"observed selections checked", fmt.Sprintf("%d", v.ObservedSelections)},
			{"violation rate (paper: 4%)", Pct(v.ViolationRate)},
			{"mean inferred compliant set size", F(v.MeanCompliantSetSize)},
		},
	}
}
