// Package experiments contains one runner per table/figure in the
// paper's evaluation (§5, appendices). Each runner builds on the shared
// Env (topology + deployment + world + UGs + measurement system) and
// returns a printable result whose rows/series mirror what the paper
// reports. cmd/painter-bench and the top-level benchmarks drive these.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/measurement"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// Scale selects the experiment environment size.
type Scale int

// Scales.
const (
	// ScaleSmall is for unit tests: seconds, not minutes.
	ScaleSmall Scale = iota
	// ScalePEERING mirrors the PEERING/Vultr prototype (§4): 25 PoPs.
	ScalePEERING
	// ScaleAzure mirrors the simulated Azure evaluation: more PoPs,
	// peerings, and UGs.
	ScaleAzure
)

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScalePEERING:
		return "peering"
	case ScaleAzure:
		return "azure"
	default:
		return "scale?"
	}
}

// Env is a fully constructed experiment environment.
type Env struct {
	Scale  Scale
	Graph  *topology.Graph
	Deploy *cloud.Deployment
	World  *netsim.World
	// UGs are the anycast-covered user groups (weights renormalized).
	UGs *usergroup.Set
	// AllUGs is the unfiltered set (needed by coverage metrics).
	AllUGs *usergroup.Set
	// Meas is the Appendix-B/C measurement system.
	Meas *measurement.System
	// Inputs are orchestrator inputs using direct (prototype-style)
	// estimates; use EstimatedInputs for Azure-style estimated inputs.
	Inputs core.Inputs
	Seed   int64
}

// ScaleConfig returns the canonical generation parameters for a scale:
// topology generator config, cloud deployment profile, and UG build
// config. Every consumer of a scale preset (NewEnv, cmd/topogen,
// the scale bench) derives from this one function so sizes never drift.
func ScaleConfig(scale Scale, seed int64) (topology.GenConfig, cloud.Profile, usergroup.Config, error) {
	var gen topology.GenConfig
	var prof cloud.Profile
	ugCfg := usergroup.DefaultConfig()
	ugCfg.Seed = seed + 3
	switch scale {
	case ScaleSmall:
		gen = topology.GenConfig{Seed: seed, Tier1: 4, Tier2: 24, Stubs: 180,
			MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.4, ContentFrac: 0.05}
		prof = cloud.Profile{Name: "small", PoPMetros: 10, PeerFrac: 0.7, TransitProviders: 2, Seed: seed + 1}
	case ScalePEERING:
		gen = topology.GenConfig{Seed: seed, Tier1: 8, Tier2: 70, Stubs: 900,
			MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.35, ContentFrac: 0.05}
		prof = cloud.PEERINGProfile()
		prof.Seed = seed + 1
	case ScaleAzure:
		// Azure scale targets the paper's simulated evaluation sizes:
		// >=10^4 ASes and >=10^5 UGs (§5.1.1).
		gen = topology.GenConfig{Seed: seed, Tier1: 16, Tier2: 240, Stubs: 11000,
			MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.35, ContentFrac: 0.05}
		prof = cloud.AzureProfile()
		prof.Seed = seed + 1
		ugCfg.TargetUGs = 120_000
	default:
		return topology.GenConfig{}, cloud.Profile{}, usergroup.Config{},
			fmt.Errorf("experiments: unknown scale %d", scale)
	}
	return gen, prof, ugCfg, nil
}

// NewEnv constructs an environment at the given scale with a seed.
func NewEnv(scale Scale, seed int64) (*Env, error) {
	gen, prof, ugCfg, err := ScaleConfig(scale, seed)
	if err != nil {
		return nil, err
	}

	g, err := topology.Generate(gen)
	if err != nil {
		return nil, err
	}
	d, err := cloud.Build(g, 64500, prof)
	if err != nil {
		return nil, err
	}
	w, err := netsim.New(g, d, seed+2)
	if err != nil {
		return nil, err
	}
	allUGs, err := usergroup.Build(g, ugCfg)
	if err != nil {
		return nil, err
	}
	in, covered, err := core.SimInputs(w, allUGs, nil)
	if err != nil {
		return nil, err
	}
	mCfg := measurement.DefaultConfig()
	mCfg.Seed = seed + 4
	meas, err := measurement.NewSystem(w, covered, mCfg)
	if err != nil {
		return nil, err
	}
	return &Env{
		Scale: scale, Graph: g, Deploy: d, World: w,
		UGs: covered, AllUGs: allUGs, Meas: meas, Inputs: in, Seed: seed,
	}, nil
}

// EstimatedInputs returns orchestrator inputs whose latency estimates
// come from the Appendix-B/C measurement system instead of direct
// prototype pings — the "Azure measurements" mode of §5.1.1.
func (e *Env) EstimatedInputs() (core.Inputs, error) {
	in, _, err := core.SimInputs(e.World, e.AllUGs, e.Meas.Estimator())
	return in, err
}

// Budgets returns the sweep of prefix budgets used across figures,
// expressed as fractions of the ingress (peering) count, clamped to at
// least 1 prefix and deduplicated.
func (e *Env) Budgets(fracs []float64) []int {
	n := len(e.Deploy.AllPeeringIDs())
	var out []int
	seen := map[int]bool{}
	for _, f := range fracs {
		b := int(f * float64(n))
		if b < 1 {
			b = 1
		}
		if b > n {
			b = n
		}
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}

// StandardBudgetFracs is the x-axis of Fig. 6a/6b/9b/14.
var StandardBudgetFracs = []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0}

// Table is a simple printable result: a header plus rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
