package experiments

import (
	"fmt"
	"sort"

	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/dnssim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// GranularityBuckets are Fig. 9a's precision buckets: the share of a
// PoP's traffic each control unit moves when redirected.
var GranularityBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1.0}

// bucketOf returns the index of the smallest bucket bound >= frac.
func bucketOf(frac float64) int {
	for i, b := range GranularityBuckets {
		if frac <= b {
			return i
		}
	}
	return len(GranularityBuckets) - 1
}

// BucketLabel names a bucket for output.
func BucketLabel(i int) string {
	switch i {
	case 0:
		return "P<=0.01%"
	case 1:
		return "0.01%<P<=0.1%"
	case 2:
		return "0.1%<P<=1%"
	case 3:
		return "1%<P<=10%"
	default:
		return "10%<P<=100%"
	}
}

// Fig9aRow is the granularity distribution at one PoP (or "All") for
// one steering mechanism: fraction of traffic volume controlled at each
// bucket granularity.
type Fig9aRow struct {
	PoP       string // PoP metro or "All"
	Mechanism string // "bgp", "dns", "painter"
	Buckets   [5]float64
}

// RunFig9a computes, for the whole deployment and the top-10 PoPs by
// volume, the granularity at which BGP ((peering, user AS) groups), DNS
// (recursive resolver populations), and PAINTER (individual flows)
// control ingress traffic.
func RunFig9a(env *Env) ([]Fig9aRow, error) {
	sel, err := env.World.ResolveIngress(env.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, err
	}
	// Traffic decomposition: per UG → (PoP, peering, AS, resolver).
	type popKey = cloud.PoPID
	popVol := make(map[popKey]float64)
	// bgpGroup: (pop, peering, userAS) → volume.
	type bgpKey struct {
		pop popKey
		ing int32
		asn uint32
	}
	bgpVol := make(map[bgpKey]float64)
	// dnsGroup: (pop, resolver identity) → volume. Enterprise UGs sit
	// behind one centralized corporate/ISP resolver (aggregated by
	// resolver ID); eyeball populations are served by many resolver
	// sites, each steering a bounded share of traffic — we split an
	// eyeball UG's volume into per-site groups sized so that each site
	// carries at most siteShare of total traffic, matching the paper's
	// observation that most resolvers steer 0.1–1% of a PoP's traffic.
	const siteShare = 0.0015
	type dnsKey struct {
		pop  popKey
		res  usergroup.ResolverID
		ug   usergroup.ID // 0 group key for aggregated resolvers
		site int
	}
	dnsVol := make(map[dnsKey]float64)

	for _, u := range env.UGs.UGs {
		r, ok := sel[u.ASN]
		if !ok {
			continue
		}
		pop, err := env.Deploy.PoPOfPeering(r.Ingress)
		if err != nil {
			return nil, err
		}
		popVol[pop.ID] += u.Weight
		bgpVol[bgpKey{pop.ID, int32(r.Ingress), uint32(u.ASN)}] += u.Weight

		kind := topology.KindEyeball
		if as := env.Graph.AS(u.ASN); as != nil {
			kind = as.Kind
		}
		if kind == topology.KindEnterprise {
			// Centralized corporate/ISP DNS: whole-resolver granularity.
			dnsVol[dnsKey{pop: pop.ID, res: u.Resolver}] += u.Weight
			continue
		}
		sites := int(u.Weight/siteShare) + 1
		if sites > 64 {
			sites = 64
		}
		per := u.Weight / float64(sites)
		for s := 0; s < sites; s++ {
			dnsVol[dnsKey{pop: pop.ID, res: u.Resolver, ug: u.ID, site: s}] += per
		}
	}

	// Rank PoPs by volume, keep top 10.
	type pv struct {
		id  popKey
		vol float64
	}
	var ranked []pv
	for id, v := range popVol {
		ranked = append(ranked, pv{id, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].vol != ranked[j].vol {
			return ranked[i].vol > ranked[j].vol
		}
		return ranked[i].id < ranked[j].id
	})
	if len(ranked) > 10 {
		ranked = ranked[:10]
	}

	var out []Fig9aRow
	scopes := append([]pv{{id: -1}}, ranked...) // -1 = All
	for _, scope := range scopes {
		name := "All"
		if scope.id >= 0 {
			name = "PoP-" + env.Deploy.PoP(scope.id).Metro
		}
		inScope := func(p popKey) bool { return scope.id < 0 || p == scope.id }
		scopeVol := 0.0
		for id, v := range popVol {
			if inScope(id) {
				scopeVol += v
			}
		}
		if scopeVol == 0 {
			continue
		}

		var bgpRow, dnsRow, painterRow Fig9aRow
		bgpRow = Fig9aRow{PoP: name, Mechanism: "bgp"}
		dnsRow = Fig9aRow{PoP: name, Mechanism: "dns"}
		painterRow = Fig9aRow{PoP: name, Mechanism: "painter"}

		for k, v := range bgpVol {
			if !inScope(k.pop) {
				continue
			}
			// The group's share of ITS PoP's traffic determines the
			// granularity at which a BGP change moves it.
			share := v / popVol[k.pop]
			bgpRow.Buckets[bucketOf(share)] += v / scopeVol
		}
		for k, v := range dnsVol {
			if !inScope(k.pop) {
				continue
			}
			share := v / popVol[k.pop]
			dnsRow.Buckets[bucketOf(share)] += v / scopeVol
		}
		// PAINTER controls individual flows: everything lands in the
		// finest bucket.
		painterRow.Buckets[0] = 1
		out = append(out, bgpRow, dnsRow, painterRow)
	}
	return out, nil
}

// Fig9aTable renders the granularity histogram.
func Fig9aTable(rows []Fig9aRow) Table {
	t := Table{
		Title:  "Fig 9a — traffic volume controlled at each granularity (BGP vs DNS vs PAINTER)",
		Header: []string{"scope", "mechanism", BucketLabel(0), BucketLabel(1), BucketLabel(2), BucketLabel(3), BucketLabel(4)},
	}
	for _, r := range rows {
		row := []string{r.PoP, r.Mechanism}
		for _, b := range r.Buckets {
			row = append(row, Pct(b))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig9bResult compares PAINTER's per-flow steering against PAINTER
// forced to steer via DNS, at one budget.
type Fig9bResult struct {
	Budget     int
	BudgetFrac float64
	// Fractions of possible benefit.
	PainterFrac, DNSFrac float64
}

// RunFig9b solves PAINTER configs across budgets and evaluates each
// under per-flow steering and under DNS steering (§5.2.2).
func RunFig9b(env *Env, fracs []float64, iters int) ([]Fig9bResult, error) {
	if len(fracs) == 0 {
		fracs = StandardBudgetFracs
	}
	nPeerings := len(env.Deploy.AllPeeringIDs())
	var out []Fig9bResult
	for _, budget := range env.Budgets(fracs) {
		params := core.DefaultParams(budget)
		params.MaxIterations = iters
		exec := core.NewWorldExecutor(env.World, env.UGs, 0.5, env.Seed+44)
		o, err := core.New(env.Inputs, exec, params)
		if err != nil {
			return nil, err
		}
		cfg, err := o.Solve()
		if err != nil {
			return nil, err
		}
		painter, err := core.Evaluate(env.World, env.UGs, cfg)
		if err != nil {
			return nil, err
		}
		latency, anycast, err := dnssim.WorldLatencyFuncs(env.World, env.UGs, cfg)
		if err != nil {
			return nil, err
		}
		assign, err := dnssim.Steer(env.UGs, cfg, latency, anycast)
		if err != nil {
			return nil, err
		}
		dnsBenefit := dnssim.SteeredBenefit(env.UGs, assign, latency, anycast)

		row := Fig9bResult{Budget: budget, BudgetFrac: float64(budget) / float64(nPeerings)}
		if painter.PossibleBenefit > 0 {
			row.PainterFrac = painter.Benefit / painter.PossibleBenefit
			row.DNSFrac = dnsBenefit / painter.PossibleBenefit
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig9bTable renders the comparison.
func Fig9bTable(rows []Fig9bResult) Table {
	t := Table{
		Title:  "Fig 9b — % of possible benefit: PAINTER vs PAINTER w/ DNS steering",
		Header: []string{"budget", "%budget", "PAINTER", "PAINTER w/ DNS"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Budget), Pct(r.BudgetFrac), Pct(r.PainterFrac), Pct(r.DNSFrac),
		})
	}
	return t
}

// Fig8Row is one entry of the qualitative deployability × precision
// bucket chart (Fig. 8). Scores are 1-5.
type Fig8Row struct {
	Solution      string
	Deployability int
	Precision     int
	Note          string
}

// RunFig8 returns the paper's qualitative placement.
func RunFig8() []Fig8Row {
	return []Fig8Row{
		{"anycast", 5, 1, "highly deployable, no path control"},
		{"dns", 5, 2, "deployable; per-resolver, TTL-bound"},
		{"anycast+bgp-tuning", 4, 2, "slow, coarse, risky"},
		{"sd-wan-multihoming", 4, 3, "few paths (one per ISP)"},
		{"painter", 4, 5, "cloud-edge stacks: per-flow, RTT-timescale"},
		{"per-application", 2, 5, "per-app maintenance burden"},
		{"mptcp-mpquic", 2, 4, "client OS adoption required"},
		{"isp-collaboration", 1, 4, "requires per-ISP coordination"},
		{"future-internets", 1, 5, "requires new Internet architecture"},
	}
}

// Fig8Table renders Fig. 8.
func Fig8Table(rows []Fig8Row) Table {
	t := Table{
		Title:  "Fig 8 — deployability vs precision (1-5, qualitative)",
		Header: []string{"solution", "deployability", "precision", "note"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Solution, fmt.Sprintf("%d", r.Deployability), fmt.Sprintf("%d", r.Precision), r.Note,
		})
	}
	return t
}
