package experiments

// Datapath throughput benchmark (BENCH_DATAPATH.json): the tentpole
// claim behind the TM rebuild is that batched I/O (SO_REUSEPORT +
// recvmmsg/sendmmsg) moves packets several times faster than the
// portable one-syscall-per-datagram path, and that failure detection
// and flow re-pinning stay at RTT timescales even with 10⁵ pinned
// flows. Three measurements:
//
//  1. pps arms — a synthetic client echoes packets off a live TM-PoP
//     with both sides on the portable single-packet arm, the batched
//     arm, and the batched arm with GRE framing, side by side. The
//     closed-loop window keeps the socket buffers from overflowing so
//     the arms measure the datapath, not loss recovery.
//  2. failover at scale — an edge with 10⁵ flows pinned to PoP-A loses
//     its link; we time dead-detection, re-selection to PoP-B, and the
//     per-flow re-pin cost, in RTT units.
//  3. NAT rebind — the tmchaos scenario, included so the JSON artifact
//     records the re-homing contract alongside the throughput numbers.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"painter/internal/benchmeta"
	"painter/internal/chaos/tmchaos"
	"painter/internal/netsim/emul"
	"painter/internal/tm"
	"painter/internal/tm/netio"
	"painter/internal/tmproto"
)

// DatapathBenchConfig parameterizes the benchmark.
type DatapathBenchConfig struct {
	// Packets is the number of echo round trips per pps arm.
	Packets int
	// Flows is the number of distinct flows cycled through in pps arms.
	Flows int
	// Window is the max in-flight packets (closed-loop flow control).
	Window int
	// Batch is the batched arms' datagrams-per-syscall.
	Batch int
	// ScaleFlows is the pinned-flow count for the failover measurement.
	ScaleFlows int
	// LinkDelay is the emulated one-way edge↔PoP delay for failover.
	LinkDelay time.Duration
	Seed      int64
}

func (c *DatapathBenchConfig) defaults() {
	if c.Packets <= 0 {
		c.Packets = 50_000
	}
	if c.Flows <= 0 {
		c.Flows = 256
	}
	if c.Window <= 0 {
		c.Window = 8192
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.ScaleFlows <= 0 {
		c.ScaleFlows = 100_000
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 10 * time.Millisecond
	}
}

// DatapathArm is one pps measurement.
type DatapathArm struct {
	Name string `json:"name"`
	// Batched reports whether the multi-message syscall arm was actually
	// in use (false on non-Linux even when requested).
	Batched bool `json:"batched"`
	Batch   int  `json:"batch"`
	GRE     bool `json:"gre"`
	// Sent/Delivered are echo round trips attempted and completed.
	Sent       int     `json:"sent"`
	Delivered  int64   `json:"delivered"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Reps is how many times the arm ran; the recorded numbers are the
	// best rep's (every arm gets the same rep count).
	Reps int `json:"reps"`
	// PPS is delivered echo round trips per second; each round trip is
	// four datagrams on the wire (data in/out on both hosts).
	PPS float64 `json:"pps"`
}

// DatapathFailover is the failover-at-scale measurement.
type DatapathFailover struct {
	Flows     int     `json:"flows"`
	LinkRTTMs float64 `json:"link_rtt_ms"`
	// DetectMs is SetDown → EventDestDead.
	DetectMs float64 `json:"detect_ms"`
	// DetectRTTs is DetectMs in units of the dead path's RTT (the paper:
	// typically 1.3, minimum 0.5).
	DetectRTTs float64 `json:"detect_rtts"`
	// SwitchMs is SetDown → EventSelected(backup).
	SwitchMs float64 `json:"switch_ms"`
	// RepinSampled flows were sent after the switch; RepinPerFlowMicros
	// is the mean re-pin cost of each such send against the full-size
	// flow table.
	RepinSampled       int     `json:"repin_sampled"`
	RepinPerFlowMicros float64 `json:"repin_per_flow_us"`
}

// DatapathBenchResult marshals to BENCH_DATAPATH.json. Meta stays zero
// here; cmd/painter-bench stamps it just before writing.
type DatapathBenchResult struct {
	benchmeta.Meta
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`

	Arms []DatapathArm `json:"arms"`
	// SpeedupX is batched-arm pps over portable-arm pps.
	SpeedupX float64 `json:"speedup_x"`

	Failover  DatapathFailover         `json:"failover"`
	NATRebind *tmchaos.NATRebindResult `json:"nat_rebind"`

	ElapsedSec float64 `json:"elapsed_sec"`
}

// RunDatapathBench runs all three measurements.
func RunDatapathBench(cfg DatapathBenchConfig) (*DatapathBenchResult, error) {
	cfg.defaults()
	start := time.Now()
	res := &DatapathBenchResult{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
	}

	arms := []struct {
		name  string
		batch int
		gre   bool
	}{
		{"portable", 1, false},
		{"batched", cfg.Batch, false},
		{"batched-gre", cfg.Batch, true},
	}
	// Every arm runs the same number of reps and reports its best rep:
	// on a shared/single-CPU box any individual rep can lose tens of
	// percent to unrelated scheduling, and best-of-N recovers each arm's
	// actual capability without favoring either side.
	const reps = 3
	for _, a := range arms {
		var best DatapathArm
		for r := 0; r < reps; r++ {
			arm, err := runPPSArm(a.name, a.batch, a.gre, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: datapath arm %s: %w", a.name, err)
			}
			if r == 0 || arm.PPS > best.PPS {
				best = arm
			}
		}
		best.Reps = reps
		res.Arms = append(res.Arms, best)
	}
	if res.Arms[0].PPS > 0 {
		res.SpeedupX = res.Arms[1].PPS / res.Arms[0].PPS
	}

	// The failover leg depends on probes staying quiet while 10^5 flows
	// pin; on a loaded single-CPU machine a flap can still slip through
	// the pacing, so a flapped attempt is discarded and re-run rather
	// than reported as a (meaningless) measurement.
	var fo *DatapathFailover
	for attempt := 0; ; attempt++ {
		var err error
		fo, err = runFailoverAtScale(cfg)
		if err == nil {
			break
		}
		if errors.Is(err, errFailoverFlapped) && attempt < 2 {
			continue
		}
		return nil, fmt.Errorf("experiments: datapath failover: %w", err)
	}
	res.Failover = *fo

	nr, err := tmchaos.RunNATRebind(tmchaos.DefaultNATRebindConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: datapath nat-rebind: %w", err)
	}
	res.NATRebind = nr

	res.ElapsedSec = time.Since(start).Seconds()
	return res, nil
}

// runPPSArm measures closed-loop echo throughput against a live PoP
// with client and PoP both on the given batch setting.
func runPPSArm(name string, batch int, gre bool, cfg DatapathBenchConfig) (DatapathArm, error) {
	arm := DatapathArm{Name: name, Batch: batch, GRE: gre, Sent: cfg.Packets}
	pop, err := tm.NewPoP(tm.PoPConfig{
		ListenAddr: "127.0.0.1:0", PoPID: 1,
		Sockets: 1, Batch: batch, FlowTTL: 10 * time.Minute,
	})
	if err != nil {
		return arm, err
	}
	defer pop.Close()
	target, err := netip.ParseAddrPort(pop.Addr())
	if err != nil {
		return arm, err
	}
	client, err := netio.Listen("127.0.0.1:0", netio.Config{Sockets: 1, Batch: batch})
	if err != nil {
		return arm, err
	}
	defer client.Close()
	conn := client.Conns()[0]
	arm.Batched = client.Batched()

	// One pre-built datagram per flow, GRE-framed when the arm says so
	// (the PoP detects framing per packet and mirrors it on the reply).
	pkts := make([][]byte, cfg.Flows)
	for i := range pkts {
		fk := tmproto.FlowKey{
			Proto:   17,
			Src:     netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("203.0.113.9"),
			SrcPort: uint16(30000 + i),
			DstPort: 443,
		}
		inner, err := tmproto.AppendData(nil, tmproto.Data{Flow: fk, Payload: []byte("pps")})
		if err != nil {
			return arm, err
		}
		if gre {
			pkts[i] = tmproto.AppendGRE(nil, 7, uint32(i), inner)
		} else {
			pkts[i] = inner
		}
	}

	var rcvd atomic.Int64
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		ms := make([]netio.Message, batch)
		for i := range ms {
			ms[i].Buf = make([]byte, netio.MaxDatagram)
		}
		for {
			n, err := conn.ReadBatch(ms)
			if err != nil {
				return
			}
			rcvd.Add(int64(n))
		}
	}()

	// Per-arm closed-loop window: the single-packet arm overflows its
	// receive buffers long before the batched arm does, and a lossy run
	// measures stall recovery, not the datapath. Size each arm's window
	// to what it can keep in flight losslessly.
	window := cfg.Window
	if batch <= 1 {
		window = cfg.Window / 8
		if window < 256 {
			window = 256
		}
	}

	startArm := time.Now()
	buf := make([]netio.Message, 0, batch)
	sent := 0
	// lost writes off packets presumed dropped: UDP gives no delivery
	// guarantee even on loopback, and without the write-off every drop
	// permanently shrinks the effective window until the throttle loop
	// can never drain (in-flight = sent − rcvd − lost).
	var lost int64
	for sent < cfg.Packets {
		ms := buf[:0] // refill from the original base; ms[n:] below moves it
		for len(ms) < batch && sent+len(ms) < cfg.Packets {
			pkt := pkts[(sent+len(ms))%cfg.Flows]
			ms = append(ms, netio.Message{Buf: pkt, N: len(pkt), Addr: target})
		}
		for len(ms) > 0 {
			n, err := conn.WriteBatch(ms)
			sent += n
			if err != nil {
				n++ // skip the failed message
			}
			ms = ms[n:]
		}
		lastN, progressAt := rcvd.Load(), time.Now()
		for int64(sent)-rcvd.Load()-lost > int64(window) {
			time.Sleep(20 * time.Microsecond)
			if n := rcvd.Load(); n > lastN {
				lastN, progressAt = n, time.Now()
			} else if time.Since(progressAt) > 200*time.Millisecond {
				lost = int64(sent) - lastN // whole remainder presumed dropped
			}
		}
	}
	// Drain: echoes stop arriving either when all are in (lossless run)
	// or when the in-flight remainder was dropped; stop at quiescence.
	last, lastAt := rcvd.Load(), time.Now()
	for rcvd.Load() < int64(cfg.Packets) && time.Since(lastAt) < 300*time.Millisecond {
		time.Sleep(5 * time.Millisecond)
		if n := rcvd.Load(); n > last {
			last, lastAt = n, time.Now()
		}
	}
	arm.Delivered = rcvd.Load()
	arm.ElapsedSec = lastAt.Sub(startArm).Seconds()
	if arm.ElapsedSec > 0 {
		arm.PPS = float64(arm.Delivered) / arm.ElapsedSec
	}
	return arm, nil
}

// errFailoverFlapped means probe flaps during the pinning phase moved
// flows off PoP-A before the induced failure; the attempt is invalid.
var errFailoverFlapped = errors.New("destination flapped while pinning flows")

// runFailoverAtScale pins cfg.ScaleFlows flows to PoP-A, kills the
// link, and times detection, re-selection, and re-pinning.
func runFailoverAtScale(cfg DatapathBenchConfig) (*DatapathFailover, error) {
	popA, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1, Service: tm.DiscardService{}})
	if err != nil {
		return nil, err
	}
	defer popA.Close()
	popB, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 2, Service: tm.DiscardService{}})
	if err != nil {
		return nil, err
	}
	defer popB.Close()
	linkA, err := emul.NewLink(popA.Addr(), cfg.LinkDelay, cfg.Seed+21)
	if err != nil {
		return nil, err
	}
	defer linkA.Close()
	linkB, err := emul.NewLink(popB.Addr(), cfg.LinkDelay+2*time.Millisecond, cfg.Seed+22)
	if err != nil {
		return nil, err
	}
	defer linkB.Close()
	destOf := func(l *emul.Link, pop uint32) (tmproto.Destination, error) {
		ap, err := netip.ParseAddrPort(l.Addr())
		if err != nil {
			return tmproto.Destination{}, err
		}
		return tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: pop}, nil
	}
	dA, err := destOf(linkA, 1)
	if err != nil {
		return nil, err
	}
	dB, err := destOf(linkB, 2)
	if err != nil {
		return nil, err
	}

	events := make(chan tm.Event, 64)
	ecfg := tm.DefaultEdgeConfig()
	ecfg.ProbeInterval = 5 * time.Millisecond
	// Generous hysteresis: scheduling noise on a loaded box inflates
	// both probe RTTs by tens of ms while 10^5 flows pin, and this leg
	// measures failure detection, not fine-grained RTT preference. A
	// dead incumbent is excluded from selection regardless of
	// hysteresis, so failover behavior is unchanged.
	ecfg.SwitchHysteresisMs = 15
	ecfg.Destinations = []tmproto.Destination{dA, dB}
	ecfg.OnEvent = func(ev tm.Event) {
		select {
		case events <- ev:
		default:
		}
	}
	edge, err := tm.NewEdge(ecfg)
	if err != nil {
		return nil, err
	}
	defer edge.Close()

	waitFor := func(want tm.EventKind, pop uint32, timeout time.Duration) (tm.Event, error) {
		dl := time.After(timeout)
		for {
			select {
			case ev := <-events:
				if ev.Kind == want && (pop == 0 || ev.Dest.PoP == pop) {
					return ev, nil
				}
			case <-dl:
				return tm.Event{}, fmt.Errorf("timed out waiting for %v (pop %d)", want, pop)
			}
		}
	}
	if _, err := waitFor(tm.EventSelected, 1, 5*time.Second); err != nil {
		return nil, fmt.Errorf("PoP-A never selected: %w", err)
	}

	// Pin the full flow population to PoP-A. Delivery through the relay
	// is irrelevant here — pinning happens edge-side on send — but probe
	// liveness is not: probes share linkA with this traffic, and a
	// 10^5-packet blast queues data ahead of probe replies and keeps
	// thousands of relay timers in flight on what may be a single CPU,
	// starving probes past the failure timeout and flapping the very
	// destination we are about to kill on purpose. Drop the data class
	// at the link front for the duration of pinning, so probes ride an
	// otherwise-quiet link, then verify nothing flapped.
	flapsBefore := edge.Stats().Failovers
	dropData := func(pkt []byte) bool {
		return len(pkt) < 4 || pkt[3] != byte(tmproto.TypeData)
	}
	linkA.SetFilter(dropData)
	linkB.SetFilter(dropData)
	keys := make([]tmproto.FlowKey, cfg.ScaleFlows)
	for i := range keys {
		keys[i] = tmproto.FlowKey{
			Proto:   17,
			Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("203.0.113.9"),
			SrcPort: uint16(i),
			DstPort: uint16(443 + i>>16),
		}
	}
	payload := []byte{1}
	for i, k := range keys {
		_ = edge.Send(k, payload) // socket-buffer overflows are fine
		if i%500 == 499 {
			time.Sleep(5 * time.Millisecond) // let the prober and recv loops run
		}
	}
	linkA.SetFilter(nil)
	linkB.SetFilter(nil)
	// Let probe state settle, then make sure the pinning phase did not
	// flap selection: a flap means some flows are pinned to PoP-B and
	// the re-pin sample below would be meaningless. The caller retries
	// the whole leg in that case.
	time.Sleep(4*cfg.LinkDelay + 200*time.Millisecond)
	if edge.Stats().Failovers != flapsBefore {
		return nil, errFailoverFlapped
	}
	// Drop stale events queued during pinning so the detection clock
	// below can only match the failure we induce.
	for {
		select {
		case <-events:
			continue
		default:
		}
		break
	}

	fo := &DatapathFailover{
		Flows:     cfg.ScaleFlows,
		LinkRTTMs: float64(2*cfg.LinkDelay) / float64(time.Millisecond),
	}
	t0 := time.Now()
	linkA.SetDown(true)
	dead, err := waitFor(tm.EventDestDead, 1, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("death never detected: %w", err)
	}
	fo.DetectMs = dead.At.Sub(t0).Seconds() * 1000
	if fo.DetectMs < 0 {
		fo.DetectMs = time.Since(t0).Seconds() * 1000
	}
	fo.DetectRTTs = fo.DetectMs / fo.LinkRTTMs
	sel, err := waitFor(tm.EventSelected, 2, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("backup never selected: %w", err)
	}
	fo.SwitchMs = sel.At.Sub(t0).Seconds() * 1000

	// Re-pin cost: send on a sample of the pinned flows against the
	// full-size table; each first send walks the slow path and re-pins.
	sample := 1000
	if sample > len(keys) {
		sample = len(keys)
	}
	before := edge.Stats().RepinnedFlows
	rs := time.Now()
	for _, k := range keys[:sample] {
		_ = edge.Send(k, payload)
	}
	fo.RepinSampled = sample
	fo.RepinPerFlowMicros = float64(time.Since(rs).Microseconds()) / float64(sample)
	if got := edge.Stats().RepinnedFlows - before; got < uint64(sample) {
		return nil, fmt.Errorf("only %d of %d sampled flows re-pinned", got, sample)
	}
	return fo, nil
}

// Table renders the result for painter-bench.
func (r *DatapathBenchResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("TM datapath throughput (%s/%s, %d CPU, batched speedup %.1fx)",
			r.GOOS, r.GOARCH, r.CPUs, r.SpeedupX),
		Header: []string{"arm", "batched", "gre", "delivered", "pps"},
	}
	for _, a := range r.Arms {
		t.Rows = append(t.Rows, []string{
			a.Name,
			fmt.Sprintf("%v", a.Batched),
			fmt.Sprintf("%v", a.GRE),
			fmt.Sprintf("%d/%d", a.Delivered, a.Sent),
			fmt.Sprintf("%.0f", a.PPS),
		})
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("failover@%dk flows", r.Failover.Flows/1000), "", "",
		fmt.Sprintf("detect %.1fms (%.2f RTT)", r.Failover.DetectMs, r.Failover.DetectRTTs),
		fmt.Sprintf("repin %.1fus/flow", r.Failover.RepinPerFlowMicros),
	})
	if r.NATRebind != nil {
		t.Rows = append(t.Rows, []string{
			"nat-rebind", "", "",
			fmt.Sprintf("%d moves/%d flows", r.NATRebind.FlowMoves, r.NATRebind.Flows),
			fmt.Sprintf("%.0f%% delivered", r.NATRebind.DeliveredPct),
		})
	}
	return t
}

// WriteJSON writes the result to path as indented JSON.
func (r *DatapathBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
