package experiments

// Detection-latency benchmark for the alerting pipeline: inject PoP
// outages into a fresh world and measure how many controller ticks the
// catchment-drift detector (EWMA band over per-PoP anycast shares)
// needs to raise the alert, and how many to resolve it after recovery.
// The whole run is replayed twice from the same seed; the headline
// includes whether the two alert streams were byte-identical — the
// determinism contract the history/alert layer promises.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"painter/internal/benchmeta"
	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/obs"
	"painter/internal/obs/alert"
	"painter/internal/obs/history"
)

// DetectBenchConfig parameterizes the benchmark.
type DetectBenchConfig struct {
	// Seed offsets the twin world (the schedule itself is derived from
	// the catchment, not a RNG).
	Seed int64
	// Trials is the number of PoP outages injected (default 6, capped
	// at the deployment's PoP count).
	Trials int
	// Warmup is the EWMA warm-up: ticks sampled before any fault, and
	// the detector's MinSamples (default 6).
	Warmup int
	// MaxTicks bounds the post-injection wait for the alert (default 20).
	MaxTicks int
	// Band is the EWMA drift band (default: detector's own 0.08).
	Band float64
	// ForTicks is how many consecutive out-of-band ticks fire the alert
	// (default 2 — one to go pending, one to confirm).
	ForTicks int
}

func (c *DetectBenchConfig) defaults() {
	if c.Trials <= 0 {
		c.Trials = 6
	}
	if c.Warmup <= 0 {
		c.Warmup = 6
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 20
	}
	if c.ForTicks <= 0 {
		c.ForTicks = 2
	}
}

// DetectTrial is one injected outage.
type DetectTrial struct {
	Event string `json:"event"`
	// Share is the victim PoP's anycast share just before the outage —
	// the drift magnitude the detector has to notice.
	Share      float64 `json:"share"`
	InjectTick uint64  `json:"inject_tick"`
	// DetectTicks is firing-tick minus inject-tick; -1 when the alert
	// never fired within MaxTicks.
	DetectTicks int `json:"detect_ticks"`
	// ResolveTicks is ticks from recovery to the alert resolving (the
	// EWMA re-converging); -1 when it stayed firing past MaxTicks.
	ResolveTicks int `json:"resolve_ticks"`
}

// DetectBenchResult marshals to BENCH_DETECT.json. Meta stays zero here;
// cmd/painter-bench stamps it just before writing.
type DetectBenchResult struct {
	benchmeta.Meta
	Scale    string `json:"scale"`
	Seed     int64  `json:"seed"`
	PoPs     int    `json:"pops"`
	UGs      int    `json:"ugs"`
	Trials   int    `json:"trials"`
	Detected int    `json:"detected"`

	MedianDetectTicks  float64 `json:"median_detect_ticks"`
	MaxDetectTicks     float64 `json:"max_detect_ticks"`
	MedianResolveTicks float64 `json:"median_resolve_ticks"`

	// Deterministic reports whether two same-seed runs produced
	// byte-identical alert transition streams and history rings.
	Deterministic bool `json:"deterministic"`

	ElapsedSec float64       `json:"elapsed_sec"`
	Points     []DetectTrial `json:"points"`
}

// RunDetectBench runs the outage schedule twice from the same seed and
// reports detection latency plus the determinism verdict.
func RunDetectBench(env *Env, cfg DetectBenchConfig) (*DetectBenchResult, error) {
	cfg.defaults()
	start := time.Now()
	res, stream1, ring1, err := runDetectOnce(env, cfg)
	if err != nil {
		return nil, err
	}
	_, stream2, ring2, err := runDetectOnce(env, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: detect twin run: %w", err)
	}
	res.Deterministic = bytes.Equal(stream1, stream2) && bytes.Equal(ring1, ring2)
	res.ElapsedSec = time.Since(start).Seconds()
	return res, nil
}

// runDetectOnce builds a fresh world + detector rig and replays the
// outage schedule, returning the result plus the canonical alert-stream
// and history-ring encodings for the determinism comparison.
func runDetectOnce(env *Env, cfg DetectBenchConfig) (*DetectBenchResult, []byte, []byte, error) {
	w, err := netsim.New(env.Graph, env.Deploy, env.Seed+3)
	if err != nil {
		return nil, nil, nil, err
	}
	ca := netsim.NewCatchmentAnalyzer(w, env.AllUGs, 0)
	defer ca.Close()
	reg := obs.NewRegistry()
	cg := netsim.NewCatchmentGauges(reg, env.Deploy)
	hist := history.New(history.Config{
		Clock: history.TickClock(0, int64(time.Second)),
		Regs:  func() []*obs.Registry { return []*obs.Registry{reg} },
	})
	eng := alert.NewEngine(hist,
		alert.CatchmentDriftRules(cfg.Band, cfg.Warmup, cfg.ForTicks),
		alert.Options{})

	// tick advances the rig one controller tick: refresh the catchment,
	// publish it, sample history, judge the rules.
	var catch *netsim.Catchment
	tick := func() (uint64, error) {
		c, err := ca.Update()
		if err != nil {
			return 0, err
		}
		catch = c
		cg.Set(c)
		return hist.Sample(), nil
	}
	step := func() (uint64, error) {
		t, err := tick()
		if err != nil {
			return 0, err
		}
		eng.Eval(t)
		return t, nil
	}
	drifting := func() bool {
		for _, sv := range eng.Firing() {
			if sv.Rule == "catchment_drift" {
				return true
			}
		}
		return false
	}

	res := &DetectBenchResult{
		Scale: env.Scale.String(), Seed: cfg.Seed,
		PoPs: len(env.Deploy.PoPs), UGs: env.AllUGs.Len(),
	}
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := step(); err != nil {
			return nil, nil, nil, err
		}
	}

	var detects, resolves []float64
	hit := make(map[cloud.PoPID]bool)
	for trial := 0; trial < cfg.Trials; trial++ {
		// Victim: the heaviest not-yet-hit PoP (ties broken by ID), so
		// trials sweep down the share distribution — from the outage
		// every detector should see toward ones near the band.
		victim, share := heaviestPoP(catch, hit)
		if share < 0 { // every PoP hit: start the sweep over
			clear(hit)
			victim, share = heaviestPoP(catch, hit)
		}
		hit[victim] = true
		ev := netsim.Event{Kind: netsim.EventPoPDown, PoP: victim}
		if err := w.ApplyEvent(ev); err != nil {
			return nil, nil, nil, err
		}
		pt := DetectTrial{Event: ev.String(), Share: share, DetectTicks: -1, ResolveTicks: -1}
		t, err := step()
		if err != nil {
			return nil, nil, nil, err
		}
		pt.InjectTick = t
		for waited := 1; waited <= cfg.MaxTicks; waited++ {
			if drifting() {
				pt.DetectTicks = waited
				break
			}
			if _, err := step(); err != nil {
				return nil, nil, nil, err
			}
		}
		if pt.DetectTicks >= 0 {
			res.Detected++
			detects = append(detects, float64(pt.DetectTicks))
		}
		// Recovery: restore the PoP and wait for the EWMA to re-converge
		// and the alert (recovery shifts shares back, so it may re-arm
		// briefly) to leave the firing state.
		if err := w.ApplyEvent(netsim.Event{Kind: netsim.EventPoPUp, PoP: victim}); err != nil {
			return nil, nil, nil, err
		}
		for waited := 1; waited <= 4*cfg.MaxTicks; waited++ {
			if _, err := step(); err != nil {
				return nil, nil, nil, err
			}
			if !drifting() {
				if pt.ResolveTicks < 0 {
					pt.ResolveTicks = waited
					resolves = append(resolves, float64(waited))
				}
				break
			}
		}
		// Let the baseline settle before the next trial so trials stay
		// independent.
		for i := 0; i < cfg.Warmup; i++ {
			if _, err := step(); err != nil {
				return nil, nil, nil, err
			}
		}
		res.Trials++
		res.Points = append(res.Points, pt)
	}
	res.MedianDetectTicks = quantile(detects, 0.5)
	res.MaxDetectTicks = quantile(detects, 1.0)
	res.MedianResolveTicks = quantile(resolves, 0.5)
	return res, eng.Result().Bytes(), hist.Bytes(), nil
}

// heaviestPoP returns the PoP with the largest anycast share among
// those not in skip (share -1 when all are skipped).
func heaviestPoP(c *netsim.Catchment, skip map[cloud.PoPID]bool) (cloud.PoPID, float64) {
	var best cloud.PoPID
	bestShare := -1.0
	for id, s := range c.PoPShare {
		if skip[id] {
			continue
		}
		if s > bestShare || (s == bestShare && id < best) {
			best, bestShare = id, s
		}
	}
	return best, bestShare
}

// Table renders the result for painter-bench.
func (r *DetectBenchResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("catchment-drift detection latency (%s scale, %d/%d detected, deterministic=%v)",
			r.Scale, r.Detected, r.Trials, r.Deterministic),
		Header: []string{"event", "share", "detectTicks", "resolveTicks"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Event,
			Pct(p.Share),
			fmt.Sprintf("%d", p.DetectTicks),
			fmt.Sprintf("%d", p.ResolveTicks),
		})
	}
	t.Rows = append(t.Rows, []string{"median / max detect", "",
		fmt.Sprintf("%.0f / %.0f", r.MedianDetectTicks, r.MaxDetectTicks), ""})
	return t
}

// WriteJSON writes the result to path as indented JSON.
func (r *DetectBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
