package experiments

// Chaos-failover scenario: drive a seeded fault schedule (peering and
// PoP failures, withdrawal storms, latency spikes, probe loss,
// hidden-preference flips) through the netsim event layer and measure
// how ingress selection and user latency evolve tick by tick — the §6
// resilience story (reroute around failures, recover cleanly) under the
// catchment unpredictability the orchestrator cannot model.

import (
	"fmt"

	"painter/internal/bgp"
	"painter/internal/chaos"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// ChaosFailoverConfig parameterizes the scenario.
type ChaosFailoverConfig struct {
	// Seed drives both the schedule generator and nothing else: equal
	// seeds reproduce the run exactly.
	Seed int64
	// Ticks is the schedule length (40 when zero).
	Ticks int
	// TopUGs bounds how many (heaviest) user groups are measured per
	// tick (200 when zero).
	TopUGs int
}

// ChaosPoint is one tick of the scenario.
type ChaosPoint struct {
	Tick int
	// Events applied during this tick.
	Events int
	// Live peerings after this tick's events.
	Live int
	// MeanLatencyMs is the weight-averaged latency of the measured UGs
	// through their currently selected ingress.
	MeanLatencyMs float64
	// RerouteFrac is the weight fraction of measured UGs whose selected
	// ingress changed since the previous tick.
	RerouteFrac float64
	// Unreachable is the weight fraction of measured UGs with no route
	// (their entire catchment withdrawn).
	Unreachable float64
}

// ChaosFailoverResult is the full scenario outcome.
type ChaosFailoverResult struct {
	ScheduleLen int
	Kinds       int
	Points      []ChaosPoint
	// Recovered reports whether the final selection equals the
	// pre-chaos selection (FinalRecovery schedules must end clean).
	Recovered bool
}

// RunChaosFailover generates a deterministic chaos schedule for the
// environment's deployment and replays it on a fresh world, measuring
// latency and churn per tick.
func RunChaosFailover(env *Env, cfg ChaosFailoverConfig) (*ChaosFailoverResult, error) {
	if cfg.Ticks <= 0 {
		cfg.Ticks = 40
	}
	if cfg.TopUGs <= 0 {
		cfg.TopUGs = 200
	}
	gen := chaos.DefaultGenConfig(cfg.Seed)
	gen.Ticks = cfg.Ticks
	sched, err := chaos.Generate(env.Graph, env.Deploy, gen)
	if err != nil {
		return nil, err
	}

	// A fresh world so the scenario never perturbs env.World's caches.
	w, err := netsim.New(env.Graph, env.Deploy, env.Seed+2)
	if err != nil {
		return nil, err
	}
	all := env.Deploy.AllPeeringIDs()
	ugs := env.UGs.TopByWeight(cfg.TopUGs)

	baseline, err := w.ResolveIngress(all)
	if err != nil {
		return nil, err
	}
	prev := ingressByUG(ugs, baseline)

	res := &ChaosFailoverResult{ScheduleLen: len(sched), Kinds: len(sched.Kinds())}
	eventsAt := make(map[int]int)
	for _, se := range sched {
		eventsAt[se.Tick]++
	}

	runRes, err := chaos.Run(w, env.Deploy, sched, func(tick int, w *netsim.World) error {
		sel, err := w.ResolveIngress(all)
		if err != nil {
			return err
		}
		cur := ingressByUG(ugs, sel)
		pt := ChaosPoint{Tick: tick, Events: eventsAt[tick], Live: len(w.LiveIngresses(all))}
		var wSum, wLat, wMoved, wDark, latSum float64
		for i, ug := range ugs {
			wSum += ug.Weight
			ing := cur[i]
			if ing == bgp.InvalidIngress {
				wDark += ug.Weight
				continue
			}
			l, err := w.LatencyMs(ug.ASN, ug.Metro, ing)
			if err != nil {
				return fmt.Errorf("experiments: latency UG %d: %w", ug.ID, err)
			}
			wLat += ug.Weight
			latSum += ug.Weight * l
			if prev[i] != bgp.InvalidIngress && prev[i] != ing {
				wMoved += ug.Weight
			}
		}
		if wLat > 0 {
			pt.MeanLatencyMs = latSum / wLat
		}
		if wSum > 0 {
			pt.RerouteFrac = wMoved / wSum
			pt.Unreachable = wDark / wSum
		}
		prev = cur
		res.Points = append(res.Points, pt)
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Recovered = len(runRes.FinalRoutes) == len(baseline)
	if res.Recovered {
		for as, r := range baseline {
			if runRes.FinalRoutes[as] != r {
				res.Recovered = false
				break
			}
		}
	}
	return res, nil
}

// ingressByUG maps each UG to its selected ingress (InvalidIngress when
// its AS has no route).
func ingressByUG(ugs []usergroup.UG, sel map[topology.ASN]bgp.Route) []bgp.IngressID {
	out := make([]bgp.IngressID, len(ugs))
	for i, ug := range ugs {
		if r, ok := sel[ug.ASN]; ok {
			out[i] = r.Ingress
		} else {
			out[i] = bgp.InvalidIngress
		}
	}
	return out
}

// Table renders the scenario for painter-bench.
func (r *ChaosFailoverResult) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("chaos failover (%d events, %d kinds, recovered=%v)", r.ScheduleLen, r.Kinds, r.Recovered),
		Header: []string{"tick", "events", "live", "meanLatMs", "reroute", "unreachable"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Tick),
			fmt.Sprintf("%d", p.Events),
			fmt.Sprintf("%d", p.Live),
			F(p.MeanLatencyMs),
			Pct(p.RerouteFrac),
			Pct(p.Unreachable),
		})
	}
	return t
}
