package experiments

import (
	"fmt"
	"time"

	"painter/internal/core"
)

// AblationResult quantifies one design choice from DESIGN.md: benefit
// with the mechanism on vs off, at equal budget.
type AblationResult struct {
	Name string
	// On/Off are ground-truth weighted benefits (ms).
	OnMs, OffMs float64
	// OnAdverts/OffAdverts are the BGP footprints used.
	OnAdverts, OffAdverts int
	// OnTime/OffTime are solve wall times.
	OnTime, OffTime time.Duration
}

// RunAblations evaluates PAINTER's design choices at one budget:
//
//   - prefix reuse (unlimited vs one peering per prefix);
//   - preference learning (4 iterations vs 1);
//   - lazy greedy vs exact greedy.
func RunAblations(env *Env, budget int) ([]AblationResult, error) {
	solve := func(mut func(*core.Params), exec core.Executor) (float64, int, time.Duration, error) {
		params := core.DefaultParams(budget)
		params.MaxIterations = 1
		if mut != nil {
			mut(&params)
		}
		o, err := core.New(env.Inputs, exec, params)
		if err != nil {
			return 0, 0, 0, err
		}
		start := time.Now()
		cfg, err := o.Solve()
		if err != nil {
			return 0, 0, 0, err
		}
		el := time.Since(start)
		res, err := core.Evaluate(env.World, env.UGs, cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		return res.Benefit, cfg.TotalAdvertisements(), el, nil
	}
	execFor := func(seed int64) core.Executor {
		return core.NewWorldExecutor(env.World, env.UGs, 0.5, seed)
	}

	var out []AblationResult

	// Prefix reuse.
	r := AblationResult{Name: "prefix-reuse"}
	var err error
	if r.OnMs, r.OnAdverts, r.OnTime, err = solve(nil, nil); err != nil {
		return nil, err
	}
	if r.OffMs, r.OffAdverts, r.OffTime, err = solve(func(p *core.Params) {
		p.MaxPeeringsPerPrefix = 1
	}, nil); err != nil {
		return nil, err
	}
	out = append(out, r)

	// Learning.
	r = AblationResult{Name: "preference-learning"}
	if r.OnMs, r.OnAdverts, r.OnTime, err = solve(func(p *core.Params) {
		p.MaxIterations = 4
		p.MinIterBenefitGain = -1
	}, execFor(env.Seed+201)); err != nil {
		return nil, err
	}
	if r.OffMs, r.OffAdverts, r.OffTime, err = solve(nil, execFor(env.Seed+202)); err != nil {
		return nil, err
	}
	out = append(out, r)

	// Lazy vs exact greedy (on = lazy, off = exact).
	r = AblationResult{Name: "lazy-greedy"}
	if r.OnMs, r.OnAdverts, r.OnTime, err = solve(nil, nil); err != nil {
		return nil, err
	}
	if r.OffMs, r.OffAdverts, r.OffTime, err = solve(func(p *core.Params) {
		p.ExactGreedy = true
	}, nil); err != nil {
		return nil, err
	}
	out = append(out, r)

	return out, nil
}

// AblationTable renders the ablation results.
func AblationTable(rows []AblationResult) Table {
	t := Table{
		Title:  "Ablations — design choices on vs off (equal budget)",
		Header: []string{"choice", "on (ms)", "off (ms)", "on adverts", "off adverts", "on time", "off time"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, F(r.OnMs), F(r.OffMs),
			fmt.Sprintf("%d", r.OnAdverts), fmt.Sprintf("%d", r.OffAdverts),
			r.OnTime.Truncate(time.Millisecond).String(), r.OffTime.Truncate(time.Millisecond).String(),
		})
	}
	return t
}
