package experiments

// Scale benchmark: builds each requested scale end-to-end (topology →
// deployment → world → UGs → orchestrator inputs) and runs one full
// advertise→measure→learn solve, recording wall-clock and memory per
// scale. The azure row is the headline: >=10^4 ASes and >=10^5 UGs
// through a complete solve, with the flat solver/netsim state keeping
// retained bytes per UG flat as the population grows.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"painter/internal/benchmeta"
	"painter/internal/core"
)

// ScaleBenchConfig parameterizes the scale sweep.
type ScaleBenchConfig struct {
	Seed   int64
	Scales []Scale
	// Workers is the solver worker count (0 = GOMAXPROCS).
	Workers int
	// Budget caps the prefix budget per scale (default min(8, peerings))
	// so the sweep measures scaling of the grow loop, not budget size.
	Budget int
}

// ScaleBenchRow is one scale's numbers.
type ScaleBenchRow struct {
	Scale    string `json:"scale"`
	ASes     int    `json:"ases"`
	Peerings int    `json:"peerings"`
	PoPs     int    `json:"pops"`
	UGs      int    `json:"ugs"`
	Budget   int    `json:"budget"`
	Prefixes int    `json:"prefixes"`

	// BuildMs is environment construction (topology, deployment, world,
	// UGs, anycast baseline); SolveMs is the full solve: orchestrator
	// construction plus every advertise→measure→learn iteration.
	BuildMs float64 `json:"build_ms"`
	SolveMs float64 `json:"solve_ms"`

	// BytesPerUG is the retained heap delta across the solve (post-GC)
	// divided by UG count — the resident cost of solver + warmed
	// simulator hot state per user group.
	BytesPerUG float64 `json:"bytes_per_ug"`
	// SolveMallocs counts heap allocations during the solve.
	SolveMallocs uint64 `json:"solve_mallocs"`

	PredictedBenefit float64 `json:"predicted_benefit"`
}

// ScaleBenchReport is the BENCH_SCALE.json schema.
type ScaleBenchReport struct {
	benchmeta.Meta
	Seed    int64           `json:"seed"`
	Workers int             `json:"workers"`
	Rows    []ScaleBenchRow `json:"rows"`
}

// RunScaleBench runs the sweep. Each scale is built fresh so earlier
// rows' caches cannot subsidize later ones.
func RunScaleBench(cfg ScaleBenchConfig) (*ScaleBenchReport, error) {
	if len(cfg.Scales) == 0 {
		cfg.Scales = []Scale{ScaleSmall, ScalePEERING, ScaleAzure}
	}
	rep := &ScaleBenchReport{Seed: cfg.Seed, Workers: cfg.Workers}
	for _, sc := range cfg.Scales {
		row, err := runScaleOnce(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale bench %s: %w", sc, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func runScaleOnce(sc Scale, cfg ScaleBenchConfig) (ScaleBenchRow, error) {
	t0 := time.Now()
	env, err := NewEnv(sc, cfg.Seed)
	if err != nil {
		return ScaleBenchRow{}, err
	}
	buildMs := msSince(t0)

	budget := cfg.Budget
	if budget <= 0 {
		budget = 8
	}
	if n := len(env.Deploy.AllPeeringIDs()); budget > n {
		budget = n
	}
	params := core.DefaultParams(budget)
	params.MaxPeeringsPerPrefix = 16
	params.MaxIterations = 2
	params.Workers = cfg.Workers

	exec := core.NewWorldExecutor(env.World, env.UGs, 0, cfg.Seed+5)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	t1 := time.Now()
	o, err := core.New(env.Inputs, exec, params)
	if err != nil {
		return ScaleBenchRow{}, err
	}
	solved, err := o.Solve()
	if err != nil {
		return ScaleBenchRow{}, err
	}
	solveMs := msSince(t1)

	runtime.ReadMemStats(&m1)
	mallocs := m1.Mallocs - m0.Mallocs
	var m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m2)
	var retained float64
	if m2.HeapAlloc > m0.HeapAlloc {
		retained = float64(m2.HeapAlloc - m0.HeapAlloc)
	}

	mean, _, _ := o.PredictBenefit(solved)
	row := ScaleBenchRow{
		Scale:            sc.String(),
		ASes:             env.Graph.Len(),
		Peerings:         len(env.Deploy.AllPeeringIDs()),
		PoPs:             len(env.Deploy.PoPs),
		UGs:              env.UGs.Len(),
		Budget:           budget,
		Prefixes:         len(solved.Prefixes),
		BuildMs:          buildMs,
		SolveMs:          solveMs,
		BytesPerUG:       retained / float64(env.UGs.Len()),
		SolveMallocs:     mallocs,
		PredictedBenefit: mean,
	}
	// Keep env alive past the post-solve GC so the retained-heap delta
	// reflects solver + simulator state, not a partially collected env.
	runtime.KeepAlive(env)
	runtime.KeepAlive(o)
	return row, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}

// Table renders the report for painter-bench.
func (r *ScaleBenchReport) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("scale sweep (seed %d, workers %d)", r.Seed, r.Workers),
		Header: []string{"scale", "ases", "peerings", "pops", "ugs", "budget", "build ms", "solve ms", "bytes/ug", "mallocs"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scale,
			fmt.Sprintf("%d", row.ASes),
			fmt.Sprintf("%d", row.Peerings),
			fmt.Sprintf("%d", row.PoPs),
			fmt.Sprintf("%d", row.UGs),
			fmt.Sprintf("%d", row.Budget),
			fmt.Sprintf("%.0f", row.BuildMs),
			fmt.Sprintf("%.0f", row.SolveMs),
			fmt.Sprintf("%.0f", row.BytesPerUG),
			fmt.Sprintf("%d", row.SolveMallocs),
		})
	}
	return t
}

// WriteJSON writes the report to path as indented JSON.
func (r *ScaleBenchReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
