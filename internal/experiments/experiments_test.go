package experiments

import (
	"strings"
	"testing"
	"time"

	"painter/internal/trace"
)

// sharedEnv caches one small environment across tests in this package.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv(ScaleSmall, 7)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	sharedEnv.World.SetDay(0)
	return sharedEnv
}

func TestNewEnvScales(t *testing.T) {
	e := env(t)
	if e.UGs.Len() == 0 || len(e.Deploy.AllPeeringIDs()) == 0 {
		t.Fatal("empty environment")
	}
	if e.UGs.Len() > e.AllUGs.Len() {
		t.Error("covered UGs exceed total")
	}
}

func TestBudgets(t *testing.T) {
	e := env(t)
	bs := e.Budgets([]float64{0.001, 0.01, 1.0, 1.0})
	if len(bs) == 0 {
		t.Fatal("no budgets")
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Error("budgets not strictly increasing (dedup failed)")
		}
	}
	n := len(e.Deploy.AllPeeringIDs())
	if bs[len(bs)-1] != n {
		t.Errorf("full budget = %d, want %d", bs[len(bs)-1], n)
	}
	if bs[0] < 1 {
		t.Error("budget below 1")
	}
}

func TestFig6aShape(t *testing.T) {
	e := env(t)
	rows, err := RunFig6a(e, []float64{0.05, 0.3, 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	// At full budget, PAINTER should capture most of the possible
	// benefit and beat One-per-PoP variants (the headline of Fig. 6a).
	if last.Painter.Estimated < 0.5 {
		t.Errorf("PAINTER at full budget captures %.2f, want > 0.5", last.Painter.Estimated)
	}
	if last.Painter.Estimated < last.OnePerPoP.Estimated-0.05 {
		t.Errorf("PAINTER (%.2f) should not lose to OnePerPoP (%.2f)",
			last.Painter.Estimated, last.OnePerPoP.Estimated)
	}
	// Ranges must nest: lower <= estimated <= upper.
	for _, r := range rows {
		for name, rr := range map[string]struct{ lo, est, up float64 }{
			"painter":   {r.Painter.Lower, r.Painter.Estimated, r.Painter.Upper},
			"onePerPoP": {r.OnePerPoP.Lower, r.OnePerPoP.Estimated, r.OnePerPoP.Upper},
		} {
			if rr.lo > rr.est+1e-9 || rr.est > rr.up+1e-9 {
				t.Errorf("%s ranges not nested at budget %d: %+v", name, r.Budget, rr)
			}
		}
		// One-per-peering has no uncertainty: lower == upper.
		if r.OnePerPeer.Upper-r.OnePerPeer.Lower > 1e-9 {
			t.Errorf("one-per-peering should have zero uncertainty, got %v",
				r.OnePerPeer.Upper-r.OnePerPeer.Lower)
		}
	}
	// Rendering sanity.
	if s := Fig6aTable(rows).String(); !strings.Contains(s, "PAINTER") {
		t.Error("table rendering broken")
	}
	if s := Fig14Table(rows).String(); !strings.Contains(s, "one-per-pop") {
		t.Error("fig14 table rendering broken")
	}
}

func TestFig6bImprovementPositive(t *testing.T) {
	e := env(t)
	rows, err := RunFig6b(e, []float64{0.1, 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.PainterMs <= 0 {
		t.Errorf("PAINTER mean improvement %.2f ms, want positive", last.PainterMs)
	}
	if last.ImprovedUGs == 0 {
		t.Error("no improved UGs at full budget")
	}
}

func TestFig6cLearning(t *testing.T) {
	e := env(t)
	rows, err := RunFig6c(e, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("want >=2 iterations, got %d", len(rows))
	}
	// Learning must narrow the final configuration's uncertainty band
	// (the paper's 44ms → 8ms effect), isolated from config growth.
	fresh := rows[0].FinalConfigUncertaintyFresh
	learned := rows[0].FinalConfigUncertaintyLearned
	if learned > fresh+1e-9 {
		t.Errorf("learned uncertainty %.2f exceeds fresh %.2f", learned, fresh)
	}
	if fresh > 1 && learned > 0.8*fresh {
		t.Errorf("learning barely narrowed uncertainty: %.2f -> %.2f", fresh, learned)
	}
	if rows[0].FactsLearned == 0 {
		t.Error("iteration 1 learned nothing")
	}
}

func TestFig7Drift(t *testing.T) {
	e := env(t)
	pts, err := RunFig7(e, []int{4}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	for _, p := range pts {
		if p.DynamicDropPct < 0 || p.DynamicDropPct > 100 {
			t.Errorf("dynamic drop %v out of range", p.DynamicDropPct)
		}
		// Static (no re-selection) cannot beat dynamic.
		if p.StaticDropPct < p.DynamicDropPct-1e-9 {
			t.Errorf("day %d: static drop %.2f below dynamic %.2f", p.Day, p.StaticDropPct, p.DynamicDropPct)
		}
	}
}

func TestFig8Static(t *testing.T) {
	rows := RunFig8()
	if len(rows) < 5 {
		t.Fatal("too few solutions")
	}
	var painter *Fig8Row
	for i := range rows {
		if rows[i].Solution == "painter" {
			painter = &rows[i]
		}
		if rows[i].Deployability < 1 || rows[i].Deployability > 5 ||
			rows[i].Precision < 1 || rows[i].Precision > 5 {
			t.Errorf("scores out of range: %+v", rows[i])
		}
	}
	if painter == nil {
		t.Fatal("painter missing")
	}
	// The figure's claim: PAINTER pareto-dominates in combined score.
	for _, r := range rows {
		if r.Solution == "painter" {
			continue
		}
		if r.Deployability >= painter.Deployability && r.Precision >= painter.Precision {
			t.Errorf("%s dominates painter", r.Solution)
		}
	}
}

func TestFig9aGranularity(t *testing.T) {
	e := env(t)
	rows, err := RunFig9a(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatal("too few rows")
	}
	byMech := map[string]*Fig9aRow{}
	for i := range rows {
		if rows[i].PoP == "All" {
			byMech[rows[i].Mechanism] = &rows[i]
		}
	}
	for _, m := range []string{"bgp", "dns", "painter"} {
		r := byMech[m]
		if r == nil {
			t.Fatalf("missing All row for %s", m)
		}
		var sum float64
		for _, b := range r.Buckets {
			sum += b
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s buckets sum to %.3f", m, sum)
		}
	}
	// PAINTER is all finest-bucket; BGP must control a larger share of
	// traffic at coarse granularity than DNS.
	if byMech["painter"].Buckets[0] < 0.999 {
		t.Error("painter must control all traffic at the finest granularity")
	}
	bgpCoarse := byMech["bgp"].Buckets[3] + byMech["bgp"].Buckets[4]
	dnsCoarse := byMech["dns"].Buckets[3] + byMech["dns"].Buckets[4]
	if bgpCoarse < dnsCoarse {
		t.Errorf("BGP coarse share %.2f should be >= DNS coarse share %.2f", bgpCoarse, dnsCoarse)
	}
}

func TestFig9bDNSSacrifice(t *testing.T) {
	e := env(t)
	rows, err := RunFig9b(e, []float64{0.3, 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.DNSFrac > last.PainterFrac+1e-9 {
		t.Errorf("DNS steering (%.2f) cannot beat per-flow (%.2f)", last.DNSFrac, last.PainterFrac)
	}
	if last.PainterFrac > 0.3 && last.DNSFrac/last.PainterFrac > 0.95 {
		t.Errorf("DNS retains %.2f of per-flow benefit; expected a visible sacrifice",
			last.DNSFrac/last.PainterFrac)
	}
}

func TestFig10Failover(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.PreFail = 800 * time.Millisecond
	cfg.PostFail = 1200 * time.Millisecond
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 10 {
		t.Fatalf("too few samples: %d", len(res.Samples))
	}
	if res.DetectedAfter <= 0 {
		t.Fatal("failure never detected")
	}
	if res.SwitchedAfter <= 0 {
		t.Fatal("never switched to PoP-B")
	}
	if res.SwitchedAfter > 500*time.Millisecond {
		t.Errorf("switch took %v, want RTT-timescale", res.SwitchedAfter)
	}
	if res.TotalBGPUpdates < 10 {
		t.Errorf("BGP collector saw %d updates, want a reconvergence burst", res.TotalBGPUpdates)
	}
	// Before failure the selected prefix should be a PoP-A unicast; after
	// the run it must be a PoP-B prefix.
	firstSel := res.Samples[2].Selected
	lastSel := res.Samples[len(res.Samples)-1].Selected
	if !strings.Contains(firstSel, "PoP-A") {
		t.Errorf("pre-failure selection %q, want a PoP-A unicast prefix", firstSel)
	}
	if !strings.Contains(lastSel, "PoP-B") {
		t.Errorf("post-failure selection %q, want a PoP-B prefix", lastSel)
	}
}

func TestFig11(t *testing.T) {
	e := env(t)
	a, err := RunFig11a(e)
	if err != nil {
		t.Fatal(err)
	}
	if a.MedianExtraPaths <= 0 {
		t.Errorf("median extra paths = %v, want positive", a.MedianExtraPaths)
	}
	if a.FracUGsWithMorePaths < 0.6 {
		t.Errorf("PAINTER exposes more paths for only %.2f of UGs", a.FracUGsWithMorePaths)
	}
	b, err := RunFig11b(e)
	if err != nil {
		t.Fatal(err)
	}
	if b.PainterFullAvoid <= b.SDWANFullAvoid {
		t.Errorf("PAINTER full avoidance %.2f should beat SD-WAN %.2f",
			b.PainterFullAvoid, b.SDWANFullAvoid)
	}
}

func TestFig12(t *testing.T) {
	e := env(t)
	a, err := RunFig12a(e)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range a {
		if p.CoverageAll < prev-1e-9 {
			t.Error("coverage not monotone")
		}
		prev = p.CoverageAll
	}
	b, err := RunFig12b(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 3 {
		t.Fatal("too few buckets")
	}
	// Compare the first non-empty bucket against the largest later
	// non-empty bucket (small worlds may leave tail buckets empty).
	firstErr := -1.0
	maxLater := -1.0
	for i, p := range b {
		if p.MedianErrMs <= 0 {
			continue
		}
		if firstErr < 0 {
			firstErr = p.MedianErrMs
			continue
		}
		if p.MedianErrMs > maxLater {
			maxLater = p.MedianErrMs
		}
		_ = i
	}
	if firstErr < 0 || maxLater < 0 {
		t.Fatal("not enough populated buckets")
	}
	if maxLater <= firstErr {
		t.Errorf("error should grow with uncertainty: first=%.2f maxLater=%.2f", firstErr, maxLater)
	}
}

func TestFig3Experiment(t *testing.T) {
	an, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	tbl := Fig3Table(an)
	if len(tbl.Rows) != len(trace.StandardOffsets)+1 {
		t.Errorf("fig3 table rows = %d", len(tbl.Rows))
	}
}

func TestFig15b(t *testing.T) {
	e := env(t)
	rows, err := RunFig15b(e, []float64{800, 3000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PrefixesFor99 < 1 {
			t.Errorf("prefixes@99 = %d", r.PrefixesFor99)
		}
		if r.UncertaintyPct < -1e-9 {
			t.Errorf("negative uncertainty %v", r.UncertaintyPct)
		}
	}
}

func TestFig15a(t *testing.T) {
	e := env(t)
	rows, err := RunFig15a(e, []float64{0.5, 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Peerings >= rows[1].Peerings {
		t.Error("peering counts should grow with deployment size")
	}
	for _, r := range rows {
		if r.P90 > r.P95 || r.P95 > r.P99 {
			t.Errorf("prefix requirements not monotone: %+v", r)
		}
	}
}

func TestAblations(t *testing.T) {
	e := env(t)
	rows, err := RunAblations(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationResult{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.OnMs <= 0 || r.OffMs <= 0 {
			t.Errorf("%s: non-positive benefit on=%v off=%v", r.Name, r.OnMs, r.OffMs)
		}
	}
	// Reuse must not use fewer advertisements than no-reuse at equal
	// budget (that is its whole point: more (peering,prefix) pairs per
	// prefix).
	reuse := byName["prefix-reuse"]
	if reuse.OnAdverts <= reuse.OffAdverts {
		t.Errorf("reuse adverts %d should exceed no-reuse %d", reuse.OnAdverts, reuse.OffAdverts)
	}
	// No-reuse at equal prefix budget cannot beat reuse materially.
	if reuse.OffMs > reuse.OnMs*1.1 {
		t.Errorf("no-reuse (%v) materially beats reuse (%v)", reuse.OffMs, reuse.OnMs)
	}
	// Lazy greedy should be competitive with exact greedy.
	lazy := byName["lazy-greedy"]
	if lazy.OnMs < 0.8*lazy.OffMs {
		t.Errorf("lazy (%v) far below exact (%v)", lazy.OnMs, lazy.OffMs)
	}
}

func TestComplianceValidation(t *testing.T) {
	e := env(t)
	v, err := RunComplianceValidation(e)
	if err != nil {
		t.Fatal(err)
	}
	if v.PathsHarvested < 50 {
		t.Fatalf("only %d AS paths harvested", v.PathsHarvested)
	}
	if v.InferenceAccuracy < 0.7 {
		t.Errorf("inference accuracy %.2f too low", v.InferenceAccuracy)
	}
	if v.ObservedSelections == 0 {
		t.Fatal("no observations checked")
	}
	// The paper found 4% violations; demand the same order of magnitude.
	if v.ViolationRate > 0.15 {
		t.Errorf("violation rate %.1f%% too high (paper: 4%%)", 100*v.ViolationRate)
	}
	if v.MeanCompliantSetSize < 1 {
		t.Errorf("mean compliant set %.1f implausible", v.MeanCompliantSetSize)
	}
}
