package experiments

import (
	"fmt"
	"time"

	"painter/internal/trace"
)

// Fig12aPoint is coverage at one admissible geolocation uncertainty.
type Fig12aPoint struct {
	UncertaintyKm  float64
	CoverageAll    float64
	CoverageProbes float64
}

// RunFig12a sweeps admissible target uncertainty and reports the
// traffic-weighted coverage of policy-compliant (UG, ingress) tuples
// (Appendix B, Fig. 12a).
func RunFig12a(env *Env) ([]Fig12aPoint, error) {
	var out []Fig12aPoint
	for _, km := range []float64{100, 200, 300, 400, 450, 500, 600, 700, 1000, 1500} {
		all, err := env.Meas.CoverageAt(km, false)
		if err != nil {
			return nil, err
		}
		probes, err := env.Meas.CoverageAt(km, true)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig12aPoint{UncertaintyKm: km, CoverageAll: all, CoverageProbes: probes})
	}
	return out, nil
}

// Fig12aTable renders the coverage sweep.
func Fig12aTable(rows []Fig12aPoint) Table {
	t := Table{
		Title:  "Fig 12a — % of volume covered by targets vs geolocation uncertainty",
		Header: []string{"uncertainty(km)", "all UGs", "probe UGs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{F(r.UncertaintyKm), Pct(r.CoverageAll), Pct(r.CoverageProbes)})
	}
	return t
}

// Fig12bPoint is the median estimation error in one uncertainty bucket.
type Fig12bPoint struct {
	LoKm, HiKm  float64
	MedianErrMs float64
}

// RunFig12b buckets target uncertainty and reports median |estimated −
// actual| latency per bucket (Fig. 12b).
func RunFig12b(env *Env) ([]Fig12bPoint, error) {
	buckets := [][2]float64{{0, 100}, {100, 200}, {200, 300}, {300, 450}, {450, 700}, {700, 1500}}
	var out []Fig12bPoint
	for _, b := range buckets {
		med, err := env.Meas.MedianAbsErrorAt(b[0], b[1])
		if err != nil {
			return nil, err
		}
		out = append(out, Fig12bPoint{LoKm: b[0], HiKm: b[1], MedianErrMs: med})
	}
	return out, nil
}

// Fig12bTable renders the error sweep.
func Fig12bTable(rows []Fig12bPoint) Table {
	t := Table{
		Title:  "Fig 12b — median |estimated-actual| latency vs target uncertainty",
		Header: []string{"bucket(km)", "median err (ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f-%.0f", r.LoKm, r.HiKm), F(r.MedianErrMs)})
	}
	return t
}

// RunFig3 generates the residential capture and runs the matching
// analysis (§2.2).
func RunFig3() (*trace.Analysis, error) {
	cap, err := trace.Generate(trace.DefaultGenConfig())
	if err != nil {
		return nil, err
	}
	return trace.Analyze(cap, nil)
}

// Fig3Table renders the post-expiry traffic curves.
func Fig3Table(an *trace.Analysis) Table {
	t := Table{
		Title:  "Fig 3 — % of bytes sent at/after DNS-record expiry + offset",
		Header: []string{"offset"},
	}
	clouds := []trace.Cloud{trace.CloudA, trace.CloudB, trace.CloudC}
	for _, c := range clouds {
		t.Header = append(t.Header, c.String())
	}
	for i, off := range trace.StandardOffsets {
		row := []string{formatOffset(off)}
		for _, c := range clouds {
			row = append(row, Pct(an.Curves[c][i].FracBytesRemaining))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{
		"matched flows",
		fmt.Sprintf("%d/%d", an.MatchedFlows, an.TotalFlows), "", "",
	})
	return t
}

func formatOffset(d time.Duration) string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	default:
		return "+" + d.String()
	}
}
