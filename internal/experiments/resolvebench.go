package experiments

// Repair-vs-full-solve benchmark for the continuous re-solve
// controller: same-seed twin worlds receive an identical stream of
// single-event churn (peering flaps, latency spikes, preference flips).
// One world is maintained by a warm-start repair controller, a twin by
// a ForceFullSolve controller that recomputes from scratch on every
// dirtying sync, and a third twin by the repair controller with delta
// resolve and the incremental anycast refresh both disabled — the
// pre-delta repair path, kept as the baseline arm. Each sync is timed;
// the headline numbers are the median per-trial speedup of repair over
// full solve and of delta-repair over the baseline repair path, plus a
// quality check that the arms end the run with equivalent benefit.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"painter/internal/benchmeta"
	"painter/internal/core"
	"painter/internal/netsim"
	"painter/internal/stats"
)

// ResolveBenchConfig parameterizes the benchmark.
type ResolveBenchConfig struct {
	// Seed drives event generation (twin worlds reuse the env seed).
	Seed int64
	// Trials is the minimum number of single-event syncs (default 40;
	// the stream may run one event long so flap/spike pairs stay whole).
	Trials int
	// Budget is the prefix budget (default: 30% of peerings, min 10 —
	// the regime where PAINTER actually operates, many prefixes per
	// deployment, which is also where incrementality pays: repair cost
	// scales with the dirty count, full-solve cost with the budget).
	Budget int
}

// ResolveBenchResult is the benchmark outcome; it marshals directly to
// BENCH_RESOLVE.json. Meta stays zero here (deterministic library code);
// cmd/painter-bench stamps it just before writing.
type ResolveBenchResult struct {
	benchmeta.Meta
	Scale    string `json:"scale"`
	Seed     int64  `json:"seed"`
	Peerings int    `json:"peerings"`
	UGs      int    `json:"ugs"`
	Budget   int    `json:"budget"`
	Trials   int    `json:"trials"`

	// Repair-arm outcome counts across all trials.
	Repaired   int `json:"repaired"`
	FullSolves int `json:"full_solves"`
	Noops      int `json:"noops"`

	// Paired is the number of trials in the speedup sample: repair arm
	// took the warm-start path while the control arm re-solved.
	Paired          int     `json:"paired"`
	RepairMedianMs  float64 `json:"repair_median_ms"`
	FullMedianMs    float64 `json:"full_median_ms"`
	MedianSpeedup   float64 `json:"median_speedup"`
	P90Speedup      float64 `json:"p90_speedup"`
	MedianDirtyFrac float64 `json:"median_dirty_frac"`

	// Baseline comparison: trials where both the delta-repair arm and
	// the baseline (delta resolve off, full anycast refresh) arm took
	// the warm-start repair path.
	PairedBaseline          int     `json:"paired_baseline"`
	BaselineMedianMs        float64 `json:"baseline_repair_median_ms"`
	MedianSpeedupVsBaseline float64 `json:"median_speedup_vs_baseline"`
	P90SpeedupVsBaseline    float64 `json:"p90_speedup_vs_baseline"`

	// Final ground-truth benefits of the two arms on their (identical)
	// end-state worlds; RepairVsFull is their ratio.
	RepairBenefit float64 `json:"repair_benefit"`
	FullBenefit   float64 `json:"full_benefit"`
	RepairVsFull  float64 `json:"repair_vs_full"`
}

// RunResolveBench runs the twin-controller churn benchmark.
func RunResolveBench(env *Env, cfg ResolveBenchConfig) (*ResolveBenchResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 40
	}
	if cfg.Budget <= 0 {
		cfg.Budget = env.Budgets([]float64{0.3})[0]
		if cfg.Budget < 10 {
			cfg.Budget = 10
		}
	}

	// Twin worlds: same seed, independent caches, so each arm pays its
	// own query costs and neither warms the other's memos.
	w1, err := netsim.New(env.Graph, env.Deploy, env.Seed+2)
	if err != nil {
		return nil, err
	}
	w2, err := netsim.New(env.Graph, env.Deploy, env.Seed+2)
	if err != nil {
		return nil, err
	}
	repairArm, err := core.NewController(w1, env.AllUGs, core.ControllerParams{
		Solver: core.DefaultParams(cfg.Budget),
	})
	if err != nil {
		return nil, err
	}
	defer repairArm.Stop()
	// Both control arms solve cold (no warm-reuse caches): the full arm
	// is defined as "recompute from scratch", and the baseline arm
	// reproduces the pre-delta repair path end to end — full propagation
	// on every resolve miss, full anycast refresh, cold solver.
	cold := core.DefaultParams(cfg.Budget)
	cold.ColdRepair = true
	fullArm, err := core.NewController(w2, env.AllUGs, core.ControllerParams{
		Solver: cold, ForceFullSolve: true,
	})
	if err != nil {
		return nil, err
	}
	defer fullArm.Stop()
	w3, err := netsim.New(env.Graph, env.Deploy, env.Seed+2)
	if err != nil {
		return nil, err
	}
	w3.SetDeltaResolve(false)
	baseArm, err := core.NewController(w3, env.AllUGs, core.ControllerParams{
		Solver: cold, FullAnycastRefresh: true,
	})
	if err != nil {
		return nil, err
	}
	defer baseArm.Stop()

	res := &ResolveBenchResult{
		Scale: env.Scale.String(), Seed: cfg.Seed,
		Peerings: len(env.Deploy.AllPeeringIDs()), UGs: env.AllUGs.Len(),
		Budget: cfg.Budget,
	}

	var repairMs, fullMs, speedups, dirtyFracs []float64
	var baseMs, baseSpeedups []float64
	for _, ev := range churnEvents(env, cfg) {
		if err := w1.ApplyEvent(ev); err != nil {
			return nil, fmt.Errorf("experiments: resolve bench: %w", err)
		}
		if err := w2.ApplyEvent(ev); err != nil {
			return nil, fmt.Errorf("experiments: resolve bench twin: %w", err)
		}
		if err := w3.ApplyEvent(ev); err != nil {
			return nil, fmt.Errorf("experiments: resolve bench baseline: %w", err)
		}
		t0 := time.Now()
		_, rep1, err := repairArm.Sync()
		if err != nil {
			return nil, err
		}
		d1 := time.Since(t0)
		t1 := time.Now()
		_, rep2, err := fullArm.Sync()
		if err != nil {
			return nil, err
		}
		d2 := time.Since(t1)
		t2 := time.Now()
		_, rep3, err := baseArm.Sync()
		if err != nil {
			return nil, err
		}
		d3 := time.Since(t2)

		res.Trials++
		switch {
		case rep1.Repaired:
			res.Repaired++
		case rep1.FullSolve:
			res.FullSolves++
		default:
			res.Noops++
		}
		if rep1.Repaired && rep2.FullSolve {
			res.Paired++
			repairMs = append(repairMs, float64(d1.Nanoseconds())/1e6)
			fullMs = append(fullMs, float64(d2.Nanoseconds())/1e6)
			speedups = append(speedups, float64(d2.Nanoseconds())/float64(d1.Nanoseconds()))
			dirtyFracs = append(dirtyFracs, rep1.DirtyFraction)
		}
		if rep1.Repaired && rep3.Repaired {
			res.PairedBaseline++
			baseMs = append(baseMs, float64(d3.Nanoseconds())/1e6)
			baseSpeedups = append(baseSpeedups, float64(d3.Nanoseconds())/float64(d1.Nanoseconds()))
		}
	}
	if res.Paired == 0 {
		return nil, fmt.Errorf("experiments: resolve bench produced no paired repair/full trials")
	}
	res.RepairMedianMs = quantile(repairMs, 0.5)
	res.FullMedianMs = quantile(fullMs, 0.5)
	res.MedianSpeedup = quantile(speedups, 0.5)
	res.P90Speedup = quantile(speedups, 0.9)
	res.MedianDirtyFrac = quantile(dirtyFracs, 0.5)
	res.BaselineMedianMs = quantile(baseMs, 0.5)
	res.MedianSpeedupVsBaseline = quantile(baseSpeedups, 0.5)
	res.P90SpeedupVsBaseline = quantile(baseSpeedups, 0.9)

	// Quality check: both arms end on the same world state; compare
	// ground-truth benefit of their final configs.
	ev1, err := core.Evaluate(w1, env.AllUGs, repairArm.Config())
	if err != nil {
		return nil, err
	}
	ev2, err := core.Evaluate(w2, env.AllUGs, fullArm.Config())
	if err != nil {
		return nil, err
	}
	res.RepairBenefit, res.FullBenefit = ev1.Benefit, ev2.Benefit
	if ev2.Benefit != 0 {
		res.RepairVsFull = ev1.Benefit / ev2.Benefit
	}
	return res, nil
}

// churnEvents builds a deterministic single-event stream: peering flaps
// (down then up), latency spikes (set then clear), and preference
// flips, so the world keeps returning to health and every sync handles
// exactly one event. Pairs are never split, so the stream may run one
// event past Trials and always ends with every failure recovered and
// every spike cleared.
func churnEvents(env *Env, cfg ResolveBenchConfig) []netsim.Event {
	rng := stats.NewRand(cfg.Seed + 0x5eed)
	ids := env.Deploy.AllPeeringIDs()
	ugs := env.AllUGs.UGs
	var evs []netsim.Event
	for len(evs) < cfg.Trials {
		switch rng.Intn(3) {
		case 0:
			x := ids[rng.Intn(len(ids))]
			evs = append(evs,
				netsim.Event{Kind: netsim.EventPeeringDown, Ingress: x},
				netsim.Event{Kind: netsim.EventPeeringUp, Ingress: x})
		case 1:
			x := ids[rng.Intn(len(ids))]
			evs = append(evs,
				netsim.Event{Kind: netsim.EventLatencySpike, Ingress: x, Ms: 20 + rng.Float64()*120},
				netsim.Event{Kind: netsim.EventLatencySpike, Ingress: x, Ms: 0})
		default:
			evs = append(evs, netsim.Event{
				Kind:    netsim.EventPrefFlip,
				AS:      ugs[rng.Intn(len(ugs))].ASN,
				Ingress: ids[rng.Intn(len(ids))],
			})
		}
	}
	return evs
}

// quantile returns the q-quantile of xs (nearest-rank on a sorted copy).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Table renders the result for painter-bench.
func (r *ResolveBenchResult) Table() Table {
	return Table{
		Title: fmt.Sprintf("repair vs full re-solve (%s scale, budget %d, %d trials)",
			r.Scale, r.Budget, r.Trials),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"paired trials", fmt.Sprintf("%d", r.Paired)},
			{"repaired / full / noop", fmt.Sprintf("%d / %d / %d", r.Repaired, r.FullSolves, r.Noops)},
			{"repair median ms", fmt.Sprintf("%.3f", r.RepairMedianMs)},
			{"full median ms", fmt.Sprintf("%.3f", r.FullMedianMs)},
			{"median speedup", fmt.Sprintf("%.2fx", r.MedianSpeedup)},
			{"p90 speedup", fmt.Sprintf("%.2fx", r.P90Speedup)},
			{"median dirty fraction", F(r.MedianDirtyFrac)},
			{"baseline-paired trials", fmt.Sprintf("%d", r.PairedBaseline)},
			{"baseline repair median ms", fmt.Sprintf("%.3f", r.BaselineMedianMs)},
			{"median speedup vs baseline", fmt.Sprintf("%.2fx", r.MedianSpeedupVsBaseline)},
			{"p90 speedup vs baseline", fmt.Sprintf("%.2fx", r.P90SpeedupVsBaseline)},
			{"final repair benefit", F(r.RepairBenefit)},
			{"final full benefit", F(r.FullBenefit)},
			{"repair / full", fmt.Sprintf("%.4f", r.RepairVsFull)},
		},
	}
}

// WriteJSON writes the result to path as indented JSON.
func (r *ResolveBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
