package experiments

import "testing"

func TestScaleBenchSmallSmoke(t *testing.T) {
	rep, err := RunScaleBench(ScaleBenchConfig{Seed: 7, Scales: []Scale{ScaleSmall}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rep.Rows))
	}
	r := rep.Rows[0]
	if r.Scale != "small" || r.ASes == 0 || r.UGs == 0 || r.Peerings == 0 {
		t.Fatalf("implausible row: %+v", r)
	}
	if r.SolveMs <= 0 || r.BuildMs <= 0 {
		t.Fatalf("missing timings: %+v", r)
	}
	if r.Prefixes == 0 || r.Prefixes > r.Budget {
		t.Fatalf("prefix count %d outside (0, budget %d]", r.Prefixes, r.Budget)
	}
	if rep.GitCommit != "" || rep.GeneratedAt != "" {
		t.Fatal("library code must not stamp provenance; the cmd layer does")
	}
	if got := rep.Table(); len(got.Rows) != 1 {
		t.Fatalf("table has %d rows, want 1", len(got.Rows))
	}
}
