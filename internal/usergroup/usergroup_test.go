package usergroup

import (
	"math"
	"testing"

	"painter/internal/topology"
)

func testSet(t *testing.T) (*Set, *topology.Graph) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 15, Tier1: 4, Tier2: 20, Stubs: 200,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3, EnterpriseFrac: 0.4, ContentFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestBuildCoversAllStubPresences(t *testing.T) {
	s, g := testSet(t)
	want := 0
	for _, n := range g.ASNs() {
		a := g.AS(n)
		if a.Tier == topology.TierStub {
			want += len(a.Metros)
		}
	}
	if s.Len() != want {
		t.Errorf("UGs = %d, want %d (one per stub-AS metro presence)", s.Len(), want)
	}
}

func TestWeightsNormalized(t *testing.T) {
	s, _ := testSet(t)
	if tw := s.TotalWeight(); math.Abs(tw-1) > 1e-9 {
		t.Errorf("total weight = %v, want 1", tw)
	}
	for _, u := range s.UGs {
		if u.Weight <= 0 {
			t.Errorf("UG %d has non-positive weight", u.ID)
		}
	}
}

func TestWeightsSkewed(t *testing.T) {
	s, _ := testSet(t)
	top := s.TopByWeight(s.Len() / 10)
	var topSum float64
	for _, u := range top {
		topSum += u.Weight
	}
	// Zipf(1.1): top 10% of UGs should carry a large share of traffic.
	if topSum < 0.3 {
		t.Errorf("top 10%% of UGs carry %.2f of traffic, want >0.3 (Zipf skew)", topSum)
	}
}

func TestResolverAssignment(t *testing.T) {
	s, _ := testSet(t)
	public, local := 0, 0
	for _, u := range s.UGs {
		r, err := s.ResolverOf(u.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.Public {
			public++
		} else {
			local++
		}
	}
	frac := float64(public) / float64(s.Len())
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("public resolver fraction = %.2f, want ~0.25", frac)
	}
}

func TestByResolverPartition(t *testing.T) {
	s, _ := testSet(t)
	total := 0
	for _, r := range s.Resolvers {
		ids := s.ByResolver(r.ID)
		total += len(ids)
		for _, id := range ids {
			if s.Get(id).Resolver != r.ID {
				t.Errorf("UG %d in wrong resolver bucket", id)
			}
		}
	}
	if total != s.Len() {
		t.Errorf("resolver buckets hold %d UGs, want %d", total, s.Len())
	}
}

func TestSubsetRenormalizes(t *testing.T) {
	s, _ := testSet(t)
	half := s.Subset(func(u UG) bool { return u.ID%2 == 0 })
	if half.Len() == 0 || half.Len() >= s.Len() {
		t.Fatalf("subset size %d of %d", half.Len(), s.Len())
	}
	if tw := half.TotalWeight(); math.Abs(tw-1) > 1e-9 {
		t.Errorf("subset total weight = %v, want 1", tw)
	}
	// Empty subset keeps zero weight without dividing by zero.
	empty := s.Subset(func(UG) bool { return false })
	if empty.Len() != 0 || empty.TotalWeight() != 0 {
		t.Error("empty subset wrong")
	}
}

func TestTopByWeightOrdered(t *testing.T) {
	s, _ := testSet(t)
	top := s.TopByWeight(20)
	if len(top) != 20 {
		t.Fatalf("TopByWeight(20) = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Error("TopByWeight not descending")
		}
	}
}

func TestCoveringWeight(t *testing.T) {
	s, _ := testSet(t)
	n99 := s.CoveringWeight(0.99)
	n50 := s.CoveringWeight(0.50)
	if n50 >= n99 {
		t.Errorf("covering 50%% (%d) should need fewer UGs than 99%% (%d)", n50, n99)
	}
	if n99 > s.Len() {
		t.Errorf("covering count %d exceeds population %d", n99, s.Len())
	}
	// With Zipf skew, 99% of traffic needs notably less than 100% of UGs.
	if n99 == s.Len() {
		t.Logf("note: 99%% coverage required all %d UGs", n99)
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, g := testSet(t)
	a, err := Build(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	for i := range a.UGs {
		if a.UGs[i] != b.UGs[i] {
			t.Fatalf("UG %d differs across builds", i)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	_, g := testSet(t)
	if _, err := Build(g, Config{Seed: 1, ZipfExponent: 0, ResolversPerISP: 1}); err == nil {
		t.Error("zero Zipf exponent should fail")
	}
	if _, err := Build(g, Config{Seed: 1, ZipfExponent: 1, ResolversPerISP: 0}); err == nil {
		t.Error("zero resolvers per ISP should fail")
	}
	empty := topology.NewGraph()
	if _, err := Build(empty, DefaultConfig()); err == nil {
		t.Error("empty topology should fail")
	}
}

func TestTargetUGsPadsPopulation(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{Seed: 15, Tier1: 4, Tier2: 20, Stubs: 200,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3, EnterpriseFrac: 0.4, ContentFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	natural, err := Build(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.TargetUGs = natural.Len() + 500
	s, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != cfg.TargetUGs {
		t.Fatalf("padded set has %d UGs, want %d", s.Len(), cfg.TargetUGs)
	}
	// No duplicate (AS, metro) pairs; every UG is a stub AS in a real
	// metro; weights still normalized; IDs dense.
	seen := map[[2]string]bool{}
	var total float64
	for _, u := range s.UGs {
		key := [2]string{u.ASN.String(), u.Metro}
		if seen[key] {
			t.Fatalf("duplicate UG pair %v", key)
		}
		seen[key] = true
		if g.AS(u.ASN) == nil || g.AS(u.ASN).Tier != topology.TierStub {
			t.Fatalf("UG %d references non-stub AS %v", u.ID, u.ASN)
		}
		total += u.Weight
		if got := s.Get(u.ID); got == nil || got.ID != u.ID {
			t.Fatalf("Get(%d) broken on padded set", u.ID)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("padded weights sum to %v, want 1", total)
	}
}

func TestTargetUGsZeroIsByteIdentical(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{Seed: 15, Tier1: 4, Tier2: 20, Stubs: 200,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3, EnterpriseFrac: 0.4, ContentFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TargetUGs = 0
	b, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.UGs) != len(b.UGs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.UGs), len(b.UGs))
	}
	for i := range a.UGs {
		if a.UGs[i] != b.UGs[i] {
			t.Fatalf("UG %d differs with TargetUGs=0: %+v vs %+v", i, a.UGs[i], b.UGs[i])
		}
	}
}

func TestTargetUGsBelowNaturalIsNoop(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{Seed: 15, Tier1: 4, Tier2: 20, Stubs: 200,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3, EnterpriseFrac: 0.4, ContentFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	natural, err := Build(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TargetUGs = natural.Len() / 2
	s, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != natural.Len() {
		t.Fatalf("TargetUGs below natural count changed population: %d vs %d", s.Len(), natural.Len())
	}
}
