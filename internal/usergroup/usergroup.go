// Package usergroup defines user groups (UGs) — users in the same AS and
// metropolitan area, the paper's unit of traffic aggregation (§3.1) —
// plus traffic weights and recursive-resolver assignment used by the DNS
// granularity experiments (§5.2.2).
package usergroup

import (
	"fmt"
	"math/rand"
	"sort"

	"painter/internal/geo"
	"painter/internal/stats"
	"painter/internal/topology"
)

// ID identifies a user group.
type ID int32

// UG is one user group: users of one AS in one metro.
type UG struct {
	ID    ID
	ASN   topology.ASN
	Metro string
	Coord geo.Coord
	// Weight is the UG's share of total cloud traffic volume (sums to 1
	// across a Set).
	Weight float64
	// Resolver is the recursive DNS resolver serving this UG.
	Resolver ResolverID
}

// ResolverID identifies a recursive resolver.
type ResolverID int32

// Resolver models one recursive DNS resolver and where it sits.
type Resolver struct {
	ID    ResolverID
	Metro string
	// Public marks large public DNS services (e.g. Google Public DNS)
	// that serve users far from the resolver location and support ECS.
	Public bool
}

// Set is a collection of UGs with the resolver catalog.
type Set struct {
	UGs       []UG
	Resolvers []Resolver

	// byIdx maps ID → index in UGs (-1 absent); IDs are dense from
	// Build, so a slice beats a map at azure scale.
	byIdx []int32
	byRes map[ResolverID][]ID
}

// Config parameterizes UG construction.
type Config struct {
	Seed int64
	// ZipfExponent controls traffic concentration across UGs. ~1.1
	// reproduces the heavy skew of real cloud traffic.
	ZipfExponent float64
	// PublicResolverFrac is the fraction of UGs using a public resolver
	// regardless of location. Real-world: a large minority uses Google
	// DNS / similar.
	PublicResolverFrac float64
	// ResolversPerISP is how many resolver pools each ISP operates. ISP
	// resolvers serve the ISP's customers across its whole footprint,
	// which is what makes DNS-based steering coarse (§5.2.2: LDNS serve
	// geographically disparate users).
	ResolversPerISP int
	// TargetUGs, when positive, pads the natural (stub AS, metro
	// presence) population up to this count by sampling extra
	// (stub AS, metro) pairs — a uniform stub AS crossed with a
	// population-weighted metro — deduplicated against existing pairs.
	// This models eyeball ASes whose users appear in metros beyond the
	// AS's registered presences, and is how azure-scale runs reach 10^5+
	// UGs from 10^4 ASes. 0 leaves the natural population untouched
	// (byte-identical to builds before the knob existed). The target is
	// capped at stubs × metros (the pair space).
	TargetUGs int
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{Seed: 31, ZipfExponent: 1.1, PublicResolverFrac: 0.25, ResolversPerISP: 1}
}

// Build creates one UG per (stub AS, metro presence) pair in the
// topology, assigns Zipf traffic weights (shuffled so weight does not
// correlate with ASN), and assigns each UG a recursive resolver: its
// ISP's resolver (serving that ISP's customers everywhere, hence
// geographically disparate populations) or one of a handful of public
// resolvers.
func Build(g *topology.Graph, cfg Config) (*Set, error) {
	if cfg.ZipfExponent <= 0 {
		return nil, fmt.Errorf("usergroup: ZipfExponent must be positive")
	}
	if cfg.ResolversPerISP < 1 {
		return nil, fmt.Errorf("usergroup: need >=1 resolver per ISP")
	}
	rng := stats.NewRand(cfg.Seed)

	var ugs []UG
	var id ID
	for _, n := range g.ASNs() {
		a := g.AS(n)
		if a.Tier != topology.TierStub {
			continue
		}
		for _, mc := range a.Metros {
			m, err := geo.MetroByCode(mc)
			if err != nil {
				return nil, fmt.Errorf("usergroup: AS %v: %w", n, err)
			}
			ugs = append(ugs, UG{ID: id, ASN: n, Metro: mc, Coord: m.Coord})
			id++
		}
	}
	if len(ugs) == 0 {
		return nil, fmt.Errorf("usergroup: topology has no stub ASes")
	}

	// Pad toward TargetUGs with synthetic (stub AS, metro) pairs. Guarded
	// so TargetUGs=0 consumes no RNG draws and stays byte-identical to
	// the pre-knob behavior.
	if cfg.TargetUGs > len(ugs) {
		var err error
		ugs, err = padUGs(g, ugs, cfg.TargetUGs, rng)
		if err != nil {
			return nil, err
		}
	}

	// Zipf weights assigned in shuffled order.
	weights := stats.ZipfWeights(len(ugs), cfg.ZipfExponent)
	perm := rng.Perm(len(ugs))
	for i := range ugs {
		ugs[i].Weight = weights[perm[i]]
	}

	// Resolver catalog: per-ISP pools (hosted at the ISP's first listed
	// metro) plus 3 public resolvers.
	var resolvers []Resolver
	var rid ResolverID
	ispResolvers := make(map[topology.ASN][]ResolverID)
	for _, n := range g.ASNs() {
		a := g.AS(n)
		if a.Kind != topology.KindTransit || len(a.Metros) == 0 {
			continue
		}
		for k := 0; k < cfg.ResolversPerISP; k++ {
			resolvers = append(resolvers, Resolver{ID: rid, Metro: a.Metros[0]})
			ispResolvers[n] = append(ispResolvers[n], rid)
			rid++
		}
	}
	publicMetros := []string{"ash", "fra", "sin"}
	var publicIDs []ResolverID
	for _, pm := range publicMetros {
		resolvers = append(resolvers, Resolver{ID: rid, Metro: pm, Public: true})
		publicIDs = append(publicIDs, rid)
		rid++
	}

	for i := range ugs {
		if rng.Float64() < cfg.PublicResolverFrac {
			ugs[i].Resolver = publicIDs[rng.Intn(len(publicIDs))]
			continue
		}
		// Use the resolver of one of the UG's ISPs.
		provs := g.AS(ugs[i].ASN).Providers
		var pool []ResolverID
		if len(provs) > 0 {
			pool = ispResolvers[provs[rng.Intn(len(provs))]]
		}
		if len(pool) == 0 {
			// AS with no transit resolver: fall back to a public one.
			ugs[i].Resolver = publicIDs[rng.Intn(len(publicIDs))]
			continue
		}
		ugs[i].Resolver = pool[rng.Intn(len(pool))]
	}

	return newSet(ugs, resolvers), nil
}

// padUGs extends ugs with synthetic (stub AS, metro) pairs until it
// reaches target (capped at the pair space): the AS is drawn uniformly
// over stubs, the metro by population weight, and pairs already present
// are rejected and redrawn.
func padUGs(g *topology.Graph, ugs []UG, target int, rng *rand.Rand) ([]UG, error) {
	var stubs []topology.ASN
	for _, n := range g.ASNs() {
		if g.AS(n).Tier == topology.TierStub {
			stubs = append(stubs, n)
		}
	}
	metros := geo.Metros()
	cum := make([]float64, len(metros))
	var total float64
	for i, m := range metros {
		total += m.Weight
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("usergroup: metro catalog has no weight")
	}
	if space := len(stubs) * len(metros); target > space {
		target = space
	}
	seen := make(map[[2]int64]bool, target)
	for _, u := range ugs {
		mi := metroIndex(metros, u.Metro)
		if mi < 0 {
			continue
		}
		seen[[2]int64{int64(u.ASN), int64(mi)}] = true
	}
	id := ID(len(ugs))
	for len(ugs) < target {
		asn := stubs[rng.Intn(len(stubs))]
		mi := sort.SearchFloat64s(cum, rng.Float64()*total)
		if mi >= len(metros) {
			mi = len(metros) - 1
		}
		key := [2]int64{int64(asn), int64(mi)}
		if seen[key] {
			continue
		}
		seen[key] = true
		m := metros[mi]
		ugs = append(ugs, UG{ID: id, ASN: asn, Metro: m.Code, Coord: m.Coord})
		id++
	}
	return ugs, nil
}

func metroIndex(metros []geo.Metro, code string) int {
	for i, m := range metros {
		if m.Code == code {
			return i
		}
	}
	return -1
}

func newSet(ugs []UG, resolvers []Resolver) *Set {
	s := &Set{
		UGs:       ugs,
		Resolvers: resolvers,
		byRes:     make(map[ResolverID][]ID),
	}
	// IDs from Build are dense 0..n-1; Subset preserves original IDs, so
	// index lookups go through a slice keyed by ID when the max ID is
	// reasonable, avoiding a 10^5-entry map at azure scale.
	maxID := ID(-1)
	for i := range s.UGs {
		if s.UGs[i].ID > maxID {
			maxID = s.UGs[i].ID
		}
	}
	s.byIdx = make([]int32, maxID+1)
	for i := range s.byIdx {
		s.byIdx[i] = -1
	}
	for i := range s.UGs {
		u := &s.UGs[i]
		s.byIdx[u.ID] = int32(i)
		s.byRes[u.Resolver] = append(s.byRes[u.Resolver], u.ID)
	}
	return s
}

// Subset returns a new Set containing only the UGs accepted by keep,
// with weights renormalized to sum to 1. The resolver catalog is shared.
func (s *Set) Subset(keep func(UG) bool) *Set {
	var ugs []UG
	var total float64
	for _, u := range s.UGs {
		if keep(u) {
			ugs = append(ugs, u)
			total += u.Weight
		}
	}
	if total > 0 {
		for i := range ugs {
			ugs[i].Weight /= total
		}
	}
	return newSet(ugs, s.Resolvers)
}

// Get returns the UG with the given ID (nil if absent).
func (s *Set) Get(id ID) *UG {
	if id < 0 || int(id) >= len(s.byIdx) || s.byIdx[id] < 0 {
		return nil
	}
	return &s.UGs[s.byIdx[id]]
}

// Len returns the number of UGs.
func (s *Set) Len() int { return len(s.UGs) }

// TotalWeight returns the sum of weights (≈1 for a full Build).
func (s *Set) TotalWeight() float64 {
	var t float64
	for _, u := range s.UGs {
		t += u.Weight
	}
	return t
}

// ByResolver returns the UG IDs served by a resolver.
func (s *Set) ByResolver(r ResolverID) []ID { return s.byRes[r] }

// ResolverOf returns the resolver record for a UG.
func (s *Set) ResolverOf(id ID) (Resolver, error) {
	u := s.Get(id)
	if u == nil {
		return Resolver{}, fmt.Errorf("usergroup: unknown UG %d", id)
	}
	for _, r := range s.Resolvers {
		if r.ID == u.Resolver {
			return r, nil
		}
	}
	return Resolver{}, fmt.Errorf("usergroup: UG %d references unknown resolver %d", id, u.Resolver)
}

// TopByWeight returns the n heaviest UGs (descending weight).
func (s *Set) TopByWeight(n int) []UG {
	out := append([]UG(nil), s.UGs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// CoveringWeight returns the smallest count k such that the k heaviest
// UGs carry at least frac of total weight — used to pick the "99% of
// traffic" working set (Appendix C).
func (s *Set) CoveringWeight(frac float64) int {
	top := s.TopByWeight(len(s.UGs))
	total := s.TotalWeight()
	var acc float64
	for i, u := range top {
		acc += u.Weight
		if acc >= frac*total {
			return i + 1
		}
	}
	return len(top)
}
