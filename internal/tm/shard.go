package tm

// Lock-striped flow tables. Both tunnel ends key hot per-packet state
// by tmproto.FlowKey — the PoP's Known Flows NAT table and the edge's
// flow→destination pinning table. A single mutex around one map turns
// into the datapath's global serialization point once reads arrive in
// batches from several sockets, so the state is striped across
// flowShardCount independently locked maps selected by a hash of the
// key. SO_REUSEPORT already spreads flows across reader goroutines by
// 4-tuple hash; striping by the same identity means readers rarely
// contend on a stripe.

import (
	"encoding/binary"
	"sync"

	"painter/internal/tmproto"
)

// flowShardCount is the stripe count (power of two so the hash maps by
// mask). 16 stripes keep worst-case contention at readers/16 even with
// every socket busy.
const flowShardCount = 16

// hashFlowKey mixes the 13 key bytes FNV-1a style. The kernel hashes
// the outer 4-tuple, we hash the inner 5-tuple, so stripe choice is
// stable across tunnel re-homes (the outer address changes, the inner
// flow does not).
func hashFlowKey(k tmproto.FlowKey) uint32 {
	var b [16]byte
	b[0] = k.Proto
	src := k.Src.As4()
	copy(b[1:5], src[:])
	dst := k.Dst.As4()
	copy(b[5:9], dst[:])
	binary.BigEndian.PutUint16(b[9:11], k.SrcPort)
	binary.BigEndian.PutUint16(b[11:13], k.DstPort)
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b[:13] {
		h ^= uint32(c)
		h *= prime32
	}
	// FNV-1a's low bits avalanche poorly and the stripe index is a low-bit
	// mask, so finish with a murmur3-style mixer.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// flowShard is one stripe: a mutex and its map.
type flowShard[V any] struct {
	mu sync.Mutex
	m  map[tmproto.FlowKey]V
	_  [40]byte // pad to a cache line so neighboring stripes don't false-share
}

// flowMap is a lock-striped map keyed by FlowKey.
type flowMap[V any] struct {
	shards [flowShardCount]flowShard[V]
}

func newFlowMap[V any]() *flowMap[V] {
	t := &flowMap[V]{}
	for i := range t.shards {
		t.shards[i].m = make(map[tmproto.FlowKey]V)
	}
	return t
}

func (t *flowMap[V]) shard(k tmproto.FlowKey) *flowShard[V] {
	return &t.shards[hashFlowKey(k)&(flowShardCount-1)]
}

// Get returns the value pinned to k.
func (t *flowMap[V]) Get(k tmproto.FlowKey) (V, bool) {
	s := t.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

// Set stores v under k.
func (t *flowMap[V]) Set(k tmproto.FlowKey, v V) {
	s := t.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Update runs fn under the stripe lock with the current value (zero, ok
// false when absent). fn returns the new value and whether to keep the
// entry; returning keep=false deletes it. Update returns fn's value.
// fn must not call back into the map (lock is held).
func (t *flowMap[V]) Update(k tmproto.FlowKey, fn func(v V, ok bool) (V, bool)) V {
	s := t.shard(k)
	s.mu.Lock()
	old, ok := s.m[k]
	nv, keep := fn(old, ok)
	if keep {
		s.m[k] = nv
	} else if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	return nv
}

// Len sums the stripe sizes. Approximate under concurrent mutation
// (each stripe is counted at a different instant), exact when quiesced.
func (t *flowMap[V]) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Sweep deletes every entry for which drop returns true, taking one
// stripe lock at a time so the datapath never stalls behind a full-table
// scan. Returns the number of entries deleted.
func (t *flowMap[V]) Sweep(drop func(k tmproto.FlowKey, v V) bool) int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			if drop(k, v) {
				delete(s.m, k)
				total++
			}
		}
		s.mu.Unlock()
	}
	return total
}

// Range calls fn for every entry, one stripe lock at a time. fn must
// not mutate the map.
func (t *flowMap[V]) Range(fn func(k tmproto.FlowKey, v V)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			fn(k, v)
		}
		s.mu.Unlock()
	}
}
