package tm

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"painter/internal/netsim/emul"
	"painter/internal/tmproto"
)

// rig is a full prototype: two PoPs behind latency links, one edge.
type rig struct {
	popA, popB   *PoP
	linkA, linkB *emul.Link
	edge         *Edge
	events       chan Event
}

func flowKey(port uint16) tmproto.FlowKey {
	return tmproto.FlowKey{
		Proto:   17,
		Src:     netip.MustParseAddr("10.0.0.5"),
		Dst:     netip.MustParseAddr("203.0.113.9"),
		SrcPort: port,
		DstPort: 443,
	}
}

func destFor(link *emul.Link, pop uint32) tmproto.Destination {
	ap, err := netip.ParseAddrPort(link.Addr())
	if err != nil {
		panic(err)
	}
	return tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: pop}
}

// newRig brings up PoP-A (fast path) and PoP-B (slower path).
func newRig(t *testing.T, delayA, delayB time.Duration, onReturn func(tmproto.FlowKey, []byte)) *rig {
	return newRigCfg(t, delayA, delayB, onReturn, nil)
}

// newRigCfg additionally lets a test tweak the edge config.
func newRigCfg(t *testing.T, delayA, delayB time.Duration, onReturn func(tmproto.FlowKey, []byte), tweak func(*EdgeConfig)) *rig {
	t.Helper()
	r := &rig{events: make(chan Event, 256)}
	var err error
	r.popA, err = NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.popB, err = NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 2})
	if err != nil {
		t.Fatal(err)
	}
	r.linkA, err = emul.NewLink(r.popA.Addr(), delayA, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.linkB, err = emul.NewLink(r.popB.Addr(), delayB, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.MinFailureTimeout = 15 * time.Millisecond
	cfg.Destinations = []tmproto.Destination{destFor(r.linkA, 1), destFor(r.linkB, 2)}
	cfg.OnReturn = onReturn
	cfg.OnEvent = func(ev Event) {
		select {
		case r.events <- ev:
		default:
		}
	}
	if tweak != nil {
		tweak(&cfg)
	}
	r.edge, err = NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r.edge.Close()
		r.linkA.Close()
		r.linkB.Close()
		r.popA.Close()
		r.popB.Close()
	})
	return r
}

// waitSelected waits until the edge selects the destination of the given
// PoP.
func (r *rig) waitSelected(t *testing.T, pop uint32, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if d, ok := r.edge.Selected(); ok && d.PoP == pop {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	d, ok := r.edge.Selected()
	t.Fatalf("edge did not select PoP %d within %v (selected=%+v ok=%v)", pop, within, d, ok)
}

func TestEdgeSelectsLowestLatency(t *testing.T) {
	r := newRig(t, 5*time.Millisecond, 25*time.Millisecond, nil)
	r.waitSelected(t, 1, 2*time.Second)
	// Wait for the slower destination to come alive too (RTT ≈ 50ms).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := r.edge.Status()
		alive := 0
		for _, d := range st {
			if d.Alive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := r.edge.Status()
	if len(st) != 2 {
		t.Fatalf("status has %d destinations", len(st))
	}
	for _, d := range st {
		if !d.Alive {
			t.Errorf("destination %v not alive", d.Dest)
		}
		if d.Dest.PoP == 1 && d.RTT > 40*time.Millisecond {
			t.Errorf("PoP1 RTT %v implausible for 5ms one-way", d.RTT)
		}
		if d.Dest.PoP == 1 != d.Selected {
			t.Errorf("selection flag wrong for %+v", d)
		}
	}
}

func TestEchoThroughTunnel(t *testing.T) {
	got := make(chan []byte, 8)
	r := newRig(t, 5*time.Millisecond, 25*time.Millisecond,
		func(_ tmproto.FlowKey, payload []byte) { got <- payload })
	r.waitSelected(t, 1, 2*time.Second)

	if err := r.edge.Send(flowKey(1000), []byte("ping-payload")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "ping-payload" {
			t.Errorf("echoed %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("echo not received")
	}
	// NAT table recorded the flow.
	if r.popA.Stats().DataIn == 0 {
		t.Error("PoP-A saw no data")
	}
}

func TestFlowPinningImmutable(t *testing.T) {
	// Large failure timeout: the latency jump below must not read as a
	// path failure (pinning semantics are what we are testing).
	r := newRigCfg(t, 5*time.Millisecond, 25*time.Millisecond, nil, func(c *EdgeConfig) {
		c.MinFailureTimeout = 500 * time.Millisecond
	})
	r.waitSelected(t, 1, 2*time.Second)
	fk := flowKey(2000)
	if err := r.edge.Send(fk, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Wait for the first packet to traverse the (delayed) link.
	waitCount := func(get func() uint64, want uint64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && get() < want {
			time.Sleep(5 * time.Millisecond)
		}
		if got := get(); got < want {
			t.Fatalf("counter = %d, want >= %d", got, want)
		}
	}
	waitCount(func() uint64 { return r.popA.Stats().DataIn }, 1)
	// Make PoP-B look better: speed its link up and slow A down. The
	// existing flow must stay pinned to A while it remains alive.
	r.linkA.SetDelay(30 * time.Millisecond)
	r.linkB.SetDelay(2 * time.Millisecond)
	r.waitSelected(t, 2, 3*time.Second)
	before := r.popA.Stats().DataIn
	if err := r.edge.Send(fk, []byte("b")); err != nil {
		t.Fatal(err)
	}
	waitCount(func() uint64 { return r.popA.Stats().DataIn }, before+1)
	// A brand new flow uses the new selection (PoP-B).
	bBefore := r.popB.Stats().DataIn
	if err := r.edge.Send(flowKey(2001), []byte("c")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.popB.Stats().DataIn == bBefore {
		time.Sleep(5 * time.Millisecond)
	}
	if r.popB.Stats().DataIn == bBefore {
		t.Error("new flow did not use newly selected PoP")
	}
}

func TestFailoverAtRTTTimescale(t *testing.T) {
	r := newRig(t, 5*time.Millisecond, 25*time.Millisecond, nil)
	r.waitSelected(t, 1, 2*time.Second)
	// Let RTT estimates settle.
	time.Sleep(300 * time.Millisecond)

	// Fail PoP-A's path (prefix withdrawal).
	failAt := time.Now()
	r.linkA.SetDown(true)

	// Edge must detect death and select PoP-B.
	r.waitSelected(t, 2, 2*time.Second)
	detect := time.Since(failAt)

	// Detection should be at RTT timescales: with a 10ms RTT on A, a
	// 20ms probe interval, and 1.3×RTT timeouts, well under a second —
	// an order of magnitude under BGP/DNS reaction times.
	if detect > 500*time.Millisecond {
		t.Errorf("failover took %v, want RTT-timescale", detect)
	}

	sawDead := false
	timeout := time.After(time.Second)
	for !sawDead {
		select {
		case ev := <-r.events:
			if ev.Kind == EventDestDead && ev.Dest.PoP == 1 {
				sawDead = true
				if ev.SinceLastReply > 300*time.Millisecond {
					t.Errorf("declared dead %v after last reply", ev.SinceLastReply)
				}
			}
		case <-timeout:
			t.Fatal("no dest-dead event observed")
		}
	}
	if r.edge.Stats().Failovers == 0 {
		t.Error("failover counter not incremented")
	}
}

func TestRecoveryAfterFailure(t *testing.T) {
	r := newRig(t, 5*time.Millisecond, 25*time.Millisecond, nil)
	r.waitSelected(t, 1, 2*time.Second)
	time.Sleep(150 * time.Millisecond)
	r.linkA.SetDown(true)
	r.waitSelected(t, 2, 2*time.Second)
	r.linkA.SetDown(false)
	// Once A answers probes again it should win back the selection
	// (lower RTT beats hysteresis).
	r.waitSelected(t, 1, 3*time.Second)
}

func TestFlowRepinsAfterDestinationDeath(t *testing.T) {
	got := make(chan []byte, 8)
	r := newRig(t, 5*time.Millisecond, 25*time.Millisecond,
		func(_ tmproto.FlowKey, p []byte) { got <- p })
	r.waitSelected(t, 1, 2*time.Second)
	fk := flowKey(3000)
	if err := r.edge.Send(fk, []byte("before")); err != nil {
		t.Fatal(err)
	}
	<-got
	r.linkA.SetDown(true)
	r.waitSelected(t, 2, 2*time.Second)
	if err := r.edge.Send(fk, []byte("after")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "after" {
			t.Errorf("got %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("re-pinned flow got no echo")
	}
	if r.edge.Stats().RepinnedFlows == 0 {
		t.Error("repin counter not incremented")
	}
}

func TestNoAliveDestinations(t *testing.T) {
	r := newRig(t, 5*time.Millisecond, 10*time.Millisecond, nil)
	r.waitSelected(t, 1, 2*time.Second)
	r.linkA.SetDown(true)
	r.linkB.SetDown(true)
	// Wait for both to be declared dead.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		st := r.edge.Status()
		anyAlive := false
		for _, d := range st {
			if d.Alive {
				anyAlive = true
			}
		}
		if !anyAlive {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.edge.Send(flowKey(4000), []byte("x")); err == nil {
		t.Error("Send with no alive destinations should fail")
	}
}

func TestResolveFromPoP(t *testing.T) {
	dests := []tmproto.Destination{
		{Addr: netip.MustParseAddr("1.1.1.1"), Port: 4000, PoP: 1, Anycast: true},
		{Addr: netip.MustParseAddr("2.2.2.2"), Port: 4001, PoP: 1},
	}
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1, Destinations: dests})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	edge, err := NewEdge(EdgeConfig{ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	if err := edge.ResolveFrom(pop.Addr(), "svc", time.Second); err != nil {
		t.Fatal(err)
	}
	st := edge.Status()
	if len(st) != 2 {
		t.Fatalf("resolved %d destinations, want 2", len(st))
	}
	if pop.Stats().Resolves != 1 {
		t.Error("PoP resolve counter wrong")
	}
}

func TestSetDestinationsRemoval(t *testing.T) {
	r := newRig(t, 5*time.Millisecond, 10*time.Millisecond, nil)
	r.waitSelected(t, 1, 2*time.Second)
	// Remove PoP-A's destination; the edge must select PoP-B.
	if err := r.edge.SetDestinations([]tmproto.Destination{destFor(r.linkB, 2)}); err != nil {
		t.Fatal(err)
	}
	r.waitSelected(t, 2, 2*time.Second)
	if len(r.edge.Status()) != 1 {
		t.Errorf("status should have 1 destination")
	}
}

func TestPoPMalformedCounters(t *testing.T) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	conn, err := netDial(pop.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && pop.Stats().Malformed == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if pop.Stats().Malformed == 0 {
		t.Error("malformed datagram not counted")
	}
}

func TestConcurrentSends(t *testing.T) {
	var mu sync.Mutex
	rcvd := map[string]bool{}
	r := newRig(t, 3*time.Millisecond, 6*time.Millisecond,
		func(_ tmproto.FlowKey, p []byte) {
			mu.Lock()
			rcvd[string(p)] = true
			mu.Unlock()
		})
	r.waitSelected(t, 1, 2*time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_ = r.edge.Send(flowKey(uint16(5000+i)), []byte(fmt.Sprintf("m-%d-%d", i, j)))
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(rcvd)
		mu.Unlock()
		if n >= 16*20*9/10 { // UDP: allow a little loss
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	n := len(rcvd)
	mu.Unlock()
	t.Errorf("received %d of %d messages", n, 16*20)
}

// netDial dials a UDP address (helper).
func netDial(addr string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.DialUDP("udp", nil, ua)
}
