package tm

// SelectionPolicy decides which tunnel destination new flows should use
// (§3.2: "the Traffic Manager can use different destination selection
// policies according to enterprise network or service goals"). The edge
// invokes it whenever destination state changes.
//
// Candidates are the currently alive destinations with measured RTTs,
// sorted by ascending RTT (ties by address). incumbent is the index of
// the currently selected destination within candidates, or -1 when the
// current selection is dead or absent. Implementations return the index
// to select; returning the incumbent keeps the selection.
type SelectionPolicy interface {
	Select(candidates []DestinationStatus, incumbent int) int
}

// LowestRTT selects the lowest-RTT destination with hysteresis: the
// incumbent is kept unless a challenger beats it by HysteresisMs,
// preventing oscillation between near-equal paths (§3.2, [38]).
type LowestRTT struct {
	HysteresisMs float64
}

// Select implements SelectionPolicy.
func (p LowestRTT) Select(candidates []DestinationStatus, incumbent int) int {
	if len(candidates) == 0 {
		return -1
	}
	if incumbent >= 0 && incumbent < len(candidates) {
		bestMs := float64(candidates[0].RTT.Microseconds()) / 1000
		curMs := float64(candidates[incumbent].RTT.Microseconds()) / 1000
		if bestMs >= curMs-p.HysteresisMs {
			return incumbent
		}
	}
	return 0
}

// PreferPoP pins the selection to a specific PoP whenever any of its
// destinations is alive, falling back to the lowest-RTT alternative
// otherwise — the "route this service through the compliance region"
// sort of policy an enterprise might configure.
type PreferPoP struct {
	PoP      uint32
	Fallback SelectionPolicy
}

// Select implements SelectionPolicy.
func (p PreferPoP) Select(candidates []DestinationStatus, incumbent int) int {
	for i, c := range candidates {
		if c.Dest.PoP == p.PoP {
			return i
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = LowestRTT{}
	}
	return fb.Select(candidates, incumbent)
}

// AvoidPoP steers away from a PoP unless it is the only alive option —
// e.g. drain a site before maintenance.
type AvoidPoP struct {
	PoP      uint32
	Fallback SelectionPolicy
}

// Select implements SelectionPolicy.
func (p AvoidPoP) Select(candidates []DestinationStatus, incumbent int) int {
	var filtered []DestinationStatus
	idx := make([]int, 0, len(candidates))
	for i, c := range candidates {
		if c.Dest.PoP != p.PoP {
			filtered = append(filtered, c)
			idx = append(idx, i)
		}
	}
	if len(filtered) == 0 {
		// Only the avoided PoP remains: better than nothing.
		fb := p.Fallback
		if fb == nil {
			fb = LowestRTT{}
		}
		return fb.Select(candidates, incumbent)
	}
	// Map the incumbent into the filtered view.
	fIncumbent := -1
	for j, i := range idx {
		if i == incumbent {
			fIncumbent = j
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = LowestRTT{}
	}
	sel := fb.Select(filtered, fIncumbent)
	if sel < 0 {
		return -1
	}
	return idx[sel]
}
