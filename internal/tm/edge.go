package tm

import (
	"fmt"
	"math"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"painter/internal/obs"
	"painter/internal/obs/span"
	"painter/internal/tm/netio"
	"painter/internal/tmproto"
)

// EdgeConfig configures a TM-Edge.
type EdgeConfig struct {
	// Destinations is the initial tunnel destination set (addresses in
	// PAINTER prefixes plus the anycast destination). May be replaced at
	// runtime via ResolveFrom or SetDestinations.
	Destinations []tmproto.Destination
	// ProbeInterval is the idle cadence between probes per destination;
	// the prober is additionally self-clocked: a reply immediately
	// schedules the next probe, so the effective cadence is ≈max(RTT,
	// ProbeInterval).
	ProbeInterval time.Duration
	// FailureRTTMultiple: a destination is declared dead when a probe
	// goes unanswered for FailureRTTMultiple × smoothed RTT (floor
	// MinFailureTimeout). 1.3 reproduces the paper's detection times.
	FailureRTTMultiple float64
	MinFailureTimeout  time.Duration
	// SwitchHysteresisMs: switch the preferred destination only when the
	// challenger is better by this margin, preventing oscillation
	// (§3.2, avoiding oscillations). Used by the default LowestRTT
	// policy; ignored when Policy is set.
	SwitchHysteresisMs float64
	// BackoffFactor multiplies the recovery-probe interval after each
	// unanswered probe to a dead destination (exponential backoff), so a
	// withdrawn prefix is not hammered at the full probe rate. 2 when
	// unset.
	BackoffFactor float64
	// MaxBackoff caps the recovery-probe interval; 20×ProbeInterval when
	// unset. Recovery probing never stops — a destination that answers
	// again is immediately marked alive.
	MaxBackoff time.Duration
	// QuarantineAfter is how many consecutive unanswered recovery probes
	// move a dead destination into quarantine (probed only at MaxBackoff
	// cadence, EventDestQuarantined emitted). 3 when unset.
	QuarantineAfter int
	// JitterSeed seeds the deterministic backoff jitter (±15%), which
	// prevents synchronized recovery-probe bursts across destinations.
	JitterSeed int64
	// Policy chooses among alive destinations; nil means
	// LowestRTT{HysteresisMs: SwitchHysteresisMs}.
	Policy SelectionPolicy
	// OnReturn receives decapsulated return traffic for client flows.
	OnReturn func(flow tmproto.FlowKey, payload []byte)
	// OnEvent, if set, receives state-change events (selection changes,
	// destination death/recovery).
	OnEvent func(Event)
	// Obs, when non-nil, receives edge metrics (probe RTT, failover
	// detection and backoff histograms, activity counters).
	Obs *obs.Registry
	// Tracer, when non-nil, records causal spans: per-probe round trips
	// (with trace context carried on the wire so the PoP's reply side
	// stitches in) and failover chains — silent probe → dead detection
	// → re-selection → flow re-pin, with the re-pinned data packet
	// carrying the trace so the PoP's flow re-home joins the same
	// trace. Nil disables tracing at one-branch cost.
	Tracer *span.Tracer

	// Sockets is the SO_REUSEPORT socket count for the tunnel datapath
	// (0 ⇒ one per CPU, capped; see netio.Config).
	Sockets int
	// Batch is the max datagrams per syscall (0 ⇒ 32; 1 forces the
	// portable single-packet path).
	Batch int
}

// DefaultEdgeConfig returns production-shaped defaults (timers scaled
// down in tests).
func DefaultEdgeConfig() EdgeConfig {
	return EdgeConfig{
		ProbeInterval:      50 * time.Millisecond,
		FailureRTTMultiple: 1.3,
		MinFailureTimeout:  20 * time.Millisecond,
		SwitchHysteresisMs: 2,
		BackoffFactor:      2,
		QuarantineAfter:    3,
	}
}

// EventKind discriminates edge events.
type EventKind uint8

// Event kinds.
const (
	EventSelected EventKind = iota + 1
	EventDestDead
	EventDestAlive
	// EventDestQuarantined: a dead destination's recovery probes have
	// gone unanswered QuarantineAfter times; probing continues only at
	// the MaxBackoff cadence until it answers again.
	EventDestQuarantined
)

func (k EventKind) String() string {
	switch k {
	case EventSelected:
		return "selected"
	case EventDestDead:
		return "dest-dead"
	case EventDestAlive:
		return "dest-alive"
	case EventDestQuarantined:
		return "dest-quarantined"
	default:
		return "event"
	}
}

// Event is one edge state change.
type Event struct {
	Kind EventKind
	Dest tmproto.Destination
	// Prev is the previously selected destination for EventSelected.
	Prev *tmproto.Destination
	At   time.Time
	// SinceLastReply, for EventDestDead, is how long the destination had
	// been silent when declared dead (the detection latency).
	SinceLastReply time.Duration
	RTT            time.Duration
	// Backoff, for EventDestQuarantined, is the recovery-probe interval
	// in force when quarantine began.
	Backoff time.Duration
	// Trace is the failover trace context in scope when the event was
	// emitted (zero when untraced), letting log lines carry trace IDs
	// that join the flight-recorder export.
	Trace span.Context
}

// destState is the edge's view of one tunnel destination. The fields
// read on the Send fast path (aliveFlag, removed, addr, gre, greKey)
// are immutable or atomic so pinned flows tunnel without taking e.mu;
// everything else is guarded by e.mu.
type destState struct {
	dest   tmproto.Destination
	addr   netip.AddrPort
	gre    bool
	greKey uint32

	aliveFlag atomic.Bool
	// removed marks a destState dropped by SetDestinations; flows still
	// pinned to it re-pin on their next send.
	removed atomic.Bool

	rttEWMA     float64 // ms, guarded by e.mu
	lastReply   time.Time
	lastProbe   time.Time
	awaitingSeq uint32
	awaiting    bool
	everReplied bool

	// Dead-destination recovery probing (exponential backoff).
	deadProbes   int       // unanswered probes since declared dead
	nextRecovery time.Time // when the next recovery probe is due
	quarantined  bool
}

func (ds *destState) alive() bool     { return ds.aliveFlag.Load() }
func (ds *destState) setAlive(v bool) { ds.aliveFlag.Store(v) }

// probeRecord is one outstanding probe: which destination it went to
// and when it left, recorded with the local monotonic clock. RTT is
// computed from sentAt, never from the wall-clock timestamp echoed on
// the wire — a stepped clock (NTP correction) must not corrupt the RTT
// EWMA or discard live replies.
type probeRecord struct {
	key    string
	sentAt time.Time
}

// Edge is a running TM-Edge.
type Edge struct {
	cfg   EdgeConfig
	group *netio.Group

	mu       sync.Mutex
	dests    map[string]*destState // keyed by addr string
	selected string                // addr of current best destination
	// lastSelected remembers the previous selection even after its
	// destination died, so failovers triggered by death are attributed.
	lastSelected *tmproto.Destination
	seq          uint32
	seqOwner     map[uint32]probeRecord

	// probeSpans holds the open span of each outstanding traced probe,
	// keyed by sequence number and bounded by the same GC as seqOwner.
	probeSpans map[uint32]*span.Span
	// failover is the open root span of the failover in progress (dead
	// detection through flow re-pin); nil when none. Guarded by mu.
	failover *span.Span

	// flows pins each flow to its destination, striped by flow-key hash
	// so concurrent senders don't serialize on e.mu.
	flows *flowMap[*destState]

	greSeq atomic.Uint32

	wg     sync.WaitGroup
	closed chan struct{}

	m  edgeMetrics
	st edgeCounters
}

// edgeCounters are the hot-path counters, atomic so data sends and
// batched reads never serialize on a stats mutex.
type edgeCounters struct {
	probesSent, repliesRcvd atomic.Uint64
	dataSent, dataRcvd      atomic.Uint64
	failovers, repins       atomic.Uint64
	quarantines             atomic.Uint64
	sendErrors              atomic.Uint64
}

// EdgeStats counts edge activity.
type EdgeStats struct {
	ProbesSent, RepliesRcvd uint64
	DataSent, DataRcvd      uint64
	Failovers               uint64
	RepinnedFlows           uint64
	Quarantines             uint64
	// SendErrors counts tunnel datagrams (probes and data) whose socket
	// write failed. Failed probe sends do NOT count toward ProbesSent —
	// otherwise a blackout detector gated on probes-sent would read a
	// broken socket as "probing fine, replies absent".
	SendErrors uint64
}

// NewEdge starts a TM-Edge with the given configuration.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	if cfg.FailureRTTMultiple <= 0 {
		cfg.FailureRTTMultiple = 1.3
	}
	if cfg.MinFailureTimeout <= 0 {
		cfg.MinFailureTimeout = 20 * time.Millisecond
	}
	if cfg.BackoffFactor <= 1 {
		cfg.BackoffFactor = 2
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 20 * cfg.ProbeInterval
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	group, err := netio.Listen("127.0.0.1:0", netio.Config{Sockets: cfg.Sockets, Batch: cfg.Batch})
	if err != nil {
		return nil, fmt.Errorf("tm: edge listen: %w", err)
	}
	e := &Edge{
		cfg:        cfg,
		group:      group,
		dests:      make(map[string]*destState),
		seqOwner:   make(map[uint32]probeRecord),
		probeSpans: make(map[uint32]*span.Span),
		flows:      newFlowMap[*destState](),
		closed:     make(chan struct{}),
	}
	if err := e.SetDestinations(cfg.Destinations); err != nil {
		_ = group.Close()
		return nil, err
	}
	e.m = newEdgeMetrics(cfg.Obs, e)
	for _, c := range group.Conns() {
		e.wg.Add(1)
		go e.readLoop(c)
	}
	e.wg.Add(1)
	go e.probeLoop()
	return e, nil
}

// conn returns the socket used for originated traffic (probes, data).
// Replies arrive on whichever group socket the kernel hashes them to.
func (e *Edge) conn() netio.Conn { return e.group.Conns()[0] }

// Addr returns the edge's local UDP address.
func (e *Edge) Addr() string { return e.group.Addr().String() }

// SetDestinations replaces the destination set. Existing flows pinned to
// removed destinations are re-pinned on next send.
func (e *Edge) SetDestinations(dests []tmproto.Destination) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := make(map[string]bool, len(dests))
	for _, d := range dests {
		if !d.Addr.Is4() {
			return fmt.Errorf("tm: destination %v not IPv4", d.Addr)
		}
		key := destKey(d)
		seen[key] = true
		if _, ok := e.dests[key]; ok {
			continue
		}
		e.dests[key] = &destState{
			dest:   d,
			addr:   netip.AddrPortFrom(d.Addr, d.Port),
			gre:    d.GRE,
			greKey: d.PoP,
		}
	}
	for key, ds := range e.dests {
		if !seen[key] {
			ds.removed.Store(true)
			delete(e.dests, key)
			if e.selected == key {
				e.selected = ""
			}
		}
	}
	return nil
}

func destKey(d tmproto.Destination) string {
	return fmt.Sprintf("%s:%d", d.Addr, d.Port)
}

// ResolveFrom queries a TM-PoP for the destination set of a service and
// installs it. It blocks until a reply arrives or the timeout expires.
func (e *Edge) ResolveFrom(popAddr, service string, timeout time.Duration) error {
	req, err := tmproto.AppendResolve(nil, tmproto.Resolve{Service: service})
	if err != nil {
		return err
	}
	ua, err := net.ResolveUDPAddr("udp", popAddr)
	if err != nil {
		return err
	}
	// Use a dedicated socket so the reply is not interleaved with tunnel
	// traffic.
	c, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Write(req); err != nil {
		return err
	}
	_ = c.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 64*1024)
	n, err := c.Read(buf)
	if err != nil {
		return fmt.Errorf("tm: resolve from %s: %w", popAddr, err)
	}
	rr, err := tmproto.ParseResolveReply(buf[:n])
	if err != nil {
		return err
	}
	return e.SetDestinations(rr.Destinations)
}

// Stats returns a snapshot.
func (e *Edge) Stats() EdgeStats {
	return EdgeStats{
		ProbesSent:    e.st.probesSent.Load(),
		RepliesRcvd:   e.st.repliesRcvd.Load(),
		DataSent:      e.st.dataSent.Load(),
		DataRcvd:      e.st.dataRcvd.Load(),
		Failovers:     e.st.failovers.Load(),
		RepinnedFlows: e.st.repins.Load(),
		Quarantines:   e.st.quarantines.Load(),
		SendErrors:    e.st.sendErrors.Load(),
	}
}

// Close stops the edge.
func (e *Edge) Close() error {
	select {
	case <-e.closed:
		return nil
	default:
	}
	close(e.closed)
	err := e.group.Close()
	e.wg.Wait()
	e.mu.Lock()
	e.failover.Finish()
	e.failover = nil
	for s, ps := range e.probeSpans {
		delete(e.probeSpans, s)
		ps.Finish()
	}
	e.mu.Unlock()
	return err
}

// DestinationStatus is a point-in-time view of one destination.
type DestinationStatus struct {
	Dest     tmproto.Destination
	Alive    bool
	RTT      time.Duration
	Selected bool
	// Quarantined: dead and probed only at the MaxBackoff cadence.
	Quarantined bool
}

// Status returns the current view of all destinations, sorted by
// address.
func (e *Edge) Status() []DestinationStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]DestinationStatus, 0, len(e.dests))
	for key, ds := range e.dests {
		out = append(out, DestinationStatus{
			Dest:        ds.dest,
			Alive:       ds.alive(),
			RTT:         time.Duration(ds.rttEWMA * float64(time.Millisecond)),
			Selected:    key == e.selected,
			Quarantined: ds.quarantined,
		})
	}
	sort.Slice(out, func(i, j int) bool { return destKey(out[i].Dest) < destKey(out[j].Dest) })
	return out
}

// Selected returns the currently selected destination (ok=false when no
// destination is alive yet).
func (e *Edge) Selected() (tmproto.Destination, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ds, ok := e.dests[e.selected]
	if !ok {
		return tmproto.Destination{}, false
	}
	return ds.dest, true
}

// Send tunnels one client payload. The flow is pinned to the selected
// destination on first use and the mapping is immutable for the flow's
// lifetime (§3.2) — unless its destination has died, in which case the
// flow re-pins (connection state is lost, which the paper accepts in
// exchange for not building a handover system).
//
// The steady-state path — flow pinned, destination alive — touches only
// the flow stripe and the socket: no edge-wide lock.
func (e *Edge) Send(flow tmproto.FlowKey, payload []byte) error {
	if ds, ok := e.flows.Get(flow); ok && !ds.removed.Load() && ds.alive() {
		return e.sendData(ds, flow, payload, tmproto.TraceContext{})
	}
	return e.sendSlow(flow, payload)
}

// sendSlow pins (or re-pins) the flow under e.mu, then sends.
func (e *Edge) sendSlow(flow tmproto.FlowKey, payload []byte) error {
	var trace tmproto.TraceContext
	e.mu.Lock()
	ds, pinned := e.flows.Get(flow)
	if pinned && !ds.removed.Load() && ds.alive() {
		// Raced with another sender that already re-pinned.
		e.mu.Unlock()
		return e.sendData(ds, flow, payload, tmproto.TraceContext{})
	}
	sel := e.dests[e.selected]
	if sel == nil || !sel.alive() {
		// Fall back to any alive destination.
		sel = nil
		for _, cand := range e.sortedDestsLocked() {
			if cand.alive() {
				sel = cand
				break
			}
		}
	}
	if sel == nil {
		e.mu.Unlock()
		return fmt.Errorf("tm: no alive destination")
	}
	if pinned {
		e.st.repins.Add(1)
		e.m.repins.Inc()
		// The re-pin concludes the open failover chain. The data
		// packet carries the re-pin span's context so the PoP's
		// Known Flows re-home records into the same trace.
		if e.failover != nil {
			rp := e.failover.StartChild("tm.edge.repin",
				span.A("flow", flow.String()),
				span.A("dest", destKey(sel.dest)))
			trace = tmproto.TraceContext(rp.Context())
			rp.Finish()
			e.failover.Finish()
			e.failover = nil
		}
	}
	e.flows.Set(flow, sel)
	e.mu.Unlock()
	return e.sendData(sel, flow, payload, trace)
}

// sendData encapsulates and writes one data packet in the destination's
// wire mode.
func (e *Edge) sendData(ds *destState, flow tmproto.FlowKey, payload []byte, trace tmproto.TraceContext) error {
	out, err := tmproto.AppendData(nil, tmproto.Data{Flow: flow, Payload: payload, Trace: trace})
	if err != nil {
		return err
	}
	if ds.gre {
		out = tmproto.AppendGRE(make([]byte, 0, tmproto.GREOverhead+len(out)), ds.greKey, e.greSeq.Add(1), out)
	}
	if _, err := e.conn().WriteBatch([]netio.Message{{Buf: out, N: len(out), Addr: ds.addr}}); err != nil {
		e.st.sendErrors.Add(1)
		e.m.sendErrors.Inc()
		return err
	}
	e.st.dataSent.Add(1)
	e.m.dataSent.Inc()
	return nil
}

// sortedDestsLocked returns destinations ordered by (rtt, key) with
// never-probed ones last. Caller holds e.mu.
func (e *Edge) sortedDestsLocked() []*destState {
	out := make([]*destState, 0, len(e.dests))
	for _, ds := range e.dests {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].rttEWMA, out[j].rttEWMA
		if !out[i].everReplied {
			ri = math.Inf(1)
		}
		if !out[j].everReplied {
			rj = math.Inf(1)
		}
		if ri != rj {
			return ri < rj
		}
		return destKey(out[i].dest) < destKey(out[j].dest)
	})
	return out
}

// probeLoop drives per-destination probing and failure detection.
func (e *Edge) probeLoop() {
	defer e.wg.Done()
	tick := time.NewTicker(e.cfg.ProbeInterval / 4)
	defer tick.Stop()
	for {
		select {
		case <-e.closed:
			return
		case now := <-tick.C:
			e.probeRound(now)
		}
	}
}

// probeRound sends due probes and expires silent destinations.
func (e *Edge) probeRound(now time.Time) {
	var sends []netio.Message
	var events []Event

	e.mu.Lock()
	for key, ds := range e.dests {
		timeout := time.Duration(e.cfg.FailureRTTMultiple * ds.rttEWMA * float64(time.Millisecond))
		if timeout < e.cfg.MinFailureTimeout {
			timeout = e.cfg.MinFailureTimeout
		}
		// The silence threshold must allow one full probe interval plus
		// a round trip, or a single in-flight probe would read as death.
		if floor := e.cfg.ProbeInterval + time.Duration(ds.rttEWMA*float64(time.Millisecond)); timeout < floor {
			timeout = floor
		}
		// Death check: probes outstanding and no reply for longer than
		// the timeout. Keying on silence-since-last-reply (rather than
		// on a single probe) makes isolated packet loss survivable: the
		// prober pipelines probes below, so a healthy-but-lossy path
		// keeps producing replies.
		if ds.awaiting && ds.alive() && now.Sub(ds.lastReply) > timeout {
			ds.setAlive(false)
			ds.deadProbes = 0
			ds.quarantined = false
			ds.nextRecovery = now // first recovery probe goes out at once
			e.m.failoverDetectionMs.Observe(float64(now.Sub(ds.lastReply)) / float64(time.Millisecond))
			// The unanswered probe's own span (a separate trace) ends
			// here, marked timed out.
			if ps := e.probeSpans[ds.awaitingSeq]; ps != nil {
				delete(e.probeSpans, ds.awaitingSeq)
				ps.SetAttr("timeout", "true")
				ps.Finish()
			}
			// Open the failover trace: one root spanning dead detection
			// through re-selection and (if a pinned flow existed) the
			// re-pin whose data packet stitches the PoP's re-home in.
			e.failover.Finish() // a still-open previous chain ends now
			e.failover = e.cfg.Tracer.StartRoot("tm.edge.failover",
				span.A("dest", destKey(ds.dest)))
			probeSpan := e.failover.StartChild("tm.edge.probe",
				span.A("seq", fmt.Sprint(ds.awaitingSeq)),
				span.A("silent_ms", fmt.Sprintf("%.1f", float64(now.Sub(ds.lastReply))/float64(time.Millisecond))))
			probeSpan.Finish()
			dead := e.failover.StartChild("tm.edge.dead",
				span.A("dest", destKey(ds.dest)),
				span.A("silent_ms", fmt.Sprintf("%.1f", float64(now.Sub(ds.lastReply))/float64(time.Millisecond))))
			dead.Finish()
			events = append(events, Event{
				Kind: EventDestDead, Dest: ds.dest, At: now,
				SinceLastReply: now.Sub(ds.lastReply),
				RTT:            time.Duration(ds.rttEWMA * float64(time.Millisecond)),
				Trace:          e.failover.Context(),
			})
			if e.selected == key {
				e.selected = ""
			}
		}
		// Probes are pipelined at the probe interval regardless of
		// outstanding state: a lost probe must not silence the prober.
		// Earlier probes stay registered in seqOwner so a late reply —
		// e.g. from a destination whose true RTT exceeds the initial
		// timeout — still marks the destination alive.
		//
		// Dead destinations are probed on an exponential-backoff
		// schedule instead, so a withdrawn prefix is not hammered at the
		// full probe rate but recovery is still noticed (the probe that
		// finally answers marks it alive again).
		var due bool
		if ds.alive() {
			due = now.Sub(ds.lastProbe) >= e.cfg.ProbeInterval || ds.lastProbe.IsZero()
		} else {
			due = !now.Before(ds.nextRecovery)
		}
		if due {
			e.seq++
			seq := e.seq
			ds.awaitingSeq = seq
			ds.awaiting = true
			ds.lastProbe = now
			// Record the send time locally: RTT is computed with the
			// monotonic clock on reply, never from the wall-clock
			// timestamp echoed over the wire.
			e.seqOwner[seq] = probeRecord{key: key, sentAt: now}
			e.gcSeqOwnerLocked()
			if !ds.alive() {
				ds.deadProbes++
				backoff := e.backoffAfter(ds.deadProbes, seq)
				ds.nextRecovery = now.Add(backoff)
				e.m.backoffMs.Observe(float64(backoff) / float64(time.Millisecond))
				if !ds.quarantined && ds.deadProbes >= e.cfg.QuarantineAfter {
					ds.quarantined = true
					e.st.quarantines.Add(1)
					events = append(events, Event{
						Kind: EventDestQuarantined, Dest: ds.dest, At: now,
						Backoff: backoff,
					})
				}
			}
			wp := tmproto.Probe{Seq: seq, SentUnixNano: now.UnixNano()}
			if e.cfg.Tracer != nil {
				// One (head-sampled) trace per probe round trip; the
				// context travels on the wire and comes back in the
				// echoed reply, so the PoP's handling stitches in.
				if ps := e.cfg.Tracer.StartRoot("tm.edge.probe",
					span.A("dest", key),
					span.A("seq", fmt.Sprint(seq))); ps != nil {
					e.probeSpans[seq] = ps
					wp.Trace = tmproto.TraceContext(ps.Context())
				}
			}
			pkt := tmproto.AppendProbe(nil, wp, false)
			if ds.gre {
				pkt = tmproto.AppendGRE(make([]byte, 0, tmproto.GREOverhead+len(pkt)), ds.greKey, e.greSeq.Add(1), pkt)
			}
			sends = append(sends, netio.Message{Buf: pkt, N: len(pkt), Addr: ds.addr})
		}
	}
	events = append(events, e.reselectLocked(now)...)
	e.mu.Unlock()

	e.writeProbes(sends)
	e.emit(events)
}

// writeProbes flushes a probe batch, counting successes and failures
// separately: ProbesSent moves only for datagrams that actually left
// the socket, send failures land in SendErrors. A poisoned message is
// skipped and the rest of the batch still goes out.
func (e *Edge) writeProbes(sends []netio.Message) {
	conn := e.conn()
	for len(sends) > 0 {
		sent, err := conn.WriteBatch(sends)
		if sent > 0 {
			e.st.probesSent.Add(uint64(sent))
			e.m.probesSent.Add(uint64(sent))
		}
		if err == nil {
			return
		}
		e.st.sendErrors.Add(1)
		e.m.sendErrors.Inc()
		sends = sends[sent+1:] // sends[sent] is the failed message
	}
}

// reselectLocked applies the selection policy over the alive
// destinations. Caller holds e.mu. Returns events to emit after unlock.
func (e *Edge) reselectLocked(now time.Time) []Event {
	var cands []DestinationStatus
	var states []*destState
	for _, ds := range e.sortedDestsLocked() {
		if ds.alive() && ds.everReplied {
			cands = append(cands, DestinationStatus{
				Dest:     ds.dest,
				Alive:    true,
				RTT:      time.Duration(ds.rttEWMA * float64(time.Millisecond)),
				Selected: destKey(ds.dest) == e.selected,
			})
			states = append(states, ds)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	incumbent := -1
	for i := range cands {
		if cands[i].Selected {
			incumbent = i
		}
	}
	policy := e.cfg.Policy
	if policy == nil {
		policy = LowestRTT{HysteresisMs: e.cfg.SwitchHysteresisMs}
	}
	sel := policy.Select(cands, incumbent)
	if sel < 0 || sel >= len(states) || sel == incumbent {
		return nil
	}
	best := states[sel]
	prev := e.lastSelected
	if prev != nil && destKey(*prev) == destKey(best.dest) {
		// Re-selecting the same destination (e.g. after a blip) is not a
		// failover.
		prev = nil
	}
	e.selected = destKey(best.dest)
	d := best.dest
	e.lastSelected = &d
	if e.failover != nil {
		rs := e.failover.StartChild("tm.edge.reselect",
			span.A("dest", e.selected),
			span.A("rtt_ms", fmt.Sprintf("%.2f", best.rttEWMA)))
		rs.Finish()
	}
	if prev != nil {
		e.st.failovers.Add(1)
		e.m.failovers.Inc()
	}
	return []Event{{
		Kind: EventSelected, Dest: best.dest, Prev: prev, At: now,
		RTT:   time.Duration(best.rttEWMA * float64(time.Millisecond)),
		Trace: e.failover.Context(),
	}}
}

// backoffAfter returns the recovery-probe interval after n consecutive
// unanswered probes to a dead destination: ProbeInterval ×
// BackoffFactor^n, capped at MaxBackoff, with deterministic ±15% jitter
// drawn from (JitterSeed, seq) so bursts don't synchronize across
// destinations but equal configurations reproduce equal schedules.
func (e *Edge) backoffAfter(n int, seq uint32) time.Duration {
	b := float64(e.cfg.ProbeInterval)
	for i := 0; i < n && b < float64(e.cfg.MaxBackoff); i++ {
		b *= e.cfg.BackoffFactor
	}
	if b > float64(e.cfg.MaxBackoff) {
		b = float64(e.cfg.MaxBackoff)
	}
	// splitmix64 over (seed, seq) → factor in [0.85, 1.15).
	z := uint64(e.cfg.JitterSeed)*0x9e3779b97f4a7c15 + uint64(seq)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	f := 0.85 + 0.3*float64(z>>11)/float64(1<<53)
	return time.Duration(b * f)
}

// seqBefore reports whether sequence s precedes cut in wraparound-safe
// serial-number arithmetic (RFC 1982 style): "before" means s is within
// half the sequence space behind cut, so the comparison stays correct
// when the uint32 counter wraps.
func seqBefore(s, cut uint32) bool { return int32(s-cut) < 0 }

// gcSeqOwnerLocked bounds the outstanding-probe registry: when it grows
// past 8192 entries, entries older than half the window are dropped —
// except any sequence a destination is still awaiting. Evicting an
// awaited sequence would make that destination's reply unattributable,
// reading a live-but-slow destination as permanently silent (false
// quarantine under wide fan-out). Caller holds e.mu.
func (e *Edge) gcSeqOwnerLocked() {
	const maxEntries = 8192
	if len(e.seqOwner) <= maxEntries {
		return
	}
	awaited := make(map[uint32]bool, len(e.dests))
	for _, ds := range e.dests {
		if ds.awaiting {
			awaited[ds.awaitingSeq] = true
		}
	}
	cut := e.seq - maxEntries/2
	for s := range e.seqOwner {
		if seqBefore(s, cut) && !awaited[s] {
			delete(e.seqOwner, s)
		}
	}
	// probeSpans is bounded by the same cut, so an unanswered traced
	// probe cannot leak its span forever.
	for s, ps := range e.probeSpans {
		if seqBefore(s, cut) && !awaited[s] {
			delete(e.probeSpans, s)
			ps.SetAttr("lost", "true")
			ps.Finish()
		}
	}
}

func (e *Edge) emit(events []Event) {
	for _, ev := range events {
		e.m.events[ev.Kind].Inc()
		if e.cfg.OnEvent != nil {
			e.cfg.OnEvent(ev)
		}
	}
}

// readLoop drains one group socket: probe replies and return data, in
// batches, unwrapping GRE frames when the peer mirrors that mode.
func (e *Edge) readLoop(conn netio.Conn) {
	defer e.wg.Done()
	ms := make([]netio.Message, e.group.Batch())
	for i := range ms {
		ms[i].Buf = make([]byte, netio.MaxDatagram)
	}
	for {
		n, err := conn.ReadBatch(ms)
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			b := ms[i].Buf[:ms[i].N]
			inner := b
			if tmproto.DetectMode(b) == tmproto.WireGRE {
				_, _, in, gerr := tmproto.ParseGRE(b)
				if gerr != nil {
					continue
				}
				inner = in
			}
			t, err := tmproto.PeekType(inner)
			if err != nil {
				continue
			}
			switch t {
			case tmproto.TypeProbeReply:
				p, _, err := tmproto.ParseProbe(inner)
				if err != nil {
					continue
				}
				e.handleProbeReply(p)
			case tmproto.TypeData:
				d, err := tmproto.ParseData(inner)
				if err != nil {
					continue
				}
				e.st.dataRcvd.Add(1)
				e.m.dataRcvd.Inc()
				if e.cfg.OnReturn != nil {
					payload := append([]byte(nil), d.Payload...)
					e.cfg.OnReturn(d.Flow, payload)
				}
			}
		}
	}
}

// handleProbeReply attributes a reply to its outstanding probe. RTT is
// time.Since the locally recorded send time — monotonic, so a wall
// clock stepped forward cannot inflate the EWMA and one stepped
// backward cannot make a live reply look like it arrived before it was
// sent (which previously discarded the reply and left the destination
// awaiting, to be declared dead while answering every probe).
func (e *Edge) handleProbeReply(p tmproto.Probe) {
	now := time.Now()
	var events []Event
	e.mu.Lock()
	rec, ok := e.seqOwner[p.Seq]
	var rttMs float64
	if ok {
		rttMs = float64(now.Sub(rec.sentAt)) / float64(time.Millisecond)
		if rttMs < 0 {
			rttMs = 0 // monotonic time never goes back; defensive only
		}
	}
	if ps := e.probeSpans[p.Seq]; ps != nil {
		delete(e.probeSpans, p.Seq)
		if ok {
			ps.SetAttr("rtt_ms", fmt.Sprintf("%.2f", rttMs))
		}
		ps.Finish()
	}
	if ok {
		delete(e.seqOwner, p.Seq)
		if ds := e.dests[rec.key]; ds != nil {
			ds.awaiting = false
			ds.lastReply = now
			if !ds.everReplied {
				ds.rttEWMA = rttMs
				ds.everReplied = true
			} else {
				const alpha = 0.3
				ds.rttEWMA = (1-alpha)*ds.rttEWMA + alpha*rttMs
			}
			if !ds.alive() {
				ds.setAlive(true)
				ds.deadProbes = 0
				ds.quarantined = false
				ds.nextRecovery = time.Time{}
				events = append(events, Event{Kind: EventDestAlive, Dest: ds.dest, At: now,
					RTT: time.Duration(ds.rttEWMA * float64(time.Millisecond))})
			}
			events = append(events, e.reselectLocked(now)...)
		}
	}
	e.mu.Unlock()
	e.st.repliesRcvd.Add(1)
	e.m.repliesRcvd.Inc()
	if ok {
		e.m.probeRTTMs.Observe(rttMs)
	}
	e.emit(events)
}
