package tm

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"painter/internal/netsim/emul"
	"painter/internal/tm/netio"
	"painter/internal/tmproto"
)

// TestTunnelUnderLoss drives sustained traffic through a lossy link and
// checks the tunnel keeps working and the prober keeps the destination
// alive despite drops.
func TestTunnelUnderLoss(t *testing.T) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), 2*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	link.SetLossPct(10)

	var rcvd atomic.Int64
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.MinFailureTimeout = 100 * time.Millisecond // ride out bursts of loss
	cfg.Destinations = []tmproto.Destination{destFor(link, 1)}
	cfg.OnReturn = func(tmproto.FlowKey, []byte) { rcvd.Add(1) }
	edge, err := NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := edge.Selected(); !ok {
		t.Fatal("destination never came alive under 10% loss")
	}

	const sends = 300
	fk := flowKey(9000)
	for i := 0; i < sends; i++ {
		if err := edge.Send(fk, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && rcvd.Load() < sends*6/10 {
		time.Sleep(10 * time.Millisecond)
	}
	// 10% loss each way on data+echo: expect ~81% delivery; demand 60%.
	if got := rcvd.Load(); got < sends*6/10 {
		t.Errorf("delivered %d of %d echoes under 10%% loss", got, sends)
	}
	// The destination must still be alive (loss is not failure).
	if d, ok := edge.Selected(); !ok || d.PoP != 1 {
		t.Error("destination flapped dead under loss")
	}
}

// TestManyConcurrentFlows exercises the PoP's Known Flows table with
// hundreds of distinct flows concurrently.
func TestManyConcurrentFlows(t *testing.T) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	var mu sync.Mutex
	perFlow := map[uint16]int{}
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.Destinations = []tmproto.Destination{destFor(link, 1)}
	cfg.OnReturn = func(fk tmproto.FlowKey, _ []byte) {
		mu.Lock()
		perFlow[fk.SrcPort]++
		mu.Unlock()
	}
	edge, err := NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	const flows = 200
	var wg sync.WaitGroup
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fk := flowKey(uint16(10000 + i))
			for j := 0; j < 3; j++ {
				_ = edge.Send(fk, []byte{byte(j)})
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()

	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(perFlow)
		mu.Unlock()
		if n >= flows*95/100 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	n := len(perFlow)
	mu.Unlock()
	if n < flows*95/100 {
		t.Errorf("only %d of %d flows got echoes", n, flows)
	}
	if st := pop.Stats(); st.ActiveFlows < flows*95/100 {
		t.Errorf("PoP Known Flows has %d entries, want ~%d", st.ActiveFlows, flows)
	}
}

// TestHundredThousandFlows drives 10⁵ distinct flows into a PoP through
// the batched client path and checks the sharded Known Flows table holds
// all of them. Injection bypasses the emul relay (a per-packet goroutine
// per datagram would dominate the run) and writes batched datagrams
// straight at the PoP's sockets — exactly the datapath under test:
// client WriteBatch → SO_REUSEPORT readers → batched reads → striped
// table inserts. Runs under -race in `make race`; UDP gives no delivery
// guarantee even on loopback, so rounds are resent until the table
// converges.
func TestHundredThousandFlows(t *testing.T) {
	const flows = 100_000
	pop, err := NewPoP(PoPConfig{
		ListenAddr: "127.0.0.1:0",
		PoPID:      1,
		Service:    DiscardService{}, // echoing 10⁵ replies would measure the echo path
		FlowTTL:    10 * time.Minute, // no purge races with the fill
		Batch:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	target, err := netip.ParseAddrPort(pop.Addr())
	if err != nil {
		t.Fatal(err)
	}

	client, err := netio.Listen("127.0.0.1:0", netio.Config{Sockets: 1, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn := client.Conns()[0]

	// Pre-build one datagram per flow: vary src addr and both ports so
	// the keys cover the full stripe space.
	pkts := make([][]byte, flows)
	for i := range pkts {
		fk := tmproto.FlowKey{
			Proto:   17,
			Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("203.0.113.9"),
			SrcPort: uint16(i),
			DstPort: uint16(443 + i>>16),
		}
		pkt, err := tmproto.AppendData(nil, tmproto.Data{Flow: fk, Payload: []byte{1}})
		if err != nil {
			t.Fatal(err)
		}
		pkts[i] = pkt
	}

	// Loopback UDP has no flow control, so self-clock against the PoP's
	// DataIn counter: never let more than `window` datagrams sit between
	// sender and reader, which keeps the socket buffer from overflowing
	// and makes a pass effectively lossless.
	var sent uint64
	const window = 2048
	sendAll := func() {
		ms := make([]netio.Message, 0, 64)
		flush := func() {
			for len(ms) > 0 {
				n, err := conn.WriteBatch(ms)
				sent += uint64(n)
				if err != nil {
					n++ // skip the poisoned message, resume behind it
				}
				ms = ms[n:]
			}
			ms = ms[:0]
			for sent > pop.Stats().DataIn+window {
				time.Sleep(200 * time.Microsecond)
			}
		}
		for _, pkt := range pkts {
			ms = append(ms, netio.Message{Buf: pkt, N: len(pkt), Addr: target})
			if len(ms) == cap(ms) {
				flush()
			}
		}
		flush()
	}

	deadline := time.Now().Add(2 * time.Minute)
	for round := 0; ; round++ {
		sendAll()
		settle := time.Now().Add(2 * time.Second)
		for time.Now().Before(settle) && pop.Stats().ActiveFlows < flows {
			time.Sleep(10 * time.Millisecond)
		}
		if pop.Stats().ActiveFlows >= flows {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after %d rounds the table holds %d of %d flows", round+1, pop.Stats().ActiveFlows, flows)
		}
	}
	st := pop.Stats()
	if st.ActiveFlows != flows {
		t.Fatalf("ActiveFlows = %d, want exactly %d (no duplicate keys)", st.ActiveFlows, flows)
	}
	if st.DataIn < flows {
		t.Fatalf("DataIn = %d, want >= %d", st.DataIn, flows)
	}
	if st.Malformed != 0 {
		t.Fatalf("Malformed = %d on well-formed batched input", st.Malformed)
	}
}

// BenchmarkTunnelRoundTrip measures end-to-end round trips through the
// full encap → link → decap → NAT → echo → return path.
func BenchmarkTunnelRoundTrip(b *testing.B) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), 0, 5)
	if err != nil {
		b.Fatal(err)
	}
	defer link.Close()

	echo := make(chan struct{}, 1024)
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.Destinations = []tmproto.Destination{destFor(link, 1)}
	cfg.OnReturn = func(tmproto.FlowKey, []byte) { echo <- struct{}{} }
	edge, err := NewEdge(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer edge.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := edge.Selected(); !ok {
		b.Fatal("no destination")
	}

	payload := make([]byte, 1400)
	fk := flowKey(20000)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := edge.Send(fk, payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-echo:
		case <-time.After(2 * time.Second):
			b.Fatal("echo timeout")
		}
	}
}
