package tm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"painter/internal/netsim/emul"
	"painter/internal/tmproto"
)

// TestTunnelUnderLoss drives sustained traffic through a lossy link and
// checks the tunnel keeps working and the prober keeps the destination
// alive despite drops.
func TestTunnelUnderLoss(t *testing.T) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), 2*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	link.SetLossPct(10)

	var rcvd atomic.Int64
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.MinFailureTimeout = 100 * time.Millisecond // ride out bursts of loss
	cfg.Destinations = []tmproto.Destination{destFor(link, 1)}
	cfg.OnReturn = func(tmproto.FlowKey, []byte) { rcvd.Add(1) }
	edge, err := NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := edge.Selected(); !ok {
		t.Fatal("destination never came alive under 10% loss")
	}

	const sends = 300
	fk := flowKey(9000)
	for i := 0; i < sends; i++ {
		if err := edge.Send(fk, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && rcvd.Load() < sends*6/10 {
		time.Sleep(10 * time.Millisecond)
	}
	// 10% loss each way on data+echo: expect ~81% delivery; demand 60%.
	if got := rcvd.Load(); got < sends*6/10 {
		t.Errorf("delivered %d of %d echoes under 10%% loss", got, sends)
	}
	// The destination must still be alive (loss is not failure).
	if d, ok := edge.Selected(); !ok || d.PoP != 1 {
		t.Error("destination flapped dead under loss")
	}
}

// TestManyConcurrentFlows exercises the PoP's Known Flows table with
// hundreds of distinct flows concurrently.
func TestManyConcurrentFlows(t *testing.T) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	var mu sync.Mutex
	perFlow := map[uint16]int{}
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.Destinations = []tmproto.Destination{destFor(link, 1)}
	cfg.OnReturn = func(fk tmproto.FlowKey, _ []byte) {
		mu.Lock()
		perFlow[fk.SrcPort]++
		mu.Unlock()
	}
	edge, err := NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	const flows = 200
	var wg sync.WaitGroup
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fk := flowKey(uint16(10000 + i))
			for j := 0; j < 3; j++ {
				_ = edge.Send(fk, []byte{byte(j)})
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()

	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(perFlow)
		mu.Unlock()
		if n >= flows*95/100 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	n := len(perFlow)
	mu.Unlock()
	if n < flows*95/100 {
		t.Errorf("only %d of %d flows got echoes", n, flows)
	}
	if st := pop.Stats(); st.ActiveFlows < flows*95/100 {
		t.Errorf("PoP Known Flows has %d entries, want ~%d", st.ActiveFlows, flows)
	}
}

// BenchmarkTunnelRoundTrip measures end-to-end round trips through the
// full encap → link → decap → NAT → echo → return path.
func BenchmarkTunnelRoundTrip(b *testing.B) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), 0, 5)
	if err != nil {
		b.Fatal(err)
	}
	defer link.Close()

	echo := make(chan struct{}, 1024)
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.Destinations = []tmproto.Destination{destFor(link, 1)}
	cfg.OnReturn = func(tmproto.FlowKey, []byte) { echo <- struct{}{} }
	edge, err := NewEdge(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer edge.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := edge.Selected(); !ok {
		b.Fatal("no destination")
	}

	payload := make([]byte, 1400)
	fk := flowKey(20000)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := edge.Send(fk, payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-echo:
		case <-time.After(2 * time.Second):
			b.Fatal("echo timeout")
		}
	}
}
