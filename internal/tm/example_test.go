package tm_test

import (
	"fmt"
	"time"

	"painter/internal/tm"
	"painter/internal/tmproto"
)

// ExampleLowestRTT shows the default destination-selection policy's
// hysteresis: a challenger within the margin does not displace the
// incumbent, preventing oscillation between near-equal paths.
func ExampleLowestRTT() {
	policy := tm.LowestRTT{HysteresisMs: 5}
	candidates := []tm.DestinationStatus{ // sorted by RTT ascending
		{Dest: tmproto.Destination{PoP: 1}, Alive: true, RTT: 18 * time.Millisecond},
		{Dest: tmproto.Destination{PoP: 2}, Alive: true, RTT: 20 * time.Millisecond, Selected: true},
	}
	// PoP 1 is 2 ms better: within the 5 ms hysteresis, keep PoP 2.
	keep := policy.Select(candidates, 1)
	fmt.Println("within hysteresis, selected PoP:", candidates[keep].Dest.PoP)

	// PoP 1 improves to 8 ms: clearly better, switch.
	candidates[0].RTT = 8 * time.Millisecond
	sw := policy.Select(candidates, 1)
	fmt.Println("beyond hysteresis, selected PoP:", candidates[sw].Dest.PoP)
	// Output:
	// within hysteresis, selected PoP: 2
	// beyond hysteresis, selected PoP: 1
}
