package tm

// Failover-hardening property tests: bounded reselection away from a
// failed destination under probe loss, and exponential backoff with
// quarantine on dead destinations.

import (
	"net/netip"
	"testing"
	"time"

	"painter/internal/netsim/emul"
	"painter/internal/tmproto"
)

// waitEvent drains the rig's event channel until pred matches, failing
// after the deadline.
func waitEvent(t *testing.T, events <-chan Event, within time.Duration, what string, pred func(Event) bool) Event {
	t.Helper()
	deadline := time.After(within)
	for {
		select {
		case ev := <-events:
			if pred(ev) {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %s event within %v", what, within)
		}
	}
}

// TestFailoverBoundedUnderProbeLoss is the acceptance property: with 20%
// probe loss on the surviving path, the edge must reselect away from a
// failed destination within a bounded number of probe rounds.
func TestFailoverBoundedUnderProbeLoss(t *testing.T) {
	const (
		probeInterval = 10 * time.Millisecond
		// maxRounds bounds the reselection time: death detection needs
		// silence ≥ max(MinFailureTimeout, ProbeInterval+RTT) ≈ 4 rounds,
		// plus scheduling slack and the odd lost survivor probe.
		maxRounds = 40
	)
	r := newRigCfg(t, 3*time.Millisecond, 8*time.Millisecond, nil, func(cfg *EdgeConfig) {
		cfg.ProbeInterval = probeInterval
		cfg.MinFailureTimeout = 40 * time.Millisecond
	})
	r.waitSelected(t, 1, 2*time.Second)

	// Give the survivor a lossy path, then kill the selected link.
	r.linkB.SetLossPct(20)
	start := time.Now()
	r.linkA.SetDown(true)

	ev := waitEvent(t, r.events, 5*time.Second, "reselection", func(ev Event) bool {
		return ev.Kind == EventSelected && ev.Dest.PoP == 2
	})
	elapsed := ev.At.Sub(start)
	rounds := int(elapsed / probeInterval)
	if rounds > maxRounds {
		t.Errorf("reselection took %v (%d probe rounds), bound is %d rounds",
			elapsed, rounds, maxRounds)
	}
	if d, ok := r.edge.Selected(); !ok || d.PoP != 2 {
		t.Fatalf("edge not pinned to survivor: %+v ok=%v", d, ok)
	}
}

// TestDeadDestinationBackoffAndQuarantine drives a single-destination
// edge through death, exponential backoff, quarantine, and recovery.
func TestDeadDestinationBackoffAndQuarantine(t *testing.T) {
	const (
		probeInterval = 10 * time.Millisecond
		maxBackoff    = 80 * time.Millisecond
	)
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), 2*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	events := make(chan Event, 1024)
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = probeInterval
	cfg.MinFailureTimeout = 15 * time.Millisecond
	cfg.BackoffFactor = 2
	cfg.MaxBackoff = maxBackoff
	cfg.QuarantineAfter = 2
	cfg.Destinations = []tmproto.Destination{destFor(link, 1)}
	cfg.OnEvent = func(ev Event) {
		select {
		case events <- ev:
		default:
		}
	}
	edge, err := NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	waitEvent(t, events, 2*time.Second, "initial selection", func(ev Event) bool {
		return ev.Kind == EventSelected && ev.Dest.PoP == 1
	})

	link.SetDown(true)
	waitEvent(t, events, 2*time.Second, "dest-dead", func(ev Event) bool {
		return ev.Kind == EventDestDead
	})
	qev := waitEvent(t, events, 2*time.Second, "dest-quarantined", func(ev Event) bool {
		return ev.Kind == EventDestQuarantined
	})
	if qev.Backoff <= 0 || qev.Backoff > maxBackoff+maxBackoff/5 {
		t.Errorf("quarantine backoff %v outside (0, %v]", qev.Backoff, maxBackoff+maxBackoff/5)
	}
	if q := edge.Stats().Quarantines; q < 1 {
		t.Errorf("Quarantines = %d, want >= 1", q)
	}
	quarantined := false
	for _, d := range edge.Status() {
		if d.Quarantined && !d.Alive {
			quarantined = true
		}
	}
	if !quarantined {
		t.Error("Status does not report the dead destination as quarantined")
	}

	// While quarantined, probing must run at the backed-off cadence, far
	// below the normal rate (window/probeInterval = 30 probes).
	before := edge.Stats().ProbesSent
	window := 300 * time.Millisecond
	time.Sleep(window)
	sent := edge.Stats().ProbesSent - before
	if maxAllowed := uint64(window/maxBackoff) + 3; sent > maxAllowed {
		t.Errorf("quarantined dest probed %d times in %v, want <= %d", sent, window, maxAllowed)
	}

	// Recovery: the next backed-off probe must revive and reselect it.
	link.SetDown(false)
	waitEvent(t, events, maxBackoff*2+time.Second, "dest-alive", func(ev Event) bool {
		return ev.Kind == EventDestAlive
	})
	waitEvent(t, events, 2*time.Second, "reselection", func(ev Event) bool {
		return ev.Kind == EventSelected && ev.Dest.PoP == 1
	})
	st := edge.Status()
	if len(st) != 1 || !st[0].Alive || st[0].Quarantined {
		t.Errorf("status after recovery: %+v", st)
	}
}

// TestFlowRehomedAfterTunnelDeath exercises the PoP-side mid-flow
// graceful degradation: when the edge re-pins a live flow to another
// tunnel, the PoP re-homes the Known Flows entry and reports the move.
func TestFlowRehomedAfterTunnelDeath(t *testing.T) {
	// Two edges sharing one PoP stand in for one edge whose source
	// address changes when its preferred tunnel dies: the PoP only sees
	// the flow arriving from a new address.
	moves := make(chan PoPEvent, 16)
	pop, err := NewPoP(PoPConfig{
		ListenAddr: "127.0.0.1:0", PoPID: 1,
		OnEvent: func(ev PoPEvent) {
			if ev.Kind == PoPFlowMoved {
				select {
				case moves <- ev:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()

	mk := func() *Edge {
		cfg := DefaultEdgeConfig()
		cfg.ProbeInterval = 10 * time.Millisecond
		cfg.Destinations = []tmproto.Destination{destFor2(t, pop.Addr(), 1)}
		e, err := NewEdge(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := mk()
	defer e1.Close()
	e2 := mk()
	defer e2.Close()

	fl := flowKey(4242)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := e1.Selected(); ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := e1.Send(fl, []byte("hello")); err != nil {
		t.Fatal(err)
	}

	// The "failover": the same flow now enters through the second edge.
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := e2.Selected(); ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := e2.Send(fl, []byte("hello again")); err != nil {
		t.Fatal(err)
	}

	select {
	case ev := <-moves:
		if ev.Flow != fl || ev.PrevEdge == ev.NewEdge {
			t.Errorf("unexpected move event: %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no PoPFlowMoved event after mid-flow re-homing")
	}
	if mv := pop.Stats().FlowMoves; mv < 1 {
		t.Errorf("FlowMoves = %d, want >= 1", mv)
	}
}

// destFor2 builds a Destination straight from a PoP address (no link in
// between).
func destFor2(t *testing.T, addr string, pop uint32) tmproto.Destination {
	t.Helper()
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	return tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: pop}
}
