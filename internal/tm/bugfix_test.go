package tm

// Regression tests for the probe/flow-lifecycle bugfix sweep. Each test
// fails against the pre-fix code:
//
//  1. RTT from the wire wall-clock timestamp — a stepped clock either
//     corrupted the EWMA (step back) or discarded live replies until the
//     destination was declared dead (step forward). RTT now comes from a
//     locally recorded monotonic send time.
//  2. Flow purging only ran on packet arrival, so idle flows on a
//     quiesced PoP were retained indefinitely. Purging now runs on a
//     dedicated ticker.
//  3. The outstanding-probe GC could evict a sequence a destination was
//     still awaiting, and its cutoff comparison broke at uint32
//     wraparound.
//  4. ProbesSent counted failed sends, skewing any detector gated on
//     probe output.

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"painter/internal/obs/span"
	"painter/internal/tmproto"
)

// skewPoP is a minimal probe responder that rewrites the echoed
// SentUnixNano by skew before replying — simulating an edge whose wall
// clock stepped (NTP correction) between probe send and reply receipt.
func skewPoP(t *testing.T, skew time.Duration) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if tp, _ := tmproto.PeekType(buf[:n]); tp != tmproto.TypeProbe {
				continue
			}
			p, _, err := tmproto.ParseProbe(buf[:n])
			if err != nil {
				continue
			}
			p.SentUnixNano += skew.Nanoseconds()
			_, _ = conn.WriteToUDP(tmproto.AppendProbe(nil, p, true), from)
		}
	}()
	return conn.LocalAddr().String()
}

func skewDest(t *testing.T, addr string) tmproto.Destination {
	t.Helper()
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	return tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: 1}
}

// TestRTTSurvivesClockStepForward: the reply's wire timestamp reads one
// hour in the future (edge clock stepped back after send). Pre-fix the
// computed RTT was negative, the reply was discarded, awaiting stayed
// set, and a perfectly live destination was declared dead.
func TestRTTSurvivesClockStepForward(t *testing.T) {
	addr := skewPoP(t, time.Hour)
	edge, err := NewEdge(EdgeConfig{
		ProbeInterval:     20 * time.Millisecond,
		MinFailureTimeout: 15 * time.Millisecond,
		Destinations:      []tmproto.Destination{skewDest(t, addr)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := edge.Selected(); !ok {
		t.Fatal("destination never selected: skewed replies were discarded")
	}
	// Stay up across many probe rounds: the destination must remain
	// alive, not flap dead while answering every probe.
	time.Sleep(200 * time.Millisecond)
	st := edge.Status()
	if len(st) != 1 || !st[0].Alive {
		t.Fatalf("destination not alive under forward clock skew: %+v", st)
	}
	if edge.Stats().RepliesRcvd == 0 {
		t.Fatal("no replies recorded")
	}
}

// TestRTTSurvivesClockStepBackward: the reply's wire timestamp reads
// one hour in the past (edge clock stepped forward after send). Pre-fix
// the RTT EWMA absorbed a one-hour sample, wrecking both selection and
// the RTT-proportional failure timeout.
func TestRTTSurvivesClockStepBackward(t *testing.T) {
	addr := skewPoP(t, -time.Hour)
	edge, err := NewEdge(EdgeConfig{
		ProbeInterval:     20 * time.Millisecond,
		MinFailureTimeout: 15 * time.Millisecond,
		Destinations:      []tmproto.Destination{skewDest(t, addr)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := edge.Status()
	if len(st) != 1 || !st[0].Alive {
		t.Fatalf("destination not alive: %+v", st)
	}
	// Loopback RTT is well under a second; an hour-scale reading means
	// the wire timestamp leaked into the estimate.
	if st[0].RTT > time.Second {
		t.Fatalf("RTT %v corrupted by clock step", st[0].RTT)
	}
}

// TestIdleFlowsPurgedWithoutTraffic: Known Flows entries must expire at
// FlowTTL with zero inbound packets. Pre-fix the purge check piggybacked
// on the read loop, so a quiesced PoP retained idle flows indefinitely.
func TestIdleFlowsPurgedWithoutTraffic(t *testing.T) {
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1, FlowTTL: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()

	conn, err := netDial(pop.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt, err := tmproto.AppendData(nil, tmproto.Data{Flow: flowKey(7000), Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && pop.Stats().ActiveFlows == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if pop.Stats().ActiveFlows != 1 {
		t.Fatal("flow entry not recorded")
	}

	// No further packets. The entry must still expire.
	for time.Now().Before(deadline) && pop.Stats().ActiveFlows != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	s := pop.Stats()
	if s.ActiveFlows != 0 {
		t.Fatalf("idle flow survived %v with no traffic (ActiveFlows=%d)", time.Second, s.ActiveFlows)
	}
	if s.Purged < 1 {
		t.Fatalf("Purged = %d, want >= 1", s.Purged)
	}
}

// gcTestEdge builds an Edge skeleton without running loops, so the GC
// can be driven deterministically under e.mu.
func gcTestEdge() *Edge {
	return &Edge{
		cfg:        DefaultEdgeConfig(),
		dests:      make(map[string]*destState),
		seqOwner:   make(map[uint32]probeRecord),
		probeSpans: make(map[uint32]*span.Span),
		flows:      newFlowMap[*destState](),
		closed:     make(chan struct{}),
	}
}

// TestSeqOwnerGCKeepsAwaitedSeq: the registry GC must never evict a
// sequence some destination is still awaiting — pre-fix a slow-RTT
// destination under wide probe fan-out lost its outstanding seq and
// could never be attributed a reply again (false quarantine).
func TestSeqOwnerGCKeepsAwaitedSeq(t *testing.T) {
	e := gcTestEdge()
	slow := &destState{dest: tmproto.Destination{Addr: netip.MustParseAddr("127.0.0.1"), Port: 1}}
	slow.awaiting = true
	slow.awaitingSeq = 10 // ancient, but still outstanding
	e.dests["slow"] = slow

	e.mu.Lock()
	e.seqOwner[10] = probeRecord{key: "slow", sentAt: time.Now()}
	for s := uint32(100); len(e.seqOwner) <= 8192; s++ {
		e.seqOwner[s] = probeRecord{key: "fast", sentAt: time.Now()}
		e.seq = s
	}
	e.gcSeqOwnerLocked()
	_, kept := e.seqOwner[10]
	e.mu.Unlock()
	if !kept {
		t.Fatal("GC evicted a sequence its destination is still awaiting")
	}
}

// TestSeqOwnerGCWraparound: the cutoff comparison must use serial-number
// arithmetic. Pre-fix `s < cut` with cut computed by uint32 subtraction
// meant that right after the sequence counter wrapped, cut underflowed
// to ~2^32 and the GC deleted essentially every entry — including the
// newest ones.
func TestSeqOwnerGCWraparound(t *testing.T) {
	if seqBefore(0x20, 0x10) {
		t.Fatal("0x20 is not before 0x10")
	}
	if !seqBefore(0x10, 0x20) {
		t.Fatal("0x10 is before 0x20")
	}
	// Across the wrap: 0xffffff00 was issued just before seq wrapped to
	// small values, so it IS before 0x10.
	if !seqBefore(0xffffff00, 0x10) {
		t.Fatal("pre-wrap seq should order before post-wrap cut")
	}

	e := gcTestEdge()
	e.mu.Lock()
	// The counter just wrapped: newest seqs are small, the window spans
	// the wrap. cut = 100 - 4096 underflows; entries just behind the cut
	// (recent pre-wrap) and post-wrap entries must survive.
	e.seq = 100
	for s := uint32(0); s <= 100; s++ { // post-wrap, newest
		e.seqOwner[s] = probeRecord{key: "d"}
	}
	for s := uint32(0); len(e.seqOwner) <= 8192; s++ { // fills the window pre-wrap
		e.seqOwner[0xffffffff-s] = probeRecord{key: "d"}
		if len(e.seqOwner) > 8192 {
			break
		}
	}
	e.gcSeqOwnerLocked()
	for s := uint32(0); s <= 100; s++ {
		if _, ok := e.seqOwner[s]; !ok {
			e.mu.Unlock()
			t.Fatalf("GC deleted post-wrap seq %d (the newest entries)", s)
		}
	}
	if _, ok := e.seqOwner[0xffffffff]; !ok {
		e.mu.Unlock()
		t.Fatal("GC deleted a recent pre-wrap seq inside the window")
	}
	e.mu.Unlock()
}

// TestProbesSentExcludesSendErrors: a destination whose socket writes
// fail deterministically (port 0 ⇒ EINVAL) must produce SendErrors, not
// ProbesSent. Pre-fix every failed write still bumped ProbesSent, so a
// probe-blackout detector gated on probe output saw a broken socket as
// "probing fine, replies absent" — or worse, suppressed a real alert.
func TestProbesSentExcludesSendErrors(t *testing.T) {
	edge, err := NewEdge(EdgeConfig{
		ProbeInterval: 10 * time.Millisecond,
		Destinations: []tmproto.Destination{
			{Addr: netip.MustParseAddr("127.0.0.1"), Port: 0, PoP: 9},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && edge.Stats().SendErrors < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	s := edge.Stats()
	if s.SendErrors < 3 {
		t.Fatalf("SendErrors = %d, want >= 3 (port-0 sends should fail)", s.SendErrors)
	}
	if s.ProbesSent != 0 {
		t.Fatalf("ProbesSent = %d for a destination whose every send failed", s.ProbesSent)
	}
}
