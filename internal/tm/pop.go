// Package tm implements the Traffic Manager (§3.2, §4, Appendix D):
// TM-PoP, the PoP-side tunnel terminator that decapsulates client
// traffic, NATs it through a Known Flows table, and returns service
// responses through the tunnel; and TM-Edge, the edge-proxy side that
// probes every available destination, pins flows to destinations, and
// fails over between prefixes at RTT timescales.
package tm

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"painter/internal/obs"
	"painter/internal/obs/span"
	"painter/internal/tm/netio"
	"painter/internal/tmproto"
)

// Service handles decapsulated client payloads at a PoP. Front-ends
// "terminate TCP connections" in the paper; here the service consumes a
// payload and may reply via the provided function (which routes back
// through the tunnel and NAT).
type Service interface {
	Handle(flow tmproto.FlowKey, payload []byte, reply func(payload []byte) error)
}

// EchoService replies with the payload it receives — the stand-in
// workload for prototype experiments.
type EchoService struct{}

// Handle implements Service.
func (EchoService) Handle(_ tmproto.FlowKey, payload []byte, reply func([]byte) error) {
	_ = reply(payload)
}

// DiscardService consumes payloads without replying — the ingest-side
// workload for pps benchmarks, where echoing would measure the echo
// path instead of the datapath under test.
type DiscardService struct{}

// Handle implements Service.
func (DiscardService) Handle(tmproto.FlowKey, []byte, func([]byte) error) {}

// PoPConfig configures a TM-PoP.
type PoPConfig struct {
	// ListenAddr is the UDP address to bind ("127.0.0.1:0" for tests).
	ListenAddr string
	// PoPID identifies this PoP in resolve replies.
	PoPID uint32
	// Destinations is the destination set returned to TM-Edges asking to
	// resolve a service (the Advertisement Orchestrator installs this
	// via the control channel; cmd/painterd drives it over HTTP).
	Destinations []tmproto.Destination
	// Service handles client payloads; nil means EchoService.
	Service Service
	// FlowTTL is how long idle Known Flows entries are retained.
	FlowTTL time.Duration
	// OnEvent, if set, receives structured PoP events (flow migrations,
	// dropped replies) so tests and operators can assert the failover
	// timeline from the PoP side too.
	OnEvent func(PoPEvent)
	// Obs, when non-nil, receives PoP metrics (datagram counters and the
	// active-flows gauge).
	Obs *obs.Registry
	// Tracer, when non-nil, records PoP-side spans stitched into the
	// edge's traces via the wire trace context: probe handling joins
	// the probe's trace, and Known Flows re-homes join the failover
	// trace of the edge that re-pinned the flow.
	Tracer *span.Tracer

	// Sockets is the SO_REUSEPORT reader-socket count (0 ⇒ one per CPU,
	// capped; see netio.Config).
	Sockets int
	// Batch is the max datagrams per syscall (0 ⇒ 32; 1 forces the
	// portable single-packet path).
	Batch int
	// Workers is the service worker-pool size (0 ⇒ max(2, NumCPU)).
	// Service.Handle runs on these workers, never on the read loop, so a
	// slow service cannot stall probe replies.
	Workers int
}

// PoPEventKind discriminates PoP events.
type PoPEventKind uint8

// PoP event kinds.
const (
	// PoPFlowMoved: a Known Flows entry re-homed to a different edge
	// address — the edge's preferred tunnel died mid-flow and the client
	// re-entered through another path. Return traffic follows the new
	// tunnel immediately; no reply is blackholed to the dead one.
	PoPFlowMoved PoPEventKind = iota + 1
	// PoPReplyDropped: a service reply had no Known Flows entry (the
	// flow expired or was never seen) and was dropped gracefully.
	PoPReplyDropped
)

func (k PoPEventKind) String() string {
	switch k {
	case PoPFlowMoved:
		return "flow-moved"
	case PoPReplyDropped:
		return "reply-dropped"
	default:
		return "pop-event"
	}
}

// PoPEvent is one PoP-side state change.
type PoPEvent struct {
	Kind PoPEventKind
	Flow tmproto.FlowKey
	// PrevEdge/NewEdge are the tunnel endpoints involved in a
	// PoPFlowMoved event.
	PrevEdge, NewEdge string
	At                time.Time
}

// PoP is a running TM-PoP.
type PoP struct {
	cfg   PoPConfig
	group *netio.Group

	flows *flowMap[popFlow]

	destMu sync.Mutex
	dests  []tmproto.Destination

	work     chan popBatch
	replySeq atomic.Uint32

	readerWg sync.WaitGroup
	workerWg sync.WaitGroup
	purgeWg  sync.WaitGroup
	closed   chan struct{}

	m  popMetrics
	st popCounters
}

// popCounters are the hot-path counters, atomic so neither readers nor
// workers serialize on a stats mutex.
type popCounters struct {
	dataIn, dataOut    atomic.Uint64
	probes, resolves   atomic.Uint64
	malformed, unknown atomic.Uint64
	flowMoves, dropped atomic.Uint64
	purged             atomic.Uint64
	overloadWaits      atomic.Uint64
}

// PoPStats counts datagram handling.
type PoPStats struct {
	DataIn, DataOut     uint64
	Probes              uint64
	Resolves            uint64
	Malformed, Unknown  uint64
	ActiveFlows, Purged int
	// FlowMoves counts Known Flows entries that re-homed to a new edge
	// address mid-flow (tunnel failover on the client side).
	FlowMoves uint64
	// DroppedReplies counts service replies with no live flow entry.
	DroppedReplies uint64
	// OverloadWaits counts read batches that found the worker queue full
	// and had to wait — sustained growth means the service pool is the
	// bottleneck, not the datapath.
	OverloadWaits uint64
}

// popFlow is one Known Flows entry: the NAT state needed to send return
// traffic back through the right tunnel (Appendix D), plus the wire
// framing the edge used so replies mirror it.
type popFlow struct {
	edge     netip.AddrPort
	wire     tmproto.WireMode
	greKey   uint32
	lastSeen time.Time
}

// popBatch is one read batch's worth of service work, dispatched to the
// worker pool as a unit so channel operations amortize across the
// batch. Payloads are capped sub-slices of a shared arena.
type popBatch struct {
	conn netio.Conn
	jobs []popJob
}

type popJob struct {
	flow    tmproto.FlowKey
	payload []byte
}

// NewPoP binds and starts a TM-PoP.
func NewPoP(cfg PoPConfig) (*PoP, error) {
	if cfg.Service == nil {
		cfg.Service = EchoService{}
	}
	if cfg.FlowTTL <= 0 {
		cfg.FlowTTL = 5 * time.Minute
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
		if cfg.Workers < 2 {
			cfg.Workers = 2
		}
	}
	group, err := netio.Listen(cfg.ListenAddr, netio.Config{Sockets: cfg.Sockets, Batch: cfg.Batch})
	if err != nil {
		return nil, fmt.Errorf("tm: listen: %w", err)
	}
	p := &PoP{
		cfg:    cfg,
		group:  group,
		flows:  newFlowMap[popFlow](),
		dests:  append([]tmproto.Destination(nil), cfg.Destinations...),
		work:   make(chan popBatch, cfg.Workers*4),
		closed: make(chan struct{}),
	}
	p.m = newPoPMetrics(cfg.Obs, p)
	for _, c := range group.Conns() {
		p.readerWg.Add(1)
		go p.readLoop(c)
	}
	for i := 0; i < cfg.Workers; i++ {
		p.workerWg.Add(1)
		go p.worker()
	}
	p.purgeWg.Add(1)
	go p.purgeLoop()
	return p, nil
}

// Addr returns the bound UDP address.
func (p *PoP) Addr() string { return p.group.Addr().String() }

// SetDestinations atomically replaces the advertised destination set
// (what the Advertisement Orchestrator's "advertisement installation"
// step updates).
func (p *PoP) SetDestinations(d []tmproto.Destination) {
	p.destMu.Lock()
	p.dests = append([]tmproto.Destination(nil), d...)
	p.destMu.Unlock()
}

// Stats returns a snapshot of counters.
func (p *PoP) Stats() PoPStats {
	return PoPStats{
		DataIn:         p.st.dataIn.Load(),
		DataOut:        p.st.dataOut.Load(),
		Probes:         p.st.probes.Load(),
		Resolves:       p.st.resolves.Load(),
		Malformed:      p.st.malformed.Load(),
		Unknown:        p.st.unknown.Load(),
		ActiveFlows:    p.flows.Len(),
		Purged:         int(p.st.purged.Load()),
		FlowMoves:      p.st.flowMoves.Load(),
		DroppedReplies: p.st.dropped.Load(),
		OverloadWaits:  p.st.overloadWaits.Load(),
	}
}

// Close shuts the PoP down: sockets first (unblocking readers), then
// the worker pool once readers have stopped feeding it, then the purge
// ticker.
func (p *PoP) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	err := p.group.Close()
	p.readerWg.Wait()
	close(p.work)
	p.workerWg.Wait()
	p.purgeWg.Wait()
	return err
}

func (p *PoP) emit(ev PoPEvent) {
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(ev)
	}
}

// purgeLoop evicts idle Known Flows entries on its own ticker, so
// expiry does not depend on packet arrival: a PoP whose traffic
// quiesces entirely still sheds state at FlowTTL (previously the check
// piggybacked on the read loop and idle flows lived forever on a quiet
// socket).
func (p *PoP) purgeLoop() {
	defer p.purgeWg.Done()
	ival := p.cfg.FlowTTL / 4
	if ival > time.Minute {
		ival = time.Minute
	}
	if ival < time.Millisecond {
		ival = time.Millisecond
	}
	t := time.NewTicker(ival)
	defer t.Stop()
	for {
		select {
		case <-p.closed:
			return
		case now := <-t.C:
			p.purge(now)
		}
	}
}

// purge drops idle flows, one stripe at a time.
func (p *PoP) purge(now time.Time) {
	n := p.flows.Sweep(func(_ tmproto.FlowKey, f popFlow) bool {
		return now.Sub(f.lastSeen) > p.cfg.FlowTTL
	})
	if n > 0 {
		p.st.purged.Add(uint64(n))
		p.m.purged.Add(uint64(n))
	}
}

// readLoop drains one socket in batches. Probes and resolves are
// answered inline (a probe reply is a type-byte flip inside the read
// buffer; mirrored GRE framing comes for free because the flip happens
// in place inside the frame) and flushed as one write batch; data
// packets update the Known Flows stripe and are handed to the worker
// pool, so Service.Handle never runs on this goroutine and cannot
// head-of-line-block probe replies.
func (p *PoP) readLoop(conn netio.Conn) {
	defer p.readerWg.Done()
	batch := p.group.Batch()
	ms := make([]netio.Message, batch)
	for i := range ms {
		ms[i].Buf = make([]byte, netio.MaxDatagram)
	}
	replies := make([]netio.Message, 0, batch)
	var arena []byte
	type pending struct {
		flow     tmproto.FlowKey
		off, end int
	}
	jobs := make([]pending, 0, batch)

	for {
		n, err := conn.ReadBatch(ms)
		if err != nil {
			return
		}
		now := time.Now()
		replies = replies[:0]
		jobs = jobs[:0]
		arena = nil
		dataK := uint64(0)

		for i := 0; i < n; i++ {
			m := &ms[i]
			b := m.Buf[:m.N]
			from := m.Addr
			if from.Addr().Is4In6() {
				from = netip.AddrPortFrom(from.Addr().Unmap(), from.Port())
			}

			inner := b
			wire := tmproto.DetectMode(b)
			var greKey uint32
			if wire == tmproto.WireGRE {
				key, _, in, err := tmproto.ParseGRE(b)
				if err != nil {
					p.st.malformed.Add(1)
					p.m.malformed.Inc()
					continue
				}
				inner, greKey = in, key
			}
			t, err := tmproto.PeekType(inner)
			if err != nil {
				p.st.malformed.Add(1)
				p.m.malformed.Inc()
				continue
			}

			switch t {
			case tmproto.TypeProbe:
				p.st.probes.Add(1)
				p.m.probes.Inc()
				if p.cfg.Tracer != nil {
					// A traced probe carries its span context; record this
					// hop as a remote child so the edge's probe trace shows
					// the PoP touch. The reply (an in-place type flip)
					// echoes the context back untouched.
					if pr, _, err := tmproto.ParseProbe(inner); err == nil && pr.Trace.Valid() {
						s := p.cfg.Tracer.FromRemote(span.Context(pr.Trace), "tm.pop.probe",
							span.A("seq", fmt.Sprint(pr.Seq)),
							span.A("edge", from.String()))
						s.Finish()
					}
				}
				if _, err := tmproto.MakeReply(inner); err == nil {
					replies = append(replies, netio.Message{Buf: b, N: len(b), Addr: m.Addr})
				}

			case tmproto.TypeData:
				d, err := tmproto.ParseData(inner)
				if err != nil {
					p.st.malformed.Add(1)
					p.m.malformed.Inc()
					continue
				}
				dataK++
				p.noteFlow(d, from, wire, greKey, now)
				off := len(arena)
				arena = append(arena, d.Payload...)
				jobs = append(jobs, pending{flow: d.Flow, off: off, end: len(arena)})

			case tmproto.TypeResolve:
				r, err := tmproto.ParseResolve(inner)
				if err != nil {
					p.st.malformed.Add(1)
					p.m.malformed.Inc()
					continue
				}
				p.st.resolves.Add(1)
				p.m.resolves.Inc()
				p.destMu.Lock()
				dests := append([]tmproto.Destination(nil), p.dests...)
				p.destMu.Unlock()
				out, err := tmproto.AppendResolveReply(nil, tmproto.ResolveReply{
					Service: r.Service, Destinations: dests,
				})
				if err == nil {
					if wire == tmproto.WireGRE {
						out = tmproto.AppendGRE(nil, greKey, p.replySeq.Add(1), out)
					}
					replies = append(replies, netio.Message{Buf: out, N: len(out), Addr: m.Addr})
				}

			default:
				p.st.unknown.Add(1)
				p.m.unknown.Inc()
			}
		}

		// Data-packet counters amortize across the batch like the
		// syscalls do.
		if dataK > 0 {
			p.st.dataIn.Add(dataK)
			p.m.dataIn.Add(dataK)
		}

		// Probe/resolve replies go out before service dispatch — and
		// before the next ReadBatch reuses the buffers they point into.
		writeAllBestEffort(conn, replies)

		if len(jobs) > 0 {
			pb := popBatch{conn: conn, jobs: make([]popJob, len(jobs))}
			for i, j := range jobs {
				// Three-index slice: a service that appends to its payload
				// must not scribble over its neighbor in the arena.
				pb.jobs[i] = popJob{flow: j.flow, payload: arena[j.off:j.end:j.end]}
			}
			select {
			case p.work <- pb:
			default:
				p.st.overloadWaits.Add(1)
				p.m.overloadWaits.Inc()
				p.work <- pb // backpressure, not loss
			}
		}
	}
}

// flowRefresh is the Known Flows lastSeen granularity: the hot path
// skips the stripe write while the entry is fresher than this. TTL
// purge tolerates seconds of staleness (FlowTTL is minutes); a moved
// or re-framed flow always takes the write path regardless.
const flowRefresh = time.Second

// noteFlow records/refreshes the Known Flows entry for a data packet
// and emits the re-home event when the flow arrived from a new edge.
func (p *PoP) noteFlow(d tmproto.Data, from netip.AddrPort, wire tmproto.WireMode, greKey uint32, now time.Time) {
	// Read-only fast path: a steady flow needs no state change, so the
	// common case costs one stripe read instead of a map write.
	if f, ok := p.flows.Get(d.Flow); ok &&
		f.edge == from && f.wire == wire && f.greKey == greKey &&
		now.Sub(f.lastSeen) < flowRefresh {
		return
	}
	var prev netip.AddrPort
	var had bool
	p.flows.Update(d.Flow, func(f popFlow, ok bool) (popFlow, bool) {
		if ok {
			prev, had = f.edge, true
		}
		return popFlow{edge: from, wire: wire, greKey: greKey, lastSeen: now}, true
	})
	// Graceful mid-flow failover: when the flow arrives from a new edge
	// address, its previous tunnel died (or the edge re-pinned); re-home
	// the NAT entry so return traffic follows the live tunnel.
	if had && prev != from {
		p.st.flowMoves.Add(1)
		p.m.flowMoves.Inc()
		mv := PoPEvent{
			Kind: PoPFlowMoved, Flow: d.Flow,
			PrevEdge: prev.String(), NewEdge: from.String(), At: now,
		}
		// A re-pinned data packet carries the edge failover trace; the
		// re-home is the PoP-side tail of that chain.
		if p.cfg.Tracer != nil && d.Trace.Valid() {
			s := p.cfg.Tracer.FromRemote(span.Context(d.Trace), "tm.pop.rehome",
				span.A("flow", d.Flow.String()),
				span.A("prev_edge", mv.PrevEdge),
				span.A("new_edge", mv.NewEdge))
			s.Finish()
		}
		p.emit(mv)
	}
}

// worker runs Service.Handle for dispatched batches. Replies issued
// during a batch are coalesced into write batches; replies issued later
// (an asynchronous service) fall back to immediate sends.
func (p *PoP) worker() {
	defer p.workerWg.Done()
	sink := &replySink{}
	for pb := range p.work {
		sink.reset(pb.conn)
		for _, j := range pb.jobs {
			flow := j.flow
			p.cfg.Service.Handle(flow, j.payload, func(resp []byte) error {
				return p.sendReply(sink, flow, resp)
			})
		}
		sink.finish()
	}
}

// sendReply re-encapsulates a service reply and sends it back through
// the tunnel to whichever edge most recently carried the flow, in the
// framing that edge last used (the NAT property that return traffic
// goes back through the tunnel, not directly to the client).
func (p *PoP) sendReply(sink *replySink, flow tmproto.FlowKey, resp []byte) error {
	f, ok := p.flows.Get(flow)
	if !ok {
		p.st.dropped.Add(1)
		p.m.dropped.Inc()
		p.emit(PoPEvent{Kind: PoPReplyDropped, Flow: flow, At: time.Now()})
		return fmt.Errorf("tm: flow %v no longer known", flow)
	}
	if err := sink.add(flow, resp, f, &p.replySeq); err != nil {
		return err
	}
	p.st.dataOut.Add(1)
	p.m.dataOut.Inc()
	return nil
}

// replySink batches reply sends for the duration of one dispatched job
// batch, encapsulating them into a reusable arena so the per-reply hot
// path allocates nothing. After finish(), late replies (from services
// that call reply asynchronously) are written through immediately with
// their own buffers; a worker reuses one sink across batches via
// reset(), which is safe because everything below is guarded by mu.
type replySink struct {
	mu      sync.Mutex
	conn    netio.Conn
	msgs    []netio.Message
	arena   []byte // backing for queued replies, reset per batch
	scratch []byte // inner-frame staging for GRE wrapping
	done    bool
}

// encap appends the reply's wire form to dst in the flow's framing.
func (rs *replySink) encap(dst []byte, flow tmproto.FlowKey, resp []byte, f popFlow, seq *atomic.Uint32) ([]byte, error) {
	if f.wire != tmproto.WireGRE {
		return tmproto.AppendData(dst, tmproto.Data{Flow: flow, Payload: resp})
	}
	inner, err := tmproto.AppendData(rs.scratch[:0], tmproto.Data{Flow: flow, Payload: resp})
	if err != nil {
		return dst, err
	}
	rs.scratch = inner
	return tmproto.AppendGRE(dst, f.greKey, seq.Add(1), inner), nil
}

func (rs *replySink) add(flow tmproto.FlowKey, resp []byte, f popFlow, seq *atomic.Uint32) error {
	rs.mu.Lock()
	if rs.done {
		out, err := rs.encap(nil, flow, resp, f, seq)
		conn := rs.conn
		rs.mu.Unlock()
		if err != nil {
			return err
		}
		_, werr := conn.WriteBatch([]netio.Message{{Buf: out, N: len(out), Addr: f.edge}})
		return werr
	}
	start := len(rs.arena)
	out, err := rs.encap(rs.arena, flow, resp, f, seq)
	if err != nil {
		rs.mu.Unlock()
		return err
	}
	rs.arena = out
	// Capped sub-slice: arena growth must reallocate rather than
	// scribble over a queued neighbor.
	msg := out[start:len(out):len(out)]
	rs.msgs = append(rs.msgs, netio.Message{Buf: msg, N: len(msg), Addr: f.edge})
	rs.mu.Unlock()
	return nil
}

func (rs *replySink) reset(conn netio.Conn) {
	rs.mu.Lock()
	rs.conn = conn
	rs.msgs = rs.msgs[:0]
	rs.arena = rs.arena[:0]
	rs.done = false
	rs.mu.Unlock()
}

func (rs *replySink) finish() {
	rs.mu.Lock()
	rs.done = true
	msgs := rs.msgs
	conn := rs.conn
	rs.mu.Unlock()
	// The flush happens on the worker goroutine before the next reset;
	// late adds see done and never touch msgs, so writing outside the
	// lock is safe.
	writeAllBestEffort(conn, msgs)
}

// writeAllBestEffort flushes a reply batch, skipping over individual
// messages whose send fails (the tunnel is UDP; receivers own
// retransmission) while still delivering the rest.
func writeAllBestEffort(conn netio.Conn, ms []netio.Message) {
	for len(ms) > 0 {
		sent, err := conn.WriteBatch(ms)
		if err == nil {
			return
		}
		ms = ms[sent+1:] // ms[sent] is the poisoned message; skip it
	}
}
