// Package tm implements the Traffic Manager (§3.2, §4, Appendix D):
// TM-PoP, the PoP-side tunnel terminator that decapsulates client
// traffic, NATs it through a Known Flows table, and returns service
// responses through the tunnel; and TM-Edge, the edge-proxy side that
// probes every available destination, pins flows to destinations, and
// fails over between prefixes at RTT timescales.
package tm

import (
	"fmt"
	"net"
	"sync"
	"time"

	"painter/internal/obs"
	"painter/internal/obs/span"
	"painter/internal/tmproto"
)

// Service handles decapsulated client payloads at a PoP. Front-ends
// "terminate TCP connections" in the paper; here the service consumes a
// payload and may reply via the provided function (which routes back
// through the tunnel and NAT).
type Service interface {
	Handle(flow tmproto.FlowKey, payload []byte, reply func(payload []byte) error)
}

// EchoService replies with the payload it receives — the stand-in
// workload for prototype experiments.
type EchoService struct{}

// Handle implements Service.
func (EchoService) Handle(_ tmproto.FlowKey, payload []byte, reply func([]byte) error) {
	_ = reply(payload)
}

// PoPConfig configures a TM-PoP.
type PoPConfig struct {
	// ListenAddr is the UDP address to bind ("127.0.0.1:0" for tests).
	ListenAddr string
	// PoPID identifies this PoP in resolve replies.
	PoPID uint32
	// Destinations is the destination set returned to TM-Edges asking to
	// resolve a service (the Advertisement Orchestrator installs this
	// via the control channel; cmd/painterd drives it over HTTP).
	Destinations []tmproto.Destination
	// Service handles client payloads; nil means EchoService.
	Service Service
	// FlowTTL is how long idle Known Flows entries are retained.
	FlowTTL time.Duration
	// OnEvent, if set, receives structured PoP events (flow migrations,
	// dropped replies) so tests and operators can assert the failover
	// timeline from the PoP side too.
	OnEvent func(PoPEvent)
	// Obs, when non-nil, receives PoP metrics (datagram counters and the
	// active-flows gauge).
	Obs *obs.Registry
	// Tracer, when non-nil, records PoP-side spans stitched into the
	// edge's traces via the wire trace context: probe handling joins
	// the probe's trace, and Known Flows re-homes join the failover
	// trace of the edge that re-pinned the flow.
	Tracer *span.Tracer
}

// PoPEventKind discriminates PoP events.
type PoPEventKind uint8

// PoP event kinds.
const (
	// PoPFlowMoved: a Known Flows entry re-homed to a different edge
	// address — the edge's preferred tunnel died mid-flow and the client
	// re-entered through another path. Return traffic follows the new
	// tunnel immediately; no reply is blackholed to the dead one.
	PoPFlowMoved PoPEventKind = iota + 1
	// PoPReplyDropped: a service reply had no Known Flows entry (the
	// flow expired or was never seen) and was dropped gracefully.
	PoPReplyDropped
)

func (k PoPEventKind) String() string {
	switch k {
	case PoPFlowMoved:
		return "flow-moved"
	case PoPReplyDropped:
		return "reply-dropped"
	default:
		return "pop-event"
	}
}

// PoPEvent is one PoP-side state change.
type PoPEvent struct {
	Kind PoPEventKind
	Flow tmproto.FlowKey
	// PrevEdge/NewEdge are the tunnel endpoints involved in a
	// PoPFlowMoved event.
	PrevEdge, NewEdge string
	At                time.Time
}

// PoP is a running TM-PoP.
type PoP struct {
	cfg  PoPConfig
	conn *net.UDPConn

	mu    sync.Mutex
	flows map[tmproto.FlowKey]*popFlow
	dests []tmproto.Destination

	wg     sync.WaitGroup
	closed chan struct{}

	m popMetrics

	statsMu sync.Mutex
	stats   PoPStats
}

// PoPStats counts datagram handling.
type PoPStats struct {
	DataIn, DataOut     uint64
	Probes              uint64
	Resolves            uint64
	Malformed, Unknown  uint64
	ActiveFlows, Purged int
	// FlowMoves counts Known Flows entries that re-homed to a new edge
	// address mid-flow (tunnel failover on the client side).
	FlowMoves uint64
	// DroppedReplies counts service replies with no live flow entry.
	DroppedReplies uint64
}

// popFlow is one Known Flows entry: the NAT state needed to send return
// traffic back through the right tunnel (Appendix D).
type popFlow struct {
	edge     *net.UDPAddr
	lastSeen time.Time
}

// NewPoP binds and starts a TM-PoP.
func NewPoP(cfg PoPConfig) (*PoP, error) {
	if cfg.Service == nil {
		cfg.Service = EchoService{}
	}
	if cfg.FlowTTL <= 0 {
		cfg.FlowTTL = 5 * time.Minute
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tm: resolve %q: %w", cfg.ListenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("tm: listen: %w", err)
	}
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	p := &PoP{
		cfg:    cfg,
		conn:   conn,
		flows:  make(map[tmproto.FlowKey]*popFlow),
		dests:  append([]tmproto.Destination(nil), cfg.Destinations...),
		closed: make(chan struct{}),
	}
	p.m = newPoPMetrics(cfg.Obs, p)
	p.wg.Add(1)
	go p.readLoop()
	return p, nil
}

// Addr returns the bound UDP address.
func (p *PoP) Addr() string { return p.conn.LocalAddr().String() }

// SetDestinations atomically replaces the advertised destination set
// (what the Advertisement Orchestrator's "advertisement installation"
// step updates).
func (p *PoP) SetDestinations(d []tmproto.Destination) {
	p.mu.Lock()
	p.dests = append([]tmproto.Destination(nil), d...)
	p.mu.Unlock()
}

// Stats returns a snapshot of counters.
func (p *PoP) Stats() PoPStats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	s := p.stats
	p.mu.Lock()
	s.ActiveFlows = len(p.flows)
	p.mu.Unlock()
	return s
}

// Close shuts the PoP down.
func (p *PoP) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	err := p.conn.Close()
	p.wg.Wait()
	return err
}

func (p *PoP) bump(f func(*PoPStats)) {
	p.statsMu.Lock()
	f(&p.stats)
	p.statsMu.Unlock()
}

func (p *PoP) emit(ev PoPEvent) {
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(ev)
	}
}

func (p *PoP) readLoop() {
	defer p.wg.Done()
	buf := make([]byte, 64*1024)
	lastPurge := time.Now()
	for {
		n, from, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if now := time.Now(); now.Sub(lastPurge) > p.cfg.FlowTTL {
			p.purge(now)
			lastPurge = now
		}
		t, err := tmproto.PeekType(buf[:n])
		if err != nil {
			p.bump(func(s *PoPStats) { s.Malformed++ })
			p.m.malformed.Inc()
			continue
		}
		switch t {
		case tmproto.TypeProbe:
			p.bump(func(s *PoPStats) { s.Probes++ })
			p.m.probes.Inc()
			if p.cfg.Tracer != nil {
				// A traced probe carries its span context; record this
				// hop as a remote child so the edge's probe trace shows
				// the PoP touch. The reply (an in-place type flip)
				// echoes the context back untouched.
				if pr, _, err := tmproto.ParseProbe(buf[:n]); err == nil && pr.Trace.Valid() {
					s := p.cfg.Tracer.FromRemote(span.Context(pr.Trace), "tm.pop.probe",
						span.A("seq", fmt.Sprint(pr.Seq)),
						span.A("edge", from.String()))
					s.Finish()
				}
			}
			if reply, err := tmproto.MakeReply(buf[:n]); err == nil {
				_, _ = p.conn.WriteToUDP(reply, from)
			}
		case tmproto.TypeData:
			d, err := tmproto.ParseData(buf[:n])
			if err != nil {
				p.bump(func(s *PoPStats) { s.Malformed++ })
				p.m.malformed.Inc()
				continue
			}
			p.bump(func(s *PoPStats) { s.DataIn++ })
			p.m.dataIn.Inc()
			p.handleData(d, from)
		case tmproto.TypeResolve:
			r, err := tmproto.ParseResolve(buf[:n])
			if err != nil {
				p.bump(func(s *PoPStats) { s.Malformed++ })
				p.m.malformed.Inc()
				continue
			}
			p.bump(func(s *PoPStats) { s.Resolves++ })
			p.m.resolves.Inc()
			p.mu.Lock()
			dests := append([]tmproto.Destination(nil), p.dests...)
			p.mu.Unlock()
			out, err := tmproto.AppendResolveReply(nil, tmproto.ResolveReply{
				Service: r.Service, Destinations: dests,
			})
			if err == nil {
				_, _ = p.conn.WriteToUDP(out, from)
			}
		default:
			p.bump(func(s *PoPStats) { s.Unknown++ })
			p.m.unknown.Inc()
		}
	}
}

// handleData records/refreshes the Known Flows entry and hands the
// payload to the service. The reply closure re-encapsulates and sends
// back through the tunnel to whichever edge most recently carried the
// flow (the NAT property that return traffic goes back through the
// tunnel, not directly to the client).
func (p *PoP) handleData(d tmproto.Data, from *net.UDPAddr) {
	now := time.Now()
	var moved *PoPEvent
	p.mu.Lock()
	fl := p.flows[d.Flow]
	if fl == nil {
		fl = &popFlow{}
		p.flows[d.Flow] = fl
	}
	// Graceful mid-flow failover: when the flow arrives from a new edge
	// address, its previous tunnel died (or the edge re-pinned); re-home
	// the NAT entry so return traffic follows the live tunnel.
	if fl.edge != nil && fl.edge.String() != from.String() {
		moved = &PoPEvent{
			Kind: PoPFlowMoved, Flow: d.Flow,
			PrevEdge: fl.edge.String(), NewEdge: from.String(), At: now,
		}
	}
	fl.edge = from
	fl.lastSeen = now
	p.mu.Unlock()
	if moved != nil {
		p.bump(func(s *PoPStats) { s.FlowMoves++ })
		p.m.flowMoves.Inc()
		// A re-pinned data packet carries the edge failover trace; the
		// re-home is the PoP-side tail of that chain.
		if p.cfg.Tracer != nil && d.Trace.Valid() {
			s := p.cfg.Tracer.FromRemote(span.Context(d.Trace), "tm.pop.rehome",
				span.A("flow", d.Flow.String()),
				span.A("prev_edge", moved.PrevEdge),
				span.A("new_edge", moved.NewEdge))
			s.Finish()
		}
		p.emit(*moved)
	}

	flow := d.Flow
	payload := append([]byte(nil), d.Payload...)
	reply := func(resp []byte) error {
		p.mu.Lock()
		fl := p.flows[flow]
		var edge *net.UDPAddr
		if fl != nil {
			edge = fl.edge
		}
		p.mu.Unlock()
		if edge == nil {
			p.bump(func(s *PoPStats) { s.DroppedReplies++ })
			p.m.dropped.Inc()
			p.emit(PoPEvent{Kind: PoPReplyDropped, Flow: flow, At: time.Now()})
			return fmt.Errorf("tm: flow %v no longer known", flow)
		}
		out, err := tmproto.AppendData(nil, tmproto.Data{Flow: flow, Payload: resp})
		if err != nil {
			return err
		}
		if _, err := p.conn.WriteToUDP(out, edge); err != nil {
			return err
		}
		p.bump(func(s *PoPStats) { s.DataOut++ })
		p.m.dataOut.Inc()
		return nil
	}
	p.cfg.Service.Handle(flow, payload, reply)
}

// purge drops idle flows. Caller must not hold p.mu.
func (p *PoP) purge(now time.Time) {
	p.mu.Lock()
	purged := 0
	for k, f := range p.flows {
		if now.Sub(f.lastSeen) > p.cfg.FlowTTL {
			delete(p.flows, k)
			purged++
		}
	}
	p.mu.Unlock()
	if purged > 0 {
		p.bump(func(s *PoPStats) { s.Purged += purged })
		p.m.purged.Add(uint64(purged))
	}
}
