package tm

// Traffic Manager observability. The paper's headline TM claims are
// about time: failure detected in ~1 RTT, failover at RTT timescales,
// withdrawn prefixes probed on backoff instead of hammered. The edge
// therefore exports histograms for exactly those three durations, plus
// counters mirroring EdgeStats/PoPStats so a scrape sees what Stats()
// sees. All handles are nil-safe; an edge or PoP without a registry
// pays one branch per event.

import "painter/internal/obs"

// edgeMetrics bundles the TM-Edge metric handles.
type edgeMetrics struct {
	probeRTTMs          *obs.Histogram
	failoverDetectionMs *obs.Histogram
	backoffMs           *obs.Histogram

	probesSent  *obs.Counter
	repliesRcvd *obs.Counter
	dataSent    *obs.Counter
	dataRcvd    *obs.Counter
	failovers   *obs.Counter
	repins      *obs.Counter
	sendErrors  *obs.Counter

	events map[EventKind]*obs.Counter
}

func newEdgeMetrics(r *obs.Registry, e *Edge) edgeMetrics {
	if r == nil {
		return edgeMetrics{}
	}
	m := edgeMetrics{
		probeRTTMs:          r.Histogram("tm_edge_probe_rtt_ms", "probe round-trip time per reply (ms)"),
		failoverDetectionMs: r.Histogram("tm_edge_failover_detection_ms", "silence before a destination was declared dead (ms)"),
		backoffMs:           r.Histogram("tm_edge_backoff_ms", "recovery-probe backoff intervals scheduled for dead destinations (ms)"),

		probesSent:  r.Counter("tm_edge_probes_sent_total", "probes sent"),
		repliesRcvd: r.Counter("tm_edge_probe_replies_total", "probe replies received"),
		dataSent:    r.Counter("tm_edge_data_sent_total", "tunneled client payloads sent"),
		dataRcvd:    r.Counter("tm_edge_data_rcvd_total", "tunneled return payloads received"),
		failovers:   r.Counter("tm_edge_failovers_total", "selection changes away from a previously selected destination"),
		repins:      r.Counter("tm_edge_repinned_flows_total", "flows re-pinned after their destination died"),
		sendErrors:  r.Counter("tm_edge_send_errors_total", "tunnel datagrams whose socket write failed (excluded from probes-sent)"),

		events: make(map[EventKind]*obs.Counter, 4),
	}
	for _, k := range []EventKind{EventSelected, EventDestDead, EventDestAlive, EventDestQuarantined} {
		m.events[k] = r.Counter("tm_edge_events_total", "edge events emitted, by kind", obs.L("kind", k.String()))
	}
	r.GaugeFunc("tm_edge_destinations", "configured tunnel destinations", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.dests))
	})
	r.GaugeFunc("tm_edge_destinations_alive", "destinations currently alive", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		n := 0
		for _, ds := range e.dests {
			if ds.alive() {
				n++
			}
		}
		return float64(n)
	})
	return m
}

// popMetrics bundles the TM-PoP metric handles.
type popMetrics struct {
	dataIn    *obs.Counter
	dataOut   *obs.Counter
	probes    *obs.Counter
	resolves  *obs.Counter
	malformed *obs.Counter
	unknown   *obs.Counter
	flowMoves *obs.Counter
	dropped   *obs.Counter
	purged    *obs.Counter

	overloadWaits *obs.Counter
}

func newPoPMetrics(r *obs.Registry, p *PoP) popMetrics {
	if r == nil {
		return popMetrics{}
	}
	m := popMetrics{
		dataIn:    r.Counter("tm_pop_data_in_total", "tunneled client payloads received"),
		dataOut:   r.Counter("tm_pop_data_out_total", "service replies tunneled back"),
		probes:    r.Counter("tm_pop_probes_total", "probes answered"),
		resolves:  r.Counter("tm_pop_resolves_total", "resolve requests answered"),
		malformed: r.Counter("tm_pop_malformed_total", "undecodable datagrams"),
		unknown:   r.Counter("tm_pop_unknown_total", "datagrams of unknown type"),
		flowMoves: r.Counter("tm_pop_flow_moves_total", "Known Flows entries re-homed to a new edge"),
		dropped:   r.Counter("tm_pop_dropped_replies_total", "service replies with no live flow entry"),
		purged:    r.Counter("tm_pop_purged_flows_total", "idle Known Flows entries purged"),

		overloadWaits: r.Counter("tm_pop_overload_waits_total", "read batches that waited on a full service worker queue"),
	}
	r.GaugeFunc("tm_pop_active_flows", "live Known Flows entries", func() float64 {
		return float64(p.flows.Len())
	})
	return m
}
