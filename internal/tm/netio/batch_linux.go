//go:build linux && (amd64 || arm64)

package netio

// The batched arm: recvmmsg/sendmmsg through the socket's RawConn so
// the runtime netpoller still does the blocking (Close() unblocks
// readers, goroutines never pin OS threads) while a ready socket moves
// a whole batch per syscall. The mmsghdr scaffolding (iovecs, sockaddr
// buffers) is allocated once per conn and reused; reads own one set,
// writes own another behind a mutex so a reader and several reply
// writers can share the socket.

import (
	"net"
	"net/netip"
	"sync"
	"syscall"
	"unsafe"
)

const batchAvailable = true

// mmsghdr mirrors struct mmsghdr on 64-bit linux: a msghdr plus the
// per-message byte count filled in by recvmmsg.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// mmsgScratch is one preallocated recvmmsg/sendmmsg argument set. ctrls
// is non-nil only for the GRO read path, which needs per-message cmsg
// space for the kernel's segment-size annotation.
type mmsgScratch struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet4
	ctrls [][]byte
}

func newScratch(batch int, ctrl bool) *mmsgScratch {
	s := &mmsgScratch{
		hdrs:  make([]mmsghdr, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([]syscall.RawSockaddrInet4, batch),
	}
	if ctrl {
		s.ctrls = make([][]byte, batch)
		for i := range s.ctrls {
			s.ctrls[i] = make([]byte, 64)
		}
	}
	for i := range s.hdrs {
		s.hdrs[i].Hdr.Name = (*byte)(unsafe.Pointer(&s.names[i]))
		s.hdrs[i].Hdr.Namelen = uint32(unsafe.Sizeof(s.names[i]))
		s.hdrs[i].Hdr.Iov = &s.iovs[i]
		s.hdrs[i].Hdr.Iovlen = 1
	}
	return s
}

type batchConn struct {
	u    *net.UDPConn
	raw  syscall.RawConn
	addr netip.AddrPort

	batch int
	rd    *mmsgScratch // owned by the single reader (non-GRO arm)

	// GRO read state, all owned by the single reader. Coalesced
	// arrivals land in groBufs and are split/copied out, so these are
	// separate from the caller-buffer-backed rd scratch.
	gro     bool
	gr      *mmsgScratch
	groBufs [][]byte
	pend    []groPending
	pendIdx int

	wmu    sync.Mutex
	wr     *mmsgScratch // shared by writers under wmu
	gsoOK  bool         // UDP_SEGMENT fast path still believed to work
	gsoBuf []byte       // concat scratch for writeGSO, under wmu
	gsoOOB []byte       // cmsg scratch for writeGSO, under wmu
}

func newBatchConn(u *net.UDPConn, batch int, gso bool) (Conn, error) {
	raw, err := u.SyscallConn()
	if err != nil {
		return nil, err
	}
	ap := u.LocalAddr().(*net.UDPAddr).AddrPort()
	if !ap.Addr().Is4() && !ap.Addr().Is4In6() {
		// IPv6 sockets would need RawSockaddrInet6 plumbing; the TM
		// datapath binds IPv4, so just fall back.
		return nil, syscall.EAFNOSUPPORT
	}
	c := &batchConn{
		u: u, raw: raw, addr: ap, batch: batch,
		rd: newScratch(batch, false), wr: newScratch(batch, false),
	}
	if gso {
		c.gsoOK = true
		c.gsoBuf = make([]byte, 0, maxGSOBytes)
		c.gsoOOB = make([]byte, syscall.CmsgSpace(2))
		if c.gro = enableGRO(raw); c.gro {
			c.gr = newScratch(batch, true)
			c.pend = make([]groPending, 0, batch)
			c.groBufs = make([][]byte, batch)
			for i := range c.groBufs {
				c.groBufs[i] = make([]byte, MaxDatagram)
			}
		}
	}
	return c, nil
}

func (c *batchConn) LocalAddr() netip.AddrPort { return c.addr }
func (c *batchConn) Close() error              { return c.u.Close() }

// ReadBatch blocks (via the netpoller) until the socket is readable,
// then drains up to len(ms) datagrams in one recvmmsg call. On GRO
// sockets each arrival may itself be a coalesced batch; readGRO splits
// them and stashes any overflow beyond len(ms).
func (c *batchConn) ReadBatch(ms []Message) (int, error) {
	if c.gro {
		return c.readGRO(ms)
	}
	n := len(ms)
	if n > c.batch {
		n = c.batch
	}
	if n == 0 {
		return 0, nil
	}
	for i := 0; i < n; i++ {
		c.rd.iovs[i].Base = &ms[i].Buf[0]
		c.rd.iovs[i].Len = uint64(len(ms[i].Buf))
		c.rd.names[i] = syscall.RawSockaddrInet4{}
		c.rd.hdrs[i].Hdr.Namelen = uint32(unsafe.Sizeof(c.rd.names[i]))
	}
	var got int
	var operr error
	err := c.raw.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&c.rd.hdrs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if errno == syscall.EAGAIN {
			return false // not readable after all: re-arm the poller
		}
		if errno != 0 {
			operr = errno
		} else {
			got = int(r1)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if operr != nil {
		return 0, operr
	}
	for i := 0; i < got; i++ {
		ms[i].N = int(c.rd.hdrs[i].Len)
		ms[i].Addr = sockaddrToAddrPort(&c.rd.names[i])
	}
	return got, nil
}

// WriteBatch sends up to batch messages per sendmmsg call, looping over
// larger slices. On a per-message error it reports how many messages
// left the socket so the caller can attribute the failure to ms[sent].
func (c *batchConn) WriteBatch(ms []Message) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	sent := 0
	for sent < len(ms) {
		n := len(ms) - sent
		if n > c.batch {
			n = c.batch
		}
		chunk := ms[sent : sent+n]
		if c.gsoOK {
			k, done, err := c.writeGSO(chunk)
			if done {
				sent += k
				if err != nil {
					return sent, err
				}
				continue
			}
		}
		for i := range chunk {
			c.wr.iovs[i].Base = &chunk[i].Buf[0]
			c.wr.iovs[i].Len = uint64(chunk[i].N)
			c.wr.names[i] = addrPortToSockaddr(chunk[i].Addr)
			c.wr.hdrs[i].Hdr.Namelen = uint32(unsafe.Sizeof(c.wr.names[i]))
		}
		var wrote int
		var operr error
		err := c.raw.Write(func(fd uintptr) bool {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&c.wr.hdrs[0])), uintptr(n),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EAGAIN {
				return false
			}
			if errno != 0 {
				operr = errno
			} else {
				wrote = int(r1)
			}
			return true
		})
		if err != nil {
			return sent, err
		}
		if operr != nil {
			return sent + wrote, operr
		}
		if wrote == 0 {
			// Defensive: sendmmsg never legitimately returns 0 without
			// an error, but never spin here.
			return sent, syscall.EIO
		}
		sent += wrote
	}
	return sent, nil
}

func sockaddrToAddrPort(sa *syscall.RawSockaddrInet4) netip.AddrPort {
	port := uint16(sa.Port>>8) | uint16(sa.Port&0xff)<<8 // network → host order
	return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
}

func addrPortToSockaddr(ap netip.AddrPort) syscall.RawSockaddrInet4 {
	a := ap.Addr()
	if a.Is4In6() {
		a = a.Unmap()
	}
	port := ap.Port()
	return syscall.RawSockaddrInet4{
		Family: syscall.AF_INET,
		Port:   port<<8 | port>>8, // host → network order
		Addr:   a.As4(),
	}
}
