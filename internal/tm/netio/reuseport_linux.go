//go:build linux

package netio

import (
	"context"
	"net"
	"syscall"
)

const reusePortAvailable = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package.
const soReusePort = 0xf

// listenReusePort binds a UDP socket with SO_REUSEPORT set before
// bind(2), so several sockets can share one port and the kernel fans
// flows across them by 4-tuple hash.
func listenReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
