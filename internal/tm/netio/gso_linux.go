//go:build linux && (amd64 || arm64)

package netio

// UDP GSO/GRO: the second half of the batched arm. sendmmsg/recvmmsg
// amortize the user/kernel boundary crossing, but every datagram in an
// mmsg batch still walks the full in-kernel UDP path — on loopback that
// per-packet cost dominates once syscalls are cheap. UDP_SEGMENT turns
// a uniform batch (same destination, same size) into ONE sendmsg whose
// single skb traverses the stack once and is segmented as late as
// possible; a receiver that opted into UDP_GRO gets the segments
// coalesced back into one buffer plus a cmsg carrying the segment
// size. Both paths degrade gracefully: non-uniform batches fall back
// to sendmmsg, non-GSO arrivals carry no UDP_GRO cmsg and are
// delivered whole.

import (
	"net/netip"
	"syscall"
	"unsafe"
)

const (
	solUDP     = 17  // SOL_UDP, absent from the frozen syscall package
	udpSegment = 103 // UDP_SEGMENT: outgoing gso_size sockopt/cmsg
	udpGRO     = 104 // UDP_GRO: opt in to coalesced delivery + cmsg

	// maxGSOSegs mirrors the kernel's UDP_MAX_SEGMENTS.
	maxGSOSegs = 64
	// maxGSOBytes keeps the concatenated payload within one UDP
	// datagram's limits with headroom.
	maxGSOBytes = 63 * 1024
)

// groPending is one coalesced arrival being served incrementally: a
// recvmmsg round can yield far more logical datagrams than the caller's
// batch holds, so segments stay in the conn-owned buffer (valid until
// the next syscall, which only happens once every pending entry is
// drained) and are copied out as ReadBatch calls consume them.
type groPending struct {
	data []byte
	seg  int
	addr netip.AddrPort
	off  int
}

// enableGRO opts the socket into coalesced delivery. Best effort: on
// kernels without UDP_GRO the socket still works, packet-per-packet.
func enableGRO(raw syscall.RawConn) bool {
	var serr error
	if err := raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1)
	}); err != nil {
		return false
	}
	return serr == nil
}

// gsoEligible reports whether chunk can leave in one UDP_SEGMENT send:
// all messages to one address, all but the last the same size, the
// last no larger (the kernel's trailing-segment rule).
func gsoEligible(chunk []Message) (seg int, total int, ok bool) {
	if len(chunk) < 2 || len(chunk) > maxGSOSegs {
		return 0, 0, false
	}
	seg = chunk[0].N
	if seg <= 0 {
		return 0, 0, false
	}
	addr := chunk[0].Addr
	for i := range chunk {
		if chunk[i].Addr != addr {
			return 0, 0, false
		}
		n := chunk[i].N
		if i < len(chunk)-1 {
			if n != seg {
				return 0, 0, false
			}
		} else if n <= 0 || n > seg {
			return 0, 0, false
		}
		total += n
	}
	if total > maxGSOBytes {
		return 0, 0, false
	}
	return seg, total, true
}

// writeGSO attempts the fast path. done=false means the chunk was not
// sent (ineligible, or the kernel rejected GSO and the path is now
// disabled) and the caller must fall back to sendmmsg; errors that a
// fallback retry would surface anyway are never swallowed here.
func (c *batchConn) writeGSO(chunk []Message) (sent int, done bool, err error) {
	seg, total, ok := gsoEligible(chunk)
	if !ok {
		return 0, false, nil
	}
	buf := c.gsoBuf[:0]
	for i := range chunk {
		buf = append(buf, chunk[i].Buf[:chunk[i].N]...)
	}
	name := addrPortToSockaddr(chunk[0].Addr)
	var iov syscall.Iovec
	iov.Base = &buf[0]
	iov.SetLen(len(buf))

	oob := c.gsoOOB
	ch := (*syscall.Cmsghdr)(unsafe.Pointer(&oob[0]))
	ch.Level = solUDP
	ch.Type = udpSegment
	ch.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&oob[syscall.CmsgLen(0)])) = uint16(seg)

	var hdr syscall.Msghdr
	hdr.Name = (*byte)(unsafe.Pointer(&name))
	hdr.Namelen = uint32(unsafe.Sizeof(name))
	hdr.Iov = &iov
	hdr.Iovlen = 1
	hdr.Control = &oob[0]
	hdr.SetControllen(len(oob))

	var wrote int
	var operr syscall.Errno
	werr := c.raw.Write(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall(sysSendmsg, fd,
			uintptr(unsafe.Pointer(&hdr)), uintptr(syscall.MSG_DONTWAIT))
		if errno == syscall.EAGAIN {
			return false
		}
		operr = errno
		wrote = int(r1)
		return true
	})
	if werr != nil {
		return 0, true, werr
	}
	if operr != 0 {
		switch operr {
		case syscall.EINVAL, syscall.EOPNOTSUPP, syscall.ENOPROTOOPT, syscall.EMSGSIZE:
			// The kernel rejected segmentation itself: disable the fast
			// path for the life of the conn.
			c.gsoOK = false
		}
		// Either way the chunk was not sent; the sendmmsg fallback
		// retries it and reports any persistent per-message error.
		return 0, false, nil
	}
	if wrote != total {
		c.gsoOK = false
		return 0, false, nil
	}
	return len(chunk), true, nil
}

// readGRO is the receive path for GRO-enabled sockets: recvmmsg into
// conn-owned buffers, note each arrival's UDP_GRO segment size, and
// serve segments out of those buffers across as many ReadBatch calls
// as it takes — the next syscall waits until everything pending has
// been consumed, so no per-segment allocation or second copy happens.
func (c *batchConn) readGRO(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if out := c.servePending(ms); out > 0 {
		return out, nil
	}
	n := len(c.gr.hdrs)
	for i := 0; i < n; i++ {
		c.gr.iovs[i].Base = &c.groBufs[i][0]
		c.gr.iovs[i].SetLen(len(c.groBufs[i]))
		c.gr.names[i] = syscall.RawSockaddrInet4{}
		c.gr.hdrs[i].Hdr.Namelen = uint32(unsafe.Sizeof(c.gr.names[i]))
		c.gr.hdrs[i].Hdr.Control = &c.gr.ctrls[i][0]
		c.gr.hdrs[i].Hdr.SetControllen(len(c.gr.ctrls[i]))
		c.gr.hdrs[i].Hdr.Flags = 0
	}
	var got int
	var operr error
	err := c.raw.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&c.gr.hdrs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if errno == syscall.EAGAIN {
			return false
		}
		if errno != 0 {
			operr = errno
		} else {
			got = int(r1)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if operr != nil {
		return 0, operr
	}
	c.pend = c.pend[:0]
	c.pendIdx = 0
	for i := 0; i < got; i++ {
		addr := sockaddrToAddrPort(&c.gr.names[i])
		data := c.groBufs[i][:c.gr.hdrs[i].Len]
		seg := groSegSize(c.gr.ctrls[i][:c.gr.hdrs[i].Hdr.Controllen])
		if seg <= 0 || seg > len(data) {
			seg = len(data) // not coalesced: one whole datagram
		}
		c.pend = append(c.pend, groPending{data: data, seg: seg, addr: addr})
	}
	return c.servePending(ms), nil
}

// servePending copies pending segments into the caller's batch, oldest
// first, consuming each coalesced arrival front to back.
func (c *batchConn) servePending(ms []Message) int {
	out := 0
	for out < len(ms) && c.pendIdx < len(c.pend) {
		p := &c.pend[c.pendIdx]
		if len(p.data) == 0 {
			// Zero-length datagrams are legal UDP: deliver one empty
			// message for the arrival.
			ms[out].N = 0
			ms[out].Addr = p.addr
			out++
			c.pendIdx++
			continue
		}
		end := p.off + p.seg
		if end > len(p.data) {
			end = len(p.data)
		}
		ms[out].N = copy(ms[out].Buf, p.data[p.off:end])
		ms[out].Addr = p.addr
		out++
		p.off = end
		if p.off >= len(p.data) {
			c.pendIdx++
		}
	}
	if c.pendIdx >= len(c.pend) {
		c.pend, c.pendIdx = c.pend[:0], 0
	}
	return out
}

// groSegSize walks the control buffer for the UDP_GRO cmsg and returns
// the kernel-reported segment size, or 0 when the datagram was not
// coalesced.
func groSegSize(oob []byte) int {
	for len(oob) >= syscall.SizeofCmsghdr {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&oob[0]))
		l := int(h.Len)
		if l < syscall.SizeofCmsghdr || l > len(oob) {
			return 0
		}
		if h.Level == solUDP && h.Type == udpGRO {
			data := oob[syscall.CmsgLen(0):l]
			switch {
			case len(data) >= 4:
				return int(*(*int32)(unsafe.Pointer(&data[0])))
			case len(data) >= 2:
				return int(*(*uint16)(unsafe.Pointer(&data[0])))
			}
			return 0
		}
		a := (l + 7) &^ 7 // CMSG_ALIGN on 64-bit
		if a <= 0 || a > len(oob) {
			return 0
		}
		oob = oob[a:]
	}
	return 0
}

// GSO reports whether both offload halves are live on this conn.
func (c *batchConn) GSO() bool { return c.gsoOK && c.gro }
