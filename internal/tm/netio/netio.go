// Package netio is the Traffic Manager's UDP datapath substrate: a
// socket-group abstraction that moves datagrams in batches. On Linux
// (amd64/arm64) a group is N `SO_REUSEPORT` sockets sharing one port,
// each read and written with `recvmmsg`/`sendmmsg` so a full batch of
// packets costs one syscall per direction; everywhere else the same
// interface degrades to a portable single-packet implementation over
// net.UDPConn, so the tm package is oblivious to the platform.
//
// The unit of work is a Message: a caller-owned buffer plus the peer
// address. ReadBatch fills as many messages as the socket can supply
// without blocking (at least one — it blocks for the first), WriteBatch
// sends a slice of messages and reports how many left the socket, so
// callers can attribute per-message send errors.
package netio

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
)

// MaxDatagram is the buffer size ReadBatch callers should provision per
// message: the largest datagram the TM protocol produces.
const MaxDatagram = 64 * 1024

// Message is one datagram plus its peer address. On read, Buf[:N] is
// the received payload and Addr the sender; on write, Buf[:N] is sent
// to Addr.
type Message struct {
	Buf  []byte
	N    int
	Addr netip.AddrPort
}

// Conn moves batches of datagrams on one socket. Implementations are
// safe for one concurrent reader plus any number of concurrent writers.
type Conn interface {
	// ReadBatch blocks until at least one datagram is available, then
	// fills as many of ms as can be read without blocking again. Each
	// filled Message gets N and Addr set; Buf must be pre-allocated by
	// the caller and is reused across calls.
	ReadBatch(ms []Message) (int, error)
	// WriteBatch sends ms[i].Buf[:ms[i].N] to ms[i].Addr for each i.
	// It returns the number of messages sent; when err != nil, message
	// [sent] is the one that failed and messages after it were not
	// attempted, so the caller can count the error and resume at
	// sent+1.
	WriteBatch(ms []Message) (sent int, err error)
	// LocalAddr is the bound address (shared by every socket in a
	// group).
	LocalAddr() netip.AddrPort
	Close() error
}

// Config shapes a socket group.
type Config struct {
	// Sockets is the SO_REUSEPORT group size. 0 means one socket per
	// CPU (capped at 4); 1 means a single plain socket. Values above 1
	// require reuseport support (Linux here); elsewhere the group
	// silently degrades to one socket.
	Sockets int
	// Batch is the max datagrams moved per syscall. 0 means 32; 1
	// forces the single-packet path even where batching is available
	// (the "portable arm" for benchmarks).
	Batch int
	// DisableGSO turns off the UDP_SEGMENT/UDP_GRO fast path on batched
	// conns, leaving pure sendmmsg/recvmmsg. Benchmarks use it to
	// separate syscall amortization from in-kernel segmentation
	// offload; production configs leave it false.
	DisableGSO bool
}

func (c Config) normalized() Config {
	if c.Sockets == 0 {
		c.Sockets = runtime.NumCPU()
		if c.Sockets > 4 {
			c.Sockets = 4
		}
	}
	if c.Sockets < 1 {
		c.Sockets = 1
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.Batch > 512 {
		c.Batch = 512
	}
	if !reusePortAvailable {
		c.Sockets = 1
	}
	return c
}

// Group is a set of sockets bound to one local UDP address.
type Group struct {
	conns []Conn
	addr  netip.AddrPort
	cfg   Config
}

// Listen binds a socket group on addr ("127.0.0.1:0" for an ephemeral
// port). With cfg.Sockets > 1 every socket sets SO_REUSEPORT and binds
// the same port, so the kernel fans incoming flows across them by
// 4-tuple hash.
func Listen(addr string, cfg Config) (*Group, error) {
	cfg = cfg.normalized()
	first, err := listenUDP(addr, cfg.Sockets > 1)
	if err != nil {
		return nil, fmt.Errorf("netio: listen %q: %w", addr, err)
	}
	local := first.LocalAddr().(*net.UDPAddr).AddrPort()
	if !local.Addr().Is4() && !local.Addr().Is4In6() {
		// The TM datapath is IPv4; keep the group well-formed anyway.
		cfg.Sockets = 1
	}
	g := &Group{addr: local, cfg: cfg}
	g.conns = append(g.conns, wrapConn(first, cfg))
	for len(g.conns) < cfg.Sockets {
		u, err := listenUDP(local.String(), true)
		if err != nil {
			// Partial groups still work: fall back to what bound.
			break
		}
		g.conns = append(g.conns, wrapConn(u, cfg))
	}
	return g, nil
}

// Conns returns the group's sockets; each wants its own reader
// goroutine.
func (g *Group) Conns() []Conn { return g.conns }

// Addr returns the shared local address.
func (g *Group) Addr() netip.AddrPort { return g.addr }

// Batch returns the normalized per-syscall batch size.
func (g *Group) Batch() int { return g.cfg.Batch }

// Batched reports whether the group uses the multi-message syscall arm.
func (g *Group) Batched() bool { return g.cfg.Batch > 1 && batchAvailable }

// GSO reports whether the group's sockets run the UDP_SEGMENT/UDP_GRO
// offload fast path (false where the kernel rejected the sockopt).
func (g *Group) GSO() bool {
	type gsoCapable interface{ GSO() bool }
	if len(g.conns) == 0 {
		return false
	}
	c, ok := g.conns[0].(gsoCapable)
	return ok && c.GSO()
}

// Close closes every socket; concurrent ReadBatch calls return errors.
func (g *Group) Close() error {
	var first error
	for _, c := range g.conns {
		if err := c.Close(); err != nil && first == nil && !errors.Is(err, net.ErrClosed) {
			first = err
		}
	}
	return first
}

// listenUDP binds one UDP socket, optionally with SO_REUSEPORT.
func listenUDP(addr string, reuse bool) (*net.UDPConn, error) {
	if !reuse {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, err
		}
		u, err := net.ListenUDP("udp", ua)
		if err != nil {
			return nil, err
		}
		tune(u)
		return u, nil
	}
	u, err := listenReusePort(addr)
	if err != nil {
		return nil, err
	}
	tune(u)
	return u, nil
}

func tune(u *net.UDPConn) {
	_ = u.SetReadBuffer(1 << 21)
	_ = u.SetWriteBuffer(1 << 21)
}

// wrapConn picks the best implementation for the platform and batch
// size.
func wrapConn(u *net.UDPConn, cfg Config) Conn {
	if cfg.Batch > 1 && batchAvailable {
		if c, err := newBatchConn(u, cfg.Batch, !cfg.DisableGSO); err == nil {
			return c
		}
	}
	return newSingleConn(u)
}

// singleConn is the portable single-packet implementation (and the
// benchmark's baseline arm): one syscall per datagram through the
// standard library.
type singleConn struct {
	u    *net.UDPConn
	addr netip.AddrPort
}

func newSingleConn(u *net.UDPConn) *singleConn {
	return &singleConn{u: u, addr: u.LocalAddr().(*net.UDPAddr).AddrPort()}
}

func (c *singleConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, from, err := c.u.ReadFromUDPAddrPort(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = from
	return 1, nil
}

func (c *singleConn) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		if _, err := c.u.WriteToUDPAddrPort(ms[i].Buf[:ms[i].N], ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

func (c *singleConn) LocalAddr() netip.AddrPort { return c.addr }
func (c *singleConn) Close() error              { return c.u.Close() }
