//go:build linux && (amd64 || arm64)

package netio

import (
	"fmt"
	"net/netip"
	"testing"
	"time"
)

func mustAddrPort(t *testing.T, s string) netip.AddrPort {
	t.Helper()
	ap, err := netip.ParseAddrPort(s)
	if err != nil {
		t.Fatal(err)
	}
	return ap
}

// gsoPair builds a sender and receiver group on loopback and returns
// them with cleanup registered. Both sides run the batched arm.
func gsoPair(t *testing.T, senderCfg, recvCfg Config) (*Group, *Group) {
	t.Helper()
	rx, err := Listen("127.0.0.1:0", recvCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rx.Close() })
	tx, err := Listen("127.0.0.1:0", senderCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tx.Close() })
	return tx, rx
}

// collect reads from conn until want payloads arrived or the deadline
// passes, using a read batch of readLen messages per call.
func collect(t *testing.T, conn Conn, want, readLen int, deadline time.Duration) map[string]int {
	t.Helper()
	got := make(map[string]int)
	results := make(chan map[string]int, 1)
	go func() {
		acc := make(map[string]int)
		ms := mkMsgs(readLen, 2048)
		n := 0
		for n < want {
			k, err := conn.ReadBatch(ms)
			if err != nil {
				break
			}
			for i := 0; i < k; i++ {
				acc[string(ms[i].Buf[:ms[i].N])]++
				n++
			}
		}
		results <- acc
	}()
	select {
	case acc := <-results:
		got = acc
	case <-time.After(deadline):
		t.Fatalf("timed out waiting for %d datagrams", want)
	}
	return got
}

// TestGSOUniformRoundTrip pushes a uniform batch (the UDP_SEGMENT happy
// path: same size, same destination) through a GSO sender to a GRO
// receiver and checks every payload arrives intact.
func TestGSOUniformRoundTrip(t *testing.T) {
	tx, rx := gsoPair(t,
		Config{Sockets: 1, Batch: 64}, Config{Sockets: 1, Batch: 64})
	if !tx.GSO() || !rx.GSO() {
		t.Skip("kernel without UDP_SEGMENT/UDP_GRO support")
	}
	const n = 48
	ms := make([]Message, n)
	for i := range ms {
		p := []byte(fmt.Sprintf("seg-%03d-padding-to-uniform", i))
		ms[i] = Message{Buf: p, N: len(p), Addr: rx.Addr()}
	}
	sent, err := tx.Conns()[0].WriteBatch(ms)
	if err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, n)
	}
	got := collect(t, rx.Conns()[0], n, 64, 5*time.Second)
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("seg-%03d-padding-to-uniform", i)
		if got[want] != 1 {
			t.Errorf("payload %q arrived %d times, want 1", want, got[want])
		}
	}
}

// TestGROOverflowServing reads a large coalesced arrival through a read
// batch smaller than the segment count: the conn must serve the pending
// segments across successive ReadBatch calls without dropping any.
func TestGROOverflowServing(t *testing.T) {
	tx, rx := gsoPair(t,
		Config{Sockets: 1, Batch: 64}, Config{Sockets: 1, Batch: 64})
	if !tx.GSO() || !rx.GSO() {
		t.Skip("kernel without UDP_SEGMENT/UDP_GRO support")
	}
	const n = 40
	ms := make([]Message, n)
	for i := range ms {
		p := []byte(fmt.Sprintf("ovf-%03d-payload-same-size!", i))
		ms[i] = Message{Buf: p, N: len(p), Addr: rx.Addr()}
	}
	if sent, err := tx.Conns()[0].WriteBatch(ms); err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, n)
	}
	// readLen 3 forces many servePending rounds per arrival.
	got := collect(t, rx.Conns()[0], n, 3, 5*time.Second)
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("ovf-%03d-payload-same-size!", i)
		if got[want] != 1 {
			t.Errorf("payload %q arrived %d times, want 1", want, got[want])
		}
	}
}

// TestGSOTrailingShortSegment exercises the kernel's trailing-segment
// rule: all segments equal except a smaller last one is still one GSO
// send, and the short segment must not be padded or merged.
func TestGSOTrailingShortSegment(t *testing.T) {
	tx, rx := gsoPair(t,
		Config{Sockets: 1, Batch: 64}, Config{Sockets: 1, Batch: 64})
	if !tx.GSO() || !rx.GSO() {
		t.Skip("kernel without UDP_SEGMENT/UDP_GRO support")
	}
	payloads := []string{"equal-size-0", "equal-size-1", "equal-size-2", "tail"}
	ms := make([]Message, len(payloads))
	for i, p := range payloads {
		ms[i] = Message{Buf: []byte(p), N: len(p), Addr: rx.Addr()}
	}
	if sent, err := tx.Conns()[0].WriteBatch(ms); err != nil || sent != len(ms) {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, len(ms))
	}
	got := collect(t, rx.Conns()[0], len(payloads), 8, 5*time.Second)
	for _, p := range payloads {
		if got[p] != 1 {
			t.Errorf("payload %q arrived %d times, want 1", p, got[p])
		}
	}
}

// TestGSONonUniformFallback sends a batch GSO cannot express (mixed
// sizes with a long message in the middle) and checks the sendmmsg
// fallback still delivers everything.
func TestGSONonUniformFallback(t *testing.T) {
	tx, rx := gsoPair(t,
		Config{Sockets: 1, Batch: 64}, Config{Sockets: 1, Batch: 64})
	payloads := []string{"a", "much-longer-message-here", "mid", "x", "another-long-one-at-the-end"}
	ms := make([]Message, len(payloads))
	for i, p := range payloads {
		ms[i] = Message{Buf: []byte(p), N: len(p), Addr: rx.Addr()}
	}
	if sent, err := tx.Conns()[0].WriteBatch(ms); err != nil || sent != len(ms) {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, len(ms))
	}
	got := collect(t, rx.Conns()[0], len(payloads), 8, 5*time.Second)
	for _, p := range payloads {
		if got[p] != 1 {
			t.Errorf("payload %q arrived %d times, want 1", p, got[p])
		}
	}
}

// TestDisableGSO checks the bench's control knob: a group with
// DisableGSO set reports no offload and still moves uniform batches
// through plain sendmmsg/recvmmsg.
func TestDisableGSO(t *testing.T) {
	tx, rx := gsoPair(t,
		Config{Sockets: 1, Batch: 64, DisableGSO: true},
		Config{Sockets: 1, Batch: 64, DisableGSO: true})
	if tx.GSO() || rx.GSO() {
		t.Fatal("DisableGSO group still reports GSO active")
	}
	const n = 16
	ms := make([]Message, n)
	for i := range ms {
		p := []byte(fmt.Sprintf("plain-%02d", i))
		ms[i] = Message{Buf: p, N: len(p), Addr: rx.Addr()}
	}
	if sent, err := tx.Conns()[0].WriteBatch(ms); err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, n)
	}
	got := collect(t, rx.Conns()[0], n, 16, 5*time.Second)
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("plain-%02d", i)
		if got[want] != 1 {
			t.Errorf("payload %q arrived %d times, want 1", want, got[want])
		}
	}
}

// TestGSOEligibility pins the batch-shape rules the write path relies
// on: uniformity, trailing-short, single-destination, segment caps.
func TestGSOEligibility(t *testing.T) {
	a1 := mustAddrPort(t, "127.0.0.1:1000")
	a2 := mustAddrPort(t, "127.0.0.1:2000")
	msg := func(n int, to string) Message {
		ap := a1
		if to == "b" {
			ap = a2
		}
		return Message{Buf: make([]byte, n), N: n, Addr: ap}
	}
	cases := []struct {
		name  string
		chunk []Message
		ok    bool
		seg   int
	}{
		{"single message", []Message{msg(10, "a")}, false, 0},
		{"uniform", []Message{msg(10, "a"), msg(10, "a"), msg(10, "a")}, true, 10},
		{"trailing short", []Message{msg(10, "a"), msg(10, "a"), msg(4, "a")}, true, 10},
		{"short in middle", []Message{msg(10, "a"), msg(4, "a"), msg(10, "a")}, false, 0},
		{"larger last", []Message{msg(10, "a"), msg(12, "a")}, false, 0},
		{"mixed destinations", []Message{msg(10, "a"), msg(10, "b")}, false, 0},
		{"zero length first", []Message{msg(0, "a"), msg(10, "a")}, false, 0},
		{"zero length last", []Message{msg(10, "a"), msg(0, "a")}, false, 0},
	}
	for _, tc := range cases {
		seg, _, ok := gsoEligible(tc.chunk)
		if ok != tc.ok || (ok && seg != tc.seg) {
			t.Errorf("%s: gsoEligible = seg %d ok %v, want seg %d ok %v",
				tc.name, seg, ok, tc.seg, tc.ok)
		}
	}
	// Over the kernel's 64-segment cap.
	big := make([]Message, maxGSOSegs+1)
	for i := range big {
		big[i] = msg(10, "a")
	}
	if _, _, ok := gsoEligible(big); ok {
		t.Error("batch over maxGSOSegs reported eligible")
	}
}
