//go:build linux && amd64

package netio

// sendmmsg postdates the frozen syscall-package number table on amd64,
// so both numbers live here (arch_x86_64: recvmmsg 299, sendmmsg 307,
// sendmsg 46 — kept alongside for the GSO path's cmsg-carrying send).
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
	sysSendmsg  = 46
)
