//go:build linux && arm64

package netio

// Generic 64-bit syscall table: recvmmsg 243, sendmmsg 269, sendmsg 211
// (the GSO path's cmsg-carrying send).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
	sysSendmsg  = 211
)
