package netio

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// mkMsgs allocates a read batch with full-size buffers.
func mkMsgs(n, size int) []Message {
	ms := make([]Message, n)
	for i := range ms {
		ms[i].Buf = make([]byte, size)
	}
	return ms
}

// echoOnce reads one batch and writes every message straight back.
func echoLoop(t *testing.T, c Conn, stop <-chan struct{}) {
	ms := mkMsgs(64, 2048)
	for {
		n, err := c.ReadBatch(ms)
		if err != nil {
			return
		}
		if _, err := c.WriteBatch(ms[:n]); err != nil {
			select {
			case <-stop:
				return
			default:
				t.Errorf("echo write: %v", err)
				return
			}
		}
	}
}

// roundTrip pushes count datagrams through a server group and counts
// the echoes, exercising whatever arm cfg selects.
func roundTrip(t *testing.T, serverCfg, clientCfg Config, count int) {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	defer close(stop)
	for _, c := range srv.Conns() {
		go echoLoop(t, c, stop)
	}

	cli, err := Listen("127.0.0.1:0", clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	conn := cli.Conns()[0]

	var rcvd sync.Map
	done := make(chan int)
	go func() {
		got := 0
		ms := mkMsgs(64, 2048)
		deadline := time.After(10 * time.Second)
		for got < count {
			type result struct {
				n   int
				err error
			}
			ch := make(chan result, 1)
			go func() {
				n, err := conn.ReadBatch(ms)
				ch <- result{n, err}
			}()
			select {
			case r := <-ch:
				if r.err != nil {
					done <- got
					return
				}
				for i := 0; i < r.n; i++ {
					rcvd.Store(string(ms[i].Buf[:ms[i].N]), true)
					got++
				}
			case <-deadline:
				done <- got
				return
			}
		}
		done <- got
	}()

	out := make([]Message, 0, count)
	for i := 0; i < count; i++ {
		payload := []byte(fmt.Sprintf("pkt-%04d", i))
		out = append(out, Message{Buf: payload, N: len(payload), Addr: srv.Addr()})
	}
	// Send in chunks so a slow echo server's socket buffer keeps up.
	for off := 0; off < len(out); off += 16 {
		end := off + 16
		if end > len(out) {
			end = len(out)
		}
		if _, err := conn.WriteBatch(out[off:end]); err != nil {
			t.Fatalf("write: %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	got := <-done
	// UDP on loopback is effectively lossless at these rates, but keep a
	// margin rather than a flake.
	if got < count*9/10 {
		t.Fatalf("echoed %d of %d datagrams", got, count)
	}
}

func TestSinglePacketArm(t *testing.T) {
	roundTrip(t, Config{Sockets: 1, Batch: 1}, Config{Sockets: 1, Batch: 1}, 64)
}

func TestBatchedArm(t *testing.T) {
	if !(&Group{cfg: Config{Batch: 32}.normalized()}).Batched() {
		t.Skip("batched I/O unavailable on this platform")
	}
	roundTrip(t, Config{Sockets: 1, Batch: 32}, Config{Sockets: 1, Batch: 32}, 256)
}

// TestCrossArm checks wire compatibility: a batched server must echo a
// single-packet client's datagrams and vice versa (same bytes, same
// socket semantics — the arms differ only in syscall count).
func TestCrossArm(t *testing.T) {
	if !(&Group{cfg: Config{Batch: 32}.normalized()}).Batched() {
		t.Skip("batched I/O unavailable on this platform")
	}
	roundTrip(t, Config{Sockets: 1, Batch: 32}, Config{Sockets: 1, Batch: 1}, 128)
	roundTrip(t, Config{Sockets: 1, Batch: 1}, Config{Sockets: 1, Batch: 32}, 128)
}

// TestReusePortGroup fans traffic across a multi-socket group and
// checks every datagram is seen exactly once across the group's
// sockets.
func TestReusePortGroup(t *testing.T) {
	if !reusePortAvailable {
		t.Skip("SO_REUSEPORT unavailable on this platform")
	}
	srv, err := Listen("127.0.0.1:0", Config{Sockets: 3, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if len(srv.Conns()) < 2 {
		t.Fatalf("group has %d sockets, want >= 2", len(srv.Conns()))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	for _, c := range srv.Conns() {
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			ms := mkMsgs(16, 512)
			for {
				n, err := c.ReadBatch(ms)
				if err != nil {
					return
				}
				mu.Lock()
				for i := 0; i < n; i++ {
					seen[string(ms[i].Buf[:ms[i].N])]++
				}
				mu.Unlock()
			}
		}(c)
	}

	// Many distinct 4-tuples so the kernel's hash spreads them: one
	// client socket per batch of sends.
	const clients, per = 8, 25
	for ci := 0; ci < clients; ci++ {
		cli, err := Listen("127.0.0.1:0", Config{Sockets: 1, Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Message, per)
		for i := range out {
			p := []byte(fmt.Sprintf("c%d-%d", ci, i))
			out[i] = Message{Buf: p, N: len(p), Addr: srv.Addr()}
		}
		if _, err := cli.Conns()[0].WriteBatch(out); err != nil {
			t.Fatal(err)
		}
		cli.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == clients*per {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < clients*per*9/10 {
		t.Fatalf("saw %d of %d datagrams", len(seen), clients*per)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("datagram %q delivered %d times", k, n)
		}
	}
}

// TestWriteBatchErrorPosition pins the per-message error contract:
// sendto to port 0 fails with EINVAL, the failing message's index is
// the returned sent count, and the caller can resume past it. Both
// arms must agree.
func TestWriteBatchErrorPosition(t *testing.T) {
	for _, batch := range []int{1, 32} {
		srv, err := Listen("127.0.0.1:0", Config{Sockets: 1, Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := Listen("127.0.0.1:0", Config{Sockets: 1, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}

		bad := netip.AddrPortFrom(netip.MustParseAddr("192.0.2.1"), 0)
		p := []byte("x")
		ms := []Message{
			{Buf: p, N: 1, Addr: srv.Addr()},
			{Buf: p, N: 1, Addr: bad},
			{Buf: p, N: 1, Addr: srv.Addr()},
		}
		sent, err := cli.Conns()[0].WriteBatch(ms)
		if err == nil {
			t.Fatalf("batch=%d: port-0 destination did not error", batch)
		}
		if sent != 1 {
			t.Fatalf("batch=%d: sent = %d before the bad message, want 1", batch, sent)
		}
		// Resume after the poisoned message.
		if n, err := cli.Conns()[0].WriteBatch(ms[sent+1:]); err != nil || n != 1 {
			t.Fatalf("batch=%d: resume after error: n=%d err=%v", batch, n, err)
		}
		cli.Close()
		srv.Close()
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	g, err := Listen("127.0.0.1:0", Config{Sockets: 1, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		ms := mkMsgs(8, 512)
		_, err := g.Conns()[0].ReadBatch(ms)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	g.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("ReadBatch returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReadBatch did not unblock on Close")
	}
}
