//go:build !(linux && (amd64 || arm64))

package netio

import (
	"errors"
	"net"
)

const batchAvailable = false

func newBatchConn(u *net.UDPConn, batch int, gso bool) (Conn, error) {
	return nil, errors.New("netio: batched I/O unavailable on this platform")
}
