//go:build !linux

package netio

import (
	"errors"
	"net"
)

const reusePortAvailable = false

func listenReusePort(addr string) (*net.UDPConn, error) {
	return nil, errors.New("netio: SO_REUSEPORT unavailable on this platform")
}
