package tm

import (
	"testing"
	"time"

	"painter/internal/tmproto"
)

func statuses(rtts map[uint32]time.Duration, selected uint32) []DestinationStatus {
	// Build sorted-by-RTT candidates as the edge does.
	var out []DestinationStatus
	for pop, rtt := range rtts {
		out = append(out, DestinationStatus{
			Dest: tmproto.Destination{PoP: pop}, Alive: true, RTT: rtt,
			Selected: pop == selected,
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].RTT < out[j-1].RTT; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func incumbentOf(cands []DestinationStatus) int {
	for i, c := range cands {
		if c.Selected {
			return i
		}
	}
	return -1
}

func TestLowestRTTHysteresis(t *testing.T) {
	p := LowestRTT{HysteresisMs: 5}
	// Incumbent PoP 2 at 20ms; challenger PoP 1 at 17ms: within
	// hysteresis, keep.
	c := statuses(map[uint32]time.Duration{1: 17 * time.Millisecond, 2: 20 * time.Millisecond}, 2)
	if got := p.Select(c, incumbentOf(c)); c[got].Dest.PoP != 2 {
		t.Errorf("hysteresis should keep incumbent, got PoP %d", c[got].Dest.PoP)
	}
	// Challenger at 10ms: beats hysteresis, switch.
	c = statuses(map[uint32]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond}, 2)
	if got := p.Select(c, incumbentOf(c)); c[got].Dest.PoP != 1 {
		t.Errorf("clear winner should be selected, got PoP %d", c[got].Dest.PoP)
	}
	// No incumbent: pick best.
	c = statuses(map[uint32]time.Duration{1: 10 * time.Millisecond, 2: 8 * time.Millisecond}, 99)
	if got := p.Select(c, -1); c[got].Dest.PoP != 2 {
		t.Errorf("no incumbent: want best, got PoP %d", c[got].Dest.PoP)
	}
	if p.Select(nil, -1) != -1 {
		t.Error("empty candidates should return -1")
	}
}

func TestPreferPoPPolicy(t *testing.T) {
	p := PreferPoP{PoP: 7}
	c := statuses(map[uint32]time.Duration{1: 5 * time.Millisecond, 7: 50 * time.Millisecond}, 1)
	if got := p.Select(c, incumbentOf(c)); c[got].Dest.PoP != 7 {
		t.Errorf("PreferPoP should pick PoP 7 despite higher RTT, got %d", c[got].Dest.PoP)
	}
	// PoP 7 absent: fall back to lowest RTT.
	c = statuses(map[uint32]time.Duration{1: 5 * time.Millisecond, 2: 9 * time.Millisecond}, 0)
	if got := p.Select(c, -1); c[got].Dest.PoP != 1 {
		t.Errorf("fallback should pick lowest RTT, got PoP %d", c[got].Dest.PoP)
	}
}

func TestAvoidPoPPolicy(t *testing.T) {
	p := AvoidPoP{PoP: 1}
	c := statuses(map[uint32]time.Duration{1: 5 * time.Millisecond, 2: 50 * time.Millisecond}, 1)
	if got := p.Select(c, incumbentOf(c)); c[got].Dest.PoP != 2 {
		t.Errorf("AvoidPoP should skip PoP 1, got %d", c[got].Dest.PoP)
	}
	// Only the avoided PoP alive: use it anyway.
	c = statuses(map[uint32]time.Duration{1: 5 * time.Millisecond}, 0)
	if got := p.Select(c, -1); c[got].Dest.PoP != 1 {
		t.Errorf("sole survivor must be used, got %d", c[got].Dest.PoP)
	}
}

// TestEdgeWithPreferPoPPolicy wires a custom policy into a live edge:
// the edge must steer to the preferred PoP even though it is slower,
// and fall back when it dies.
func TestEdgeWithPreferPoPPolicy(t *testing.T) {
	r := newRigCfg(t, 5*time.Millisecond, 25*time.Millisecond, nil, func(c *EdgeConfig) {
		c.Policy = PreferPoP{PoP: 2}
	})
	// Despite PoP 1 being 5x faster, policy pins to PoP 2.
	r.waitSelected(t, 2, 3*time.Second)
	// PoP 2 dies: fall back to PoP 1.
	r.linkB.SetDown(true)
	r.waitSelected(t, 1, 3*time.Second)
	// PoP 2 returns: policy reclaims it.
	r.linkB.SetDown(false)
	r.waitSelected(t, 2, 3*time.Second)
}
