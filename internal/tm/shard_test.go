package tm

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"painter/internal/tmproto"
)

func shardKey(i int) tmproto.FlowKey {
	return tmproto.FlowKey{
		Proto:   17,
		Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.MustParseAddr("192.0.2.1"),
		SrcPort: uint16(i), DstPort: 443,
	}
}

func TestFlowMapBasics(t *testing.T) {
	m := newFlowMap[string]()
	k := shardKey(1)
	if _, ok := m.Get(k); ok {
		t.Fatal("empty map has entry")
	}
	m.Set(k, "a")
	if v, ok := m.Get(k); !ok || v != "a" {
		t.Fatalf("get = %q/%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	// Update mutates under the stripe lock and can delete.
	v := m.Update(k, func(v string, ok bool) (string, bool) {
		if !ok || v != "a" {
			t.Fatalf("update saw %q/%v", v, ok)
		}
		return "b", true
	})
	if v != "b" {
		t.Fatalf("update returned %q", v)
	}
	m.Update(k, func(string, bool) (string, bool) { return "", false })
	if _, ok := m.Get(k); ok || m.Len() != 0 {
		t.Fatal("delete via Update did not remove entry")
	}
}

func TestFlowMapSweepAndRange(t *testing.T) {
	m := newFlowMap[int]()
	for i := 0; i < 1000; i++ {
		m.Set(shardKey(i), i)
	}
	n := m.Sweep(func(_ tmproto.FlowKey, v int) bool { return v%2 == 0 })
	if n != 500 || m.Len() != 500 {
		t.Fatalf("sweep removed %d, len %d", n, m.Len())
	}
	seen := 0
	m.Range(func(_ tmproto.FlowKey, v int) {
		if v%2 == 0 {
			t.Fatalf("swept value %d still present", v)
		}
		seen++
	})
	if seen != 500 {
		t.Fatalf("range saw %d", seen)
	}
}

// TestFlowHashSpread checks the stripe hash actually spreads realistic
// keys: sequential client ports must not collapse onto a few stripes.
func TestFlowHashSpread(t *testing.T) {
	counts := make([]int, flowShardCount)
	const n = 1 << 12
	for i := 0; i < n; i++ {
		counts[hashFlowKey(shardKey(i))&(flowShardCount-1)]++
	}
	want := n / flowShardCount
	for s, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("stripe %d holds %d of %d keys (expected ≈%d)", s, c, n, want)
		}
	}
}

func TestFlowMapConcurrent(t *testing.T) {
	m := newFlowMap[int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := shardKey(i)
				m.Update(k, func(v int, _ bool) (int, bool) { return v + 1, true })
				m.Get(k)
			}
		}(w)
	}
	wg.Wait()
	total := 0
	m.Range(func(_ tmproto.FlowKey, v int) { total += v })
	if total != 8*500 {
		t.Fatalf("lost updates: total = %d, want %d", total, 8*500)
	}
	if m.Len() != 500 {
		t.Fatalf("len = %d", m.Len())
	}
	_ = fmt.Sprint(total)
}
