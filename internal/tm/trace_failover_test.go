package tm

// Acceptance test for the failover trace chain: a single TM failover,
// triggered by a chaos-generated fault schedule, must produce ONE
// connected trace — edge probe silence → dead detection → re-selection
// → flow re-pin → PoP re-home — with the PoP side stitched in via trace
// context on the wire, and the whole thing exportable as valid Chrome
// trace-event JSON.

import (
	"bytes"
	"testing"
	"time"

	"painter/internal/chaos"
	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/netsim/emul"
	"painter/internal/obs/span"
	"painter/internal/tmproto"
	"painter/internal/topology"
)

// chaosTrigger generates a deterministic fault schedule and returns its
// first peering-down event — the injection that kills the edge's
// selected path below. Using the chaos generator (rather than a bare
// SetDown) keeps the trigger on the same code path the failover
// experiments use.
func chaosTrigger(t *testing.T) netsim.Event {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Seed: 11, Tier1: 3, Tier2: 12, Stubs: 80,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3,
		EnterpriseFrac: 0.35, ContentFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{
		Name: "chaos", PoPMetros: 8, PeerFrac: 0.75, TransitProviders: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := chaos.Generate(g, d, chaos.DefaultGenConfig(20260806))
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range sched {
		if se.Ev.Kind == netsim.EventPeeringDown {
			return se.Ev
		}
	}
	t.Fatal("chaos schedule contains no peering-down event")
	return netsim.Event{}
}

// findRec returns the records with the given name and trace ID.
func findRecs(recs []span.Record, name string, trace uint64) []span.Record {
	var out []span.Record
	for _, r := range recs {
		if r.Name == name && r.TraceID == trace {
			out = append(out, r)
		}
	}
	return out
}

func TestFailoverProducesConnectedTrace(t *testing.T) {
	edgeTr := span.New(span.Config{Seed: 101, Sample: 1, Process: "tm-edge"})
	popTr := span.New(span.Config{Seed: 202, Sample: 1, Process: "tm-pop"})
	if edgeTr == nil || popTr == nil {
		t.Skip("tracing compiled out (obsstrip)")
	}

	// One PoP behind two tunnels of different latency — the §3.2 anycast
	// + unicast pair. Killing the selected tunnel re-pins the flow onto
	// the survivor, and the PoP sees it arrive from a new edge address.
	pop, err := NewPoP(PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1, Tracer: popTr})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	linkA, err := emul.NewLink(pop.Addr(), 3*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer linkA.Close()
	linkB, err := emul.NewLink(pop.Addr(), 9*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer linkB.Close()
	destA, destB := destFor(linkA, 1), destFor(linkB, 1)

	echoed := make(chan struct{}, 16)
	events := make(chan Event, 256)
	cfg := DefaultEdgeConfig()
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.MinFailureTimeout = 30 * time.Millisecond
	cfg.Destinations = []tmproto.Destination{destA, destB}
	cfg.Tracer = edgeTr
	cfg.OnReturn = func(tmproto.FlowKey, []byte) {
		select {
		case echoed <- struct{}{}:
		default:
		}
	}
	cfg.OnEvent = func(ev Event) {
		select {
		case events <- ev:
		default:
		}
	}
	edge, err := NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	// Pin a flow through the fast tunnel.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if d, ok := edge.Selected(); ok && d.Port == destA.Port {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge never selected the fast tunnel")
		}
		time.Sleep(2 * time.Millisecond)
	}
	flow := flowKey(7001)
	if err := edge.Send(flow, []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-echoed:
	case <-time.After(2 * time.Second):
		t.Fatal("pinned flow never echoed")
	}

	// Inject the chaos-scheduled fault: the first generated peering-down
	// maps onto the tunnel the edge selected.
	if ev := chaosTrigger(t); ev.Kind != netsim.EventPeeringDown {
		t.Fatalf("unexpected trigger %+v", ev)
	}
	linkA.SetDown(true)

	deadEv := waitEvent(t, events, 5*time.Second, "dest-dead", func(ev Event) bool {
		return ev.Kind == EventDestDead
	})
	if !deadEv.Trace.Valid() {
		t.Error("dest-dead event carries no trace context")
	}
	selEv := waitEvent(t, events, 5*time.Second, "reselection", func(ev Event) bool {
		return ev.Kind == EventSelected && ev.Dest.Port == destB.Port
	})
	if selEv.Trace.TraceID != deadEv.Trace.TraceID {
		t.Errorf("reselect trace %016x != dead trace %016x",
			selEv.Trace.TraceID, deadEv.Trace.TraceID)
	}

	// The next send re-pins the flow; the data packet carries the re-pin
	// span's context, so the PoP's re-home stitches into the same trace.
	if err := edge.Send(flow, []byte("repinned")); err != nil {
		t.Fatal(err)
	}
	trace := deadEv.Trace.TraceID
	deadline = time.Now().Add(3 * time.Second)
	for len(findRecs(popTr.Recorder().Snapshot(), "tm.pop.rehome", trace)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("PoP never recorded the re-home span")
		}
		time.Sleep(5 * time.Millisecond)
	}

	edgeRecs := edgeTr.Recorder().Snapshot()
	popRecs := popTr.Recorder().Snapshot()

	roots := findRecs(edgeRecs, "tm.edge.failover", trace)
	if len(roots) != 1 {
		t.Fatalf("want exactly one failover root in trace %016x, got %d", trace, len(roots))
	}
	root := roots[0]
	if root.ParentID != 0 {
		t.Errorf("failover root has parent %016x", root.ParentID)
	}
	// Every edge-side stage hangs directly off the root.
	var repinID uint64
	for _, name := range []string{"tm.edge.probe", "tm.edge.dead", "tm.edge.reselect", "tm.edge.repin"} {
		recs := findRecs(edgeRecs, name, trace)
		if len(recs) == 0 {
			t.Errorf("trace %016x missing stage %s", trace, name)
			continue
		}
		for _, r := range recs {
			if r.ParentID != root.SpanID {
				t.Errorf("%s parent %016x, want root %016x", name, r.ParentID, root.SpanID)
			}
		}
		if name == "tm.edge.repin" {
			repinID = recs[0].SpanID
		}
	}
	// The PoP-side tail is parented on the re-pin span it rode in on.
	rehomes := findRecs(popRecs, "tm.pop.rehome", trace)
	if len(rehomes) != 1 {
		t.Fatalf("want one re-home span, got %d", len(rehomes))
	}
	if rehomes[0].ParentID != repinID {
		t.Errorf("re-home parent %016x, want repin span %016x", rehomes[0].ParentID, repinID)
	}

	// The merged chain exports as valid Chrome trace-event JSON.
	var chain []span.Record
	for _, r := range append(append([]span.Record(nil), edgeRecs...), popRecs...) {
		if r.TraceID == trace {
			chain = append(chain, r)
		}
	}
	if len(chain) < 5 {
		t.Fatalf("connected chain has only %d spans", len(chain))
	}
	for _, r := range chain {
		t.Logf("%-18s start=%dµs dur=%dµs attrs=%v", r.Name, r.StartNs/1e3, r.DurNs/1e3, r.Attrs)
	}
	var buf bytes.Buffer
	if err := span.WriteChrome(&buf, "tm-failover", chain); err != nil {
		t.Fatal(err)
	}
	ct, err := span.ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported failover trace is not valid Chrome JSON: %v", err)
	}
	// 1 metadata event + the chain.
	if got := len(ct.TraceEvents); got != len(chain)+1 {
		t.Errorf("export has %d events, want %d", got, len(chain)+1)
	}
}
