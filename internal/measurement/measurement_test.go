package measurement

import (
	"math"
	"testing"

	"painter/internal/bgp"

	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

func testSystem(t *testing.T) (*System, *netsim.World, *usergroup.Set) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 33, Tier1: 4, Tier2: 24, Stubs: 200,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.4, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{Name: "t", PoPMetros: 12, PeerFrac: 0.8, TransitProviders: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w, err := netsim.New(g, d, 55)
	if err != nil {
		t.Fatal(err)
	}
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(w, ugs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, w, ugs
}

func TestProbeCoverageTarget(t *testing.T) {
	s, _, ugs := testSystem(t)
	var covered float64
	for _, u := range ugs.UGs {
		if s.HasProbe(u.ID) {
			covered += u.Weight
		}
	}
	if covered < 0.45 || covered > 0.60 {
		t.Errorf("probe traffic coverage = %.3f, want ~0.47", covered)
	}
	if s.ProbeCount() >= ugs.Len() {
		t.Error("probes should cover a strict subset of UGs")
	}
}

func TestTargetUncertaintyDistribution(t *testing.T) {
	s, w, _ := testSystem(t)
	precise, mid, far, none := 0, 0, 0, 0
	for _, ing := range w.Deploy.AllPeeringIDs() {
		u := s.TargetUncertaintyKm(ing)
		switch {
		case math.IsInf(u, 1):
			none++
		case u <= 150:
			precise++
		case u <= 500:
			mid++
		default:
			far++
		}
	}
	total := precise + mid + far + none
	if precise == 0 || mid == 0 || far == 0 {
		t.Errorf("degenerate uncertainty distribution: %d/%d/%d/%d", precise, mid, far, none)
	}
	if frac := float64(mid) / float64(total); frac < 0.3 {
		t.Errorf("mid-uncertainty targets = %.2f of total, want the bulk", frac)
	}
}

func TestCoverageMonotoneInUncertainty(t *testing.T) {
	s, _, _ := testSystem(t)
	prev := -1.0
	for _, km := range []float64{100, 200, 300, 450, 700, 1500} {
		c, err := s.CoverageAt(km, false)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev-1e-9 {
			t.Errorf("coverage not monotone at %v km: %v -> %v", km, prev, c)
		}
		if c < 0 || c > 1 {
			t.Errorf("coverage %v out of range", c)
		}
		prev = c
	}
	// At the paper's 450 km, coverage should be substantial.
	c450, _ := s.CoverageAt(450, false)
	if c450 < 0.5 {
		t.Errorf("coverage at 450 km = %.2f, want > 0.5 (paper: 80.6%%)", c450)
	}
}

func TestErrorGrowsWithUncertainty(t *testing.T) {
	s, _, _ := testSystem(t)
	small, err := s.MedianAbsErrorAt(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.MedianAbsErrorAt(500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0 || large <= 0 {
		t.Fatalf("error buckets empty: %v / %v", small, large)
	}
	if large <= small {
		t.Errorf("estimation error should grow with uncertainty: small=%.2f large=%.2f", small, large)
	}
	// At the paper's 450 km knee the error should be a few ms.
	mid, err := s.MedianAbsErrorAt(300, 450)
	if err != nil {
		t.Fatal(err)
	}
	if mid > 6 {
		t.Errorf("median error at ~450 km = %.2f ms, want a few ms (paper: ~2)", mid)
	}
}

func TestMeasuredMsGating(t *testing.T) {
	s, w, ugs := testSystem(t)
	var probe, noProbe *usergroup.UG
	for i := range ugs.UGs {
		u := &ugs.UGs[i]
		if s.HasProbe(u.ID) && probe == nil {
			probe = u
		}
		if !s.HasProbe(u.ID) && noProbe == nil {
			noProbe = u
		}
	}
	if probe == nil || noProbe == nil {
		t.Fatal("need both probe and non-probe UGs")
	}
	var coveredIng, uncoveredIng = int32(-1), int32(-1)
	for _, ing := range w.Deploy.AllPeeringIDs() {
		if s.Covered(ing) && coveredIng == -1 {
			coveredIng = int32(ing)
		}
		if !s.Covered(ing) && uncoveredIng == -1 {
			uncoveredIng = int32(ing)
		}
	}
	if coveredIng == -1 {
		t.Fatal("no covered ingress")
	}
	if _, ok := s.MeasuredMs(*probe, bgpIngress(coveredIng)); !ok {
		t.Error("probe + covered target should measure")
	}
	if _, ok := s.MeasuredMs(*noProbe, bgpIngress(coveredIng)); ok {
		t.Error("non-probe UG must not measure directly")
	}
	if uncoveredIng != -1 {
		if _, ok := s.MeasuredMs(*probe, bgpIngress(uncoveredIng)); ok {
			t.Error("uncovered ingress must not be measurable")
		}
	}
}

func TestMeasurementAccuracyForPreciseTargets(t *testing.T) {
	s, w, ugs := testSystem(t)
	checked := 0
	for _, u := range ugs.UGs {
		if !s.HasProbe(u.ID) {
			continue
		}
		pc, err := w.PolicyCompliant(u.ASN)
		if err != nil {
			t.Fatal(err)
		}
		for ing := range pc {
			if s.TargetUncertaintyKm(ing) > 100 {
				continue
			}
			est, ok := s.MeasuredMs(u, ing)
			if !ok {
				continue
			}
			truth, err := w.LatencyMs(u.ASN, u.Metro, ing)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est-truth) > 5 {
				t.Errorf("precise target estimate off by %.1f ms", est-truth)
			}
			checked++
			if checked > 50 {
				return
			}
		}
	}
	if checked == 0 {
		t.Skip("no precise-target measurements available")
	}
}

func TestEstimatorCoversNonProbeUGs(t *testing.T) {
	s, w, ugs := testSystem(t)
	est := s.Estimator()
	probeHits, extrapolated := 0, 0
	for _, u := range ugs.UGs {
		pc, err := w.PolicyCompliant(u.ASN)
		if err != nil {
			t.Fatal(err)
		}
		for ing := range pc {
			ms, ok := est(u, ing)
			if !ok {
				continue
			}
			if ms <= 0 {
				t.Fatalf("estimate %v must be positive", ms)
			}
			if s.HasProbe(u.ID) {
				probeHits++
			} else {
				extrapolated++
			}
		}
	}
	if probeHits == 0 {
		t.Error("no direct probe estimates")
	}
	if extrapolated == 0 {
		t.Error("no extrapolated estimates for unprobed UGs (Appendix C)")
	}
}

func TestEstimatorDeterministic(t *testing.T) {
	s, w, ugs := testSystem(t)
	e1, e2 := s.Estimator(), s.Estimator()
	u := ugs.UGs[0]
	for _, ing := range w.Deploy.AllPeeringIDs()[:10] {
		a, okA := e1(u, ing)
		b, okB := e2(u, ing)
		if okA != okB || a != b {
			t.Fatalf("estimator nondeterministic for ingress %d: %v/%v vs %v/%v", ing, a, okA, b, okB)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	_, w, ugs := testSystem(t)
	bad := DefaultConfig()
	bad.PingCount = 0
	if _, err := NewSystem(w, ugs, bad); err == nil {
		t.Error("PingCount 0 should fail")
	}
	bad = DefaultConfig()
	bad.ProbeTrafficCoverage = 0
	if _, err := NewSystem(w, ugs, bad); err == nil {
		t.Error("zero coverage should fail")
	}
}

// bgpIngress converts for test readability.
func bgpIngress(v int32) bgp.IngressID { return bgp.IngressID(v) }
