// Package measurement reproduces the paper's measurement methodology
// (§5.1.1, Appendices B and C): a RIPE-Atlas-like probe fleet hosted in
// a subset of user groups, per-ingress measurement targets with
// geolocation uncertainty, ping-based latency measurement (min of 7),
// and extrapolation of measured improvements to unprobed UGs.
package measurement

import (
	"fmt"
	"math"
	"sort"

	"painter/internal/bgp"
	"painter/internal/geo"
	"painter/internal/netsim"
	"painter/internal/stats"
	"painter/internal/usergroup"
)

// Config parameterizes the measurement system.
type Config struct {
	Seed int64
	// ProbeTrafficCoverage is the fraction of total traffic volume whose
	// UGs host probes (the paper: RIPE Atlas covers ~47% of Azure
	// volume).
	ProbeTrafficCoverage float64
	// GeoPrecisionKm is GP: the maximum admissible target geolocation
	// uncertainty (the paper settles on 450 km).
	GeoPrecisionKm float64
	// PingCount is how many pings are taken per measurement (min is
	// kept; the paper uses 7).
	PingCount int
	// ExtrapolateRadiusKm / ExtrapolateAnycastMs are Appendix C's
	// neighbor-probe criteria (500 km, 10 ms).
	ExtrapolateRadiusKm  float64
	ExtrapolateAnycastMs float64
	// PingJitterMs scales per-ping noise.
	PingJitterMs float64
}

// DefaultConfig mirrors the paper's choices.
func DefaultConfig() Config {
	return Config{
		Seed:                 7,
		ProbeTrafficCoverage: 0.47,
		GeoPrecisionKm:       450,
		PingCount:            7,
		ExtrapolateRadiusKm:  500,
		ExtrapolateAnycastMs: 10,
		PingJitterMs:         2.0,
	}
}

// System is a materialized measurement system over one world + UG set.
type System struct {
	world *netsim.World
	ugs   *usergroup.Set
	cfg   Config

	probes map[usergroup.ID]bool
	// targetUncKm is each ingress's intrinsic target geolocation
	// uncertainty; math.Inf(1) means no target could be found at all.
	targetUncKm map[bgp.IngressID]float64
	// anycastMs caches each UG's measured anycast latency.
	anycastMs map[usergroup.ID]float64

	rng *randSource
}

// randSource provides deterministic per-key noise draws.
type randSource struct{ seed uint64 }

func (r *randSource) unit(parts ...uint64) float64 {
	h := mix(r.seed ^ 0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = mix(h ^ mix(p+0x9e3779b97f4a7c15))
	}
	return float64(h>>11) / float64(1<<53)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSystem builds the measurement system: chooses probe-hosting UGs by
// traffic weight until the coverage target is met, assigns each ingress
// a target with intrinsic geolocation uncertainty, and measures anycast
// latencies for every UG.
func NewSystem(w *netsim.World, ugs *usergroup.Set, cfg Config) (*System, error) {
	if cfg.PingCount < 1 {
		return nil, fmt.Errorf("measurement: PingCount must be >= 1")
	}
	if cfg.ProbeTrafficCoverage <= 0 || cfg.ProbeTrafficCoverage > 1 {
		return nil, fmt.Errorf("measurement: ProbeTrafficCoverage must be in (0,1]")
	}
	s := &System{
		world:       w,
		ugs:         ugs,
		cfg:         cfg,
		probes:      make(map[usergroup.ID]bool),
		targetUncKm: make(map[bgp.IngressID]float64),
		anycastMs:   make(map[usergroup.ID]float64),
		rng:         &randSource{seed: uint64(cfg.Seed)},
	}

	// Probe placement: descending traffic weight with per-UG jitter so
	// placement is not purely deterministic by rank (Atlas hosts are
	// biased toward large networks but not perfectly so).
	type wug struct {
		id usergroup.ID
		w  float64
	}
	order := make([]wug, 0, ugs.Len())
	for _, u := range ugs.UGs {
		jitter := 0.5 + s.rng.unit(1, uint64(u.ID))
		order = append(order, wug{u.ID, u.Weight * jitter})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].w != order[j].w {
			return order[i].w > order[j].w
		}
		return order[i].id < order[j].id
	})
	var covered float64
	total := ugs.TotalWeight()
	for _, o := range order {
		if covered >= cfg.ProbeTrafficCoverage*total {
			break
		}
		s.probes[o.id] = true
		covered += ugs.Get(o.id).Weight
	}

	// Target geolocation: a mixture distribution with a knee near 400 km
	// (Appendix B, Fig. 12a): interface addresses give precise targets
	// for a minority; crawled hints locate most targets to a few hundred
	// km; a tail is effectively unlocatable.
	for _, ing := range w.Deploy.AllPeeringIDs() {
		u := s.rng.unit(2, uint64(ing))
		var unc float64
		switch {
		case u < 0.25: // interface address in peer space: precise
			unc = 10 + 140*s.rng.unit(3, uint64(ing))
		case u < 0.85: // IPMap/Maxmind/RDNS hints
			unc = 150 + 350*s.rng.unit(4, uint64(ing))
		case u < 0.97: // weakly located
			unc = 500 + 1000*s.rng.unit(5, uint64(ing))
		default: // no usable target
			unc = math.Inf(1)
		}
		s.targetUncKm[ing] = unc
	}

	// Anycast latency: measured for every UG by pinging the anycast
	// address (no target-geolocation issues: the prefix is the cloud's).
	sel, err := w.ResolveIngress(w.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, err
	}
	for _, u := range ugs.UGs {
		r, ok := sel[u.ASN]
		if !ok {
			continue
		}
		ms, err := s.pingMs(u, r.Ingress, 6)
		if err != nil {
			return nil, err
		}
		s.anycastMs[u.ID] = ms
	}
	return s, nil
}

// pingMs simulates PingCount pings and returns the minimum RTT.
func (s *System) pingMs(u usergroup.UG, ing bgp.IngressID, dom uint64) (float64, error) {
	base, err := s.world.LatencyMs(u.ASN, u.Metro, ing)
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for i := 0; i < s.cfg.PingCount; i++ {
		ms := base + s.cfg.PingJitterMs*s.rng.unit(dom, uint64(u.ID), uint64(ing), uint64(i))
		if ms < best {
			best = ms
		}
	}
	return best, nil
}

// HasProbe reports whether the UG hosts a probe.
func (s *System) HasProbe(id usergroup.ID) bool { return s.probes[id] }

// ProbeCount returns the number of probe-hosting UGs.
func (s *System) ProbeCount() int { return len(s.probes) }

// TargetUncertaintyKm returns the intrinsic geolocation uncertainty of
// an ingress's measurement target (+Inf when no target exists).
func (s *System) TargetUncertaintyKm(ing bgp.IngressID) float64 {
	if u, ok := s.targetUncKm[ing]; ok {
		return u
	}
	return math.Inf(1)
}

// Covered reports whether the ingress has a target admissible at the
// configured geo-precision.
func (s *System) Covered(ing bgp.IngressID) bool {
	return s.targetUncKm[ing] <= s.cfg.GeoPrecisionKm
}

// AnycastMs returns the measured anycast latency for a UG.
func (s *System) AnycastMs(id usergroup.ID) (float64, bool) {
	ms, ok := s.anycastMs[id]
	return ms, ok
}

// MeasuredMs returns the estimated latency from a probe-hosting UG
// through an ingress, using the ingress's geolocated target as a stand-
// in (Appendix B): true path latency plus an error that grows with the
// target's geolocation uncertainty. ok=false when the UG has no probe or
// the ingress has no admissible target.
func (s *System) MeasuredMs(u usergroup.UG, ing bgp.IngressID) (float64, bool) {
	if !s.probes[u.ID] || !s.Covered(ing) {
		return 0, false
	}
	ms, err := s.pingMs(u, ing, 7)
	if err != nil {
		return 0, false
	}
	// Geolocation error: the target sits up to unc km from the true
	// ingress PoP; the latency estimate is off by at most the fiber RTT
	// across that distance. Signed, centered on zero.
	unc := s.targetUncKm[ing]
	errMs := geo.KmToMinRTTMs(unc) * (s.rng.unit(8, uint64(u.ID), uint64(ing)) - 0.5)
	est := ms + errMs
	if est < 0.1 {
		est = 0.1
	}
	return est, true
}

// Estimator returns the full Appendix B+C estimator for the
// orchestrator: direct (noisy) measurements for probe-hosting UGs, and
// improvements extrapolated from nearby, similar-anycast probes for the
// rest. The returned function is deterministic.
func (s *System) Estimator() func(u usergroup.UG, ing bgp.IngressID) (float64, bool) {
	// Precompute per-probe improvement pools for extrapolation.
	type probeInfo struct {
		ug      usergroup.UG
		anycast float64
	}
	var probes []probeInfo
	for _, u := range s.ugs.UGs {
		if s.probes[u.ID] {
			if a, ok := s.anycastMs[u.ID]; ok {
				probes = append(probes, probeInfo{u, a})
			}
		}
	}
	improvementPool := func(target usergroup.UG, targetAnycast float64) []float64 {
		var pool []float64
		for _, p := range probes {
			if geo.DistanceKm(target.Coord, p.ug.Coord) > s.cfg.ExtrapolateRadiusKm {
				continue
			}
			if math.Abs(p.anycast-targetAnycast) > s.cfg.ExtrapolateAnycastMs {
				continue
			}
			pc, err := s.world.PolicyCompliant(p.ug.ASN)
			if err != nil {
				continue
			}
			for ing := range pc {
				if m, ok := s.MeasuredMs(p.ug, ing); ok {
					pool = append(pool, p.anycast-m) // improvement (can be negative)
				}
			}
		}
		sort.Float64s(pool)
		return pool
	}
	poolCache := make(map[usergroup.ID][]float64)

	return func(u usergroup.UG, ing bgp.IngressID) (float64, bool) {
		if s.probes[u.ID] {
			return s.MeasuredMs(u, ing)
		}
		anycast, ok := s.anycastMs[u.ID]
		if !ok {
			return 0, false
		}
		pool, ok := poolCache[u.ID]
		if !ok {
			pool = improvementPool(u, anycast)
			poolCache[u.ID] = pool
		}
		if len(pool) == 0 {
			return 0, false
		}
		// Draw deterministically per (UG, ingress) from the pool.
		idx := int(s.rng.unit(9, uint64(u.ID), uint64(ing)) * float64(len(pool)))
		if idx >= len(pool) {
			idx = len(pool) - 1
		}
		est := anycast - pool[idx]
		if est < 0.1 {
			est = 0.1
		}
		return est, true
	}
}

// CoverageAt computes the Fig. 12a metric at a given admissible
// uncertainty: the traffic-weighted fraction of useful policy-compliant
// (UG, ingress) tuples whose ingress has a target located within maxKm.
// Tuples unlikely to help (anycast already below the speed-of-light
// bound to the ingress's PoP) are excluded, and each UG's weight is
// split evenly across its tuples — both per Appendix B. When
// restrictToProbes is set, only probe-hosting UGs are counted
// (Fig. 12a's second line).
func (s *System) CoverageAt(maxKm float64, restrictToProbes bool) (float64, error) {
	var num, den float64
	for _, u := range s.ugs.UGs {
		if restrictToProbes && !s.probes[u.ID] {
			continue
		}
		anycast, ok := s.anycastMs[u.ID]
		if !ok {
			continue
		}
		pc, err := s.world.PolicyCompliant(u.ASN)
		if err != nil {
			return 0, err
		}
		var useful []bgp.IngressID
		for ing := range pc {
			pop, err := s.world.Deploy.PoPOfPeering(ing)
			if err != nil {
				return 0, err
			}
			// Exclude tuples that cannot beat anycast even at light speed.
			if anycast <= geo.KmToMinRTTMs(geo.DistanceKm(u.Coord, pop.Coord)) {
				continue
			}
			useful = append(useful, ing)
		}
		if len(useful) == 0 {
			continue
		}
		share := u.Weight / float64(len(useful))
		for _, ing := range useful {
			den += share
			if s.targetUncKm[ing] <= maxKm {
				num += share
			}
		}
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// MedianAbsErrorAt computes the Fig. 12b metric: the median absolute
// difference between estimated and true latency over probe-measurable
// tuples whose target uncertainty is at most maxKm (bucketed by the
// caller sweeping maxKm).
func (s *System) MedianAbsErrorAt(loKm, hiKm float64) (float64, error) {
	var errs []float64
	for _, u := range s.ugs.UGs {
		if !s.probes[u.ID] {
			continue
		}
		pc, err := s.world.PolicyCompliant(u.ASN)
		if err != nil {
			return 0, err
		}
		for ing := range pc {
			unc := s.targetUncKm[ing]
			if unc < loKm || unc > hiKm {
				continue
			}
			truth, err := s.world.LatencyMs(u.ASN, u.Metro, ing)
			if err != nil {
				return 0, err
			}
			// Bypass Covered() gating: we're asking what the error WOULD
			// be at this uncertainty bucket.
			ms, err2 := s.pingMs(u, ing, 7)
			if err2 != nil {
				continue
			}
			errMs := geo.KmToMinRTTMs(unc) * (s.rng.unit(8, uint64(u.ID), uint64(ing)) - 0.5)
			errs = append(errs, math.Abs(ms+errMs-truth))
		}
	}
	if len(errs) == 0 {
		return 0, nil
	}
	return stats.Median(errs)
}
