package topology

import (
	"testing"
)

// tinyGraph builds a small hand-crafted topology:
//
//	    1 ---peer--- 2        (tier-1)
//	   / \          / \
//	10    11     12    13     (tier-2, customers of tier-1s)
//	 |     \     /      |
//	100     101        102    (stubs; 101 multihomed to 11 and 12)
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	add := func(n ASN, tier Tier) {
		if err := g.AddAS(&AS{ASN: n, Tier: tier, Kind: KindTransit}); err != nil {
			t.Fatal(err)
		}
	}
	add(1, TierOne)
	add(2, TierOne)
	for _, n := range []ASN{10, 11, 12, 13} {
		add(n, TierTwo)
	}
	for _, n := range []ASN{100, 101, 102} {
		add(n, TierStub)
	}
	links := []struct {
		a, b ASN
		rel  Relationship
	}{
		{1, 2, RelPeer},
		{1, 10, RelCustomer}, {1, 11, RelCustomer},
		{2, 12, RelCustomer}, {2, 13, RelCustomer},
		{10, 100, RelCustomer},
		{11, 101, RelCustomer}, {12, 101, RelCustomer},
		{13, 102, RelCustomer},
	}
	for _, l := range links {
		if err := g.Link(l.a, l.b, l.rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinkSymmetry(t *testing.T) {
	g := tinyGraph(t)
	if g.Rel(1, 10) != RelCustomer {
		t.Errorf("Rel(1,10) = %v, want customer", g.Rel(1, 10))
	}
	if g.Rel(10, 1) != RelProvider {
		t.Errorf("Rel(10,1) = %v, want provider", g.Rel(10, 1))
	}
	if g.Rel(1, 2) != RelPeer || g.Rel(2, 1) != RelPeer {
		t.Error("peer link must be symmetric")
	}
	if g.Rel(1, 100) != RelNone {
		t.Error("non-adjacent ASes must have RelNone")
	}
}

func TestLinkErrors(t *testing.T) {
	g := tinyGraph(t)
	if err := g.Link(1, 1, RelPeer); err == nil {
		t.Error("self link should fail")
	}
	if err := g.Link(1, 2, RelPeer); err == nil {
		t.Error("duplicate link should fail")
	}
	if err := g.Link(1, 9999, RelPeer); err == nil {
		t.Error("link to unknown AS should fail")
	}
	if err := g.AddAS(&AS{ASN: 1}); err == nil {
		t.Error("duplicate AddAS should fail")
	}
	if err := g.AddAS(nil); err == nil {
		t.Error("nil AddAS should fail")
	}
}

func TestCustomerCone(t *testing.T) {
	g := tinyGraph(t)
	cone1 := g.CustomerCone(1)
	for _, n := range []ASN{1, 10, 11, 100, 101} {
		if !cone1[n] {
			t.Errorf("cone(1) missing %v", n)
		}
	}
	for _, n := range []ASN{2, 12, 13, 102} {
		if cone1[n] {
			t.Errorf("cone(1) wrongly contains %v (peers/their customers)", n)
		}
	}
	// Multihomed stub is in both tier-2 cones.
	if !g.CustomerCone(11)[101] || !g.CustomerCone(12)[101] {
		t.Error("multihomed stub 101 should be in cones of both providers")
	}
	if g.ConeSize(100) != 1 {
		t.Errorf("stub cone size = %d, want 1", g.ConeSize(100))
	}
	if len(g.CustomerCone(555)) != 0 {
		t.Error("cone of unknown AS should be empty")
	}
}

func TestInCone(t *testing.T) {
	g := tinyGraph(t)
	cases := []struct {
		root, member ASN
		want         bool
	}{
		{1, 101, true},
		{2, 101, true},
		{1, 102, false},
		{10, 100, true},
		{10, 101, false},
		{100, 100, true},
	}
	for _, c := range cases {
		if got := g.InCone(c.root, c.member); got != c.want {
			t.Errorf("InCone(%v,%v) = %v, want %v", c.root, c.member, got, c.want)
		}
	}
}

func TestInConeMatchesCustomerCone(t *testing.T) {
	g, err := Generate(GenConfig{Seed: 3, Tier1: 4, Tier2: 20, Stubs: 150,
		MeanStubProviders: 2, Tier2PeerProb: 0.3, EnterpriseFrac: 0.4, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	asns := g.ASNs()
	for _, root := range asns[:10] {
		cone := g.CustomerCone(root)
		for _, m := range asns {
			if got := g.InCone(root, m); got != cone[m] {
				t.Fatalf("InCone(%v,%v)=%v disagrees with CustomerCone=%v", root, m, got, cone[m])
			}
		}
	}
}

func TestValidateDetectsProviderCycle(t *testing.T) {
	g := NewGraph()
	for _, n := range []ASN{1, 2, 3} {
		if err := g.AddAS(&AS{ASN: n, Tier: TierTwo}); err != nil {
			t.Fatal(err)
		}
	}
	// 1 -> 2 -> 3 -> 1 provider cycle (each is customer of the next).
	if err := g.Link(2, 1, RelCustomer); err != nil { // 1 customer of 2
		t.Fatal(err)
	}
	if err := g.Link(3, 2, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if err := g.Link(1, 3, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate should detect provider cycle")
	}
}

func TestRelationshipInvert(t *testing.T) {
	if RelCustomer.Invert() != RelProvider || RelProvider.Invert() != RelCustomer {
		t.Error("customer/provider must invert to each other")
	}
	if RelPeer.Invert() != RelPeer || RelNone.Invert() != RelNone {
		t.Error("peer/none invert to themselves")
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := GenConfig{Seed: 7, Tier1: 5, Tier2: 30, Stubs: 300,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.3, EnterpriseFrac: 0.35, ContentFrac: 0.05}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Tier1 != 5 || st.Tier2 != 30 || st.Stubs != 300 {
		t.Errorf("tier counts = %d/%d/%d, want 5/30/300", st.Tier1, st.Tier2, st.Stubs)
	}
	// Tier-1 full mesh.
	for i := ASN(1); i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			if g.Rel(i, j) != RelPeer {
				t.Errorf("tier-1 %v and %v must peer", i, j)
			}
		}
	}
	// Every stub has at least one provider and presence somewhere.
	for _, n := range g.ASNs() {
		a := g.AS(n)
		if a.Tier == TierStub {
			if len(a.Providers) == 0 {
				t.Errorf("stub %v has no providers", n)
			}
			if len(a.Metros) == 0 {
				t.Errorf("stub %v has no metro presence", n)
			}
		}
		if a.Tier == TierTwo && len(a.Providers) == 0 {
			t.Errorf("tier-2 %v has no tier-1 provider", n)
		}
	}
	// Tier-1 cones should be large (they transit much of the graph).
	cone := g.ConeSize(1)
	if cone < 30 {
		t.Errorf("tier-1 cone size = %d, unexpectedly small", cone)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Stubs = 100
	cfg.Tier2 = 15
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, n := range a.ASNs() {
		aa, ba := a.AS(n), b.AS(n)
		if ba == nil {
			t.Fatalf("AS %v missing in second graph", n)
		}
		if len(aa.Providers) != len(ba.Providers) || len(aa.Peers) != len(ba.Peers) {
			t.Fatalf("AS %v adjacency differs between runs", n)
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []GenConfig{
		{Tier1: 1, Tier2: 5, Stubs: 5, MeanStubProviders: 2},
		{Tier1: 3, Tier2: 1, Stubs: 5, MeanStubProviders: 2},
		{Tier1: 3, Tier2: 5, Stubs: 0, MeanStubProviders: 2},
		{Tier1: 3, Tier2: 5, Stubs: 5, MeanStubProviders: 0.5},
		{Tier1: 3, Tier2: 5, Stubs: 5, MeanStubProviders: 2, EnterpriseFrac: 0.9, ContentFrac: 0.3},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestASPresence(t *testing.T) {
	a := AS{Metros: []string{"ams", "lon", "nyc"}}
	if !a.PresentIn("lon") || a.PresentIn("tyo") {
		t.Error("PresentIn wrong")
	}
}

func TestStats(t *testing.T) {
	g := tinyGraph(t)
	st := g.Stats()
	if st.ASes != 9 {
		t.Errorf("ASes = %d, want 9", st.ASes)
	}
	if st.CustomerLinks != 8 {
		t.Errorf("CustomerLinks = %d, want 8", st.CustomerLinks)
	}
	if st.PeerLinks != 1 {
		t.Errorf("PeerLinks = %d, want 1", st.PeerLinks)
	}
	if st.MaxConeSize != 5 {
		t.Errorf("MaxConeSize = %d, want 5", st.MaxConeSize)
	}
}
