package topology

import "sync"

// Index is a compact, read-only view of a Graph used by hot whole-graph
// algorithms (route propagation, reachability): every AS is assigned a
// dense int32 ID in ascending-ASN order, and the three relationship
// adjacency lists are stored as flat CSR arrays of dense IDs. An Index
// is built once per Graph (lazily, on first use) and shared by all
// callers; it is immutable and safe for concurrent use.
type Index struct {
	asns []ASN         // dense ID → ASN, ascending
	id   map[ASN]int32 // ASN → dense ID

	providers csr
	peers     csr
	customers csr
}

// csr is a compressed sparse row adjacency: row i's neighbors are
// dst[off[i]:off[i+1]].
type csr struct {
	off []int32
	dst []int32
}

func (c csr) row(i int32) []int32 { return c.dst[c.off[i]:c.off[i+1]] }

// Len returns the number of ASes in the index.
func (x *Index) Len() int { return len(x.asns) }

// ID returns the dense ID for an ASN.
func (x *Index) ID(n ASN) (int32, bool) {
	i, ok := x.id[n]
	return i, ok
}

// ASN returns the ASN for a dense ID.
func (x *Index) ASN(i int32) ASN { return x.asns[i] }

// Providers returns the dense IDs of i's providers. The slice is shared;
// callers must not modify it.
func (x *Index) Providers(i int32) []int32 { return x.providers.row(i) }

// Peers returns the dense IDs of i's peers (shared; read-only).
func (x *Index) Peers(i int32) []int32 { return x.peers.row(i) }

// Customers returns the dense IDs of i's customers (shared; read-only).
func (x *Index) Customers(i int32) []int32 { return x.customers.row(i) }

// indexState holds the Graph's lazily built Index. Mutating methods
// (AddAS, Link) reset it; Index() rebuilds on demand under a lock so
// concurrent readers of a finished graph never observe a partial build.
type indexState struct {
	mu  sync.Mutex
	idx *Index
	gen uint64 // bumped by mutators to invalidate a cached build
}

// Index returns the dense index for the graph, building it on first use.
// The graph must not be mutated concurrently with this call (Graph is
// immutable after construction in normal use).
func (g *Graph) Index() *Index {
	g.idxState.mu.Lock()
	defer g.idxState.mu.Unlock()
	if g.idxState.idx == nil {
		g.idxState.idx = buildIndex(g)
	}
	return g.idxState.idx
}

// invalidateIndex is called by Graph mutators.
func (g *Graph) invalidateIndex() {
	g.idxState.mu.Lock()
	g.idxState.idx = nil
	g.idxState.gen++
	g.idxState.mu.Unlock()
}

func buildIndex(g *Graph) *Index {
	asns := g.ASNs()
	n := len(asns)
	x := &Index{
		asns: asns,
		id:   make(map[ASN]int32, n),
	}
	for i, a := range asns {
		x.id[a] = int32(i)
	}
	fill := func(pick func(a *AS) []ASN) csr {
		off := make([]int32, n+1)
		total := 0
		for i, a := range asns {
			total += len(pick(g.AS(a)))
			off[i+1] = int32(total)
		}
		dst := make([]int32, total)
		pos := 0
		for _, a := range asns {
			for _, nb := range pick(g.AS(a)) {
				dst[pos] = x.id[nb]
				pos++
			}
		}
		return csr{off: off, dst: dst}
	}
	x.providers = fill(func(a *AS) []ASN { return a.Providers })
	x.peers = fill(func(a *AS) []ASN { return a.Peers })
	x.customers = fill(func(a *AS) []ASN { return a.Customers })
	return x
}
