package topology

import (
	"fmt"
	"sort"
)

// Graph is an AS-level topology. It is immutable after Build; all query
// methods are safe for concurrent use.
type Graph struct {
	ases map[ASN]*AS
	// rel[a] maps neighbor b to the relationship from a's point of view.
	rel map[ASN]map[ASN]Relationship

	sortedASNs []ASN

	// idxState caches the dense Index (see index.go).
	idxState indexState
}

// NewGraph creates an empty topology graph.
func NewGraph() *Graph {
	return &Graph{
		ases: make(map[ASN]*AS),
		rel:  make(map[ASN]map[ASN]Relationship),
	}
}

// AddAS inserts an AS. It returns an error on duplicate ASN.
func (g *Graph) AddAS(a *AS) error {
	if a == nil {
		return fmt.Errorf("topology: nil AS")
	}
	if _, ok := g.ases[a.ASN]; ok {
		return fmt.Errorf("topology: duplicate %v", a.ASN)
	}
	cp := *a
	sort.Strings(cp.Metros)
	g.ases[a.ASN] = &cp
	g.rel[a.ASN] = make(map[ASN]Relationship)
	g.sortedASNs = nil
	g.invalidateIndex()
	return nil
}

// Link connects two ASes with the relationship seen from a's side:
// rel == RelCustomer means b is a's customer; rel == RelPeer means they
// peer. Links are recorded symmetrically.
func (g *Graph) Link(a, b ASN, rel Relationship) error {
	if a == b {
		return fmt.Errorf("topology: self link on %v", a)
	}
	asA, okA := g.ases[a]
	asB, okB := g.ases[b]
	if !okA || !okB {
		return fmt.Errorf("topology: link %v-%v references unknown AS", a, b)
	}
	if rel != RelCustomer && rel != RelPeer && rel != RelProvider {
		return fmt.Errorf("topology: invalid relationship %v", rel)
	}
	if existing := g.rel[a][b]; existing != RelNone {
		return fmt.Errorf("topology: duplicate link %v-%v", a, b)
	}
	g.rel[a][b] = rel
	g.rel[b][a] = rel.Invert()
	switch rel {
	case RelCustomer:
		asA.Customers = append(asA.Customers, b)
		asB.Providers = append(asB.Providers, a)
	case RelProvider:
		asA.Providers = append(asA.Providers, b)
		asB.Customers = append(asB.Customers, a)
	case RelPeer:
		asA.Peers = append(asA.Peers, b)
		asB.Peers = append(asB.Peers, a)
	}
	g.invalidateIndex()
	return nil
}

// AS returns the AS with the given number, or nil if absent. The returned
// value must not be mutated.
func (g *Graph) AS(n ASN) *AS { return g.ases[n] }

// Has reports whether the ASN exists.
func (g *Graph) Has(n ASN) bool { _, ok := g.ases[n]; return ok }

// Len returns the number of ASes.
func (g *Graph) Len() int { return len(g.ases) }

// Rel returns the relationship from a to b (RelNone if not adjacent).
func (g *Graph) Rel(a, b ASN) Relationship {
	if m, ok := g.rel[a]; ok {
		return m[b]
	}
	return RelNone
}

// ASNs returns all ASNs in ascending order. The slice is cached; callers
// must not modify it.
func (g *Graph) ASNs() []ASN {
	if g.sortedASNs == nil {
		out := make([]ASN, 0, len(g.ases))
		for n := range g.ases {
			out = append(out, n)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		g.sortedASNs = out
	}
	return g.sortedASNs
}

// ASesOfKind returns all ASes of the given kind, sorted by ASN.
func (g *Graph) ASesOfKind(k Kind) []*AS {
	var out []*AS
	for _, n := range g.ASNs() {
		if a := g.ases[n]; a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// CustomerCone returns the set of ASNs in the customer cone of root: root
// itself plus every AS reachable by repeatedly following provider→customer
// links (Luckie et al.). By definition an AS carries traffic from its
// customer cone to any destination, which is what makes cone membership a
// proof of policy compliance (§3.1).
func (g *Graph) CustomerCone(root ASN) map[ASN]bool {
	cone := make(map[ASN]bool)
	if !g.Has(root) {
		return cone
	}
	stack := []ASN{root}
	cone[root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.ases[n].Customers {
			if !cone[c] {
				cone[c] = true
				stack = append(stack, c)
			}
		}
	}
	return cone
}

// ConeSize returns |CustomerCone(root)|.
func (g *Graph) ConeSize(root ASN) int { return len(g.CustomerCone(root)) }

// InCone reports whether member is in the customer cone of root.
func (g *Graph) InCone(root, member ASN) bool {
	if root == member {
		return g.Has(root)
	}
	// BFS from member upward through providers; cheaper than materializing
	// the (potentially huge) downward cone of a tier-1.
	seen := map[ASN]bool{member: true}
	queue := []ASN{member}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		as := g.ases[n]
		if as == nil {
			continue
		}
		for _, p := range as.Providers {
			if p == root {
				return true
			}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return false
}

// Validate checks structural invariants: symmetric relationships, no
// provider loops (the customer→provider digraph must be acyclic), and
// tier-1 ASes having no providers.
func (g *Graph) Validate() error {
	for a, m := range g.rel {
		for b, r := range m {
			if got := g.rel[b][a]; got != r.Invert() {
				return fmt.Errorf("topology: asymmetric link %v-%v: %v vs %v", a, b, r, got)
			}
		}
	}
	for _, n := range g.ASNs() {
		a := g.ases[n]
		if a.Tier == TierOne && len(a.Providers) > 0 {
			return fmt.Errorf("topology: tier-1 %v has providers", n)
		}
	}
	// Cycle detection on customer→provider edges via DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ASN]int, len(g.ases))
	var visit func(n ASN) error
	visit = func(n ASN) error {
		color[n] = gray
		for _, p := range g.ases[n].Providers {
			switch color[p] {
			case gray:
				return fmt.Errorf("topology: provider cycle through %v and %v", n, p)
			case white:
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.ASNs() {
		if color[n] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats summarizes the topology.
type Stats struct {
	ASes, Links                int
	Tier1, Tier2, Stubs        int
	CustomerLinks, PeerLinks   int
	MaxConeSize, MeanStubProvs int
}

// Stats computes summary statistics for the graph.
func (g *Graph) Stats() Stats {
	var s Stats
	s.ASes = len(g.ases)
	provSum, stubs := 0, 0
	for _, n := range g.ASNs() {
		a := g.ases[n]
		switch a.Tier {
		case TierOne:
			s.Tier1++
		case TierTwo:
			s.Tier2++
		default:
			s.Stubs++
			provSum += len(a.Providers)
			stubs++
		}
		s.CustomerLinks += len(a.Customers)
		s.PeerLinks += len(a.Peers)
		if c := g.ConeSize(n); c > s.MaxConeSize {
			s.MaxConeSize = c
		}
	}
	s.PeerLinks /= 2 // counted from both sides
	s.Links = s.CustomerLinks + s.PeerLinks
	if stubs > 0 {
		s.MeanStubProvs = provSum / stubs
	}
	return s
}
