package topology

import (
	"testing"
)

func TestInferRecoversSimpleHierarchy(t *testing.T) {
	// Paths through a clear hierarchy: stubs -> tier2 -> tier1 -> tier2 -> stubs.
	// Degrees: 1 is the hub.
	paths := [][]ASN{
		{100, 10, 1, 11, 101},
		{100, 10, 1, 12, 102},
		{101, 11, 1, 10, 100},
		{102, 12, 1, 11, 101},
		{100, 10, 1, 12, 102},
		{101, 11, 1, 12, 102},
	}
	rels := InferRelationships(paths)
	rm := make(map[[2]ASN]Relationship)
	for _, r := range rels {
		rm[[2]ASN{r.A, r.B}] = r.Rel
	}
	// 1 is the provider of 10, 11, 12 (link stored lo=1).
	for _, c := range []ASN{10, 11, 12} {
		if got := rm[[2]ASN{1, c}]; got != RelCustomer {
			t.Errorf("rel(1,%v) = %v, want customer (1 is provider)", c, got)
		}
	}
	// Stubs are customers of their tier-2s (lo=tier2).
	if got := rm[[2]ASN{10, 100}]; got != RelCustomer {
		t.Errorf("rel(10,100) = %v, want customer", got)
	}
}

func TestInferHandlesPrepending(t *testing.T) {
	paths := [][]ASN{
		{100, 100, 100, 10, 1, 11, 101},
		{101, 11, 1, 1, 10, 100},
	}
	rels := InferRelationships(paths)
	if len(rels) == 0 {
		t.Fatal("no relationships inferred")
	}
	for _, r := range rels {
		if r.A == r.B {
			t.Errorf("self relationship %v inferred from prepending", r.A)
		}
	}
}

func TestInferOnGeneratedTopology(t *testing.T) {
	g, err := Generate(GenConfig{Seed: 11, Tier1: 4, Tier2: 25, Stubs: 200,
		MeanStubProviders: 2.2, Tier2PeerProb: 0.3, EnterpriseFrac: 0.4, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Generate valley-free paths: stub -> provider chain up -> (peer) -> down.
	var paths [][]ASN
	for _, n := range g.ASNs() {
		a := g.AS(n)
		if a.Tier != TierStub {
			continue
		}
		for _, p := range a.Providers {
			pAS := g.AS(p)
			for _, pp := range pAS.Providers {
				// Path up: stub -> t2 -> t1, and reverse down into other branches.
				for _, c := range g.AS(pp).Customers {
					if c == p {
						continue
					}
					for _, cc := range g.AS(c).Customers {
						paths = append(paths, []ASN{n, p, pp, c, cc})
						if len(paths) > 4000 {
							break
						}
					}
				}
			}
		}
	}
	if len(paths) < 100 {
		t.Fatalf("too few synthetic paths: %d", len(paths))
	}
	rels := InferRelationships(paths)
	acc := InferAccuracy(g, rels)
	if acc < 0.85 {
		t.Errorf("inference accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestBuildFromInferred(t *testing.T) {
	rels := []InferredRel{
		{A: 1, B: 10, Rel: RelCustomer},
		{A: 1, B: 11, Rel: RelCustomer},
		{A: 10, B: 100, Rel: RelCustomer},
		{A: 10, B: 11, Rel: RelPeer},
	}
	g, err := BuildFromInferred(rels)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if g.AS(1).Tier != TierOne {
		t.Errorf("AS1 tier = %v, want tier-1 (no providers, has customers)", g.AS(1).Tier)
	}
	if g.AS(10).Tier != TierTwo {
		t.Errorf("AS10 tier = %v, want tier-2", g.AS(10).Tier)
	}
	if g.AS(100).Tier != TierStub {
		t.Errorf("AS100 tier = %v, want stub", g.AS(100).Tier)
	}
	if !g.CustomerCone(1)[100] {
		t.Error("cone(1) should include 100 via inferred links")
	}
}

func TestInferAccuracyIgnoresUnknownLinks(t *testing.T) {
	g := tinyGraph(t)
	rels := []InferredRel{
		{A: 1, B: 10, Rel: RelCustomer},    // correct
		{A: 1, B: 2, Rel: RelPeer},         // correct
		{A: 10, B: 11, Rel: RelPeer},       // link not in truth: ignored
		{A: 2, B: 12, Rel: RelPeer},        // wrong (truth: customer)
		{A: 500, B: 501, Rel: RelProvider}, // unknown ASes: ignored
	}
	acc := InferAccuracy(g, rels)
	want := 2.0 / 3.0
	if acc < want-1e-9 || acc > want+1e-9 {
		t.Errorf("accuracy = %v, want %v", acc, want)
	}
}
