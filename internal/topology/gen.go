package topology

import (
	"fmt"
	"math/rand"

	"painter/internal/geo"
	"painter/internal/stats"
)

// GenConfig parameterizes the synthetic Internet generator.
type GenConfig struct {
	Seed int64

	// Tier1 is the number of transit-free backbone ASes (global presence,
	// full peering mesh). Real Internet: ~15-20.
	Tier1 int
	// Tier2 is the number of regional/national transit providers.
	Tier2 int
	// Stubs is the number of edge ASes (enterprises, eyeballs, content).
	Stubs int

	// MeanStubProviders is the average multihoming degree of stub ASes.
	// The paper notes most networks have 2-3 ISPs (§5.2.4).
	MeanStubProviders float64
	// Tier2PeerProb is the probability two same-region tier-2s peer.
	Tier2PeerProb float64
	// EnterpriseFrac / ContentFrac split stubs by kind; the remainder are
	// eyeball networks.
	EnterpriseFrac float64
	ContentFrac    float64
}

// DefaultGenConfig returns a config producing a mid-size Internet:
// large enough that policy diversity matters, small enough for fast
// experiments.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:              1,
		Tier1:             12,
		Tier2:             120,
		Stubs:             2000,
		MeanStubProviders: 2.4,
		Tier2PeerProb:     0.35,
		EnterpriseFrac:    0.35,
		ContentFrac:       0.05,
	}
}

// Validate checks the config for obviously unusable values.
func (c GenConfig) Validate() error {
	if c.Tier1 < 2 {
		return fmt.Errorf("topology: need >=2 tier-1 ASes, got %d", c.Tier1)
	}
	if c.Tier2 < 2 {
		return fmt.Errorf("topology: need >=2 tier-2 ASes, got %d", c.Tier2)
	}
	if c.Stubs < 1 {
		return fmt.Errorf("topology: need >=1 stub, got %d", c.Stubs)
	}
	if c.MeanStubProviders < 1 {
		return fmt.Errorf("topology: MeanStubProviders %v < 1", c.MeanStubProviders)
	}
	if c.EnterpriseFrac < 0 || c.ContentFrac < 0 || c.EnterpriseFrac+c.ContentFrac > 1 {
		return fmt.Errorf("topology: bad stub kind fractions")
	}
	return nil
}

// Generate builds a synthetic AS graph:
//
//   - Tier-1 ASes form a full peering mesh and are present in most metros.
//   - Tier-2 ASes pick a home region, cover several of its metros, buy
//     transit from 1–3 tier-1s, and peer with some same-region tier-2s
//     plus occasional cross-region peers (modeling IXPs and PNIs).
//   - Stub ASes live in one metro (eyeballs/enterprises) or several
//     (content) and multihome to tier-2s/tier-1s present in their metro.
//
// ASNs are assigned deterministically: tier-1s from 1, tier-2s from 1000,
// stubs from 10000.
func Generate(cfg GenConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()
	metros := geo.Metros()
	regions := geo.Regions()

	// --- Tier-1: global backbones.
	t1 := make([]ASN, cfg.Tier1)
	for i := range t1 {
		t1[i] = ASN(1 + i)
		// Present in a large random subset of metros (60-90%).
		var pres []string
		for _, m := range metros {
			if rng.Float64() < 0.6+0.3*rng.Float64() {
				pres = append(pres, m.Code)
			}
		}
		if len(pres) == 0 {
			pres = []string{metros[0].Code}
		}
		if err := g.AddAS(&AS{ASN: t1[i], Tier: TierOne, Kind: KindTransit, Metros: pres}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			if err := g.Link(t1[i], t1[j], RelPeer); err != nil {
				return nil, err
			}
		}
	}

	// --- Tier-2: regional transit.
	t2 := make([]ASN, cfg.Tier2)
	t2Region := make([]geo.Region, cfg.Tier2)
	t2ByRegion := make(map[geo.Region][]int)
	for i := range t2 {
		t2[i] = ASN(1000 + i)
		region := regions[rng.Intn(len(regions))]
		t2Region[i] = region
		t2ByRegion[region] = append(t2ByRegion[region], i)
		rm := geo.MetrosInRegion(region)
		// Cover 40-100% of the region's metros plus a couple of remote
		// metros (long-haul presence).
		var pres []string
		for _, m := range rm {
			if rng.Float64() < 0.4+0.6*rng.Float64() {
				pres = append(pres, m.Code)
			}
		}
		if len(pres) == 0 {
			pres = []string{rm[rng.Intn(len(rm))].Code}
		}
		for k := 0; k < 2; k++ {
			if rng.Float64() < 0.3 {
				pres = append(pres, metros[rng.Intn(len(metros))].Code)
			}
		}
		pres = dedupe(pres)
		if err := g.AddAS(&AS{ASN: t2[i], Tier: TierTwo, Kind: KindTransit, Metros: pres}); err != nil {
			return nil, err
		}
		// 1-3 tier-1 providers (clamped to however many exist).
		nProv := 1 + rng.Intn(3)
		if nProv > len(t1) {
			nProv = len(t1)
		}
		for _, pi := range rng.Perm(len(t1))[:nProv] {
			if err := g.Link(t1[pi], t2[i], RelCustomer); err != nil {
				return nil, err
			}
		}
	}
	// Tier-2 peering: same-region with probability Tier2PeerProb,
	// cross-region with 1/10th of that.
	for i := 0; i < len(t2); i++ {
		for j := i + 1; j < len(t2); j++ {
			p := cfg.Tier2PeerProb / 10
			if t2Region[i] == t2Region[j] {
				p = cfg.Tier2PeerProb
			}
			if rng.Float64() < p {
				if err := g.Link(t2[i], t2[j], RelPeer); err != nil {
					return nil, err
				}
			}
		}
	}

	// --- Stubs.
	metroWeights := make([]float64, len(metros))
	for i, m := range metros {
		metroWeights[i] = m.Weight
	}
	nextASN := ASN(10000)
	for s := 0; s < cfg.Stubs; s++ {
		mi, err := stats.SampleWeighted(rng, metroWeights)
		if err != nil {
			return nil, err
		}
		home := metros[mi]
		kind := KindEyeball
		r := rng.Float64()
		switch {
		case r < cfg.EnterpriseFrac:
			kind = KindEnterprise
		case r < cfg.EnterpriseFrac+cfg.ContentFrac:
			kind = KindContent
		}
		pres := []string{home.Code}
		if kind == KindContent {
			// Content networks deploy in several metros.
			for k := 0; k < 3; k++ {
				pres = append(pres, metros[rng.Intn(len(metros))].Code)
			}
			pres = dedupe(pres)
		}
		asn := nextASN
		nextASN++
		if err := g.AddAS(&AS{ASN: asn, Tier: TierStub, Kind: kind, Metros: pres}); err != nil {
			return nil, err
		}

		// Providers: prefer tier-2s present in the home metro; fall back
		// to same-region tier-2s, then any tier-1.
		var candidates []ASN
		for i2, n := range t2 {
			if g.AS(n).PresentIn(home.Code) {
				candidates = append(candidates, n)
				_ = i2
			}
		}
		if len(candidates) == 0 {
			for _, i2 := range t2ByRegion[home.Region] {
				candidates = append(candidates, t2[i2])
			}
		}
		if len(candidates) == 0 {
			candidates = append(candidates, t1...)
		}
		nProv := providersFor(rng, cfg.MeanStubProviders)
		if nProv > len(candidates) {
			nProv = len(candidates)
		}
		for _, ci := range rng.Perm(len(candidates))[:nProv] {
			if err := g.Link(candidates[ci], asn, RelCustomer); err != nil {
				return nil, err
			}
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generated graph invalid: %w", err)
	}
	return g, nil
}

// providersFor draws a multihoming degree with the requested mean:
// floor(mean) plus a Bernoulli for the fractional part, minimum 1.
func providersFor(rng *rand.Rand, mean float64) int {
	base := int(mean)
	frac := mean - float64(base)
	n := base
	if rng.Float64() < frac {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

func dedupe(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
