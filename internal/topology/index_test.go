package topology

import "testing"

func indexGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, n := range []ASN{5, 1, 9, 3} {
		if err := g.AddAS(&AS{ASN: n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Link(1, 3, RelCustomer); err != nil { // 3 is 1's customer
		t.Fatal(err)
	}
	if err := g.Link(3, 5, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if err := g.Link(1, 9, RelPeer); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIndexDenseIDsAscendWithASN(t *testing.T) {
	g := indexGraph(t)
	x := g.Index()
	if x.Len() != 4 {
		t.Fatalf("Len = %d, want 4", x.Len())
	}
	prev := ASN(0)
	for i := int32(0); i < int32(x.Len()); i++ {
		n := x.ASN(i)
		if n <= prev && i > 0 {
			t.Fatalf("dense ids not ascending by ASN: id %d is %v after %v", i, n, prev)
		}
		prev = n
		back, ok := x.ID(n)
		if !ok || back != i {
			t.Fatalf("ID(ASN(%d)) = %d,%v", i, back, ok)
		}
	}
}

func TestIndexAdjacencyMatchesGraph(t *testing.T) {
	g := indexGraph(t)
	x := g.Index()
	for _, n := range g.ASNs() {
		i, _ := x.ID(n)
		a := g.AS(n)
		check := func(kind string, want []ASN, got []int32) {
			if len(want) != len(got) {
				t.Fatalf("AS %v %s: %d entries, want %d", n, kind, len(got), len(want))
			}
			for k, d := range got {
				if x.ASN(d) != want[k] {
					t.Fatalf("AS %v %s[%d] = %v, want %v", n, kind, k, x.ASN(d), want[k])
				}
			}
		}
		check("providers", a.Providers, x.Providers(i))
		check("peers", a.Peers, x.Peers(i))
		check("customers", a.Customers, x.Customers(i))
	}
}

func TestIndexSharedAndInvalidatedByMutation(t *testing.T) {
	g := indexGraph(t)
	a := g.Index()
	if b := g.Index(); a != b {
		t.Fatal("Index not shared between calls on an unmodified graph")
	}
	if err := g.AddAS(&AS{ASN: 42}); err != nil {
		t.Fatal(err)
	}
	c := g.Index()
	if c == a {
		t.Fatal("Index not invalidated by AddAS")
	}
	if c.Len() != 5 {
		t.Fatalf("rebuilt index Len = %d, want 5", c.Len())
	}
	if err := g.Link(42, 9, RelPeer); err != nil {
		t.Fatal(err)
	}
	d := g.Index()
	if d == c {
		t.Fatal("Index not invalidated by Link")
	}
	i42, _ := d.ID(42)
	if len(d.Peers(i42)) != 1 {
		t.Fatalf("new link missing from rebuilt index")
	}
}
