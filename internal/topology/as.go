// Package topology models the AS-level Internet: autonomous systems,
// business relationships between them (customer–provider and settlement-
// free peering), customer cones, and a synthetic Internet generator that
// produces graphs with realistic tiered structure and geography.
//
// The Advertisement Orchestrator (internal/core) consumes this model in
// two ways, mirroring §3.1 of the paper: policy-compliant ingress sets
// are derived from BGP reachability and customer cones, and the routing
// simulator (internal/netsim) resolves which ingress a user group
// actually selects under a given advertisement configuration.
package topology

import (
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Relationship describes the business relationship from one AS to a
// neighbor, following the Gao–Rexford model.
type Relationship int8

const (
	// RelNone means the two ASes are not adjacent.
	RelNone Relationship = iota
	// RelProvider: the neighbor is my provider (I am its customer).
	RelProvider
	// RelCustomer: the neighbor is my customer (I am its provider).
	RelCustomer
	// RelPeer: settlement-free peering.
	RelPeer
)

func (r Relationship) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	default:
		return "none"
	}
}

// Invert returns the relationship as seen from the other side of the link.
func (r Relationship) Invert() Relationship {
	switch r {
	case RelProvider:
		return RelCustomer
	case RelCustomer:
		return RelProvider
	default:
		return r
	}
}

// Tier is the coarse position of an AS in the Internet hierarchy.
type Tier int8

const (
	// TierOne ASes are transit-free: they reach everyone via customers
	// and peers only.
	TierOne Tier = 1
	// TierTwo ASes are regional/national transit providers.
	TierTwo Tier = 2
	// TierStub ASes originate or sink traffic: enterprises, eyeball
	// networks, content networks.
	TierStub Tier = 3
)

// Kind classifies what a stub AS is used for. Transit ASes are KindTransit.
type Kind int8

const (
	KindTransit Kind = iota
	KindEnterprise
	KindEyeball
	KindContent
)

func (k Kind) String() string {
	switch k {
	case KindTransit:
		return "transit"
	case KindEnterprise:
		return "enterprise"
	case KindEyeball:
		return "eyeball"
	case KindContent:
		return "content"
	default:
		return "unknown"
	}
}

// AS is one autonomous system.
type AS struct {
	ASN    ASN
	Tier   Tier
	Kind   Kind
	Metros []string // metro codes where this AS has presence (sorted)

	// Adjacency, partitioned by relationship from this AS's view.
	Providers []ASN
	Customers []ASN
	Peers     []ASN
}

// Neighbors returns all adjacent ASNs (providers, customers, peers).
func (a *AS) Neighbors() []ASN {
	out := make([]ASN, 0, len(a.Providers)+len(a.Customers)+len(a.Peers))
	out = append(out, a.Providers...)
	out = append(out, a.Customers...)
	out = append(out, a.Peers...)
	return out
}

// Degree returns the total number of neighbors.
func (a *AS) Degree() int { return len(a.Providers) + len(a.Customers) + len(a.Peers) }

// PresentIn reports whether the AS has presence in the given metro.
func (a *AS) PresentIn(metro string) bool {
	i := sort.SearchStrings(a.Metros, metro)
	return i < len(a.Metros) && a.Metros[i] == metro
}
