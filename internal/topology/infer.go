package topology

import (
	"fmt"
	"sort"
)

// InferredRel is one inferred relationship between a pair of ASes.
type InferredRel struct {
	A, B ASN // A's view of B
	Rel  Relationship
}

// InferRelationships infers AS relationships from a corpus of observed
// AS paths (each path ordered origin→...→collector, i.e. the order BGP
// AS_PATH attributes list after reversal). It implements the classic
// degree-based algorithm in the spirit of Gao (2001) / ProbLink: the
// highest-degree AS on each path is assumed to be the "top of the hill";
// links walking up to it are customer→provider and links walking down
// are provider→customer. Links that are voted inconsistently across
// paths, or that connect two near-equal-degree ASes at a path top, are
// classified as peering.
//
// The Advertisement Orchestrator uses inferred relationships to derive
// customer cones and hence policy-compliant ingresses when ground-truth
// relationship data is unavailable (§3.1: "derive customer cones of each
// peer using ProbLink AS relationships").
func InferRelationships(paths [][]ASN) []InferredRel {
	// Degree estimation from the corpus itself.
	degree := make(map[ASN]int)
	adj := make(map[ASN]map[ASN]bool)
	note := func(a, b ASN) {
		if adj[a] == nil {
			adj[a] = make(map[ASN]bool)
		}
		if !adj[a][b] {
			adj[a][b] = true
			degree[a]++
		}
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] { // prepending
				continue
			}
			note(p[i], p[i+1])
			note(p[i+1], p[i])
		}
	}

	type key struct{ lo, hi ASN }
	// votes[k] counts, for the ordered pair (lo,hi), how often lo appeared
	// as the customer (upVotes) vs as the provider (downVotes).
	type tally struct{ loIsCustomer, hiIsCustomer, top int }
	votes := make(map[key]*tally)
	getTally := func(a, b ASN) (*tally, bool) {
		k := key{a, b}
		flipped := false
		if b < a {
			k = key{b, a}
			flipped = true
		}
		t := votes[k]
		if t == nil {
			t = &tally{}
			votes[k] = t
		}
		return t, flipped
	}

	for _, p := range paths {
		// Compress prepending.
		q := p[:0:0]
		for _, n := range p {
			if len(q) == 0 || q[len(q)-1] != n {
				q = append(q, n)
			}
		}
		if len(q) < 2 {
			continue
		}
		// Find index of the max-degree AS.
		topIdx := 0
		for i, n := range q {
			if degree[n] > degree[q[topIdx]] {
				topIdx = i
			}
		}
		// Before top: ascending customer->provider. After: descending.
		for i := 0; i+1 < len(q); i++ {
			a, b := q[i], q[i+1]
			t, flipped := getTally(a, b)
			switch {
			case i+1 <= topIdx:
				// a is customer of b.
				if flipped {
					t.hiIsCustomer++
				} else {
					t.loIsCustomer++
				}
			default:
				// b is customer of a.
				if flipped {
					t.loIsCustomer++
				} else {
					t.hiIsCustomer++
				}
			}
			if i == topIdx-1 && i+1 == topIdx && topIdx+1 < len(q) {
				// The link crossing the very top between two high-degree
				// ASes is a peering candidate.
				if similarDegree(degree[a], degree[b]) {
					t.top++
				}
			}
		}
	}

	out := make([]InferredRel, 0, len(votes))
	for k, t := range votes {
		var rel Relationship
		switch {
		case t.top > 0 && disagree(t.loIsCustomer, t.hiIsCustomer):
			rel = RelPeer
		case t.loIsCustomer > t.hiIsCustomer:
			// lo is customer => from lo's view, hi is its provider.
			rel = RelProvider
		case t.hiIsCustomer > t.loIsCustomer:
			rel = RelCustomer
		default:
			rel = RelPeer
		}
		out = append(out, InferredRel{A: k.lo, B: k.hi, Rel: rel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// similarDegree reports whether two degree counts are within a factor of
// two of each other, the heuristic for peer candidates.
func similarDegree(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	return b <= 2*a
}

// disagree reports whether both directions received votes, meaning paths
// were seen traversing the link in both business directions — the classic
// signature of a peering link near path tops.
func disagree(up, down int) bool { return up > 0 && down > 0 }

// BuildFromInferred constructs a Graph from inferred relationships. ASes
// absent from the metro database are created with no presence info; the
// caller may decorate them later. Tiers are assigned by provider count:
// no providers → tier-1, providers with customers → tier-2, else stub.
func BuildFromInferred(rels []InferredRel) (*Graph, error) {
	g := NewGraph()
	seen := make(map[ASN]bool)
	add := func(n ASN) {
		if !seen[n] {
			seen[n] = true
			_ = g.AddAS(&AS{ASN: n, Tier: TierStub, Kind: KindTransit})
		}
	}
	for _, r := range rels {
		add(r.A)
		add(r.B)
		if err := g.Link(r.A, r.B, r.Rel); err != nil {
			return nil, fmt.Errorf("topology: inferred link: %w", err)
		}
	}
	for _, n := range g.ASNs() {
		a := g.ases[n]
		switch {
		case len(a.Providers) == 0 && len(a.Customers) > 0:
			a.Tier = TierOne
		case len(a.Customers) > 0:
			a.Tier = TierTwo
		default:
			a.Tier = TierStub
		}
	}
	return g, nil
}

// InferAccuracy compares inferred relationships against ground truth and
// returns the fraction of inferred links whose relationship matches.
// Links absent from the truth graph are ignored.
func InferAccuracy(truth *Graph, rels []InferredRel) float64 {
	total, correct := 0, 0
	for _, r := range rels {
		want := truth.Rel(r.A, r.B)
		if want == RelNone {
			continue
		}
		total++
		if want == r.Rel {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
