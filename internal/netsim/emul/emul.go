// Package emul provides the packet-level substrate for the Traffic
// Manager prototype: UDP relays that impose configurable one-way delay,
// loss, and failure on real datagrams over loopback. The Fig. 10
// failover experiment runs TM-Edge and TM-PoPs over these links so the
// probe/failover state machine is exercised with real sockets and real
// time, only the wide-area latency being synthetic.
package emul

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Link is a bidirectional UDP relay with injected latency.
//
// Clients send datagrams to Addr(); the link forwards them to the target
// after half the configured RTT, and relays the target's replies back to
// the originating client with the same delay. Each client address gets
// its own upstream socket so the target sees distinct peers.
type Link struct {
	target *net.UDPAddr
	front  *net.UDPConn

	delayNanos atomic.Int64 // one-way delay
	down       atomic.Bool
	lossPct    atomic.Int64 // 0..100
	filter     atomic.Pointer[func(pkt []byte) bool]

	mu    sync.Mutex
	paths map[string]*net.UDPConn // client addr -> upstream socket
	wg    sync.WaitGroup
	done  chan struct{}
	rng   *rand.Rand
	rngMu sync.Mutex
}

// NewLink starts a relay toward target with the given one-way delay.
func NewLink(target string, oneWayDelay time.Duration, seed int64) (*Link, error) {
	ta, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, fmt.Errorf("emul: resolve target: %w", err)
	}
	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("emul: listen: %w", err)
	}
	_ = front.SetReadBuffer(1 << 20)
	_ = front.SetWriteBuffer(1 << 20)
	l := &Link{
		target: ta,
		front:  front,
		paths:  make(map[string]*net.UDPConn),
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
	l.delayNanos.Store(int64(oneWayDelay))
	l.wg.Add(1)
	go l.frontLoop()
	return l, nil
}

// Addr returns the address clients should send to.
func (l *Link) Addr() string { return l.front.LocalAddr().String() }

// SetDelay changes the one-way delay.
func (l *Link) SetDelay(d time.Duration) { l.delayNanos.Store(int64(d)) }

// Delay returns the current one-way delay.
func (l *Link) Delay() time.Duration { return time.Duration(l.delayNanos.Load()) }

// SetDown drops all traffic when true (models prefix withdrawal / PoP
// failure).
func (l *Link) SetDown(down bool) { l.down.Store(down) }

// SetLossPct sets random loss percentage (0-100) in each direction.
func (l *Link) SetLossPct(pct int) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	l.lossPct.Store(int64(pct))
}

// SetFilter installs a client→target forwarding predicate: datagrams
// for which f returns false are dropped silently at the link front,
// before any delay or relay work is scheduled. A nil f forwards
// everything. Experiments use this to suppress one traffic class (for
// example bulk data while keeping probes alive) without modeling it as
// loss, which would also hit the class being measured.
func (l *Link) SetFilter(f func(pkt []byte) bool) {
	if f == nil {
		l.filter.Store(nil)
		return
	}
	l.filter.Store(&f)
}

// Rebind drops every upstream socket, modeling a NAT device expiring or
// rebuilding its port mappings (reboot, conntrack flush, carrier-grade
// NAT churn). The next datagram from each client is forwarded through a
// freshly bound socket, so the target sees the same inner flows arrive
// from brand-new outer source ports. Packets already in flight on the
// old sockets are lost, as they would be through a real NAT reset.
// Returns the number of mappings dropped.
func (l *Link) Rebind() int {
	l.mu.Lock()
	n := len(l.paths)
	for k, c := range l.paths {
		_ = c.Close()
		delete(l.paths, k)
	}
	l.mu.Unlock()
	return n
}

// Close stops the relay.
func (l *Link) Close() error {
	select {
	case <-l.done:
		return nil
	default:
	}
	close(l.done)
	err := l.front.Close()
	l.mu.Lock()
	for _, c := range l.paths {
		_ = c.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

func (l *Link) drop() bool {
	if l.down.Load() {
		return true
	}
	pct := l.lossPct.Load()
	if pct <= 0 {
		return false
	}
	l.rngMu.Lock()
	defer l.rngMu.Unlock()
	return l.rng.Int63n(100) < pct
}

func (l *Link) frontLoop() {
	defer l.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, client, err := l.front.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if l.drop() {
			continue
		}
		if f := l.filter.Load(); f != nil && !(*f)(buf[:n]) {
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		up, err := l.upstreamFor(client)
		if err != nil {
			continue
		}
		delay := l.Delay()
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			select {
			case <-time.After(delay):
			case <-l.done:
				return
			}
			_, _ = up.Write(pkt)
		}()
	}
}

// upstreamFor returns (creating if needed) the upstream socket bound to
// one client, with its return-path loop.
func (l *Link) upstreamFor(client *net.UDPAddr) (*net.UDPConn, error) {
	key := client.String()
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok := l.paths[key]; ok {
		return c, nil
	}
	up, err := net.DialUDP("udp", nil, l.target)
	if err != nil {
		return nil, err
	}
	_ = up.SetReadBuffer(1 << 20)
	_ = up.SetWriteBuffer(1 << 20)
	l.paths[key] = up
	clientCopy := *client
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		buf := make([]byte, 64*1024)
		for {
			n, err := up.Read(buf)
			if err != nil {
				return
			}
			if l.drop() {
				continue
			}
			pkt := append([]byte(nil), buf[:n]...)
			delay := l.Delay()
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				select {
				case <-time.After(delay):
				case <-l.done:
					return
				}
				_, _ = l.front.WriteToUDP(pkt, &clientCopy)
			}()
		}
	}()
	return up, nil
}
