package emul

import (
	"net"
	"testing"
	"time"
)

// udpEcho starts a UDP echo server, returning its address.
func udpEcho(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 65536)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			_, _ = conn.WriteToUDP(buf[:n], from)
		}
	}()
	return conn.LocalAddr().String()
}

func dial(t *testing.T, addr string) *net.UDPConn {
	t.Helper()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// rtt sends one datagram through the link and measures the echo time.
func rtt(t *testing.T, c *net.UDPConn, timeout time.Duration) (time.Duration, bool) {
	t.Helper()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 64)
	if _, err := c.Read(buf); err != nil {
		return 0, false
	}
	return time.Since(start), true
}

func TestLinkImposesDelay(t *testing.T) {
	echo := udpEcho(t)
	link, err := NewLink(echo, 20*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	c := dial(t, link.Addr())

	d, ok := rtt(t, c, time.Second)
	if !ok {
		t.Fatal("no echo through link")
	}
	// One-way 20ms each direction → RTT ≥ 40ms.
	if d < 40*time.Millisecond {
		t.Errorf("RTT %v below imposed 40ms", d)
	}
	if d > 200*time.Millisecond {
		t.Errorf("RTT %v implausibly high", d)
	}
}

func TestLinkSetDelayTakesEffect(t *testing.T) {
	echo := udpEcho(t)
	link, err := NewLink(echo, time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	c := dial(t, link.Addr())
	fast, ok := rtt(t, c, time.Second)
	if !ok {
		t.Fatal("no echo")
	}
	link.SetDelay(30 * time.Millisecond)
	slow, ok := rtt(t, c, time.Second)
	if !ok {
		t.Fatal("no echo after SetDelay")
	}
	if slow < fast+40*time.Millisecond {
		t.Errorf("delay change not applied: fast=%v slow=%v", fast, slow)
	}
}

func TestLinkDownDropsAndRecovers(t *testing.T) {
	echo := udpEcho(t)
	link, err := NewLink(echo, time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	c := dial(t, link.Addr())
	if _, ok := rtt(t, c, time.Second); !ok {
		t.Fatal("link should pass traffic initially")
	}
	link.SetDown(true)
	if _, ok := rtt(t, c, 100*time.Millisecond); ok {
		t.Error("down link passed traffic")
	}
	link.SetDown(false)
	if _, ok := rtt(t, c, time.Second); !ok {
		t.Error("link did not recover")
	}
}

func TestLinkLoss(t *testing.T) {
	echo := udpEcho(t)
	link, err := NewLink(echo, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	link.SetLossPct(50)
	c := dial(t, link.Addr())
	got := 0
	const sends = 100
	for i := 0; i < sends; i++ {
		if _, ok := rtt(t, c, 50*time.Millisecond); ok {
			got++
		}
	}
	// 50% loss each way → ~25% delivery. Allow a broad band.
	if got < 5 || got > 60 {
		t.Errorf("delivered %d of %d at 50%% bidirectional loss, want ~25", got, sends)
	}
	// Clamping.
	link.SetLossPct(-5)
	if _, ok := rtt(t, c, time.Second); !ok {
		t.Error("loss clamped to 0 should deliver")
	}
}

func TestLinkMultipleClients(t *testing.T) {
	echo := udpEcho(t)
	link, err := NewLink(echo, time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	for i := 0; i < 4; i++ {
		c := dial(t, link.Addr())
		if _, ok := rtt(t, c, time.Second); !ok {
			t.Fatalf("client %d got no echo", i)
		}
	}
}

// TestLinkRebindChangesSourcePort: after Rebind the target must see the
// same client's traffic arrive from a fresh source port, and echoes must
// still route back to the client.
func TestLinkRebindChangesSourcePort(t *testing.T) {
	// An echo server that also reports the peer it saw.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	peers := make(chan string, 16)
	go func() {
		buf := make([]byte, 65536)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			peers <- from.String()
			_, _ = conn.WriteToUDP(buf[:n], from)
		}
	}()

	link, err := NewLink(conn.LocalAddr().String(), time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	c := dial(t, link.Addr())
	if _, ok := rtt(t, c, time.Second); !ok {
		t.Fatal("no echo before rebind")
	}
	before := <-peers

	if n := link.Rebind(); n != 1 {
		t.Fatalf("Rebind dropped %d mappings, want 1", n)
	}
	if _, ok := rtt(t, c, time.Second); !ok {
		t.Fatal("no echo after rebind: return path not re-established")
	}
	after := <-peers
	if before == after {
		t.Fatalf("rebind kept source address %s", before)
	}
}

func TestLinkCloseIdempotent(t *testing.T) {
	echo := udpEcho(t)
	link, err := NewLink(echo, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Close(); err != nil {
		t.Fatal(err)
	}
	if err := link.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
