// Package netsim binds the topology, deployment, and geography into a
// queryable "Internet in a box": it answers the questions the paper's
// testbeds answered — which cloud ingress does a user group reach under
// a given advertisement, with what latency, and how does that evolve
// over days of routing drift and failures.
//
// Two properties matter for faithfulness to the paper:
//
//  1. Route selection has a component the orchestrator cannot predict:
//     each AS holds hidden per-ingress preferences used to break ties
//     (and, with small probability, to override distance intuition the
//     way the paper's "New York prefers Amsterdam" example does). The
//     Advertisement Orchestrator must learn these by advertising and
//     observing, exactly as on the real Internet.
//
//  2. Latency is grounded in geography but includes path inflation:
//     some (UG, ingress) pairs detour far beyond the great-circle
//     distance, and transit providers inflate routes even over very
//     large distances (§5.1.2 "Results").
//
// Hot state is laid out flat for Azure-scale worlds: per-ingress
// attributes and the fault overlay are dense slices indexed by raw
// IngressID, per-AS caches (hidden preferences, compliance, ancestors,
// best-ingress memo) are rows indexed by the topology Index's dense AS
// ordinal, and the propagation cache is keyed by a 64-bit hash of the
// canonical peering set instead of a byte-string. Semantics — hit/miss
// accounting, invalidation precision, determinism — are identical to
// the old map-backed layout (pinned by the differential tests).
package netsim

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/obs/span"
	"painter/internal/topology"
)

// World is an immutable-topology, time-evolving network simulator.
//
// Concurrency contract: all query methods (LatencyMs, BaseLatencyMs,
// PathFailed, ResolveIngress, PolicyCompliant, CompliantIngressIDs,
// BestIngressLatency, TieBreaker and the tie-breaker it returns) are
// safe for concurrent use. The state-changing methods SetDay,
// AdvanceTo, and ApplyEvent are NOT: they must not run concurrently
// with any query (advance the clock or apply events between query
// waves, as the Fig. 7 drift experiment and the chaos engine do).
type World struct {
	Graph  *topology.Graph
	Deploy *cloud.Deployment

	seed uint64
	day  int

	// Tunables (set before first use; zero values replaced by defaults).
	cfg Config

	// idx assigns every AS a dense ordinal; all per-AS cache rows below
	// are indexed by it.
	idx *topology.Index
	// nIng is max deployment IngressID + 1: the length of every
	// per-ingress slice.
	nIng int

	// Per-ingress attributes, indexed by raw IngressID. ingValid marks
	// IDs that exist in the deployment (IDs are dense in practice, but
	// nothing here assumes it).
	ingValid   []bool
	popCoordOf []geo.Coord
	peerASNOf  []topology.ASN
	transitOf  []bool
	// popOfIng maps each peering to its PoP for outage checks.
	popOfIng []cloud.PoPID

	// asHomeOf is each AS's primary location (first metro), used for the
	// hot-potato bias in route tie-breaking; asHomeOK marks ASes that
	// have one. Indexed by dense AS ordinal.
	asHomeOf []geo.Coord
	asHomeOK []bool

	// metroOrd/metroCodes give every catalog metro a dense ordinal for
	// the best-ingress memo rows.
	metroOrd   map[string]int32
	metroCodes []string

	// obs holds the world's metrics registry and handles (see obs.go);
	// cache counters replace the old ad-hoc stat fields and surface
	// through CacheStats() and Obs().
	obs worldObs

	// resolveMu guards the propagation cache: ResolveIngress results
	// bucketed by a hash of the canonical (sorted, live) peering set
	// plus the world day; each entry carries the exact set for
	// verification. SetDay/AdvanceTo drop the cache wholesale.
	resolveMu    sync.Mutex
	resolveCache map[uint64][]*resolveEntry
	resolveCount int
	// deltaResolve serves cache misses by delta propagation from the
	// closest cached base when one is close enough (on by default); off
	// restores the pre-delta behaviour — every miss runs a full
	// propagation — and is the control arm of the delta benchmarks.
	deltaResolve bool
	// staleBases retains recently evicted resolve entries as delta
	// bases: a pref flip drops the cache entries containing its ingress
	// (their selections are stale) but each dropped Result is still an
	// exact propagation of its injection set under the pre-flip
	// tie-breaker — exactly what PropagateDelta needs, given the flip
	// list. FIFO-capped at maxStaleBases; cleared by SetDay.
	staleBases []staleBase

	// prefMu guards the hidden-preference cache: prefScore is pure per
	// (AS, ingress, day) and called for every tie-break candidate, so
	// memoizing it takes the geographic math off the propagation hot
	// path. Rows are lazily allocated per dense AS ordinal with NaN as
	// the absent sentinel. SetDay/AdvanceTo drop it alongside the
	// propagation cache.
	prefMu    sync.RWMutex
	prefRows  [][]float64
	prefCount int

	// polMu guards the structural (day-independent) cache rows below,
	// all indexed by dense AS ordinal with nil = not yet computed.
	polMu sync.Mutex
	// ancRows[i] is i plus its transitive providers as sorted dense
	// ordinals, for fast policy-compliance checks.
	ancRows [][]int32
	// polRows[i] is the sorted compliant ingress set of AS i (shared;
	// the public map accessor returns copies, CompliantIngressIDs
	// returns the row itself read-only).
	polRows [][]bgp.IngressID
	// bestRows[i][m] memoizes BestIngressLatency per (AS, metro ordinal).
	bestRows [][]bestVal

	// overlayMu guards the dynamic fault overlay (see events.go):
	// failed peerings and PoPs, latency spikes, probe loss, and
	// hidden-preference flips applied via ApplyEvent. All per-ingress
	// overlay state is dense slices; the counts make the "overlay clean"
	// fast path a two-int check.
	overlayMu    sync.RWMutex
	peeringDownF []bool
	peeringDownN int
	popDownF     []bool
	popDownN     int
	spikeMsF     []float64
	probeLossF   []int
	prefFlips    map[prefKey]uint64
	eventSeq     uint64

	// subMu guards the event subscriber list.
	subMu   sync.Mutex
	subs    []subscriber
	subNext int
}

// resolveEntry is one propagation-cache slot: the canonical peering set
// and day it was keyed under (for bucket verification and precise
// pref-flip invalidation), plus the memoized selection. The sync.Once
// lets concurrent first callers of the same key share a single
// Propagate run without holding resolveMu for its duration.
type resolveEntry struct {
	day  int
	ids  []bgp.IngressID // sorted, owned by the entry
	once sync.Once
	// done is set after once.Do completes; the delta base scan reads
	// res/err lock-free from other entries, so it checks done first
	// (Store is the release, Load the acquire).
	done atomic.Bool
	res  *bgp.Result
	sel  map[topology.ASN]bgp.Route
	err  error
}

// staleBase is an evicted propagation Result retained as a delta base,
// together with the tie-break flips applied since it was computed.
type staleBase struct {
	day   int
	ids   []bgp.IngressID
	res   *bgp.Result
	flips []topology.ASN
}

// maxStaleBases caps the stale delta-base pool (FIFO eviction).
const maxStaleBases = 256

type prefKey struct {
	as  topology.ASN
	ing bgp.IngressID
}

type bestVal struct {
	ms  float64
	ing bgp.IngressID
	err error
	set bool
}

// Config tunes the synthetic network behaviour.
type Config struct {
	// DetourProb is the base probability a (UG, ingress) pair suffers a
	// persistent intra-AS detour.
	DetourProb float64
	// TransitDetourProb replaces DetourProb for transit-provider
	// ingresses over long distances (the paper found transit routes
	// inflate even over 10k+ km).
	TransitDetourProb float64
	// DetourMinMs/DetourMaxMs bound the detour penalty.
	DetourMinMs, DetourMaxMs float64
	// AccessMinMs/AccessMaxMs bound per-UG last-mile latency.
	AccessMinMs, AccessMaxMs float64
	// DailyFailProb is the per-day probability that a (UG, ingress) path
	// is degraded that day.
	DailyFailProb float64
	// FailPenaltyMs is the degradation added on a failed day.
	FailPenaltyMs float64
	// DriftMs bounds the ± daily latency jitter.
	DriftMs float64
	// PrefOverrideProb is the probability that an AS holds a strong
	// hidden preference that overrides path-length ordering for a
	// specific ingress (the unpredictable routing the orchestrator must
	// learn).
	PrefOverrideProb float64
	// RouteDriftProb is the per-day probability that an (AS, ingress)
	// hidden preference is transiently re-rolled, making route selection
	// itself drift across days (§5.1.2 / Fig. 7: paths change over time,
	// not just their latencies). Day 0 never drifts, so steady-state
	// resolution is unaffected.
	RouteDriftProb float64
}

// DefaultConfig returns the tuning used across the evaluation.
func DefaultConfig() Config {
	return Config{
		DetourProb:        0.08,
		TransitDetourProb: 0.16,
		DetourMinMs:       15,
		DetourMaxMs:       150,
		AccessMinMs:       2,
		AccessMaxMs:       14,
		DailyFailProb:     0.015,
		FailPenaltyMs:     120,
		DriftMs:           2.5,
		PrefOverrideProb:  0.10,
		RouteDriftProb:    0.05,
	}
}

// New creates a World over a topology and deployment with the default
// config.
func New(g *topology.Graph, d *cloud.Deployment, seed int64) (*World, error) {
	return NewWithConfig(g, d, seed, DefaultConfig())
}

// NewWithConfig creates a World with explicit tuning.
func NewWithConfig(g *topology.Graph, d *cloud.Deployment, seed int64, cfg Config) (*World, error) {
	if g == nil || d == nil {
		return nil, fmt.Errorf("netsim: nil graph or deployment")
	}
	nIng := 0
	nPoP := 0
	for _, pr := range d.Peerings {
		if int(pr.ID)+1 > nIng {
			nIng = int(pr.ID) + 1
		}
		if int(pr.PoP)+1 > nPoP {
			nPoP = int(pr.PoP) + 1
		}
	}
	idx := g.Index()
	w := &World{
		Graph:  g,
		Deploy: d,
		seed:   uint64(seed),
		cfg:    cfg,
		obs:    newWorldObs(),
		idx:    idx,
		nIng:   nIng,

		ingValid:   make([]bool, nIng),
		popCoordOf: make([]geo.Coord, nIng),
		peerASNOf:  make([]topology.ASN, nIng),
		transitOf:  make([]bool, nIng),
		popOfIng:   make([]cloud.PoPID, nIng),

		asHomeOf: make([]geo.Coord, idx.Len()),
		asHomeOK: make([]bool, idx.Len()),

		resolveCache: make(map[uint64][]*resolveEntry),
		deltaResolve: true,
		prefRows:     make([][]float64, idx.Len()),
		ancRows:      make([][]int32, idx.Len()),
		polRows:      make([][]bgp.IngressID, idx.Len()),
		bestRows:     make([][]bestVal, idx.Len()),

		peeringDownF: make([]bool, nIng),
		popDownF:     make([]bool, nPoP),
		spikeMsF:     make([]float64, nIng),
		probeLossF:   make([]int, nIng),
		prefFlips:    make(map[prefKey]uint64),
	}
	for _, pr := range d.Peerings {
		pop := d.PoP(pr.PoP)
		if pop == nil {
			return nil, fmt.Errorf("netsim: peering %d has no PoP", pr.ID)
		}
		if pr.ID < 0 {
			return nil, fmt.Errorf("netsim: negative peering ID %d", pr.ID)
		}
		w.ingValid[pr.ID] = true
		w.popCoordOf[pr.ID] = pop.Coord
		w.peerASNOf[pr.ID] = pr.PeerASN
		w.transitOf[pr.ID] = pr.IsTransit()
		w.popOfIng[pr.ID] = pr.PoP
		if !g.Has(pr.PeerASN) {
			return nil, fmt.Errorf("netsim: peering %d neighbor %v not in topology", pr.ID, pr.PeerASN)
		}
	}
	for i := 0; i < idx.Len(); i++ {
		a := g.AS(idx.ASN(int32(i)))
		if len(a.Metros) > 0 {
			if m, err := geo.MetroByCode(a.Metros[0]); err == nil {
				w.asHomeOf[i] = m.Coord
				w.asHomeOK[i] = true
			}
		}
	}
	metros := geo.Metros()
	w.metroOrd = make(map[string]int32, len(metros))
	w.metroCodes = make([]string, len(metros))
	for i, m := range metros {
		w.metroOrd[m.Code] = int32(i)
		w.metroCodes[i] = m.Code
	}
	return w, nil
}

// Day returns the current simulation day.
func (w *World) Day() int { return w.day }

// SetDay moves the world to an absolute day (used by the Fig. 7 drift
// experiment) and drops the propagation cache, since hidden preferences
// drift with the day. Not safe concurrently with queries.
func (w *World) SetDay(d int) {
	if d == w.day {
		return
	}
	w.day = d
	w.obs.day.Set(float64(d))
	w.resolveMu.Lock()
	w.obs.resolveInval.Add(uint64(w.resolveCount))
	w.resolveCache = make(map[uint64][]*resolveEntry)
	w.resolveCount = 0
	// Stale delta bases are day-scoped: preference drift re-rolls with
	// the day, so a previous day's Result is not a valid base.
	w.staleBases = nil
	w.resolveMu.Unlock()
	w.prefMu.Lock()
	w.obs.prefInval.Add(uint64(w.prefCount))
	for i := range w.prefRows {
		w.prefRows[i] = nil
	}
	w.prefCount = 0
	w.prefMu.Unlock()
}

// AdvanceTo moves the clock forward to day d (no-op if d is not later
// than the current day). Like SetDay it invalidates the propagation
// cache and must not run concurrently with queries.
func (w *World) AdvanceTo(d int) {
	if d > w.day {
		w.SetDay(d)
	}
}

// --- Deterministic hashing -------------------------------------------------

// h64 hashes a tuple of ints with the world seed into a uint64 using a
// splitmix64-style mixer: fully deterministic across runs and processes.
func (w *World) h64(parts ...uint64) uint64 {
	h := mix64(w.seed ^ 0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = mix64(h ^ mix64(p+0x9e3779b97f4a7c15))
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit converts a hash into a float in [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// domain tags keep independent random draws independent.
const (
	domStretch = iota + 1
	domAccess
	domDetourP
	domDetourMs
	domPeerPenalty
	domDrift
	domFail
	domPref
	domPrefOverride
	// Appended after the original tags so their values — and therefore
	// every pre-existing deterministic draw — are unchanged.
	domRouteDrift
	domRouteDriftVal
	domPrefFlip
)

// --- Latency model ----------------------------------------------------------

// LatencyMs returns the round-trip latency in milliseconds from a UG
// (identified by its AS and metro) to the cloud through the given
// ingress, on the world's current day. Latency is deterministic per
// (world seed, UG, ingress, day).
// Transient per-ingress latency spikes applied via ApplyEvent are
// included; BaseLatencyMs is not affected by them.
func (w *World) LatencyMs(asn topology.ASN, metro string, ing bgp.IngressID) (float64, error) {
	base, err := w.BaseLatencyMs(asn, metro, ing)
	if err != nil {
		return 0, err
	}
	return base + w.dayAdjustMs(asn, metro, ing) + w.LatencySpikeMs(ing), nil
}

// knownIngress reports whether ing is a deployment peering.
func (w *World) knownIngress(ing bgp.IngressID) bool {
	return ing >= 0 && int(ing) < w.nIng && w.ingValid[ing]
}

// BaseLatencyMs is the steady-state (day-independent) latency.
func (w *World) BaseLatencyMs(asn topology.ASN, metro string, ing bgp.IngressID) (float64, error) {
	if !w.knownIngress(ing) {
		return 0, fmt.Errorf("netsim: unknown ingress %d", ing)
	}
	pc := w.popCoordOf[ing]
	m, err := geo.MetroByCode(metro)
	if err != nil {
		return 0, err
	}
	distKm := geo.DistanceKm(m.Coord, pc)
	geoRTT := geo.KmToMinRTTMs(distKm)

	ugKey := uint64(asn)<<16 ^ metroKey(metro)
	ik := uint64(ing)

	// Fiber stretch in [1.2, 1.9), per pair.
	stretch := 1.2 + 0.7*unit(w.h64(domStretch, ugKey, ik))
	// Last-mile access latency, per UG.
	access := w.cfg.AccessMinMs + (w.cfg.AccessMaxMs-w.cfg.AccessMinMs)*unit(w.h64(domAccess, ugKey))
	// Small per-peer handoff penalty.
	peerPen := 3 * unit(w.h64(domPeerPenalty, uint64(w.peerASNOf[ing])))

	lat := geoRTT*stretch + access + peerPen

	// Persistent detour: more likely via transit providers over long
	// distances.
	p := w.cfg.DetourProb
	if w.transitOf[ing] && distKm > 2000 {
		p = w.cfg.TransitDetourProb
	}
	if unit(w.h64(domDetourP, ugKey, ik)) < p {
		lat += w.cfg.DetourMinMs + (w.cfg.DetourMaxMs-w.cfg.DetourMinMs)*unit(w.h64(domDetourMs, ugKey, ik))
	}
	return lat, nil
}

// dayAdjustMs is the time-varying component: daily jitter plus possible
// failure-day degradation.
func (w *World) dayAdjustMs(asn topology.ASN, metro string, ing bgp.IngressID) float64 {
	if w.day == 0 {
		return 0
	}
	ugKey := uint64(asn)<<16 ^ metroKey(metro)
	ik := uint64(ing)
	dk := uint64(w.day)
	adj := (2*unit(w.h64(domDrift, ugKey, ik, dk)) - 1) * w.cfg.DriftMs
	if unit(w.h64(domFail, ugKey, ik, dk)) < w.cfg.DailyFailProb {
		adj += w.cfg.FailPenaltyMs
	}
	return adj
}

// PathFailed reports whether the (UG, ingress) path is degraded on the
// current day, or the ingress itself is failed (ApplyEvent overlay).
func (w *World) PathFailed(asn topology.ASN, metro string, ing bgp.IngressID) bool {
	if w.IngressDown(ing) {
		return true
	}
	if w.day == 0 {
		return false
	}
	ugKey := uint64(asn)<<16 ^ metroKey(metro)
	return unit(w.h64(domFail, ugKey, uint64(ing), uint64(w.day))) < w.cfg.DailyFailProb
}

func metroKey(metro string) uint64 {
	var k uint64
	for _, c := range metro {
		k = k*131 + uint64(c)
	}
	return k
}

// --- Route selection ---------------------------------------------------------

// TieBreaker returns the hidden-preference tie-breaker used by every AS
// in this world. Preferences are stable per (AS, ingress) and unknown to
// the orchestrator; a fraction of ASes additionally hold strong
// overriding preferences for specific ingresses.
//
// The returned closure reads the world-level flat preference rows
// directly and is safe for concurrent use (the old per-closure memo, and
// its per-goroutine restriction, are gone).
func (w *World) TieBreaker() bgp.TieBreaker {
	return func(as topology.ASN, cands []bgp.Route) int {
		best := 0
		bestScore := w.prefScore(as, cands[0].Ingress)
		for i := 1; i < len(cands); i++ {
			if s := w.prefScore(as, cands[i].Ingress); s < bestScore {
				best, bestScore = i, s
			}
		}
		return best
	}
}

// prefScore memoizes prefScoreUncached per (AS, ingress): the score is
// deterministic for a given day, and tie-breaking evaluates it for every
// candidate at every AS, so the cache removes repeated geographic math
// from the propagation hot path. Rows live per dense AS ordinal with NaN
// marking absent slots (scores themselves are always finite).
// SetDay/AdvanceTo reset it.
func (w *World) prefScore(as topology.ASN, ing bgp.IngressID) float64 {
	ai, known := w.idx.ID(as)
	cacheable := known && ing >= 0 && int(ing) < w.nIng
	if cacheable {
		w.prefMu.RLock()
		var s float64 = math.NaN()
		if row := w.prefRows[ai]; row != nil {
			s = row[ing]
		}
		w.prefMu.RUnlock()
		if !math.IsNaN(s) {
			w.obs.prefHits.Inc()
			return s
		}
	}
	w.obs.prefMiss.Inc()
	s := w.prefScoreUncached(as, ing)
	if cacheable {
		w.prefMu.Lock()
		row := w.prefRows[ai]
		if row == nil {
			row = nanRow(w.nIng)
			w.prefRows[ai] = row
		}
		if math.IsNaN(row[ing]) {
			w.prefCount++
		}
		row[ing] = s
		w.prefMu.Unlock()
	}
	return s
}

// nanRow allocates a preference row with every slot absent.
func nanRow(n int) []float64 {
	row := make([]float64, n)
	nan := math.NaN()
	for i := range row {
		row[i] = nan
	}
	return row
}

// prefScoreUncached is the hidden preference (lower is preferred). Real ASes
// break ties hot-potato: they hand traffic off at the geographically
// nearest interconnection (lowest IGP cost), so the score is dominated
// by distance from the AS's home to the ingress PoP, perturbed by
// per-(AS, ingress) noise. A fraction of pairs hold strong overrides
// that defy geography entirely — the "New York prefers Amsterdam"
// routing the orchestrator must learn (§5.1.2).
func (w *World) prefScoreUncached(as topology.ASN, ing bgp.IngressID) float64 {
	noise := unit(w.h64(domPref, uint64(as), uint64(ing)))
	s := noise
	if ai, ok := w.idx.ID(as); ok && w.asHomeOK[ai] && w.knownIngress(ing) {
		distNorm := geo.DistanceKm(w.asHomeOf[ai], w.popCoordOf[ing]) / 20000 // 0..~1
		s = 0.75*distNorm + 0.25*noise
	}
	// A strong override pulls the score near zero, making this ingress
	// dominate all ties for this AS regardless of geography.
	if unit(w.h64(domPrefOverride, uint64(as), uint64(ing))) < w.cfg.PrefOverrideProb {
		s *= 0.02
	}
	// Daily route drift: a small fraction of (AS, ingress) preferences
	// are transiently re-rolled each day, so the route an AS selects can
	// change day over day (Fig. 7). Day 0 is the undrifted steady state.
	if w.day != 0 && w.cfg.RouteDriftProb > 0 {
		dk := uint64(w.day)
		if unit(w.h64(domRouteDrift, uint64(as), uint64(ing), dk)) < w.cfg.RouteDriftProb {
			s = unit(w.h64(domRouteDriftVal, uint64(as), uint64(ing), dk))
		}
	}
	// A hidden-preference flip (EventPrefFlip) re-rolls the score
	// deterministically per flip count: equal event histories reproduce
	// equal preferences, but each flip shifts this AS's tie-breaking for
	// this ingress unpredictably.
	if n := w.prefFlipCount(prefKey{as: as, ing: ing}); n > 0 {
		s = unit(w.h64(domPrefFlip, uint64(as), uint64(ing), n))
	}
	return s
}

// ResolveIngress propagates one prefix advertised via the given peerings
// and returns the ingress each AS selects. ASes with no policy-compliant
// route are absent from the map.
//
// Results are memoized per (canonical peering set, world day): the
// peering slice is sorted into a canonical form, so permuted-but-equal
// slices hit the same cache entry. SetDay/AdvanceTo invalidate the
// cache. The returned map is shared with the cache — callers must treat
// it as read-only.
//
// Peerings failed via ApplyEvent are filtered out before the key is
// built: an advertisement over a withdrawn peering simply injects
// nothing there. Entries keyed with a down peering are therefore
// unreachable while it is down and valid again on recovery; preference
// flips drop the entries they can affect (see events.go).
func (w *World) ResolveIngress(peerings []bgp.IngressID) (map[topology.ASN]bgp.Route, error) {
	return w.resolveIngress(peerings, nil)
}

// ResolveIngressTraced is ResolveIngress under a child span of parent
// recording the cache decision (hit or miss) and, on a miss, the
// bgp.Propagate run as a grandchild. A nil parent delegates with zero
// tracing cost.
func (w *World) ResolveIngressTraced(peerings []bgp.IngressID, parent *span.Span) (map[topology.ASN]bgp.Route, error) {
	return w.resolveIngress(peerings, parent)
}

// ResolveIngressResult is ResolveIngress returning the retained
// *bgp.Result instead of the selection map. It shares the same
// propagation cache (same keying, same memoized entries), so callers
// that keep the previous Result can diff incrementally via Result.Diff
// or AnycastShift. The Result is shared with the cache: read-only.
func (w *World) ResolveIngressResult(peerings []bgp.IngressID) (*bgp.Result, error) {
	e := w.resolveEntryFor(peerings, nil)
	return e.res, e.err
}

// SetDeltaResolve toggles serving resolve-cache misses by delta
// propagation from the closest cached base (on by default). Turning it
// off restores the pre-delta behaviour — every miss runs a full
// propagation — and drops the stale base pool; this is the control arm
// of the delta benchmarks. Not safe concurrently with queries.
func (w *World) SetDeltaResolve(on bool) {
	w.resolveMu.Lock()
	w.deltaResolve = on
	if !on {
		w.staleBases = nil
	}
	w.resolveMu.Unlock()
}

// sortBuf is the pooled scratch for canonicalizing a resolve's peering
// set without allocating per call.
type sortBuf struct{ ids []bgp.IngressID }

var sortBufPool = sync.Pool{New: func() any { return new(sortBuf) }}

func (w *World) resolveIngress(peerings []bgp.IngressID, parent *span.Span) (map[topology.ASN]bgp.Route, error) {
	e := w.resolveEntryFor(peerings, parent)
	return e.sel, e.err
}

// resolveEntryFor finds or computes the propagation-cache entry for a
// peering set. On a miss it first looks for a close cached base (live
// entry or stale pool) and repairs it with PropagateDelta — byte-
// identical to a full propagation, pinned by the differential tests —
// falling back to a full run when no base is close enough.
func (w *World) resolveEntryFor(peerings []bgp.IngressID, parent *span.Span) *resolveEntry {
	buf := sortBufPool.Get().(*sortBuf)
	sorted := append(buf.ids[:0], peerings...)
	slices.Sort(sorted)
	sorted = w.filterLive(sorted)
	buf.ids = sorted[:0]
	h := resolveHash(w.day, sorted)

	// Span construction (attr formatting included) is guarded so the
	// untraced hot path pays exactly one nil check.
	var s *span.Span
	if parent != nil {
		s = parent.StartChild("netsim.resolve",
			span.A("peerings", strconv.Itoa(len(sorted))),
			span.A("day", strconv.Itoa(w.day)))
	}

	w.resolveMu.Lock()
	if w.resolveCache == nil {
		w.resolveCache = make(map[uint64][]*resolveEntry)
	}
	var e *resolveEntry
	for _, cand := range w.resolveCache[h] {
		if cand.day == w.day && slices.Equal(cand.ids, sorted) {
			e = cand
			break
		}
	}
	hit := e != nil
	if hit {
		w.obs.resolveHits.Inc()
	} else {
		w.obs.resolveMiss.Inc()
		e = &resolveEntry{day: w.day, ids: slices.Clone(sorted)}
		w.resolveCache[h] = append(w.resolveCache[h], e)
		w.resolveCount++
	}
	w.resolveMu.Unlock()
	sortBufPool.Put(buf)
	if hit {
		s.SetAttr("cache", "hit")
	} else {
		s.SetAttr("cache", "miss")
	}

	// Propagation order is immaterial to the result (candidates are
	// sorted before tie-breaking), so resolving from the canonical slice
	// is equivalent to resolving from the caller's order.
	e.once.Do(func() {
		defer e.done.Store(true)
		inj, err := w.Deploy.Injections(e.ids)
		if err != nil {
			e.err = err
			return
		}
		tb := w.TieBreaker()
		if base, flips := w.findDeltaBase(e.day, e.ids); base != nil {
			if res, _, derr := bgp.PropagateDeltaTraced(base, w.Graph, inj, flips, tb, s); derr == nil {
				w.obs.resolveDelta.Inc()
				e.res = res
				e.sel = res.Selections()
				return
			}
		}
		w.obs.resolveFull.Inc()
		e.res, e.err = bgp.PropagateResultTraced(w.Graph, inj, tb, s)
		if e.err == nil {
			e.sel = e.res.Selections()
		}
	})
	if s != nil {
		if e.err != nil {
			s.SetAttr("error", e.err.Error())
		}
		s.Finish()
	}
	return e
}

// findDeltaBase scans the live propagation cache and the stale pool for
// the cached Result closest to the target peering set (minimum
// symmetric difference), along with the tie-break flips applied since
// it was computed (always empty for live entries: flips evict the
// entries they can affect). A base is accepted only when the sets
// overlap substantially — 2*symdiff <= max(4, |union|) — past that
// point a full propagation is no slower and the delta bookkeeping is
// waste.
func (w *World) findDeltaBase(day int, sorted []bgp.IngressID) (*bgp.Result, []topology.ASN) {
	w.resolveMu.Lock()
	defer w.resolveMu.Unlock()
	if !w.deltaResolve {
		return nil, nil
	}
	var best *bgp.Result
	var bestFlips []topology.ASN
	bestSD := -1
	consider := func(ids []bgp.IngressID, res *bgp.Result, flips []topology.ASN) {
		sd := symDiffSize(ids, sorted)
		if bestSD >= 0 && sd >= bestSD {
			return
		}
		union := (len(ids) + len(sorted) + sd) / 2
		if 2*sd > max(4, union) {
			return
		}
		best, bestFlips, bestSD = res, flips, sd
	}
	for _, bucket := range w.resolveCache {
		for _, e := range bucket {
			if e.day != day || !e.done.Load() || e.err != nil || e.res == nil {
				continue
			}
			consider(e.ids, e.res, nil)
		}
	}
	for i := range w.staleBases {
		sb := &w.staleBases[i]
		if sb.day != day {
			continue
		}
		consider(sb.ids, sb.res, sb.flips)
	}
	return best, bestFlips
}

// symDiffSize counts the symmetric difference of two ascending-sorted
// ingress sets by a merge walk.
func symDiffSize(a, b []bgp.IngressID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
			n++
		default:
			j++
			n++
		}
	}
	return n + (len(a) - i) + (len(b) - j)
}

// pushStaleBaseLocked appends to the stale base pool with FIFO
// eviction; caller holds resolveMu.
func (w *World) pushStaleBaseLocked(sb staleBase) {
	if len(w.staleBases) >= maxStaleBases {
		copy(w.staleBases, w.staleBases[1:])
		w.staleBases[len(w.staleBases)-1] = sb
		return
	}
	w.staleBases = append(w.staleBases, sb)
}

// resolveHash hashes (day, sorted peering set) into the propagation
// cache's bucket key; entries verify the exact set, so collisions cost a
// comparison, never a wrong answer.
func resolveHash(day int, sorted []bgp.IngressID) uint64 {
	h := mix64(uint64(int64(day)) ^ 0x9e3779b97f4a7c15)
	for _, id := range sorted {
		h = mix64(h ^ mix64(uint64(uint32(id))+0x9e3779b97f4a7c15))
	}
	return h
}

// --- Policy compliance --------------------------------------------------------

// ancRow returns dense ordinal i plus its transitive providers as a
// sorted row of dense ordinals (cached; shared, read-only).
func (w *World) ancRow(i int32) []int32 {
	w.polMu.Lock()
	if r := w.ancRows[i]; r != nil {
		w.polMu.Unlock()
		return r
	}
	w.polMu.Unlock()
	seen := make([]bool, w.idx.Len())
	seen[i] = true
	row := []int32{i}
	stack := []int32{i}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range w.idx.Providers(cur) {
			if !seen[p] {
				seen[p] = true
				row = append(row, p)
				stack = append(stack, p)
			}
		}
	}
	slices.Sort(row)
	w.polMu.Lock()
	w.ancRows[i] = row
	w.polMu.Unlock()
	return row
}

// emptyCompliantRow is the computed-but-empty sentinel for polRows (nil
// means "not computed yet").
var emptyCompliantRow = []bgp.IngressID{}

// PolicyCompliant returns the set of deployment peerings through which
// the given AS has any policy-compliant (valley-free) path to the cloud.
// It is equivalent to bgp.ReachableIngresses over all peerings but uses
// cached ancestor sets for speed. Results are memoized per ASN (the
// topology and deployment are immutable); the returned map is a fresh
// copy the caller may modify.
func (w *World) PolicyCompliant(asn topology.ASN) (map[bgp.IngressID]bool, error) {
	row, err := w.compliantRow(asn)
	if err != nil {
		return nil, err
	}
	out := make(map[bgp.IngressID]bool, len(row))
	for _, id := range row {
		out[id] = true
	}
	return out, nil
}

// CompliantIngressIDs returns the same compliant set as PolicyCompliant
// as an ascending-sorted slice shared with the cache: callers must treat
// it as read-only. This is the zero-copy path the flat orchestrator
// state is built from.
func (w *World) CompliantIngressIDs(asn topology.ASN) ([]bgp.IngressID, error) {
	return w.compliantRow(asn)
}

// compliantRow is the memoized core of PolicyCompliant: the sorted
// compliant ingress row for an AS (shared, read-only).
func (w *World) compliantRow(asn topology.ASN) ([]bgp.IngressID, error) {
	ai, ok := w.idx.ID(asn)
	if !ok {
		return nil, fmt.Errorf("netsim: unknown AS %v", asn)
	}
	w.polMu.Lock()
	if r := w.polRows[ai]; r != nil {
		w.polMu.Unlock()
		w.obs.policyHits.Inc()
		return r, nil
	}
	w.polMu.Unlock()
	w.obs.policyMiss.Inc()

	up := w.ancRow(ai)
	// upPeer: up ∪ peers(up), as dense-ordinal membership bitmaps.
	n := w.idx.Len()
	upBits := make([]bool, n)
	upPeerBits := make([]bool, n)
	for _, a := range up {
		upBits[a] = true
		upPeerBits[a] = true
		for _, p := range w.idx.Peers(a) {
			upPeerBits[p] = true
		}
	}
	row := emptyCompliantRow
	for _, pr := range w.Deploy.Peerings {
		pi, ok := w.idx.ID(pr.PeerASN)
		if !ok {
			continue
		}
		if pr.ClassAtPeer == bgp.ClassCustomer {
			// Transit: reachable iff some ancestor of the neighbor is in
			// upPeer (valley-free walk: up, optional peer hop, down to
			// the neighbor).
			for _, a := range w.ancRow(pi) {
				if upPeerBits[a] {
					row = append(row, pr.ID)
					break
				}
			}
		} else {
			// Settlement-free peer: the route only descends the
			// neighbor's customer cone, so the AS must be in it.
			if upBits[pi] {
				row = append(row, pr.ID)
			}
		}
	}
	slices.Sort(row)
	w.polMu.Lock()
	w.polRows[ai] = row
	w.polMu.Unlock()
	return row, nil
}

// containsIngress reports membership in an ascending-sorted ingress row.
func containsIngress(row []bgp.IngressID, id bgp.IngressID) bool {
	_, ok := slices.BinarySearch(row, id)
	return ok
}

// BestIngressLatency returns the minimum base latency over the AS's
// policy-compliant live ingresses — the best any advertisement strategy
// could ever deliver to this UG (the "One per Peering gives all the
// benefit" upper bound of §5.1.2). Results are memoized per (ASN,
// metro): base latency is day-independent, so only ApplyEvent failures
// and recoveries invalidate entries — and only the entries whose answer
// they can change (see events.go).
func (w *World) BestIngressLatency(asn topology.ASN, metro string) (float64, bgp.IngressID, error) {
	ai, aok := w.idx.ID(asn)
	mo, mok := w.metroOrd[metro]
	if !aok || !mok {
		// Unknown AS (errors below) or off-catalog metro: uncacheable.
		w.obs.bestMiss.Inc()
		return w.bestIngressLatency(asn, metro)
	}
	w.polMu.Lock()
	if row := w.bestRows[ai]; row != nil && row[mo].set {
		v := row[mo]
		w.polMu.Unlock()
		w.obs.bestHits.Inc()
		return v.ms, v.ing, v.err
	}
	w.polMu.Unlock()
	w.obs.bestMiss.Inc()
	ms, ing, err := w.bestIngressLatency(asn, metro)
	w.polMu.Lock()
	if w.bestRows[ai] == nil {
		w.bestRows[ai] = make([]bestVal, len(w.metroCodes))
	}
	w.bestRows[ai][mo] = bestVal{ms: ms, ing: ing, err: err, set: true}
	w.polMu.Unlock()
	return ms, ing, err
}

// bestCached reports whether BestIngressLatency has a live memo entry
// for (asn, metro) — a test hook for the invalidation-precision tests.
func (w *World) bestCached(asn topology.ASN, metro string) bool {
	ai, aok := w.idx.ID(asn)
	mo, mok := w.metroOrd[metro]
	if !aok || !mok {
		return false
	}
	w.polMu.Lock()
	defer w.polMu.Unlock()
	row := w.bestRows[ai]
	return row != nil && row[mo].set
}

func (w *World) bestIngressLatency(asn topology.ASN, metro string) (float64, bgp.IngressID, error) {
	pc, err := w.compliantRow(asn)
	if err != nil {
		return 0, bgp.InvalidIngress, err
	}
	best := math.Inf(1)
	bestID := bgp.InvalidIngress
	for _, ing := range pc {
		if w.IngressDown(ing) {
			continue
		}
		l, err := w.BaseLatencyMs(asn, metro, ing)
		if err != nil {
			return 0, bgp.InvalidIngress, err
		}
		if l < best || (l == best && ing < bestID) {
			best, bestID = l, ing
		}
	}
	if bestID == bgp.InvalidIngress {
		return 0, bestID, fmt.Errorf("netsim: AS %v has no policy-compliant ingress", asn)
	}
	return best, bestID, nil
}
