// Package netsim binds the topology, deployment, and geography into a
// queryable "Internet in a box": it answers the questions the paper's
// testbeds answered — which cloud ingress does a user group reach under
// a given advertisement, with what latency, and how does that evolve
// over days of routing drift and failures.
//
// Two properties matter for faithfulness to the paper:
//
//  1. Route selection has a component the orchestrator cannot predict:
//     each AS holds hidden per-ingress preferences used to break ties
//     (and, with small probability, to override distance intuition the
//     way the paper's "New York prefers Amsterdam" example does). The
//     Advertisement Orchestrator must learn these by advertising and
//     observing, exactly as on the real Internet.
//
//  2. Latency is grounded in geography but includes path inflation:
//     some (UG, ingress) pairs detour far beyond the great-circle
//     distance, and transit providers inflate routes even over very
//     large distances (§5.1.2 "Results").
package netsim

import (
	"fmt"

	"math"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/topology"
)

// World is an immutable-topology, time-evolving network simulator.
// Methods are safe for concurrent use except AdvanceTo/SetDay.
type World struct {
	Graph  *topology.Graph
	Deploy *cloud.Deployment

	seed uint64
	day  int

	// Tunables (set before first use; zero values replaced by defaults).
	cfg Config

	// popCoord caches the coordinate of each peering's PoP.
	popCoord map[bgp.IngressID]geo.Coord
	// peerASNOf caches each peering's neighbor AS.
	peerASNOf map[bgp.IngressID]topology.ASN
	// transit caches whether each peering is via a transit provider.
	transit map[bgp.IngressID]bool

	// ancestors[n] is n plus its transitive providers, for fast
	// policy-compliance checks.
	ancestors map[topology.ASN]map[topology.ASN]bool
	// asHome is each AS's primary location (first metro), used for the
	// hot-potato bias in route tie-breaking.
	asHome map[topology.ASN]geo.Coord
}

// Config tunes the synthetic network behaviour.
type Config struct {
	// DetourProb is the base probability a (UG, ingress) pair suffers a
	// persistent intra-AS detour.
	DetourProb float64
	// TransitDetourProb replaces DetourProb for transit-provider
	// ingresses over long distances (the paper found transit routes
	// inflate even over 10k+ km).
	TransitDetourProb float64
	// DetourMinMs/DetourMaxMs bound the detour penalty.
	DetourMinMs, DetourMaxMs float64
	// AccessMinMs/AccessMaxMs bound per-UG last-mile latency.
	AccessMinMs, AccessMaxMs float64
	// DailyFailProb is the per-day probability that a (UG, ingress) path
	// is degraded that day.
	DailyFailProb float64
	// FailPenaltyMs is the degradation added on a failed day.
	FailPenaltyMs float64
	// DriftMs bounds the ± daily latency jitter.
	DriftMs float64
	// PrefOverrideProb is the probability that an AS holds a strong
	// hidden preference that overrides path-length ordering for a
	// specific ingress (the unpredictable routing the orchestrator must
	// learn).
	PrefOverrideProb float64
}

// DefaultConfig returns the tuning used across the evaluation.
func DefaultConfig() Config {
	return Config{
		DetourProb:        0.08,
		TransitDetourProb: 0.16,
		DetourMinMs:       15,
		DetourMaxMs:       150,
		AccessMinMs:       2,
		AccessMaxMs:       14,
		DailyFailProb:     0.015,
		FailPenaltyMs:     120,
		DriftMs:           2.5,
		PrefOverrideProb:  0.10,
	}
}

// New creates a World over a topology and deployment with the default
// config.
func New(g *topology.Graph, d *cloud.Deployment, seed int64) (*World, error) {
	return NewWithConfig(g, d, seed, DefaultConfig())
}

// NewWithConfig creates a World with explicit tuning.
func NewWithConfig(g *topology.Graph, d *cloud.Deployment, seed int64, cfg Config) (*World, error) {
	if g == nil || d == nil {
		return nil, fmt.Errorf("netsim: nil graph or deployment")
	}
	w := &World{
		Graph:     g,
		Deploy:    d,
		seed:      uint64(seed),
		cfg:       cfg,
		popCoord:  make(map[bgp.IngressID]geo.Coord, len(d.Peerings)),
		peerASNOf: make(map[bgp.IngressID]topology.ASN, len(d.Peerings)),
		transit:   make(map[bgp.IngressID]bool, len(d.Peerings)),
		ancestors: make(map[topology.ASN]map[topology.ASN]bool),
	}
	for _, pr := range d.Peerings {
		pop := d.PoP(pr.PoP)
		if pop == nil {
			return nil, fmt.Errorf("netsim: peering %d has no PoP", pr.ID)
		}
		w.popCoord[pr.ID] = pop.Coord
		w.peerASNOf[pr.ID] = pr.PeerASN
		w.transit[pr.ID] = pr.IsTransit()
		if !g.Has(pr.PeerASN) {
			return nil, fmt.Errorf("netsim: peering %d neighbor %v not in topology", pr.ID, pr.PeerASN)
		}
	}
	w.asHome = make(map[topology.ASN]geo.Coord, g.Len())
	for _, n := range g.ASNs() {
		a := g.AS(n)
		if len(a.Metros) > 0 {
			if m, err := geo.MetroByCode(a.Metros[0]); err == nil {
				w.asHome[n] = m.Coord
			}
		}
	}
	return w, nil
}

// Day returns the current simulation day.
func (w *World) Day() int { return w.day }

// SetDay moves the world to an absolute day (used by the Fig. 7 drift
// experiment). Not safe concurrently with queries.
func (w *World) SetDay(d int) { w.day = d }

// --- Deterministic hashing -------------------------------------------------

// h64 hashes a tuple of ints with the world seed into a uint64 using a
// splitmix64-style mixer: fully deterministic across runs and processes.
func (w *World) h64(parts ...uint64) uint64 {
	h := mix64(w.seed ^ 0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = mix64(h ^ mix64(p+0x9e3779b97f4a7c15))
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit converts a hash into a float in [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// domain tags keep independent random draws independent.
const (
	domStretch = iota + 1
	domAccess
	domDetourP
	domDetourMs
	domPeerPenalty
	domDrift
	domFail
	domPref
	domPrefOverride
)

// --- Latency model ----------------------------------------------------------

// LatencyMs returns the round-trip latency in milliseconds from a UG
// (identified by its AS and metro) to the cloud through the given
// ingress, on the world's current day. Latency is deterministic per
// (world seed, UG, ingress, day).
func (w *World) LatencyMs(asn topology.ASN, metro string, ing bgp.IngressID) (float64, error) {
	base, err := w.BaseLatencyMs(asn, metro, ing)
	if err != nil {
		return 0, err
	}
	return base + w.dayAdjustMs(asn, metro, ing), nil
}

// BaseLatencyMs is the steady-state (day-independent) latency.
func (w *World) BaseLatencyMs(asn topology.ASN, metro string, ing bgp.IngressID) (float64, error) {
	pc, ok := w.popCoord[ing]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown ingress %d", ing)
	}
	m, err := geo.MetroByCode(metro)
	if err != nil {
		return 0, err
	}
	distKm := geo.DistanceKm(m.Coord, pc)
	geoRTT := geo.KmToMinRTTMs(distKm)

	ugKey := uint64(asn)<<16 ^ metroKey(metro)
	ik := uint64(ing)

	// Fiber stretch in [1.2, 1.9), per pair.
	stretch := 1.2 + 0.7*unit(w.h64(domStretch, ugKey, ik))
	// Last-mile access latency, per UG.
	access := w.cfg.AccessMinMs + (w.cfg.AccessMaxMs-w.cfg.AccessMinMs)*unit(w.h64(domAccess, ugKey))
	// Small per-peer handoff penalty.
	peerPen := 3 * unit(w.h64(domPeerPenalty, uint64(w.peerASNOf[ing])))

	lat := geoRTT*stretch + access + peerPen

	// Persistent detour: more likely via transit providers over long
	// distances.
	p := w.cfg.DetourProb
	if w.transit[ing] && distKm > 2000 {
		p = w.cfg.TransitDetourProb
	}
	if unit(w.h64(domDetourP, ugKey, ik)) < p {
		lat += w.cfg.DetourMinMs + (w.cfg.DetourMaxMs-w.cfg.DetourMinMs)*unit(w.h64(domDetourMs, ugKey, ik))
	}
	return lat, nil
}

// dayAdjustMs is the time-varying component: daily jitter plus possible
// failure-day degradation.
func (w *World) dayAdjustMs(asn topology.ASN, metro string, ing bgp.IngressID) float64 {
	if w.day == 0 {
		return 0
	}
	ugKey := uint64(asn)<<16 ^ metroKey(metro)
	ik := uint64(ing)
	dk := uint64(w.day)
	adj := (2*unit(w.h64(domDrift, ugKey, ik, dk)) - 1) * w.cfg.DriftMs
	if unit(w.h64(domFail, ugKey, ik, dk)) < w.cfg.DailyFailProb {
		adj += w.cfg.FailPenaltyMs
	}
	return adj
}

// PathFailed reports whether the (UG, ingress) path is degraded on the
// current day.
func (w *World) PathFailed(asn topology.ASN, metro string, ing bgp.IngressID) bool {
	if w.day == 0 {
		return false
	}
	ugKey := uint64(asn)<<16 ^ metroKey(metro)
	return unit(w.h64(domFail, ugKey, uint64(ing), uint64(w.day))) < w.cfg.DailyFailProb
}

func metroKey(metro string) uint64 {
	var k uint64
	for _, c := range metro {
		k = k*131 + uint64(c)
	}
	return k
}

// --- Route selection ---------------------------------------------------------

// TieBreaker returns the hidden-preference tie-breaker used by every AS
// in this world. Preferences are stable per (AS, ingress) and unknown to
// the orchestrator; a fraction of ASes additionally hold strong
// overriding preferences for specific ingresses.
func (w *World) TieBreaker() bgp.TieBreaker {
	return func(as topology.ASN, cands []bgp.Route) int {
		best := 0
		bestScore := w.prefScore(as, cands[0].Ingress)
		for i := 1; i < len(cands); i++ {
			if s := w.prefScore(as, cands[i].Ingress); s < bestScore {
				best, bestScore = i, s
			}
		}
		return best
	}
}

// prefScore is the hidden preference (lower is preferred). Real ASes
// break ties hot-potato: they hand traffic off at the geographically
// nearest interconnection (lowest IGP cost), so the score is dominated
// by distance from the AS's home to the ingress PoP, perturbed by
// per-(AS, ingress) noise. A fraction of pairs hold strong overrides
// that defy geography entirely — the "New York prefers Amsterdam"
// routing the orchestrator must learn (§5.1.2).
func (w *World) prefScore(as topology.ASN, ing bgp.IngressID) float64 {
	noise := unit(w.h64(domPref, uint64(as), uint64(ing)))
	s := noise
	if home, ok := w.asHome[as]; ok {
		distNorm := geo.DistanceKm(home, w.popCoord[ing]) / 20000 // 0..~1
		s = 0.75*distNorm + 0.25*noise
	}
	// A strong override pulls the score near zero, making this ingress
	// dominate all ties for this AS regardless of geography.
	if unit(w.h64(domPrefOverride, uint64(as), uint64(ing))) < w.cfg.PrefOverrideProb {
		s *= 0.02
	}
	return s
}

// ResolveIngress propagates one prefix advertised via the given peerings
// and returns the ingress each AS selects. ASes with no policy-compliant
// route are absent from the map.
func (w *World) ResolveIngress(peerings []bgp.IngressID) (map[topology.ASN]bgp.Route, error) {
	inj, err := w.Deploy.Injections(peerings)
	if err != nil {
		return nil, err
	}
	return bgp.Propagate(w.Graph, inj, w.TieBreaker())
}

// --- Policy compliance --------------------------------------------------------

// ancestorsOf returns n plus its transitive providers (cached).
func (w *World) ancestorsOf(n topology.ASN) map[topology.ASN]bool {
	if a, ok := w.ancestors[n]; ok {
		return a
	}
	set := map[topology.ASN]bool{n: true}
	stack := []topology.ASN{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range w.Graph.AS(cur).Providers {
			if !set[p] {
				set[p] = true
				stack = append(stack, p)
			}
		}
	}
	w.ancestors[n] = set
	return set
}

// PolicyCompliant returns the set of deployment peerings through which
// the given AS has any policy-compliant (valley-free) path to the cloud.
// It is equivalent to bgp.ReachableIngresses over all peerings but uses
// cached ancestor sets for speed.
func (w *World) PolicyCompliant(asn topology.ASN) (map[bgp.IngressID]bool, error) {
	if !w.Graph.Has(asn) {
		return nil, fmt.Errorf("netsim: unknown AS %v", asn)
	}
	up := w.ancestorsOf(asn)
	// upPeer: up ∪ peers(up).
	upPeer := make(map[topology.ASN]bool, len(up)*3)
	for x := range up {
		upPeer[x] = true
		for _, p := range w.Graph.AS(x).Peers {
			upPeer[p] = true
		}
	}
	out := make(map[bgp.IngressID]bool)
	for _, pr := range w.Deploy.Peerings {
		if pr.ClassAtPeer == bgp.ClassCustomer {
			// Transit: reachable iff some ancestor of the neighbor is in
			// upPeer (valley-free walk: up, optional peer hop, down to
			// the neighbor).
			for a := range w.ancestorsOf(pr.PeerASN) {
				if upPeer[a] {
					out[pr.ID] = true
					break
				}
			}
		} else {
			// Settlement-free peer: the route only descends the
			// neighbor's customer cone, so the AS must be in it.
			if up[pr.PeerASN] {
				out[pr.ID] = true
			}
		}
	}
	return out, nil
}

// BestIngressLatency returns the minimum base latency over the AS's
// policy-compliant ingresses — the best any advertisement strategy could
// ever deliver to this UG (the "One per Peering gives all the benefit"
// upper bound of §5.1.2).
func (w *World) BestIngressLatency(asn topology.ASN, metro string) (float64, bgp.IngressID, error) {
	pc, err := w.PolicyCompliant(asn)
	if err != nil {
		return 0, bgp.InvalidIngress, err
	}
	best := math.Inf(1)
	bestID := bgp.InvalidIngress
	for ing := range pc {
		l, err := w.BaseLatencyMs(asn, metro, ing)
		if err != nil {
			return 0, bgp.InvalidIngress, err
		}
		if l < best || (l == best && ing < bestID) {
			best, bestID = l, ing
		}
	}
	if bestID == bgp.InvalidIngress {
		return 0, bestID, fmt.Errorf("netsim: AS %v has no policy-compliant ingress", asn)
	}
	return best, bestID, nil
}
