package netsim

// Event→impact query surface for incremental consumers (the core
// re-solve controller). It lives next to the cache-invalidation rules in
// events.go on purpose: both answer the same question — "what can this
// event change?" — but for different audiences. ApplyEvent's
// invalidation is about cached world answers; EventImpact is about the
// orchestrator's advertisement model, which only needs to know which
// ingresses are touched, whether route selection or latency can move,
// and whether the change is scoped to a single AS.

import (
	"fmt"

	"painter/internal/bgp"
	"painter/internal/topology"
)

// Impact classifies what one event can change in the world, from the
// point of view of a consumer maintaining state derived from queries
// (route selections, latencies, advertisement placements).
type Impact struct {
	// Ingresses are the peerings the event touches: the failed/recovered
	// peering, every peering at an outaged PoP, the spiked or lossy
	// ingress, or the ingress of a flipped preference.
	Ingresses []bgp.IngressID
	// Routing reports that route selection can change: peering/PoP
	// down/up alter which peerings inject routes; a pref flip re-rolls
	// one AS's tie-breaking.
	Routing bool
	// Latency reports that observed latencies can change — directly
	// (spike) or via re-selection (down/up, flip).
	Latency bool
	// TrafficOnly reports that only Traffic Manager substrate metadata
	// changed (probe loss): route selection and modeled latencies are
	// untouched.
	TrafficOnly bool
	// AS, when nonzero, scopes a routing change to a single AS (pref
	// flip). Zero means any AS may be affected.
	AS topology.ASN
}

// EventImpact classifies an event against this world. It validates the
// event's references the same way ApplyEvent does, so it can be called
// either before applying (what would this change?) or from a Subscribe
// hook after applying (what did this change?).
func (w *World) EventImpact(ev Event) (Impact, error) {
	switch ev.Kind {
	case EventPeeringDown, EventPeeringUp:
		if w.Deploy.Peering(ev.Ingress) == nil {
			return Impact{}, fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		return Impact{Ingresses: []bgp.IngressID{ev.Ingress}, Routing: true, Latency: true}, nil
	case EventPoPDown, EventPoPUp:
		if w.Deploy.PoP(ev.PoP) == nil {
			return Impact{}, fmt.Errorf("netsim: unknown PoP %d", ev.PoP)
		}
		ids := w.Deploy.PeeringsAt(ev.PoP)
		return Impact{
			Ingresses: append([]bgp.IngressID(nil), ids...),
			Routing:   true, Latency: true,
		}, nil
	case EventLatencySpike:
		if w.Deploy.Peering(ev.Ingress) == nil {
			return Impact{}, fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		return Impact{Ingresses: []bgp.IngressID{ev.Ingress}, Latency: true}, nil
	case EventProbeLoss:
		if w.Deploy.Peering(ev.Ingress) == nil {
			return Impact{}, fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		return Impact{Ingresses: []bgp.IngressID{ev.Ingress}, TrafficOnly: true}, nil
	case EventPrefFlip:
		if w.Deploy.Peering(ev.Ingress) == nil {
			return Impact{}, fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		if !w.Graph.Has(ev.AS) {
			return Impact{}, fmt.Errorf("netsim: unknown AS %v", ev.AS)
		}
		return Impact{
			Ingresses: []bgp.IngressID{ev.Ingress},
			Routing:   true, Latency: true, AS: ev.AS,
		}, nil
	default:
		return Impact{}, fmt.Errorf("netsim: unknown event kind %v", ev.Kind)
	}
}

// AnycastShift resolves the full anycast catchment (all deployment
// peerings) and reports which ASes changed selection relative to prev —
// the incremental entry point for consumers that retain the previous
// anycast Result (the re-solve controller, CatchmentAnalyzer). A nil or
// foreign-graph prev yields every settled AS as changed; when the
// resolve is a cache hit on prev itself the changed set is empty. The
// returned Result is shared with the resolve cache: read-only.
func (w *World) AnycastShift(prev *bgp.Result) (*bgp.Result, []topology.ASN, error) {
	res, err := w.ResolveIngressResult(w.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, nil, err
	}
	return res, res.Diff(prev), nil
}
