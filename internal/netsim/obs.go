package netsim

// Observability: every World carries an obs.Registry so cache
// efficiency, the event overlay, and the simulation clock are
// inspectable in one place. Counters are lock-free atomics; the only
// hot path they touch (prefScore) sits behind the TieBreaker's
// per-goroutine memo, so the steady-state cost is one atomic add per
// world-cache lookup — nothing per propagated route.

import "painter/internal/obs"

// worldObs bundles the world's metric handles. All fields are nil-safe
// obs metrics: a zero worldObs (possible only for a World built outside
// New/NewWithConfig) silently no-ops.
type worldObs struct {
	reg *obs.Registry

	resolveHits  *obs.Counter
	resolveMiss  *obs.Counter
	resolveInval *obs.Counter
	resolveDelta *obs.Counter
	resolveFull  *obs.Counter

	prefHits  *obs.Counter
	prefMiss  *obs.Counter
	prefInval *obs.Counter

	policyHits *obs.Counter
	policyMiss *obs.Counter

	bestHits  *obs.Counter
	bestMiss  *obs.Counter
	bestInval *obs.Counter

	events map[EventKind]*obs.Counter

	day          *obs.Gauge
	peeringsDown *obs.Gauge
	popsDown     *obs.Gauge
}

// newWorldObs registers the netsim metric families on a fresh registry.
func newWorldObs() worldObs {
	r := obs.NewRegistry()
	m := worldObs{
		reg: r,

		resolveHits:  r.Counter("netsim_resolve_cache_hits_total", "propagation-cache hits in ResolveIngress"),
		resolveMiss:  r.Counter("netsim_resolve_cache_misses_total", "propagation-cache misses in ResolveIngress"),
		resolveInval: r.Counter("netsim_resolve_cache_invalidations_total", "propagation-cache entries dropped by SetDay or events"),
		resolveDelta: r.Counter("netsim_resolve_delta_total", "resolve misses served by delta propagation from a cached base"),
		resolveFull:  r.Counter("netsim_resolve_full_total", "resolve misses served by a full whole-graph propagation"),

		prefHits:  r.Counter("netsim_prefscore_cache_hits_total", "hidden-preference memo hits"),
		prefMiss:  r.Counter("netsim_prefscore_cache_misses_total", "hidden-preference memo misses"),
		prefInval: r.Counter("netsim_prefscore_cache_invalidations_total", "hidden-preference memo entries dropped by SetDay or pref flips"),

		policyHits: r.Counter("netsim_policy_cache_hits_total", "PolicyCompliant memo hits"),
		policyMiss: r.Counter("netsim_policy_cache_misses_total", "PolicyCompliant memo misses"),

		bestHits:  r.Counter("netsim_best_ingress_cache_hits_total", "BestIngressLatency memo hits"),
		bestMiss:  r.Counter("netsim_best_ingress_cache_misses_total", "BestIngressLatency memo misses"),
		bestInval: r.Counter("netsim_best_ingress_cache_invalidations_total", "BestIngressLatency memo entries dropped by failure/recovery events"),

		events: make(map[EventKind]*obs.Counter, 7),

		day:          r.Gauge("netsim_day", "current simulation day"),
		peeringsDown: r.Gauge("netsim_peerings_down", "peerings currently failed directly (not via PoP outage)"),
		popsDown:     r.Gauge("netsim_pops_down", "PoPs currently failed"),
	}
	for _, k := range []EventKind{
		EventPeeringDown, EventPeeringUp, EventPoPDown, EventPoPUp,
		EventLatencySpike, EventProbeLoss, EventPrefFlip,
	} {
		m.events[k] = r.Counter("netsim_events_total", "world events applied, by kind", obs.L("kind", k.String()))
	}
	return m
}

// Obs returns the world's metrics registry (nil for a zero World).
func (w *World) Obs() *obs.Registry { return w.obs.reg }

// CacheStats is a point-in-time snapshot of the world-cache counters —
// the unified successor of the old ad-hoc per-cache stat fields. All
// counters are cumulative since world creation; invalidation never
// resets hits/misses.
type CacheStats struct {
	ResolveHits          uint64
	ResolveMisses        uint64
	ResolveInvalidations uint64
	// ResolveDeltaRuns + ResolveFullRuns partition the misses that ran a
	// propagation (errors before propagation are in neither).
	ResolveDeltaRuns uint64
	ResolveFullRuns  uint64

	PrefScoreHits          uint64
	PrefScoreMisses        uint64
	PrefScoreInvalidations uint64

	PolicyHits   uint64
	PolicyMisses uint64

	BestIngressHits          uint64
	BestIngressMisses        uint64
	BestIngressInvalidations uint64
}

// CacheStats snapshots every cache counter from the obs registry.
func (w *World) CacheStats() CacheStats {
	m := &w.obs
	return CacheStats{
		ResolveHits:          m.resolveHits.Value(),
		ResolveMisses:        m.resolveMiss.Value(),
		ResolveInvalidations: m.resolveInval.Value(),
		ResolveDeltaRuns:     m.resolveDelta.Value(),
		ResolveFullRuns:      m.resolveFull.Value(),

		PrefScoreHits:          m.prefHits.Value(),
		PrefScoreMisses:        m.prefMiss.Value(),
		PrefScoreInvalidations: m.prefInval.Value(),

		PolicyHits:   m.policyHits.Value(),
		PolicyMisses: m.policyMiss.Value(),

		BestIngressHits:          m.bestHits.Value(),
		BestIngressMisses:        m.bestMiss.Value(),
		BestIngressInvalidations: m.bestInval.Value(),
	}
}
