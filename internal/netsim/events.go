package netsim

// Event/hook layer: the dynamic fault overlay on an otherwise
// immutable-topology World. ApplyEvent mutates the overlay (peering and
// PoP failures, latency spikes, probe loss, hidden-preference flips) and
// invalidates exactly the cached answers the event can change — never
// the whole cache:
//
//   - Peering/PoP down/up: ResolveIngress filters failed peerings out of
//     the canonical key, so propagation-cache entries keyed with a down
//     ingress are simply unreachable while it is down and valid again on
//     recovery — no resolve invalidation is needed. BestIngressLatency
//     entries are dropped only when the event can change their answer:
//     on failure, entries whose cached winner is the failed ingress; on
//     recovery, entries the recovered ingress could now win (it is
//     policy-compliant for the AS and at least ties the cached best).
//   - Hidden-preference flips drop the single (AS, ingress) preference
//     memo entry plus the propagation-cache entries whose peering set
//     contains that ingress — tie-breaks elsewhere cannot see the flip.
//   - Latency spikes and probe loss never alter route selection, so no
//     route or preference cache is touched. Spikes surface in LatencyMs;
//     probe loss is metadata for the Traffic Manager substrate bridge.
//
// Like SetDay/AdvanceTo, ApplyEvent must not run concurrently with
// queries (apply events between query waves); Subscribe/notify are
// internally locked.

import (
	"fmt"
	"math"
	"slices"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/topology"
)

// EventKind discriminates world events.
type EventKind uint8

// World event kinds.
const (
	// EventPeeringDown withdraws one peering: routes can no longer enter
	// the cloud through it (link failure / prefix withdrawal).
	EventPeeringDown EventKind = iota + 1
	// EventPeeringUp restores a failed peering.
	EventPeeringUp
	// EventPoPDown fails every peering at a PoP (site outage).
	EventPoPDown
	// EventPoPUp restores a failed PoP.
	EventPoPUp
	// EventLatencySpike adds Ms milliseconds to every path through the
	// ingress (Ms <= 0 clears the spike).
	EventLatencySpike
	// EventProbeLoss sets the probe-loss percentage on the ingress for
	// the Traffic Manager substrate (Pct <= 0 clears it).
	EventProbeLoss
	// EventPrefFlip re-rolls the hidden preference one AS holds for one
	// ingress — the catchment-shifting routing change the orchestrator
	// cannot predict.
	EventPrefFlip
)

func (k EventKind) String() string {
	switch k {
	case EventPeeringDown:
		return "peering-down"
	case EventPeeringUp:
		return "peering-up"
	case EventPoPDown:
		return "pop-down"
	case EventPoPUp:
		return "pop-up"
	case EventLatencySpike:
		return "latency-spike"
	case EventProbeLoss:
		return "probe-loss"
	case EventPrefFlip:
		return "pref-flip"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one world state change. Only the fields its kind reads are
// meaningful: Ingress for peering-scoped kinds (and the ingress of a
// PrefFlip), PoP for PoP outages, AS for PrefFlip, Ms for spikes, Pct
// for probe loss. Seq is assigned by ApplyEvent in application order.
type Event struct {
	Kind    EventKind
	Ingress bgp.IngressID
	PoP     cloud.PoPID
	AS      topology.ASN
	Ms      float64
	Pct     int
	Seq     uint64
}

func (e Event) String() string {
	switch e.Kind {
	case EventPeeringDown, EventPeeringUp:
		return fmt.Sprintf("%v ing=%d", e.Kind, e.Ingress)
	case EventPoPDown, EventPoPUp:
		return fmt.Sprintf("%v pop=%d", e.Kind, e.PoP)
	case EventLatencySpike:
		return fmt.Sprintf("%v ing=%d ms=%.1f", e.Kind, e.Ingress, e.Ms)
	case EventProbeLoss:
		return fmt.Sprintf("%v ing=%d pct=%d", e.Kind, e.Ingress, e.Pct)
	case EventPrefFlip:
		return fmt.Sprintf("%v as=%d ing=%d", e.Kind, e.AS, e.Ingress)
	default:
		return e.Kind.String()
	}
}

type subscriber struct {
	id int
	fn func(Event)
}

// Subscribe registers a hook invoked synchronously, in registration
// order, for every successfully applied event. The returned cancel
// function removes the subscription.
func (w *World) Subscribe(fn func(Event)) (cancel func()) {
	w.subMu.Lock()
	w.subNext++
	id := w.subNext
	w.subs = append(w.subs, subscriber{id: id, fn: fn})
	w.subMu.Unlock()
	return func() {
		w.subMu.Lock()
		for i, s := range w.subs {
			if s.id == id {
				w.subs = append(w.subs[:i], w.subs[i+1:]...)
				break
			}
		}
		w.subMu.Unlock()
	}
}

func (w *World) notify(ev Event) {
	w.subMu.Lock()
	subs := append([]subscriber(nil), w.subs...)
	w.subMu.Unlock()
	for _, s := range subs {
		s.fn(ev)
	}
}

// ApplyEvent applies one event to the world, invalidates exactly the
// cached answers the event can change, and notifies subscribers. It
// returns an error (and notifies nobody) when the event references an
// unknown peering, PoP, or AS. Not safe concurrently with queries.
func (w *World) ApplyEvent(ev Event) error {
	var wentDown, cameUp []bgp.IngressID

	w.overlayMu.Lock()
	switch ev.Kind {
	case EventPeeringDown:
		if w.Deploy.Peering(ev.Ingress) == nil {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		if !w.peeringDownF[ev.Ingress] {
			already := w.ingressDownLocked(ev.Ingress) // down via its PoP?
			w.peeringDownF[ev.Ingress] = true
			w.peeringDownN++
			if !already {
				wentDown = append(wentDown, ev.Ingress)
			}
		}
	case EventPeeringUp:
		if w.Deploy.Peering(ev.Ingress) == nil {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		if w.peeringDownF[ev.Ingress] {
			w.peeringDownF[ev.Ingress] = false
			w.peeringDownN--
			if !w.ingressDownLocked(ev.Ingress) {
				cameUp = append(cameUp, ev.Ingress)
			}
		}
	case EventPoPDown:
		if w.Deploy.PoP(ev.PoP) == nil {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown PoP %d", ev.PoP)
		}
		if !w.popDownF[ev.PoP] {
			for _, id := range w.Deploy.PeeringsAt(ev.PoP) {
				if !w.ingressDownLocked(id) {
					wentDown = append(wentDown, id)
				}
			}
			w.popDownF[ev.PoP] = true
			w.popDownN++
		}
	case EventPoPUp:
		if w.Deploy.PoP(ev.PoP) == nil {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown PoP %d", ev.PoP)
		}
		if w.popDownF[ev.PoP] {
			w.popDownF[ev.PoP] = false
			w.popDownN--
			for _, id := range w.Deploy.PeeringsAt(ev.PoP) {
				if !w.ingressDownLocked(id) {
					cameUp = append(cameUp, id)
				}
			}
		}
	case EventLatencySpike:
		if w.Deploy.Peering(ev.Ingress) == nil {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		if ev.Ms > 0 {
			w.spikeMsF[ev.Ingress] = ev.Ms
		} else {
			w.spikeMsF[ev.Ingress] = 0
		}
	case EventProbeLoss:
		if w.Deploy.Peering(ev.Ingress) == nil {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		pct := ev.Pct
		if pct > 100 {
			pct = 100
		}
		if pct < 0 {
			pct = 0
		}
		w.probeLossF[ev.Ingress] = pct
	case EventPrefFlip:
		if w.Deploy.Peering(ev.Ingress) == nil {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown peering %d", ev.Ingress)
		}
		if !w.Graph.Has(ev.AS) {
			w.overlayMu.Unlock()
			return fmt.Errorf("netsim: unknown AS %v", ev.AS)
		}
		w.prefFlips[prefKey{as: ev.AS, ing: ev.Ingress}]++
	default:
		w.overlayMu.Unlock()
		return fmt.Errorf("netsim: unknown event kind %v", ev.Kind)
	}
	w.eventSeq++
	ev.Seq = w.eventSeq
	w.obs.peeringsDown.Set(float64(w.peeringDownN))
	w.obs.popsDown.Set(float64(w.popDownN))
	w.overlayMu.Unlock()
	w.obs.events[ev.Kind].Inc()

	// Precise cache invalidation (see the package comment above).
	if len(wentDown) > 0 {
		w.invalidateBestForDown(wentDown)
	}
	if len(cameUp) > 0 {
		w.invalidateBestForUp(cameUp)
	}
	if ev.Kind == EventPrefFlip {
		if ai, ok := w.idx.ID(ev.AS); ok {
			w.prefMu.Lock()
			if row := w.prefRows[ai]; row != nil && !math.IsNaN(row[ev.Ingress]) {
				row[ev.Ingress] = math.NaN()
				w.prefCount--
				w.obs.prefInval.Inc()
			}
			w.prefMu.Unlock()
		}
		w.dropResolveContaining(ev.AS, ev.Ingress)
	}

	w.notify(ev)
	return nil
}

// ingressDownLocked reports down-state; caller holds overlayMu (read or
// write). Unknown ingresses are never down.
func (w *World) ingressDownLocked(id bgp.IngressID) bool {
	if !w.knownIngress(id) {
		return false
	}
	return w.peeringDownF[id] || w.popDownF[w.popOfIng[id]]
}

// IngressDown reports whether a peering is currently failed, directly or
// through a PoP outage.
func (w *World) IngressDown(id bgp.IngressID) bool {
	w.overlayMu.RLock()
	defer w.overlayMu.RUnlock()
	return w.ingressDownLocked(id)
}

// LatencySpikeMs returns the transient latency spike on an ingress (0
// when none).
func (w *World) LatencySpikeMs(id bgp.IngressID) float64 {
	if !w.knownIngress(id) {
		return 0
	}
	w.overlayMu.RLock()
	defer w.overlayMu.RUnlock()
	return w.spikeMsF[id]
}

// ProbeLossPct returns the probe-loss percentage on an ingress (0 when
// none) — consumed by the Traffic Manager substrate bridge, not by
// route selection.
func (w *World) ProbeLossPct(id bgp.IngressID) int {
	if !w.knownIngress(id) {
		return 0
	}
	w.overlayMu.RLock()
	defer w.overlayMu.RUnlock()
	return w.probeLossF[id]
}

// LiveIngresses returns the subset of ids that are not failed, in input
// order, as a fresh slice.
func (w *World) LiveIngresses(ids []bgp.IngressID) []bgp.IngressID {
	out := make([]bgp.IngressID, 0, len(ids))
	w.overlayMu.RLock()
	defer w.overlayMu.RUnlock()
	for _, id := range ids {
		if !w.ingressDownLocked(id) {
			out = append(out, id)
		}
	}
	return out
}

// filterLive drops failed peerings from sorted in place (sorted must be
// caller-owned, e.g. ResolveIngress's canonical copy).
func (w *World) filterLive(sorted []bgp.IngressID) []bgp.IngressID {
	w.overlayMu.RLock()
	defer w.overlayMu.RUnlock()
	if w.peeringDownN == 0 && w.popDownN == 0 {
		return sorted
	}
	live := sorted[:0]
	for _, id := range sorted {
		if !w.ingressDownLocked(id) {
			live = append(live, id)
		}
	}
	return live
}

// prefFlipCount returns how many times the (AS, ingress) hidden
// preference has been flipped.
func (w *World) prefFlipCount(k prefKey) uint64 {
	w.overlayMu.RLock()
	defer w.overlayMu.RUnlock()
	return w.prefFlips[k]
}

// invalidateBestForDown drops BestIngressLatency memo entries whose
// cached winner just failed; entries won by other ingresses are still
// correct (removing a losing candidate cannot change a minimum).
func (w *World) invalidateBestForDown(ids []bgp.IngressID) {
	dropped := 0
	w.polMu.Lock()
	for _, row := range w.bestRows {
		for m := range row {
			v := &row[m]
			if !v.set || v.err != nil {
				continue
			}
			for _, id := range ids {
				if v.ing == id {
					*v = bestVal{}
					dropped++
					break
				}
			}
		}
	}
	w.polMu.Unlock()
	w.obs.bestInval.Add(uint64(dropped))
}

// invalidateBestForUp drops BestIngressLatency memo entries a recovered
// ingress could now win: the ingress is policy-compliant for the entry's
// AS and its base latency at least ties the cached best (or the entry
// previously had no live compliant ingress at all).
func (w *World) invalidateBestForUp(ids []bgp.IngressID) {
	type slot struct {
		ai int32
		mo int32
		v  bestVal
	}
	w.polMu.Lock()
	var live []slot
	for ai, row := range w.bestRows {
		for m := range row {
			if row[m].set {
				live = append(live, slot{ai: int32(ai), mo: int32(m), v: row[m]})
			}
		}
	}
	w.polMu.Unlock()

	var stale []slot
	for _, s := range live {
		asn := w.idx.ASN(s.ai)
		metro := w.metroCodes[s.mo]
		pc, err := w.compliantRow(asn)
		if err != nil {
			stale = append(stale, s)
			continue
		}
		for _, id := range ids {
			if !containsIngress(pc, id) {
				continue
			}
			if s.v.err != nil {
				stale = append(stale, s)
				break
			}
			b, err := w.BaseLatencyMs(asn, metro, id)
			if err != nil || b < s.v.ms || (b == s.v.ms && id < s.v.ing) {
				stale = append(stale, s)
				break
			}
		}
	}
	if len(stale) == 0 {
		return
	}
	w.polMu.Lock()
	for _, s := range stale {
		w.bestRows[s.ai][s.mo] = bestVal{}
	}
	w.polMu.Unlock()
	w.obs.bestInval.Add(uint64(len(stale)))
}

// dropResolveContaining removes propagation-cache entries whose peering
// set contains the given ingress — the only entries a preference flip
// involving that ingress can affect. Entries carry their exact sorted
// sets, so containment is one binary search each.
//
// Dropped entries are not discarded: each is still an exact propagation
// of its injection set under the pre-flip tie-breaker, so it moves to
// the stale delta-base pool tagged with the flipped AS. Re-resolving
// the same peering set then finds a zero-symdiff base and repairs it
// with PropagateDelta seeded at that single AS — the flip's catchment
// cone — instead of re-propagating the whole graph. Stale bases that
// already contain the ingress accumulate the flip in their tag list.
func (w *World) dropResolveContaining(as topology.ASN, id bgp.IngressID) {
	dropped := 0
	w.resolveMu.Lock()
	for h, bucket := range w.resolveCache {
		kept := bucket[:0]
		for _, e := range bucket {
			if containsIngress(e.ids, id) {
				dropped++
				if e.done.Load() && e.err == nil && e.res != nil {
					w.pushStaleBaseLocked(staleBase{
						day:   e.day,
						ids:   e.ids,
						res:   e.res,
						flips: []topology.ASN{as},
					})
				}
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(w.resolveCache, h)
		} else {
			w.resolveCache[h] = kept
		}
	}
	for i := range w.staleBases {
		sb := &w.staleBases[i]
		if containsIngress(sb.ids, id) && !slices.Contains(sb.flips, as) {
			sb.flips = append(sb.flips, as)
		}
	}
	w.resolveCount -= dropped
	w.resolveMu.Unlock()
	w.obs.resolveInval.Add(uint64(dropped))
}
