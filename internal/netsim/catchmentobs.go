package netsim

// Catchment exposition: the per-PoP anycast share gauges the
// catchment-drift detector judges over. Every PoP's gauge is registered
// up front (rather than on first traffic) so the series set is stable
// from the first sample — absence of traffic reads as share 0, not as a
// missing series, and two same-seed runs expose identical series.

import (
	"strconv"

	"painter/internal/cloud"
	"painter/internal/obs"
)

// CatchmentGauges publishes a Catchment as gauges on a registry:
// catchment_pop_share{pop="N"} per PoP plus catchment_inflated_frac
// and catchment_ugs.
type CatchmentGauges struct {
	share    map[cloud.PoPID]*obs.Gauge
	inflated *obs.Gauge
	ugs      *obs.Gauge
}

// NewCatchmentGauges registers one share gauge per PoP of the
// deployment. A nil registry yields nil-safe no-op gauges.
func NewCatchmentGauges(r *obs.Registry, d *cloud.Deployment) *CatchmentGauges {
	g := &CatchmentGauges{share: make(map[cloud.PoPID]*obs.Gauge, len(d.PoPs))}
	for _, p := range d.PoPs {
		g.share[p.ID] = r.Gauge("catchment_pop_share",
			"share of anycast traffic volume landing at this PoP",
			obs.L("pop", strconv.Itoa(int(p.ID))))
	}
	g.inflated = r.Gauge("catchment_inflated_frac",
		"traffic-weighted share landing beyond the inflation threshold")
	g.ugs = r.Gauge("catchment_ugs", "user groups with an anycast route")
	return g
}

// Set publishes one catchment. PoPs absent from the catchment (no
// traffic, or down) read as share 0. A nil catchment no-ops.
func (g *CatchmentGauges) Set(c *Catchment) {
	if g == nil || c == nil {
		return
	}
	for id, gauge := range g.share {
		gauge.Set(c.PoPShare[id])
	}
	g.inflated.Set(c.InflatedFrac)
	g.ugs.Set(float64(c.UGs))
}
