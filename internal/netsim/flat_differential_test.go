package netsim

// Differential property tests for the flat (slice/CSR) world caches:
// the dense rows must agree with the map-shaped public views and with a
// fresh world on random topologies, across day walks and chaos events,
// and the CacheStats counters must account for every hit, miss, and
// invalidation the flat layout performs.

import (
	"slices"
	"testing"
)

func TestFlatDifferentialSliceVsMapSemantics(t *testing.T) {
	daySeqs := [][]int{
		{0, 3, 1},
		{4, 4, 9},
		{7, 0, 2},
	}
	for trial := int64(0); trial < 3; trial++ {
		w, fresh := diffWorldPair(t, trial)
		all := w.Deploy.AllPeeringIDs()
		asns := sampleASNs(w.Graph, 8)

		for _, day := range daySeqs[trial] {
			w.SetDay(day)
			fw := fresh(day)
			for _, asn := range asns {
				ids, err1 := w.CompliantIngressIDs(asn)
				m, err2 := w.PolicyCompliant(asn)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("trial %d day %d AS %v: flat/map err diverge: %v vs %v",
						trial, day, asn, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if !slices.IsSorted(ids) {
					t.Fatalf("trial %d day %d AS %v: compliant row not sorted: %v",
						trial, day, asn, ids)
				}
				if len(ids) != len(m) {
					t.Fatalf("trial %d day %d AS %v: flat row has %d ids, map %d",
						trial, day, asn, len(ids), len(m))
				}
				for _, id := range ids {
					if !m[id] {
						t.Fatalf("trial %d day %d AS %v: ingress %d in flat row but not map",
							trial, day, asn, id)
					}
				}
				fids, err := fw.CompliantIngressIDs(asn)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(ids, fids) {
					t.Fatalf("trial %d day %d AS %v: cached flat row != fresh flat row",
						trial, day, asn)
				}

				// prefScore memo: second read must be a pure hit with an
				// identical value.
				ing := all[int(asn)%len(all)]
				s0 := w.CacheStats()
				v1 := w.prefScore(asn, ing)
				v2 := w.prefScore(asn, ing)
				s1 := w.CacheStats()
				if v1 != v2 {
					t.Fatalf("trial %d AS %v ing %d: prefScore not stable: %v vs %v",
						trial, asn, ing, v1, v2)
				}
				if hits := s1.PrefScoreHits - s0.PrefScoreHits; hits < 1 {
					t.Fatalf("trial %d AS %v: repeated prefScore recorded %d hits, want >=1",
						trial, asn, hits)
				}
			}
		}
	}
}

func TestFlatDifferentialResolveCacheStats(t *testing.T) {
	w, _ := diffWorldPair(t, 11)
	all := w.Deploy.AllPeeringIDs()

	s0 := w.CacheStats()
	if _, err := w.ResolveIngress(all); err != nil {
		t.Fatal(err)
	}
	s1 := w.CacheStats()
	if s1.ResolveMisses != s0.ResolveMisses+1 {
		t.Fatalf("first resolve: misses %d -> %d, want +1", s0.ResolveMisses, s1.ResolveMisses)
	}

	// A permuted peering list is the same canonical set: must hit, not
	// miss — the hashed-bucket lookup is order-insensitive.
	perm := slices.Clone(all)
	slices.Reverse(perm)
	a, err := w.ResolveIngress(perm)
	if err != nil {
		t.Fatal(err)
	}
	s2 := w.CacheStats()
	if s2.ResolveHits != s1.ResolveHits+1 || s2.ResolveMisses != s1.ResolveMisses {
		t.Fatalf("permuted resolve: hits %d->%d misses %d->%d, want exactly one hit",
			s1.ResolveHits, s2.ResolveHits, s1.ResolveMisses, s2.ResolveMisses)
	}
	b, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if !routesEqual(a, b) {
		t.Fatal("permuted resolve returned different routes than canonical order")
	}

	// BestIngressLatency: first query per (AS, metro) misses, repeat hits.
	asn := sampleASNs(w.Graph, 1)[0]
	metro := w.Graph.AS(asn).Metros[0]
	s3 := w.CacheStats()
	if _, _, err := w.BestIngressLatency(asn, metro); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.BestIngressLatency(asn, metro); err != nil {
		t.Fatal(err)
	}
	s4 := w.CacheStats()
	if s4.BestIngressMisses-s3.BestIngressMisses != 1 || s4.BestIngressHits-s3.BestIngressHits != 1 {
		t.Fatalf("best-ingress pair: misses +%d hits +%d, want +1/+1",
			s4.BestIngressMisses-s3.BestIngressMisses, s4.BestIngressHits-s3.BestIngressHits)
	}
}

func TestFlatDifferentialChaosInvalidations(t *testing.T) {
	w, fresh := diffWorldPair(t, 13)
	all := w.Deploy.AllPeeringIDs()
	asn := sampleASNs(w.Graph, 1)[0]

	// Warm every cache the events should invalidate.
	if _, err := w.ResolveIngress(all); err != nil {
		t.Fatal(err)
	}
	w.prefScore(asn, all[1])
	metro := w.Graph.AS(asn).Metros[0]
	if _, _, err := w.BestIngressLatency(asn, metro); err != nil {
		t.Fatal(err)
	}

	events := []Event{
		{Kind: EventPeeringDown, Ingress: all[0]},
		{Kind: EventPrefFlip, AS: asn, Ingress: all[1]},
		{Kind: EventLatencySpike, Ingress: all[1%len(all)], Ms: 25},
		{Kind: EventPeeringUp, Ingress: all[0]},
	}
	s0 := w.CacheStats()
	for _, ev := range events {
		if err := w.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	s1 := w.CacheStats()
	if s1.ResolveInvalidations <= s0.ResolveInvalidations {
		t.Fatal("peering churn did not invalidate any resolve entries")
	}
	if s1.PrefScoreInvalidations != s0.PrefScoreInvalidations+1 {
		t.Fatalf("pref flip invalidations +%d, want +1 (warmed row)",
			s1.PrefScoreInvalidations-s0.PrefScoreInvalidations)
	}

	// After the identical event history, flat caches agree with a fresh
	// twin on every surface.
	fw := fresh(0)
	for _, ev := range events {
		if err := fw.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	a, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if !routesEqual(a, b) {
		t.Fatal("flat caches diverge from fresh world after chaos events")
	}
	am, ai, aerr := w.BestIngressLatency(asn, metro)
	bm, bi, berr := fw.BestIngressLatency(asn, metro)
	if (aerr == nil) != (berr == nil) || am != bm || ai != bi {
		t.Fatalf("BestIngressLatency diverges after chaos: (%v,%v,%v) vs (%v,%v,%v)",
			am, ai, aerr, bm, bi, berr)
	}
	ids, err := w.CompliantIngressIDs(asn)
	if err != nil {
		t.Fatal(err)
	}
	fids, err := fw.CompliantIngressIDs(asn)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ids, fids) {
		t.Fatal("compliant rows diverge after chaos events")
	}
}
