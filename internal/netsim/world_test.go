package netsim

import (
	"math"
	"testing"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 21, Tier1: 5, Tier2: 30, Stubs: 300,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.35, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{Name: "test", PoPMetros: 15, PeerFrac: 0.8, TransitProviders: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(g, d, 77)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// firstStubUG returns a stub AS and one of its metros.
func firstStubUG(t *testing.T, w *World) (topology.ASN, string) {
	t.Helper()
	for _, n := range w.Graph.ASNs() {
		a := w.Graph.AS(n)
		if a.Tier == topology.TierStub && len(a.Metros) > 0 {
			return n, a.Metros[0]
		}
	}
	t.Fatal("no stub AS found")
	return 0, ""
}

func TestLatencyDeterministic(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	ing := w.Deploy.AllPeeringIDs()[0]
	a, err := w.LatencyMs(asn, metro, ing)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.LatencyMs(asn, metro, ing)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("latency not deterministic: %v vs %v", a, b)
	}
	// And across World instances with the same seed.
	w2, err := New(w.Graph, w.Deploy, 77)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := w2.LatencyMs(asn, metro, ing)
	if a != c {
		t.Errorf("latency differs across same-seed worlds: %v vs %v", a, c)
	}
	// Different seed should (almost surely) differ.
	w3, _ := New(w.Graph, w.Deploy, 78)
	d, _ := w3.LatencyMs(asn, metro, ing)
	if a == d {
		t.Errorf("latency identical across different seeds (suspicious)")
	}
}

func TestLatencyPositiveAndGroundedInGeography(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	for _, ing := range w.Deploy.AllPeeringIDs() {
		l, err := w.BaseLatencyMs(asn, metro, ing)
		if err != nil {
			t.Fatal(err)
		}
		if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("latency %v for ingress %d", l, ing)
		}
		if l > 2000 {
			t.Fatalf("latency %v absurdly high", l)
		}
	}
}

func TestLatencyErrors(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	if _, err := w.BaseLatencyMs(asn, metro, 99999); err == nil {
		t.Error("unknown ingress should fail")
	}
	if _, err := w.BaseLatencyMs(asn, "zzz", w.Deploy.AllPeeringIDs()[0]); err == nil {
		t.Error("unknown metro should fail")
	}
}

func TestDayDriftChangesLatency(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	ing := w.Deploy.AllPeeringIDs()[0]
	base, _ := w.LatencyMs(asn, metro, ing)
	w.SetDay(5)
	d5, _ := w.LatencyMs(asn, metro, ing)
	w.SetDay(0)
	back, _ := w.LatencyMs(asn, metro, ing)
	if base != back {
		t.Error("day 0 latency must be reproducible after SetDay round trip")
	}
	if base == d5 {
		t.Error("latency should drift across days")
	}
	// Drift is bounded unless a failure occurred.
	w.SetDay(5)
	if !w.PathFailed(asn, metro, ing) {
		if math.Abs(d5-base) > DefaultConfig().DriftMs+1e-9 {
			t.Errorf("non-failure drift %v exceeds bound", d5-base)
		}
	}
}

func TestFailureRate(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	ids := w.Deploy.AllPeeringIDs()
	fails, total := 0, 0
	for day := 1; day <= 40; day++ {
		w.SetDay(day)
		for _, ing := range ids {
			total++
			if w.PathFailed(asn, metro, ing) {
				fails++
			}
		}
	}
	rate := float64(fails) / float64(total)
	want := DefaultConfig().DailyFailProb
	if rate < want/4 || rate > want*4 {
		t.Errorf("failure rate %.4f far from configured %.4f", rate, want)
	}
}

func TestPolicyCompliantMatchesBGP(t *testing.T) {
	w := testWorld(t)
	inj, err := w.Deploy.Injections(w.Deploy.AllPeeringIDs())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, n := range w.Graph.ASNs() {
		if w.Graph.AS(n).Tier != topology.TierStub {
			continue
		}
		fast, err := w.PolicyCompliant(n)
		if err != nil {
			t.Fatal(err)
		}
		slow := bgp.ReachableIngresses(w.Graph, n, inj)
		if len(fast) != len(slow) {
			t.Fatalf("AS %v: fast=%d slow=%d compliant ingresses", n, len(fast), len(slow))
		}
		for ing := range slow {
			if !fast[ing] {
				t.Fatalf("AS %v: fast set missing ingress %d", n, ing)
			}
		}
		checked++
		if checked >= 60 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no stubs checked")
	}
}

func TestResolveIngressConsistentWithCompliance(t *testing.T) {
	w := testWorld(t)
	// Advertise over a subset of peerings.
	all := w.Deploy.AllPeeringIDs()
	subset := all[:len(all)/3]
	sel, err := w.ResolveIngress(subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("no AS selected a route")
	}
	inSubset := make(map[bgp.IngressID]bool, len(subset))
	for _, id := range subset {
		inSubset[id] = true
	}
	for n, r := range sel {
		if !inSubset[r.Ingress] {
			t.Fatalf("AS %v selected ingress %d not in the advertised subset", n, r.Ingress)
		}
		pc, err := w.PolicyCompliant(n)
		if err != nil {
			t.Fatal(err)
		}
		if !pc[r.Ingress] {
			t.Fatalf("AS %v selected non-policy-compliant ingress %d", n, r.Ingress)
		}
	}
}

func TestResolveIngressDeterministic(t *testing.T) {
	w := testWorld(t)
	all := w.Deploy.AllPeeringIDs()
	a, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ")
	}
	for n, ra := range a {
		if b[n] != ra {
			t.Fatalf("AS %v selection differs across runs", n)
		}
	}
}

func TestHiddenPreferencesVaryAcrossASes(t *testing.T) {
	// Two ASes with the same tied candidates should not always pick the
	// same ingress — hidden preferences are per-AS.
	w := testWorld(t)
	cands := []bgp.Route{
		{Ingress: 1, PathLen: 2, Class: bgp.ClassProvider, Via: 1},
		{Ingress: 2, PathLen: 2, Class: bgp.ClassProvider, Via: 2},
		{Ingress: 3, PathLen: 2, Class: bgp.ClassProvider, Via: 3},
	}
	tb := w.TieBreaker()
	picks := make(map[int]int)
	for asn := topology.ASN(10000); asn < 10100; asn++ {
		picks[tb(asn, cands)]++
	}
	if len(picks) < 2 {
		t.Errorf("all 100 ASes picked the same tied candidate: %v", picks)
	}
}

func TestBestIngressLatency(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	best, ing, err := w.BestIngressLatency(asn, metro)
	if err != nil {
		t.Fatal(err)
	}
	if ing == bgp.InvalidIngress {
		t.Fatal("no best ingress")
	}
	pc, _ := w.PolicyCompliant(asn)
	if !pc[ing] {
		t.Error("best ingress not policy compliant")
	}
	for i := range pc {
		l, err := w.BaseLatencyMs(asn, metro, i)
		if err != nil {
			t.Fatal(err)
		}
		if l < best {
			t.Errorf("ingress %d latency %v below reported best %v", i, l, best)
		}
	}
}

func TestAnycastInflationExists(t *testing.T) {
	// Under the full-anycast advertisement some UGs must land on
	// ingresses notably worse than their best — the phenomenon PAINTER
	// exists to fix. Check that at least 10% of stubs have >10ms headroom.
	w := testWorld(t)
	sel, err := w.ResolveIngress(w.Deploy.AllPeeringIDs())
	if err != nil {
		t.Fatal(err)
	}
	total, inflated := 0, 0
	for _, n := range w.Graph.ASNs() {
		a := w.Graph.AS(n)
		if a.Tier != topology.TierStub {
			continue
		}
		r, ok := sel[n]
		if !ok {
			continue
		}
		metro := a.Metros[0]
		anycast, err := w.BaseLatencyMs(n, metro, r.Ingress)
		if err != nil {
			t.Fatal(err)
		}
		best, _, err := w.BestIngressLatency(n, metro)
		if err != nil {
			continue
		}
		total++
		if anycast-best > 10 {
			inflated++
		}
	}
	if total == 0 {
		t.Fatal("no stubs resolved")
	}
	frac := float64(inflated) / float64(total)
	if frac < 0.10 {
		t.Errorf("only %.1f%% of UGs see >10ms anycast inflation; world too benign for the experiments", frac*100)
	}
	if frac > 0.95 {
		t.Errorf("%.1f%% inflated; anycast should be good for most users (§3)", frac*100)
	}
}

func TestNewValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := New(nil, w.Deploy, 1); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := New(w.Graph, nil, 1); err == nil {
		t.Error("nil deployment should fail")
	}
}

func TestAnalyzeCatchment(t *testing.T) {
	w := testWorld(t)
	ugs, err := usergroup.Build(w.Graph, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := AnalyzeCatchment(w, ugs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.UGs == 0 {
		t.Fatal("no UGs analyzed")
	}
	// PoP shares form a distribution.
	var sum float64
	for _, s := range c.PoPShare {
		if s < 0 {
			t.Error("negative share")
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("PoP shares sum to %v", sum)
	}
	// Our AS-level substrate is more hostile than the real Internet
	// (per-AS destination routing cannot express per-customer hot-potato
	// egress, so whole ISPs land at single PoPs) — see DESIGN.md. The
	// diagnostic still must show anycast working for a sizable share and
	// inflation bounded by intra-continental distances.
	if c.InflatedFrac > 0.9 {
		t.Errorf("%.0f%% of traffic inflated >%v km; world implausibly hostile", 100*c.InflatedFrac, c.ThresholdKm)
	}
	if q, err := c.InflationKm.Quantile(0.5); err != nil || q > 6000 {
		t.Errorf("median inflation %v km implausible (%v)", q, err)
	}
	// Latency headroom must be non-negative and positive somewhere.
	if mx, _ := c.InflationMs.Quantile(1); mx <= 0 {
		t.Error("no UG has latency headroom; PAINTER would be pointless here")
	}
	top := c.TopPoPs(3)
	if len(top) == 0 || top[0].Share <= 0 {
		t.Fatal("TopPoPs empty")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Share > top[i-1].Share {
			t.Error("TopPoPs not descending")
		}
	}
}
