package netsim

// Tests for the EventImpact query surface: every event kind maps to the
// expected touched-ingress set and classification, and invalid
// references error exactly as ApplyEvent would.

import (
	"testing"

	"painter/internal/bgp"
	"painter/internal/topology"
)

func TestEventImpactPerKind(t *testing.T) {
	w := testWorld(t)
	ing := w.Deploy.AllPeeringIDs()[0]
	pop := w.Deploy.PoPs[0].ID
	popIngs := w.Deploy.PeeringsAt(pop)
	as := w.Graph.ASNs()[0]

	cases := []struct {
		name        string
		ev          Event
		wantIngs    []bgp.IngressID
		routing     bool
		latency     bool
		trafficOnly bool
		wantAS      topology.ASN
	}{
		{"peering-down", Event{Kind: EventPeeringDown, Ingress: ing},
			[]bgp.IngressID{ing}, true, true, false, 0},
		{"peering-up", Event{Kind: EventPeeringUp, Ingress: ing},
			[]bgp.IngressID{ing}, true, true, false, 0},
		{"pop-down", Event{Kind: EventPoPDown, PoP: pop},
			popIngs, true, true, false, 0},
		{"pop-up", Event{Kind: EventPoPUp, PoP: pop},
			popIngs, true, true, false, 0},
		{"latency-spike", Event{Kind: EventLatencySpike, Ingress: ing, Ms: 40},
			[]bgp.IngressID{ing}, false, true, false, 0},
		{"probe-loss", Event{Kind: EventProbeLoss, Ingress: ing, Pct: 20},
			[]bgp.IngressID{ing}, false, false, true, 0},
		{"pref-flip", Event{Kind: EventPrefFlip, AS: as, Ingress: ing},
			[]bgp.IngressID{ing}, true, true, false, as},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			imp, err := w.EventImpact(tc.ev)
			if err != nil {
				t.Fatal(err)
			}
			if len(imp.Ingresses) != len(tc.wantIngs) {
				t.Fatalf("ingresses = %v, want %v", imp.Ingresses, tc.wantIngs)
			}
			for i, id := range tc.wantIngs {
				if imp.Ingresses[i] != id {
					t.Fatalf("ingresses = %v, want %v", imp.Ingresses, tc.wantIngs)
				}
			}
			if imp.Routing != tc.routing || imp.Latency != tc.latency || imp.TrafficOnly != tc.trafficOnly {
				t.Errorf("classification routing=%v latency=%v trafficOnly=%v, want %v/%v/%v",
					imp.Routing, imp.Latency, imp.TrafficOnly, tc.routing, tc.latency, tc.trafficOnly)
			}
			if imp.AS != tc.wantAS {
				t.Errorf("AS = %v, want %v", imp.AS, tc.wantAS)
			}
		})
	}
}

func TestEventImpactValidatesLikeApplyEvent(t *testing.T) {
	w := testWorld(t)
	bad := []Event{
		{Kind: EventPeeringDown, Ingress: 1 << 20},
		{Kind: EventPoPDown, PoP: 1 << 20},
		{Kind: EventLatencySpike, Ingress: 1 << 20},
		{Kind: EventProbeLoss, Ingress: 1 << 20},
		{Kind: EventPrefFlip, AS: 1 << 20, Ingress: w.Deploy.AllPeeringIDs()[0]},
		{Kind: EventKind(99)},
	}
	for _, ev := range bad {
		if _, err := w.EventImpact(ev); err == nil {
			t.Errorf("EventImpact(%v) accepted an invalid event", ev)
		}
		if err := w.ApplyEvent(ev); err == nil {
			t.Errorf("ApplyEvent(%v) accepted an invalid event (impact/apply must agree)", ev)
		}
	}
}

// TestEventImpactPoPShared asserts PoP impacts do not alias deployment
// state: mutating the returned slice must not corrupt PeeringsAt.
func TestEventImpactPoPSliceIsFresh(t *testing.T) {
	w := testWorld(t)
	pop := w.Deploy.PoPs[0].ID
	imp, err := w.EventImpact(Event{Kind: EventPoPDown, PoP: pop})
	if err != nil {
		t.Fatal(err)
	}
	if len(imp.Ingresses) == 0 {
		t.Skip("PoP 0 has no peerings")
	}
	imp.Ingresses[0] = bgp.InvalidIngress
	if w.Deploy.PeeringsAt(pop)[0] == bgp.InvalidIngress {
		t.Error("EventImpact returned a slice aliasing the deployment")
	}
}
