package netsim

// Differential property test: a cached, day-advanced world must answer
// every query identically to a freshly constructed world set directly to
// the same day. Any divergence means a cache survived an invalidation
// boundary it should not have.

import (
	"testing"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/topology"
)

// diffWorldPair builds a cached world and a factory for fresh worlds
// over the same randomized (per-trial) topology and deployment.
func diffWorldPair(t *testing.T, trial int64) (*World, func(day int) *World) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Seed: 100 + trial, Tier1: 3, Tier2: 10, Stubs: 60,
		MeanStubProviders: 2.2, Tier2PeerProb: 0.3,
		EnterpriseFrac: 0.35, ContentFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{
		Name: "diff", PoPMetros: 6, PeerFrac: 0.7, TransitProviders: 2, Seed: 200 + trial,
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := 300 + trial
	w, err := New(g, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func(day int) *World {
		fw, err := New(g, d, seed)
		if err != nil {
			t.Fatal(err)
		}
		fw.SetDay(day)
		return fw
	}
	return w, fresh
}

// sampleASNs picks a deterministic spread of ASes with metros.
func sampleASNs(g *topology.Graph, n int) []topology.ASN {
	var out []topology.ASN
	asns := g.ASNs()
	step := len(asns)/n + 1
	for i := 0; i < len(asns) && len(out) < n; i += step {
		if a := g.AS(asns[i]); a != nil && len(a.Metros) > 0 {
			out = append(out, asns[i])
		}
	}
	return out
}

func TestDifferentialCachedVsFreshWorld(t *testing.T) {
	// Each trial: a different topology/deployment/seed and a different
	// day walk (forward jumps, repeats, and backward jumps).
	daySeqs := [][]int{
		{0, 1, 2, 3, 7},
		{5, 5, 0, 12, 3},
		{2, 9, 9, 1, 30},
	}
	for trial := int64(0); trial < 3; trial++ {
		w, fresh := diffWorldPair(t, trial)
		all := w.Deploy.AllPeeringIDs()
		subset := all[:(len(all)+1)/2]
		asns := sampleASNs(w.Graph, 8)

		for _, day := range daySeqs[trial] {
			w.SetDay(day)
			fw := fresh(day)

			for _, peerings := range [][]bgp.IngressID{all, subset} {
				a, err := w.ResolveIngress(peerings)
				if err != nil {
					t.Fatal(err)
				}
				b, err := fw.ResolveIngress(peerings)
				if err != nil {
					t.Fatal(err)
				}
				if !routesEqual(a, b) {
					t.Fatalf("trial %d day %d: cached ResolveIngress(%d peerings) != fresh",
						trial, day, len(peerings))
				}
			}

			for _, asn := range asns {
				ap, err1 := w.PolicyCompliant(asn)
				bp, err2 := fw.PolicyCompliant(asn)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("trial %d day %d AS %v: PolicyCompliant errs diverge: %v vs %v",
						trial, day, asn, err1, err2)
				}
				if len(ap) != len(bp) {
					t.Fatalf("trial %d day %d AS %v: PolicyCompliant sizes differ", trial, day, asn)
				}
				for id, v := range ap {
					if bp[id] != v {
						t.Fatalf("trial %d day %d AS %v ing %d: PolicyCompliant diverges", trial, day, asn, id)
					}
				}

				metro := w.Graph.AS(asn).Metros[0]
				am, ai, aerr := w.BestIngressLatency(asn, metro)
				bm, bi, berr := fw.BestIngressLatency(asn, metro)
				if (aerr == nil) != (berr == nil) || am != bm || ai != bi {
					t.Fatalf("trial %d day %d AS %v: BestIngressLatency (%v,%v,%v) != (%v,%v,%v)",
						trial, day, asn, am, ai, aerr, bm, bi, berr)
				}

				for _, ing := range []bgp.IngressID{all[0], all[len(all)-1]} {
					al, err1 := w.LatencyMs(asn, metro, ing)
					bl, err2 := fw.LatencyMs(asn, metro, ing)
					if (err1 == nil) != (err2 == nil) || al != bl {
						t.Fatalf("trial %d day %d AS %v ing %d: LatencyMs %v (%v) != %v (%v)",
							trial, day, asn, ing, al, err1, bl, err2)
					}
				}
			}
		}
	}
}

// TestDifferentialAfterEvents extends the property across the event
// layer: a world that went through fail/flip/recover cycles must agree
// with a fresh world put in the same overlay state by the same events.
func TestDifferentialAfterEvents(t *testing.T) {
	w, fresh := diffWorldPair(t, 7)
	all := w.Deploy.AllPeeringIDs()
	events := []Event{
		{Kind: EventPeeringDown, Ingress: all[0]},
		{Kind: EventPrefFlip, AS: sampleASNs(w.Graph, 1)[0], Ingress: all[1]},
		{Kind: EventLatencySpike, Ingress: all[2%len(all)], Ms: 33},
		{Kind: EventPeeringUp, Ingress: all[0]},
	}
	// Warm the cached world's caches first, then apply events.
	if _, err := w.ResolveIngress(all); err != nil {
		t.Fatal(err)
	}
	w.SetDay(4)
	if _, err := w.ResolveIngress(all); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := w.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}

	fw := fresh(4)
	for _, ev := range events {
		if err := fw.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}

	a, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if !routesEqual(a, b) {
		t.Fatal("cached world diverges from fresh world after identical event history")
	}
	for _, asn := range sampleASNs(w.Graph, 5) {
		metro := w.Graph.AS(asn).Metros[0]
		am, ai, aerr := w.BestIngressLatency(asn, metro)
		bm, bi, berr := fw.BestIngressLatency(asn, metro)
		if (aerr == nil) != (berr == nil) || am != bm || ai != bi {
			t.Fatalf("AS %v: BestIngressLatency diverges after events", asn)
		}
		al, _ := w.LatencyMs(asn, metro, all[2%len(all)])
		bl, _ := fw.LatencyMs(asn, metro, all[2%len(all)])
		if al != bl {
			t.Fatalf("AS %v: LatencyMs diverges after events", asn)
		}
	}
}
