package netsim

import (
	"fmt"
	"sort"
	"sync"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/stats"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// Catchment describes where anycast traffic lands and how inflated the
// landing is — the diagnostic view behind the paper's motivation (§1,
// §2.2: anycast can inflate paths; "unpredictable mappings from clients
// to PoPs").
type Catchment struct {
	// PoPShare is each PoP's share of anycast traffic volume.
	PoPShare map[cloud.PoPID]float64
	// InflationKm is, per UG, how much farther (km) the anycast landing
	// PoP is than the UG's nearest policy-compliant PoP.
	InflationKm *stats.CDF
	// InflationMs is the latency headroom: anycast latency minus the
	// best policy-compliant ingress latency.
	InflationMs *stats.CDF
	// InflatedFrac is the traffic-weighted share landing >ThresholdKm
	// beyond the nearest compliant PoP.
	InflatedFrac float64
	// ThresholdKm is the inflation threshold used for InflatedFrac.
	ThresholdKm float64
	// UGs counted.
	UGs int
}

// ugCatchRow is one UG's retained catchment contribution: everything
// AnalyzeCatchment derives from the world for that UG. Rows depend only
// on the UG's selected anycast route and its best live compliant
// ingress, which is what lets CatchmentAnalyzer recompute just the rows
// an event can move.
type ugCatchRow struct {
	ok      bool // UG has an anycast route
	pop     cloud.PoPID
	extraKm float64
	extraMs float64
	hasMs   bool
}

// catchRow computes one UG's row given its selected anycast route (ok
// reports whether it has one).
func (w *World) catchRow(u usergroup.UG, r bgp.Route, ok bool) (ugCatchRow, error) {
	if !ok {
		return ugCatchRow{}, nil
	}
	pop, err := w.Deploy.PoPOfPeering(r.Ingress)
	if err != nil {
		return ugCatchRow{}, err
	}
	landKm := geo.DistanceKm(u.Coord, pop.Coord)
	// Nearest policy-compliant PoP (structural: liveness-independent).
	compliant, err := w.CompliantIngressIDs(u.ASN)
	if err != nil {
		return ugCatchRow{}, err
	}
	nearest := landKm
	for _, ing := range compliant {
		p, err := w.Deploy.PoPOfPeering(ing)
		if err != nil {
			return ugCatchRow{}, err
		}
		if d := geo.DistanceKm(u.Coord, p.Coord); d < nearest {
			nearest = d
		}
	}
	row := ugCatchRow{ok: true, pop: pop.ID, extraKm: landKm - nearest}
	anyMs, err := w.BaseLatencyMs(u.ASN, u.Metro, r.Ingress)
	if err != nil {
		return ugCatchRow{}, err
	}
	if bestMs, _, err := w.BestIngressLatency(u.ASN, u.Metro); err == nil {
		row.hasMs = true
		if extra := anyMs - bestMs; extra > 0 {
			row.extraMs = extra
		}
	}
	return row, nil
}

// assembleCatchment folds per-UG rows (in UG order) into the aggregate
// view.
func assembleCatchment(ugs *usergroup.Set, rows []ugCatchRow, thresholdKm float64) (*Catchment, error) {
	c := &Catchment{
		PoPShare:    make(map[cloud.PoPID]float64),
		ThresholdKm: thresholdKm,
	}
	var kms, ms []float64
	var totalW, inflatedW float64
	for i, u := range ugs.UGs {
		row := rows[i]
		if !row.ok {
			continue
		}
		c.PoPShare[row.pop] += u.Weight
		totalW += u.Weight
		kms = append(kms, row.extraKm)
		if row.extraKm > thresholdKm {
			inflatedW += u.Weight
		}
		if row.hasMs {
			ms = append(ms, row.extraMs)
		}
		c.UGs++
	}
	if c.UGs == 0 {
		return nil, fmt.Errorf("netsim: no UG has an anycast route")
	}
	if totalW > 0 {
		for id := range c.PoPShare {
			c.PoPShare[id] /= totalW
		}
		c.InflatedFrac = inflatedW / totalW
	}
	c.InflationKm = stats.NewCDF(kms)
	c.InflationMs = stats.NewCDF(ms)
	return c, nil
}

// AnalyzeCatchment computes the anycast catchment of a world for a UG
// population. thresholdKm <= 0 defaults to 1,000 km (the paper's "90% of
// traffic reaches a PoP within 1,000 km of the closest possible").
func AnalyzeCatchment(w *World, ugs *usergroup.Set, thresholdKm float64) (*Catchment, error) {
	if thresholdKm <= 0 {
		thresholdKm = 1000
	}
	res, err := w.ResolveIngressResult(w.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, err
	}
	rows := make([]ugCatchRow, len(ugs.UGs))
	for i, u := range ugs.UGs {
		r, ok := res.Route(u.ASN)
		if rows[i], err = w.catchRow(u, r, ok); err != nil {
			return nil, err
		}
	}
	return assembleCatchment(ugs, rows, thresholdKm)
}

// CatchmentAnalyzer maintains a catchment incrementally across world
// events: it retains the previous anycast Result and per-UG rows, and
// each Update recomputes only the rows an intervening change can move —
// UGs whose anycast selection shifted (via AnycastShift's changed-AS
// set, i.e. the delta engine's catchment cone) plus UGs whose best
// compliant ingress may have changed because an ingress in their
// compliant set went down or came up. Equivalence with a fresh
// AnalyzeCatchment is pinned by the differential tests.
//
// Like the world's query methods it must not run concurrently with
// ApplyEvent/SetDay; Update itself is not safe for concurrent use.
type CatchmentAnalyzer struct {
	w           *World
	ugs         *usergroup.Set
	thresholdKm float64

	rows []ugCatchRow
	prev *bgp.Result
	byAS map[topology.ASN][]int32

	mu      sync.Mutex
	touched map[bgp.IngressID]bool // down/up since last Update

	cancel func()
}

// NewCatchmentAnalyzer subscribes to the world's events and returns an
// analyzer ready for its first Update (which computes every row).
// Callers must Close it to release the subscription.
func NewCatchmentAnalyzer(w *World, ugs *usergroup.Set, thresholdKm float64) *CatchmentAnalyzer {
	if thresholdKm <= 0 {
		thresholdKm = 1000
	}
	a := &CatchmentAnalyzer{
		w:           w,
		ugs:         ugs,
		thresholdKm: thresholdKm,
		rows:        make([]ugCatchRow, len(ugs.UGs)),
		byAS:        make(map[topology.ASN][]int32, len(ugs.UGs)),
		touched:     make(map[bgp.IngressID]bool),
	}
	for i, u := range ugs.UGs {
		a.byAS[u.ASN] = append(a.byAS[u.ASN], int32(i))
	}
	a.cancel = w.Subscribe(a.onEvent)
	return a
}

// Close releases the event subscription.
func (a *CatchmentAnalyzer) Close() {
	if a.cancel != nil {
		a.cancel()
		a.cancel = nil
	}
}

// onEvent records the ingresses whose liveness changed: those are the
// only changes that can move a row other than through the anycast
// selection itself (rows read BaseLatencyMs, so spikes and probe loss
// never touch them, and pref flips surface through the resolve diff).
func (a *CatchmentAnalyzer) onEvent(ev Event) {
	switch ev.Kind {
	case EventPeeringDown, EventPeeringUp:
		a.mu.Lock()
		a.touched[ev.Ingress] = true
		a.mu.Unlock()
	case EventPoPDown, EventPoPUp:
		a.mu.Lock()
		for _, id := range a.w.Deploy.PeeringsAt(ev.PoP) {
			a.touched[id] = true
		}
		a.mu.Unlock()
	}
}

// Update refreshes the retained rows against the current world state
// and returns the catchment. The first call (and any call after an
// error) computes every row; later calls recompute only the rows the
// intervening events can have moved.
func (a *CatchmentAnalyzer) Update() (*Catchment, error) {
	res, changed, err := a.w.AnycastShift(a.prev)
	if err != nil {
		a.prev = nil
		return nil, err
	}
	a.mu.Lock()
	touched := a.touched
	a.touched = make(map[bgp.IngressID]bool)
	a.mu.Unlock()

	full := a.prev == nil
	dirty := make([]bool, len(a.rows))
	if !full {
		for _, as := range changed {
			for _, i := range a.byAS[as] {
				dirty[i] = true
			}
		}
		if len(touched) > 0 {
			for i, u := range a.ugs.UGs {
				if dirty[i] {
					continue
				}
				row, err := a.w.CompliantIngressIDs(u.ASN)
				if err != nil {
					a.prev = nil
					return nil, err
				}
				for id := range touched {
					if containsIngress(row, id) {
						dirty[i] = true
						break
					}
				}
			}
		}
	}
	for i, u := range a.ugs.UGs {
		if !full && !dirty[i] {
			continue
		}
		r, ok := res.Route(u.ASN)
		if a.rows[i], err = a.w.catchRow(u, r, ok); err != nil {
			a.prev = nil
			return nil, err
		}
	}
	a.prev = res
	return assembleCatchment(a.ugs, a.rows, a.thresholdKm)
}

// TopPoPs returns the n busiest PoPs by anycast share, descending.
type PoPShareEntry struct {
	PoP   cloud.PoPID
	Share float64
}

// TopPoPs lists the busiest PoPs.
func (c *Catchment) TopPoPs(n int) []PoPShareEntry {
	out := make([]PoPShareEntry, 0, len(c.PoPShare))
	for id, s := range c.PoPShare {
		out = append(out, PoPShareEntry{id, s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].PoP < out[j].PoP
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
