package netsim

import (
	"fmt"
	"sort"

	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/stats"
	"painter/internal/usergroup"
)

// Catchment describes where anycast traffic lands and how inflated the
// landing is — the diagnostic view behind the paper's motivation (§1,
// §2.2: anycast can inflate paths; "unpredictable mappings from clients
// to PoPs").
type Catchment struct {
	// PoPShare is each PoP's share of anycast traffic volume.
	PoPShare map[cloud.PoPID]float64
	// InflationKm is, per UG, how much farther (km) the anycast landing
	// PoP is than the UG's nearest policy-compliant PoP.
	InflationKm *stats.CDF
	// InflationMs is the latency headroom: anycast latency minus the
	// best policy-compliant ingress latency.
	InflationMs *stats.CDF
	// InflatedFrac is the traffic-weighted share landing >ThresholdKm
	// beyond the nearest compliant PoP.
	InflatedFrac float64
	// ThresholdKm is the inflation threshold used for InflatedFrac.
	ThresholdKm float64
	// UGs counted.
	UGs int
}

// AnalyzeCatchment computes the anycast catchment of a world for a UG
// population. thresholdKm <= 0 defaults to 1,000 km (the paper's "90% of
// traffic reaches a PoP within 1,000 km of the closest possible").
func AnalyzeCatchment(w *World, ugs *usergroup.Set, thresholdKm float64) (*Catchment, error) {
	if thresholdKm <= 0 {
		thresholdKm = 1000
	}
	sel, err := w.ResolveIngress(w.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, err
	}
	c := &Catchment{
		PoPShare:    make(map[cloud.PoPID]float64),
		ThresholdKm: thresholdKm,
	}
	var kms, ms []float64
	var totalW, inflatedW float64
	for _, u := range ugs.UGs {
		r, ok := sel[u.ASN]
		if !ok {
			continue
		}
		pop, err := w.Deploy.PoPOfPeering(r.Ingress)
		if err != nil {
			return nil, err
		}
		c.PoPShare[pop.ID] += u.Weight
		totalW += u.Weight

		landKm := geo.DistanceKm(u.Coord, pop.Coord)
		// Nearest policy-compliant PoP.
		compliant, err := w.PolicyCompliant(u.ASN)
		if err != nil {
			return nil, err
		}
		nearest := landKm
		for ing := range compliant {
			p, err := w.Deploy.PoPOfPeering(ing)
			if err != nil {
				return nil, err
			}
			if d := geo.DistanceKm(u.Coord, p.Coord); d < nearest {
				nearest = d
			}
		}
		extraKm := landKm - nearest
		kms = append(kms, extraKm)
		if extraKm > thresholdKm {
			inflatedW += u.Weight
		}

		anyMs, err := w.BaseLatencyMs(u.ASN, u.Metro, r.Ingress)
		if err != nil {
			return nil, err
		}
		if bestMs, _, err := w.BestIngressLatency(u.ASN, u.Metro); err == nil {
			if extra := anyMs - bestMs; extra > 0 {
				ms = append(ms, extra)
			} else {
				ms = append(ms, 0)
			}
		}
		c.UGs++
	}
	if c.UGs == 0 {
		return nil, fmt.Errorf("netsim: no UG has an anycast route")
	}
	if totalW > 0 {
		for id := range c.PoPShare {
			c.PoPShare[id] /= totalW
		}
		c.InflatedFrac = inflatedW / totalW
	}
	c.InflationKm = stats.NewCDF(kms)
	c.InflationMs = stats.NewCDF(ms)
	return c, nil
}

// TopPoPs returns the n busiest PoPs by anycast share, descending.
type PoPShareEntry struct {
	PoP   cloud.PoPID
	Share float64
}

// TopPoPs lists the busiest PoPs.
func (c *Catchment) TopPoPs(n int) []PoPShareEntry {
	out := make([]PoPShareEntry, 0, len(c.PoPShare))
	for id, s := range c.PoPShare {
		out = append(out, PoPShareEntry{id, s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].PoP < out[j].PoP
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
