package netsim

// Tests for the world-level caches: the propagation cache (canonical
// peering-set + day keying, SetDay invalidation, drift visibility), the
// PolicyCompliant memo (copy-on-return isolation), and goroutine safety
// of the concurrent query surface.

import (
	"sync"
	"testing"

	"painter/internal/bgp"
	"painter/internal/topology"
)

func routesEqual(a, b map[topology.ASN]bgp.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestResolveCachePermutedPeeringsHit asserts that a permuted-but-equal
// peering slice resolves from the cache: the key is canonical (sorted),
// so order must not matter.
func TestResolveCachePermutedPeeringsHit(t *testing.T) {
	w := testWorld(t)
	all := w.Deploy.AllPeeringIDs()
	if len(all) < 2 {
		t.Fatal("need at least two peerings")
	}
	a, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	s0 := w.CacheStats()

	// Reverse the slice: same set, different order.
	rev := make([]bgp.IngressID, len(all))
	for i, id := range all {
		rev[len(all)-1-i] = id
	}
	b, err := w.ResolveIngress(rev)
	if err != nil {
		t.Fatal(err)
	}
	s1 := w.CacheStats()
	if s1.ResolveHits != s0.ResolveHits+1 || s1.ResolveMisses != s0.ResolveMisses {
		t.Errorf("permuted resolve: hits %d→%d misses %d→%d; want one new hit, no new miss",
			s0.ResolveHits, s1.ResolveHits, s0.ResolveMisses, s1.ResolveMisses)
	}
	if !routesEqual(a, b) {
		t.Error("permuted peering slice resolved to a different selection")
	}

	// A genuinely different set must miss.
	if _, err := w.ResolveIngress(all[:len(all)-1]); err != nil {
		t.Fatal(err)
	}
	s2 := w.CacheStats()
	if s2.ResolveMisses != s1.ResolveMisses+1 {
		t.Errorf("subset resolve: misses %d→%d, want one new miss", s1.ResolveMisses, s2.ResolveMisses)
	}
}

// TestResolveCacheInvalidatedBySetDay asserts the Fig. 7 scenario: after
// SetDay, hidden preferences drift, so some AS must select a different
// route on at least one day — and returning to day 0 must reproduce the
// original selection exactly (the cache was dropped, not stale).
func TestResolveCacheInvalidatedBySetDay(t *testing.T) {
	w := testWorld(t)
	all := w.Deploy.AllPeeringIDs()
	day0, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for day := 1; day <= 15 && !changed; day++ {
		w.SetDay(day)
		sel, err := w.ResolveIngress(all)
		if err != nil {
			t.Fatal(err)
		}
		if !routesEqual(day0, sel) {
			changed = true
		}
	}
	if !changed {
		t.Error("route selection never drifted across days 1..15; SetDay invalidation is untestable")
	}
	w.SetDay(0)
	back, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if !routesEqual(day0, back) {
		t.Error("day-0 selection not reproduced after SetDay round-trip")
	}
}

// TestAdvanceToMovesForwardOnly verifies AdvanceTo semantics.
func TestAdvanceToMovesForwardOnly(t *testing.T) {
	w := testWorld(t)
	w.AdvanceTo(3)
	if w.Day() != 3 {
		t.Fatalf("AdvanceTo(3): day = %d", w.Day())
	}
	w.AdvanceTo(1)
	if w.Day() != 3 {
		t.Errorf("AdvanceTo(1) moved the clock backward to %d", w.Day())
	}
}

// TestPolicyCompliantReturnsIsolatedCopy asserts callers may mutate the
// returned set (the orchestrator's learning loop does) without
// corrupting the memo.
func TestPolicyCompliantReturnsIsolatedCopy(t *testing.T) {
	w := testWorld(t)
	asn, _ := firstStubUG(t, w)
	a, err := w.PolicyCompliant(asn)
	if err != nil {
		t.Fatal(err)
	}
	want := len(a)
	a[bgp.IngressID(1<<20)] = true // caller-side mutation
	b, err := w.PolicyCompliant(asn)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != want {
		t.Errorf("memoized PolicyCompliant leaked a caller mutation: %d entries, want %d", len(b), want)
	}
}

// TestWorldQueriesConcurrent hammers the cached query surface from many
// goroutines (run under -race): concurrent first-misses must share one
// propagation run and produce the same result.
func TestWorldQueriesConcurrent(t *testing.T) {
	w := testWorld(t)
	all := w.Deploy.AllPeeringIDs()
	asn, metro := firstStubUG(t, w)

	want, err := w.ResolveIngress(all[:len(all)/2])
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Rotate the slice so goroutines present permuted views.
			perm := append(append([]bgp.IngressID{}, all[i%len(all):]...), all[:i%len(all)]...)
			if _, err := w.ResolveIngress(perm); err != nil {
				errs <- err
				return
			}
			got, err := w.ResolveIngress(all[:len(all)/2])
			if err != nil {
				errs <- err
				return
			}
			if !routesEqual(want, got) {
				t.Errorf("goroutine %d: divergent cached selection", i)
			}
			if _, err := w.PolicyCompliant(asn); err != nil {
				errs <- err
				return
			}
			if _, _, err := w.BestIngressLatency(asn, metro); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
