package netsim

// Tests for the ApplyEvent/Subscribe hook layer and its precise cache
// invalidation: failures remove exactly the affected routes, recoveries
// restore the pre-failure selection from cache, preference flips touch
// only entries containing the flipped ingress, and BestIngressLatency
// memo entries survive events that cannot change them.

import (
	"testing"

	"painter/internal/bgp"
	"painter/internal/topology"
)

// selectedIngresses returns the set of ingresses appearing in a
// selection.
func selectedIngresses(sel map[topology.ASN]bgp.Route) map[bgp.IngressID]bool {
	out := make(map[bgp.IngressID]bool)
	for _, r := range sel {
		out[r.Ingress] = true
	}
	return out
}

// someSelectedIngress picks an ingress that at least one AS selects.
func someSelectedIngress(t *testing.T, sel map[topology.ASN]bgp.Route) bgp.IngressID {
	t.Helper()
	for _, r := range sel {
		return r.Ingress
	}
	t.Fatal("empty selection")
	return bgp.InvalidIngress
}

func TestPeeringDownRemovesRoutesAndUpRestoresFromCache(t *testing.T) {
	w := testWorld(t)
	all := w.Deploy.AllPeeringIDs()
	before, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	victim := someSelectedIngress(t, before)

	if err := w.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: victim}); err != nil {
		t.Fatal(err)
	}
	if !w.IngressDown(victim) {
		t.Fatal("victim not reported down")
	}
	during, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if selectedIngresses(during)[victim] {
		t.Errorf("ingress %d still selected while down", victim)
	}

	// Recovery must reproduce the original selection exactly — and from
	// the cache: the canonical key filters down peerings before lookup,
	// so the pre-failure entry is still valid.
	s0 := w.CacheStats()
	if err := w.ApplyEvent(Event{Kind: EventPeeringUp, Ingress: victim}); err != nil {
		t.Fatal(err)
	}
	after, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if !routesEqual(before, after) {
		t.Error("selection after recovery differs from pre-failure selection")
	}
	s1 := w.CacheStats()
	if s1.ResolveHits != s0.ResolveHits+1 || s1.ResolveMisses != s0.ResolveMisses {
		t.Errorf("recovery resolve: hits %d→%d misses %d→%d; want a cache hit",
			s0.ResolveHits, s1.ResolveHits, s0.ResolveMisses, s1.ResolveMisses)
	}
}

func TestPoPOutageDownsAllItsPeeringsAndOverlap(t *testing.T) {
	w := testWorld(t)
	pop := w.Deploy.PoPs[0].ID
	at := w.Deploy.PeeringsAt(pop)
	if len(at) == 0 {
		t.Fatal("PoP 0 has no peerings")
	}
	direct := at[0]

	// Fail one peering directly, then the whole PoP.
	if err := w.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: direct}); err != nil {
		t.Fatal(err)
	}
	if err := w.ApplyEvent(Event{Kind: EventPoPDown, PoP: pop}); err != nil {
		t.Fatal(err)
	}
	for _, id := range at {
		if !w.IngressDown(id) {
			t.Errorf("peering %d at failed PoP reported up", id)
		}
	}

	// PoP recovery must NOT resurrect the individually failed peering.
	if err := w.ApplyEvent(Event{Kind: EventPoPUp, PoP: pop}); err != nil {
		t.Fatal(err)
	}
	if !w.IngressDown(direct) {
		t.Error("individually failed peering came up with its PoP")
	}
	for _, id := range at[1:] {
		if w.IngressDown(id) {
			t.Errorf("peering %d still down after PoP recovery", id)
		}
	}
	if err := w.ApplyEvent(Event{Kind: EventPeeringUp, Ingress: direct}); err != nil {
		t.Fatal(err)
	}
	if w.IngressDown(direct) {
		t.Error("peering still down after explicit recovery")
	}

	live := w.LiveIngresses(w.Deploy.AllPeeringIDs())
	if len(live) != len(w.Deploy.AllPeeringIDs()) {
		t.Errorf("expected all %d peerings live, got %d", len(w.Deploy.AllPeeringIDs()), len(live))
	}
}

func TestLatencySpikeVisibleAndCleared(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	ing := w.Deploy.AllPeeringIDs()[0]
	base, err := w.LatencyMs(asn, metro, ing)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ApplyEvent(Event{Kind: EventLatencySpike, Ingress: ing, Ms: 42.5}); err != nil {
		t.Fatal(err)
	}
	spiked, err := w.LatencyMs(asn, metro, ing)
	if err != nil {
		t.Fatal(err)
	}
	if spiked != base+42.5 {
		t.Errorf("spiked latency %v, want %v", spiked, base+42.5)
	}
	if b, _ := w.BaseLatencyMs(asn, metro, ing); b+w.dayAdjustMs(asn, metro, ing) != base {
		t.Error("BaseLatencyMs affected by spike")
	}
	if err := w.ApplyEvent(Event{Kind: EventLatencySpike, Ingress: ing, Ms: 0}); err != nil {
		t.Fatal(err)
	}
	cleared, err := w.LatencyMs(asn, metro, ing)
	if err != nil {
		t.Fatal(err)
	}
	if cleared != base {
		t.Errorf("latency after clear %v, want %v", cleared, base)
	}
}

func TestProbeLossSetClampCleared(t *testing.T) {
	w := testWorld(t)
	ing := w.Deploy.AllPeeringIDs()[0]
	if err := w.ApplyEvent(Event{Kind: EventProbeLoss, Ingress: ing, Pct: 35}); err != nil {
		t.Fatal(err)
	}
	if got := w.ProbeLossPct(ing); got != 35 {
		t.Errorf("loss = %d, want 35", got)
	}
	if err := w.ApplyEvent(Event{Kind: EventProbeLoss, Ingress: ing, Pct: 250}); err != nil {
		t.Fatal(err)
	}
	if got := w.ProbeLossPct(ing); got != 100 {
		t.Errorf("loss = %d, want clamp to 100", got)
	}
	if err := w.ApplyEvent(Event{Kind: EventProbeLoss, Ingress: ing, Pct: 0}); err != nil {
		t.Fatal(err)
	}
	if got := w.ProbeLossPct(ing); got != 0 {
		t.Errorf("loss = %d after clear, want 0", got)
	}
}

func TestPrefFlipInvalidatesOnlyEntriesContainingIngress(t *testing.T) {
	w := testWorld(t)
	all := w.Deploy.AllPeeringIDs()
	if len(all) < 3 {
		t.Fatal("need >=3 peerings")
	}
	flipped := all[0]
	without := all[1:]

	// Warm two cache entries: one containing the flipped ingress, one not.
	withSel, err := w.ResolveIngress(all)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ResolveIngress(without); err != nil {
		t.Fatal(err)
	}

	// Flip a preference held by an AS that currently selects the flipped
	// ingress, so the flip is very likely to be visible.
	var as topology.ASN
	found := false
	for n, r := range withSel {
		if r.Ingress == flipped {
			as, found = n, true
			break
		}
	}
	if !found {
		t.Skip("no AS selects the first peering; topology unsuitable")
	}
	if err := w.ApplyEvent(Event{Kind: EventPrefFlip, AS: as, Ingress: flipped}); err != nil {
		t.Fatal(err)
	}

	// The entry not containing the flipped ingress must still be cached.
	s0 := w.CacheStats()
	if _, err := w.ResolveIngress(without); err != nil {
		t.Fatal(err)
	}
	s1 := w.CacheStats()
	if s1.ResolveHits != s0.ResolveHits+1 || s1.ResolveMisses != s0.ResolveMisses {
		t.Errorf("unaffected entry: hits %d→%d misses %d→%d; want a cache hit",
			s0.ResolveHits, s1.ResolveHits, s0.ResolveMisses, s1.ResolveMisses)
	}
	// The entry containing it must have been dropped (a fresh miss).
	if _, err := w.ResolveIngress(all); err != nil {
		t.Fatal(err)
	}
	s2 := w.CacheStats()
	if s2.ResolveMisses != s1.ResolveMisses+1 {
		t.Errorf("affected entry: misses %d→%d, want one new miss", s1.ResolveMisses, s2.ResolveMisses)
	}
	// The flip's invalidation is visible in the unified stats: at least
	// one resolve entry was dropped, and the event counter advanced.
	if s0.ResolveInvalidations == 0 {
		t.Error("pref flip recorded no resolve-cache invalidation")
	}
}

func TestPrefFlipChangesPreference(t *testing.T) {
	w := testWorld(t)
	ing := w.Deploy.AllPeeringIDs()[0]
	// Preference scores are in [0,1); across several ASes at least one
	// flip must change the score (equal 53-bit draws are astronomically
	// unlikely).
	changed := false
	for _, as := range w.Graph.ASNs()[:10] {
		before := w.prefScore(as, ing)
		if err := w.ApplyEvent(Event{Kind: EventPrefFlip, AS: as, Ingress: ing}); err != nil {
			t.Fatal(err)
		}
		if w.prefScore(as, ing) != before {
			changed = true
		}
	}
	if !changed {
		t.Error("ten preference flips left every score unchanged")
	}
}

func TestBestIngressLatencyTracksFailures(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	ms0, ing0, err := w.BestIngressLatency(asn, metro)
	if err != nil {
		t.Fatal(err)
	}

	// Failing the winner must yield a strictly-no-better different best.
	if err := w.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: ing0}); err != nil {
		t.Fatal(err)
	}
	ms1, ing1, err := w.BestIngressLatency(asn, metro)
	if err != nil {
		t.Fatal(err)
	}
	if ing1 == ing0 {
		t.Error("failed ingress still reported as best")
	}
	if ms1 < ms0 {
		t.Errorf("best improved after failure: %v -> %v", ms0, ms1)
	}
	// Memoized answer must agree with a fresh computation.
	if fm, fi, ferr := w.bestIngressLatency(asn, metro); ferr != nil || fm != ms1 || fi != ing1 {
		t.Errorf("memo (%v, %v) != fresh (%v, %v, %v)", ms1, ing1, fm, fi, ferr)
	}

	// Recovery must restore the original winner.
	if err := w.ApplyEvent(Event{Kind: EventPeeringUp, Ingress: ing0}); err != nil {
		t.Fatal(err)
	}
	ms2, ing2, err := w.BestIngressLatency(asn, metro)
	if err != nil {
		t.Fatal(err)
	}
	if ms2 != ms0 || ing2 != ing0 {
		t.Errorf("best after recovery (%v, %v), want original (%v, %v)", ms2, ing2, ms0, ing0)
	}
}

func TestBestIngressMemoSurvivesIrrelevantFailure(t *testing.T) {
	w := testWorld(t)
	asn, metro := firstStubUG(t, w)
	_, ing0, err := w.BestIngressLatency(asn, metro)
	if err != nil {
		t.Fatal(err)
	}
	// Fail some other ingress: the memo entry's winner is unaffected, so
	// the entry must survive (removing a loser cannot change a minimum).
	var other bgp.IngressID = bgp.InvalidIngress
	for _, id := range w.Deploy.AllPeeringIDs() {
		if id != ing0 {
			other = id
			break
		}
	}
	if other == bgp.InvalidIngress {
		t.Skip("only one peering")
	}
	if err := w.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: other}); err != nil {
		t.Fatal(err)
	}
	if !w.bestCached(asn, metro) {
		t.Error("memo entry dropped by a failure that cannot change it")
	}
	if err := w.ApplyEvent(Event{Kind: EventPeeringUp, Ingress: other}); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeOrderSeqAndCancel(t *testing.T) {
	w := testWorld(t)
	ing := w.Deploy.AllPeeringIDs()[0]
	var got []string
	c1 := w.Subscribe(func(ev Event) { got = append(got, "a:"+ev.Kind.String()) })
	c2 := w.Subscribe(func(ev Event) { got = append(got, "b:"+ev.Kind.String()) })
	defer c2()

	if err := w.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: ing}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a:peering-down" || got[1] != "b:peering-down" {
		t.Fatalf("notify order wrong: %v", got)
	}

	// Failed events must notify nobody.
	if err := w.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: bgp.IngressID(1 << 30)}); err == nil {
		t.Fatal("unknown peering accepted")
	}
	if len(got) != 2 {
		t.Fatalf("failed event notified subscribers: %v", got)
	}

	c1()
	if err := w.ApplyEvent(Event{Kind: EventPeeringUp, Ingress: ing}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "b:peering-up" {
		t.Fatalf("cancel did not remove subscriber: %v", got)
	}

	// Seq is assigned in application order, monotonically.
	var seqs []uint64
	cancel := w.Subscribe(func(ev Event) { seqs = append(seqs, ev.Seq) })
	defer cancel()
	for i := 0; i < 3; i++ {
		if err := w.ApplyEvent(Event{Kind: EventLatencySpike, Ingress: ing, Ms: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Errorf("seq not monotonic: %v", seqs)
		}
	}
}

func TestApplyEventUnknownTargets(t *testing.T) {
	w := testWorld(t)
	bad := []Event{
		{Kind: EventPeeringDown, Ingress: bgp.IngressID(1 << 30)},
		{Kind: EventPeeringUp, Ingress: bgp.IngressID(1 << 30)},
		{Kind: EventPoPDown, PoP: 9999},
		{Kind: EventPoPUp, PoP: 9999},
		{Kind: EventLatencySpike, Ingress: bgp.IngressID(1 << 30), Ms: 5},
		{Kind: EventProbeLoss, Ingress: bgp.IngressID(1 << 30), Pct: 5},
		{Kind: EventPrefFlip, AS: 1, Ingress: bgp.IngressID(1 << 30)},
		{Kind: EventPrefFlip, AS: topology.ASN(1 << 30), Ingress: w.Deploy.AllPeeringIDs()[0]},
		{Kind: EventKind(99)},
	}
	for _, ev := range bad {
		if err := w.ApplyEvent(ev); err == nil {
			t.Errorf("event %v accepted, want error", ev)
		}
	}
}
