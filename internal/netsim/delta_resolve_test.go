package netsim

// Differential and frontier tests for delta-served resolves: a world
// serving cache misses with PropagateDelta (the default) must answer
// every query identically to a twin world forced onto full propagation,
// across every event kind and across randomized chaos schedules. The
// per-kind table also pins the cache mechanics — which kinds are served
// by delta repair, which are pure hits, and which never touch the
// propagation cache at all.

import (
	"math/rand"
	"testing"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// deltaWorldPair builds twin worlds over one topology/deployment/seed:
// the first serves misses by delta propagation (default), the second is
// forced onto full propagation as the control arm.
func deltaWorldPair(t *testing.T, trial int64) (*World, *World) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Seed: 500 + trial, Tier1: 3, Tier2: 10, Stubs: 60,
		MeanStubProviders: 2.2, Tier2PeerProb: 0.3,
		EnterpriseFrac: 0.35, ContentFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{
		Name: "delta", PoPMetros: 6, PeerFrac: 0.7, TransitProviders: 2, Seed: 600 + trial,
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := 700 + trial
	dw, err := New(g, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := New(g, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	cw.SetDeltaResolve(false)
	return dw, cw
}

// mustResolveEqual resolves the same peerings on both worlds and fails
// on any divergence.
func mustResolveEqual(t *testing.T, dw, cw *World, peerings []bgp.IngressID, ctx string) {
	t.Helper()
	a, err := dw.ResolveIngress(peerings)
	if err != nil {
		t.Fatalf("%s: delta world resolve: %v", ctx, err)
	}
	b, err := cw.ResolveIngress(peerings)
	if err != nil {
		t.Fatalf("%s: control world resolve: %v", ctx, err)
	}
	if !routesEqual(a, b) {
		t.Fatalf("%s: delta-served resolve diverges from full propagation", ctx)
	}
}

// TestDeltaResolvePerEventKind walks every event kind through twin
// worlds and pins, per kind, both the answer equivalence and the cache
// mechanics of the re-resolve that follows:
//
//   - peering-down / pop-down: the live-set key changes, so the resolve
//     misses and is repaired by delta from the still-cached pre-event
//     entry (symmetric difference = the withdrawn peerings).
//   - peering-up / pop-up: the live set returns to the pre-event key,
//     so the resolve is a pure cache hit — no propagation of any kind.
//   - latency-spike / probe-loss: route selection is untouched; the
//     entry is never invalidated and the resolve is a pure hit.
//   - pref-flip: the containing entry is evicted to the stale base pool
//     and the re-resolve repairs it by delta seeded at the flipped AS
//     alone (zero peering-set difference).
func TestDeltaResolvePerEventKind(t *testing.T) {
	type kindCase struct {
		name string
		// events applied (after warming) before the measured resolve.
		events    func(w *World, all []bgp.IngressID, flipAS topology.ASN) []Event
		wantDelta bool // measured resolve repaired by delta propagation
		wantHit   bool // measured resolve is a pure cache hit
	}
	cases := []kindCase{
		{
			name: "peering-down",
			events: func(w *World, all []bgp.IngressID, _ topology.ASN) []Event {
				return []Event{{Kind: EventPeeringDown, Ingress: all[0]}}
			},
			wantDelta: true,
		},
		{
			name: "peering-up",
			events: func(w *World, all []bgp.IngressID, _ topology.ASN) []Event {
				return []Event{
					{Kind: EventPeeringDown, Ingress: all[0]},
					{Kind: EventPeeringUp, Ingress: all[0]},
				}
			},
			wantHit: true,
		},
		{
			name: "pop-down",
			events: func(w *World, all []bgp.IngressID, _ topology.ASN) []Event {
				pop := w.popOfIng[all[0]]
				return []Event{{Kind: EventPoPDown, PoP: pop}}
			},
			wantDelta: true,
		},
		{
			name: "pop-up",
			events: func(w *World, all []bgp.IngressID, _ topology.ASN) []Event {
				pop := w.popOfIng[all[0]]
				return []Event{
					{Kind: EventPoPDown, PoP: pop},
					{Kind: EventPoPUp, PoP: pop},
				}
			},
			wantHit: true,
		},
		{
			name: "latency-spike",
			events: func(w *World, all []bgp.IngressID, _ topology.ASN) []Event {
				return []Event{{Kind: EventLatencySpike, Ingress: all[1], Ms: 40}}
			},
			wantHit: true,
		},
		{
			name: "probe-loss",
			events: func(w *World, all []bgp.IngressID, _ topology.ASN) []Event {
				return []Event{{Kind: EventProbeLoss, Ingress: all[1], Pct: 30}}
			},
			wantHit: true,
		},
		{
			name: "pref-flip",
			events: func(w *World, all []bgp.IngressID, flipAS topology.ASN) []Event {
				return []Event{{Kind: EventPrefFlip, AS: flipAS, Ingress: all[1]}}
			},
			wantDelta: true,
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dw, cw := deltaWorldPair(t, int64(i))
			all := dw.Deploy.AllPeeringIDs()
			flipAS := sampleASNs(dw.Graph, 1)[0]
			mustResolveEqual(t, dw, cw, all, "warm")

			before := dw.CacheStats()
			for _, ev := range tc.events(dw, all, flipAS) {
				if err := dw.ApplyEvent(ev); err != nil {
					t.Fatal(err)
				}
				if err := cw.ApplyEvent(ev); err != nil {
					t.Fatal(err)
				}
			}
			mustResolveEqual(t, dw, cw, all, tc.name)
			after := dw.CacheStats()

			deltaRuns := after.ResolveDeltaRuns - before.ResolveDeltaRuns
			fullRuns := after.ResolveFullRuns - before.ResolveFullRuns
			hits := after.ResolveHits - before.ResolveHits
			if tc.wantDelta {
				if deltaRuns == 0 {
					t.Errorf("want a delta-served resolve, got delta=%d full=%d hits=%d",
						deltaRuns, fullRuns, hits)
				}
				if fullRuns != 0 {
					t.Errorf("resolve fell back to full propagation (%d runs)", fullRuns)
				}
			}
			if tc.wantHit {
				if hits == 0 || deltaRuns != 0 || fullRuns != 0 {
					t.Errorf("want a pure cache hit, got delta=%d full=%d hits=%d",
						deltaRuns, fullRuns, hits)
				}
			}
			if tc.name == "pref-flip" && after.ResolveInvalidations == before.ResolveInvalidations {
				t.Error("pref flip did not evict the containing resolve entry")
			}
			// A prefix-sized subset must agree too (delta from a subset base).
			mustResolveEqual(t, dw, cw, all[:(len(all)+1)/2], tc.name+" subset")
		})
	}
}

// TestDeltaResolveChaosDifferential replays randomized chaos schedules
// — every event kind plus day changes — through the twin worlds,
// resolving the full set and random subsets after every event. The
// delta world must answer identically to the full-propagation control
// throughout, and must actually be serving resolves by delta repair.
func TestDeltaResolveChaosDifferential(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		dw, cw := deltaWorldPair(t, 20+trial)
		all := dw.Deploy.AllPeeringIDs()
		rng := rand.New(rand.NewSource(900 + trial))
		asns := sampleASNs(dw.Graph, 8)

		var down []bgp.IngressID
		var popsDown []cloud.PoPID
		apply := func(ev Event) {
			t.Helper()
			if err := dw.ApplyEvent(ev); err != nil {
				t.Fatal(err)
			}
			if err := cw.ApplyEvent(ev); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; step < 40; step++ {
			switch rng.Intn(8) {
			case 0:
				ing := all[rng.Intn(len(all))]
				apply(Event{Kind: EventPeeringDown, Ingress: ing})
				down = append(down, ing)
			case 1:
				if len(down) > 0 {
					i := rng.Intn(len(down))
					apply(Event{Kind: EventPeeringUp, Ingress: down[i]})
					down = append(down[:i], down[i+1:]...)
				}
			case 2:
				pop := dw.popOfIng[all[rng.Intn(len(all))]]
				apply(Event{Kind: EventPoPDown, PoP: pop})
				popsDown = append(popsDown, pop)
			case 3:
				if len(popsDown) > 0 {
					i := rng.Intn(len(popsDown))
					apply(Event{Kind: EventPoPUp, PoP: popsDown[i]})
					popsDown = append(popsDown[:i], popsDown[i+1:]...)
				}
			case 4:
				apply(Event{Kind: EventLatencySpike, Ingress: all[rng.Intn(len(all))], Ms: float64(rng.Intn(80))})
			case 5:
				apply(Event{Kind: EventProbeLoss, Ingress: all[rng.Intn(len(all))], Pct: rng.Intn(100)})
			case 6:
				apply(Event{Kind: EventPrefFlip, AS: asns[rng.Intn(len(asns))], Ingress: all[rng.Intn(len(all))]})
			case 7:
				d := rng.Intn(4)
				dw.SetDay(d)
				cw.SetDay(d)
			}
			mustResolveEqual(t, dw, cw, all, "chaos full set")
			// A random subset, identical across the twins.
			n := 1 + rng.Intn(len(all)-1)
			sub := make([]bgp.IngressID, 0, n)
			for _, j := range rng.Perm(len(all))[:n] {
				sub = append(sub, all[j])
			}
			mustResolveEqual(t, dw, cw, sub, "chaos subset")
		}
		if dw.CacheStats().ResolveDeltaRuns == 0 {
			t.Error("chaos schedule never exercised a delta-served resolve")
		}
	}
}

// TestAnycastShift pins the incremental anycast entry point: a nil prev
// yields every settled AS, an unchanged world yields the same Result
// pointer with an empty changed set, and a routing event yields exactly
// the ASes whose selection moved.
func TestAnycastShift(t *testing.T) {
	dw, cw := deltaWorldPair(t, 11)
	res1, changed1, err := dw.AnycastShift(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed1) != res1.Len() {
		t.Fatalf("nil prev: %d changed != %d settled", len(changed1), res1.Len())
	}
	res2, changed2, err := dw.AnycastShift(res1)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res1 || len(changed2) != 0 {
		t.Fatalf("unchanged world: want same Result and empty diff, got %d changed", len(changed2))
	}

	ev := Event{Kind: EventPrefFlip, AS: sampleASNs(dw.Graph, 1)[0], Ingress: dw.Deploy.AllPeeringIDs()[0]}
	if err := dw.ApplyEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := cw.ApplyEvent(ev); err != nil {
		t.Fatal(err)
	}
	res3, changed3, err := dw.AnycastShift(res2)
	if err != nil {
		t.Fatal(err)
	}
	// The changed set must be exactly the selection differences, and the
	// delta-served selections must match the full-propagation control.
	sel2, sel3 := res2.Selections(), res3.Selections()
	want := 0
	for as, r := range sel3 {
		if p, ok := sel2[as]; !ok || p != r {
			want++
		}
	}
	for as := range sel2 {
		if _, ok := sel3[as]; !ok {
			want++
		}
	}
	if len(changed3) != want {
		t.Fatalf("changed set has %d ASes, selection diff has %d", len(changed3), want)
	}
	ctrl, err := cw.ResolveIngress(cw.Deploy.AllPeeringIDs())
	if err != nil {
		t.Fatal(err)
	}
	if !routesEqual(sel3, ctrl) {
		t.Fatal("post-flip delta-served selections diverge from control")
	}
}

// TestCatchmentAnalyzerDifferential drives a CatchmentAnalyzer through
// every event kind and a day change, comparing each incremental Update
// against a from-scratch AnalyzeCatchment of the same world.
func TestCatchmentAnalyzerDifferential(t *testing.T) {
	dw, _ := deltaWorldPair(t, 31)
	ugs, err := usergroup.Build(dw.Graph, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	an := NewCatchmentAnalyzer(dw, ugs, 0)
	defer an.Close()

	all := dw.Deploy.AllPeeringIDs()
	flipAS := sampleASNs(dw.Graph, 2)
	steps := []func() error{
		func() error { return nil }, // initial full compute
		func() error { return dw.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: all[0]}) },
		func() error { return dw.ApplyEvent(Event{Kind: EventPrefFlip, AS: flipAS[0], Ingress: all[1]}) },
		func() error { return dw.ApplyEvent(Event{Kind: EventLatencySpike, Ingress: all[2%len(all)], Ms: 25}) },
		func() error { return dw.ApplyEvent(Event{Kind: EventPoPDown, PoP: dw.popOfIng[all[3%len(all)]]}) },
		func() error { return dw.ApplyEvent(Event{Kind: EventProbeLoss, Ingress: all[1], Pct: 10}) },
		func() error { return dw.ApplyEvent(Event{Kind: EventPeeringUp, Ingress: all[0]}) },
		func() error { return dw.ApplyEvent(Event{Kind: EventPoPUp, PoP: dw.popOfIng[all[3%len(all)]]}) },
		func() error { return dw.ApplyEvent(Event{Kind: EventPrefFlip, AS: flipAS[1], Ingress: all[0]}) },
		func() error { dw.SetDay(2); return nil },
		func() error { return dw.ApplyEvent(Event{Kind: EventPeeringDown, Ingress: all[1]}) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		inc, err := an.Update()
		if err != nil {
			t.Fatalf("step %d: Update: %v", i, err)
		}
		ref, err := AnalyzeCatchment(dw, ugs, 0)
		if err != nil {
			t.Fatalf("step %d: AnalyzeCatchment: %v", i, err)
		}
		assertCatchmentsEqual(t, i, inc, ref)
	}
}

func assertCatchmentsEqual(t *testing.T, step int, a, b *Catchment) {
	t.Helper()
	if a.UGs != b.UGs {
		t.Fatalf("step %d: UGs %d != %d", step, a.UGs, b.UGs)
	}
	if a.InflatedFrac != b.InflatedFrac {
		t.Fatalf("step %d: InflatedFrac %v != %v", step, a.InflatedFrac, b.InflatedFrac)
	}
	if len(a.PoPShare) != len(b.PoPShare) {
		t.Fatalf("step %d: PoPShare sizes %d != %d", step, len(a.PoPShare), len(b.PoPShare))
	}
	for id, s := range a.PoPShare {
		if b.PoPShare[id] != s {
			t.Fatalf("step %d: PoPShare[%d] %v != %v", step, id, s, b.PoPShare[id])
		}
	}
	for _, cdf := range []struct {
		name string
		x, y interface {
			Len() int
			Quantile(float64) (float64, error)
		}
	}{{"InflationKm", a.InflationKm, b.InflationKm}, {"InflationMs", a.InflationMs, b.InflationMs}} {
		if cdf.x.Len() != cdf.y.Len() {
			t.Fatalf("step %d: %s lengths %d != %d", step, cdf.name, cdf.x.Len(), cdf.y.Len())
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			xa, _ := cdf.x.Quantile(q)
			xb, _ := cdf.y.Quantile(q)
			if xa != xb {
				t.Fatalf("step %d: %s q%.2f %v != %v", step, cdf.name, q, xa, xb)
			}
		}
	}
}

// TestStaleBasePoolLifecycle pins the stale-pool bookkeeping: a flip
// moves the evicted entry into the pool, SetDay clears it, and
// disabling delta resolve drops it.
func TestStaleBasePoolLifecycle(t *testing.T) {
	dw, _ := deltaWorldPair(t, 41)
	all := dw.Deploy.AllPeeringIDs()
	if _, err := dw.ResolveIngress(all); err != nil {
		t.Fatal(err)
	}
	as := sampleASNs(dw.Graph, 1)[0]
	if err := dw.ApplyEvent(Event{Kind: EventPrefFlip, AS: as, Ingress: all[0]}); err != nil {
		t.Fatal(err)
	}
	dw.resolveMu.Lock()
	n := len(dw.staleBases)
	dw.resolveMu.Unlock()
	if n != 1 {
		t.Fatalf("want 1 stale base after flip, got %d", n)
	}
	// A second flip on an ingress the stale base contains accumulates on
	// the same base (no duplicate AS entries).
	if err := dw.ApplyEvent(Event{Kind: EventPrefFlip, AS: as, Ingress: all[1]}); err != nil {
		t.Fatal(err)
	}
	dw.resolveMu.Lock()
	flips := len(dw.staleBases[0].flips)
	dw.resolveMu.Unlock()
	if flips != 1 {
		t.Fatalf("want deduplicated flip list of 1 AS, got %d", flips)
	}
	dw.SetDay(3)
	dw.resolveMu.Lock()
	n = len(dw.staleBases)
	dw.resolveMu.Unlock()
	if n != 0 {
		t.Fatalf("SetDay must clear the stale pool, %d left", n)
	}
}
