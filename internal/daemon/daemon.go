// Package daemon holds the observability plumbing shared by the four
// standalone commands (painterd, route-server, tm-edge, tm-pop):
// structured logging flags, tracer construction with head sampling, and
// the shutdown-time flight-recorder dump. It exists so each main stays
// a thin flag-to-config adapter instead of quadruplicating this wiring.
package daemon

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"painter/internal/obs/span"
)

// ObsFlags carries the values of the common observability flags.
type ObsFlags struct {
	LogFormat   string
	LogLevel    string
	TraceSample int
	TraceDump   string
	Pprof       bool
}

// RegisterFlags registers the shared observability flags on fs (the
// command's flag set; flag.CommandLine in practice) and returns the
// struct their values land in.
func RegisterFlags(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.StringVar(&f.LogFormat, "log-format", "text", "log output format: text or json")
	fs.StringVar(&f.LogLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	fs.IntVar(&f.TraceSample, "trace-sample", 0, "trace 1 in N root spans (0 = tracing off, 1 = all)")
	fs.StringVar(&f.TraceDump, "trace-dump", "", "write the flight recorder as Chrome trace JSON to this file on shutdown")
	fs.BoolVar(&f.Pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/ on the HTTP listener")
	return f
}

// Logger builds the process logger from -log-format and -log-level and
// installs it as the slog default (so stray slog calls inherit it).
func (f *ObsFlags) Logger() (*slog.Logger, error) {
	var level slog.Level
	switch f.LogLevel {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("daemon: unknown -log-level %q (want debug|info|warn|error)", f.LogLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch f.LogFormat {
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("daemon: unknown -log-format %q (want text|json)", f.LogFormat)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}

// Tracer builds the process tracer from -trace-sample, or nil when
// tracing is off (nil tracers and spans are free no-ops throughout).
// The seed mixes the PID and start time so concurrently started daemons
// do not mint colliding trace IDs; tests wanting byte-identical exports
// construct their own tracer with a fixed Seed instead.
func (f *ObsFlags) Tracer(process string) *span.Tracer {
	if f.TraceSample <= 0 {
		return nil
	}
	return span.New(span.Config{
		Seed:    uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano()),
		Sample:  f.TraceSample,
		Process: process,
	})
}

// DumpTrace writes the tracer's flight recorder to -trace-dump at
// shutdown, logging the outcome. No-op when either is unset.
func (f *ObsFlags) DumpTrace(t *span.Tracer, logger *slog.Logger) {
	if f.TraceDump == "" || t == nil {
		return
	}
	if err := t.DumpFile(f.TraceDump); err != nil {
		logger.Error("trace dump failed", "path", f.TraceDump, "err", err)
		return
	}
	logger.Info("trace dumped", "path", f.TraceDump, "spans", t.Recorder().Total())
}

// TraceAttrs returns slog key/value pairs for a trace context, or nil
// when the context is zero — append to log calls so lines emitted under
// a span carry its IDs.
func TraceAttrs(c span.Context) []any {
	if !c.Valid() {
		return nil
	}
	return []any{
		slog.String("trace_id", fmt.Sprintf("%016x", c.TraceID)),
		slog.String("span_id", fmt.Sprintf("%016x", c.SpanID)),
	}
}
