// Package cloud models the cloud provider's physical deployment: points
// of presence (PoPs) placed in metros, and the catalog of BGP peerings
// (peer AS × PoP) through which traffic can ingress. A Deployment is the
// static substrate both the Advertisement Orchestrator and the baselines
// advertise over.
package cloud

import (
	"fmt"
	"sort"

	"painter/internal/bgp"
	"painter/internal/geo"
	"painter/internal/stats"
	"painter/internal/topology"
)

// PoPID identifies a point of presence.
type PoPID int32

// PoP is one cloud point of presence.
type PoP struct {
	ID    PoPID
	Metro string // metro code
	Coord geo.Coord
}

// Peering is one BGP adjacency between the cloud and a neighbor AS at a
// specific PoP. Its ID doubles as the bgp.IngressID tag used in route
// propagation: if traffic enters the cloud through this adjacency, it
// ingresses at this PoP.
type Peering struct {
	ID      bgp.IngressID
	PoP     PoPID
	PeerASN topology.ASN
	// ClassAtPeer is the route class an advertisement over this peering
	// has at the neighbor: ClassCustomer when the neighbor is a transit
	// provider of the cloud (it learns the route from a customer), and
	// ClassPeer for settlement-free peers.
	ClassAtPeer bgp.RouteClass
}

// IsTransit reports whether the peering is with a transit provider of
// the cloud.
func (p Peering) IsTransit() bool { return p.ClassAtPeer == bgp.ClassCustomer }

// Deployment is the cloud's static footprint.
type Deployment struct {
	ASN      topology.ASN
	PoPs     []PoP
	Peerings []Peering

	popByID     map[PoPID]*PoP
	peeringByID map[bgp.IngressID]*Peering
	byPoP       map[PoPID][]bgp.IngressID
}

// New assembles a Deployment and indexes it. PoPs and peerings must have
// unique IDs, and every peering must reference an existing PoP.
func New(asn topology.ASN, pops []PoP, peerings []Peering) (*Deployment, error) {
	d := &Deployment{
		ASN:         asn,
		PoPs:        append([]PoP(nil), pops...),
		Peerings:    append([]Peering(nil), peerings...),
		popByID:     make(map[PoPID]*PoP, len(pops)),
		peeringByID: make(map[bgp.IngressID]*Peering, len(peerings)),
		byPoP:       make(map[PoPID][]bgp.IngressID),
	}
	for i := range d.PoPs {
		p := &d.PoPs[i]
		if _, dup := d.popByID[p.ID]; dup {
			return nil, fmt.Errorf("cloud: duplicate PoP id %d", p.ID)
		}
		// Fill missing coordinates from the metro database so hand-built
		// deployments only need metro codes.
		if p.Coord == (geo.Coord{}) {
			m, err := geo.MetroByCode(p.Metro)
			if err != nil {
				return nil, fmt.Errorf("cloud: PoP %d: %w", p.ID, err)
			}
			p.Coord = m.Coord
		}
		d.popByID[p.ID] = p
	}
	for i := range d.Peerings {
		pr := &d.Peerings[i]
		if _, dup := d.peeringByID[pr.ID]; dup {
			return nil, fmt.Errorf("cloud: duplicate peering id %d", pr.ID)
		}
		if _, ok := d.popByID[pr.PoP]; !ok {
			return nil, fmt.Errorf("cloud: peering %d references unknown PoP %d", pr.ID, pr.PoP)
		}
		if pr.ClassAtPeer != bgp.ClassCustomer && pr.ClassAtPeer != bgp.ClassPeer {
			return nil, fmt.Errorf("cloud: peering %d has invalid class %v", pr.ID, pr.ClassAtPeer)
		}
		d.peeringByID[pr.ID] = pr
		d.byPoP[pr.PoP] = append(d.byPoP[pr.PoP], pr.ID)
	}
	for _, ids := range d.byPoP {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return d, nil
}

// PoP returns the PoP with the given ID (nil if absent).
func (d *Deployment) PoP(id PoPID) *PoP { return d.popByID[id] }

// Peering returns the peering with the given ID (nil if absent).
func (d *Deployment) Peering(id bgp.IngressID) *Peering { return d.peeringByID[id] }

// PeeringsAt returns the peering IDs at a PoP (sorted).
func (d *Deployment) PeeringsAt(pop PoPID) []bgp.IngressID { return d.byPoP[pop] }

// PoPOfPeering returns the PoP hosting a peering.
func (d *Deployment) PoPOfPeering(id bgp.IngressID) (*PoP, error) {
	pr := d.peeringByID[id]
	if pr == nil {
		return nil, fmt.Errorf("cloud: unknown peering %d", id)
	}
	return d.popByID[pr.PoP], nil
}

// AllPeeringIDs returns every peering ID, sorted.
func (d *Deployment) AllPeeringIDs() []bgp.IngressID {
	out := make([]bgp.IngressID, 0, len(d.Peerings))
	for _, p := range d.Peerings {
		out = append(out, p.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TransitPeeringIDs returns peerings with transit providers, sorted.
func (d *Deployment) TransitPeeringIDs() []bgp.IngressID {
	var out []bgp.IngressID
	for _, p := range d.Peerings {
		if p.IsTransit() {
			out = append(out, p.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Injections converts a set of peering IDs (the peerings a prefix is
// advertised over) into bgp.Injections for route propagation.
func (d *Deployment) Injections(peerings []bgp.IngressID) ([]bgp.Injection, error) {
	out := make([]bgp.Injection, 0, len(peerings))
	for _, id := range peerings {
		pr := d.peeringByID[id]
		if pr == nil {
			return nil, fmt.Errorf("cloud: unknown peering %d", id)
		}
		out = append(out, bgp.Injection{
			Neighbor: pr.PeerASN,
			Class:    pr.ClassAtPeer,
			Ingress:  pr.ID,
		})
	}
	return out, nil
}

// Profile selects a deployment size when building from a topology.
type Profile struct {
	// Name describes the profile ("azure", "peering").
	Name string
	// PoPMetros is how many metros get a PoP (the highest-weight metros
	// with transit presence are chosen first).
	PoPMetros int
	// PeerFrac is the fraction of transit ASes that have a settlement-
	// free peering relationship with the cloud at all (tier-1s always
	// do). Eligible ASes peer at every PoP metro where they are present.
	PeerFrac float64
	// TransitProviders is how many tier-1s the cloud buys transit from;
	// each provides a peering at every PoP where it is present.
	TransitProviders int
	Seed             int64
}

// AzureProfile approximates the paper's Azure numbers scaled to the
// simulator: PoPs in most major metros, peerings with most networks
// present at each PoP, several transit providers.
func AzureProfile() Profile {
	return Profile{Name: "azure", PoPMetros: 60, PeerFrac: 0.75, TransitProviders: 4, Seed: 101}
}

// PEERINGProfile approximates the PEERING/Vultr prototype: 25 PoPs.
func PEERINGProfile() Profile {
	return Profile{Name: "peering", PoPMetros: 25, PeerFrac: 0.5, TransitProviders: 3, Seed: 202}
}

// Build constructs a Deployment over a topology using a profile:
// PoPs are placed in the highest-weight metros, and at each PoP the
// cloud peers with transit ASes (tier-1/tier-2) present in that metro.
// Tier-1 peerings for the selected transit providers are customer-class
// (the cloud buys transit); everything else is settlement-free peering.
func Build(g *topology.Graph, cloudASN topology.ASN, prof Profile) (*Deployment, error) {
	if prof.PoPMetros < 1 {
		return nil, fmt.Errorf("cloud: profile needs >=1 PoP metro")
	}
	rng := stats.NewRand(prof.Seed)

	// Rank metros by weight, keeping only metros where some transit AS is
	// present (otherwise the PoP would have no peerings).
	metros := geo.Metros()
	sort.Slice(metros, func(i, j int) bool {
		if metros[i].Weight != metros[j].Weight {
			return metros[i].Weight > metros[j].Weight
		}
		return metros[i].Code < metros[j].Code
	})

	presentTransit := func(metro string) []topology.ASN {
		var out []topology.ASN
		for _, n := range g.ASNs() {
			a := g.AS(n)
			if a.Kind == topology.KindTransit && a.PresentIn(metro) {
				out = append(out, n)
			}
		}
		return out
	}

	// Pick transit providers: the tier-1s with the widest presence.
	var tier1s []topology.ASN
	for _, n := range g.ASNs() {
		if g.AS(n).Tier == topology.TierOne {
			tier1s = append(tier1s, n)
		}
	}
	sort.Slice(tier1s, func(i, j int) bool {
		mi, mj := len(g.AS(tier1s[i]).Metros), len(g.AS(tier1s[j]).Metros)
		if mi != mj {
			return mi > mj
		}
		return tier1s[i] < tier1s[j]
	})
	nt := prof.TransitProviders
	if nt > len(tier1s) {
		nt = len(tier1s)
	}
	transitSet := make(map[topology.ASN]bool, nt)
	for _, n := range tier1s[:nt] {
		transitSet[n] = true
	}

	// Peering eligibility is decided per AS, not per (AS, PoP): a network
	// either has a settlement-free relationship with the cloud (and then
	// peers wherever both are present) or it does not. This leaves a
	// realistic fraction of ISPs with no direct cloud peering, which is
	// what gives SD-WAN multihoming fewer usable paths (§5.2.4).
	eligible := make(map[topology.ASN]bool)
	for _, n := range g.ASNs() {
		a := g.AS(n)
		if a.Kind != topology.KindTransit {
			continue
		}
		if a.Tier == topology.TierOne || rng.Float64() < prof.PeerFrac {
			eligible[n] = true
		}
	}

	var pops []PoP
	var peerings []Peering
	nextPoP := PoPID(0)
	nextPeering := bgp.IngressID(0)
	for _, m := range metros {
		if len(pops) >= prof.PoPMetros {
			break
		}
		transit := presentTransit(m.Code)
		if len(transit) == 0 {
			continue
		}
		pop := PoP{ID: nextPoP, Metro: m.Code, Coord: m.Coord}
		nextPoP++
		added := 0
		for _, asn := range transit {
			isTransitProvider := transitSet[asn]
			if !isTransitProvider && !eligible[asn] {
				continue
			}
			class := bgp.ClassPeer
			if isTransitProvider {
				class = bgp.ClassCustomer
			}
			peerings = append(peerings, Peering{
				ID: nextPeering, PoP: pop.ID, PeerASN: asn, ClassAtPeer: class,
			})
			nextPeering++
			added++
		}
		if added == 0 {
			nextPoP-- // roll back: PoP with no peerings is useless
			continue
		}
		pops = append(pops, pop)
	}
	if len(pops) == 0 {
		return nil, fmt.Errorf("cloud: no viable PoP metros in topology")
	}
	return New(cloudASN, pops, peerings)
}

// Stats summarizes a deployment.
type Stats struct {
	PoPs, Peerings, Transit int
	PeersPerPoPMean         float64
}

// Stats computes deployment statistics.
func (d *Deployment) Stats() Stats {
	s := Stats{PoPs: len(d.PoPs), Peerings: len(d.Peerings)}
	for _, p := range d.Peerings {
		if p.IsTransit() {
			s.Transit++
		}
	}
	if s.PoPs > 0 {
		s.PeersPerPoPMean = float64(s.Peerings) / float64(s.PoPs)
	}
	return s
}
