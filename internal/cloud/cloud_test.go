package cloud

import (
	"testing"

	"painter/internal/bgp"
	"painter/internal/geo"
	"painter/internal/topology"
)

func testGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 12, Tier1: 5, Tier2: 30, Stubs: 200,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3, EnterpriseFrac: 0.35, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildProfiles(t *testing.T) {
	g := testGraph(t)
	for _, prof := range []Profile{
		{Name: "small", PoPMetros: 8, PeerFrac: 0.7, TransitProviders: 2, Seed: 1},
		PEERINGProfile(),
	} {
		d, err := Build(g, 64500, prof)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		st := d.Stats()
		if st.PoPs == 0 || st.Peerings == 0 {
			t.Fatalf("%s: empty deployment %+v", prof.Name, st)
		}
		if st.PoPs > prof.PoPMetros {
			t.Errorf("%s: %d PoPs exceeds requested %d", prof.Name, st.PoPs, prof.PoPMetros)
		}
		if st.Transit == 0 {
			t.Errorf("%s: no transit peerings", prof.Name)
		}
		// Transit providers reach everywhere: transit peerings should be
		// spread across many PoPs.
		if st.Transit < st.PoPs/2 {
			t.Errorf("%s: only %d transit peerings for %d PoPs", prof.Name, st.Transit, st.PoPs)
		}
	}
}

func TestDeploymentIndexes(t *testing.T) {
	g := testGraph(t)
	d, err := Build(g, 64500, Profile{Name: "t", PoPMetros: 10, PeerFrac: 0.8, TransitProviders: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range d.Peerings {
		pop, err := d.PoPOfPeering(pr.ID)
		if err != nil {
			t.Fatal(err)
		}
		if pop.ID != pr.PoP {
			t.Errorf("PoPOfPeering(%d) = %d, want %d", pr.ID, pop.ID, pr.PoP)
		}
		// Peer AS must actually be present at the PoP's metro.
		if !g.AS(pr.PeerASN).PresentIn(pop.Metro) {
			t.Errorf("peer %v not present in PoP metro %s", pr.PeerASN, pop.Metro)
		}
	}
	// PeeringsAt partitions AllPeeringIDs.
	total := 0
	for _, pop := range d.PoPs {
		ids := d.PeeringsAt(pop.ID)
		total += len(ids)
		for _, id := range ids {
			if d.Peering(id).PoP != pop.ID {
				t.Error("PeeringsAt bucket wrong")
			}
		}
	}
	if total != len(d.AllPeeringIDs()) {
		t.Errorf("PeeringsAt covers %d, want %d", total, len(d.AllPeeringIDs()))
	}
	if _, err := d.PoPOfPeering(9999); err == nil {
		t.Error("unknown peering should fail")
	}
}

func TestInjections(t *testing.T) {
	g := testGraph(t)
	d, err := Build(g, 64500, Profile{Name: "t", PoPMetros: 10, PeerFrac: 0.8, TransitProviders: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := d.AllPeeringIDs()[:5]
	inj, err := d.Injections(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != 5 {
		t.Fatalf("injections = %d, want 5", len(inj))
	}
	for i, in := range inj {
		pr := d.Peering(ids[i])
		if in.Neighbor != pr.PeerASN || in.Ingress != pr.ID || in.Class != pr.ClassAtPeer {
			t.Errorf("injection %d = %+v does not match peering %+v", i, in, pr)
		}
	}
	if _, err := d.Injections([]bgp.IngressID{99999}); err == nil {
		t.Error("unknown peering should fail")
	}
}

func TestTransitPeeringIDs(t *testing.T) {
	g := testGraph(t)
	d, err := Build(g, 64500, Profile{Name: "t", PoPMetros: 10, PeerFrac: 0.8, TransitProviders: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := d.TransitPeeringIDs()
	if len(ts) == 0 {
		t.Fatal("no transit peerings")
	}
	for _, id := range ts {
		if !d.Peering(id).IsTransit() {
			t.Error("non-transit peering in TransitPeeringIDs")
		}
	}
}

func TestNewValidation(t *testing.T) {
	pops := []PoP{{ID: 1, Metro: "nyc"}}
	if _, err := New(1, pops, []Peering{{ID: 1, PoP: 2, ClassAtPeer: bgp.ClassPeer}}); err == nil {
		t.Error("peering with unknown PoP should fail")
	}
	if _, err := New(1, []PoP{{ID: 1}, {ID: 1}}, nil); err == nil {
		t.Error("duplicate PoP id should fail")
	}
	if _, err := New(1, pops, []Peering{
		{ID: 1, PoP: 1, ClassAtPeer: bgp.ClassPeer},
		{ID: 1, PoP: 1, ClassAtPeer: bgp.ClassPeer},
	}); err == nil {
		t.Error("duplicate peering id should fail")
	}
	if _, err := New(1, pops, []Peering{{ID: 1, PoP: 1, ClassAtPeer: bgp.ClassProvider}}); err == nil {
		t.Error("provider-class peering should fail (cloud sells transit to no one here)")
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := testGraph(t)
	prof := Profile{Name: "t", PoPMetros: 10, PeerFrac: 0.8, TransitProviders: 2, Seed: 3}
	a, err := Build(g, 64500, prof)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, 64500, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Peerings) != len(b.Peerings) || len(a.PoPs) != len(b.PoPs) {
		t.Fatal("deployment differs across builds")
	}
	for i := range a.Peerings {
		if a.Peerings[i] != b.Peerings[i] {
			t.Fatal("peering differs across builds")
		}
	}
}

func TestNewFillsPoPCoordinates(t *testing.T) {
	d, err := New(1, []PoP{{ID: 0, Metro: "nyc"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := geo.MetroByCode("nyc")
	if d.PoP(0).Coord != m.Coord {
		t.Errorf("coord = %v, want %v", d.PoP(0).Coord, m.Coord)
	}
	// Unknown metro with zero coord is rejected.
	if _, err := New(1, []PoP{{ID: 0, Metro: "zzz"}}, nil); err == nil {
		t.Error("unknown metro with zero coord should fail")
	}
	// Explicit coords are preserved.
	c := geo.Coord{Lat: 1, Lon: 2}
	d, err = New(1, []PoP{{ID: 0, Metro: "custom", Coord: c}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.PoP(0).Coord != c {
		t.Error("explicit coord overwritten")
	}
}
