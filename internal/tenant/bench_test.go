package tenant

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchSmall(t *testing.T) {
	res, err := RunBench(BenchConfig{Counts: []int{1, 2}, Seed: 7, Ticks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Syncs == 0 || row.Events == 0 {
			t.Errorf("empty row %+v", row)
		}
		if row.EventsPerSec <= 0 || row.P99SyncMs < row.P50SyncMs {
			t.Errorf("implausible row %+v", row)
		}
	}
	if res.Rows[1].Tenants != 2 || res.Rows[1].Syncs <= res.Rows[0].Syncs {
		t.Errorf("2-tenant row should sync more than 1-tenant row: %+v", res.Rows)
	}

	tab := res.Table().String()
	if !strings.Contains(tab, "multi-tenant") || !strings.Contains(tab, "p99 sync ms") {
		t.Errorf("table = %q", tab)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Rows[0].Tenants != 1 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestBenchQuantile(t *testing.T) {
	if q := benchQuantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	xs := []float64{1, 2, 3, 4, 5}
	if q := benchQuantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := benchQuantile(xs, 0.99); q != 4 {
		t.Errorf("p99 nearest-rank = %v", q)
	}
}
