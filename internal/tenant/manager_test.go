package tenant

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
	"time"

	"painter/internal/bgp"
	"painter/internal/chaos"
	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/experiments"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// quietManager builds a Manager with a long background interval so
// tests fully control reconcile timing via Reconcile().
func quietManager(t *testing.T) *Manager {
	t.Helper()
	m := NewManager(Params{ReconcileInterval: time.Hour})
	t.Cleanup(m.Close)
	return m
}

// pausedSpec is a deterministic, manually-driven tenant: paused (no
// timer steps mutate anything) with a short default-profile schedule.
func pausedSpec(seed, chaosSeed int64, ticks int) Spec {
	return Spec{
		Scale: "small", Seed: seed, TickMs: 1, Paused: true,
		Chaos: ChaosSpec{Profile: "default", Seed: chaosSeed, Ticks: ticks},
	}
}

func configBytes(cfg core.Config) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cfg.Prefixes)))
	for _, S := range cfg.Prefixes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(S)))
		for _, ing := range S {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ing))
		}
	}
	return buf
}

// driveToCompletion manually steps a tenant through its whole schedule
// (plus the final-evaluation tick) and returns the final status.
func driveToCompletion(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	st, ok := m.Status(id)
	if !ok {
		t.Fatalf("tenant %q has no runtime", id)
	}
	for i := 0; i < st.ScheduleTicks+2; i++ {
		if _, err := m.Step(id); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	st, _ = m.Status(id)
	if !st.ScheduleDone || st.FinalBenefitMs == 0 {
		t.Fatalf("schedule did not complete: %+v", st)
	}
	return st
}

func TestManagerLifecycle(t *testing.T) {
	m := quietManager(t)
	if _, err := m.Apply("acme", pausedSpec(7, 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	m.Reconcile()
	st, ok := m.Status("acme")
	if !ok {
		t.Fatal("no runtime after reconcile")
	}
	if st.Phase != PhasePaused || st.Generation != 1 {
		t.Errorf("status = %+v", st)
	}
	if st.Budget < 5 {
		t.Errorf("auto budget = %d, want >= 5", st.Budget)
	}
	if st.Prefixes == 0 {
		t.Error("initial solve produced no prefixes")
	}
	if st.ScheduleTicks == 0 {
		t.Error("default chaos profile should generate a schedule")
	}

	// Remove: runtime torn down on the next reconcile.
	if !m.Remove("acme") {
		t.Error("Remove of stored tenant = false")
	}
	m.Reconcile()
	if _, ok := m.Status("acme"); ok {
		t.Error("runtime survived removal")
	}
}

func TestManagerUpdateWhilePaused(t *testing.T) {
	m := quietManager(t)
	spec := pausedSpec(7, 1, 10)
	st1, err := m.Apply("acme", spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Reconcile()
	for i := 0; i < 3; i++ {
		if _, err := m.Step("acme"); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := m.Status("acme")

	// Bump the budget while paused: applied in place, same runtime.
	spec.Budget = before.Budget + 2
	st2, err := m.Apply("acme", spec, st1.Generation)
	if err != nil {
		t.Fatal(err)
	}
	m.Reconcile()
	after, ok := m.Status("acme")
	if !ok {
		t.Fatal("runtime gone after in-place update")
	}
	if after.Generation != st2.Generation {
		t.Errorf("observed generation %d, want %d", after.Generation, st2.Generation)
	}
	if after.Phase != PhasePaused {
		t.Errorf("phase = %s, want Paused", after.Phase)
	}
	if after.Budget != spec.Budget {
		t.Errorf("budget = %d, want %d", after.Budget, spec.Budget)
	}
	// A rebuild would have reset the sync counters.
	if after.Syncs != before.Syncs || after.EventsApplied != before.EventsApplied {
		t.Errorf("in-place update reset progress: before %+v after %+v", before, after)
	}
	// And the tenant still steps from where it left off.
	if _, err := m.Step("acme"); err != nil {
		t.Fatal(err)
	}
}

func TestManagerRebuildOnIdentityChange(t *testing.T) {
	m := quietManager(t)
	spec := pausedSpec(7, 1, 10)
	if _, err := m.Apply("acme", spec, 0); err != nil {
		t.Fatal(err)
	}
	m.Reconcile()
	for i := 0; i < 3; i++ {
		if _, err := m.Step("acme"); err != nil {
			t.Fatal(err)
		}
	}
	spec.Seed = 8
	st, err := m.Apply("acme", spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Reconcile()
	after, ok := m.Status("acme")
	if !ok {
		t.Fatal("runtime gone after rebuild")
	}
	if after.Generation != st.Generation {
		t.Errorf("generation = %d, want %d", after.Generation, st.Generation)
	}
	if after.Syncs != 0 || after.ScheduleTick != 0 {
		t.Errorf("identity change should rebuild from scratch: %+v", after)
	}
}

func TestManagerDeleteNeverStarted(t *testing.T) {
	m := quietManager(t)
	// Write the desired state without kicking the reconcile loop: the
	// runtime is never built.
	if _, err := m.Store().Put("ghost", pausedSpec(7, 1, 5), 0); err != nil {
		t.Fatal(err)
	}
	if !m.Remove("ghost") {
		t.Error("Remove of never-started tenant = false")
	}
	m.Reconcile()
	if _, ok := m.Status("ghost"); ok {
		t.Error("runtime exists for never-started tenant")
	}
	if m.Remove("ghost") {
		t.Error("second Remove = true")
	}
	if _, err := m.Step("ghost"); err == nil {
		t.Error("Step of unknown tenant should error")
	}
}

// TestManagerDeterminism runs the same two specs in two managers,
// driving each tenant manually, and asserts the per-step config byte
// streams and final numbers match exactly.
func TestManagerDeterminism(t *testing.T) {
	run := func() (streams map[string][]byte, finals map[string]Status) {
		m := NewManager(Params{ReconcileInterval: time.Hour})
		defer m.Close()
		specs := map[string]Spec{
			"acme": pausedSpec(7, 1, 10),
			"beta": pausedSpec(11, 5, 10),
		}
		for id, sp := range specs {
			if _, err := m.Apply(id, sp, 0); err != nil {
				t.Fatal(err)
			}
		}
		m.Reconcile()
		streams = map[string][]byte{}
		finals = map[string]Status{}
		for id := range specs {
			st, _ := m.Status(id)
			for i := 0; i < st.ScheduleTicks+2; i++ {
				if _, err := m.Step(id); err != nil {
					t.Fatal(err)
				}
				cfg, _ := m.Config(id)
				streams[id] = append(streams[id], configBytes(cfg)...)
			}
			finals[id], _ = m.Status(id)
		}
		return streams, finals
	}
	s1, f1 := run()
	s2, f2 := run()
	for id := range s1 {
		if !bytes.Equal(s1[id], s2[id]) {
			t.Errorf("tenant %s: same-spec runs diverged", id)
		}
		a, b := f1[id], f2[id]
		if a.FinalBenefitMs != b.FinalBenefitMs || a.EventsApplied != b.EventsApplied ||
			a.Syncs != b.Syncs || a.Prefixes != b.Prefixes {
			t.Errorf("tenant %s: final status diverged: %+v vs %+v", id, a, b)
		}
	}
	// Different seeds must actually produce different tenants.
	if bytes.Equal(s1["acme"], s1["beta"]) {
		t.Error("different seeds produced identical config streams")
	}
}

// TestTenantConvergesToColdSolve is the twin-rig differential from the
// acceptance criteria: two tenants with different seeds and chaos run
// in one manager; each must converge within 1% of a cold full solve on
// an identically-built, identically-churned standalone world.
func TestTenantConvergesToColdSolve(t *testing.T) {
	m := quietManager(t)
	specs := map[string]Spec{
		"acme": pausedSpec(7, 20230815, 15),
		"beta": pausedSpec(11, 424242, 15),
	}
	for id, sp := range specs {
		if _, err := m.Apply(id, sp, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Reconcile()
	for id, sp := range specs {
		st := driveToCompletion(t, m, id)
		want := coldSolveBenefit(t, sp)
		if st.FinalBenefitMs < 0.99*want-1e-9 {
			t.Errorf("tenant %s: benefit %.3f below 99%%%% of cold solve %.3f",
				id, st.FinalBenefitMs, want)
		}
	}
}

// coldSolveBenefit builds the tenant's twin world from the spec alone
// (same seed derivations), replays the same schedule, cold-solves, and
// returns the ground-truth benefit.
func coldSolveBenefit(t *testing.T, spec Spec) float64 {
	t.Helper()
	spec.Normalize()
	sc, _ := scaleFor(spec.Scale)
	genCfg, prof, ugCfg, err := experiments.ScaleConfig(sc, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Generate(genCfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, prof)
	if err != nil {
		t.Fatal(err)
	}
	w, err := netsim.New(g, d, spec.Seed+2)
	if err != nil {
		t.Fatal(err)
	}
	ugs, err := usergroup.Build(g, ugCfg)
	if err != nil {
		t.Fatal(err)
	}
	gc := chaosProfiles[spec.Chaos.Profile](spec.Chaos.Seed)
	if spec.Chaos.Ticks > 0 {
		gc.Ticks = spec.Chaos.Ticks
	}
	sched, err := chaos.Generate(g, d, gc)
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range sched {
		if err := w.ApplyEvent(se.Ev); err != nil {
			t.Fatal(err)
		}
	}
	in, _, err := core.SimInputs(w, ugs, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.New(in, nil, core.DefaultParams(resolveBudget(spec, d)))
	if err != nil {
		t.Fatal(err)
	}
	cold := o.ComputeConfigLive(func(id bgp.IngressID) bool { return !w.IngressDown(id) })
	ev, err := core.Evaluate(w, ugs, cold)
	if err != nil {
		t.Fatal(err)
	}
	return ev.Benefit
}

// TestManagerNoGoroutineLeak adds and removes tenants under load and
// asserts the process returns to its baseline goroutine count.
func TestManagerNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := NewManager(Params{ReconcileInterval: 10 * time.Millisecond})
	for _, id := range []string{"a1", "a2", "a3"} {
		spec := Spec{
			Scale: "small", Seed: 7, TickMs: 2,
			Chaos: ChaosSpec{Profile: "default", Seed: 3, Ticks: 30},
		}
		if _, err := m.Apply(id, spec, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Reconcile()
	// Load: manual steps racing the tick loops, then a removal mid-run.
	for i := 0; i < 10; i++ {
		for _, id := range []string{"a1", "a2", "a3"} {
			_, _ = m.Step(id)
		}
	}
	m.Remove("a2")
	m.Reconcile()
	if _, ok := m.Status("a2"); ok {
		t.Error("a2 survived removal")
	}
	for i := 0; i < 5; i++ {
		_, _ = m.Step("a1")
	}
	m.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}

// TestManagerRegistriesLabeled asserts every tenant registry carries
// the tenant base label and appears/disappears with the tenant.
func TestManagerRegistriesLabeled(t *testing.T) {
	m := quietManager(t)
	if _, err := m.Apply("acme", pausedSpec(7, 1, 5), 0); err != nil {
		t.Fatal(err)
	}
	m.Reconcile()
	regs := m.Registries()
	// Manager registry first (unlabeled), then the tenant's two.
	if len(regs) != 3 {
		t.Fatalf("got %d registries, want 3", len(regs))
	}
	for _, r := range regs[1:] {
		ls := r.BaseLabels()
		if len(ls) != 1 || ls[0].Key != "tenant" || ls[0].Value != "acme" {
			t.Errorf("tenant registry base labels = %v", ls)
		}
	}
	m.Remove("acme")
	m.Reconcile()
	if got := len(m.Registries()); got != 1 {
		t.Errorf("registries after removal = %d, want 1", got)
	}
}
