package tenant

import (
	"strings"
	"testing"
)

// validSpec is the smallest acceptable spec.
func validSpec() Spec {
	return Spec{Scale: "small", Seed: 7, TickMs: 10}
}

func fieldsOf(t *testing.T, err error) map[string]string {
	t.Helper()
	verr, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	out := map[string]string{}
	for _, f := range verr.Fields {
		out[f.Field] = f.Msg
	}
	return out
}

func TestSpecValidateAccepts(t *testing.T) {
	cases := []Spec{
		validSpec(),
		{Version: "v1", Scale: "peering", Seed: -3, TickMs: 1},
		{Scale: "azure", TickMs: 2000, Budget: 40,
			Chaos: ChaosSpec{Profile: "storm", Seed: 9, Ticks: 50}},
		{Scale: "small", TickMs: 5, Chaos: ChaosSpec{Profile: "calm"}, Paused: true},
		{Scale: "small", TickMs: 5, Chaos: ChaosSpec{Profile: "none"}},
	}
	for i, s := range cases {
		if err := s.Validate(); err != nil {
			t.Errorf("case %d: valid spec rejected: %v", i, err)
		}
		if s.Version != SpecVersion {
			t.Errorf("case %d: Validate did not normalize version: %q", i, s.Version)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Spec)
		field string
	}{
		{"unknown scale", func(s *Spec) { s.Scale = "galactic" }, "scale"},
		{"empty scale", func(s *Spec) { s.Scale = "" }, "scale"},
		{"zero tick", func(s *Spec) { s.TickMs = 0 }, "tick_ms"},
		{"negative tick", func(s *Spec) { s.TickMs = -5 }, "tick_ms"},
		{"negative budget", func(s *Spec) { s.Budget = -1 }, "budget"},
		{"bad version", func(s *Spec) { s.Version = "v2" }, "version"},
		{"unknown chaos profile", func(s *Spec) { s.Chaos.Profile = "volcano" }, "chaos.profile"},
		{"negative chaos ticks", func(s *Spec) { s.Chaos.Ticks = -1 }, "chaos.ticks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("spec accepted")
			}
			fields := fieldsOf(t, err)
			if _, ok := fields[tc.field]; !ok {
				t.Errorf("no error on field %q; got %v", tc.field, fields)
			}
		})
	}
}

func TestSpecValidateAggregatesFields(t *testing.T) {
	s := Spec{Scale: "nope", TickMs: 0, Budget: -2, Chaos: ChaosSpec{Profile: "bad", Ticks: -1}}
	err := s.Validate()
	if err == nil {
		t.Fatal("spec accepted")
	}
	fields := fieldsOf(t, err)
	for _, want := range []string{"scale", "tick_ms", "budget", "chaos.profile", "chaos.ticks"} {
		if _, ok := fields[want]; !ok {
			t.Errorf("missing field error %q in %v", want, fields)
		}
	}
	if !strings.Contains(err.Error(), "tick_ms") {
		t.Errorf("Error() should name fields: %q", err.Error())
	}
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"a", "bootstrap", "acme-prod-2", "0x"} {
		if err := ValidateID(id); err != nil {
			t.Errorf("id %q rejected: %v", id, err)
		}
	}
	long := strings.Repeat("a", 64)
	for _, id := range []string{"", "-lead", "UPPER", "has space", "dot.dot", long} {
		if err := ValidateID(id); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func TestNeedsRebuild(t *testing.T) {
	base := validSpec()
	mutable := base
	mutable.Budget = 99
	mutable.TickMs = 500
	mutable.Paused = true
	if NeedsRebuild(base, mutable) {
		t.Error("budget/tick/pause change should not need a rebuild")
	}
	for _, mut := range []func(*Spec){
		func(s *Spec) { s.Scale = "peering" },
		func(s *Spec) { s.Seed = 8 },
		func(s *Spec) { s.Chaos.Profile = "storm" },
		func(s *Spec) { s.Chaos.Seed = 1 },
		func(s *Spec) { s.Chaos.Ticks = 30 },
	} {
		next := base
		mut(&next)
		if !NeedsRebuild(base, next) {
			t.Errorf("identity change %+v should need a rebuild", next)
		}
	}
	// "" and "none" normalize to the same profile.
	a, b := base, base
	b.Chaos.Profile = "none"
	if NeedsRebuild(a, b) {
		t.Error("empty profile vs none should not need a rebuild")
	}
}
