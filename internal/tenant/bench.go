package tenant

// N-tenant steady-state churn benchmark: how does one painterd-style
// process behave as the tenant count grows? For each tenant count the
// bench reconciles N small-scale tenants (distinct seeds, distinct
// default-profile fault schedules) into one Manager, then drives every
// tenant's full schedule concurrently — one goroutine per tenant, one
// manual Step per tick — timing each Sync. Headlines per row: events
// synced per second across the fleet and the p50/p99 per-Sync latency,
// the numbers that say whether tenant count degrades per-tenant
// responsiveness.

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"

	"painter/internal/benchmeta"
	"painter/internal/experiments"
)

// BenchConfig parameterizes the churn benchmark.
type BenchConfig struct {
	// Counts are the tenant counts to sweep (default 1, 4, 16).
	Counts []int
	// Seed derives every tenant's world and schedule seed.
	Seed int64
	// Ticks is each tenant's fault-schedule length (default 40, the
	// chaos default).
	Ticks int
}

// BenchRow is one tenant-count measurement.
type BenchRow struct {
	Tenants int `json:"tenants"`
	// BuildMs is the wall time to reconcile all N worlds into existence.
	BuildMs float64 `json:"build_ms"`
	// WallMs is the wall time for the concurrent churn phase (every
	// tenant's full schedule, driven in parallel).
	WallMs float64 `json:"wall_ms"`
	// Syncs and Events are fleet-wide totals for the churn phase.
	Syncs  uint64 `json:"syncs"`
	Events uint64 `json:"events"`
	// EventsPerSec is Events / wall seconds — fleet churn throughput.
	EventsPerSec float64 `json:"events_per_sec"`
	SyncsPerSec  float64 `json:"syncs_per_sec"`
	// P50SyncMs / P99SyncMs summarize individual Sync latencies across
	// every tenant.
	P50SyncMs float64 `json:"p50_sync_ms"`
	P99SyncMs float64 `json:"p99_sync_ms"`
}

// BenchResult is the benchmark outcome; it marshals directly to
// BENCH_TENANTS.json. Meta stays zero here (deterministic library
// code); cmd/painter-bench stamps it just before writing.
type BenchResult struct {
	benchmeta.Meta
	Scale string     `json:"scale"`
	Seed  int64      `json:"seed"`
	Ticks int        `json:"ticks"`
	Rows  []BenchRow `json:"rows"`
}

// RunBench sweeps the configured tenant counts.
func RunBench(cfg BenchConfig) (*BenchResult, error) {
	if len(cfg.Counts) == 0 {
		cfg.Counts = []int{1, 4, 16}
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 40
	}
	res := &BenchResult{Scale: "small", Seed: cfg.Seed, Ticks: cfg.Ticks}
	for _, n := range cfg.Counts {
		row, err := runBenchCount(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("tenant bench (n=%d): %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runBenchCount(cfg BenchConfig, n int) (BenchRow, error) {
	// Lifecycle logging is per-tenant noise at bench scale: drop it.
	m := NewManager(Params{
		ReconcileInterval: time.Hour,
		Logger:            slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer m.Close()

	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("t%02d", i)
		spec := Spec{
			Scale: "small", Seed: cfg.Seed + int64(i)*17,
			TickMs: 1, Paused: true,
			Chaos: ChaosSpec{
				Profile: "default",
				Seed:    cfg.Seed + 100 + int64(i),
				Ticks:   cfg.Ticks,
			},
		}
		if _, err := m.Apply(ids[i], spec, 0); err != nil {
			return BenchRow{}, err
		}
	}
	buildStart := time.Now()
	m.Reconcile()
	buildMs := float64(time.Since(buildStart).Nanoseconds()) / 1e6
	for _, id := range ids {
		st, ok := m.Status(id)
		if !ok {
			return BenchRow{}, fmt.Errorf("tenant %s never built", id)
		}
		if st.Error != "" {
			return BenchRow{}, fmt.Errorf("tenant %s failed: %s", id, st.Error)
		}
	}

	// Churn phase: every tenant's schedule driven concurrently to
	// completion, each Step timed individually.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		syncMs  []float64
		isolErr error
	)
	wallStart := time.Now()
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			st, _ := m.Status(id)
			local := make([]float64, 0, st.ScheduleTicks+2)
			for i := 0; i < st.ScheduleTicks+2; i++ {
				t0 := time.Now()
				if _, err := m.Step(id); err != nil {
					mu.Lock()
					if isolErr == nil {
						isolErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, float64(time.Since(t0).Nanoseconds())/1e6)
			}
			mu.Lock()
			syncMs = append(syncMs, local...)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	if isolErr != nil {
		return BenchRow{}, isolErr
	}

	row := BenchRow{Tenants: n, BuildMs: buildMs,
		WallMs: float64(wall.Nanoseconds()) / 1e6}
	for _, id := range ids {
		st, _ := m.Status(id)
		if !st.ScheduleDone {
			return BenchRow{}, fmt.Errorf("tenant %s did not finish its schedule", id)
		}
		row.Syncs += st.Syncs
		row.Events += st.EventsApplied
	}
	secs := wall.Seconds()
	if secs > 0 {
		row.EventsPerSec = float64(row.Events) / secs
		row.SyncsPerSec = float64(row.Syncs) / secs
	}
	sort.Float64s(syncMs)
	row.P50SyncMs = benchQuantile(syncMs, 0.50)
	row.P99SyncMs = benchQuantile(syncMs, 0.99)
	return row, nil
}

// benchQuantile is nearest-rank on an already-sorted slice.
func benchQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// Table renders the result for painter-bench.
func (r *BenchResult) Table() experiments.Table {
	t := experiments.Table{
		Title: fmt.Sprintf("multi-tenant steady-state churn (%s scale, %d-tick schedules, seed %d)",
			r.Scale, r.Ticks, r.Seed),
		Header: []string{"tenants", "build ms", "wall ms", "syncs", "events",
			"events/s", "p50 sync ms", "p99 sync ms"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Tenants),
			fmt.Sprintf("%.0f", row.BuildMs),
			fmt.Sprintf("%.0f", row.WallMs),
			fmt.Sprintf("%d", row.Syncs),
			fmt.Sprintf("%d", row.Events),
			fmt.Sprintf("%.0f", row.EventsPerSec),
			fmt.Sprintf("%.3f", row.P50SyncMs),
			fmt.Sprintf("%.3f", row.P99SyncMs),
		})
	}
	return t
}

// WriteJSON writes the result to path as indented JSON.
func (r *BenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
