// Package tenant is PAINTER's multi-tenant control plane: the pivot
// from "one world per process" to "N reconciled worlds per process".
// The cloud-provider deployment story (§6) is steering ingress for many
// enterprise customers at once; tenants are the natural horizontal
// sharding unit for that. The package follows the operator pattern —
// a declarative, versioned Spec validated webhook-style on submission,
// a generation-numbered Store holding desired state, and a Manager
// whose reconcile loop diffs desired vs. actual and converges each
// tenant: building a world + continuous controller + fault schedule on
// add, applying mutable changes (budget, tick, pause) in place, and
// rebuilding or tearing down when the immutable identity changes or
// the spec disappears.
package tenant

import (
	"fmt"
	"regexp"
	"strings"

	"painter/internal/chaos"
	"painter/internal/experiments"
)

// SpecVersion is the only spec schema version this build understands.
const SpecVersion = "v1"

// ChaosSpec selects the tenant's fault schedule: a named profile, the
// schedule seed, and the schedule length in ticks (0 = the profile's
// default length).
type ChaosSpec struct {
	// Profile is one of "none", "default", "calm", "storm". Empty means
	// "none": a tenant with no churn at all.
	Profile string `json:"profile,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Ticks   int    `json:"ticks,omitempty"`
}

// Spec is the declarative desired state of one tenant. Scale, Seed, and
// Chaos are the tenant's identity: changing them forces a world rebuild
// on the next reconcile. Budget, TickMs, and Paused are mutable in
// place — the reconcile loop applies them to the running tenant without
// touching its world or controller state.
type Spec struct {
	// Version is the spec schema version; empty defaults to SpecVersion.
	Version string `json:"version,omitempty"`
	// Scale names the world preset: "small", "peering", or "azure".
	Scale string `json:"scale"`
	// Seed is the world seed (topology, deployment, simulator, UGs all
	// derive from it exactly as experiments.NewEnv does).
	Seed int64 `json:"seed"`
	// Budget is the advertisement prefix budget; 0 auto-sizes to 10% of
	// the tenant's peerings (minimum 5), the painterd -continuous rule.
	Budget int `json:"budget,omitempty"`
	// TickMs is the tenant's sync cadence in milliseconds: every tick
	// the runtime applies the next schedule slot and runs one
	// controller Sync. Must be >= 1.
	TickMs int `json:"tick_ms"`
	// Chaos selects the fault schedule.
	Chaos ChaosSpec `json:"chaos,omitempty"`
	// Paused stops the tick loop without tearing anything down; manual
	// Step still works, and flipping it back resumes where it left off.
	Paused bool `json:"paused,omitempty"`
}

// FieldError is one field-level validation failure.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// ValidationError aggregates every field failure of one spec — the
// webhook-style reject-on-submit payload.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

func (e *ValidationError) Error() string {
	var b strings.Builder
	b.WriteString("invalid tenant spec: ")
	for i, f := range e.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %s", f.Field, f.Msg)
	}
	return b.String()
}

// chaosProfiles maps profile names to schedule-shape constructors.
// "none" is handled separately (no schedule at all).
var chaosProfiles = map[string]func(seed int64) chaos.GenConfig{
	"default": chaos.DefaultGenConfig,
	// calm: latency spikes, probe loss, and preference flips only — a
	// tenant whose routes never actually fail.
	"calm": func(seed int64) chaos.GenConfig {
		gc := chaos.DefaultGenConfig(seed)
		gc.PeeringFailProb, gc.PoPOutageProb, gc.StormProb = 0, 0, 0
		return gc
	},
	// storm: withdrawal storms and failures dominate — the route-churn
	// burst workload.
	"storm": func(seed int64) chaos.GenConfig {
		gc := chaos.DefaultGenConfig(seed)
		gc.StormProb, gc.StormSize = 0.25, 6
		gc.PeeringFailProb = 0.45
		return gc
	},
}

// ChaosProfiles returns the sorted accepted profile names.
func ChaosProfiles() []string {
	return []string{"calm", "default", "none", "storm"}
}

// idPattern bounds tenant IDs so they are safe as metric label values,
// URL path segments, and log fields.
var idPattern = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]{0,62})$`)

// ValidateID checks a tenant ID: DNS-label shaped, 1-63 chars.
func ValidateID(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("tenant: invalid id %q (want lowercase alphanumerics and dashes, 1-63 chars, leading alphanumeric)", id)
	}
	return nil
}

// scaleFor maps a spec scale name to the experiments preset.
func scaleFor(name string) (experiments.Scale, bool) {
	switch name {
	case "small":
		return experiments.ScaleSmall, true
	case "peering":
		return experiments.ScalePEERING, true
	case "azure":
		return experiments.ScaleAzure, true
	}
	return 0, false
}

// Normalize fills defaulted fields (version, chaos profile) in place.
// Validate calls it; callers only need it when diffing specs.
func (s *Spec) Normalize() {
	if s.Version == "" {
		s.Version = SpecVersion
	}
	if s.Chaos.Profile == "" {
		s.Chaos.Profile = "none"
	}
}

// Validate normalizes the spec and checks every field, returning a
// *ValidationError carrying one entry per bad field (nil when the spec
// is acceptable). This is the single admission gate: the store only
// ever holds specs that passed it.
func (s *Spec) Validate() error {
	s.Normalize()
	var fields []FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	if s.Version != SpecVersion {
		add("version", "unsupported spec version %q (want %q)", s.Version, SpecVersion)
	}
	if s.Scale == "" {
		add("scale", "required: one of small, peering, azure")
	} else if _, ok := scaleFor(s.Scale); !ok {
		add("scale", "unknown scale preset %q (want small, peering, or azure)", s.Scale)
	}
	if s.TickMs <= 0 {
		add("tick_ms", "must be >= 1, got %d", s.TickMs)
	}
	if s.Budget < 0 {
		add("budget", "must be >= 0 (0 auto-sizes), got %d", s.Budget)
	}
	if s.Chaos.Profile != "none" {
		if _, ok := chaosProfiles[s.Chaos.Profile]; !ok {
			add("chaos.profile", "unknown profile %q (want one of %s)",
				s.Chaos.Profile, strings.Join(ChaosProfiles(), ", "))
		}
	}
	if s.Chaos.Ticks < 0 {
		add("chaos.ticks", "must be >= 0 (0 uses the profile default), got %d", s.Chaos.Ticks)
	}
	if len(fields) == 0 {
		return nil
	}
	return &ValidationError{Fields: fields}
}

// NeedsRebuild reports whether moving from old to new requires tearing
// the tenant's world down and rebuilding (an identity field changed),
// as opposed to the in-place mutable set (budget, tick, pause).
func NeedsRebuild(old, new Spec) bool {
	old.Normalize()
	new.Normalize()
	return old.Scale != new.Scale || old.Seed != new.Seed || old.Chaos != new.Chaos
}
