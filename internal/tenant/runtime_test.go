package tenant

import (
	"errors"
	"io"
	"log/slog"
	"testing"
	"time"

	"painter/internal/bgp"
	"painter/internal/netsim"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestFailedInstancePlaceholder(t *testing.T) {
	st := Stored{ID: "broken", Spec: validSpec(), Generation: 3}
	in := failedInstance(st, discardLogger(), errors.New("build exploded"))
	s := in.status()
	if s.Phase != PhaseFailed || s.Generation != 3 || s.Error == "" {
		t.Errorf("status = %+v", s)
	}
	if _, err := in.step(true); err == nil {
		t.Error("step of failed instance should error")
	}
	done := make(chan struct{})
	go func() { in.close(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("close of failed instance blocked")
	}
	if in.config().Prefixes != nil {
		t.Error("failed instance has a config")
	}
	if got := in.registries(); len(got) != 0 {
		t.Errorf("failed instance exposes %d registries", len(got))
	}
}

// A bad schedule event fails the tenant mid-run: the phase flips to
// Failed, the error surfaces in status, and further steps refuse.
func TestInstanceFailsOnBadEvent(t *testing.T) {
	st := Stored{ID: "acme", Spec: pausedSpec(7, 1, 5), Generation: 1}
	st.Spec.Normalize()
	in, err := buildInstance(st, discardLogger(), nil)
	if err != nil {
		t.Fatal(err)
	}
	go in.loop()
	defer in.close()
	in.byTick[0] = []netsim.Event{{Kind: netsim.EventPeeringDown, Ingress: bgp.IngressID(1 << 30)}}
	if _, err := in.step(true); err == nil {
		t.Fatal("bad event did not fail the step")
	}
	s := in.status()
	if s.Phase != PhaseFailed || s.Error == "" {
		t.Errorf("status after bad event = %+v", s)
	}
	if _, err := in.step(true); err == nil {
		t.Error("failed tenant accepted another step")
	}
}

func TestManagerReportsAndStatuses(t *testing.T) {
	m := quietManager(t)
	for _, id := range []string{"acme", "beta"} {
		if _, err := m.Apply(id, pausedSpec(7, 1, 5), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Reconcile()
	for i := 0; i < 3; i++ {
		if _, err := m.Step("acme"); err != nil {
			t.Fatal(err)
		}
	}
	reps, ok := m.Reports("acme")
	if !ok || len(reps) != 3 {
		t.Fatalf("reports = %v, %v", reps, ok)
	}
	for i, r := range reps {
		if r.Tick != i {
			t.Errorf("report %d has tick %d", i, r.Tick)
		}
	}
	if _, ok := m.Reports("nope"); ok {
		t.Error("reports for unknown tenant")
	}
	sts := m.Statuses()
	if len(sts) != 2 || sts[0].ID != "acme" || sts[1].ID != "beta" {
		t.Errorf("statuses = %+v", sts)
	}
	if m.Obs() == nil {
		t.Error("manager has no registry")
	}
	if (&ConflictError{ID: "x", Expected: 1, Current: 2}).Error() == "" {
		t.Error("empty conflict error string")
	}
}
