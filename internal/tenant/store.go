package tenant

import (
	"fmt"
	"sort"
	"sync"
)

// Stored is one accepted spec plus the generation number it was stored
// at. Generations come from a store-wide monotone counter, so any two
// writes — to the same tenant or different ones — are totally ordered.
type Stored struct {
	ID         string `json:"id"`
	Spec       Spec   `json:"spec"`
	Generation int64  `json:"generation"`
}

// ConflictError reports a conditional Put that lost a generation race:
// the caller expected the tenant at one generation but found another.
type ConflictError struct {
	ID       string
	Expected int64
	Current  int64
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("tenant %q: generation conflict: expected %d, current %d",
		e.ID, e.Expected, e.Current)
}

// Store holds the desired state: validated specs keyed by tenant ID,
// each stamped with the generation of its last write. It is the
// "desired" half the Manager reconciles against.
type Store struct {
	mu    sync.Mutex
	gen   int64
	specs map[string]Stored
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{specs: make(map[string]Stored)}
}

// Put validates and stores a spec, assigning the next generation.
// expect is optimistic-concurrency control: 0 writes unconditionally;
// a positive value must equal the tenant's current generation or the
// write fails with *ConflictError (a concurrent writer got there
// first). Creating a tenant conditionally (expect > 0 with no existing
// spec) also conflicts, with Current 0. Returns the stored record.
func (s *Store) Put(id string, spec Spec, expect int64) (Stored, error) {
	if err := ValidateID(id); err != nil {
		return Stored{}, err
	}
	if err := spec.Validate(); err != nil {
		return Stored{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, exists := s.specs[id]
	if expect > 0 {
		curGen := int64(0)
		if exists {
			curGen = cur.Generation
		}
		if curGen != expect {
			return Stored{}, &ConflictError{ID: id, Expected: expect, Current: curGen}
		}
	}
	s.gen++
	st := Stored{ID: id, Spec: spec, Generation: s.gen}
	s.specs[id] = st
	return st, nil
}

// Get returns the stored spec for id.
func (s *Store) Get(id string) (Stored, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.specs[id]
	return st, ok
}

// Delete removes id from the desired state, reporting whether it was
// present. The Manager's next reconcile tears the runtime down.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.specs[id]
	delete(s.specs, id)
	return ok
}

// List returns every stored spec, sorted by ID.
func (s *Store) List() []Stored {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stored, 0, len(s.specs))
	for _, st := range s.specs {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of stored specs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.specs)
}
