package tenant

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"sync"
	"time"

	"painter/internal/chaos"
	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/experiments"
	"painter/internal/netsim"
	"painter/internal/obs"
	"painter/internal/obs/alert"
	"painter/internal/obs/history"
	"painter/internal/obs/span"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// Phase is the reconcile state of one tenant runtime.
type Phase string

// Phases. A tenant is Running or Paused in steady state, Failed when
// its world build or tick loop errored (it stays down until its spec
// changes), and Terminating only transiently during teardown.
const (
	PhaseRunning     Phase = "Running"
	PhasePaused      Phase = "Paused"
	PhaseFailed      Phase = "Failed"
	PhaseTerminating Phase = "Terminating"
)

// Status is the observed state of one tenant, the /tenants/{id}/status
// payload.
type Status struct {
	ID         string `json:"id"`
	Generation int64  `json:"generation"`
	Phase      Phase  `json:"phase"`
	Error      string `json:"error,omitempty"`
	Spec       Spec   `json:"spec"`
	// Budget is the resolved prefix budget (spec budget or the
	// auto-sized value when the spec says 0).
	Budget int `json:"budget"`
	// ScheduleTick is the next fault-schedule slot to apply;
	// ScheduleTicks is the total slot count (0 for chaos profile
	// "none"); ScheduleDone reports the schedule fully replayed.
	ScheduleTick  int  `json:"schedule_tick"`
	ScheduleTicks int  `json:"schedule_ticks"`
	ScheduleDone  bool `json:"schedule_done"`

	EventsApplied uint64 `json:"events_applied"`
	Syncs         uint64 `json:"syncs"`
	Repairs       uint64 `json:"repairs"`
	FullSolves    uint64 `json:"full_solves"`
	Noops         uint64 `json:"noops"`

	LastOutcome string `json:"last_outcome,omitempty"`
	Prefixes    int    `json:"prefixes"`
	// FinalBenefitMs is the ground-truth benefit evaluated once, right
	// after the schedule's final recovery converged.
	FinalBenefitMs float64 `json:"final_benefit_ms,omitempty"`
}

// SyncRecord is one tick's outcome, kept in a bounded per-tenant ring
// (the /tenants/{id}/reports payload).
type SyncRecord struct {
	Tick           int     `json:"tick"`
	Events         int     `json:"events"`
	Outcome        string  `json:"outcome"`
	Dirty          int     `json:"dirty"`
	DirtyFraction  float64 `json:"dirty_fraction"`
	AnycastChanged int     `json:"anycast_changed"`
	Prefixes       int     `json:"prefixes"`
	DurationMs     float64 `json:"duration_ms"`
}

// reportRing bounds the per-tenant sync history.
const reportRing = 128

// instance is one reconciled tenant runtime: a private world churned by
// the tenant's fault schedule, a continuous controller syncing every
// tick, and the tenant-labeled observability handles. All mutable state
// is guarded by mu; the tick loop, manual Step, in-place updates, and
// status reads all serialize on it, which is what makes the
// netsim contract (no ApplyEvent concurrent with queries) hold.
type instance struct {
	id string

	mu       sync.Mutex
	spec     Spec
	gen      int64
	phase    Phase
	runErr   error
	stopOnce sync.Once

	deploy *cloud.Deployment
	world  *netsim.World
	ugs    *usergroup.Set
	ctrl   *core.Controller
	budget int
	logger *slog.Logger

	byTick  map[int][]netsim.Event
	maxTick int // -1 when the tenant has no fault schedule
	tick    int

	reg    *obs.Registry
	tracer *span.Tracer

	// Analysis tier: per-tick history sampling over the tenant's
	// registries, the incremental catchment view feeding the per-PoP
	// share gauges, and the alert engine judging the three built-in
	// detectors. All deterministic: the history clock is tick-derived,
	// and Eval runs on the same serialized cadence as Sync.
	hist   *history.Store
	alerts *alert.Engine
	catch  *netsim.CatchmentAnalyzer
	catchG *netsim.CatchmentGauges

	eventsApplied uint64
	syncs         uint64
	repairs       uint64
	fullSolves    uint64
	noops         uint64
	lastOutcome   string
	prefixes      int
	finalBenefit  float64
	finalDone     bool
	reports       []SyncRecord

	stop     chan struct{}
	loopDone chan struct{}
}

// tenantSeed derives a per-tenant tracer seed from the ID and world
// seed — deterministic, and distinct across tenants so derived ID
// streams do not collide.
func tenantSeed(id string, seed int64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return h.Sum64() ^ uint64(seed)*0x9e3779b97f4a7c15
}

// resolveBudget applies the painterd -continuous auto-sizing rule: an
// explicit budget wins; otherwise 10% of the tenant's peerings, at
// least 5, at most all of them.
func resolveBudget(spec Spec, d *cloud.Deployment) int {
	if spec.Budget > 0 {
		return spec.Budget
	}
	n := len(d.AllPeeringIDs())
	b := n / 10
	if b < 5 {
		b = 5
	}
	if b > n && n > 0 {
		b = n
	}
	return b
}

// buildInstance constructs a tenant runtime from its stored spec: the
// world (seeded exactly as experiments.NewEnv seeds it, so a tenant is
// bit-for-bit the single-world environment of the same scale and
// seed), the user groups, the continuous controller with tenant-scoped
// metrics and tracing, and the generated fault schedule. It does not
// start the tick loop — the Manager does, after registering the
// instance.
func buildInstance(st Stored, logger *slog.Logger, parent *span.Tracer) (*instance, error) {
	spec := st.Spec
	spec.Normalize()
	sc, ok := scaleFor(spec.Scale)
	if !ok {
		return nil, fmt.Errorf("tenant %q: unknown scale %q", st.ID, spec.Scale)
	}
	genCfg, prof, ugCfg, err := experiments.ScaleConfig(sc, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", st.ID, err)
	}
	g, err := topology.Generate(genCfg)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: topology: %w", st.ID, err)
	}
	d, err := cloud.Build(g, 64500, prof)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: deployment: %w", st.ID, err)
	}
	w, err := netsim.New(g, d, spec.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: world: %w", st.ID, err)
	}
	ugs, err := usergroup.Build(g, ugCfg)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: usergroups: %w", st.ID, err)
	}

	// Tenant-scoped observability: the world's registry and a fresh
	// controller registry both expose every metric with tenant="<id>";
	// the derived tracer stamps every span the same way into the
	// process-wide flight recorder.
	w.Obs().SetBaseLabels(obs.L("tenant", st.ID))
	reg := obs.NewRegistry()
	reg.SetBaseLabels(obs.L("tenant", st.ID))
	tracer := parent.Derive(tenantSeed(st.ID, spec.Seed), span.A("tenant", st.ID))

	budget := resolveBudget(spec, d)
	params := core.DefaultParams(budget)
	params.Obs = reg
	params.Trace = tracer
	ctrl, err := core.NewController(w, ugs, core.ControllerParams{Solver: params})
	if err != nil {
		return nil, fmt.Errorf("tenant %q: controller: %w", st.ID, err)
	}

	// The analysis tier: a ring-buffer history over both registries with
	// a tick-derived clock (wall time never leaks into the series, so
	// same-seed tenants produce byte-identical history), the incremental
	// catchment analyzer publishing per-PoP shares into the world
	// registry, and the alert engine running the built-in detectors with
	// tenant-labeled states mirrored into the structured log.
	hist := history.New(history.Config{
		Clock: history.TickClock(0, int64(spec.TickMs)*int64(time.Millisecond)),
		Regs:  func() []*obs.Registry { return []*obs.Registry{reg, w.Obs()} },
	})
	rules := alert.CatchmentDriftRules(0, 8, 1)
	rules = append(rules, alert.ConvergenceSLORules(0, 0, 8, 2)...)
	eng := alert.NewEngine(hist, rules, alert.Options{
		Labels: map[string]string{"tenant": st.ID},
		Logger: logger,
		Tracer: tracer,
	})

	in := &instance{
		id:       st.ID,
		spec:     spec,
		gen:      st.Generation,
		phase:    PhaseRunning,
		deploy:   d,
		world:    w,
		ugs:      ugs,
		ctrl:     ctrl,
		budget:   budget,
		logger:   logger,
		byTick:   map[int][]netsim.Event{},
		maxTick:  -1,
		reg:      reg,
		tracer:   tracer,
		hist:     hist,
		alerts:   eng,
		catch:    netsim.NewCatchmentAnalyzer(w, ugs, 0),
		catchG:   netsim.NewCatchmentGauges(w.Obs(), d),
		prefixes: len(ctrl.Config().Prefixes),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if spec.Paused {
		in.phase = PhasePaused
	}
	if mk, ok := chaosProfiles[spec.Chaos.Profile]; ok {
		gc := mk(spec.Chaos.Seed)
		if spec.Chaos.Ticks > 0 {
			gc.Ticks = spec.Chaos.Ticks
		}
		sched, err := chaos.Generate(g, d, gc)
		if err != nil {
			ctrl.Stop()
			in.catch.Close()
			return nil, fmt.Errorf("tenant %q: schedule: %w", st.ID, err)
		}
		for _, se := range sched {
			in.byTick[se.Tick] = append(in.byTick[se.Tick], se.Ev)
			if se.Tick > in.maxTick {
				in.maxTick = se.Tick
			}
		}
	}
	return in, nil
}

// failedInstance records a build failure as a tenant in PhaseFailed so
// status surfaces the error; its channels are pre-closed so teardown
// never blocks on a loop that was never started.
func failedInstance(st Stored, logger *slog.Logger, err error) *instance {
	in := &instance{
		id:       st.ID,
		spec:     st.Spec,
		gen:      st.Generation,
		phase:    PhaseFailed,
		runErr:   err,
		logger:   logger,
		maxTick:  -1,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	close(in.loopDone)
	in.stopOnce.Do(func() { close(in.stop) })
	return in
}

// loop is the tenant's tick goroutine: every TickMs it applies the next
// schedule slot and runs one controller Sync. The interval is re-read
// each round, so in-place tick changes take effect on the next tick.
func (in *instance) loop() {
	defer close(in.loopDone)
	for {
		in.mu.Lock()
		d := time.Duration(in.spec.TickMs) * time.Millisecond
		in.mu.Unlock()
		timer := time.NewTimer(d)
		select {
		case <-in.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		if _, err := in.step(false); err != nil {
			in.logger.Error("tenant tick failed", "tenant", in.id, "err", err)
			return
		}
	}
}

// step advances the tenant one tick. Paused tenants skip timer-driven
// steps but still accept manual ones (the deterministic drive used by
// tests and the bench). An error marks the tenant Failed.
func (in *instance) step(manual bool) (core.SyncReport, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	switch in.phase {
	case PhaseFailed:
		return core.SyncReport{}, fmt.Errorf("tenant %q: failed: %w", in.id, in.runErr)
	case PhaseTerminating:
		return core.SyncReport{}, fmt.Errorf("tenant %q: terminating", in.id)
	case PhasePaused:
		if !manual {
			return core.SyncReport{}, nil
		}
	}
	return in.stepLocked()
}

func (in *instance) stepLocked() (core.SyncReport, error) {
	t := in.tick
	if in.maxTick >= 0 && t <= in.maxTick {
		for _, ev := range in.byTick[t] {
			if err := in.world.ApplyEvent(ev); err != nil {
				in.failLocked(fmt.Errorf("tick %d: apply %s: %w", t, ev.String(), err))
				return core.SyncReport{}, in.runErr
			}
			in.eventsApplied++
		}
	}
	in.tick++

	start := time.Now()
	cfg, rep, err := in.ctrl.Sync()
	if err != nil {
		in.failLocked(fmt.Errorf("tick %d: sync: %w", t, err))
		return rep, in.runErr
	}
	elapsed := time.Since(start)

	in.syncs++
	outcome := "idle"
	switch {
	case rep.FullSolve:
		outcome = "full-solve"
	case rep.Repaired:
		outcome = "repair"
	case rep.Events > 0:
		outcome = "noop"
		in.noops++
	}
	if rep.FullSolve {
		in.fullSolves++
	}
	if rep.Repaired {
		in.repairs++
	}
	in.lastOutcome = outcome
	in.prefixes = len(cfg.Prefixes)
	in.reports = append(in.reports, SyncRecord{
		Tick: t, Events: rep.Events, Outcome: outcome,
		Dirty: len(rep.Dirty), DirtyFraction: rep.DirtyFraction,
		AnycastChanged: rep.AnycastChanged, Prefixes: len(cfg.Prefixes),
		DurationMs: float64(elapsed.Nanoseconds()) / 1e6,
	})
	if len(in.reports) > reportRing {
		in.reports = in.reports[len(in.reports)-reportRing:]
	}

	// Analysis tier, on the same serialized cadence as Sync (the netsim
	// contract — no queries racing ApplyEvent — holds under mu): refresh
	// the catchment incrementally, publish the per-PoP shares, take one
	// history sample of both registries, and judge the detectors.
	if in.catch != nil {
		if c, cerr := in.catch.Update(); cerr == nil {
			in.catchG.Set(c)
		}
		// A world with no anycast routes at all (every PoP down) has no
		// catchment; gauges hold their last values until routes return.
	}
	in.alerts.Eval(in.hist.Sample())

	// One tick past the schedule's final recovery, flush the converged
	// ground truth once: the per-tenant quality headline.
	if in.maxTick >= 0 && in.tick == in.maxTick+1 && !in.finalDone {
		ev, err := core.Evaluate(in.world, in.ugs, in.ctrl.Config())
		if err != nil {
			in.failLocked(fmt.Errorf("final evaluation: %w", err))
			return rep, in.runErr
		}
		in.finalBenefit = ev.Benefit
		in.finalDone = true
		in.logger.Info("tenant schedule complete", "tenant", in.id,
			"benefit_ms", fmt.Sprintf("%.3f", ev.Benefit),
			"events", in.eventsApplied, "prefixes", in.prefixes)
	}
	return rep, nil
}

// failLocked transitions to PhaseFailed (mu held).
func (in *instance) failLocked(err error) {
	in.phase = PhaseFailed
	in.runErr = fmt.Errorf("tenant %q: %w", in.id, err)
}

// applyInPlace applies a spec update that does not require a rebuild:
// budget, tick interval, and pause state, bumping the observed
// generation.
func (in *instance) applyInPlace(st Stored) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	spec := st.Spec
	spec.Normalize()
	in.spec, in.gen = spec, st.Generation
	switch in.phase {
	case PhaseRunning, PhasePaused:
		if spec.Paused {
			in.phase = PhasePaused
		} else {
			in.phase = PhaseRunning
		}
	}
	if in.ctrl == nil {
		return nil
	}
	nb := resolveBudget(spec, in.deploy)
	if nb != in.budget {
		cfg, err := in.ctrl.SetBudget(nb)
		if err != nil {
			return err
		}
		in.budget = nb
		in.prefixes = len(cfg.Prefixes)
	}
	return nil
}

// close stops the tick loop (draining any in-flight Sync: the loop
// goroutine finishes its current step before exiting) and unsubscribes
// the controller from the world. Idempotent.
func (in *instance) close() {
	in.stopOnce.Do(func() { close(in.stop) })
	<-in.loopDone
	in.mu.Lock()
	in.phase = PhaseTerminating
	ctrl := in.ctrl
	catch := in.catch
	in.mu.Unlock()
	if ctrl != nil {
		ctrl.Stop()
	}
	if catch != nil {
		catch.Close()
	}
	// Teardown must not leak firing alerts into /alerts: force-resolve
	// everything on one final tick.
	in.alerts.ResolveAll(in.hist.Tick() + 1)
}

// status snapshots the tenant's observed state.
func (in *instance) status() Status {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := Status{
		ID: in.id, Generation: in.gen, Phase: in.phase,
		Spec: in.spec, Budget: in.budget,
		ScheduleTick: in.tick, ScheduleTicks: in.maxTick + 1,
		ScheduleDone:  in.maxTick < 0 || in.tick > in.maxTick,
		EventsApplied: in.eventsApplied, Syncs: in.syncs,
		Repairs: in.repairs, FullSolves: in.fullSolves, Noops: in.noops,
		LastOutcome: in.lastOutcome, Prefixes: in.prefixes,
	}
	if in.finalDone {
		st.FinalBenefitMs = in.finalBenefit
	}
	if in.runErr != nil {
		st.Error = in.runErr.Error()
	}
	return st
}

// syncReports returns a copy of the bounded sync history.
func (in *instance) syncReports() []SyncRecord {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]SyncRecord, len(in.reports))
	copy(out, in.reports)
	return out
}

// config returns a copy of the tenant's current advertisement config
// (empty for a failed tenant).
func (in *instance) config() core.Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.ctrl == nil {
		return core.Config{}
	}
	return in.ctrl.Config()
}

// alertStates returns the tenant's current alert instances (nil for
// failed builds).
func (in *instance) alertStates() []alert.StateView { return in.alerts.States() }

// alertStream returns a copy of the tenant's bounded transition stream.
func (in *instance) alertStream() []alert.Transition {
	return in.alerts.Result().Transitions
}

// history returns the tenant's time-series store (nil for failed
// builds).
func (in *instance) history() *history.Store { return in.hist }

// registries returns the tenant's exposition registries (controller
// first, then the world's), skipping nil for failed builds.
func (in *instance) registries() []*obs.Registry {
	var out []*obs.Registry
	if in.reg != nil {
		out = append(out, in.reg)
	}
	if in.world != nil {
		out = append(out, in.world.Obs())
	}
	return out
}
