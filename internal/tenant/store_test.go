package tenant

import (
	"errors"
	"sync"
	"testing"
)

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore()
	st, err := s.Put("acme", validSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 1 {
		t.Errorf("first generation = %d, want 1", st.Generation)
	}
	got, ok := s.Get("acme")
	if !ok || got.Generation != 1 || got.Spec.Scale != "small" {
		t.Errorf("Get = %+v, %v", got, ok)
	}
	st2, err := s.Put("beta", validSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation != 2 {
		t.Errorf("store-wide generations should be monotone: got %d", st2.Generation)
	}
	ids := s.List()
	if len(ids) != 2 || ids[0].ID != "acme" || ids[1].ID != "beta" {
		t.Errorf("List = %+v", ids)
	}
	if !s.Delete("acme") || s.Delete("acme") {
		t.Error("Delete should report presence exactly once")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("Bad ID", validSpec(), 0); err == nil {
		t.Error("invalid id accepted")
	}
	bad := validSpec()
	bad.TickMs = 0
	if _, err := s.Put("ok", bad, 0); err == nil {
		t.Error("invalid spec accepted")
	}
	if s.Len() != 0 {
		t.Error("rejected writes must not store anything")
	}
}

func TestStoreGenerationConflict(t *testing.T) {
	s := NewStore()
	st, err := s.Put("acme", validSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Conditional write at the current generation succeeds...
	st2, err := s.Put("acme", validSpec(), st.Generation)
	if err != nil {
		t.Fatal(err)
	}
	// ...and at a stale one conflicts, reporting both numbers.
	_, err = s.Put("acme", validSpec(), st.Generation)
	var cerr *ConflictError
	if !errors.As(err, &cerr) {
		t.Fatalf("want ConflictError, got %v", err)
	}
	if cerr.Expected != st.Generation || cerr.Current != st2.Generation {
		t.Errorf("conflict %+v, want expected=%d current=%d", cerr, st.Generation, st2.Generation)
	}
	// Conditional create of an absent tenant conflicts with Current 0.
	_, err = s.Put("ghost", validSpec(), 3)
	if !errors.As(err, &cerr) || cerr.Current != 0 {
		t.Errorf("conditional create: %v", err)
	}
}

// TestStoreConcurrentConditionalPuts races N writers all expecting the
// same generation: exactly one must win.
func TestStoreConcurrentConditionalPuts(t *testing.T) {
	s := NewStore()
	st, err := s.Put("acme", validSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	wins := make(chan int64, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(budget int) {
			defer wg.Done()
			spec := validSpec()
			spec.Budget = budget + 1
			if got, err := s.Put("acme", spec, st.Generation); err == nil {
				wins <- got.Generation
			} else {
				var cerr *ConflictError
				if !errors.As(err, &cerr) {
					t.Errorf("loser got %v, want ConflictError", err)
				}
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []int64
	for g := range wins {
		winners = append(winners, g)
	}
	if len(winners) != 1 {
		t.Fatalf("%d conditional writers won, want exactly 1", len(winners))
	}
	cur, _ := s.Get("acme")
	if cur.Generation != winners[0] {
		t.Errorf("stored generation %d != winner %d", cur.Generation, winners[0])
	}
}
