package tenant

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"painter/internal/core"
	"painter/internal/obs"
	"painter/internal/obs/alert"
	"painter/internal/obs/history"
	"painter/internal/obs/span"
)

// finishedRing bounds how many torn-down tenants keep their final alert
// states visible in /alerts.
const finishedRing = 16

// Params tunes a Manager.
type Params struct {
	// Logger receives tenant lifecycle lines; nil means slog.Default().
	Logger *slog.Logger
	// Trace is the parent tracer tenants derive their labeled tracers
	// from (nil disables tracing — everything stays nil-safe).
	Trace *span.Tracer
	// ReconcileInterval is the background reconcile cadence (default
	// 200ms). Writes through Apply/Remove also kick an immediate pass,
	// so the interval only bounds convergence after direct Store edits.
	ReconcileInterval time.Duration
}

// Manager converges actual tenant runtimes to the desired state in its
// Store. One background goroutine runs the reconcile loop; everything
// else (HTTP handlers, tests, the bench) talks to the Manager through
// the thread-safe accessors.
type Manager struct {
	store  *Store
	logger *slog.Logger
	trace  *span.Tracer

	// recMu serializes reconcile passes (the background loop and any
	// direct Reconcile callers), so tenant create/teardown never races
	// with itself.
	recMu sync.Mutex

	mu        sync.Mutex
	instances map[string]*instance
	closed    bool
	// finished retains the final (resolved) alert states of recently
	// torn-down tenants — teardown resolves alerts rather than leaking
	// them, but operators still get to see what had been firing.
	finished []TenantAlerts

	kick     chan struct{}
	stop     chan struct{}
	loopDone chan struct{}

	reg          *obs.Registry
	reconciles   *obs.Counter
	creates      *obs.Counter
	inPlaceUpds  *obs.Counter
	rebuilds     *obs.Counter
	removes      *obs.Counter
	failures     *obs.Counter
	specsGauge   *obs.Gauge
	runningGauge *obs.Gauge
	buildSecs    *obs.Histogram
}

// NewManager builds a Manager with an empty store and starts its
// reconcile loop. Callers must Close it.
func NewManager(p Params) *Manager {
	if p.Logger == nil {
		p.Logger = slog.Default()
	}
	if p.ReconcileInterval <= 0 {
		p.ReconcileInterval = 200 * time.Millisecond
	}
	reg := obs.NewRegistry()
	m := &Manager{
		store:     NewStore(),
		logger:    p.Logger,
		trace:     p.Trace,
		instances: make(map[string]*instance),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		loopDone:  make(chan struct{}),
		reg:       reg,
		reconciles: reg.Counter("tenant_reconciles_total",
			"Reconcile passes run."),
		creates: reg.Counter("tenant_creates_total",
			"Tenant runtimes built (excluding rebuilds)."),
		inPlaceUpds: reg.Counter("tenant_updates_inplace_total",
			"Spec updates applied without a world rebuild."),
		rebuilds: reg.Counter("tenant_updates_rebuild_total",
			"Spec updates that tore down and rebuilt the world."),
		removes: reg.Counter("tenant_removes_total",
			"Tenant runtimes torn down because their spec was deleted."),
		failures: reg.Counter("tenant_build_failures_total",
			"Tenant builds that failed validation-passing specs at runtime."),
		specsGauge: reg.Gauge("tenant_specs",
			"Specs currently stored (desired state)."),
		runningGauge: reg.Gauge("tenant_running",
			"Tenant runtimes currently in phase Running or Paused."),
		buildSecs: reg.Histogram("tenant_build_seconds",
			"Wall time to build one tenant world + controller."),
	}
	go m.loop(p.ReconcileInterval)
	return m
}

// Store exposes the desired-state store (for persistence or direct
// inspection). Writers that bypass Apply/Remove should call Kick.
func (m *Manager) Store() *Store { return m.store }

// Apply validates and stores a spec (see Store.Put for the expect
// semantics) and kicks an immediate reconcile.
func (m *Manager) Apply(id string, spec Spec, expect int64) (Stored, error) {
	st, err := m.store.Put(id, spec, expect)
	if err != nil {
		return Stored{}, err
	}
	m.Kick()
	return st, nil
}

// Remove deletes a tenant's desired state, reporting whether it
// existed, and kicks a reconcile to tear the runtime down.
func (m *Manager) Remove(id string) bool {
	ok := m.store.Delete(id)
	if ok {
		m.Kick()
	}
	return ok
}

// Kick schedules an immediate reconcile pass (coalescing with any
// already pending).
func (m *Manager) Kick() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

func (m *Manager) loop(interval time.Duration) {
	defer close(m.loopDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		case <-t.C:
		}
		m.Reconcile()
	}
}

// Reconcile runs one synchronous pass: tear down runtimes whose spec
// vanished, build runtimes for new specs, and converge running tenants
// whose observed generation trails the store — in place when only
// mutable fields changed, by rebuild when the identity (scale, seed,
// chaos) changed or the runtime is Failed. Safe to call concurrently
// with the background loop; passes serialize.
func (m *Manager) Reconcile() {
	m.recMu.Lock()
	defer m.recMu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	m.reconciles.Inc()
	desired := m.store.List()
	want := make(map[string]Stored, len(desired))
	for _, st := range desired {
		want[st.ID] = st
	}

	// Removals first: free the capacity before building new worlds.
	m.mu.Lock()
	var gone []*instance
	for id, in := range m.instances {
		if _, ok := want[id]; !ok {
			gone = append(gone, in)
			delete(m.instances, id)
		}
	}
	m.mu.Unlock()
	sort.Slice(gone, func(i, j int) bool { return gone[i].id < gone[j].id })
	for _, in := range gone {
		m.teardown(in, "removed")
		m.removes.Inc()
	}

	for _, st := range desired {
		m.mu.Lock()
		in := m.instances[st.ID]
		m.mu.Unlock()
		if in == nil {
			in = m.create(st)
			m.creates.Inc()
			m.mu.Lock()
			m.instances[st.ID] = in
			m.mu.Unlock()
			continue
		}
		in.mu.Lock()
		curGen, curSpec, failed := in.gen, in.spec, in.phase == PhaseFailed
		in.mu.Unlock()
		if curGen == st.Generation {
			continue
		}
		if failed || NeedsRebuild(curSpec, st.Spec) {
			m.teardown(in, "rebuild")
			nin := m.create(st)
			m.rebuilds.Inc()
			m.mu.Lock()
			m.instances[st.ID] = nin
			m.mu.Unlock()
			continue
		}
		if err := in.applyInPlace(st); err != nil {
			m.logger.Error("tenant in-place update failed", "tenant", st.ID, "err", err)
			continue
		}
		m.inPlaceUpds.Inc()
		m.logger.Info("tenant updated in place", "tenant", st.ID,
			"generation", st.Generation)
	}

	m.specsGauge.Set(float64(m.store.Len()))
	m.runningGauge.Set(float64(m.countHealthy()))
}

func (m *Manager) countHealthy() int {
	m.mu.Lock()
	ins := make([]*instance, 0, len(m.instances))
	for _, in := range m.instances {
		ins = append(ins, in)
	}
	m.mu.Unlock()
	n := 0
	for _, in := range ins {
		in.mu.Lock()
		if in.phase == PhaseRunning || in.phase == PhasePaused {
			n++
		}
		in.mu.Unlock()
	}
	return n
}

// create builds a runtime for st and starts its tick loop; a build
// error yields a Failed placeholder so status surfaces the cause.
func (m *Manager) create(st Stored) *instance {
	start := time.Now()
	in, err := buildInstance(st, m.logger, m.trace)
	m.buildSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		m.failures.Inc()
		m.logger.Error("tenant build failed", "tenant", st.ID, "err", err)
		return failedInstance(st, m.logger, err)
	}
	m.logger.Info("tenant created", "tenant", st.ID,
		"generation", st.Generation, "scale", in.spec.Scale,
		"seed", in.spec.Seed, "budget", in.budget,
		"chaos", in.spec.Chaos.Profile,
		"schedule_ticks", in.maxTick+1,
		"build_ms", time.Since(start).Milliseconds())
	go in.loop()
	return in
}

// teardown drains and stops one runtime, flushes its final evaluation,
// and logs the one-line per-tenant summary. close() force-resolves the
// tenant's alerts; the final states land in the bounded finished tail.
func (m *Manager) teardown(in *instance, reason string) {
	in.close()
	if states := in.alertStates(); len(states) > 0 {
		m.mu.Lock()
		m.finished = append(m.finished, TenantAlerts{
			Tenant: in.id, States: states, Recent: in.alertStream(),
		})
		if len(m.finished) > finishedRing {
			m.finished = m.finished[len(m.finished)-finishedRing:]
		}
		m.mu.Unlock()
	}
	st := in.status()
	benefit := st.FinalBenefitMs
	if !st.ScheduleDone || benefit == 0 {
		// Schedule still in flight (or no schedule): evaluate the
		// config as it stands so the summary always carries a number.
		if in.world != nil && in.ctrl != nil {
			if ev, err := core.Evaluate(in.world, in.ugs, in.ctrl.Config()); err == nil {
				benefit = ev.Benefit
			}
		}
	}
	m.logger.Info("tenant summary", "tenant", in.id, "reason", reason,
		"phase", string(st.Phase), "generation", st.Generation,
		"syncs", st.Syncs, "events", st.EventsApplied,
		"repairs", st.Repairs, "full_solves", st.FullSolves,
		"prefixes", st.Prefixes,
		"benefit_ms", fmt.Sprintf("%.3f", benefit))
}

// Step advances one tenant a single tick synchronously — the
// deterministic drive for tests and benchmarks. It works on paused
// tenants too and serializes with the tenant's own tick loop.
func (m *Manager) Step(id string) (core.SyncReport, error) {
	m.mu.Lock()
	in := m.instances[id]
	m.mu.Unlock()
	if in == nil {
		return core.SyncReport{}, fmt.Errorf("tenant %q: no runtime (not yet reconciled or unknown)", id)
	}
	return in.step(true)
}

// Status returns one tenant's observed state.
func (m *Manager) Status(id string) (Status, bool) {
	m.mu.Lock()
	in := m.instances[id]
	m.mu.Unlock()
	if in == nil {
		return Status{}, false
	}
	return in.status(), true
}

// Statuses returns every runtime's observed state, sorted by ID.
func (m *Manager) Statuses() []Status {
	m.mu.Lock()
	ins := make([]*instance, 0, len(m.instances))
	for _, in := range m.instances {
		ins = append(ins, in)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(ins))
	for _, in := range ins {
		out = append(out, in.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Reports returns the tenant's bounded sync history.
func (m *Manager) Reports(id string) ([]SyncRecord, bool) {
	m.mu.Lock()
	in := m.instances[id]
	m.mu.Unlock()
	if in == nil {
		return nil, false
	}
	return in.syncReports(), true
}

// Config returns a copy of the tenant's current advertisement config.
func (m *Manager) Config(id string) (core.Config, bool) {
	m.mu.Lock()
	in := m.instances[id]
	m.mu.Unlock()
	if in == nil {
		return core.Config{}, false
	}
	return in.config(), true
}

// Registries returns every exposition registry the manager owns: its
// own first, then each tenant's (controller registry, then world
// registry), sorted by tenant ID. The control API scrapes this on
// every /metrics request, so tenants appear and disappear from the
// exposition as they are reconciled.
func (m *Manager) Registries() []*obs.Registry {
	m.mu.Lock()
	ins := make([]*instance, 0, len(m.instances))
	for _, in := range m.instances {
		ins = append(ins, in)
	}
	m.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].id < ins[j].id })
	out := []*obs.Registry{m.reg}
	for _, in := range ins {
		out = append(out, in.registries()...)
	}
	return out
}

// Obs returns the manager's own registry (lifecycle counters).
func (m *Manager) Obs() *obs.Registry { return m.reg }

// TenantAlerts is one tenant's alert view: current instance states plus
// the recent transition stream (the /alerts payload element).
type TenantAlerts struct {
	Tenant string             `json:"tenant"`
	States []alert.StateView  `json:"states"`
	Recent []alert.Transition `json:"recent,omitempty"`
}

// Alerts returns every live tenant's alert states sorted by ID — the
// GET /alerts aggregation.
func (m *Manager) Alerts() []TenantAlerts {
	m.mu.Lock()
	ins := make([]*instance, 0, len(m.instances))
	for _, in := range m.instances {
		ins = append(ins, in)
	}
	m.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].id < ins[j].id })
	out := make([]TenantAlerts, 0, len(ins))
	for _, in := range ins {
		states := in.alertStates()
		if states == nil {
			continue // failed build: no engine
		}
		out = append(out, TenantAlerts{
			Tenant: in.id, States: states, Recent: in.alertStream(),
		})
	}
	return out
}

// FinishedAlerts returns the bounded tail of final alert states from
// torn-down tenants, oldest first.
func (m *Manager) FinishedAlerts() []TenantAlerts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]TenantAlerts(nil), m.finished...)
}

// Histories returns every live tenant's time-series store, sorted by
// tenant ID — the /debug/obs/history aggregation.
func (m *Manager) Histories() []*history.Store {
	m.mu.Lock()
	ins := make([]*instance, 0, len(m.instances))
	for _, in := range m.instances {
		ins = append(ins, in)
	}
	m.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].id < ins[j].id })
	out := make([]*history.Store, 0, len(ins))
	for _, in := range ins {
		if h := in.history(); h != nil {
			out = append(out, h)
		}
	}
	return out
}

// Close stops the reconcile loop, then tears down every tenant —
// draining in-flight Syncs, flushing final evaluations, and logging
// one summary line per tenant. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()

	close(m.stop)
	<-m.loopDone

	// The loop is gone; take recMu to drain any direct Reconcile
	// caller, then tear everything down.
	m.recMu.Lock()
	defer m.recMu.Unlock()
	m.mu.Lock()
	ins := make([]*instance, 0, len(m.instances))
	for _, in := range m.instances {
		ins = append(ins, in)
	}
	m.instances = make(map[string]*instance)
	m.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].id < ins[j].id })
	for _, in := range ins {
		m.teardown(in, "shutdown")
	}
	m.runningGauge.Set(0)
}
