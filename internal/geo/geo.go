// Package geo provides geographic primitives used throughout PAINTER:
// coordinates, great-circle distance, speed-of-light-in-fiber latency
// conversion, and an embedded database of world metropolitan areas used
// to place PoPs, user groups, and measurement probes.
package geo

import (
	"fmt"
	"math"
	"time"
)

// Coord is a point on the Earth's surface in decimal degrees.
type Coord struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// Valid reports whether the coordinate lies within the legal lat/lon range.
func (c Coord) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180
}

func (c Coord) String() string {
	return fmt.Sprintf("(%.3f,%.3f)", c.Lat, c.Lon)
}

const (
	// EarthRadiusKm is the mean Earth radius.
	EarthRadiusKm = 6371.0

	// FiberSpeedKmPerMs is the propagation speed of light in optical
	// fiber (~2/3 c), expressed in km per millisecond. Used to convert
	// distances into best-case one-way latencies.
	FiberSpeedKmPerMs = 200.0

	// PathStretch models that fiber paths are not great circles: real
	// routes detour through conduits, landing stations, and metro rings.
	// Empirical studies place typical stretch between 1.2x and 2x; we
	// use a mid value when synthesizing link latencies.
	PathStretch = 1.4
)

// DistanceKm returns the great-circle distance between a and b using the
// haversine formula.
func DistanceKm(a, b Coord) float64 {
	const degToRad = math.Pi / 180
	la1 := a.Lat * degToRad
	la2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// MinRTT returns the theoretical minimum round-trip time between two
// points: great-circle distance, out and back, at fiber speed with no
// stretch. It is the hard lower bound used for speed-of-light validation
// of geolocated measurement targets (Appendix B).
func MinRTT(a, b Coord) time.Duration {
	ms := 2 * DistanceKm(a, b) / FiberSpeedKmPerMs
	return time.Duration(ms * float64(time.Millisecond))
}

// FiberRTT returns a realistic round-trip propagation delay between two
// points assuming typical fiber path stretch.
func FiberRTT(a, b Coord) time.Duration {
	ms := 2 * DistanceKm(a, b) * PathStretch / FiberSpeedKmPerMs
	return time.Duration(ms * float64(time.Millisecond))
}

// KmToMinRTTMs converts a distance to the minimum possible RTT in
// milliseconds (out and back at fiber speed, no stretch).
func KmToMinRTTMs(km float64) float64 { return 2 * km / FiberSpeedKmPerMs }

// RTTMsToMaxKm converts an observed RTT in milliseconds into the maximum
// one-way distance in km the remote endpoint can be at: the inverse of
// KmToMinRTTMs. Used to bound target geolocation uncertainty.
func RTTMsToMaxKm(rttMs float64) float64 { return rttMs * FiberSpeedKmPerMs / 2 }
