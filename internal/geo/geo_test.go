package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b    string
		wantKm  float64
		slackKm float64
	}{
		{"nyc", "lon", 5570, 100},
		{"nyc", "lax", 3940, 100},
		{"tyo", "sin", 5320, 150},
		{"syd", "lon", 16990, 300},
		{"fra", "ams", 365, 40},
	}
	for _, c := range cases {
		ma, err := MetroByCode(c.a)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := MetroByCode(c.b)
		if err != nil {
			t.Fatal(err)
		}
		got := DistanceKm(ma.Coord, mb.Coord)
		if math.Abs(got-c.wantKm) > c.slackKm {
			t.Errorf("DistanceKm(%s,%s) = %.0f, want %.0f±%.0f", c.a, c.b, got, c.wantKm, c.slackKm)
		}
	}
}

func TestDistanceZero(t *testing.T) {
	c := Coord{40, -74}
	if d := DistanceKm(c, c); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		c := Coord{clampLat(lat3), clampLon(lon3)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounded(t *testing.T) {
	// No two points on Earth are farther apart than half the circumference.
	maxD := math.Pi * EarthRadiusKm
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= maxD+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 { return clampRange(v, -90, 90) }
func clampLon(v float64) float64 { return clampRange(v, -180, 180) }

func clampRange(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	span := hi - lo
	v = math.Mod(v-lo, span)
	if v < 0 {
		v += span
	}
	return v + lo
}

func TestMinRTTMonotonicInDistance(t *testing.T) {
	nyc, _ := MetroByCode("nyc")
	bos, _ := MetroByCode("bos")
	tyo, _ := MetroByCode("tyo")
	near := MinRTT(nyc.Coord, bos.Coord)
	far := MinRTT(nyc.Coord, tyo.Coord)
	if near >= far {
		t.Errorf("MinRTT(nyc,bos)=%v should be < MinRTT(nyc,tyo)=%v", near, far)
	}
	if near <= 0 {
		t.Errorf("MinRTT between distinct metros must be positive, got %v", near)
	}
}

func TestFiberRTTExceedsMinRTT(t *testing.T) {
	a, _ := MetroByCode("lon")
	b, _ := MetroByCode("sin")
	if FiberRTT(a.Coord, b.Coord) <= MinRTT(a.Coord, b.Coord) {
		t.Error("FiberRTT must exceed MinRTT (path stretch > 1)")
	}
}

func TestMinRTTKnownMagnitude(t *testing.T) {
	// NYC <-> London is ~5570 km, so min RTT ~ 55.7 ms.
	nyc, _ := MetroByCode("nyc")
	lon, _ := MetroByCode("lon")
	got := MinRTT(nyc.Coord, lon.Coord)
	if got < 50*time.Millisecond || got > 62*time.Millisecond {
		t.Errorf("MinRTT(nyc,lon) = %v, want ~56ms", got)
	}
}

func TestKmRTTRoundTrip(t *testing.T) {
	f := func(km float64) bool {
		km = math.Abs(km)
		if math.IsNaN(km) || math.IsInf(km, 0) || km > 40000 {
			return true
		}
		back := RTTMsToMaxKm(KmToMinRTTMs(km))
		return math.Abs(back-km) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetroDatabase(t *testing.T) {
	ms := Metros()
	if len(ms) < 100 {
		t.Fatalf("metro database too small: %d", len(ms))
	}
	seen := make(map[string]bool)
	for _, m := range ms {
		if seen[m.Code] {
			t.Errorf("duplicate metro code %q", m.Code)
		}
		seen[m.Code] = true
		if !m.Coord.Valid() {
			t.Errorf("metro %q has invalid coordinate %v", m.Code, m.Coord)
		}
		if m.Weight <= 0 {
			t.Errorf("metro %q has non-positive weight", m.Code)
		}
		if m.Region == "" {
			t.Errorf("metro %q has empty region", m.Code)
		}
	}
}

func TestMetroByCode(t *testing.T) {
	m, err := MetroByCode("tyo")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Tokyo" {
		t.Errorf("MetroByCode(tyo).Name = %q, want Tokyo", m.Name)
	}
	if _, err := MetroByCode("zzz"); err == nil {
		t.Error("MetroByCode(zzz) should fail")
	}
}

func TestMetrosInRegionPartition(t *testing.T) {
	total := 0
	for _, r := range Regions() {
		ms := MetrosInRegion(r)
		if len(ms) == 0 {
			t.Errorf("region %q listed but empty", r)
		}
		for _, m := range ms {
			if m.Region != r {
				t.Errorf("metro %q in wrong region bucket", m.Code)
			}
		}
		total += len(ms)
	}
	if total != len(Metros()) {
		t.Errorf("regions partition %d metros, want %d", total, len(Metros()))
	}
}

func TestNearestMetro(t *testing.T) {
	// A point in Manhattan should resolve to nyc.
	if m := NearestMetro(Coord{40.78, -73.97}); m.Code != "nyc" {
		t.Errorf("NearestMetro(manhattan) = %q, want nyc", m.Code)
	}
	// Every metro is its own nearest metro.
	for _, m := range Metros() {
		if got := NearestMetro(m.Coord); got.Code != m.Code {
			t.Errorf("NearestMetro(%s) = %s, want itself", m.Code, got.Code)
		}
	}
}

func TestCoordValid(t *testing.T) {
	valid := []Coord{{0, 0}, {90, 180}, {-90, -180}, {45.5, -120.25}}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("Coord %v should be valid", c)
		}
	}
	invalid := []Coord{{91, 0}, {0, 181}, {-90.01, 0}, {0, -180.5}}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("Coord %v should be invalid", c)
		}
	}
}
