package geo

import (
	"fmt"
	"sort"
)

// Region identifies a coarse world region, used for regional prefix
// advertisements and for grouping UGs when computing PoP candidate sets.
type Region string

// World regions. The granularity mirrors how clouds organize regional
// service offerings (§5.1.2: "regional" advertisements).
const (
	RegionNorthAmericaEast Region = "na-east"
	RegionNorthAmericaWest Region = "na-west"
	RegionNorthAmericaCent Region = "na-central"
	RegionSouthAmerica     Region = "sa"
	RegionEuropeWest       Region = "eu-west"
	RegionEuropeEast       Region = "eu-east"
	RegionMiddleEast       Region = "me"
	RegionAfrica           Region = "africa"
	RegionAsiaEast         Region = "asia-east"
	RegionAsiaSouth        Region = "asia-south"
	RegionAsiaSouthEast    Region = "asia-se"
	RegionOceania          Region = "oceania"
)

// Metro is a metropolitan area: the unit of geographic placement for
// PoPs, user groups, and probes.
type Metro struct {
	Code   string // short unique code, e.g. "nyc"
	Name   string
	Coord  Coord
	Region Region
	// Weight is a rough relative population/traffic weight used when
	// sampling user groups; it does not need to be exact, only to give
	// plausible global traffic skew.
	Weight float64
}

func (m Metro) String() string { return m.Code }

// metroTable is the embedded metro database: 120 world metros with
// coordinates accurate to city granularity.
var metroTable = []Metro{
	// North America — East
	{"nyc", "New York", Coord{40.71, -74.01}, RegionNorthAmericaEast, 20},
	{"bos", "Boston", Coord{42.36, -71.06}, RegionNorthAmericaEast, 5},
	{"was", "Washington DC", Coord{38.91, -77.04}, RegionNorthAmericaEast, 6},
	{"ash", "Ashburn", Coord{39.04, -77.49}, RegionNorthAmericaEast, 4},
	{"phl", "Philadelphia", Coord{39.95, -75.17}, RegionNorthAmericaEast, 6},
	{"atl", "Atlanta", Coord{33.75, -84.39}, RegionNorthAmericaEast, 6},
	{"mia", "Miami", Coord{25.76, -80.19}, RegionNorthAmericaEast, 6},
	{"clt", "Charlotte", Coord{35.23, -80.84}, RegionNorthAmericaEast, 3},
	{"pit", "Pittsburgh", Coord{40.44, -79.99}, RegionNorthAmericaEast, 2},
	{"tor", "Toronto", Coord{43.65, -79.38}, RegionNorthAmericaEast, 6},
	{"mtl", "Montreal", Coord{45.50, -73.57}, RegionNorthAmericaEast, 4},
	// North America — Central
	{"chi", "Chicago", Coord{41.88, -87.63}, RegionNorthAmericaCent, 9},
	{"dal", "Dallas", Coord{32.78, -96.80}, RegionNorthAmericaCent, 7},
	{"hou", "Houston", Coord{29.76, -95.37}, RegionNorthAmericaCent, 7},
	{"msp", "Minneapolis", Coord{44.98, -93.27}, RegionNorthAmericaCent, 3},
	{"stl", "St. Louis", Coord{38.63, -90.20}, RegionNorthAmericaCent, 2},
	{"kcy", "Kansas City", Coord{39.10, -94.58}, RegionNorthAmericaCent, 2},
	{"den", "Denver", Coord{39.74, -104.99}, RegionNorthAmericaCent, 3},
	{"mex", "Mexico City", Coord{19.43, -99.13}, RegionNorthAmericaCent, 12},
	// North America — West
	{"lax", "Los Angeles", Coord{34.05, -118.24}, RegionNorthAmericaWest, 13},
	{"sfo", "San Francisco", Coord{37.77, -122.42}, RegionNorthAmericaWest, 5},
	{"sjc", "San Jose", Coord{37.34, -121.89}, RegionNorthAmericaWest, 3},
	{"sea", "Seattle", Coord{47.61, -122.33}, RegionNorthAmericaWest, 4},
	{"pdx", "Portland", Coord{45.52, -122.68}, RegionNorthAmericaWest, 2},
	{"phx", "Phoenix", Coord{33.45, -112.07}, RegionNorthAmericaWest, 5},
	{"las", "Las Vegas", Coord{36.17, -115.14}, RegionNorthAmericaWest, 2},
	{"slc", "Salt Lake City", Coord{40.76, -111.89}, RegionNorthAmericaWest, 1},
	{"yvr", "Vancouver", Coord{49.28, -123.12}, RegionNorthAmericaWest, 3},
	// South America
	{"gru", "Sao Paulo", Coord{-23.55, -46.63}, RegionSouthAmerica, 22},
	{"rio", "Rio de Janeiro", Coord{-22.91, -43.17}, RegionSouthAmerica, 13},
	{"bog", "Bogota", Coord{4.71, -74.07}, RegionSouthAmerica, 10},
	{"lim", "Lima", Coord{-12.05, -77.04}, RegionSouthAmerica, 10},
	{"scl", "Santiago", Coord{-33.45, -70.67}, RegionSouthAmerica, 7},
	{"eze", "Buenos Aires", Coord{-34.60, -58.38}, RegionSouthAmerica, 15},
	{"ccs", "Caracas", Coord{10.48, -66.88}, RegionSouthAmerica, 3},
	{"uio", "Quito", Coord{-0.18, -78.47}, RegionSouthAmerica, 2},
	{"mvd", "Montevideo", Coord{-34.90, -56.16}, RegionSouthAmerica, 2},
	// Europe — West
	{"lon", "London", Coord{51.51, -0.13}, RegionEuropeWest, 14},
	{"man", "Manchester", Coord{53.48, -2.24}, RegionEuropeWest, 3},
	{"dub", "Dublin", Coord{53.35, -6.26}, RegionEuropeWest, 2},
	{"par", "Paris", Coord{48.86, 2.35}, RegionEuropeWest, 11},
	{"ams", "Amsterdam", Coord{52.37, 4.90}, RegionEuropeWest, 3},
	{"bru", "Brussels", Coord{50.85, 4.35}, RegionEuropeWest, 2},
	{"fra", "Frankfurt", Coord{50.11, 8.68}, RegionEuropeWest, 3},
	{"muc", "Munich", Coord{48.14, 11.58}, RegionEuropeWest, 3},
	{"ber", "Berlin", Coord{52.52, 13.40}, RegionEuropeWest, 4},
	{"ham", "Hamburg", Coord{53.55, 9.99}, RegionEuropeWest, 2},
	{"zrh", "Zurich", Coord{47.38, 8.54}, RegionEuropeWest, 2},
	{"gva", "Geneva", Coord{46.20, 6.14}, RegionEuropeWest, 1},
	{"mad", "Madrid", Coord{40.42, -3.70}, RegionEuropeWest, 7},
	{"bcn", "Barcelona", Coord{41.39, 2.17}, RegionEuropeWest, 5},
	{"lis", "Lisbon", Coord{38.72, -9.14}, RegionEuropeWest, 3},
	{"mil", "Milan", Coord{45.46, 9.19}, RegionEuropeWest, 4},
	{"rom", "Rome", Coord{41.90, 12.50}, RegionEuropeWest, 4},
	{"cph", "Copenhagen", Coord{55.68, 12.57}, RegionEuropeWest, 2},
	{"osl", "Oslo", Coord{59.91, 10.75}, RegionEuropeWest, 1},
	{"sto", "Stockholm", Coord{59.33, 18.07}, RegionEuropeWest, 2},
	{"hel", "Helsinki", Coord{60.17, 24.94}, RegionEuropeWest, 1},
	{"vie", "Vienna", Coord{48.21, 16.37}, RegionEuropeWest, 2},
	// Europe — East
	{"prg", "Prague", Coord{50.08, 14.44}, RegionEuropeEast, 2},
	{"waw", "Warsaw", Coord{52.23, 21.01}, RegionEuropeEast, 3},
	{"bud", "Budapest", Coord{47.50, 19.04}, RegionEuropeEast, 2},
	{"buh", "Bucharest", Coord{44.43, 26.10}, RegionEuropeEast, 2},
	{"sof", "Sofia", Coord{42.70, 23.32}, RegionEuropeEast, 1},
	{"ath", "Athens", Coord{37.98, 23.73}, RegionEuropeEast, 3},
	{"kie", "Kyiv", Coord{50.45, 30.52}, RegionEuropeEast, 3},
	{"ist", "Istanbul", Coord{41.01, 28.98}, RegionEuropeEast, 15},
	// Middle East
	{"tlv", "Tel Aviv", Coord{32.09, 34.78}, RegionMiddleEast, 4},
	{"dxb", "Dubai", Coord{25.20, 55.27}, RegionMiddleEast, 3},
	{"doh", "Doha", Coord{25.29, 51.53}, RegionMiddleEast, 1},
	{"ruh", "Riyadh", Coord{24.71, 46.68}, RegionMiddleEast, 7},
	{"amm", "Amman", Coord{31.96, 35.95}, RegionMiddleEast, 2},
	{"bah", "Manama", Coord{26.23, 50.59}, RegionMiddleEast, 1},
	// Africa
	{"cai", "Cairo", Coord{30.04, 31.24}, RegionAfrica, 20},
	{"lag", "Lagos", Coord{6.52, 3.38}, RegionAfrica, 15},
	{"nbo", "Nairobi", Coord{-1.29, 36.82}, RegionAfrica, 5},
	{"jnb", "Johannesburg", Coord{-26.20, 28.05}, RegionAfrica, 10},
	{"cpt", "Cape Town", Coord{-33.92, 18.42}, RegionAfrica, 4},
	{"acc", "Accra", Coord{5.60, -0.19}, RegionAfrica, 3},
	{"cmn", "Casablanca", Coord{33.57, -7.59}, RegionAfrica, 4},
	{"tun", "Tunis", Coord{36.81, 10.18}, RegionAfrica, 2},
	// Asia — East
	{"tyo", "Tokyo", Coord{35.68, 139.69}, RegionAsiaEast, 37},
	{"osa", "Osaka", Coord{34.69, 135.50}, RegionAsiaEast, 19},
	{"sel", "Seoul", Coord{37.57, 126.98}, RegionAsiaEast, 25},
	{"pek", "Beijing", Coord{39.90, 116.40}, RegionAsiaEast, 20},
	{"sha", "Shanghai", Coord{31.23, 121.47}, RegionAsiaEast, 27},
	{"can", "Guangzhou", Coord{23.13, 113.26}, RegionAsiaEast, 13},
	{"hkg", "Hong Kong", Coord{22.32, 114.17}, RegionAsiaEast, 7},
	{"tpe", "Taipei", Coord{25.03, 121.57}, RegionAsiaEast, 7},
	// Asia — South
	{"bom", "Mumbai", Coord{19.08, 72.88}, RegionAsiaSouth, 20},
	{"del", "Delhi", Coord{28.70, 77.10}, RegionAsiaSouth, 30},
	{"maa", "Chennai", Coord{13.08, 80.27}, RegionAsiaSouth, 10},
	{"blr", "Bangalore", Coord{12.97, 77.59}, RegionAsiaSouth, 12},
	{"hyd", "Hyderabad", Coord{17.39, 78.49}, RegionAsiaSouth, 9},
	{"ccu", "Kolkata", Coord{22.57, 88.36}, RegionAsiaSouth, 14},
	{"khi", "Karachi", Coord{24.86, 67.00}, RegionAsiaSouth, 15},
	{"dac", "Dhaka", Coord{23.81, 90.41}, RegionAsiaSouth, 21},
	{"cmb", "Colombo", Coord{6.93, 79.85}, RegionAsiaSouth, 2},
	// Asia — Southeast
	{"sin", "Singapore", Coord{1.35, 103.82}, RegionAsiaSouthEast, 6},
	{"kul", "Kuala Lumpur", Coord{3.14, 101.69}, RegionAsiaSouthEast, 7},
	{"bkk", "Bangkok", Coord{13.76, 100.50}, RegionAsiaSouthEast, 10},
	{"sgn", "Ho Chi Minh City", Coord{10.82, 106.63}, RegionAsiaSouthEast, 9},
	{"han", "Hanoi", Coord{21.03, 105.85}, RegionAsiaSouthEast, 8},
	{"mnl", "Manila", Coord{14.60, 120.98}, RegionAsiaSouthEast, 13},
	{"cgk", "Jakarta", Coord{-6.21, 106.85}, RegionAsiaSouthEast, 10},
	{"pnh", "Phnom Penh", Coord{11.56, 104.92}, RegionAsiaSouthEast, 2},
	// Oceania
	{"syd", "Sydney", Coord{-33.87, 151.21}, RegionOceania, 5},
	{"mel", "Melbourne", Coord{-37.81, 144.96}, RegionOceania, 5},
	{"bne", "Brisbane", Coord{-27.47, 153.03}, RegionOceania, 2},
	{"per", "Perth", Coord{-31.95, 115.86}, RegionOceania, 2},
	{"akl", "Auckland", Coord{-36.85, 174.76}, RegionOceania, 1},
}

var metroByCode map[string]*Metro

func init() {
	metroByCode = make(map[string]*Metro, len(metroTable))
	for i := range metroTable {
		m := &metroTable[i]
		if _, dup := metroByCode[m.Code]; dup {
			panic("geo: duplicate metro code " + m.Code)
		}
		if !m.Coord.Valid() {
			panic("geo: invalid coordinate for metro " + m.Code)
		}
		metroByCode[m.Code] = m
	}
}

// Metros returns all metros in the embedded database, sorted by code.
// The returned slice is freshly allocated; callers may modify it.
func Metros() []Metro {
	out := make([]Metro, len(metroTable))
	copy(out, metroTable)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// MetroByCode looks up a metro by its short code.
func MetroByCode(code string) (Metro, error) {
	if m, ok := metroByCode[code]; ok {
		return *m, nil
	}
	return Metro{}, fmt.Errorf("geo: unknown metro %q", code)
}

// MetrosInRegion returns the metros belonging to a region, sorted by code.
func MetrosInRegion(r Region) []Metro {
	var out []Metro
	for _, m := range metroTable {
		if m.Region == r {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Regions returns all regions that have at least one metro, sorted.
func Regions() []Region {
	seen := make(map[Region]bool)
	for _, m := range metroTable {
		seen[m.Region] = true
	}
	out := make([]Region, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NearestMetro returns the metro closest to the given coordinate.
func NearestMetro(c Coord) Metro {
	best := metroTable[0]
	bestD := DistanceKm(c, best.Coord)
	for _, m := range metroTable[1:] {
		if d := DistanceKm(c, m.Coord); d < bestD {
			best, bestD = m, d
		}
	}
	return best
}
