// Package benchmeta stamps benchmark JSON artifacts with provenance:
// the git commit they were produced at and the generation timestamp.
// Deterministic library code never calls Collect — reports embed Meta
// zero-valued, and the cmd layer stamps it immediately before writing,
// so solver and simulator outputs stay reproducible run-to-run.
package benchmeta

import (
	"os/exec"
	"strings"
	"time"
)

// Meta is the shared provenance header embedded in every BENCH_*.json
// report (propagate, resolve, obs, scale).
type Meta struct {
	GitCommit   string `json:"git_commit,omitempty"`
	GeneratedAt string `json:"generated_at,omitempty"`
}

// Collect returns the current commit (git rev-parse HEAD; empty outside
// a repository) and the current UTC time in RFC 3339.
func Collect() Meta {
	m := Meta{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.GitCommit = strings.TrimSpace(string(out))
	}
	return m
}
