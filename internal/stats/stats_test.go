package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Percentile(50) of {0,10} = %v, want 5", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty input: err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1 should error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101 should error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(xs []float64, pRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		p := float64(pRaw) / 255 * 100
		got, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return got >= mn-1e-9 && got <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanWeightedMean(t *testing.T) {
	m, err := Mean([]float64{2, 4, 6})
	if err != nil || m != 4 {
		t.Errorf("Mean = %v (%v), want 4", m, err)
	}
	wm, err := WeightedMean([]float64{1, 10}, []float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wm-1.9) > 1e-9 {
		t.Errorf("WeightedMean = %v, want 1.9", wm)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight should error")
	}
}

func TestStddev(t *testing.T) {
	sd, err := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", sd)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	if math.Abs(s.P50-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", s.P50)
	}
	if s.P90 <= s.P50 || s.P99 <= s.P90 {
		t.Errorf("percentiles not ordered: %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		c := NewCDF(clean)
		probes := append([]float64(nil), clean...)
		sort.Float64s(probes)
		prev := -1.0
		for _, x := range probes {
			p := c.At(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	c := NewCDF(xs)
	q, err := c.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 30 {
		t.Errorf("Quantile(0.5) = %v, want 30", q)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P < pts[i-1].P {
			t.Errorf("points not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Errorf("last point P = %v, want 1", pts[len(pts)-1].P)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.0)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for i, x := range w {
		if x <= 0 {
			t.Errorf("weight %d non-positive", i)
		}
		if i > 0 && x > w[i-1] {
			t.Errorf("weights not decreasing at %d", i)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	// Heavier exponent concentrates more mass at the head.
	w2 := ZipfWeights(100, 2.0)
	if w2[0] <= w[0] {
		t.Errorf("s=2 head weight %v should exceed s=1 head weight %v", w2[0], w[0])
	}
	if ZipfWeights(0, 1) != nil {
		t.Error("ZipfWeights(0) should be nil")
	}
}

func TestSampleWeighted(t *testing.T) {
	rng := NewRand(42)
	weights := []float64{0, 1, 0}
	for i := 0; i < 50; i++ {
		idx, err := SampleWeighted(rng, weights)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("SampleWeighted picked zero-weight index %d", idx)
		}
	}
	if _, err := SampleWeighted(rng, []float64{0, 0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := SampleWeighted(rng, []float64{-1, 2}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestSampleWeightedDistribution(t *testing.T) {
	rng := NewRand(7)
	weights := []float64{1, 3}
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		idx, err := SampleWeighted(rng, weights)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("index 1 sampled %.3f of the time, want ~0.75", frac)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(1), NewRand(1)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp wrong")
	}
}
