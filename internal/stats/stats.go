// Package stats provides the small statistical toolkit shared by the
// PAINTER experiments: percentiles, CDFs, summaries, Zipf weights, and a
// deterministic RNG helper so every experiment is reproducible.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic *rand.Rand for the given seed. All
// PAINTER components accept explicit RNGs so that experiments are exactly
// reproducible run-to-run.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i).
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ws))
	}
	var num, den float64
	for i, x := range xs {
		if ws[i] < 0 {
			return 0, fmt.Errorf("stats: negative weight %v at %d", ws[i], i)
		}
		num += x * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return num / den, nil
}

// Min returns the minimum element.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum element.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) (float64, error) {
	mu, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Summary holds the usual five-number-plus summary of a sample.
type Summary struct {
	N                  int
	Mean, Min, Max     float64
	P10, P25, P50, P75 float64
	P90, P95, P99      float64
}

// Summarize computes a Summary; it returns ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var s Summary
	s.N = len(xs)
	s.Mean, _ = Mean(xs)
	s.Min, _ = Min(xs)
	s.Max, _ = Max(xs)
	for _, pp := range []struct {
		p   float64
		dst *float64
	}{
		{10, &s.P10}, {25, &s.P25}, {50, &s.P50}, {75, &s.P75},
		{90, &s.P90}, {95, &s.P95}, {99, &s.P99},
	} {
		v, _ := Percentile(xs, pp.p)
		*pp.dst = v
	}
	return s, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied and sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of underlying samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x): the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the value at cumulative probability q in [0,1].
func (c *CDF) Quantile(q float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	return Percentile(c.sorted, q*100)
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting the CDF curve.
type CDFPoint struct{ X, P float64 }

// Points samples the CDF at n evenly spaced quantiles.
func (c *CDF) Points(n int) []CDFPoint {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 0.5
		}
		idx := int(q * float64(len(c.sorted)-1))
		out = append(out, CDFPoint{X: c.sorted[idx], P: float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

// ZipfWeights returns n weights following a Zipf distribution with
// exponent s (w_i ∝ 1/i^s), normalized to sum to 1. Zipf skew is the
// standard model for traffic volume concentration across user networks.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SampleWeighted draws one index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative and not all
// zero.
func SampleWeighted(rng *rand.Rand, weights []float64) (int, error) {
	var total float64
	for _, w := range weights {
		if w < 0 {
			return 0, fmt.Errorf("stats: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return 0, errors.New("stats: all weights zero")
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i, nil
		}
	}
	return len(weights) - 1, nil
}
