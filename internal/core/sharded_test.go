package core

// Determinism contract of the sharded grow loop: any worker count must
// produce byte-identical solves. Each candidate's marginal is computed
// wholly on one worker over the fixed statesFor order, and the argmax /
// heap ordering is worker-independent, so the only difference between
// Workers=1 and Workers=N is wall-clock.

import (
	"reflect"
	"testing"
)

func solveWithWorkers(t *testing.T, seed int64, workers int) (Config, []IterationReport) {
	t.Helper()
	b := newBench(t, seed)
	p := DefaultParams(6)
	p.Workers = workers
	o, err := New(b.in, b.exec, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, o.Reports()
}

func TestShardedSolveIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, seed := range []int64{41, 97} {
		cfg1, rep1 := solveWithWorkers(t, seed, 1)
		for _, workers := range []int{2, 4, 7} {
			cfgN, repN := solveWithWorkers(t, seed, workers)
			if !reflect.DeepEqual(cfg1, cfgN) {
				t.Fatalf("seed %d: config with %d workers differs from sequential:\n%v\nvs\n%v",
					seed, workers, cfg1, cfgN)
			}
			if !reflect.DeepEqual(rep1, repN) {
				t.Fatalf("seed %d: iteration reports with %d workers differ from sequential",
					seed, workers)
			}
		}
	}
}

func TestShardedRepairIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) Config {
		b := newBench(t, 61)
		p := DefaultParams(6)
		p.Workers = workers
		o, err := New(b.in, b.exec, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := o.Solve(); err != nil {
			t.Fatal(err)
		}
		return o.ComputeConfig()
	}
	seq := run(1)
	for _, workers := range []int{3, 5} {
		if got := run(workers); !reflect.DeepEqual(seq, got) {
			t.Fatalf("ComputeConfig with %d workers differs from sequential", workers)
		}
	}
}
