package core

// Controller tests: the event→dirty-set mapping for all 7 netsim event
// kinds, differential against a cold full solve on the post-event world.
// Each scenario drives TWO same-seed rigs through the same events: a
// repair controller (warm-start path under test) and a ForceFullSolve
// twin whose config must match the cold solve byte-for-byte — proving
// the controller's incrementally refreshed model (anycast baselines,
// dark mask, live filter) is exactly the model a restarted batch
// operator would build. The repair arm is held to a benefit tolerance
// instead: mid-outage, frozen clean prefixes cost a few percent versus
// a global re-solve (that is the price of incrementality; the
// dirty-fraction threshold bounds it, and the chaos convergence test
// asserts the 1% criterion once schedules recover).

import (
	"bytes"
	"encoding/binary"
	"testing"

	"painter/internal/bgp"
	"painter/internal/netsim"
	"painter/internal/usergroup"
)

const ctrlBudget = 5

// repairTolerance is the minimum fraction of the cold-solve benefit the
// warm-start path must retain mid-outage.
const repairTolerance = 0.90

func newTestController(t *testing.T, b *testBench) *Controller {
	t.Helper()
	c, err := NewController(b.world, b.ugs, ControllerParams{Solver: DefaultParams(ctrlBudget)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// coldConfig computes a from-scratch config on the world's CURRENT
// state: fresh inputs (current anycast baselines and coverage), live
// peerings only — what a batch operator restarted after the events
// would produce.
func coldConfig(t *testing.T, b *testBench) Config {
	t.Helper()
	in, _, err := SimInputs(b.world, b.ugs, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(in, nil, DefaultParams(ctrlBudget))
	if err != nil {
		t.Fatal(err)
	}
	return o.ComputeConfigLive(func(id bgp.IngressID) bool { return !b.world.IngressDown(id) })
}

func benefitOf(t *testing.T, b *testBench, cfg Config) float64 {
	t.Helper()
	res, err := Evaluate(b.world, b.ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Benefit
}

// configBytes canonically serializes a config for byte-equality checks.
func configBytes(cfg Config) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cfg.Prefixes)))
	for _, S := range cfg.Prefixes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(S)))
		for _, ing := range S {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ing))
		}
	}
	return buf
}

func prefixesContaining(cfg Config, ids ...bgp.IngressID) map[int]bool {
	want := make(map[bgp.IngressID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make(map[int]bool)
	for pi, S := range cfg.Prefixes {
		for _, ing := range S {
			if want[ing] {
				out[pi] = true
				break
			}
		}
	}
	return out
}

func assertDirtyContains(t *testing.T, rep SyncReport, want map[int]bool) {
	t.Helper()
	got := make(map[int]bool, len(rep.Dirty))
	for _, pi := range rep.Dirty {
		got[pi] = true
	}
	for pi := range want {
		if !got[pi] {
			t.Errorf("prefix %d should be dirty; dirty set = %v", pi, rep.Dirty)
		}
	}
}

func assertNoneContain(t *testing.T, cfg Config, ids ...bgp.IngressID) {
	t.Helper()
	bad := prefixesContaining(cfg, ids...)
	if len(bad) != 0 {
		t.Errorf("repaired config still advertises failed ingresses %v in prefixes %v", ids, bad)
	}
}

// ctrlRig is a pair of same-seed worlds: one driven through the repair
// controller under test, the twin through a ForceFullSolve controller.
type ctrlRig struct {
	t      *testing.T
	b, b2  *testBench
	c, c2  *Controller
	lastRp SyncReport
}

func newCtrlRig(t *testing.T, seed int64) *ctrlRig {
	t.Helper()
	r := &ctrlRig{t: t, b: newBench(t, seed), b2: newBench(t, seed)}
	r.c = newTestController(t, r.b)
	c2, err := NewController(r.b2.world, r.b2.ugs, ControllerParams{
		Solver: DefaultParams(ctrlBudget), ForceFullSolve: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Stop)
	r.c2 = c2
	return r
}

// apply mirrors one event into both worlds.
func (r *ctrlRig) apply(ev netsim.Event) {
	r.t.Helper()
	if err := r.b.world.ApplyEvent(ev); err != nil {
		r.t.Fatal(err)
	}
	if err := r.b2.world.ApplyEvent(ev); err != nil {
		r.t.Fatal(err)
	}
}

// sync syncs both controllers and returns the repair arm's result.
func (r *ctrlRig) sync() (Config, SyncReport) {
	r.t.Helper()
	if _, _, err := r.c2.Sync(); err != nil {
		r.t.Fatal(err)
	}
	cfg, rep, err := r.c.Sync()
	if err != nil {
		r.t.Fatal(err)
	}
	r.lastRp = rep
	return cfg, rep
}

// TestControllerDirtySetPerKind drives each of the 7 event kinds through
// a fresh rig and asserts (a) the per-kind dirty-set rules, (b) the
// exact differential — the full-solve twin's config byte-identical to a
// cold solve on the post-event world — and (c) the repair arm's benefit
// within tolerance of cold.
func TestControllerDirtySetPerKind(t *testing.T) {
	type scenario struct {
		name string
		run  func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport)
	}

	// anycastUnselected returns an advertised ingress no UG's anycast
	// route currently selects (zero when all are selected).
	anycastUnselected := func(t *testing.T, b *testBench, before Config) bgp.IngressID {
		t.Helper()
		_, ing, err := AnycastLatencies(b.world, b.ugs)
		if err != nil {
			t.Fatal(err)
		}
		selected := make(map[bgp.IngressID]bool, len(ing))
		for _, id := range ing {
			selected[id] = true
		}
		for _, S := range before.Prefixes {
			for _, id := range S {
				if !selected[id] {
					return id
				}
			}
		}
		return 0
	}

	scenarios := []scenario{
		{"peering-down", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			x := before.Prefixes[0][0]
			r.apply(netsim.Event{Kind: netsim.EventPeeringDown, Ingress: x})
			after, rep := r.sync()
			assertDirtyContains(t, rep, prefixesContaining(before, x))
			assertNoneContain(t, after, x)
			return after, rep
		}},
		{"peering-up", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			x := before.Prefixes[0][0]
			r.apply(netsim.Event{Kind: netsim.EventPeeringDown, Ingress: x})
			r.sync()
			r.apply(netsim.Event{Kind: netsim.EventPeeringUp, Ingress: x})
			after, rep := r.sync()
			if rep.Events != 1 {
				t.Errorf("recovery sync consumed %d events, want 1", rep.Events)
			}
			return after, rep
		}},
		{"pop-down", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			pop, err := r.b.world.Deploy.PoPOfPeering(before.Prefixes[0][0])
			if err != nil {
				t.Fatal(err)
			}
			at := r.b.world.Deploy.PeeringsAt(pop.ID)
			r.apply(netsim.Event{Kind: netsim.EventPoPDown, PoP: pop.ID})
			after, rep := r.sync()
			assertDirtyContains(t, rep, prefixesContaining(before, at...))
			assertNoneContain(t, after, at...)
			return after, rep
		}},
		{"pop-up", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			pop, err := r.b.world.Deploy.PoPOfPeering(before.Prefixes[0][0])
			if err != nil {
				t.Fatal(err)
			}
			r.apply(netsim.Event{Kind: netsim.EventPoPDown, PoP: pop.ID})
			r.sync()
			r.apply(netsim.Event{Kind: netsim.EventPoPUp, PoP: pop.ID})
			after, rep := r.sync()
			return after, rep
		}},
		{"latency-spike-selected", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			// Spike an ingress some UG's anycast route traverses: those
			// states' baselines move, dirtying every prefix they can use.
			_, ing, err := AnycastLatencies(r.b.world, r.b.ugs)
			if err != nil {
				t.Fatal(err)
			}
			var x bgp.IngressID
			var victim usergroup.ID
			for id, sel := range ing {
				if x == 0 || sel < x {
					x, victim = sel, id
				}
			}
			r.apply(netsim.Event{Kind: netsim.EventLatencySpike, Ingress: x, Ms: 80})
			after, rep := r.sync()
			if rep.AnycastChanged == 0 {
				t.Errorf("spiking anycast-selected ingress %d changed no baselines", x)
			}
			// The victim's usable prefixes must all be dirty.
			want := make(map[int]bool)
			for _, st := range r.c.o.states {
				if st.ug.ID != victim {
					continue
				}
				for pi, S := range before.Prefixes {
					if e := st.expect(S, r.c.o.params.ReuseKm); e.Usable() {
						want[pi] = true
					}
				}
			}
			assertDirtyContains(t, rep, want)
			return after, rep
		}},
		{"latency-spike-unselected", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			// A spike on an ingress nobody's anycast route uses moves no
			// placement input: nothing dirty, config byte-identical.
			x := anycastUnselected(t, r.b, before)
			if x == 0 {
				t.Skip("every advertised ingress is anycast-selected")
			}
			r.apply(netsim.Event{Kind: netsim.EventLatencySpike, Ingress: x, Ms: 80})
			after, rep := r.sync()
			if len(rep.Dirty) != 0 {
				t.Errorf("unselected spike dirtied prefixes %v", rep.Dirty)
			}
			if !bytes.Equal(configBytes(after), configBytes(before)) {
				t.Error("unselected spike changed the config")
			}
			return after, rep
		}},
		{"probe-loss", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			x := before.Prefixes[0][0]
			r.apply(netsim.Event{Kind: netsim.EventProbeLoss, Ingress: x, Pct: 35})
			after, rep := r.sync()
			if len(rep.Dirty) != 0 || rep.Repaired || rep.FullSolve {
				t.Errorf("probe loss must be a no-op, got report %+v", rep)
			}
			if !bytes.Equal(configBytes(after), configBytes(before)) {
				t.Error("probe loss changed the config")
			}
			return after, rep
		}},
		{"pref-flip", func(t *testing.T, r *ctrlRig, before Config) (Config, SyncReport) {
			x := before.Prefixes[0][0]
			as := r.b.ugs.UGs[0].ASN
			r.apply(netsim.Event{Kind: netsim.EventPrefFlip, AS: as, Ingress: x})
			after, rep := r.sync()
			assertDirtyContains(t, rep, prefixesContaining(before, x))
			return after, rep
		}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			r := newCtrlRig(t, 61)
			before := r.c.Config()
			if before.NumPrefixes() == 0 {
				t.Fatal("controller produced empty initial config")
			}
			if !bytes.Equal(configBytes(before), configBytes(r.c2.Config())) {
				t.Fatal("same-seed rigs disagree on the initial config")
			}
			after, _ := sc.run(t, r, before)
			if err := after.Validate(r.b.world.Deploy); err != nil {
				t.Fatalf("synced config invalid: %v", err)
			}
			// Exact differential: the full-solve twin must land on the
			// cold solve byte-for-byte (its refreshed model IS the cold
			// model).
			cold2 := coldConfig(t, r.b2)
			if !bytes.Equal(configBytes(r.c2.Config()), configBytes(cold2)) {
				t.Errorf("full-solve twin diverged from cold solve:\n twin %v\n cold %v",
					r.c2.Config().Prefixes, cold2.Prefixes)
			}
			// Tolerance differential for the warm-start path.
			cold := coldConfig(t, r.b)
			got, want := benefitOf(t, r.b, after), benefitOf(t, r.b, cold)
			if got < repairTolerance*want-1e-9 {
				t.Errorf("synced benefit %.3f below %.0f%% of cold solve %.3f",
					got, repairTolerance*100, want)
			}
		})
	}
}

// TestControllerRepairRoundTrip: a down/up pair returns the world to its
// initial state; the controller's incremental path must land back within
// 1% of the initial configuration's benefit.
func TestControllerRepairRoundTrip(t *testing.T) {
	bench := newBench(t, 67)
	c := newTestController(t, bench)
	before := c.Config()
	beforeBenefit := benefitOf(t, bench, before)

	x := before.Prefixes[0][0]
	for _, ev := range []netsim.Event{
		{Kind: netsim.EventPeeringDown, Ingress: x},
		{Kind: netsim.EventPeeringUp, Ingress: x},
	} {
		if err := bench.world.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	got := benefitOf(t, bench, c.Config())
	if got < 0.99*beforeBenefit-1e-9 {
		t.Errorf("post-recovery benefit %.3f below 99%% of initial %.3f", got, beforeBenefit)
	}
}

// TestControllerForceFullSolve: the benchmark control arm must take the
// full-solve path on every dirtying sync.
func TestControllerForceFullSolve(t *testing.T) {
	bench := newBench(t, 71)
	c, err := NewController(bench.world, bench.ugs, ControllerParams{
		Solver: DefaultParams(ctrlBudget), ForceFullSolve: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	x := c.Config().Prefixes[0][0]
	if err := bench.world.ApplyEvent(netsim.Event{Kind: netsim.EventPeeringDown, Ingress: x}); err != nil {
		t.Fatal(err)
	}
	_, rep, err := c.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullSolve || rep.Repaired {
		t.Errorf("ForceFullSolve sync report %+v, want FullSolve", rep)
	}
}

// TestControllerSyncIdempotentWhenQuiet: with no events queued, Sync
// must return the same config and touch nothing.
func TestControllerSyncIdempotentWhenQuiet(t *testing.T) {
	bench := newBench(t, 73)
	c := newTestController(t, bench)
	before := configBytes(c.Config())
	for i := 0; i < 3; i++ {
		cfg, rep, err := c.Sync()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Events != 0 || rep.Repaired || rep.FullSolve {
			t.Fatalf("quiet sync did work: %+v", rep)
		}
		if !bytes.Equal(configBytes(cfg), before) {
			t.Fatal("quiet sync changed the config")
		}
	}
}
