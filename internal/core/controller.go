package core

// Continuous re-solve controller: the event-driven face of the
// Advertisement Orchestrator. PAINTER is a continuously operating
// system — peerings fail and recover, catchments shift, latencies spike
// — and recomputing the whole configuration on every event wastes the
// work the greedy allocator already did for the untouched prefixes. The
// Controller subscribes to a netsim.World's event stream, maps each
// event to the dirty set of prefixes it can actually change, and runs a
// warm-start repair (RepairConfig) that regrows only those, falling
// back to a full re-solve when the dirty fraction crosses a threshold.
//
// Dirty-set rules (derived from what each event kind can change in the
// offline model — estimates come from steady-state base latencies and
// never move; anycast values and route selections do):
//
//   - Any routing event (peering/PoP down/up, pref flip) dirties every
//     prefix containing a touched ingress: the prefix's resolution can
//     change, so its membership must be reconsidered.
//   - After any routing or latency event the controller re-resolves the
//     anycast prefix (one cached query) and refreshes every state's
//     anycast latency. States whose anycast moved — or whose AS lost or
//     regained anycast coverage entirely (the dark mask) — dirty every
//     prefix they can use: their Eq. (1) baseline changed, so every
//     placement decision involving them is suspect.
//   - A recovered ingress additionally dirties the prefixes usable by
//     states it could now improve (estimate below their current value):
//     the greedy loop might want it somewhere it could not go before.
//   - Latency spikes change no placement input except anycast (the
//     model's estimates deliberately stay at base latencies, exactly as
//     a cold solve's inputs would), so they dirty only via the anycast
//     rule. Probe loss is Traffic Manager metadata: never dirty.
//
// Concurrency contract: the World forbids ApplyEvent concurrent with
// queries, so the subscription hook only enqueues; all model refresh and
// repair work happens in Sync, which the driver calls between query
// waves (chaos onTick, the painterd tick loop).

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"painter/internal/bgp"
	"painter/internal/netsim"
	"painter/internal/obs/span"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// ControllerParams configures the continuous controller.
type ControllerParams struct {
	// Solver parameterizes the underlying orchestrator (budget, D_reuse,
	// Obs registry, Trace).
	Solver Params
	// FullSolveFraction is the dirty-prefix fraction above which repair
	// falls back to a full re-solve (0 uses DefaultFullSolveFraction).
	FullSolveFraction float64
	// ForceFullSolve recomputes from scratch on every dirtying sync —
	// the control arm of the repair-vs-full benchmark.
	ForceFullSolve bool
	// FullAnycastRefresh disables the incremental anycast refresh: every
	// dirtying sync re-reads every UG's anycast latency instead of only
	// the states the resolve diff and spike set can have moved. Combined
	// with World.SetDeltaResolve(false) this reproduces the pre-delta
	// repair path — the baseline arm of the resolve benchmark.
	FullAnycastRefresh bool
}

// DefaultFullSolveFraction: repairing more than half the prefixes does
// roughly a full solve's work anyway, minus the tail-growth savings, so
// past that point pay for the cold solve's global ordering instead.
const DefaultFullSolveFraction = 0.5

// SyncReport describes what one Sync did.
type SyncReport struct {
	// Events is how many queued events this sync consumed.
	Events int
	// Dirty holds the dirty prefix indices into the pre-repair config.
	Dirty []int
	// DirtyFraction is len(Dirty)/max(1, prefixes before repair).
	DirtyFraction float64
	// AnycastChanged counts UG states whose anycast latency or coverage
	// changed.
	AnycastChanged int
	// FullSolve reports that the sync recomputed from scratch.
	FullSolve bool
	// Repaired reports that the sync ran the warm-start repair path.
	Repaired bool
}

// Controller maintains an advertisement configuration against a live
// world, incrementally repairing it as events arrive.
type Controller struct {
	w *netsim.World
	o *Orchestrator
	p ControllerParams

	dark []bool
	cfg  Config

	// Incremental anycast state: the retained anycast Result (and the
	// day it was resolved on) lets refreshAnycast re-examine only the
	// states whose selection moved (AnycastShift's changed-AS set — the
	// delta engine's catchment cone) or whose current ingress was
	// latency-touched, instead of recomputing every state's latency on
	// every sync. anyIng is each state's currently selected anycast
	// ingress (InvalidIngress when dark); byAS indexes states by ASN.
	anyRes *bgp.Result
	anyDay int
	anyIng []bgp.IngressID
	byAS   map[topology.ASN][]int32

	mu      sync.Mutex
	pending []netsim.Event
	cancel  func()

	rm repairMetrics
}

// NewController builds orchestrator state from the world's current view
// (compliance, base-latency estimates, anycast baselines), computes the
// initial configuration over live peerings, and subscribes to the
// world's events. Call Sync between query waves to consume them, and
// Stop to unsubscribe. UGs without an anycast route at construction are
// dropped (as in SimInputs); UGs losing coverage later go dark and
// return when their routes do.
func NewController(w *netsim.World, ugs *usergroup.Set, p ControllerParams) (*Controller, error) {
	if p.FullSolveFraction <= 0 {
		p.FullSolveFraction = DefaultFullSolveFraction
	}
	in, _, err := SimInputs(w, ugs, nil)
	if err != nil {
		return nil, fmt.Errorf("core: controller inputs: %w", err)
	}
	o, err := New(in, nil, p.Solver)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		w:      w,
		o:      o,
		p:      p,
		dark:   make([]bool, len(o.states)),
		anyIng: make([]bgp.IngressID, len(o.states)),
		byAS:   make(map[topology.ASN][]int32, len(o.states)),
		rm:     newRepairMetrics(p.Solver.Obs),
	}
	for i, st := range o.states {
		c.anyIng[i] = bgp.InvalidIngress
		c.byAS[st.ug.ASN] = append(c.byAS[st.ug.ASN], int32(i))
	}
	c.cfg = o.computeConfig(nil, c.live, c.dark)
	c.cancel = w.Subscribe(c.enqueue)
	return c, nil
}

// live reports whether a peering is currently up in the world.
func (c *Controller) live(id bgp.IngressID) bool { return !c.w.IngressDown(id) }

func (c *Controller) enqueue(ev netsim.Event) {
	c.mu.Lock()
	c.pending = append(c.pending, ev)
	c.rm.pendingEvents.Set(float64(len(c.pending)))
	c.mu.Unlock()
}

// Config returns a copy of the current configuration.
func (c *Controller) Config() Config { return c.cfg.Clone() }

// Orchestrator exposes the underlying solver (benefit prediction against
// the controller's refreshed model).
func (c *Controller) Orchestrator() *Orchestrator { return c.o }

// Budget returns the current prefix budget.
func (c *Controller) Budget() int { return c.o.params.PrefixBudget }

// SetBudget changes the prefix budget and immediately recomputes the
// configuration from scratch under the new budget, returning it. A
// budget change moves the greedy allocator's stopping point, not its
// per-prefix inputs, so warm-reuse caches stay valid. Like Sync, it
// must be called from the same cadence that applies world events —
// never concurrently with ApplyEvent/SetDay or another Sync.
func (c *Controller) SetBudget(budget int) (Config, error) {
	if budget < 1 {
		return Config{}, fmt.Errorf("core: SetBudget: budget must be >= 1, got %d", budget)
	}
	if budget == c.o.params.PrefixBudget {
		return c.cfg.Clone(), nil
	}
	c.o.params.PrefixBudget = budget
	c.cfg = c.o.computeConfig(nil, c.live, c.dark)
	return c.cfg.Clone(), nil
}

// Stop unsubscribes from the world. Idempotent.
func (c *Controller) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// Sync drains queued events, refreshes the model, recomputes whatever
// they dirtied, and returns the (possibly unchanged) configuration.
// Must not run concurrently with ApplyEvent/SetDay on the world — call
// it from the same cadence that applies events.
func (c *Controller) Sync() (Config, SyncReport, error) {
	c.mu.Lock()
	evs := c.pending
	c.pending = nil
	c.rm.pendingEvents.Set(0)
	c.mu.Unlock()

	rep := SyncReport{Events: len(evs)}
	if len(evs) == 0 {
		return c.cfg.Clone(), rep, nil
	}
	c.rm.events.Add(uint64(len(evs)))

	sp := c.o.params.Trace.StartRoot("core.repair",
		span.A("events", strconv.Itoa(len(evs))),
		span.A("first_event", evs[0].String()))
	defer sp.Finish()

	touched, cameUp, latTouched, model, err := c.classify(evs)
	if err != nil {
		return Config{}, rep, err
	}
	if !model {
		// Probe loss only: Traffic Manager metadata, no placement input
		// changed.
		c.rm.noops.Inc()
		sp.SetAttr("outcome", "traffic-only")
		return c.cfg.Clone(), rep, nil
	}

	var start time.Time
	if c.rm.on() {
		start = time.Now()
	}

	changed, err := c.refreshAnycast(latTouched)
	if err != nil {
		return Config{}, rep, err
	}
	rep.AnycastChanged = len(changed)

	rep.Dirty = c.dirtyPrefixes(touched, cameUp, changed)
	n := len(c.cfg.Prefixes)
	rep.DirtyFraction = float64(len(rep.Dirty)) / math.Max(1, float64(n))
	c.rm.dirtyFraction.Set(rep.DirtyFraction)
	sp.SetAttr("dirty", strconv.Itoa(len(rep.Dirty)))

	switch {
	case len(rep.Dirty) == 0 && n >= c.o.params.PrefixBudget:
		// Nothing dirty and no free budget: config stands.
		c.rm.noops.Inc()
		sp.SetAttr("outcome", "clean")
	case c.p.ForceFullSolve || n == 0 || rep.DirtyFraction > c.p.FullSolveFraction:
		rep.FullSolve = true
		c.cfg = c.o.computeConfig(sp, c.live, c.dark)
		c.rm.fullSolves.Inc()
		sp.SetAttr("outcome", "full-solve")
	default:
		rep.Repaired = true
		c.cfg = c.o.repairConfig(sp, c.cfg, rep.Dirty, c.live, c.dark)
		c.rm.repairs.Inc()
		sp.SetAttr("outcome", "repair")
	}
	if c.rm.on() && (rep.FullSolve || rep.Repaired) {
		c.rm.repairSeconds.Observe(time.Since(start).Seconds())
	}
	return c.cfg.Clone(), rep, nil
}

// classify folds the batch of events into the inputs of the dirty rules:
// the touched routing ingresses, the subset that came (back) up, the
// latency-only touched ingresses (spikes — they can move a state's
// anycast value without moving its route), and whether anything at all
// can move the placement model.
func (c *Controller) classify(evs []netsim.Event) (touched, cameUp, latTouched map[bgp.IngressID]bool, model bool, err error) {
	touched = make(map[bgp.IngressID]bool)
	cameUp = make(map[bgp.IngressID]bool)
	latTouched = make(map[bgp.IngressID]bool)
	for _, ev := range evs {
		imp, err := c.w.EventImpact(ev)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("core: classify %v: %w", ev, err)
		}
		if imp.TrafficOnly {
			continue
		}
		model = true
		if imp.Routing {
			up := ev.Kind == netsim.EventPeeringUp || ev.Kind == netsim.EventPoPUp
			for _, id := range imp.Ingresses {
				touched[id] = true
				if up && c.live(id) {
					cameUp[id] = true
				}
			}
		} else if imp.Latency {
			for _, id := range imp.Ingresses {
				latTouched[id] = true
			}
		}
	}
	return touched, cameUp, latTouched, model, nil
}

// refreshAnycast re-resolves the anycast prefix and updates state
// baselines and the dark mask, returning the indices of states whose
// value changed. With a retained previous Result (and an unchanged
// day), only the states that can have moved are re-examined: those
// whose AS is in the resolve diff, plus those whose current anycast
// ingress took a latency-only event. The first sync — and any sync
// after a day change or an error — falls back to refreshing every
// state, which is exactly the pre-incremental behaviour.
func (c *Controller) refreshAnycast(latTouched map[bgp.IngressID]bool) ([]int, error) {
	res, moved, err := c.w.AnycastShift(c.anyRes)
	if err != nil {
		c.anyRes = nil
		return nil, fmt.Errorf("core: refresh anycast: %w", err)
	}
	day := c.w.Day()
	full := c.p.FullAnycastRefresh || c.anyRes == nil || day != c.anyDay

	var changed []int
	refresh := func(i int) error {
		st := c.o.states[i]
		r, ok := res.Route(st.ug.ASN)
		if !ok {
			c.anyIng[i] = bgp.InvalidIngress
			if !c.dark[i] {
				c.dark[i] = true
				changed = append(changed, i)
			}
			return nil
		}
		ms, err := c.w.LatencyMs(st.ug.ASN, st.ug.Metro, r.Ingress)
		if err != nil {
			return fmt.Errorf("core: refresh anycast UG %d: %w", st.ug.ID, err)
		}
		if c.dark[i] || ms != st.anycast {
			changed = append(changed, i)
		}
		c.dark[i] = false
		st.anycast = ms
		c.anyIng[i] = r.Ingress
		return nil
	}
	if full {
		for i := range c.o.states {
			if err := refresh(i); err != nil {
				c.anyRes = nil
				return nil, err
			}
		}
	} else {
		mark := make([]bool, len(c.o.states))
		for _, as := range moved {
			for _, i := range c.byAS[as] {
				mark[i] = true
			}
		}
		if len(latTouched) > 0 {
			for i, ing := range c.anyIng {
				if latTouched[ing] {
					mark[i] = true
				}
			}
		}
		// Ascending order keeps changed identical to a full refresh.
		for i, m := range mark {
			if !m {
				continue
			}
			if err := refresh(i); err != nil {
				c.anyRes = nil
				return nil, err
			}
		}
	}
	c.anyRes, c.anyDay = res, day
	return changed, nil
}

// dirtyPrefixes applies the dirty rules and returns the sorted dirty
// prefix indices.
func (c *Controller) dirtyPrefixes(touched, cameUp map[bgp.IngressID]bool, changed []int) []int {
	dirty := make(map[int]bool)

	// Rule 1: prefixes containing a touched routing ingress.
	for pi, S := range c.cfg.Prefixes {
		for _, ing := range S {
			if touched[ing] {
				dirty[pi] = true
				break
			}
		}
	}

	// Rule 2: prefixes usable by states whose anycast baseline changed.
	suspect := append([]int(nil), changed...)

	// Rule 3: states a recovered ingress could improve.
	if len(cameUp) > 0 {
		cur := c.stateValues()
		for up := range cameUp {
			for _, i := range c.o.statesFor(up) {
				if c.dark[i] {
					continue
				}
				st := c.o.states[i]
				if est, ok := st.estOf(up); ok && est < cur[i] {
					suspect = append(suspect, int(i))
				}
			}
		}
	}
	for pi, S := range c.cfg.Prefixes {
		if dirty[pi] {
			continue
		}
		// Usability of S per state is model-only; with warm reuse on,
		// read it off the cached contribution vector (NaN = unusable)
		// instead of re-evaluating Eq. (2) per suspect.
		var vec []float64
		if !c.o.params.ColdRepair {
			vec = c.o.frozenVec(S)
		}
		for _, i := range suspect {
			if c.dark[i] {
				continue
			}
			usable := false
			if vec != nil {
				usable = !math.IsNaN(vec[i])
			} else {
				usable = c.o.states[i].expect(S, c.o.params.ReuseKm).Usable()
			}
			if usable {
				dirty[pi] = true
				break
			}
		}
	}

	out := make([]int, 0, len(dirty))
	for pi := range dirty {
		out = append(out, pi)
	}
	sort.Ints(out)
	return out
}

// stateValues returns each non-dark state's current modeled value: the
// minimum of its anycast baseline and its expectation for every prefix.
// With warm reuse on, the per-prefix expectations come from the cached
// contribution vectors (strict-< folding, so the NaN sentinel loses
// exactly like Usable()==false does on the cold path).
func (c *Controller) stateValues() []float64 {
	vals := make([]float64, len(c.o.states))
	if !c.o.params.ColdRepair {
		vecs := make([][]float64, len(c.cfg.Prefixes))
		for pi, S := range c.cfg.Prefixes {
			vecs[pi] = c.o.frozenVec(S)
		}
		for i, st := range c.o.states {
			vals[i] = st.anycast
			if c.dark[i] {
				continue
			}
			for _, vec := range vecs {
				if vec[i] < vals[i] {
					vals[i] = vec[i]
				}
			}
		}
		return vals
	}
	for i, st := range c.o.states {
		vals[i] = st.anycast
		if c.dark[i] {
			continue
		}
		for _, S := range c.cfg.Prefixes {
			if e := st.expect(S, c.o.params.ReuseKm); e.Usable() && e.Mean < vals[i] {
				vals[i] = e.Mean
			}
		}
	}
	return vals
}
