package core_test

import (
	"fmt"

	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// Example runs the Advertisement Orchestrator end to end on a small
// simulated world: generate an Internet, place a deployment, solve for
// a 4-prefix configuration with one learning iteration, and evaluate it
// against ground truth.
func Example() {
	graph, err := topology.Generate(topology.GenConfig{
		Seed: 42, Tier1: 4, Tier2: 20, Stubs: 120,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3,
		EnterpriseFrac: 0.4, ContentFrac: 0.05,
	})
	if err != nil {
		panic(err)
	}
	deploy, err := cloud.Build(graph, 64500, cloud.Profile{
		Name: "example", PoPMetros: 8, PeerFrac: 0.7, TransitProviders: 2, Seed: 43,
	})
	if err != nil {
		panic(err)
	}
	world, err := netsim.New(graph, deploy, 44)
	if err != nil {
		panic(err)
	}
	ugs, err := usergroup.Build(graph, usergroup.DefaultConfig())
	if err != nil {
		panic(err)
	}
	inputs, covered, err := core.SimInputs(world, ugs, nil)
	if err != nil {
		panic(err)
	}

	params := core.DefaultParams(4) // 4 prefixes, D_reuse 3000 km
	params.MaxIterations = 1
	orch, err := core.New(inputs, core.NewWorldExecutor(world, covered, 0, 45), params)
	if err != nil {
		panic(err)
	}
	cfg, err := orch.Solve()
	if err != nil {
		panic(err)
	}
	res, err := core.Evaluate(world, covered, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("prefixes=%d benefit-positive=%v improved-ugs>0=%v\n",
		cfg.NumPrefixes(), res.Benefit > 0, res.ImprovedUGs > 0)
	// Output: prefixes=4 benefit-positive=true improved-ugs>0=true
}
