package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(0..n-1) on a bounded pool of min(GOMAXPROCS, n)
// workers and waits for all of them. Indices are handed out dynamically,
// so uneven per-index cost still load-balances. If any calls fail, the
// error for the lowest index is returned — the same error a serial loop
// would surface first — keeping failure behaviour deterministic.
//
// fn must be safe for concurrent invocation; writes it makes should go
// to index-disjoint slots so callers can reassemble results in order.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
