package core

// Work-stealing index pool: the engine under every parallel loop in the
// orchestrator (candidate marginals, state freezes, prefix resolution,
// speculative repair). The index space [0,n) is split into one
// contiguous range per worker; a worker takes indices from the front of
// its own range with a CAS and, when empty, steals the back half of the
// largest remaining range. Each index is processed exactly once by
// exactly one worker, so any per-index computation whose result depends
// only on the index (not on scheduling) is deterministic — the property
// the sharded solve relies on for byte-identical configs at any worker
// count.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// stealRange is one worker's [lo,hi) range, packed lo<<32|hi into a
// single atomic word so take and steal are single CASes. The pad keeps
// neighboring ranges on separate cache lines.
type stealRange struct {
	bounds atomic.Uint64
	_      [7]uint64
}

func packRange(lo, hi int) uint64 { return uint64(uint32(lo))<<32 | uint64(uint32(hi)) }

func unpackRange(b uint64) (lo, hi int) { return int(uint32(b >> 32)), int(uint32(b)) }

// take claims the next index from the front of r (ok=false when empty).
func (r *stealRange) take() (int, bool) {
	for {
		b := r.bounds.Load()
		lo, hi := unpackRange(b)
		if lo >= hi {
			return 0, false
		}
		if r.bounds.CompareAndSwap(b, packRange(lo+1, hi)) {
			return lo, true
		}
	}
}

// parallelWorkers runs fn(worker, i) for every i in [0,n) on the
// work-stealing pool with the given worker count (0 → GOMAXPROCS,
// clamped to n). The worker argument is a stable id in [0,workers) so
// fn can use worker-local scratch without locking. fn must be safe for
// concurrent invocation across distinct indices; writes should go to
// index-disjoint slots.
func parallelWorkers(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	ranges := make([]stealRange, workers)
	per, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < rem {
			hi++
		}
		ranges[w].bounds.Store(packRange(lo, hi))
		lo = hi
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i, ok := ranges[w].take()
				if !ok {
					i, ok = stealInto(ranges, w)
					if !ok {
						return
					}
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// stealInto moves the back half of the largest other range into worker
// w's (empty) range and claims that half's first index. It returns
// ok=false when no range holds two or more indices: a single remaining
// index is left to its owner, which is still live (a worker exits only
// after its own range is empty and nothing is stealable, and only the
// owner ever refills its range).
func stealInto(ranges []stealRange, w int) (int, bool) {
	for {
		best, bestLen := -1, 1 // require >= 2 so the victim keeps work
		var bestB uint64
		for v := range ranges {
			if v == w {
				continue
			}
			b := ranges[v].bounds.Load()
			lo, hi := unpackRange(b)
			if hi-lo > bestLen {
				best, bestLen, bestB = v, hi-lo, b
			}
		}
		if best < 0 {
			return 0, false
		}
		lo, hi := unpackRange(bestB)
		mid := lo + (hi-lo+1)/2 // victim keeps the (larger) front half
		if !ranges[best].bounds.CompareAndSwap(bestB, packRange(lo, mid)) {
			continue // victim raced us; rescan
		}
		ranges[w].bounds.Store(packRange(mid+1, hi))
		return mid, true
	}
}

// parallelFor runs fn(0..n-1) on the work-stealing pool with GOMAXPROCS
// workers and waits for all of them. If any calls fail, the error for
// the lowest index is returned — the same error a serial loop would
// surface first — keeping failure behaviour deterministic.
//
// fn must be safe for concurrent invocation; writes it makes should go
// to index-disjoint slots so callers can reassemble results in order.
func parallelFor(n int, fn func(i int) error) error {
	var (
		mu       sync.Mutex
		firstIdx = math.MaxInt
		firstErr error
	)
	parallelWorkers(n, 0, func(_, i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}
