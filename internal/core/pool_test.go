package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelWorkersEveryIndexExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {5, 1}, {100, 3}, {1000, 8}, {7, 16},
	} {
		counts := make([]int32, tc.n)
		parallelWorkers(tc.n, tc.workers, func(worker, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d ran %d times, want exactly 1",
					tc.n, tc.workers, i, c)
			}
		}
	}
}

func TestParallelWorkersWorkerIDsStable(t *testing.T) {
	const n, workers = 200, 4
	var maxWorker int32 = -1
	parallelWorkers(n, workers, func(worker, i int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker id %d out of [0,%d)", worker, workers)
		}
		for {
			cur := atomic.LoadInt32(&maxWorker)
			if int32(worker) <= cur || atomic.CompareAndSwapInt32(&maxWorker, cur, int32(worker)) {
				break
			}
		}
	})
}

func TestParallelWorkersStealsUnderSkew(t *testing.T) {
	// One pathological index sleeps; with >1 workers the rest of that
	// worker's initial range must still complete (stolen by idle peers)
	// well before the sleeper finishes.
	const n, workers = 64, 4
	var done int32
	start := time.Now()
	parallelWorkers(n, workers, func(worker, i int) {
		if i == 0 {
			time.Sleep(50 * time.Millisecond)
		}
		atomic.AddInt32(&done, 1)
	})
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	// Serial execution would cost 50ms + 63 fast items on one goroutine;
	// this is a smoke check that the pool didn't serialize behind the
	// sleeper when parallelism is available (GOMAXPROCS may be 1 in CI,
	// where goroutines still interleave during the sleep).
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pool took %v, stealing is broken", elapsed)
	}
}

func TestParallelForLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom")
	for range 20 { // repeat: error selection must not depend on scheduling
		err := parallelFor(100, func(i int) error {
			if i == 17 || i == 63 || i == 90 {
				return fmt.Errorf("%w at %d", wantErr, i)
			}
			return nil
		})
		if err == nil || !errors.Is(err, wantErr) {
			t.Fatalf("got %v, want wrapped boom", err)
		}
		if got := err.Error(); got != "boom at 17" {
			t.Fatalf("got error %q, want the lowest-index failure", got)
		}
	}
}

func TestParallelForNoError(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := parallelFor(10, func(i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("ran %d indices, want 10", len(seen))
	}
}
