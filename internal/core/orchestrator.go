package core

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"time"

	"painter/internal/bgp"
	"painter/internal/obs"
	"painter/internal/obs/span"
	"painter/internal/usergroup"
)

// Params are Algorithm 1's hyperparameters plus loop controls.
type Params struct {
	// PrefixBudget is PB: how many prefixes may be advertised (beyond
	// the implicit anycast prefix).
	PrefixBudget int
	// ReuseKm is D_reuse, the minimum reuse distance (km).
	ReuseKm float64
	// MaxIterations bounds the outer learning loop.
	MaxIterations int
	// MinIterBenefitGain terminates learning when an iteration improves
	// realized weighted benefit by less than this fraction of the
	// previous iteration's benefit (§3.1: "terminate learning when
	// little marginal benefit increase").
	MinIterBenefitGain float64
	// ExactGreedy recomputes every candidate's marginal at every step
	// instead of using lazy evaluation. Slower; used for the ablation
	// bench validating the lazy optimization.
	ExactGreedy bool
	// MaxPeeringsPerPrefix caps reuse breadth per prefix (0 = no cap).
	MaxPeeringsPerPrefix int
	// ColdRepair disables the warm-reuse caches (frozen prefix
	// contribution vectors and grow-result memoization in warmcache.go)
	// so every computeConfig/repairConfig evaluates Eq. (2) from scratch
	// — the pre-delta solver behaviour. The resolve benchmark's baseline
	// arm sets it; configurations are byte-identical either way.
	ColdRepair bool
	// Workers is the worker count for the sharded grow/freeze loops
	// (0 = GOMAXPROCS, 1 = fully sequential). Any value produces
	// byte-identical configurations: each per-candidate marginal is
	// computed wholly by one worker over a fixed state order, so float
	// summation order never depends on scheduling.
	Workers int
	// Obs, when non-nil, receives solve-loop metrics (iterations,
	// prefixes placed, accepted marginal benefit, facts learned, wall
	// times). Nil disables instrumentation at one-branch cost.
	Obs *obs.Registry
	// Trace, when non-nil, records the solve loop's causal structure —
	// solve → iteration → prefix placement → propagate/resolve — into
	// the tracer's flight recorder. Nil disables tracing at one-branch
	// cost (the nil-safe no-op tracer).
	Trace *span.Tracer
}

// DefaultParams mirrors the paper's defaults (D_reuse = 3,000 km).
func DefaultParams(budget int) Params {
	return Params{
		PrefixBudget:       budget,
		ReuseKm:            3000,
		MaxIterations:      4,
		MinIterBenefitGain: 0.01,
	}
}

// IterationReport records one advertise→measure→learn round.
type IterationReport struct {
	Iteration int
	Config    Config
	// PredictedBenefit is Eq. (1) evaluated with Eq. (2) expectations
	// before executing, with uncertainty bounds from per-prefix latency
	// ranges.
	PredictedBenefit, PredictedLower, PredictedUpper float64
	// RealizedBenefit is Eq. (1) evaluated with the observed latencies.
	RealizedBenefit float64
	// FactsLearned counts new preference facts from this round.
	FactsLearned int
	// PrefixesUsed / AdvertisementsUsed measure footprint.
	PrefixesUsed, AdvertisementsUsed int
}

// Orchestrator is the Advertisement Orchestrator.
type Orchestrator struct {
	in     Inputs
	exec   Executor
	params Params
	states []*ugState
	// byIngress is an inverted index: peering → indices of UGs for which
	// that peering is policy-compliant (the sparsity that makes the
	// computation fast, §4). Indexed by raw IngressID; rows are grown on
	// demand when learning corrects the compliance model.
	byIngress [][]int32
	// stateIdx maps UG ID → index into states, built once so Learn and
	// RealizedBenefit don't rebuild lookup maps per iteration.
	stateIdx map[usergroup.ID]int32

	m solveMetrics

	// warm holds the repair path's exact-reuse caches (warmcache.go);
	// Learn invalidates it. Unused when params.ColdRepair is set.
	warm warmCache

	reports []IterationReport
}

// statesFor returns the state indices for which ing is compliant
// (shared; read-only). Out-of-range IDs yield nil.
func (o *Orchestrator) statesFor(ing bgp.IngressID) []int32 {
	if ing < 0 || int(ing) >= len(o.byIngress) {
		return nil
	}
	return o.byIngress[ing]
}

// indexState appends state i to ing's inverted-index row, growing the
// index when an observed ingress exceeds the deployment's ID range.
func (o *Orchestrator) indexState(ing bgp.IngressID, i int32) {
	if ing < 0 {
		return
	}
	if int(ing) >= len(o.byIngress) {
		grown := make([][]int32, int(ing)+1)
		copy(grown, o.byIngress)
		o.byIngress = grown
	}
	o.byIngress[ing] = append(o.byIngress[ing], i)
}

// workerCount resolves Params.Workers for the sharded loops.
func (o *Orchestrator) workerCount() int {
	if o.params.Workers > 0 {
		return o.params.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// New builds an orchestrator.
func New(in Inputs, exec Executor, p Params) (*Orchestrator, error) {
	if p.PrefixBudget < 1 {
		return nil, fmt.Errorf("core: prefix budget must be >= 1")
	}
	if p.ReuseKm < 0 {
		return nil, fmt.Errorf("core: negative ReuseKm")
	}
	if p.MaxIterations < 1 {
		p.MaxIterations = 1
	}
	states, err := newUGStates(in)
	if err != nil {
		return nil, err
	}
	o := &Orchestrator{in: in, exec: exec, params: p, states: states,
		stateIdx: make(map[usergroup.ID]int32, len(states)), m: newSolveMetrics(p.Obs)}
	maxID := bgp.InvalidIngress
	for _, st := range states {
		if n := len(st.compliant); n > 0 && st.compliant[n-1] > maxID {
			maxID = st.compliant[n-1]
		}
	}
	o.byIngress = make([][]int32, maxID+1)
	for i, st := range states {
		for _, ing := range st.compliant {
			o.byIngress[ing] = append(o.byIngress[ing], int32(i))
		}
		o.stateIdx[st.ug.ID] = int32(i)
	}
	return o, nil
}

// Reports returns the per-iteration history after Solve.
func (o *Orchestrator) Reports() []IterationReport { return o.reports }

// Solve runs the full outer loop of Algorithm 1: compute a configuration
// greedily, execute it, learn from observed ingresses, and repeat until
// benefit stops improving or MaxIterations is reached. It returns the
// configuration with the highest realized benefit across iterations
// (greedy with a refined model is not guaranteed monotone, so the
// operator keeps the best observed strategy).
func (o *Orchestrator) Solve() (Config, error) {
	if o.m.on() {
		start := time.Now()
		defer func() { o.m.solveSeconds.Observe(time.Since(start).Seconds()) }()
	}
	root := o.params.Trace.StartRoot("core.solve",
		span.A("budget", strconv.Itoa(o.params.PrefixBudget)),
		span.A("ugs", strconv.Itoa(len(o.states))))
	defer root.Finish()
	var best Config
	bestSet := false
	bestBenefit := math.Inf(-1)
	prevBenefit := math.Inf(-1)
	prevSet := false
	for iter := 0; iter < o.params.MaxIterations; iter++ {
		iterSpan := root.StartChild("core.iteration",
			span.A("iteration", strconv.Itoa(iter+1)))
		cfg := o.computeConfig(iterSpan, nil, nil)
		rep := IterationReport{
			Iteration:          iter + 1,
			Config:             cfg.Clone(),
			PrefixesUsed:       cfg.NumPrefixes(),
			AdvertisementsUsed: cfg.TotalAdvertisements(),
		}
		rep.PredictedBenefit, rep.PredictedLower, rep.PredictedUpper = o.PredictBenefit(cfg)

		if o.exec == nil {
			// Offline mode: no executor, single computation.
			o.reports = append(o.reports, rep)
			iterSpan.Finish()
			return cfg, nil
		}
		var execStart time.Time
		if o.m.on() {
			execStart = time.Now()
		}
		execSpan := iterSpan.StartChild("core.execute",
			span.A("prefixes", strconv.Itoa(cfg.NumPrefixes())))
		var obs []Observation
		var err error
		if te, ok := o.exec.(TracedExecutor); ok {
			obs, err = te.ExecuteTraced(cfg, execSpan)
		} else {
			obs, err = o.exec.Execute(cfg)
		}
		execSpan.Finish()
		if err != nil {
			iterSpan.Finish()
			return Config{}, fmt.Errorf("core: execute iteration %d: %w", iter+1, err)
		}
		if o.m.on() {
			o.m.executeSeconds.Observe(time.Since(execStart).Seconds())
		}
		rep.RealizedBenefit = o.RealizedBenefit(obs)
		rep.FactsLearned = o.Learn(cfg, obs)
		o.m.iterations.Inc()
		o.m.factsLearned.Add(uint64(rep.FactsLearned))
		o.m.realizedBenefit.Set(rep.RealizedBenefit)
		o.reports = append(o.reports, rep)
		iterSpan.SetAttr("facts_learned", strconv.Itoa(rep.FactsLearned))
		iterSpan.Finish()
		// NaN never compares greater, so an unguarded `>` would silently
		// keep the zero Config when every iteration's benefit is NaN (a
		// pathological executor or measurement feed). Track explicitly
		// whether any iteration produced a comparable benefit; -Inf is
		// comparable (a terrible config is still a config).
		if !math.IsNaN(rep.RealizedBenefit) && (!bestSet || rep.RealizedBenefit > bestBenefit) {
			bestSet = true
			bestBenefit = rep.RealizedBenefit
			best = cfg
		}

		// Terminate learning when an iteration adds little benefit and no
		// new facts. For positive benefits the threshold is relative
		// (MinIterBenefitGain as a fraction of the previous benefit, as in
		// §3.1); when realized benefit is zero or negative a relative gain
		// is meaningless (the old `prevBenefit > 0` guard simply never
		// fired and degenerate runs burned all MaxIterations), so fall
		// back to an absolute delta scaled by max(|prev|, 1).
		if prevSet && !math.IsNaN(rep.RealizedBenefit) {
			scale := prevBenefit
			if scale <= 0 {
				scale = math.Abs(prevBenefit)
				if scale < 1 {
					scale = 1
				}
			}
			gain := (rep.RealizedBenefit - prevBenefit) / scale
			if gain < o.params.MinIterBenefitGain && rep.FactsLearned == 0 {
				break
			}
		}
		if !math.IsNaN(rep.RealizedBenefit) && (!prevSet || rep.RealizedBenefit > prevBenefit) {
			prevSet = true
			prevBenefit = rep.RealizedBenefit
		}
	}
	if !bestSet {
		return Config{}, fmt.Errorf("core: no iteration produced a comparable realized benefit (all NaN)")
	}
	return best, nil
}

// --- Greedy configuration computation (Algorithm 1 inner loops) -----------

// candHeap is a max-heap of cached candidate marginals for lazy greedy.
type candItem struct {
	ing      bgp.IngressID
	marginal float64
	version  int
}
type candHeap []candItem

func (h candHeap) Len() int { return len(h) }

// Less orders by marginal benefit, breaking ties by IngressID so
// equal-marginal candidates pop in a total, input-independent order.
// Without the tie-break the pop order of ties depends on heap-internal
// layout — deterministic for one call sequence, but a latent hole for
// the warm-start repair path, which grows prefixes from differently
// ordered candidate slices than a cold solve.
func (h candHeap) Less(i, j int) bool {
	if h[i].marginal != h[j].marginal {
		return h[i].marginal > h[j].marginal
	}
	return h[i].ing < h[j].ing
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(candItem)) }
func (h *candHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// ComputeConfig runs one full pass of Algorithm 1's two inner loops with
// the current routing model, returning the chosen configuration.
func (o *Orchestrator) ComputeConfig() Config { return o.computeConfig(nil, nil, nil) }

// ComputeConfigLive is ComputeConfig restricted to peerings for which
// live returns true (nil live = all peerings). The continuous controller
// uses it so a full re-solve after failures never places a withdrawn
// peering.
func (o *Orchestrator) ComputeConfigLive(live func(bgp.IngressID) bool) Config {
	return o.computeConfig(nil, live, nil)
}

// computeConfig is ComputeConfig with one span per prefix placement hung
// off parent (nil parent: no tracing, one branch per prefix), an
// optional live-peering filter, and an optional dark mask excluding UG
// states from the benefit model (states whose AS currently has no
// anycast route; the continuous controller marks them during outages,
// mirroring how SimInputs drops uncovered UGs from a cold solve).
func (o *Orchestrator) computeConfig(parent *span.Span, live func(bgp.IngressID) bool, dark []bool) Config {
	// Per-UG frozen best across anycast + completed prefixes.
	bestFrozen := make([]float64, len(o.states))
	for i, st := range o.states {
		bestFrozen[i] = st.anycast
	}

	var cfg Config
	allPeerings := o.candidatePeerings(live)

	for p := 0; p < o.params.PrefixBudget; p++ {
		var growStart time.Time
		if o.m.on() {
			growStart = time.Now()
		}
		var placeSpan *span.Span
		if parent != nil {
			placeSpan = parent.StartChild("core.place_prefix",
				span.A("prefix", strconv.Itoa(p)))
		}
		S := o.growPrefix(allPeerings, bestFrozen, dark)
		if placeSpan != nil {
			placeSpan.SetAttr("peerings", strconv.Itoa(len(S)))
			placeSpan.Finish()
		}
		if o.m.on() {
			o.m.prefixGrowSeconds.Observe(time.Since(growStart).Seconds())
		}
		if len(S) == 0 {
			break // no peering offers positive benefit: further prefixes won't either
		}
		o.m.prefixesPlaced.Inc()
		cfg.Prefixes = append(cfg.Prefixes, S)
		// Freeze this prefix's contribution into bestFrozen.
		o.freezePrefix(S, bestFrozen, dark)
	}
	return cfg
}

// candidatePeerings returns the deployment's peerings filtered by live
// (nil = all), in deployment (ID) order.
func (o *Orchestrator) candidatePeerings(live func(bgp.IngressID) bool) []bgp.IngressID {
	all := o.in.Deploy.AllPeeringIDs()
	if live == nil {
		return all
	}
	out := make([]bgp.IngressID, 0, len(all))
	for _, id := range all {
		if live(id) {
			out = append(out, id)
		}
	}
	return out
}

// freezePrefix folds prefix S's contribution into bestFrozen, skipping
// dark states. With warm reuse on, the per-state Eq. (2) means come
// from a cached contribution vector (computed once per distinct prefix
// set until the model changes) and folding is a plain min scan.
func (o *Orchestrator) freezePrefix(S []bgp.IngressID, bestFrozen []float64, dark []bool) {
	if o.params.ColdRepair {
		o.freezePrefixCold(S, bestFrozen, dark)
		return
	}
	vec := o.frozenVec(S)
	for i := range bestFrozen {
		if dark != nil && dark[i] {
			continue
		}
		// Same strict-< update as the cold path; the NaN sentinel for
		// "unusable" loses every comparison, like Usable()==false.
		if vec[i] < bestFrozen[i] {
			bestFrozen[i] = vec[i]
		}
	}
}

// freezePrefixCold folds prefix S's contribution into bestFrozen by
// evaluating Eq. (2) per state. The per-state updates are independent
// (index-disjoint writes), so they run sharded.
func (o *Orchestrator) freezePrefixCold(S []bgp.IngressID, bestFrozen []float64, dark []bool) {
	workers := o.workerCount()
	scs := growScratches(workers)
	defer putScratches(scs)
	parallelWorkers(len(o.states), workers, func(w, i int) {
		if dark != nil && dark[i] {
			return
		}
		st := o.states[i]
		if e := st.expectSc(scs[w], S, o.params.ReuseKm); e.Usable() && e.Mean < bestFrozen[i] {
			bestFrozen[i] = e.Mean
		}
	})
}

// frozenVec returns prefix S's contribution vector: each state's
// Eq. (2) mean, NaN where the prefix is unusable (Mean is a finite
// average of estimates whenever Usable, so NaN is unambiguous). Cached
// by set content; the vector is shared and read-only.
func (o *Orchestrator) frozenVec(S []bgp.IngressID) []float64 {
	key := setHash(S)
	if vec, ok := o.warm.lookupFreeze(key, S); ok {
		return vec
	}
	vec := make([]float64, len(o.states))
	workers := o.workerCount()
	scs := growScratches(workers)
	defer putScratches(scs)
	parallelWorkers(len(o.states), workers, func(w, i int) {
		if e := o.states[i].expectSc(scs[w], S, o.params.ReuseKm); e.Usable() {
			vec[i] = e.Mean
		} else {
			vec[i] = math.NaN()
		}
	})
	o.warm.storeFreeze(key, S, vec)
	return vec
}

// singletonRows returns (building on first use per model version) the
// per-ingress singleton expectation table: rows[ing][k] is Eq. (2)'s
// mean for state statesFor(ing)[k] under the one-peering set {ing},
// NaN when unusable. growPrefix's initial sweep — the bulk of a grow —
// probes exactly these values, so the table turns it into a table walk.
func (o *Orchestrator) singletonRows() [][]float64 {
	if o.in.Deploy == nil {
		return nil // hand-built test orchestrator; grow computes cold
	}
	if rows := o.warm.lookupSingle(); rows != nil {
		return rows
	}
	// Only deployment peerings get rows: they are the only grow
	// candidates, and expectSc's popDist lookup is only defined for
	// deployment IDs (learned compliance corrections can index states
	// under foreign ingress IDs).
	rows := make([][]float64, len(o.byIngress))
	sc := exPool.Get().(*exScratch)
	defer exPool.Put(sc)
	one := make([]bgp.IngressID, 1)
	for _, ing := range o.in.Deploy.AllPeeringIDs() {
		idxs := o.statesFor(ing)
		if len(idxs) == 0 {
			continue
		}
		row := make([]float64, len(idxs))
		one[0] = ing
		for k, i := range idxs {
			if e := o.states[i].expectSc(sc, one, o.params.ReuseKm); e.Usable() {
				row[k] = e.Mean
			} else {
				row[k] = math.NaN()
			}
		}
		rows[ing] = row
	}
	return o.warm.storeSingle(rows)
}

// growScratches checks out one expectation scratch per worker.
func growScratches(workers int) []*exScratch {
	scs := make([]*exScratch, workers)
	for w := range scs {
		scs[w] = exPool.Get().(*exScratch)
	}
	return scs
}

func putScratches(scs []*exScratch) {
	for _, sc := range scs {
		exPool.Put(sc)
	}
}

// growPrefix implements the inner while-loop: advertise one prefix via
// as many peerings as keep marginal benefit positive, in ranked order of
// modeled improvement. Candidates come from allPeerings; dark states
// (nil = none) contribute no marginal benefit. growPrefix does not
// mutate orchestrator state (the warm cache is internally locked), so
// distinct calls with disjoint outputs may run concurrently (the
// warm-start repair path does).
//
// The result is a deterministic function of (candidates, frozen base,
// dark mask) for a fixed learned model, so with warm reuse on an exact
// input match returns the memoized set — the common case under churn,
// where recovery events restore a previously grown state bit-for-bit.
func (o *Orchestrator) growPrefix(allPeerings []bgp.IngressID, bestFrozen []float64, dark []bool) []bgp.IngressID {
	if o.params.ColdRepair {
		return o.growPrefixCold(allPeerings, bestFrozen, dark, nil)
	}
	key := growHash(allPeerings, bestFrozen, dark)
	if S, ok := o.warm.lookupGrow(key, allPeerings, bestFrozen, dark); ok {
		return S
	}
	S := o.growPrefixCold(allPeerings, bestFrozen, dark, o.singletonRows())
	o.warm.storeGrow(key, allPeerings, bestFrozen, dark, S)
	return S
}

// growPrefixCold is the uncached greedy grow loop. single, when
// non-nil, is the singleton expectation table used to read the initial
// sweep's Eq. (2) probes (each probe set there is exactly one peering)
// instead of recomputing them; the resulting marginals are bit-equal.
func (o *Orchestrator) growPrefixCold(allPeerings []bgp.IngressID, bestFrozen []float64, dark []bool, single [][]float64) []bgp.IngressID {
	workers := o.workerCount()
	scs := growScratches(workers)
	defer putScratches(scs)

	var S []bgp.IngressID
	inS := make(map[bgp.IngressID]bool)
	// curE[i] is Eq(2) for the growing prefix, +Inf when unusable.
	curE := make([]float64, len(o.states))
	for i := range curE {
		curE[i] = math.Inf(1)
	}

	// marginalOf evaluates one candidate wholly on one worker: the float
	// sum over statesFor(x) runs in fixed index order regardless of how
	// candidates are scheduled, so results are worker-count independent.
	// The S+x probe set is composed in the worker's scratch to avoid the
	// per-probe append allocation.
	marginalOf := func(sc *exScratch, x bgp.IngressID) float64 {
		sx := append(sc.sx[:0], S...)
		sx = append(sx, x)
		sc.sx = sx
		var delta float64
		for _, i := range o.statesFor(x) {
			if dark != nil && dark[i] {
				continue
			}
			st := o.states[i]
			oldVal := math.Min(bestFrozen[i], curE[i])
			e := st.expectSc(sc, sx, o.params.ReuseKm)
			newE := math.Inf(1)
			if e.Usable() {
				newE = e.Mean
			}
			newVal := math.Min(bestFrozen[i], newE)
			delta += st.ug.Weight * (oldVal - newVal)
		}
		return delta
	}

	accept := func(x bgp.IngressID) {
		S = append(S, x)
		inS[x] = true
		idxs := o.statesFor(x)
		parallelWorkers(len(idxs), workers, func(w, k int) {
			i := idxs[k]
			st := o.states[i]
			if e := st.expectSc(scs[w], S, o.params.ReuseKm); e.Usable() {
				curE[i] = e.Mean
			} else {
				curE[i] = math.Inf(1)
			}
		})
	}

	margs := make([]float64, len(allPeerings))
	if o.params.ExactGreedy {
		for {
			if o.params.MaxPeeringsPerPrefix > 0 && len(S) >= o.params.MaxPeeringsPerPrefix {
				break
			}
			// Recompute every candidate sharded, then argmax sequentially
			// in candidate order (ties keep the first, like a serial scan).
			parallelWorkers(len(allPeerings), workers, func(w, k int) {
				if x := allPeerings[k]; !inS[x] {
					margs[k] = marginalOf(scs[w], x)
				}
			})
			bestX := bgp.InvalidIngress
			bestM := 0.0
			for k, x := range allPeerings {
				if inS[x] {
					continue
				}
				if margs[k] > bestM {
					bestM, bestX = margs[k], x
				}
			}
			if bestX == bgp.InvalidIngress {
				break
			}
			o.m.acceptedMarginal.Observe(bestM)
			accept(bestX)
		}
		return S
	}

	// marginalSingle is marginalOf for the initial sweep (S empty, so
	// the probe set is exactly {x}) reading Eq. (2) from the singleton
	// table: same per-state values, same index order, same float sum.
	marginalSingle := func(x bgp.IngressID) float64 {
		var row []float64
		if int(x) < len(single) {
			row = single[x]
		}
		var delta float64
		for k, i := range o.statesFor(x) {
			if dark != nil && dark[i] {
				continue
			}
			st := o.states[i]
			oldVal := math.Min(bestFrozen[i], curE[i])
			newE := math.Inf(1)
			if v := row[k]; !math.IsNaN(v) {
				newE = v
			}
			newVal := math.Min(bestFrozen[i], newE)
			delta += st.ug.Weight * (oldVal - newVal)
		}
		return delta
	}

	// Warm incremental Eq. (2): per state, the (popDist, est) pairs of
	// S's compliant members in accept order — exactly the values expectSc
	// reads for that state, in the order it reads them, so means are
	// bit-equal with no per-probe binary searches. The incremental form
	// has no preference-dominance filtering, so states with learned facts
	// (st.beats non-empty) fall back to expectSc. The singleton table
	// supplies each member's est (a one-peering set's mean IS its est:
	// alone it is never dominated and always within its own reuse radius).
	reuse := o.params.ReuseKm
	var incD, incE [][]float64
	if single != nil {
		incD = make([][]float64, len(o.states))
		incE = make([][]float64, len(o.states))
	}
	// evalInc is Eq. (2)'s mean over state i's incremental pairs, plus an
	// optional probe member (dx, ex) ordered last like marginalOf's S+x.
	evalInc := func(i int32, dx, ex float64, probe bool) (float64, bool) {
		dists, ests := incD[i], incE[i]
		minDist := math.Inf(1)
		for _, d := range dists {
			if d < minDist {
				minDist = d
			}
		}
		if probe && dx < minDist {
			minDist = dx
		}
		var sum float64
		n := 0
		for j, e := range ests {
			if math.IsNaN(e) {
				continue
			}
			if dists[j] <= minDist+reuse {
				sum += e
				n++
			}
		}
		if probe && !math.IsNaN(ex) && dx <= minDist+reuse {
			sum += ex
			n++
		}
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), true
	}
	marginalInc := func(sc *exScratch, x bgp.IngressID) float64 {
		var row []float64
		if int(x) < len(single) {
			row = single[x]
		}
		var delta float64
		for k, i := range o.statesFor(x) {
			if dark != nil && dark[i] {
				continue
			}
			st := o.states[i]
			oldVal := math.Min(bestFrozen[i], curE[i])
			newE := math.Inf(1)
			if len(st.beats) == 0 {
				if m, ok := evalInc(i, st.popDist[x], row[k], true); ok {
					newE = m
				}
			} else {
				sx := append(sc.sx[:0], S...)
				sx = append(sx, x)
				sc.sx = sx
				if e := st.expectSc(sc, sx, reuse); e.Usable() {
					newE = e.Mean
				}
			}
			newVal := math.Min(bestFrozen[i], newE)
			delta += st.ug.Weight * (oldVal - newVal)
		}
		return delta
	}
	acceptInc := func(x bgp.IngressID) {
		S = append(S, x)
		inS[x] = true
		var row []float64
		if int(x) < len(single) {
			row = single[x]
		}
		for k, i := range o.statesFor(x) {
			st := o.states[i]
			incD[i] = append(incD[i], st.popDist[x])
			incE[i] = append(incE[i], row[k])
			if len(st.beats) == 0 {
				if m, ok := evalInc(i, 0, 0, false); ok {
					curE[i] = m
				} else {
					curE[i] = math.Inf(1)
				}
			} else if e := st.expectSc(scs[0], S, reuse); e.Usable() {
				curE[i] = e.Mean
			} else {
				curE[i] = math.Inf(1)
			}
		}
	}

	// Lazy greedy: cache marginals, re-evaluate only the top candidate.
	// The initial sweep — the bulk of the work — is sharded; results land
	// in candidate order so the heap is built from the same sequence a
	// serial sweep would produce.
	//
	// stateVer (warm path only) tracks the version at which each state's
	// curE last moved. A stale candidate whose compliant states were all
	// untouched since its version would recompute the exact marginal it
	// already carries — its value reads only curE and bestFrozen over
	// statesFor(x) — so it is re-stamped current without re-evaluating.
	var stateVer []int
	if single != nil {
		stateVer = make([]int, len(o.states))
	}
	version := 0
	parallelWorkers(len(allPeerings), workers, func(w, k int) {
		if single != nil {
			margs[k] = marginalSingle(allPeerings[k])
		} else {
			margs[k] = marginalOf(scs[w], allPeerings[k])
		}
	})
	h := make(candHeap, 0, len(allPeerings))
	for k, x := range allPeerings {
		h = append(h, candItem{ing: x, marginal: margs[k], version: version})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		if o.params.MaxPeeringsPerPrefix > 0 && len(S) >= o.params.MaxPeeringsPerPrefix {
			break
		}
		top := heap.Pop(&h).(candItem)
		if inS[top.ing] {
			continue
		}
		if top.version != version {
			if stateVer != nil {
				fresh := true
				for _, i := range o.statesFor(top.ing) {
					if stateVer[i] > top.version {
						fresh = false
						break
					}
				}
				if fresh {
					top.version = version
					heap.Push(&h, top)
					continue
				}
			}
			// Stale cached marginal: refresh and reinsert; the heap
			// decides whether it is still the best candidate.
			if single != nil {
				top.marginal = marginalInc(scs[0], top.ing)
			} else {
				top.marginal = marginalOf(scs[0], top.ing)
			}
			top.version = version
			heap.Push(&h, top)
			continue
		}
		if top.marginal <= 0 {
			break
		}
		o.m.acceptedMarginal.Observe(top.marginal)
		if single != nil {
			acceptInc(top.ing)
		} else {
			accept(top.ing)
		}
		version++
		if stateVer != nil {
			// Conservative: every state the accept re-evaluated counts as
			// moved (extra recomputes are harmless; missed moves are not).
			for _, i := range o.statesFor(top.ing) {
				stateVer[i] = version
			}
		}
	}
	return S
}

// --- Prediction, learning, realized benefit --------------------------------

// PredictBenefit evaluates Eq. (1) with Eq. (2) expectations for a
// config, returning (estimated, lower, upper) weighted benefit in ms —
// the uncertainty shading of Fig. 6c.
//
// The bounds reflect what fine-grained steering can do once routes are
// actually tested: in the best case each UG ends up on the best active
// ingress of ANY usable prefix (the Traffic Manager would pick that
// prefix), so the upper bound takes min over prefixes of each prefix's
// optimistic latency; in the worst case the UG lands on the worst
// active ingress of its chosen (best-mean) prefix, floored at anycast.
func (o *Orchestrator) PredictBenefit(cfg Config) (mean, lower, upper float64) {
	for _, st := range o.states {
		valMean, valMin, valMax := st.anycast, st.anycast, st.anycast
		for _, S := range cfg.Prefixes {
			e := st.expect(S, o.params.ReuseKm)
			if !e.Usable() {
				continue
			}
			if e.Min < valMin {
				valMin = e.Min
			}
			if e.Mean < valMean {
				valMean = e.Mean
				valMax = math.Min(e.Max, st.anycast)
			}
		}
		w := st.ug.Weight
		mean += w * (st.anycast - valMean)
		upper += w * (st.anycast - valMin)
		lower += w * (st.anycast - valMax)
	}
	return mean, lower, upper
}

// Learn ingests observations from an executed configuration, updating
// preference facts and replacing estimates with measured latencies.
// It returns the number of new facts.
func (o *Orchestrator) Learn(cfg Config, obs []Observation) int {
	// Any observation may rewrite estimates or preference facts — the
	// inputs every warm-cache entry was computed under.
	if len(obs) > 0 {
		o.warm.invalidate()
	}
	facts := 0
	for _, ob := range obs {
		si, ok := o.stateIdx[ob.UG]
		if !ok || ob.Prefix < 0 || ob.Prefix >= len(cfg.Prefixes) {
			continue
		}
		st := o.states[si]
		before := len(st.compliant)
		facts += st.learn(cfg.Prefixes[ob.Prefix], ob.Ingress, ob.LatencyMs)
		if len(st.compliant) != before {
			// Compliance model corrected: refresh the inverted index.
			o.indexState(ob.Ingress, si)
		}
	}
	return facts
}

// RealizedBenefit evaluates Eq. (1) using observed latencies: each UG's
// achieved latency is the minimum over anycast and its observed prefix
// latencies (the Traffic Manager steers per-flow to the best prefix).
func (o *Orchestrator) RealizedBenefit(obs []Observation) float64 {
	best := make([]float64, len(o.states))
	for i, st := range o.states {
		best[i] = st.anycast
	}
	for _, ob := range obs {
		if si, ok := o.stateIdx[ob.UG]; ok && ob.LatencyMs < best[si] {
			best[si] = ob.LatencyMs
		}
	}
	var total float64
	for i, st := range o.states {
		total += st.ug.Weight * (st.anycast - best[i])
	}
	return total
}
