// Package core implements PAINTER's Advertisement Orchestrator (§3.1):
// the benefit model (Eq. 1), the modeled-improvement expectation with
// preference learning and reuse-distance exclusions (Eq. 2), and the
// greedy prefix-to-peering allocation with an outer learning loop
// (Algorithm 1).
package core

import (
	"fmt"
	"math"
	"sort"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/obs/span"
	"painter/internal/usergroup"
)

// Inputs is everything the orchestrator can legitimately observe before
// conducting any advertisement: the deployment, the user groups with
// traffic weights, policy-compliant ingress sets derived from BGP feeds
// and customer cones, per-ingress latency estimates from the measurement
// system, and measured anycast latencies (the default configuration D).
type Inputs struct {
	Deploy *cloud.Deployment
	UGs    *usergroup.Set

	// Compliant returns the policy-compliant ingress set for a UG.
	Compliant func(ug usergroup.UG) (map[bgp.IngressID]bool, error)
	// EstLatencyMs returns the estimated latency from a UG through an
	// ingress; ok=false when the measurement system has no target for
	// the pair (coverage limits, Appendix B).
	EstLatencyMs func(ug usergroup.UG, ing bgp.IngressID) (float64, bool)
	// AnycastMs returns the measured anycast latency for a UG.
	AnycastMs func(ug usergroup.UG) (float64, error)
}

// Observation is what executing an advertisement reveals: which ingress
// a UG actually selected for a prefix, and the measured latency.
type Observation struct {
	UG        usergroup.ID
	Prefix    int
	Ingress   bgp.IngressID
	LatencyMs float64
}

// Executor conducts advertisements in the world (BGP announcements on
// the real Internet for the prototype; route propagation in netsim for
// the simulation) and reports per-UG observations.
type Executor interface {
	Execute(cfg Config) ([]Observation, error)
}

// TracedExecutor is optionally implemented by executors that can record
// their work as children of the solve loop's span (per-prefix resolve
// and cache decisions). Solve type-asserts for it, so plain Executors
// keep working untraced.
type TracedExecutor interface {
	Executor
	ExecuteTraced(cfg Config, parent *span.Span) ([]Observation, error)
}

// Config is the advertisement configuration type shared with the
// baseline strategies.
type Config = advertise.Config

// ugState is the orchestrator's working state for one UG.
type ugState struct {
	ug        usergroup.UG
	compliant map[bgp.IngressID]bool
	// est holds per-ingress latency estimates; entries are replaced by
	// measured values as advertisements reveal truth.
	est map[bgp.IngressID]float64
	// popDist caches distance (km) from the UG to each compliant
	// ingress's PoP for the D_reuse exclusion.
	popDist map[bgp.IngressID]float64
	anycast float64
	// beats[i][j] records the learned fact "this UG routes to i over j
	// when both are available" (§3.1 preference learning).
	beats map[bgp.IngressID]map[bgp.IngressID]bool
}

// newUGStates materializes orchestrator state from Inputs.
func newUGStates(in Inputs) ([]*ugState, error) {
	if in.Deploy == nil || in.UGs == nil || in.Compliant == nil || in.EstLatencyMs == nil || in.AnycastMs == nil {
		return nil, fmt.Errorf("core: incomplete Inputs")
	}
	states := make([]*ugState, 0, in.UGs.Len())
	for _, ug := range in.UGs.UGs {
		comp, err := in.Compliant(ug)
		if err != nil {
			return nil, fmt.Errorf("core: compliant(%d): %w", ug.ID, err)
		}
		any, err := in.AnycastMs(ug)
		if err != nil {
			return nil, fmt.Errorf("core: anycast(%d): %w", ug.ID, err)
		}
		st := &ugState{
			ug:        ug,
			compliant: comp,
			est:       make(map[bgp.IngressID]float64, len(comp)),
			popDist:   make(map[bgp.IngressID]float64, len(comp)),
			anycast:   any,
			beats:     make(map[bgp.IngressID]map[bgp.IngressID]bool),
		}
		for ing := range comp {
			if ms, ok := in.EstLatencyMs(ug, ing); ok {
				st.est[ing] = ms
			}
			pop, err := in.Deploy.PoPOfPeering(ing)
			if err != nil {
				return nil, err
			}
			st.popDist[ing] = geo.DistanceKm(ug.Coord, pop.Coord)
		}
		states = append(states, st)
	}
	return states, nil
}

// Expectation is the modeled latency of a UG to one prefix: the Eq. (2)
// expectation over the active (non-excluded) policy-compliant ingresses,
// with uncertainty bounds.
type Expectation struct {
	Mean, Min, Max float64
	// N is the number of active ingresses with estimates.
	N int
}

// Usable reports whether the prefix is usable by the UG at all.
func (e Expectation) Usable() bool { return e.N > 0 }

// expect computes Eq. (2)'s inner expectation for one UG and one prefix
// peering set. Filtering order follows §3.1:
//
//  1. keep policy-compliant ingresses among the advertised peerings;
//  2. drop ingresses dominated by a learned preference ("the UG routed
//     to i when j was available, so exclude j whenever i is present");
//  3. drop ingresses whose PoP is more than reuseKm farther than the
//     nearest compliant advertising PoP (the D_reuse rule);
//  4. average the latency estimates of what remains (ingresses without
//     measurement coverage contribute no estimate).
//
// Min/Max bound the expectation over step-2's survivors only: learned
// preferences are observations (certain), but the D_reuse exclusion is
// an assumption that may be wrong — the UG might really route to the
// far PoP — so excluded-by-distance ingresses still widen the
// uncertainty band (the paper's Fig. 6c/15b uncertainty, which shrinks
// as learning replaces assumptions with facts).
func (st *ugState) expect(peerings []bgp.IngressID, reuseKm float64) Expectation {
	var cand []bgp.IngressID
	minDist := math.Inf(1)
	for _, ing := range peerings {
		if !st.compliant[ing] {
			continue
		}
		cand = append(cand, ing)
		if d := st.popDist[ing]; d < minDist {
			minDist = d
		}
	}
	if len(cand) == 0 {
		return Expectation{}
	}
	// Preference dominance: drop j if some other candidate i beats j.
	kept := cand[:0]
	for _, j := range cand {
		dominated := false
		for _, i := range cand {
			if i != j && st.beats[i] != nil && st.beats[i][j] {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, j)
		}
	}
	// Range over all non-dominated candidates; mean over those also
	// passing the D_reuse assumption.
	var sum float64
	n := 0
	e := Expectation{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, ing := range kept {
		ms, ok := st.est[ing]
		if !ok {
			continue
		}
		if ms < e.Min {
			e.Min = ms
		}
		if ms > e.Max {
			e.Max = ms
		}
		if st.popDist[ing] <= minDist+reuseKm {
			sum += ms
			n++
		}
	}
	e.N = n
	if n == 0 {
		return Expectation{}
	}
	e.Mean = sum / float64(n)
	return e
}

// learn ingests one observation for a prefix peering set: the UG chose
// `chosen` although the rest of candidates were available, so `chosen`
// beats each of them. Contradicted old facts (routing changed) are
// removed. It also replaces the latency estimate with ground truth.
// Returns the number of new facts.
func (st *ugState) learn(peerings []bgp.IngressID, chosen bgp.IngressID, measuredMs float64) int {
	if !st.compliant[chosen] {
		// Observation disagrees with the compliance model; record the
		// ingress as compliant going forward (the model was wrong).
		st.compliant[chosen] = true
	}
	st.est[chosen] = measuredMs
	if st.beats[chosen] == nil {
		st.beats[chosen] = make(map[bgp.IngressID]bool)
	}
	facts := 0
	for _, other := range peerings {
		if other == chosen || !st.compliant[other] {
			continue
		}
		if !st.beats[chosen][other] {
			st.beats[chosen][other] = true
			facts++
		}
		// Remove the contradicting fact if present.
		if st.beats[other] != nil && st.beats[other][chosen] {
			delete(st.beats[other], chosen)
		}
	}
	return facts
}

// sortedCompliant returns the UG's compliant ingresses in ID order.
func (st *ugState) sortedCompliant() []bgp.IngressID {
	out := make([]bgp.IngressID, 0, len(st.compliant))
	for ing := range st.compliant {
		out = append(out, ing)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
