// Package core implements PAINTER's Advertisement Orchestrator (§3.1):
// the benefit model (Eq. 1), the modeled-improvement expectation with
// preference learning and reuse-distance exclusions (Eq. 2), and the
// greedy prefix-to-peering allocation with an outer learning loop
// (Algorithm 1).
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/obs/span"
	"painter/internal/usergroup"
)

// Inputs is everything the orchestrator can legitimately observe before
// conducting any advertisement: the deployment, the user groups with
// traffic weights, policy-compliant ingress sets derived from BGP feeds
// and customer cones, per-ingress latency estimates from the measurement
// system, and measured anycast latencies (the default configuration D).
type Inputs struct {
	Deploy *cloud.Deployment
	UGs    *usergroup.Set

	// Compliant returns the policy-compliant ingress set for a UG.
	// Optional when CompliantIDs is set.
	Compliant func(ug usergroup.UG) (map[bgp.IngressID]bool, error)
	// CompliantIDs, when non-nil, is preferred over Compliant: it returns
	// the policy-compliant ingress set as an ascending-sorted slice that
	// the orchestrator treats as read-only and may share across UGs of
	// the same AS (the flat-memory path; netsim's CompliantIngressIDs
	// plugs in directly).
	CompliantIDs func(ug usergroup.UG) ([]bgp.IngressID, error)
	// EstLatencyMs returns the estimated latency from a UG through an
	// ingress; ok=false when the measurement system has no target for
	// the pair (coverage limits, Appendix B).
	EstLatencyMs func(ug usergroup.UG, ing bgp.IngressID) (float64, bool)
	// AnycastMs returns the measured anycast latency for a UG.
	AnycastMs func(ug usergroup.UG) (float64, error)
}

// Observation is what executing an advertisement reveals: which ingress
// a UG actually selected for a prefix, and the measured latency.
type Observation struct {
	UG        usergroup.ID
	Prefix    int
	Ingress   bgp.IngressID
	LatencyMs float64
}

// Executor conducts advertisements in the world (BGP announcements on
// the real Internet for the prototype; route propagation in netsim for
// the simulation) and reports per-UG observations.
type Executor interface {
	Execute(cfg Config) ([]Observation, error)
}

// TracedExecutor is optionally implemented by executors that can record
// their work as children of the solve loop's span (per-prefix resolve
// and cache decisions). Solve type-asserts for it, so plain Executors
// keep working untraced.
type TracedExecutor interface {
	Executor
	ExecuteTraced(cfg Config, parent *span.Span) ([]Observation, error)
}

// Config is the advertisement configuration type shared with the
// baseline strategies.
type Config = advertise.Config

// ugState is the orchestrator's working state for one UG, laid out flat
// for the Azure-scale solve: the compliant set is an ascending-sorted
// slice (shared read-only across UGs of the same AS until the first
// compliance correction copies it), latency estimates are rank-indexed
// parallel to it, and PoP distances live in a per-metro row shared by
// every UG in the metro and indexed by raw IngressID. At 10⁵ UGs this
// replaces three maps per UG (~50 KB each) with ~12 bytes per compliant
// ingress plus nothing for distances.
type ugState struct {
	ug usergroup.UG
	// compliant is the ascending-sorted policy-compliant ingress set.
	compliant []bgp.IngressID
	// ownsComp marks compliant (and est) as privately owned; false while
	// the slice is shared, so the first learned compliance correction
	// copies before inserting.
	ownsComp bool
	// est[r] is the latency estimate for compliant[r]; NaN when the
	// measurement system has no coverage for the pair. Entries are
	// replaced by measured values as advertisements reveal truth.
	est []float64
	// popDist[ing] is the distance (km) from the UG's metro to ingress
	// ing's PoP, for the D_reuse exclusion. The row is shared by every
	// UG in the metro and indexed by raw IngressID; it must only be
	// indexed with deployment peering IDs.
	popDist []float64
	anycast float64
	// beats[i][j] records the learned fact "this UG routes to i over j
	// when both are available" (§3.1 preference learning). Lazily
	// allocated: nil until the first fact.
	beats map[bgp.IngressID]map[bgp.IngressID]bool
}

// rank returns the index of ing in the sorted compliant set, or -1.
func (st *ugState) rank(ing bgp.IngressID) int {
	lo, hi := 0, len(st.compliant)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.compliant[mid] < ing {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.compliant) && st.compliant[lo] == ing {
		return lo
	}
	return -1
}

// estOf returns the latency estimate for an ingress (ok=false when the
// ingress is non-compliant or has no measurement coverage).
func (st *ugState) estOf(ing bgp.IngressID) (float64, bool) {
	r := st.rank(ing)
	if r < 0 || math.IsNaN(st.est[r]) {
		return 0, false
	}
	return st.est[r], true
}

// insertCompliant adds an observed-but-unmodeled ingress to the
// compliant set (copy-on-write when the set is shared) and returns its
// rank. The new estimate slot starts NaN.
func (st *ugState) insertCompliant(ing bgp.IngressID) int {
	pos := sort.Search(len(st.compliant), func(i int) bool { return st.compliant[i] >= ing })
	nc := make([]bgp.IngressID, len(st.compliant)+1)
	copy(nc, st.compliant[:pos])
	nc[pos] = ing
	copy(nc[pos+1:], st.compliant[pos:])
	ne := make([]float64, len(st.est)+1)
	copy(ne, st.est[:pos])
	ne[pos] = math.NaN()
	copy(ne[pos+1:], st.est[pos:])
	st.compliant, st.est, st.ownsComp = nc, ne, true
	return pos
}

// newUGStates materializes orchestrator state from Inputs. States are
// independent, so they are built on the worker pool; the per-metro
// PoP-distance rows are built once up front and shared.
func newUGStates(in Inputs) ([]*ugState, error) {
	if in.Deploy == nil || in.UGs == nil || (in.Compliant == nil && in.CompliantIDs == nil) ||
		in.EstLatencyMs == nil || in.AnycastMs == nil {
		return nil, fmt.Errorf("core: incomplete Inputs")
	}
	rows, err := popDistRows(in.Deploy, in.UGs)
	if err != nil {
		return nil, err
	}
	states := make([]*ugState, in.UGs.Len())
	err = parallelFor(in.UGs.Len(), func(i int) error {
		ug := in.UGs.UGs[i]
		st := &ugState{ug: ug, popDist: rows[ug.Metro]}
		if in.CompliantIDs != nil {
			ids, err := in.CompliantIDs(ug)
			if err != nil {
				return fmt.Errorf("core: compliant(%d): %w", ug.ID, err)
			}
			st.compliant = ids // shared, read-only until first correction
		} else {
			comp, err := in.Compliant(ug)
			if err != nil {
				return fmt.Errorf("core: compliant(%d): %w", ug.ID, err)
			}
			st.compliant = make([]bgp.IngressID, 0, len(comp))
			for ing := range comp {
				st.compliant = append(st.compliant, ing)
			}
			sort.Slice(st.compliant, func(a, b int) bool { return st.compliant[a] < st.compliant[b] })
			st.ownsComp = true
		}
		any, err := in.AnycastMs(ug)
		if err != nil {
			return fmt.Errorf("core: anycast(%d): %w", ug.ID, err)
		}
		st.anycast = any
		st.est = make([]float64, len(st.compliant))
		for r, ing := range st.compliant {
			if ms, ok := in.EstLatencyMs(ug, ing); ok {
				st.est[r] = ms
			} else {
				st.est[r] = math.NaN()
			}
		}
		states[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	return states, nil
}

// popDistRows builds one distance row per metro present in the UG set:
// row[ing] = km from the metro to ing's PoP, indexed by raw IngressID.
func popDistRows(d *cloud.Deployment, ugs *usergroup.Set) (map[string][]float64, error) {
	ids := d.AllPeeringIDs()
	maxID := bgp.IngressID(-1)
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	rows := make(map[string][]float64)
	for i := range ugs.UGs {
		ug := &ugs.UGs[i]
		if _, ok := rows[ug.Metro]; ok {
			continue
		}
		row := make([]float64, maxID+1)
		for _, id := range ids {
			pop, err := d.PoPOfPeering(id)
			if err != nil {
				return nil, err
			}
			row[id] = geo.DistanceKm(ug.Coord, pop.Coord)
		}
		rows[ug.Metro] = row
	}
	return rows, nil
}

// Expectation is the modeled latency of a UG to one prefix: the Eq. (2)
// expectation over the active (non-excluded) policy-compliant ingresses,
// with uncertainty bounds.
type Expectation struct {
	Mean, Min, Max float64
	// N is the number of active ingresses with estimates.
	N int
}

// Usable reports whether the prefix is usable by the UG at all.
func (e Expectation) Usable() bool { return e.N > 0 }

// exScratch holds the grow loop's reusable buffers: candidate ranks for
// expectSc and the S+x composition slice for marginal probes. One per
// worker (or from exPool for non-hot callers); never shared between
// concurrent goroutines.
type exScratch struct {
	ranks []int32
	sx    []bgp.IngressID
}

var exPool = sync.Pool{New: func() any { return new(exScratch) }}

// expect is expectSc with pooled scratch — for callers off the grow hot
// path (controller dirty-tracking, prediction, tests).
func (st *ugState) expect(peerings []bgp.IngressID, reuseKm float64) Expectation {
	sc := exPool.Get().(*exScratch)
	e := st.expectSc(sc, peerings, reuseKm)
	exPool.Put(sc)
	return e
}

// expectSc computes Eq. (2)'s inner expectation for one UG and one
// prefix peering set, allocation-free. Filtering order follows §3.1:
//
//  1. keep policy-compliant ingresses among the advertised peerings;
//  2. drop ingresses dominated by a learned preference ("the UG routed
//     to i when j was available, so exclude j whenever i is present");
//  3. drop ingresses whose PoP is more than reuseKm farther than the
//     nearest compliant advertising PoP (the D_reuse rule);
//  4. average the latency estimates of what remains (ingresses without
//     measurement coverage contribute no estimate).
//
// Min/Max bound the expectation over step-2's survivors only: learned
// preferences are observations (certain), but the D_reuse exclusion is
// an assumption that may be wrong — the UG might really route to the
// far PoP — so excluded-by-distance ingresses still widen the
// uncertainty band (the paper's Fig. 6c/15b uncertainty, which shrinks
// as learning replaces assumptions with facts).
func (st *ugState) expectSc(sc *exScratch, peerings []bgp.IngressID, reuseKm float64) Expectation {
	ranks := sc.ranks[:0]
	minDist := math.Inf(1)
	for _, ing := range peerings {
		r := st.rank(ing)
		if r < 0 {
			continue
		}
		ranks = append(ranks, int32(r))
		if d := st.popDist[ing]; d < minDist {
			minDist = d
		}
	}
	sc.ranks = ranks
	if len(ranks) == 0 {
		return Expectation{}
	}
	var sum float64
	n := 0
	e := Expectation{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, rj := range ranks {
		// Preference dominance: drop j if some other candidate i beats j.
		if len(st.beats) > 0 {
			j := st.compliant[rj]
			dominated := false
			for _, ri := range ranks {
				if ri == rj {
					continue
				}
				if bi := st.beats[st.compliant[ri]]; bi != nil && bi[j] {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
		}
		ms := st.est[rj]
		if math.IsNaN(ms) {
			continue
		}
		// Range over all non-dominated candidates; mean over those also
		// passing the D_reuse assumption.
		if ms < e.Min {
			e.Min = ms
		}
		if ms > e.Max {
			e.Max = ms
		}
		if st.popDist[st.compliant[rj]] <= minDist+reuseKm {
			sum += ms
			n++
		}
	}
	e.N = n
	if n == 0 {
		return Expectation{}
	}
	e.Mean = sum / float64(n)
	return e
}

// learn ingests one observation for a prefix peering set: the UG chose
// `chosen` although the rest of candidates were available, so `chosen`
// beats each of them. Contradicted old facts (routing changed) are
// removed. It also replaces the latency estimate with ground truth.
// Returns the number of new facts.
func (st *ugState) learn(peerings []bgp.IngressID, chosen bgp.IngressID, measuredMs float64) int {
	r := st.rank(chosen)
	if r < 0 {
		// Observation disagrees with the compliance model; record the
		// ingress as compliant going forward (the model was wrong).
		r = st.insertCompliant(chosen)
	}
	st.est[r] = measuredMs // est is always privately owned; only compliant can be shared
	if st.beats == nil {
		st.beats = make(map[bgp.IngressID]map[bgp.IngressID]bool)
	}
	if st.beats[chosen] == nil {
		st.beats[chosen] = make(map[bgp.IngressID]bool)
	}
	facts := 0
	for _, other := range peerings {
		if other == chosen || st.rank(other) < 0 {
			continue
		}
		if !st.beats[chosen][other] {
			st.beats[chosen][other] = true
			facts++
		}
		// Remove the contradicting fact if present.
		if st.beats[other] != nil && st.beats[other][chosen] {
			delete(st.beats[other], chosen)
		}
	}
	return facts
}

// sortedCompliant returns the UG's compliant ingresses in ID order as a
// fresh slice.
func (st *ugState) sortedCompliant() []bgp.IngressID {
	return append([]bgp.IngressID(nil), st.compliant...)
}
