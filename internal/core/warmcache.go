package core

// Warm-reuse caches for the repair path. Both caches exploit the same
// fact: expectSc depends only on the learned routing model (compliant
// sets, estimates, preference facts) — never on anycast baselines,
// liveness, or the dark mask — so between Learn calls every Eq. (2)
// evaluation is a pure function of its arguments. The continuous
// controller never calls Learn, which means a churning world revisits
// the same (prefix set, frozen base) points over and over: a peering
// flap's up-event restores exactly the pre-down state (the delta
// engine's byte-identical recovery, pinned by the determinism tests),
// so the regrow it triggers has been computed before.
//
// Two layers:
//
//   - frozen contribution vectors: freezePrefix's per-state Eq. (2)
//     means for one prefix set, cached by set content. Rebuilding the
//     repair path's frozen base becomes a min-fold over cached vectors
//     instead of |clean prefixes| x |states| expectSc calls.
//   - grow results: growPrefix is deterministic in (candidates, frozen
//     base, dark mask, model); an exact match returns the previously
//     grown peering set without re-running the greedy sweep.
//
// Hits require exact input equality (float bit equality via ==, so a
// NaN anywhere simply never matches), making cached and cold results
// byte-identical; Params.ColdRepair disables both layers (the resolve
// benchmark's baseline arm). Learn invalidates everything by bumping
// the model version. Entries are bounded by total retained floats;
// overflow clears the cache (deterministic, and recovery re-warms it
// within one churn cycle).

import (
	"math"
	"slices"
	"sync"

	"painter/internal/bgp"
)

// maxWarmFloats bounds the floats retained across all cache entries
// (~32 MB); exceeding it clears the cache.
const maxWarmFloats = 4 << 20

type growEntry struct {
	cands  []bgp.IngressID
	frozen []float64
	dark   []bool
	S      []bgp.IngressID
}

func (e *growEntry) matches(cands []bgp.IngressID, frozen []float64, dark []bool) bool {
	return slices.Equal(e.cands, cands) && slices.Equal(e.frozen, frozen) &&
		slices.Equal(e.dark, dark)
}

type freezeEntry struct {
	S   []bgp.IngressID
	vec []float64
}

// warmCache is safe for concurrent use: the speculative regrow path
// calls growPrefix from the worker pool.
type warmCache struct {
	mu     sync.Mutex
	grow   map[uint64][]*growEntry
	freeze map[uint64][]*freezeEntry
	// single is the per-ingress singleton expectation table (built by
	// singletonRows); nil until first use, cleared on invalidate.
	single [][]float64
	floats int
}

// invalidate drops everything; called when Learn changes the model.
func (c *warmCache) invalidate() {
	c.mu.Lock()
	c.grow, c.freeze, c.single, c.floats = nil, nil, nil, 0
	c.mu.Unlock()
}

func (c *warmCache) reserveLocked(n int) {
	if c.floats+n > maxWarmFloats {
		c.grow, c.freeze, c.floats = nil, nil, 0
	}
	c.floats += n
}

// lookupSingle returns the singleton table, or nil if not built yet.
func (c *warmCache) lookupSingle() [][]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.single
}

// storeSingle keeps the first table built (concurrent builders produce
// identical tables) and returns the retained one. The table survives
// cap-overflow clears of the entry caches — it is model-sized, not
// churn-sized — and only invalidate drops it.
func (c *warmCache) storeSingle(rows [][]float64) [][]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.single == nil {
		c.single = rows
	}
	return c.single
}

// fnv1a64 over a stream of 64-bit words.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func hashWord(h, w uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ (w >> i & 0xff)) * fnvPrime
	}
	return h
}

func growHash(cands []bgp.IngressID, frozen []float64, dark []bool) uint64 {
	h := uint64(fnvOffset)
	h = hashWord(h, uint64(len(cands)))
	for _, id := range cands {
		h = hashWord(h, uint64(uint32(id)))
	}
	h = hashWord(h, uint64(len(frozen)))
	for _, f := range frozen {
		h = hashWord(h, math.Float64bits(f))
	}
	h = hashWord(h, uint64(len(dark)))
	for i, d := range dark {
		if d {
			h = hashWord(h, uint64(i))
		}
	}
	return h
}

func setHash(S []bgp.IngressID) uint64 {
	h := uint64(fnvOffset)
	h = hashWord(h, uint64(len(S)))
	for _, id := range S {
		h = hashWord(h, uint64(uint32(id)))
	}
	return h
}

// lookupGrow returns a previously grown peering set for exactly these
// inputs (copied: callers append the result into configs).
func (c *warmCache) lookupGrow(key uint64, cands []bgp.IngressID, frozen []float64, dark []bool) ([]bgp.IngressID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.grow[key] {
		if e.matches(cands, frozen, dark) {
			return append([]bgp.IngressID(nil), e.S...), true
		}
	}
	return nil, false
}

func (c *warmCache) storeGrow(key uint64, cands []bgp.IngressID, frozen []float64, dark []bool, S []bgp.IngressID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.grow[key] {
		if e.matches(cands, frozen, dark) {
			return // a concurrent speculative regrow already stored it
		}
	}
	c.reserveLocked(len(frozen))
	if c.grow == nil {
		c.grow = make(map[uint64][]*growEntry)
	}
	c.grow[key] = append(c.grow[key], &growEntry{
		cands:  append([]bgp.IngressID(nil), cands...),
		frozen: append([]float64(nil), frozen...),
		dark:   append([]bool(nil), dark...),
		S:      append([]bgp.IngressID(nil), S...),
	})
}

// lookupFreeze returns the cached contribution vector for a prefix set
// (shared, read-only).
func (c *warmCache) lookupFreeze(key uint64, S []bgp.IngressID) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.freeze[key] {
		if slices.Equal(e.S, S) {
			return e.vec, true
		}
	}
	return nil, false
}

func (c *warmCache) storeFreeze(key uint64, S []bgp.IngressID, vec []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.freeze[key] {
		if slices.Equal(e.S, S) {
			return
		}
	}
	c.reserveLocked(len(vec))
	if c.freeze == nil {
		c.freeze = make(map[uint64][]*freezeEntry)
	}
	c.freeze[key] = append(c.freeze[key], &freezeEntry{
		S:   append([]bgp.IngressID(nil), S...),
		vec: vec,
	})
}
