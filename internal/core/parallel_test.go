package core

// Tests for the parallel per-prefix execution path: observation order
// and values must be independent of goroutine scheduling, and the
// worker pool must surface errors deterministically. Run under -race in
// CI (`make race`).

import (
	"errors"
	"fmt"
	"testing"

	"painter/internal/advertise"
	"painter/internal/bgp"
)

// executeConfig builds a Config spreading the deployment's peerings
// across several prefixes, with overlap so the resolve cache is shared.
func executeConfig(b *testBench, prefixes int) Config {
	all := b.world.Deploy.AllPeeringIDs()
	cfg := Config{}
	for p := 0; p < prefixes; p++ {
		var ids []bgp.IngressID
		for i, id := range all {
			if i%prefixes == p || i%(prefixes+1) == p {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			ids = all[:1]
		}
		cfg.Prefixes = append(cfg.Prefixes, ids)
	}
	return cfg
}

func TestExecuteParallelDeterministic(t *testing.T) {
	b := newBench(t, 61)
	exec := NewWorldExecutor(b.world, b.ugs, 0.5, 17)
	cfg := executeConfig(b, 6)

	first, err := exec.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no observations")
	}
	// Observations must be prefix-major and in UG order within a prefix,
	// exactly as the serial loop produced them.
	for i := 1; i < len(first); i++ {
		if first[i].Prefix < first[i-1].Prefix {
			t.Fatalf("observation %d out of prefix order: %d after %d", i, first[i].Prefix, first[i-1].Prefix)
		}
	}
	for run := 0; run < 3; run++ {
		again, err := exec.Execute(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("run %d: %d observations, want %d", run, len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d: observation %d = %+v, want %+v (scheduling-dependent output)",
					run, i, again[i], first[i])
			}
		}
	}
}

func TestExecutePropagatesLowestPrefixError(t *testing.T) {
	b := newBench(t, 62)
	exec := NewWorldExecutor(b.world, b.ugs, 0, 1)
	bad := bgp.IngressID(1 << 20) // unknown peering: Injections fails
	cfg := Config{Prefixes: [][]bgp.IngressID{
		b.world.Deploy.AllPeeringIDs(),
		{bad},
		{bad},
	}}
	_, err := exec.Execute(cfg)
	if err == nil {
		t.Fatal("expected error for unknown peering")
	}
	// The serial loop would have failed on prefix 1 first.
	if want := "prefix 1"; !containsStr(err.Error(), want) {
		t.Errorf("error %q does not name the lowest failing prefix (%s)", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestEvaluateParallelDeterministic(t *testing.T) {
	b := newBench(t, 63)
	cfg := advertise.OnePerPoP(b.world.Deploy, 8)
	first, err := Evaluate(b.world, b.ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Evaluate(b.world, b.ugs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first.Benefit != again.Benefit || first.PossibleBenefit != again.PossibleBenefit ||
			first.ImprovedUGs != again.ImprovedUGs {
			t.Fatalf("run %d: Evaluate diverged: %+v vs %+v", run, again, first)
		}
		for id, v := range first.PerUG {
			if again.PerUG[id] != v {
				t.Fatalf("run %d: UG %d improvement %v, want %v", run, id, again.PerUG[id], v)
			}
		}
	}
}

func TestParallelForCoversAllIndicesAndErrors(t *testing.T) {
	hit := make([]int32, 1000)
	if err := parallelFor(len(hit), func(i int) error {
		hit[i]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	// Lowest-index error wins regardless of scheduling.
	wantErr := fmt.Errorf("boom-3")
	err := parallelFor(100, func(i int) error {
		if i == 3 || i == 97 {
			return fmt.Errorf("boom-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if err := parallelFor(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}
