package core

// Solve-loop observability: progress of the greedy allocator and the
// learning loop. All handles are nil-safe obs metrics; with no registry
// in Params the instrumented paths cost one branch and no clock reads.

import "painter/internal/obs"

// solveMetrics bundles the orchestrator's metric handles.
type solveMetrics struct {
	iterations        *obs.Counter
	prefixesPlaced    *obs.Counter
	factsLearned      *obs.Counter
	realizedBenefit   *obs.Gauge
	solveSeconds      *obs.Histogram
	executeSeconds    *obs.Histogram
	prefixGrowSeconds *obs.Histogram
	acceptedMarginal  *obs.Histogram
}

func newSolveMetrics(r *obs.Registry) solveMetrics {
	if r == nil {
		return solveMetrics{}
	}
	return solveMetrics{
		iterations:        r.Counter("core_solve_iterations_total", "advertise-measure-learn rounds completed"),
		prefixesPlaced:    r.Counter("core_prefixes_placed_total", "prefixes allocated by the greedy inner loop"),
		factsLearned:      r.Counter("core_facts_learned_total", "preference facts harvested by Learn"),
		realizedBenefit:   r.Gauge("core_realized_benefit_ms", "weighted realized benefit of the latest iteration (ms)"),
		solveSeconds:      r.Histogram("core_solve_seconds", "wall time of one full Solve call"),
		executeSeconds:    r.Histogram("core_execute_seconds", "wall time of one Executor.Execute call"),
		prefixGrowSeconds: r.Histogram("core_prefix_grow_seconds", "wall time of growing one prefix's peering set"),
		acceptedMarginal:  r.Histogram("core_accepted_marginal_benefit_ms", "marginal weighted benefit of each accepted peering (ms)"),
	}
}

// on reports whether instrumentation is live (gates clock reads).
func (m *solveMetrics) on() bool { return m.solveSeconds != nil }
