package core

// Solve-loop observability: progress of the greedy allocator and the
// learning loop. All handles are nil-safe obs metrics; with no registry
// in Params the instrumented paths cost one branch and no clock reads.

import "painter/internal/obs"

// solveMetrics bundles the orchestrator's metric handles.
type solveMetrics struct {
	iterations        *obs.Counter
	prefixesPlaced    *obs.Counter
	factsLearned      *obs.Counter
	realizedBenefit   *obs.Gauge
	solveSeconds      *obs.Histogram
	executeSeconds    *obs.Histogram
	prefixGrowSeconds *obs.Histogram
	acceptedMarginal  *obs.Histogram
}

func newSolveMetrics(r *obs.Registry) solveMetrics {
	if r == nil {
		return solveMetrics{}
	}
	return solveMetrics{
		iterations:        r.Counter("core_solve_iterations_total", "advertise-measure-learn rounds completed"),
		prefixesPlaced:    r.Counter("core_prefixes_placed_total", "prefixes allocated by the greedy inner loop"),
		factsLearned:      r.Counter("core_facts_learned_total", "preference facts harvested by Learn"),
		realizedBenefit:   r.Gauge("core_realized_benefit_ms", "weighted realized benefit of the latest iteration (ms)"),
		solveSeconds:      r.Histogram("core_solve_seconds", "wall time of one full Solve call"),
		executeSeconds:    r.Histogram("core_execute_seconds", "wall time of one Executor.Execute call"),
		prefixGrowSeconds: r.Histogram("core_prefix_grow_seconds", "wall time of growing one prefix's peering set"),
		acceptedMarginal:  r.Histogram("core_accepted_marginal_benefit_ms", "marginal weighted benefit of each accepted peering (ms)"),
	}
}

// on reports whether instrumentation is live (gates clock reads).
func (m *solveMetrics) on() bool { return m.solveSeconds != nil }

// repairMetrics bundles the continuous controller's metric handles.
type repairMetrics struct {
	events        *obs.Counter
	repairs       *obs.Counter
	fullSolves    *obs.Counter
	noops         *obs.Counter
	repairSeconds *obs.Histogram
	dirtyFraction *obs.Gauge
	pendingEvents *obs.Gauge
}

func newRepairMetrics(r *obs.Registry) repairMetrics {
	if r == nil {
		return repairMetrics{}
	}
	return repairMetrics{
		events:        r.Counter("core_controller_events_total", "netsim events consumed by the continuous controller"),
		repairs:       r.Counter("core_repairs_total", "incremental warm-start repairs performed"),
		fullSolves:    r.Counter("core_full_resolves_total", "full re-solves (dirty fraction above threshold or forced)"),
		noops:         r.Counter("core_repair_noops_total", "syncs that dirtied nothing (traffic-only or absorbed events)"),
		repairSeconds: r.Histogram("core_repair_seconds", "wall time of one controller sync that recomputed config"),
		dirtyFraction: r.Gauge("core_repair_dirty_fraction", "dirty prefixes / config prefixes at the latest sync"),
		pendingEvents: r.Gauge("core_pending_events", "world events queued and not yet consumed by Sync"),
	}
}

// on reports whether instrumentation is live (gates clock reads).
func (m *repairMetrics) on() bool { return m.repairSeconds != nil }
