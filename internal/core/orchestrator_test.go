package core

import (
	"math"
	"sort"
	"testing"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// testBench assembles a small but non-trivial world for orchestrator
// tests: ~150 stubs, 12 PoPs, 2 transit providers.
type testBench struct {
	world *netsim.World
	ugs   *usergroup.Set
	in    Inputs
	exec  *WorldExecutor
}

func newBench(t *testing.T, seed int64) *testBench {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: seed, Tier1: 4, Tier2: 24, Stubs: 150,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.4, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{Name: "t", PoPMetros: 12, PeerFrac: 0.8, TransitProviders: 2, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := netsim.New(g, d, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, covered, err := SimInputs(w, ugs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &testBench{
		world: w,
		ugs:   covered,
		in:    in,
		exec:  NewWorldExecutor(w, covered, 0, seed+3),
	}
}

func TestOrchestratorSolveProducesValidConfig(t *testing.T) {
	b := newBench(t, 41)
	o, err := New(b.in, b.exec, DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumPrefixes() == 0 {
		t.Fatal("orchestrator produced empty config")
	}
	if cfg.NumPrefixes() > 5 {
		t.Fatalf("budget exceeded: %d prefixes", cfg.NumPrefixes())
	}
	if err := cfg.Validate(b.world.Deploy); err != nil {
		t.Fatalf("invalid config: %v", err)
	}
	if len(o.Reports()) == 0 {
		t.Fatal("no iteration reports")
	}
}

func TestOrchestratorBeneficial(t *testing.T) {
	b := newBench(t, 43)
	o, err := New(b.in, b.exec, DefaultParams(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.Solve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(b.world, b.ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit <= 0 {
		t.Fatalf("PAINTER benefit = %v, want positive", res.Benefit)
	}
	if res.FractionOfPossible() < 0.3 {
		t.Errorf("PAINTER captured only %.1f%% of possible benefit with 8 prefixes",
			res.FractionOfPossible()*100)
	}
}

func TestOrchestratorBeatsBaselinesAtEqualBudget(t *testing.T) {
	b := newBench(t, 47)
	const budget = 6
	o, err := New(b.in, b.exec, DefaultParams(budget))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.Solve()
	if err != nil {
		t.Fatal(err)
	}
	painter, err := Evaluate(b.world, b.ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, base := range map[string]advertise.Config{
		"one-per-pop":     advertise.OnePerPoP(b.world.Deploy, budget),
		"one-per-peering": advertise.OnePerPeering(b.world.Deploy, budget),
		"one-per-pop-reuse": advertise.OnePerPoPWithReuse(
			b.world.Deploy, budget, 3000),
	} {
		res, err := Evaluate(b.world, b.ugs, base)
		if err != nil {
			t.Fatal(err)
		}
		if painter.Benefit < res.Benefit*0.95 {
			t.Errorf("PAINTER (%.2f ms) should not lose to %s (%.2f ms) at budget %d",
				painter.Benefit, name, res.Benefit, budget)
		}
	}
}

func TestLearningImprovesRealizedBenefit(t *testing.T) {
	b := newBench(t, 53)
	p := DefaultParams(6)
	p.MaxIterations = 4
	p.MinIterBenefitGain = -1 // never early-stop; we want all iterations
	o, err := New(b.in, b.exec, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Solve(); err != nil {
		t.Fatal(err)
	}
	reps := o.Reports()
	if len(reps) < 2 {
		t.Fatalf("want >=2 learning iterations, got %d", len(reps))
	}
	first := reps[0]
	bestLater := first.RealizedBenefit
	for _, r := range reps[1:] {
		if r.RealizedBenefit > bestLater {
			bestLater = r.RealizedBenefit
		}
	}
	if bestLater < first.RealizedBenefit-1e-9 {
		t.Errorf("no later iteration matched iteration 1: first=%.3f best-later=%.3f",
			first.RealizedBenefit, bestLater)
	}
	if first.FactsLearned == 0 {
		t.Error("first iteration learned no preference facts (world has hidden preferences)")
	}
}

func TestPredictionUncertaintyNarrowsWithLearning(t *testing.T) {
	b := newBench(t, 59)
	p := DefaultParams(6)
	p.MaxIterations = 4
	p.MinIterBenefitGain = -1
	o, err := New(b.in, b.exec, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Solve(); err != nil {
		t.Fatal(err)
	}
	reps := o.Reports()
	if len(reps) < 2 {
		t.Skip("converged in one iteration")
	}
	first := reps[0].PredictedUpper - reps[0].PredictedLower
	last := reps[len(reps)-1].PredictedUpper - reps[len(reps)-1].PredictedLower
	slack := 0.1 * reps[0].PredictedBenefit
	if slack < 0.5 {
		slack = 0.5
	}
	if last > first+slack {
		t.Errorf("uncertainty widened with learning: %.3f -> %.3f", first, last)
	}
}

func TestMoreBudgetNeverHurts(t *testing.T) {
	b := newBench(t, 61)
	var prev float64 = -1
	for _, budget := range []int{1, 3, 8} {
		o, err := New(b.in, b.exec, DefaultParams(budget))
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := o.Solve()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(b.world, b.ugs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Tolerance: learning noise can cause small non-monotonicity.
		if res.Benefit < prev*0.9 {
			t.Errorf("benefit dropped sharply with more budget: %v -> %v at %d", prev, res.Benefit, budget)
		}
		if res.Benefit > prev {
			prev = res.Benefit
		}
	}
}

func TestOfflineModeNoExecutor(t *testing.T) {
	b := newBench(t, 67)
	o, err := New(b.in, nil, DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumPrefixes() == 0 {
		t.Error("offline solve produced empty config")
	}
	if len(o.Reports()) != 1 {
		t.Errorf("offline mode should produce exactly one report, got %d", len(o.Reports()))
	}
	if o.Reports()[0].RealizedBenefit != 0 {
		t.Error("offline mode cannot have realized benefit")
	}
}

func TestExactAndLazyGreedyAgreeApproximately(t *testing.T) {
	b := newBench(t, 71)
	pLazy := DefaultParams(4)
	pLazy.MaxIterations = 1
	pExact := pLazy
	pExact.ExactGreedy = true

	oL, err := New(b.in, nil, pLazy)
	if err != nil {
		t.Fatal(err)
	}
	cfgL, err := oL.Solve()
	if err != nil {
		t.Fatal(err)
	}
	oE, err := New(b.in, nil, pExact)
	if err != nil {
		t.Fatal(err)
	}
	cfgE, err := oE.Solve()
	if err != nil {
		t.Fatal(err)
	}
	rL, err := Evaluate(b.world, b.ugs, cfgL)
	if err != nil {
		t.Fatal(err)
	}
	rE, err := Evaluate(b.world, b.ugs, cfgE)
	if err != nil {
		t.Fatal(err)
	}
	if rL.Benefit < 0.8*rE.Benefit {
		t.Errorf("lazy greedy (%.3f) much worse than exact greedy (%.3f)", rL.Benefit, rE.Benefit)
	}
}

func TestParamValidation(t *testing.T) {
	b := newBench(t, 73)
	if _, err := New(b.in, nil, Params{PrefixBudget: 0}); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := New(b.in, nil, Params{PrefixBudget: 1, ReuseKm: -5}); err == nil {
		t.Error("negative ReuseKm should fail")
	}
	if _, err := New(Inputs{}, nil, DefaultParams(1)); err == nil {
		t.Error("incomplete inputs should fail")
	}
}

// flatState builds a ugState from map-shaped inputs — the convenient
// literal form for model tests, converted to the flat layout the solver
// uses.
func flatState(ug usergroup.UG, anycast float64,
	est, popDist map[bgp.IngressID]float64) *ugState {

	ids := make([]bgp.IngressID, 0, len(est))
	maxID := bgp.IngressID(-1)
	for ing := range est {
		ids = append(ids, ing)
		if ing > maxID {
			maxID = ing
		}
	}
	for ing := range popDist {
		if ing > maxID {
			maxID = ing
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	st := &ugState{
		ug:        ug,
		compliant: ids,
		ownsComp:  true,
		est:       make([]float64, len(ids)),
		popDist:   make([]float64, maxID+1),
		anycast:   anycast,
		beats:     map[bgp.IngressID]map[bgp.IngressID]bool{},
	}
	for r, ing := range ids {
		st.est[r] = est[ing]
	}
	for ing, d := range popDist {
		st.popDist[ing] = d
	}
	return st
}

func TestExpectationFiltering(t *testing.T) {
	// Hand-built ugState exercising Eq. (2) filters directly.
	st := flatState(usergroup.UG{}, 50,
		map[bgp.IngressID]float64{1: 10, 2: 30, 3: 100},
		map[bgp.IngressID]float64{1: 100, 2: 500, 3: 9000})
	// All three advertised, reuse 3000km: ingress 3 (9000km vs min 100km)
	// is excluded from the mean by D_reuse but still widens the
	// uncertainty range (the exclusion is an assumption, not a fact).
	e := st.expect([]bgp.IngressID{1, 2, 3}, 3000)
	if !e.Usable() || math.Abs(e.Mean-20) > 1e-9 || e.N != 2 {
		t.Errorf("expect = %+v, want mean 20 over 2", e)
	}
	if e.Min != 10 || e.Max != 100 {
		t.Errorf("bounds = [%v,%v], want [10,100]", e.Min, e.Max)
	}
	// Learned preference: 2 beats 1 → 1 excluded everywhere (a fact),
	// mean = 30, range tightens to [30,100].
	st.beats[2] = map[bgp.IngressID]bool{1: true}
	e = st.expect([]bgp.IngressID{1, 2, 3}, 3000)
	if math.Abs(e.Mean-30) > 1e-9 || e.N != 1 {
		t.Errorf("after preference: %+v, want mean 30 over 1", e)
	}
	if e.Min != 30 || e.Max != 100 {
		t.Errorf("bounds after fact = [%v,%v], want [30,100]", e.Min, e.Max)
	}
	// Non-compliant-only advertisement: unusable.
	e = st.expect([]bgp.IngressID{99}, 3000)
	if e.Usable() {
		t.Error("prefix with no compliant ingress must be unusable")
	}
	// Huge reuse distance admits everything (no preference): clear prefs.
	st.beats = map[bgp.IngressID]map[bgp.IngressID]bool{}
	e = st.expect([]bgp.IngressID{1, 2, 3}, 1e9)
	if e.N != 3 || math.Abs(e.Mean-140.0/3) > 1e-9 {
		t.Errorf("unfiltered expect = %+v", e)
	}
}

func TestLearnUpdatesFactsAndEstimates(t *testing.T) {
	st := flatState(usergroup.UG{}, 0,
		map[bgp.IngressID]float64{1: 10, 2: 30, 3: 100},
		map[bgp.IngressID]float64{1: 1, 2: 1, 3: 1})
	n := st.learn([]bgp.IngressID{1, 2, 3}, 2, 25)
	if n != 2 {
		t.Errorf("learned %d facts, want 2 (2 beats 1, 2 beats 3)", n)
	}
	if ms, ok := st.estOf(2); !ok || ms != 25 {
		t.Errorf("estimate not replaced by measurement: %v, %v", ms, ok)
	}
	// Repeat observation: no new facts.
	if n := st.learn([]bgp.IngressID{1, 2, 3}, 2, 25); n != 0 {
		t.Errorf("repeat observation learned %d facts, want 0", n)
	}
	// Routing change: now 1 wins; the contradicting "2 beats 1" fact must
	// be removed.
	st.learn([]bgp.IngressID{1, 2}, 1, 9)
	if st.beats[2][1] {
		t.Error("contradicted fact '2 beats 1' not removed")
	}
	if !st.beats[1][2] {
		t.Error("new fact '1 beats 2' not recorded")
	}
}

func TestLearnCorrectsComplianceModel(t *testing.T) {
	st := flatState(usergroup.UG{}, 0,
		map[bgp.IngressID]float64{1: 10},
		map[bgp.IngressID]float64{1: 1})
	st.learn([]bgp.IngressID{1, 7}, 7, 42) // observed ingress we thought non-compliant
	if st.rank(7) < 0 {
		t.Error("observed ingress should be marked compliant")
	}
	if ms, ok := st.estOf(7); !ok || ms != 42 {
		t.Error("measured latency not recorded for corrected ingress")
	}
}

func TestEvaluateAnycastOnlyIsZero(t *testing.T) {
	b := newBench(t, 79)
	res, err := Evaluate(b.world, b.ugs, advertise.Anycast())
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 0 {
		t.Errorf("anycast-only benefit = %v, want 0", res.Benefit)
	}
	if res.PossibleBenefit <= 0 {
		t.Error("possible benefit should be positive (inflation exists)")
	}
}

func TestEvaluateOnePerPeeringFullCaptures(t *testing.T) {
	// Advertising a unique prefix via every peering exposes every
	// policy-compliant ingress... but per-AS selection still picks ONE
	// route per prefix; with one peering per prefix the UG reaches that
	// exact ingress. So full one-per-peering must capture ~all possible
	// benefit (modulo day-0 noise = none).
	b := newBench(t, 83)
	all := len(b.world.Deploy.AllPeeringIDs())
	cfg := advertise.OnePerPeering(b.world.Deploy, all)
	res, err := Evaluate(b.world, b.ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.FractionOfPossible(); f < 0.999 {
		t.Errorf("full one-per-peering captures %.4f of possible, want ~1", f)
	}
}

// --- Convergence-loop regression tests (bugfix satellites) -----------------

// stubExec is an Executor returning fixed observations.
type stubExec struct {
	obs   []Observation
	calls int
}

func (s *stubExec) Execute(Config) ([]Observation, error) {
	s.calls++
	return s.obs, nil
}

// TestSolveEarlyExitsOnNonPositiveBenefit: with an executor that never
// observes anything, realized benefit is 0 every round and no facts are
// learned. The old `prevBenefit > 0` guard never fired for non-positive
// benefits, so such degenerate runs burned all MaxIterations; the
// absolute-delta fallback must stop after the second (no-gain) round.
func TestSolveEarlyExitsOnNonPositiveBenefit(t *testing.T) {
	b := newBench(t, 89)
	p := DefaultParams(3)
	p.MaxIterations = 8
	exec := &stubExec{}
	o, err := New(b.in, exec, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Reports()); got != 2 {
		t.Errorf("degenerate run produced %d iterations, want early exit after 2", got)
	}
	if exec.calls != 2 {
		t.Errorf("executor ran %d times, want 2", exec.calls)
	}
}

// TestSolveEarlyExitsOnNegativeBenefit covers the strictly negative
// plateau: equal negative benefits with no new facts must also stop.
func TestSolveEarlyExitsOnNegativeBenefit(t *testing.T) {
	b := newBench(t, 97)
	p := DefaultParams(3)
	p.MaxIterations = 8
	// Observations worse than anycast for every UG: realized benefit < 0
	// (weights positive, latency above anycast), and after round one the
	// same observations teach nothing new.
	var obs []Observation
	for _, ug := range b.ugs.UGs {
		any, err := b.in.AnycastMs(ug)
		if err != nil {
			t.Fatal(err)
		}
		_ = any
		obs = append(obs, Observation{UG: ug.ID, Prefix: 0, Ingress: bgp.IngressID(1 << 20), LatencyMs: 1e6})
		break // one UG is enough; others stay at anycast
	}
	exec := &stubExec{obs: obs}
	o, err := New(b.in, exec, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Reports()); got > 3 {
		t.Errorf("negative-benefit plateau ran %d iterations, want early exit", got)
	}
}

// TestSolveAllNaNBenefitReturnsError: a pathological measurement feed
// (NaN anycast) makes every iteration's RealizedBenefit NaN. NaN never
// compares greater, so the unguarded best comparison used to fall
// through and return the zero Config with a nil error.
func TestSolveAllNaNBenefitReturnsError(t *testing.T) {
	b := newBench(t, 101)
	in := b.in
	in.AnycastMs = func(ug usergroup.UG) (float64, error) { return math.NaN(), nil }
	p := DefaultParams(3)
	p.MaxIterations = 2
	o, err := New(in, b.exec, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.Solve()
	if err == nil {
		t.Fatalf("all-NaN benefits returned cfg with %d prefixes and nil error; want an error",
			cfg.NumPrefixes())
	}
}

// TestGrowPrefixTieBreaksByIngressID: equal-marginal candidates must pop
// in IngressID order, not heap-internal order. Three identical
// candidates (same estimate, same distance, same UG) tie exactly; the
// grown prefix must contain the lowest ID.
func TestGrowPrefixTieBreaksByIngressID(t *testing.T) {
	cands := []bgp.IngressID{5, 3, 9}
	st := flatState(usergroup.UG{ID: 1, Weight: 1}, 100,
		map[bgp.IngressID]float64{5: 10, 3: 10, 9: 10},
		map[bgp.IngressID]float64{5: 0, 3: 0, 9: 0})
	byIngress := make([][]int32, 10)
	byIngress[3], byIngress[5], byIngress[9] = []int32{0}, []int32{0}, []int32{0}
	o := &Orchestrator{
		params:    Params{PrefixBudget: 1, ReuseKm: 3000},
		states:    []*ugState{st},
		byIngress: byIngress,
	}
	for run := 0; run < 5; run++ {
		S := o.growPrefix(cands, []float64{st.anycast}, nil)
		if len(S) != 1 || S[0] != 3 {
			t.Fatalf("run %d: grew %v, want [3] (lowest tied IngressID)", run, S)
		}
	}
	// The tie-break must be insensitive to candidate order (the warm-start
	// repair path grows from differently ordered slices).
	perms := [][]bgp.IngressID{{9, 5, 3}, {3, 9, 5}, {9, 3, 5}}
	for _, p := range perms {
		S := o.growPrefix(p, []float64{st.anycast}, nil)
		if len(S) != 1 || S[0] != 3 {
			t.Fatalf("candidates %v: grew %v, want [3]", p, S)
		}
	}
}
