package core

// End-to-end determinism of the delta-repair pipeline: one scripted
// event stream, replayed through the controller, must leave the world's
// anycast Result and the advertisement config byte-identical across
// solver worker counts (extending the sharded_test contract through the
// event layer) and across separate OS processes (pinning that nothing —
// map iteration, pointer hashing, scheduling — leaks into the delta
// engine's output).

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"testing"

	"painter/internal/netsim"
)

// determinismDigest replays the scripted chaos stream through a repair
// controller with the given worker count and folds every post-sync
// anycast Result encoding and config encoding into one digest.
func determinismDigest(t *testing.T, workers int) []byte {
	t.Helper()
	b := newBench(t, 43)
	p := DefaultParams(ctrlBudget)
	p.Workers = workers
	c, err := NewController(b.world, b.ugs, ControllerParams{Solver: p})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	all := b.world.Deploy.AllPeeringIDs()
	asns := b.world.Graph.ASNs()
	events := []netsim.Event{
		{Kind: netsim.EventPeeringDown, Ingress: all[0]},
		{Kind: netsim.EventPrefFlip, AS: asns[len(asns)/3], Ingress: all[1]},
		{Kind: netsim.EventLatencySpike, Ingress: all[2], Ms: 45},
		{Kind: netsim.EventPeeringUp, Ingress: all[0]},
		{Kind: netsim.EventPoPDown, PoP: b.world.Deploy.Peering(all[3]).PoP},
		{Kind: netsim.EventProbeLoss, Ingress: all[1], Pct: 25},
		{Kind: netsim.EventPrefFlip, AS: asns[len(asns)/2], Ingress: all[0]},
		{Kind: netsim.EventPoPUp, PoP: b.world.Deploy.Peering(all[3]).PoP},
		{Kind: netsim.EventLatencySpike, Ingress: all[2], Ms: 0},
		{Kind: netsim.EventPrefFlip, AS: asns[2*len(asns)/3], Ingress: all[2]},
	}

	h := sha256.New()
	res, err := b.world.ResolveIngressResult(all)
	if err != nil {
		t.Fatal(err)
	}
	h.Write(res.Bytes())
	for _, ev := range events {
		if err := b.world.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
		cfg, _, err := c.Sync()
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.world.ResolveIngressResult(all)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(res.Bytes())
		h.Write(configBytes(cfg))
	}
	return h.Sum(nil)
}

func TestDeltaDeterminismAcrossWorkerCounts(t *testing.T) {
	base := determinismDigest(t, 1)
	for _, workers := range []int{2, 4, 7} {
		if got := determinismDigest(t, workers); !bytes.Equal(base, got) {
			t.Fatalf("digest with %d workers differs from sequential: %x vs %x", workers, got, base)
		}
	}
}

const determinismChildEnv = "PAINTER_DETERMINISM_CHILD"

// TestDeltaDeterminismAcrossProcesses re-executes the test binary and
// compares the child's digest with this process's own.
func TestDeltaDeterminismAcrossProcesses(t *testing.T) {
	if os.Getenv(determinismChildEnv) == "1" {
		fmt.Printf("determinism-digest:%x\n", determinismDigest(t, 2))
		return
	}
	if testing.Short() {
		t.Skip("short mode: no subprocess run")
	}
	want := fmt.Sprintf("determinism-digest:%x", determinismDigest(t, 2))

	cmd := exec.Command(os.Args[0], "-test.run=TestDeltaDeterminismAcrossProcesses$", "-test.v")
	cmd.Env = append(os.Environ(), determinismChildEnv+"=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte(want)) {
		t.Fatalf("child digest differs from parent's %s\nchild output:\n%s", want, out)
	}
}
