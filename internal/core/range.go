package core

import (
	"math"

	"painter/internal/advertise"
	"painter/internal/geo"
	"painter/internal/netsim"
	"painter/internal/usergroup"
)

// RangeResult is the Fig. 6a / Fig. 14 evaluation of a configuration:
// benefit under four assumptions about which policy-compliant ingress a
// UG lands on for each prefix, expressed as fractions of the total
// possible benefit.
//
//   - Upper: every UG reaches its best advertised compliant ingress.
//   - Lower: every UG reaches its worst advertised compliant ingress.
//   - Mean: unweighted average over advertised compliant ingresses.
//   - Estimated: weighted average where heavily inflated paths (routes
//     to PoPs much farther than the nearest advertising PoP) are
//     down-weighted, per §5.1.2's inflation-probability weighting.
type RangeResult struct {
	Upper, Lower, Mean, Estimated float64
	// PossibleBenefit normalizes the fractions (ms, weighted).
	PossibleBenefit float64
}

// inflationWeight approximates the probability a UG's route is inflated
// by extraKm beyond the nearest advertising PoP: large inflation is rare
// (Koch et al. 2021; §5.1.2 "weights correspond to approximate
// probabilities that paths are inflated by corresponding amounts"),
// modeled with exponential decay per 600 km. Ingresses at the nearest
// advertising PoP itself (extra ≈ 0) keep full weight, so intra-PoP
// ingress ambiguity — the One-per-PoP problem — is not decayed away.
func inflationWeight(extraKm float64) float64 {
	if extraKm <= 0 {
		return 1
	}
	return math.Exp(-extraKm / 600)
}

// EvaluateRange computes RangeResult for a configuration over a world.
// Unlike Evaluate (which resolves the true selection), this reports the
// pre-measurement uncertainty a strategy has: any advertised, policy-
// compliant ingress could be where a UG lands. UGs pick the prefix with
// the best Mean latency (Eq. 2's selection rule), then all four
// assumptions are evaluated against that prefix choice, plus anycast as
// the fallback.
func EvaluateRange(w *netsim.World, ugs *usergroup.Set, cfg advertise.Config) (RangeResult, error) {
	anyLat, _, err := AnycastLatencies(w, ugs)
	if err != nil {
		return RangeResult{}, err
	}
	var res RangeResult
	for _, ug := range ugs.UGs {
		base, ok := anyLat[ug.ID]
		if !ok {
			continue
		}
		compliant, err := w.PolicyCompliant(ug.ASN)
		if err != nil {
			return RangeResult{}, err
		}

		// Per prefix: min/max/mean/estimated latency over the advertised
		// compliant ingresses. The Traffic Manager steers each flow to
		// whichever prefix serves the UG best, so each bound takes the
		// min over prefixes independently:
		//   Upper     — best ingress of any prefix (everything lands well);
		//   Lower     — the prefix with the best worst-case (the TM can
		//               always retreat to it);
		//   Mean/Est  — the prefix with the best mean / inflation-weighted
		//               mean (Eq. 2's selection rule).
		bestMean := base
		bestMin, bestMax, bestEst := base, base, base
		for _, peerings := range cfg.Prefixes {
			var lats []float64
			var dists []float64
			minDist := math.Inf(1)
			for _, ing := range peerings {
				if !compliant[ing] {
					continue
				}
				ms, err := w.BaseLatencyMs(ug.ASN, ug.Metro, ing)
				if err != nil {
					return RangeResult{}, err
				}
				pop, err := w.Deploy.PoPOfPeering(ing)
				if err != nil {
					return RangeResult{}, err
				}
				d := geo.DistanceKm(ug.Coord, pop.Coord)
				lats = append(lats, ms)
				dists = append(dists, d)
				if d < minDist {
					minDist = d
				}
			}
			if len(lats) == 0 {
				continue
			}
			mn, mx, sum := math.Inf(1), math.Inf(-1), 0.0
			var wsum, west float64
			for i, ms := range lats {
				if ms < mn {
					mn = ms
				}
				if ms > mx {
					mx = ms
				}
				sum += ms
				wt := inflationWeight(dists[i] - minDist)
				west += wt * ms
				wsum += wt
			}
			mean := sum / float64(len(lats))
			est := west / wsum
			bestMin = math.Min(bestMin, mn)
			bestMax = math.Min(bestMax, mx)
			bestMean = math.Min(bestMean, mean)
			bestEst = math.Min(bestEst, est)
		}
		wgt := ug.Weight
		res.Mean += wgt * (base - bestMean)
		res.Upper += wgt * (base - bestMin)
		res.Lower += wgt * (base - bestMax)
		res.Estimated += wgt * (base - bestEst)

		if bl, _, err := w.BestIngressLatency(ug.ASN, ug.Metro); err == nil {
			if possible := base - math.Min(bl, base); possible > 0 {
				res.PossibleBenefit += wgt * possible
			}
		}
	}
	if res.PossibleBenefit > 0 {
		res.Upper /= res.PossibleBenefit
		res.Lower /= res.PossibleBenefit
		res.Mean /= res.PossibleBenefit
		res.Estimated /= res.PossibleBenefit
	}
	return res, nil
}
