package core

import (
	"fmt"
	"math"
	"strconv"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/netsim"
	"painter/internal/obs/span"
	"painter/internal/stats"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// WorldExecutor conducts advertisements inside a netsim.World: it
// propagates each prefix, resolves the ingress every UG's AS selects,
// and reports measured latencies — the simulation stand-in for issuing
// real BGP announcements and pinging clients (§5.1.1, PEERING mode).
type WorldExecutor struct {
	World *netsim.World
	UGs   *usergroup.Set
	// MeasureNoiseMs adds bounded measurement noise to reported
	// latencies (min-of-7-pings residue). 0 = exact.
	MeasureNoiseMs float64
	seed           int64
}

// NewWorldExecutor creates an executor over a world and UG set.
func NewWorldExecutor(w *netsim.World, ugs *usergroup.Set, noiseMs float64, seed int64) *WorldExecutor {
	return &WorldExecutor{World: w, UGs: ugs, MeasureNoiseMs: noiseMs, seed: seed}
}

// Execute implements Executor. Prefixes are resolved and measured in
// parallel on a bounded worker pool; observations are returned in the
// same deterministic order as a serial loop (prefix-major, then UG
// order), and measurement noise is drawn from a per-prefix RNG seeded by
// (executor seed, prefix index) so results do not depend on scheduling.
func (e *WorldExecutor) Execute(cfg Config) ([]Observation, error) {
	return e.ExecuteTraced(cfg, nil)
}

// ExecuteTraced implements TracedExecutor: each prefix resolution runs
// under its own child span of parent, which the world extends with the
// resolve-cache decision and any bgp.Propagate run. Span creation is
// goroutine-safe, so tracing composes with the parallel worker pool.
func (e *WorldExecutor) ExecuteTraced(cfg Config, parent *span.Span) ([]Observation, error) {
	perPrefix := make([][]Observation, len(cfg.Prefixes))
	err := parallelFor(len(cfg.Prefixes), func(pi int) error {
		peerings := cfg.Prefixes[pi]
		var ps *span.Span
		if parent != nil {
			ps = parent.StartChild("core.resolve_prefix",
				span.A("prefix", strconv.Itoa(pi)),
				span.A("peerings", strconv.Itoa(len(peerings))))
			defer ps.Finish()
		}
		sel, err := e.World.ResolveIngressTraced(peerings, ps)
		if err != nil {
			return fmt.Errorf("core: resolve prefix %d: %w", pi, err)
		}
		var rng func() float64
		if e.MeasureNoiseMs > 0 {
			rng = stats.NewRand(e.seed + 0x9e3779b9*int64(pi+1)).Float64
		}
		obs := make([]Observation, 0, e.UGs.Len())
		for _, ug := range e.UGs.UGs {
			r, ok := sel[ug.ASN]
			if !ok {
				continue
			}
			ms, err := e.World.LatencyMs(ug.ASN, ug.Metro, r.Ingress)
			if err != nil {
				return err
			}
			if e.MeasureNoiseMs > 0 {
				ms += rng() * e.MeasureNoiseMs
			}
			obs = append(obs, Observation{UG: ug.ID, Prefix: pi, Ingress: r.Ingress, LatencyMs: ms})
		}
		perPrefix[pi] = obs
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range perPrefix {
		total += len(o)
	}
	out := make([]Observation, 0, total)
	for _, o := range perPrefix {
		out = append(out, o...)
	}
	return out, nil
}

// AnycastLatencies resolves the implicit anycast prefix (all peerings)
// and returns each UG's anycast latency and selected ingress.
func AnycastLatencies(w *netsim.World, ugs *usergroup.Set) (map[usergroup.ID]float64, map[usergroup.ID]bgp.IngressID, error) {
	sel, err := w.ResolveIngress(w.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, nil, err
	}
	lat := make(map[usergroup.ID]float64, ugs.Len())
	ing := make(map[usergroup.ID]bgp.IngressID, ugs.Len())
	for _, ug := range ugs.UGs {
		r, ok := sel[ug.ASN]
		if !ok {
			continue
		}
		ms, err := w.LatencyMs(ug.ASN, ug.Metro, r.Ingress)
		if err != nil {
			return nil, nil, err
		}
		lat[ug.ID] = ms
		ing[ug.ID] = r.Ingress
	}
	return lat, ing, nil
}

// SimInputs builds orchestrator Inputs backed directly by a world:
// compliance from the world's BGP view, latency estimates from the given
// estimator (or the world's base latencies when nil — prototype mode,
// where the deployment pings clients directly), and measured anycast
// latencies. UGs whose AS selects no anycast route are dropped (they
// cannot be baselined).
func SimInputs(w *netsim.World, ugs *usergroup.Set,
	est func(ug usergroup.UG, ing bgp.IngressID) (float64, bool)) (Inputs, *usergroup.Set, error) {

	anyLat, _, err := AnycastLatencies(w, ugs)
	if err != nil {
		return Inputs{}, nil, err
	}
	covered := ugs.Subset(func(u usergroup.UG) bool { _, ok := anyLat[u.ID]; return ok })
	if covered.Len() == 0 {
		return Inputs{}, nil, fmt.Errorf("core: no UG has an anycast route")
	}
	if est == nil {
		est = func(ug usergroup.UG, ing bgp.IngressID) (float64, bool) {
			ms, err := w.BaseLatencyMs(ug.ASN, ug.Metro, ing)
			if err != nil {
				return 0, false
			}
			return ms, true
		}
	}
	in := Inputs{
		Deploy: w.Deploy,
		UGs:    covered,
		Compliant: func(ug usergroup.UG) (map[bgp.IngressID]bool, error) {
			return w.PolicyCompliant(ug.ASN)
		},
		// Flat path: UGs of the same AS share the world's sorted compliant
		// row directly, no per-UG map materialization.
		CompliantIDs: func(ug usergroup.UG) ([]bgp.IngressID, error) {
			return w.CompliantIngressIDs(ug.ASN)
		},
		EstLatencyMs: est,
		AnycastMs: func(ug usergroup.UG) (float64, error) {
			ms, ok := anyLat[ug.ID]
			if !ok {
				return 0, fmt.Errorf("core: UG %d has no anycast latency", ug.ID)
			}
			return ms, nil
		},
	}
	return in, covered, nil
}

// EvalResult is the ground-truth evaluation of a configuration in a
// world: realized benefit and per-UG detail.
type EvalResult struct {
	// Benefit is Eq. (1): Σ w(UG)·(anycast − achieved), ms.
	Benefit float64
	// PossibleBenefit is the One-per-Peering-complete bound: every UG at
	// its best policy-compliant ingress.
	PossibleBenefit float64
	// PerUG maps UG → achieved improvement over anycast (ms, ≥ 0).
	PerUG map[usergroup.ID]float64
	// PerUGLatency maps UG → achieved latency (ms).
	PerUGLatency map[usergroup.ID]float64
	// ImprovedUGs counts UGs with positive improvement.
	ImprovedUGs int
}

// FractionOfPossible returns Benefit/PossibleBenefit (0 when the bound
// is zero).
func (r EvalResult) FractionOfPossible() float64 {
	if r.PossibleBenefit <= 0 {
		return 0
	}
	return r.Benefit / r.PossibleBenefit
}

// Evaluate computes the true Eq. (1) benefit of a configuration in a
// world: per UG, the Traffic Manager achieves the minimum latency over
// the anycast route and every advertised prefix's selected ingress.
func Evaluate(w *netsim.World, ugs *usergroup.Set, cfg advertise.Config) (EvalResult, error) {
	anyLat, _, err := AnycastLatencies(w, ugs)
	if err != nil {
		return EvalResult{}, err
	}
	res := EvalResult{
		PerUG:        make(map[usergroup.ID]float64, ugs.Len()),
		PerUGLatency: make(map[usergroup.ID]float64, ugs.Len()),
	}
	// Resolve each prefix once, in parallel across the worker pool.
	sels := make([]map[topology.ASN]bgp.Route, len(cfg.Prefixes))
	if err := parallelFor(len(cfg.Prefixes), func(i int) error {
		sel, err := w.ResolveIngress(cfg.Prefixes[i])
		if err != nil {
			return err
		}
		sels[i] = sel
		return nil
	}); err != nil {
		return EvalResult{}, err
	}
	for _, ug := range ugs.UGs {
		base, ok := anyLat[ug.ID]
		if !ok {
			continue
		}
		best := base
		for _, sel := range sels {
			r, ok := sel[ug.ASN]
			if !ok {
				continue
			}
			ms, err := w.LatencyMs(ug.ASN, ug.Metro, r.Ingress)
			if err != nil {
				return EvalResult{}, err
			}
			if ms < best {
				best = ms
			}
		}
		imp := base - best
		res.PerUG[ug.ID] = imp
		res.PerUGLatency[ug.ID] = best
		res.Benefit += ug.Weight * imp
		if imp > 1e-9 {
			res.ImprovedUGs++
		}
		if bl, _, err := w.BestIngressLatency(ug.ASN, ug.Metro); err == nil {
			if possible := base - math.Min(bl, base); possible > 0 {
				res.PossibleBenefit += ug.Weight * possible
			}
		}
	}
	return res, nil
}
