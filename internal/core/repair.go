package core

// Warm-start repair: re-run the greedy inner loop only for the prefixes
// an event dirtied, against the frozen remainder of the configuration.
// The clean prefixes keep their peering sets and contribute their
// expectations to bestFrozen exactly as completed prefixes do during a
// cold ComputeConfig, so a repaired dirty prefix grows against the same
// marginal landscape it would see if it were the next prefix of a cold
// solve whose earlier prefixes happened to be the clean ones.

import (
	"sort"
	"strconv"

	"painter/internal/bgp"
	"painter/internal/obs/span"
)

// RepairConfig regrows the dirty prefixes of cfg (indices into
// cfg.Prefixes) against the frozen remainder, drops prefixes that grow
// empty, and finally grows new prefixes up to the budget if marginal
// benefit remains. live filters the candidate peerings (nil = all); dark
// masks UG states out of the benefit model (nil = none). cfg is not
// mutated.
//
// Dirty prefixes are grown speculatively in parallel on the worker pool,
// each against the clean-only frozen base. If the speculative grows
// improve disjoint UG-state sets they cannot interact — each one's
// marginals are independent of the others' placements — so all are kept.
// On overlap the speculation is discarded and the dirty prefixes are
// regrown sequentially in index order, freezing each result before the
// next, which is exactly the cold solve's ordering discipline. Both
// paths are deterministic: growPrefix is pure, candidate order is fixed,
// and the conflict test depends only on the speculative results.
func (o *Orchestrator) RepairConfig(cfg Config, dirty []int, live func(bgp.IngressID) bool, dark []bool) Config {
	return o.repairConfig(nil, cfg, dirty, live, dark)
}

func (o *Orchestrator) repairConfig(parent *span.Span, cfg Config, dirty []int, live func(bgp.IngressID) bool, dark []bool) Config {
	dirtySet := make(map[int]bool, len(dirty))
	order := append([]int(nil), dirty...)
	sort.Ints(order)
	for _, i := range order {
		dirtySet[i] = true
	}

	// Frozen base: anycast plus every clean prefix's contribution.
	bestFrozen := make([]float64, len(o.states))
	for i, st := range o.states {
		bestFrozen[i] = st.anycast
	}
	for i, S := range cfg.Prefixes {
		if !dirtySet[i] {
			o.freezePrefix(S, bestFrozen, dark)
		}
	}
	cands := o.candidatePeerings(live)

	out := cfg.Clone()
	if len(order) > 0 {
		grown := make([][]bgp.IngressID, len(order))
		improved := make([][]int, len(order))
		_ = parallelFor(len(order), func(k int) error {
			var gs *span.Span
			if parent != nil {
				gs = parent.StartChild("core.regrow_prefix",
					span.A("prefix", strconv.Itoa(order[k])))
				defer gs.Finish()
			}
			grown[k] = o.growPrefix(cands, bestFrozen, dark)
			improved[k] = o.improvedStates(grown[k], bestFrozen, dark)
			if gs != nil {
				gs.SetAttr("peerings", strconv.Itoa(len(grown[k])))
			}
			return nil
		})
		if disjoint(improved) {
			for k, idx := range order {
				out.Prefixes[idx] = grown[k]
			}
			for _, S := range grown {
				if len(S) > 0 {
					o.freezePrefix(S, bestFrozen, dark)
				}
			}
		} else {
			// Speculation conflicted: the dirty prefixes compete for the
			// same UGs, so regrow them one at a time like a cold solve.
			var cs *span.Span
			if parent != nil {
				cs = parent.StartChild("core.regrow_sequential",
					span.A("dirty", strconv.Itoa(len(order))))
			}
			for _, idx := range order {
				S := o.growPrefix(cands, bestFrozen, dark)
				out.Prefixes[idx] = S
				if len(S) > 0 {
					o.freezePrefix(S, bestFrozen, dark)
				}
			}
			if cs != nil {
				cs.Finish()
			}
		}
	}

	// Drop prefixes that repaired to empty (e.g. their only peerings
	// failed and nothing else offers marginal benefit).
	kept := out.Prefixes[:0]
	for _, S := range out.Prefixes {
		if len(S) > 0 {
			kept = append(kept, S)
		}
	}
	out.Prefixes = kept

	// Tail growth: budget freed by dropped prefixes (or never used) may
	// now buy benefit — e.g. a recovered peering worth a prefix of its own.
	for len(out.Prefixes) < o.params.PrefixBudget {
		S := o.growPrefix(cands, bestFrozen, dark)
		if len(S) == 0 {
			break
		}
		o.m.prefixesPlaced.Inc()
		out.Prefixes = append(out.Prefixes, S)
		o.freezePrefix(S, bestFrozen, dark)
	}
	return out
}

// improvedStates returns the indices of non-dark UG states whose Eq. (2)
// expectation under S beats their frozen best — the states whose value a
// placement of S would actually change. With warm reuse on it reads the
// cached contribution vector (NaN sentinel loses the strict <, exactly
// like Usable()==false).
func (o *Orchestrator) improvedStates(S []bgp.IngressID, bestFrozen []float64, dark []bool) []int {
	if len(S) == 0 {
		return nil
	}
	var out []int
	if !o.params.ColdRepair {
		vec := o.frozenVec(S)
		for i := range o.states {
			if dark != nil && dark[i] {
				continue
			}
			if vec[i] < bestFrozen[i] {
				out = append(out, i)
			}
		}
		return out
	}
	for i, st := range o.states {
		if dark != nil && dark[i] {
			continue
		}
		if e := st.expect(S, o.params.ReuseKm); e.Usable() && e.Mean < bestFrozen[i] {
			out = append(out, i)
		}
	}
	return out
}

// disjoint reports whether the given index sets are pairwise disjoint.
func disjoint(sets [][]int) bool {
	seen := make(map[int]bool)
	for _, s := range sets {
		for _, i := range s {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
	}
	return true
}
