package smoke

import (
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"painter/internal/obs"
)

// daemon is one running binary under test with captured output. done
// is closed (after err is set) when the process exits, so any number
// of waiters can observe it.
type daemon struct {
	name string
	cmd  *exec.Cmd
	out  *strings.Builder
	done chan struct{}
	err  error
}

func startDaemon(t *testing.T, name, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{name: name, cmd: exec.Command(bin, args...), out: &strings.Builder{}, done: make(chan struct{})}
	d.cmd.Stdout, d.cmd.Stderr = d.out, d.out
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	go func() {
		d.err = d.cmd.Wait()
		close(d.done)
	}()
	t.Cleanup(func() {
		_ = d.cmd.Process.Kill()
		<-d.done
	})
	return d
}

// stopGracefully sends SIGTERM and asserts a zero exit with a final
// obs snapshot flushed to stderr.
func (d *daemon) stopGracefully(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("%s: signal: %v", d.name, err)
	}
	select {
	case <-d.done:
		if d.err != nil {
			t.Fatalf("%s did not exit cleanly on SIGTERM: %v\n%s", d.name, d.err, d.out.String())
		}
	case <-time.After(15 * time.Second):
		_ = d.cmd.Process.Kill()
		<-d.done
		t.Fatalf("%s ignored SIGTERM\n%s", d.name, d.out.String())
	}
	if !strings.Contains(d.out.String(), `"counters"`) {
		t.Errorf("%s exit output has no obs snapshot flush:\n%s", d.name, d.out.String())
	}
}

// scrapeMetrics polls url until it answers, then parses the Prometheus
// text exposition.
func scrapeMetrics(t *testing.T, d *daemon, url string) map[string]float64 {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		select {
		case <-d.done:
			t.Fatalf("%s exited early: %v\n%s", d.name, d.err, d.out.String())
		default:
		}
		resp, err := http.Get(url)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: GET %s = %s", d.name, url, resp.Status)
			}
			samples, err := obs.ParseText(resp.Body)
			if err != nil {
				t.Fatalf("%s: parse %s: %v", d.name, url, err)
			}
			return samples
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never served %s: %v\n%s", d.name, url, lastErr, d.out.String())
	return nil
}

// TestDaemonMetricsSmoke runs all four daemons, scrapes /metrics on
// each, and checks the TM pair plus route-server shut down gracefully
// with a final snapshot flush.
func TestDaemonMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	root := repoRoot(t)
	dir := t.TempDir()
	popBin := buildBinary(t, root, dir, "cmd/tm-pop")
	edgeBin := buildBinary(t, root, dir, "cmd/tm-edge")
	rsBin := buildBinary(t, root, dir, "cmd/route-server")
	pdBin := buildBinary(t, root, dir, "cmd/painterd")

	popAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	popMetrics := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	pop := startDaemon(t, "tm-pop", popBin,
		"-listen", popAddr, "-pop-id", "1", "-dest", popAddr+",1",
		"-stats-interval", "0", "-metrics-listen", popMetrics)
	popSamples := scrapeMetrics(t, pop, "http://"+popMetrics+"/metrics")
	if _, ok := popSamples["tm_pop_active_flows"]; !ok {
		t.Errorf("tm-pop exposition missing tm_pop_active_flows: %v", popSamples)
	}

	edgeMetrics := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	edge := startDaemon(t, "tm-edge", edgeBin,
		"-resolve", popAddr, "-service", "default",
		"-probe-interval", "20ms", "-metrics-listen", edgeMetrics)
	edgeURL := "http://" + edgeMetrics + "/metrics"
	samples := scrapeMetrics(t, edge, edgeURL)
	// The edge probes its destination continuously; within a few rounds
	// the probe counters and RTT histogram must move.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && samples["tm_edge_probe_replies_total"] == 0 {
		time.Sleep(100 * time.Millisecond)
		samples = scrapeMetrics(t, edge, edgeURL)
	}
	if samples["tm_edge_probes_sent_total"] == 0 {
		t.Error("tm-edge sent no probes")
	}
	if samples["tm_edge_probe_replies_total"] == 0 {
		t.Error("tm-edge saw no probe replies")
	}
	if samples["tm_edge_probe_rtt_ms_count"] == 0 {
		t.Error("tm-edge probe RTT histogram empty")
	}
	if samples["tm_edge_destinations_alive"] == 0 {
		t.Error("tm-edge shows no alive destinations")
	}

	rsAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	rsMetrics := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	rs := startDaemon(t, "route-server", rsBin,
		"-listen", rsAddr, "-log-interval", "0", "-metrics-listen", rsMetrics)
	rsSamples := scrapeMetrics(t, rs, "http://"+rsMetrics+"/metrics")
	for _, name := range []string{"routeserver_sessions", "routeserver_rib_prefixes", "routeserver_damped_prefixes"} {
		if _, ok := rsSamples[name]; !ok {
			t.Errorf("route-server exposition missing %s", name)
		}
	}

	pdAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	pd := startDaemon(t, "painterd", pdBin, "-listen", pdAddr, "-scale", "small", "-seed", "3")
	pdSamples := scrapeMetrics(t, pd, "http://"+pdAddr+"/metrics")
	if _, ok := pdSamples["netsim_day"]; !ok {
		t.Errorf("painterd exposition missing netsim_day: %v", pdSamples)
	}
	resp, err := http.Get("http://" + pdAddr + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("painterd GET /debug/obs = %s", resp.Status)
	}

	// Graceful shutdown: SIGTERM → clean exit with a snapshot flush.
	edge.stopGracefully(t)
	pop.stopGracefully(t)
	rs.stopGracefully(t)
	pd.stopGracefully(t)
}
