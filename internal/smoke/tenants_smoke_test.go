package smoke

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// putTenantSpec PUTs a tenant spec and returns the response code.
func putTenantSpec(t *testing.T, base, id string, spec map[string]any) int {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("PUT", base+"/tenants/"+id, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestTenantsSmoke boots painterd, PUTs two tenants with different
// chaos seeds, waits for both to appear as tenant label values on
// /metrics, deletes one while the other keeps churning, and asserts a
// graceful SIGTERM shutdown with per-tenant summary lines.
func TestTenantsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	root := repoRoot(t)
	dir := t.TempDir()
	pdBin := buildBinary(t, root, dir, "cmd/painterd")

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	base := "http://" + addr
	pd := startDaemon(t, "painterd", pdBin, "-listen", addr, "-scale", "small", "-seed", "3")
	scrapeMetrics(t, pd, base+"/metrics") // wait until serving

	mk := func(chaosSeed int64) map[string]any {
		return map[string]any{
			"scale": "small", "seed": 5, "tick_ms": 20,
			"chaos": map[string]any{"profile": "default", "seed": chaosSeed, "ticks": 60},
		}
	}
	if code := putTenantSpec(t, base, "red", mk(1)); code != http.StatusCreated {
		t.Fatalf("PUT red = %d", code)
	}
	if code := putTenantSpec(t, base, "blue", mk(99)); code != http.StatusCreated {
		t.Fatalf("PUT blue = %d", code)
	}
	// A rejected spec must come back with field-level errors.
	if code := putTenantSpec(t, base, "bad", map[string]any{"scale": "galactic", "tick_ms": 0}); code != http.StatusBadRequest {
		t.Errorf("PUT bad spec = %d, want 400", code)
	}

	// Both tenants must show up as label values on /metrics, with their
	// controllers actually syncing.
	hasTenant := func(samples map[string]float64, id string) bool {
		for series := range samples {
			if strings.Contains(series, `tenant="`+id+`"`) {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(30 * time.Second)
	var samples map[string]float64
	for time.Now().Before(deadline) {
		samples = scrapeMetrics(t, pd, base+"/metrics")
		if hasTenant(samples, "red") && hasTenant(samples, "blue") &&
			samples[`core_controller_events_total{tenant="red"}`] > 0 &&
			samples[`core_controller_events_total{tenant="blue"}`] > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !hasTenant(samples, "red") || !hasTenant(samples, "blue") {
		t.Fatalf("tenant labels missing from /metrics")
	}
	if samples[`core_controller_events_total{tenant="red"}`] == 0 ||
		samples[`core_controller_events_total{tenant="blue"}`] == 0 {
		t.Fatalf("tenant controllers processed no events: %v", samples)
	}

	// Delete red while blue is still under schedule load.
	req, err := http.NewRequest("DELETE", base+"/tenants/red", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE red = %d", resp.StatusCode)
	}
	// Its label values must drop off the exposition once reconciled.
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		samples = scrapeMetrics(t, pd, base+"/metrics")
		if !hasTenant(samples, "red") {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if hasTenant(samples, "red") {
		t.Error("deleted tenant still exposed on /metrics")
	}
	if !hasTenant(samples, "blue") {
		t.Error("surviving tenant vanished from /metrics")
	}

	// /tenants/blue/status keeps serving while blue churns.
	resp, err = http.Get(base + "/tenants/blue/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Phase string `json:"phase"`
		Syncs uint64 `json:"syncs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil || status.Phase != "Running" {
		t.Errorf("blue status = %+v err=%v", status, err)
	}

	pd.stopGracefully(t)
	out := pd.out.String()
	// The removed tenant logged its summary at delete time; the survivor
	// logs one during shutdown.
	for _, id := range []string{"red", "blue"} {
		if !strings.Contains(out, "tenant summary") || !strings.Contains(out, "tenant="+id) {
			t.Errorf("missing per-tenant summary for %s in shutdown output:\n%s", id, out)
			break
		}
	}
}
