package smoke

// Daemon-level tracing smoke: every daemon started with -trace-sample
// serves /debug/trace as valid Chrome trace-event JSON, honors
// -log-format=json, exposes pprof behind -pprof, and dumps its flight
// recorder to -trace-dump on SIGTERM.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"painter/internal/obs/span"
)

// scrapeTrace polls url until it answers 200, then parses the body as a
// Chrome trace.
func scrapeTrace(t *testing.T, d *daemon, url string) span.ChromeTrace {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		select {
		case <-d.done:
			t.Fatalf("%s exited early: %v\n%s", d.name, d.err, d.out.String())
		default:
		}
		resp, err := http.Get(url)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: GET %s = %s", d.name, url, resp.Status)
			}
			ct, err := span.ParseChrome(resp.Body)
			if err != nil {
				t.Fatalf("%s: %s is not valid Chrome trace JSON: %v", d.name, url, err)
			}
			return ct
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never served %s: %v\n%s", d.name, url, lastErr, d.out.String())
	return span.ChromeTrace{}
}

// waitTraceEvents re-scrapes until the trace has at least n non-metadata
// events.
func waitTraceEvents(t *testing.T, d *daemon, url string, n int) span.ChromeTrace {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ct := scrapeTrace(t, d, url)
		spans := 0
		for _, ev := range ct.TraceEvents {
			if ev.Ph == "X" {
				spans++
			}
		}
		if spans >= n {
			return ct
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %s never accumulated %d spans (have %d)", d.name, url, n, spans)
			return ct
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestDaemonTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	root := repoRoot(t)
	dir := t.TempDir()
	popBin := buildBinary(t, root, dir, "cmd/tm-pop")
	edgeBin := buildBinary(t, root, dir, "cmd/tm-edge")
	rsBin := buildBinary(t, root, dir, "cmd/route-server")
	pdBin := buildBinary(t, root, dir, "cmd/painterd")

	// TM pair with tracing on: the edge's traced probes carry context to
	// the PoP, so BOTH flight recorders fill up.
	popAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	popMetrics := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	popDump := filepath.Join(dir, "pop-trace.json")
	pop := startDaemon(t, "tm-pop", popBin,
		"-listen", popAddr, "-pop-id", "1", "-dest", popAddr+",1",
		"-stats-interval", "0", "-metrics-listen", popMetrics,
		"-trace-sample", "1", "-trace-dump", popDump, "-log-format", "json")

	edgeMetrics := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	edge := startDaemon(t, "tm-edge", edgeBin,
		"-resolve", popAddr, "-service", "default",
		"-probe-interval", "20ms", "-metrics-listen", edgeMetrics,
		"-trace-sample", "1", "-log-format", "json")

	edgeTrace := waitTraceEvents(t, edge, "http://"+edgeMetrics+"/debug/trace", 3)
	for _, ev := range edgeTrace.TraceEvents {
		if ev.Ph == "X" && !strings.HasPrefix(ev.Name, "tm.edge.") {
			t.Errorf("unexpected edge span %q", ev.Name)
		}
	}
	popTrace := waitTraceEvents(t, pop, "http://"+popMetrics+"/debug/trace", 1)
	stitched := false
	for _, ev := range popTrace.TraceEvents {
		if ev.Name == "tm.pop.probe" {
			stitched = true
		}
	}
	if !stitched {
		t.Error("tm-pop recorded no stitched probe spans from the edge's wire context")
	}

	// Route server: tracing plus pprof behind the flag.
	rsAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	rsMetrics := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	rs := startDaemon(t, "route-server", rsBin,
		"-listen", rsAddr, "-log-interval", "0", "-metrics-listen", rsMetrics,
		"-trace-sample", "1", "-pprof")
	scrapeTrace(t, rs, "http://"+rsMetrics+"/debug/trace")
	resp, err := http.Get("http://" + rsMetrics + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("route-server GET /debug/pprof/cmdline = %s", resp.Status)
	}

	// painterd: /debug/trace on the control listener (valid even before
	// any solve fills the recorder), pprof mounted with -pprof.
	pdAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	pd := startDaemon(t, "painterd", pdBin,
		"-listen", pdAddr, "-scale", "small", "-seed", "3",
		"-trace-sample", "1", "-pprof", "-log-format", "json")
	scrapeTrace(t, pd, "http://"+pdAddr+"/debug/trace")
	resp, err = http.Get("http://" + pdAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("painterd GET /debug/pprof/cmdline = %s", resp.Status)
	}

	// JSON log lines actually parse as JSON.
	edge.stopGracefully(t)
	jsonLines := 0
	for _, line := range strings.Split(edge.out.String(), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var m map[string]any
		if json.Unmarshal([]byte(line), &m) == nil && m["msg"] != nil {
			jsonLines++
		}
	}
	if jsonLines == 0 {
		t.Errorf("tm-edge -log-format=json produced no parseable JSON log lines:\n%s", edge.out.String())
	}

	// SIGTERM writes the -trace-dump file as valid Chrome JSON.
	pop.stopGracefully(t)
	f, err := os.Open(popDump)
	if err != nil {
		t.Fatalf("tm-pop wrote no trace dump: %v", err)
	}
	defer f.Close()
	dumped, err := span.ParseChrome(f)
	if err != nil {
		t.Fatalf("tm-pop trace dump invalid: %v", err)
	}
	if len(dumped.TraceEvents) == 0 {
		t.Error("tm-pop trace dump is empty")
	}

	rs.stopGracefully(t)
	pd.stopGracefully(t)
}
