// Package smoke builds and briefly runs the repo's binaries, asserting
// they come up, serve, and shut down cleanly — the end-to-end checks a
// unit suite never exercises.
package smoke

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// repoRoot locates the module root from this file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	return root
}

// buildBinary compiles a package into dir and returns the binary path.
func buildBinary(t *testing.T, root, dir, pkg string) string {
	t.Helper()
	name := filepath.Base(pkg)
	out := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", out, "./"+pkg)
	cmd.Dir = root
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, b)
	}
	return out
}

// freePort reserves a localhost port and releases it for the child.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

func TestPainterdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	root := repoRoot(t)
	bin := buildBinary(t, root, t.TempDir(), "cmd/painterd")
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)

	cmd := exec.Command(bin, "-listen", addr, "-scale", "small", "-seed", "3")
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	defer func() {
		_ = cmd.Process.Kill()
		<-done
	}()

	// Poll /status until the control API answers.
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("painterd exited early: %v\n%s", err, out.String())
		default:
		}
		resp, err := http.Get("http://" + addr + "/status")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET /status: %s\n%s", resp.Status, out.String())
			}
			return
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("painterd never served /status: %v\n%s", lastErr, out.String())
}

func TestRouteServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	root := repoRoot(t)
	bin := buildBinary(t, root, t.TempDir(), "cmd/route-server")
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))

	cmd := exec.Command(bin, "-listen", addr, "-log-interval", "0")
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	// Wait until it accepts BGP connections, then ask for a clean stop.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("route-server did not exit cleanly on SIGTERM: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		<-done
		t.Fatalf("route-server ignored SIGTERM\n%s", out.String())
	}
}

func TestFailoverExampleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	root := repoRoot(t)
	bin := buildBinary(t, root, t.TempDir(), "examples/failover")

	cmd := exec.Command(bin)
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("failover example failed: %v\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		<-done
		t.Fatalf("failover example did not finish in 60s\n%s", out.String())
	}
	if !strings.Contains(out.String(), "failover") && out.Len() == 0 {
		t.Error("failover example produced no output")
	}
}
