package dnssim

import (
	"testing"
	"time"

	"painter/internal/advertise"
	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

func testWorld(t *testing.T) (*netsim.World, *usergroup.Set) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 27, Tier1: 4, Tier2: 24, Stubs: 200,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.4, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{Name: "t", PoPMetros: 12, PeerFrac: 0.8, TransitProviders: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := netsim.New(g, d, 17)
	if err != nil {
		t.Fatal(err)
	}
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w, ugs
}

func TestRecordExpired(t *testing.T) {
	base := time.Now()
	r := Record{Prefix: 0, TTL: time.Minute, Issued: base}
	if r.Expired(base.Add(30 * time.Second)) {
		t.Error("not yet expired")
	}
	if !r.Expired(base.Add(61 * time.Second)) {
		t.Error("should be expired")
	}
}

func TestSteerAssignsEveryUG(t *testing.T) {
	w, ugs := testWorld(t)
	cfg := advertise.OnePerPoP(w.Deploy, 6)
	latency, anycast, err := WorldLatencyFuncs(w, ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := Steer(ugs, cfg, latency, anycast)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != ugs.Len() {
		t.Fatalf("assigned %d of %d UGs", len(assign), ugs.Len())
	}
	for id, p := range assign {
		if p < -1 || p >= cfg.NumPrefixes() {
			t.Fatalf("UG %d assigned invalid prefix %d", id, p)
		}
	}
}

func TestResolverMembersShareAssignment(t *testing.T) {
	w, ugs := testWorld(t)
	cfg := advertise.OnePerPoP(w.Deploy, 6)
	latency, anycast, err := WorldLatencyFuncs(w, ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := Steer(ugs, cfg, latency, anycast)
	if err != nil {
		t.Fatal(err)
	}
	pub := make(map[usergroup.ResolverID]bool)
	for _, r := range ugs.Resolvers {
		pub[r.ID] = r.Public
	}
	perRes := make(map[usergroup.ResolverID]map[int]bool)
	for _, u := range ugs.UGs {
		if pub[u.Resolver] {
			continue // ECS resolvers steer per UG
		}
		if perRes[u.Resolver] == nil {
			perRes[u.Resolver] = make(map[int]bool)
		}
		perRes[u.Resolver][assign[u.ID]] = true
	}
	for rid, ps := range perRes {
		if len(ps) > 1 {
			t.Errorf("non-ECS resolver %d issued %d distinct prefixes, want 1", rid, len(ps))
		}
	}
}

func TestDNSSteeringLosesToPerFlow(t *testing.T) {
	// The §5.2.2 claim: per-resolver steering sacrifices a large part of
	// the benefit that per-flow steering captures.
	w, ugs := testWorld(t)
	cfg := advertise.OnePerPoP(w.Deploy, 8)
	latency, anycast, err := WorldLatencyFuncs(w, ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Per-flow (PAINTER) benefit: every UG takes its own best option.
	var perFlow float64
	for _, u := range ugs.UGs {
		base, ok := anycast(u)
		if !ok {
			continue
		}
		best := base
		for p := 0; p < cfg.NumPrefixes(); p++ {
			if ms, ok := latency(u, p); ok && ms < best {
				best = ms
			}
		}
		perFlow += u.Weight * (base - best)
	}

	assign, err := Steer(ugs, cfg, latency, anycast)
	if err != nil {
		t.Fatal(err)
	}
	dns := SteeredBenefit(ugs, assign, latency, anycast)

	if dns > perFlow+1e-9 {
		t.Fatalf("DNS steering (%.3f) cannot beat per-flow steering (%.3f)", dns, perFlow)
	}
	if perFlow > 0 && dns/perFlow > 0.9 {
		t.Errorf("DNS retains %.0f%% of per-flow benefit; expected a visible sacrifice (paper: ~50%%)",
			100*dns/perFlow)
	}
	if dns < 0 {
		t.Errorf("DNS steering benefit %.3f negative; Steer should fall back to anycast when hurtful", dns)
	}
}

func TestSteeredBenefitAnycastAssignmentIsZero(t *testing.T) {
	w, ugs := testWorld(t)
	cfg := advertise.OnePerPoP(w.Deploy, 4)
	latency, anycast, err := WorldLatencyFuncs(w, ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign := make(SteeringAssignment)
	for _, u := range ugs.UGs {
		assign[u.ID] = -1
	}
	if b := SteeredBenefit(ugs, assign, latency, anycast); b != 0 {
		t.Errorf("all-anycast assignment benefit = %v, want 0", b)
	}
}
