package dnssim

import (
	"testing"
	"time"
)

var t0 = time.Date(2023, 9, 10, 12, 0, 0, 0, time.UTC)

func chain(ttl time.Duration) (*Authoritative, *RecursiveResolver) {
	auth := NewAuthoritative(ttl)
	auth.MapTo("svc.cloud.example", 0)
	return auth, NewRecursiveResolver(auth)
}

func TestAuthoritativeMapping(t *testing.T) {
	auth := NewAuthoritative(time.Minute)
	if _, err := auth.Query("missing", t0); err == nil {
		t.Error("NXDOMAIN expected")
	}
	auth.MapTo("a", 3)
	rec, err := auth.Query("a", t0)
	if err != nil || rec.Prefix != 3 || rec.TTL != time.Minute {
		t.Errorf("rec = %+v, %v", rec, err)
	}
	auth.MapTo("a", 5)
	rec, _ = auth.Query("a", t0)
	if rec.Prefix != 5 {
		t.Errorf("remap not applied: %d", rec.Prefix)
	}
}

func TestResolverCachesForTTL(t *testing.T) {
	auth, res := chain(time.Minute)
	for i := 0; i < 5; i++ {
		if _, err := res.Resolve("svc.cloud.example", t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if q := auth.Queries(); q != 1 {
		t.Errorf("authoritative queried %d times within TTL, want 1", q)
	}
	// Past TTL the resolver re-queries.
	if _, err := res.Resolve("svc.cloud.example", t0.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if q := auth.Queries(); q != 2 {
		t.Errorf("authoritative queried %d times after expiry, want 2", q)
	}
	if hr := res.HitRate(); hr < 0.5 {
		t.Errorf("hit rate %.2f too low", hr)
	}
}

func TestResolverSharesCacheAcrossClients(t *testing.T) {
	// The coarseness problem: a remap is invisible to every client of
	// the resolver until the shared record expires.
	auth, res := chain(10 * time.Minute)
	c1 := NewClient(res, BehaviorHonorTTL)
	c2 := NewClient(res, BehaviorHonorTTL)

	p1, _, err := c1.AddressFor("svc.cloud.example", t0)
	if err != nil {
		t.Fatal(err)
	}
	auth.MapTo("svc.cloud.example", 7) // the cloud re-steers
	p2, _, err := c2.AddressFor("svc.cloud.example", t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("client 2 saw the remap (%d vs %d) despite the shared cached record", p1, p2)
	}
	// After expiry, new resolutions see the new mapping.
	p3, _, err := c2.AddressFor("svc.cloud.example", t0.Add(11*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if p3 != 7 {
		t.Errorf("post-expiry resolution = %d, want 7", p3)
	}
}

func TestHonorTTLClientReResolves(t *testing.T) {
	auth, res := chain(time.Minute)
	c := NewClient(res, BehaviorHonorTTL)
	p, expired, err := c.AddressFor("svc.cloud.example", t0)
	if err != nil || expired || p != 0 {
		t.Fatalf("initial: %d %v %v", p, expired, err)
	}
	auth.MapTo("svc.cloud.example", 9)
	p, expired, err = c.AddressFor("svc.cloud.example", t0.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if expired {
		t.Error("honoring client never uses expired records")
	}
	if p != 9 {
		t.Errorf("got %d, want fresh mapping 9", p)
	}
}

func TestCacheIndefinitelyClientUsesStaleRecords(t *testing.T) {
	auth, res := chain(30 * time.Second)
	c := NewClient(res, BehaviorCacheIndefinitely)
	if _, _, err := c.AddressFor("svc.cloud.example", t0); err != nil {
		t.Fatal(err)
	}
	auth.MapTo("svc.cloud.example", 9)
	// Hours later, new flows still go to the stale address — the 80%-
	// after-5-minutes phenomenon of Fig. 3.
	p, expired, err := c.AddressFor("svc.cloud.example", t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !expired {
		t.Error("record should be reported expired")
	}
	if p != 0 {
		t.Errorf("caching client moved to %d; should still use the stale address", p)
	}
}

func TestFlowOutlivesRecord(t *testing.T) {
	_, res := chain(30 * time.Second)
	c := NewClient(res, BehaviorPinUntilFlowEnd)
	start := t0
	// Flow starts while the record is valid…
	p, expired, err := c.FlowDestination("svc.cloud.example", start, start.Add(10*time.Second))
	if err != nil || expired || p != 0 {
		t.Fatalf("mid-TTL: %d %v %v", p, expired, err)
	}
	// …and is still running 10 minutes later: same destination, record
	// long expired — traffic the cloud can no longer steer.
	p, expired, err = c.FlowDestination("svc.cloud.example", start, start.Add(10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 || !expired {
		t.Errorf("flow dest = %d expired=%v, want pinned 0 with expired record", p, expired)
	}
}
