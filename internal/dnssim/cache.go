package dnssim

import (
	"fmt"
	"sync"
	"time"
)

// This file models the DNS resolution chain whose caching behaviour
// §2.2 measures: an authoritative server owned by the cloud, recursive
// resolvers that cache answers for the TTL, and clients that violate
// TTLs by reusing addresses long after expiry. The Fig. 3 trace
// generator encodes the *outcome* of this behaviour statistically; this
// model reproduces the *mechanics*, letting tests quantify how record
// changes do (and do not) reach clients.

// Authoritative answers queries for the cloud's service names. The
// cloud rotates which prefix a name maps to when its steering decisions
// change; MapTo installs the new mapping.
type Authoritative struct {
	mu  sync.Mutex
	ttl time.Duration
	// mapping: name → prefix index.
	mapping map[string]int
	queries int
}

// NewAuthoritative creates an authoritative server issuing answers with
// the given TTL.
func NewAuthoritative(ttl time.Duration) *Authoritative {
	return &Authoritative{ttl: ttl, mapping: make(map[string]int)}
}

// MapTo points a name at a prefix index.
func (a *Authoritative) MapTo(name string, prefix int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mapping[name] = prefix
}

// Query answers authoritatively at time now.
func (a *Authoritative) Query(name string, now time.Time) (Record, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queries++
	p, ok := a.mapping[name]
	if !ok {
		return Record{}, fmt.Errorf("dnssim: NXDOMAIN %q", name)
	}
	return Record{Prefix: p, TTL: a.ttl, Issued: now}, nil
}

// Queries returns how many authoritative queries were served.
func (a *Authoritative) Queries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queries
}

// RecursiveResolver caches authoritative answers for their TTL and
// serves the (shared) cached record to every client population behind
// it — the aggregation that makes DNS steering coarse.
type RecursiveResolver struct {
	upstream *Authoritative

	mu     sync.Mutex
	cache  map[string]Record
	hits   int
	misses int
}

// NewRecursiveResolver creates a resolver over an authoritative server.
func NewRecursiveResolver(up *Authoritative) *RecursiveResolver {
	return &RecursiveResolver{upstream: up, cache: make(map[string]Record)}
}

// Resolve returns the cached record when fresh, otherwise re-queries
// the authoritative server.
func (r *RecursiveResolver) Resolve(name string, now time.Time) (Record, error) {
	r.mu.Lock()
	if rec, ok := r.cache[name]; ok && !rec.Expired(now) {
		r.hits++
		r.mu.Unlock()
		return rec, nil
	}
	r.misses++
	r.mu.Unlock()
	rec, err := r.upstream.Query(name, now)
	if err != nil {
		return Record{}, err
	}
	r.mu.Lock()
	r.cache[name] = rec
	r.mu.Unlock()
	return rec, nil
}

// HitRate returns the cache hit fraction.
func (r *RecursiveResolver) HitRate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.hits + r.misses
	if total == 0 {
		return 0
	}
	return float64(r.hits) / float64(total)
}

// ClientBehavior describes how a client treats TTLs.
type ClientBehavior int

// Client behaviours observed in the wild (§2.2, [16, 35, 60, 73]).
const (
	// BehaviorHonorTTL re-resolves when the record expires.
	BehaviorHonorTTL ClientBehavior = iota
	// BehaviorPinUntilFlowEnd keeps using the address for the lifetime
	// of flows started while the record was valid (flows outlive TTL).
	BehaviorPinUntilFlowEnd
	// BehaviorCacheIndefinitely keeps using the address for new flows
	// long after expiry (app-layer caching; the paper measured these
	// outnumbering record-outliving flows roughly 2:1).
	BehaviorCacheIndefinitely
)

// Client models one endpoint's record usage.
type Client struct {
	resolver *RecursiveResolver
	behavior ClientBehavior

	mu   sync.Mutex
	held map[string]Record
}

// NewClient creates a client with the given TTL behaviour.
func NewClient(r *RecursiveResolver, b ClientBehavior) *Client {
	return &Client{resolver: r, behavior: b, held: make(map[string]Record)}
}

// AddressFor returns the prefix index the client will send a NEW flow
// to at time now, resolving (or reusing a stale record) per behaviour.
// The second return reports whether the record used was already expired
// — i.e., the cloud has lost control of this flow's destination.
func (c *Client) AddressFor(name string, now time.Time) (int, bool, error) {
	c.mu.Lock()
	rec, have := c.held[name]
	c.mu.Unlock()

	switch c.behavior {
	case BehaviorCacheIndefinitely:
		if have {
			return rec.Prefix, rec.Expired(now), nil
		}
	default:
		if have && !rec.Expired(now) {
			return rec.Prefix, false, nil
		}
	}
	fresh, err := c.resolver.Resolve(name, now)
	if err != nil {
		return 0, false, err
	}
	c.mu.Lock()
	c.held[name] = fresh
	c.mu.Unlock()
	return fresh.Prefix, fresh.Expired(now), nil
}

// FlowDestination returns the prefix a flow STARTED at start and still
// running at now is using, and whether the record backing it has
// expired mid-flow. Flows never re-resolve (connections cannot move),
// which is the other half of the paper's post-expiry traffic.
func (c *Client) FlowDestination(name string, start, now time.Time) (int, bool, error) {
	p, _, err := c.AddressFor(name, start)
	if err != nil {
		return 0, false, err
	}
	c.mu.Lock()
	rec := c.held[name]
	c.mu.Unlock()
	return p, rec.Expired(now), nil
}
