// Package dnssim models the DNS control plane PAINTER is compared
// against: authoritative answers with TTLs, recursive resolver caching,
// client-side TTL violations, ECS, and DNS-based steering of users onto
// prefixes (the "PAINTER w/ DNS" baseline of §5.2.2).
package dnssim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// Record is one DNS A-record answer.
type Record struct {
	// Prefix indexes into the advertisement configuration (which prefix
	// the returned address belongs to); -1 means the anycast prefix.
	Prefix int
	TTL    time.Duration
	// Issued is when the authoritative answer was generated.
	Issued time.Time
}

// Expired reports whether the record is past TTL at t.
func (r Record) Expired(t time.Time) bool { return t.After(r.Issued.Add(r.TTL)) }

// SteeringAssignment maps each UG to the prefix index DNS steering
// would direct it to (-1 = anycast).
type SteeringAssignment map[usergroup.ID]int

// Steer computes the DNS-steering baseline of §5.2.2: each recursive
// resolver is mapped to the single prefix with the best aggregate
// benefit for the traffic it serves, and every UG behind that resolver
// receives that prefix. Resolvers supporting ECS (the public resolvers)
// instead steer each UG (≈ /24) individually.
//
// latency(u, p) must return the true latency UG u attains on prefix p's
// selected ingress (ok=false when the prefix is unusable for u);
// anycast(u) is u's anycast latency.
func Steer(ugs *usergroup.Set, cfg advertise.Config,
	latency func(u usergroup.UG, prefix int) (float64, bool),
	anycast func(u usergroup.UG) (float64, bool)) (SteeringAssignment, error) {

	assign := make(SteeringAssignment, ugs.Len())

	// Group UGs by resolver.
	byRes := make(map[usergroup.ResolverID][]usergroup.UG)
	resByID := make(map[usergroup.ResolverID]usergroup.Resolver)
	for _, r := range ugs.Resolvers {
		resByID[r.ID] = r
	}
	for _, u := range ugs.UGs {
		byRes[u.Resolver] = append(byRes[u.Resolver], u)
	}

	bestForUG := func(u usergroup.UG) int {
		base, ok := anycast(u)
		if !ok {
			return -1
		}
		best, bestP := base, -1
		for p := range cfg.Prefixes {
			if ms, ok := latency(u, p); ok && ms < best {
				best, bestP = ms, p
			}
		}
		return bestP
	}

	resolvers := make([]usergroup.ResolverID, 0, len(byRes))
	for r := range byRes {
		resolvers = append(resolvers, r)
	}
	sort.Slice(resolvers, func(i, j int) bool { return resolvers[i] < resolvers[j] })

	for _, rid := range resolvers {
		members := byRes[rid]
		res, ok := resByID[rid]
		if !ok {
			return nil, fmt.Errorf("dnssim: resolver %d unknown", rid)
		}
		if res.Public {
			// ECS: per-UG decisions.
			for _, u := range members {
				assign[u.ID] = bestForUG(u)
			}
			continue
		}
		// One answer for the whole resolver: pick the prefix minimizing
		// the weighted mean latency of its members (anycast fallback
		// counts as the member's anycast latency).
		bestScore := math.Inf(1)
		bestP := -1
		for p := -1; p < len(cfg.Prefixes); p++ {
			var score, wsum float64
			for _, u := range members {
				base, ok := anycast(u)
				if !ok {
					continue
				}
				ms := base
				if p >= 0 {
					if v, ok := latency(u, p); ok {
						// A UG never does worse than anycast: the record
						// gives an address, but anycast remains a separate
						// service address only if the service uses it; per
						// the paper's DNS baseline the client uses what DNS
						// returned, so worse-than-anycast is possible.
						ms = v
					} else {
						ms = base
					}
				}
				score += u.Weight * ms
				wsum += u.Weight
			}
			if wsum == 0 {
				continue
			}
			score /= wsum
			if score < bestScore {
				bestScore, bestP = score, p
			}
		}
		for _, u := range members {
			assign[u.ID] = bestP
		}
	}
	return assign, nil
}

// SteeredBenefit evaluates Eq. (1) under a DNS steering assignment:
// each UG's latency is what its assigned prefix delivers (anycast when
// assigned -1 or the prefix is unusable).
func SteeredBenefit(ugs *usergroup.Set, assign SteeringAssignment,
	latency func(u usergroup.UG, prefix int) (float64, bool),
	anycast func(u usergroup.UG) (float64, bool)) float64 {

	var total float64
	for _, u := range ugs.UGs {
		base, ok := anycast(u)
		if !ok {
			continue
		}
		ms := base
		if p, ok := assign[u.ID]; ok && p >= 0 {
			if v, ok := latency(u, p); ok {
				ms = v
			}
		}
		total += u.Weight * (base - ms)
	}
	return total
}

// WorldLatencyFuncs builds the latency/anycast closures for Steer and
// SteeredBenefit from a netsim world and a configuration (resolving each
// prefix's ingress selection once).
func WorldLatencyFuncs(w *netsim.World, ugs *usergroup.Set, cfg advertise.Config) (
	func(u usergroup.UG, prefix int) (float64, bool),
	func(u usergroup.UG) (float64, bool),
	error) {

	anySel, err := w.ResolveIngress(w.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, nil, err
	}
	sels := make([]map[topology.ASN]bgp.Route, len(cfg.Prefixes))
	for i, peerings := range cfg.Prefixes {
		sel, err := w.ResolveIngress(peerings)
		if err != nil {
			return nil, nil, err
		}
		sels[i] = sel
	}
	latency := func(u usergroup.UG, prefix int) (float64, bool) {
		if prefix < 0 || prefix >= len(sels) {
			return 0, false
		}
		r, ok := sels[prefix][u.ASN]
		if !ok {
			return 0, false
		}
		ms, err := w.LatencyMs(u.ASN, u.Metro, r.Ingress)
		if err != nil {
			return 0, false
		}
		return ms, true
	}
	anycast := func(u usergroup.UG) (float64, bool) {
		r, ok := anySel[u.ASN]
		if !ok {
			return 0, false
		}
		ms, err := w.LatencyMs(u.ASN, u.Metro, r.Ingress)
		if err != nil {
			return 0, false
		}
		return ms, true
	}
	return latency, anycast, nil
}
