package controlapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"painter/internal/obs"
	"painter/internal/tenant"
)

func tenantServer(t *testing.T) (*Server, http.Handler) {
	t.Helper()
	s := New(getEnv(t), "")
	s.Tenants = tenant.NewManager(tenant.Params{ReconcileInterval: time.Hour})
	t.Cleanup(s.Tenants.Close)
	return s, s.Handler()
}

func putTenant(t *testing.T, h http.Handler, id string, spec any, ifMatch string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("PUT", "/tenants/"+id, strings.NewReader(string(body)))
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func specSmall(seed int64) tenant.Spec {
	return tenant.Spec{
		Scale: "small", Seed: seed, TickMs: 1, Paused: true,
		Chaos: tenant.ChaosSpec{Profile: "default", Seed: seed + 100, Ticks: 5},
	}
}

func TestTenantPutGetDelete(t *testing.T) {
	s, h := tenantServer(t)

	rec := putTenant(t, h, "acme", specSmall(7), "")
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	var created TenantJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Generation != 1 || rec.Header().Get("ETag") != "1" {
		t.Errorf("created = %+v etag=%q", created, rec.Header().Get("ETag"))
	}

	// Update is 200 and bumps the generation.
	rec = putTenant(t, h, "acme", specSmall(7), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("update = %d", rec.Code)
	}

	s.Tenants.Reconcile()
	var got TenantJSON
	r2 := do(t, h, "GET", "/tenants/acme", nil, &got)
	if r2.Code != http.StatusOK || got.Phase != tenant.PhasePaused || got.Status == nil {
		t.Errorf("get = %d %+v", r2.Code, got)
	}

	var list []TenantJSON
	do(t, h, "GET", "/tenants", nil, &list)
	if len(list) != 1 || list[0].ID != "acme" {
		t.Errorf("list = %+v", list)
	}

	var status tenant.Status
	do(t, h, "GET", "/tenants/acme/status", nil, &status)
	if status.ID != "acme" || status.Prefixes == 0 {
		t.Errorf("status = %+v", status)
	}

	var reports []tenant.SyncRecord
	do(t, h, "GET", "/tenants/acme/reports", nil, &reports)

	req := httptest.NewRequest("DELETE", "/tenants/acme", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete = %d", rec.Code)
	}
	req = httptest.NewRequest("DELETE", "/tenants/acme", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("second delete = %d, want 404", rec.Code)
	}
}

func TestTenantPutValidation(t *testing.T) {
	_, h := tenantServer(t)

	// Bad spec: field-level errors in the payload.
	bad := map[string]any{"scale": "galactic", "tick_ms": 0, "budget": -1}
	rec := putTenant(t, h, "acme", bad, "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d", rec.Code)
	}
	var errJSON struct {
		Error  string              `json:"error"`
		Fields []tenant.FieldError `json:"fields"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &errJSON); err != nil {
		t.Fatal(err)
	}
	fields := map[string]bool{}
	for _, f := range errJSON.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"scale", "tick_ms", "budget"} {
		if !fields[want] {
			t.Errorf("missing field error %q in %v", want, errJSON.Fields)
		}
	}

	// Unknown JSON fields are rejected, not silently dropped.
	rec = putTenant(t, h, "acme", map[string]any{"scale": "small", "tick_ms": 1, "bogus": true}, "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", rec.Code)
	}

	// Bad tenant ID.
	rec = putTenant(t, h, "Bad%20Id", specSmall(1), "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id = %d", rec.Code)
	}

	// Unknown tenant paths 404.
	for _, p := range []string{"/tenants/nope", "/tenants/nope/status", "/tenants/nope/reports"} {
		if rec := do(t, h, "GET", p, nil, nil); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", p, rec.Code)
		}
	}
}

func TestTenantPutGenerationConflict(t *testing.T) {
	_, h := tenantServer(t)
	rec := putTenant(t, h, "acme", specSmall(7), "")
	if rec.Code != http.StatusCreated {
		t.Fatal(rec.Code)
	}
	// Conditional update at generation 1 wins...
	rec = putTenant(t, h, "acme", specSmall(7), "1")
	if rec.Code != http.StatusOK {
		t.Fatalf("conditional update = %d", rec.Code)
	}
	// ...and a second writer still holding 1 conflicts.
	rec = putTenant(t, h, "acme", specSmall(8), "1")
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale If-Match = %d, want 409", rec.Code)
	}
	var conflict struct {
		Error    string `json:"error"`
		Expected int64  `json:"expected"`
		Current  int64  `json:"current"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &conflict); err != nil {
		t.Fatal(err)
	}
	if conflict.Expected != 1 || conflict.Current != 2 {
		t.Errorf("conflict payload = %+v", conflict)
	}
	// Malformed If-Match is a 400.
	rec = putTenant(t, h, "acme", specSmall(7), "latest")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad If-Match = %d", rec.Code)
	}
}

// TestTenantMetricsLabeled scrapes /metrics and asserts each running
// tenant's series carry its tenant label, and that they vanish after
// deletion.
func TestTenantMetricsLabeled(t *testing.T) {
	s, h := tenantServer(t)
	for _, id := range []string{"red", "blue"} {
		if rec := putTenant(t, h, id, specSmall(int64(len(id))), ""); rec.Code != http.StatusCreated {
			t.Fatal(rec.Code)
		}
	}
	s.Tenants.Reconcile()

	scrape := func() map[string]bool {
		rec := do(t, h, "GET", "/metrics", nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics = %d", rec.Code)
		}
		ms, err := obs.ParseText(rec.Body)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for series := range ms {
			for _, id := range []string{"red", "blue"} {
				if strings.Contains(series, `tenant="`+id+`"`) {
					seen[id] = true
				}
			}
		}
		return seen
	}
	seen := scrape()
	if !seen["red"] || !seen["blue"] {
		t.Fatalf("tenant labels missing from /metrics: %v", seen)
	}

	req := httptest.NewRequest("DELETE", "/tenants/red", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	s.Tenants.Reconcile()
	seen = scrape()
	if seen["red"] || !seen["blue"] {
		t.Errorf("after delete: %v", seen)
	}
}
