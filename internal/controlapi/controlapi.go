// Package controlapi exposes the Advertisement Orchestrator over HTTP —
// the control surface an operator (or cmd/painterd) uses to compute,
// inspect, install, and evaluate advertisement configurations.
//
//	GET  /status    deployment + current configuration summary
//	POST /solve     {"budget":25,"reuse_km":3000,"iterations":2}
//	GET  /config    current configuration (prefix → peerings)
//	GET  /evaluate  ground-truth benefit of the current configuration
//	GET  /reports   per-iteration learning reports
//	GET  /metrics   Prometheus text exposition (orchestrator + netsim +
//	                every tenant's registries, labeled tenant="<id>")
//	GET  /debug/obs merged obs snapshot as JSON
//
// When Server.Tenants is set, the multi-tenant control plane mounts
// under /tenants (see tenants.go for the route list).
package controlapi

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"time"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/core"
	"painter/internal/experiments"
	"painter/internal/obs"
	"painter/internal/obs/history"
	"painter/internal/obs/span"
	"painter/internal/tenant"
)

// Server holds the orchestrator state behind the HTTP API.
type Server struct {
	Env *experiments.Env
	// RouteServer, when non-empty, receives a BGP announcement of every
	// newly solved configuration.
	RouteServer string
	// AnnounceTimeout bounds the BGP install.
	AnnounceTimeout time.Duration
	// Trace, when non-nil, traces each solve end to end (per-iteration,
	// per-prefix placement, and netsim resolve spans) and backs GET
	// /debug/trace with its flight recorder. Set before Handler().
	Trace *span.Tracer
	// Pprof mounts net/http/pprof under /debug/pprof/ on the handler
	// when true. Set before Handler().
	Pprof bool
	// Tenants, when non-nil, mounts the multi-tenant control plane
	// under /tenants and merges every tenant's registries into /metrics
	// and /debug/obs on each scrape. Set before Handler().
	Tenants *tenant.Manager
	// obs is the server's metric registry: solve-loop and propagate
	// metrics land here; /metrics also merges the world's registry.
	obs *obs.Registry

	mu      sync.Mutex
	cfg     advertise.Config
	reports []core.IterationReport
	// rs is the persistent announce session: BGP routes live only as
	// long as the session, so it is dialed lazily and kept open.
	rs *bgp.Speaker
}

// New creates a Server over an environment.
func New(env *experiments.Env, routeServer string) *Server {
	s := &Server{
		Env: env, RouteServer: routeServer, AnnounceTimeout: 5 * time.Second,
		obs: obs.NewRegistry(),
	}
	// Route bgp.Propagate timings into this server's registry so a
	// /metrics scrape during a live solve sees propagation histograms.
	bgp.InstrumentPropagate(s.obs)
	return s
}

// Obs returns the server's metric registry (for embedding daemons that
// want to add their own instruments to the same exposition).
func (s *Server) Obs() *obs.Registry { return s.obs }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /config", s.handleConfig)
	mux.HandleFunc("GET /evaluate", s.handleEvaluate)
	mux.HandleFunc("GET /reports", s.handleReports)
	// The registry list is re-collected on every scrape: tenants come
	// and go at runtime, and each brings registries of its own.
	regs := func() []*obs.Registry {
		out := []*obs.Registry{s.obs}
		if s.Env != nil && s.Env.World != nil {
			out = append(out, s.Env.World.Obs())
		}
		if s.Tenants != nil {
			out = append(out, s.Tenants.Registries()...)
		}
		return out
	}
	mux.Handle("GET /metrics", obs.DynamicHandler(regs))
	mux.Handle("GET /debug/obs", obs.DynamicJSONHandler(regs))
	if s.Tenants != nil {
		mux.HandleFunc("GET /tenants", s.handleTenantsList)
		mux.HandleFunc("PUT /tenants/{id}", s.handleTenantPut)
		mux.HandleFunc("GET /tenants/{id}", s.handleTenantGet)
		mux.HandleFunc("DELETE /tenants/{id}", s.handleTenantDelete)
		mux.HandleFunc("GET /tenants/{id}/status", s.handleTenantStatus)
		mux.HandleFunc("GET /tenants/{id}/reports", s.handleTenantReports)
		mux.HandleFunc("GET /alerts", s.handleAlerts)
		mux.Handle("GET /debug/obs/history", history.Handler(s.Tenants.Histories))
	}
	mux.Handle("GET /debug/trace", span.Handler(s.Trace))
	if s.Pprof {
		obs.MountPprof(mux)
	}
	return mux
}

// Config returns the current configuration (for tests/embedding).
func (s *Server) Config() advertise.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Clone()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// StatusResponse is the /status payload.
type StatusResponse struct {
	PoPs            int `json:"pops"`
	Peerings        int `json:"peerings"`
	TransitPeerings int `json:"transit_peerings"`
	UserGroups      int `json:"user_groups"`
	Prefixes        int `json:"prefixes"`
	Advertisements  int `json:"advertisements"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st := s.Env.Deploy.Stats()
	s.mu.Lock()
	prefixes := s.cfg.NumPrefixes()
	adverts := s.cfg.TotalAdvertisements()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatusResponse{
		PoPs: st.PoPs, Peerings: st.Peerings, TransitPeerings: st.Transit,
		UserGroups: s.Env.UGs.Len(), Prefixes: prefixes, Advertisements: adverts,
	})
}

// SolveRequest is the /solve payload.
type SolveRequest struct {
	Budget     int     `json:"budget"`
	ReuseKm    float64 `json:"reuse_km"`
	Iterations int     `json:"iterations"`
}

// SolveResponse is the /solve reply.
type SolveResponse struct {
	Prefixes       int    `json:"prefixes"`
	Advertisements int    `json:"advertisements"`
	SolveTime      string `json:"solve_time"`
	Iterations     int    `json:"iterations"`
	Announced      bool   `json:"announced"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Budget < 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("budget must be >= 1"))
		return
	}
	params := core.DefaultParams(req.Budget)
	if req.ReuseKm > 0 {
		params.ReuseKm = req.ReuseKm
	}
	if req.Iterations > 0 {
		params.MaxIterations = req.Iterations
	}
	params.Obs = s.obs
	params.Trace = s.Trace
	exec := core.NewWorldExecutor(s.Env.World, s.Env.UGs, 0.5, s.Env.Seed+123)
	o, err := core.New(s.Env.Inputs, exec, params)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	start := time.Now()
	cfg, err := o.Solve()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	s.cfg = cfg
	s.reports = o.Reports()
	s.mu.Unlock()

	announced := false
	if s.RouteServer != "" {
		if err := s.announce(cfg); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Errorf("solved but announce failed: %w", err))
			return
		}
		announced = true
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		Prefixes:       cfg.NumPrefixes(),
		Advertisements: cfg.TotalAdvertisements(),
		SolveTime:      time.Since(start).String(),
		Iterations:     len(o.Reports()),
		Announced:      announced,
	})
}

// PrefixJSON is one /config entry.
type PrefixJSON struct {
	Prefix   string  `json:"prefix"`
	Peerings []int32 `json:"peerings"`
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PrefixJSON, 0, s.cfg.NumPrefixes())
	for i, peerings := range s.cfg.Prefixes {
		ids := make([]int32, len(peerings))
		for j, id := range peerings {
			ids[j] = int32(id)
		}
		out = append(out, PrefixJSON{Prefix: PrefixForIndex(i).String(), Peerings: ids})
	}
	writeJSON(w, http.StatusOK, out)
}

// EvaluateResponse is the /evaluate payload.
type EvaluateResponse struct {
	BenefitMs          float64 `json:"benefit_ms"`
	PossibleBenefitMs  float64 `json:"possible_benefit_ms"`
	FractionOfPossible float64 `json:"fraction_of_possible"`
	ImprovedUGs        int     `json:"improved_ugs"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	cfg := s.cfg.Clone()
	s.mu.Unlock()
	res, err := core.Evaluate(s.Env.World, s.Env.UGs, cfg)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{
		BenefitMs:          res.Benefit,
		PossibleBenefitMs:  res.PossibleBenefit,
		FractionOfPossible: res.FractionOfPossible(),
		ImprovedUGs:        res.ImprovedUGs,
	})
}

// ReportJSON is one /reports entry.
type ReportJSON struct {
	Iteration      int     `json:"iteration"`
	Realized       float64 `json:"realized_benefit_ms"`
	Predicted      float64 `json:"predicted_benefit_ms"`
	Lower          float64 `json:"lower_ms"`
	Upper          float64 `json:"upper_ms"`
	Facts          int     `json:"facts_learned"`
	Prefixes       int     `json:"prefixes"`
	Advertisements int     `json:"advertisements"`
}

func (s *Server) handleReports(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReportJSON, 0, len(s.reports))
	for _, r := range s.reports {
		out = append(out, ReportJSON{
			Iteration: r.Iteration, Realized: r.RealizedBenefit, Predicted: r.PredictedBenefit,
			Lower: r.PredictedLower, Upper: r.PredictedUpper,
			Facts: r.FactsLearned, Prefixes: r.PrefixesUsed, Advertisements: r.AdvertisementsUsed,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// PrefixForIndex assigns documentation prefixes to configuration slots:
// 10.(i/256).(i%256).0/24 in RFC1918 space for the simulated substrate.
func PrefixForIndex(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
}

// announce sends one UPDATE per configured prefix over the persistent
// BGP session to the route server (the Fig. 4 "Advertisement
// Installation" arrow), dialing it on first use. The session stays open:
// BGP routes are flushed on session loss, so closing it would withdraw
// the installed configuration.
func (s *Server) announce(cfg advertise.Config) error {
	s.mu.Lock()
	sp := s.rs
	s.mu.Unlock()
	if sp == nil {
		conn, err := net.DialTimeout("tcp", s.RouteServer, s.AnnounceTimeout)
		if err != nil {
			return err
		}
		sp = bgp.NewSpeaker(conn, 64500, 0x0a000001, 30*time.Second)
		if err := sp.Handshake(); err != nil {
			_ = conn.Close()
			return err
		}
		go func() {
			_ = sp.Run()
			// Session lost: forget it so the next solve redials.
			s.mu.Lock()
			if s.rs == sp {
				s.rs = nil
			}
			s.mu.Unlock()
		}()
		s.mu.Lock()
		s.rs = sp
		s.mu.Unlock()
	}
	for i := range cfg.Prefixes {
		u := bgp.Update{
			Origin:  bgp.OriginIGP,
			ASPath:  []uint16{64500},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netip.Prefix{PrefixForIndex(i)},
		}
		if err := sp.SendUpdate(u); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts down the announce session (withdrawing installed routes).
func (s *Server) Close() error {
	s.mu.Lock()
	sp := s.rs
	s.rs = nil
	s.mu.Unlock()
	if sp != nil {
		return sp.Close()
	}
	return nil
}
