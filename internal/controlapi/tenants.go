package controlapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"painter/internal/tenant"
)

// Tenant API:
//
//	GET    /tenants              list desired specs + observed phase
//	PUT    /tenants/{id}         submit a spec (If-Match: <generation>
//	                             for optimistic concurrency)
//	GET    /tenants/{id}         stored spec + observed status
//	DELETE /tenants/{id}         remove the tenant (teardown on next
//	                             reconcile)
//	GET    /tenants/{id}/status  observed runtime state
//	GET    /tenants/{id}/reports bounded per-tick sync history
//
// Validation failures come back as 400 with one entry per bad field;
// generation conflicts as 409 with the expected and current numbers.

// TenantJSON is one /tenants list entry: the desired record plus the
// observed phase ("Pending" until the reconcile loop has built the
// runtime).
type TenantJSON struct {
	ID         string         `json:"id"`
	Generation int64          `json:"generation"`
	Spec       tenant.Spec    `json:"spec"`
	Phase      tenant.Phase   `json:"phase"`
	Status     *tenant.Status `json:"status,omitempty"`
}

func (s *Server) tenantJSON(st tenant.Stored, withStatus bool) TenantJSON {
	out := TenantJSON{ID: st.ID, Generation: st.Generation, Spec: st.Spec, Phase: "Pending"}
	if ts, ok := s.Tenants.Status(st.ID); ok {
		out.Phase = ts.Phase
		if withStatus {
			out.Status = &ts
		}
	}
	return out
}

func (s *Server) handleTenantsList(w http.ResponseWriter, _ *http.Request) {
	stored := s.Tenants.Store().List()
	out := make([]TenantJSON, 0, len(stored))
	for _, st := range stored {
		out = append(out, s.tenantJSON(st, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Tenants.Store().Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	writeJSON(w, http.StatusOK, s.tenantJSON(st, true))
}

// tenantErrJSON is the error payload: always "error", plus "fields"
// for validation failures and expected/current for generation races.
type tenantErrJSON struct {
	Error    string              `json:"error"`
	Fields   []tenant.FieldError `json:"fields,omitempty"`
	Expected int64               `json:"expected,omitempty"`
	Current  int64               `json:"current,omitempty"`
}

func (s *Server) handleTenantPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var expect int64
	if im := strings.TrimSpace(r.Header.Get("If-Match")); im != "" {
		v, err := strconv.ParseInt(strings.Trim(im, `"`), 10, 64)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("If-Match must be a positive generation number, got %q", im))
			return
		}
		expect = v
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec tenant.Spec
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	created := false
	if _, ok := s.Tenants.Store().Get(id); !ok {
		created = true
	}
	st, err := s.Tenants.Apply(id, spec, expect)
	if err != nil {
		var verr *tenant.ValidationError
		var cerr *tenant.ConflictError
		switch {
		case errors.As(err, &verr):
			writeJSON(w, http.StatusBadRequest,
				tenantErrJSON{Error: verr.Error(), Fields: verr.Fields})
		case errors.As(err, &cerr):
			writeJSON(w, http.StatusConflict,
				tenantErrJSON{Error: cerr.Error(), Expected: cerr.Expected, Current: cerr.Current})
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	w.Header().Set("ETag", strconv.FormatInt(st.Generation, 10))
	writeJSON(w, code, s.tenantJSON(st, false))
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Tenants.Remove(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Tenants.Status(id)
	if !ok {
		if _, stored := s.Tenants.Store().Get(id); stored {
			// Accepted but not yet reconciled into a runtime.
			writeJSON(w, http.StatusOK, map[string]string{"id": id, "phase": "Pending"})
			return
		}
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTenantReports(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	reps, ok := s.Tenants.Reports(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	if reps == nil {
		reps = []tenant.SyncRecord{}
	}
	writeJSON(w, http.StatusOK, reps)
}
