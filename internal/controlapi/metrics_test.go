package controlapi

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"painter/internal/obs"
)

// scrape fetches /metrics and parses the Prometheus text into samples.
func scrape(t *testing.T, h *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := h.Client().Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestMetricsScrapeDuringSolve scrapes /metrics while a solve runs,
// then checks the exposition: counters are monotone across scrapes,
// the solve-loop and propagate instruments moved, and every histogram's
// +Inf bucket agrees with its _count.
func TestMetricsScrapeDuringSolve(t *testing.T) {
	s := New(getEnv(t), "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	before := scrape(t, srv)

	solveDone := make(chan struct{})
	go func() {
		defer close(solveDone)
		var sr SolveResponse
		rec := do(t, s.Handler(), "POST", "/solve", SolveRequest{Budget: 4, Iterations: 2}, &sr)
		if rec.Code != 200 {
			t.Errorf("solve = %d: %s", rec.Code, rec.Body.String())
		}
	}()

	// Scrape concurrently with the live solve; every counter must be
	// monotone non-decreasing between consecutive scrapes.
	prev := before
	for {
		select {
		case <-solveDone:
		default:
			cur := scrape(t, srv)
			for k, v := range prev {
				if strings.HasSuffix(strings.SplitN(k, "{", 2)[0], "_total") {
					if cv, ok := cur[k]; ok && cv < v {
						t.Errorf("counter %s went backwards: %v -> %v", k, v, cv)
					}
				}
			}
			prev = cur
			continue
		}
		break
	}

	after := scrape(t, srv)
	mustGrow := []string{
		"core_solve_iterations_total",
		"core_prefixes_placed_total",
		"bgp_propagate_total",
		"netsim_resolve_cache_misses_total",
	}
	for _, name := range mustGrow {
		if after[name] <= before[name] {
			t.Errorf("%s did not grow: %v -> %v", name, before[name], after[name])
		}
	}

	// Histogram internal consistency: +Inf bucket == _count, every
	// bucket <= +Inf, and a moved histogram has positive _sum.
	histSeen := 0
	for k, count := range after {
		if !strings.HasSuffix(k, "_count") {
			continue
		}
		base := strings.TrimSuffix(k, "_count")
		inf, ok := after[base+`_bucket{le="+Inf"}`]
		if !ok {
			t.Errorf("histogram %s has _count but no +Inf bucket", base)
			continue
		}
		if inf != count {
			t.Errorf("histogram %s: +Inf bucket %v != count %v", base, inf, count)
		}
		for bk, bv := range after {
			if strings.HasPrefix(bk, base+"_bucket{") && bv > inf {
				t.Errorf("histogram %s: bucket %s = %v exceeds +Inf %v", base, bk, bv, inf)
			}
		}
		if _, ok := after[base+"_sum"]; !ok {
			t.Errorf("histogram %s has no _sum", base)
		}
		histSeen++
	}
	if histSeen == 0 {
		t.Error("no histograms in exposition")
	}
	if after["bgp_propagate_seconds_count"] == 0 {
		t.Error("bgp_propagate_seconds did not record any observations")
	}
	if after["core_solve_seconds_count"] == 0 || after["core_solve_seconds_sum"] <= 0 {
		t.Errorf("core_solve_seconds count=%v sum=%v, want both positive",
			after["core_solve_seconds_count"], after["core_solve_seconds_sum"])
	}
}

// TestDebugObsEndpoint checks the JSON snapshot endpoint agrees with
// the Prometheus exposition.
func TestDebugObsEndpoint(t *testing.T) {
	s := New(getEnv(t), "")
	h := s.Handler()
	var sr SolveResponse
	if rec := do(t, h, "POST", "/solve", SolveRequest{Budget: 2, Iterations: 1}, &sr); rec.Code != 200 {
		t.Fatalf("solve = %d: %s", rec.Code, rec.Body.String())
	}

	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/obs = %d", resp.StatusCode)
	}
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["core_solve_iterations_total"] == 0 {
		t.Error("debug snapshot missing solve iterations")
	}
	if h, ok := snap.Histograms["core_solve_seconds"]; !ok || h.Count == 0 {
		t.Errorf("debug snapshot core_solve_seconds = %+v", h)
	}

	text := scrape(t, srv)
	if float64(snap.Counters["bgp_propagate_total"]) > text["bgp_propagate_total"] {
		t.Errorf("JSON snapshot ahead of a later text scrape: %v > %v",
			snap.Counters["bgp_propagate_total"], text["bgp_propagate_total"])
	}
}
