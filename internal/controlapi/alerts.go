package controlapi

import (
	"net/http"

	"painter/internal/obs/alert"
	"painter/internal/tenant"
)

// Alert API:
//
//	GET /alerts  every live tenant's alert instance states and recent
//	             transitions, plus the bounded tail of final states
//	             from torn-down tenants (teardown resolves a tenant's
//	             alerts rather than leaking them here)
//	GET /debug/obs/history  merged per-tenant time-series rings
//	             (?match=<prefix>, ?n=<last-N>)

// AlertsResponse is the /alerts payload.
type AlertsResponse struct {
	// Firing counts firing instances across all live tenants — the
	// one-glance health number.
	Firing   int                   `json:"firing"`
	Tenants  []tenant.TenantAlerts `json:"tenants"`
	Finished []tenant.TenantAlerts `json:"finished,omitempty"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	out := AlertsResponse{
		Tenants:  s.Tenants.Alerts(),
		Finished: s.Tenants.FinishedAlerts(),
	}
	if out.Tenants == nil {
		out.Tenants = []tenant.TenantAlerts{}
	}
	for _, ta := range out.Tenants {
		for _, sv := range ta.States {
			if sv.State == alert.StateFiring {
				out.Firing++
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}
