package controlapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"painter/internal/experiments"
	"painter/internal/routeserver"
)

var testEnv *experiments.Env

func getEnv(t *testing.T) *experiments.Env {
	t.Helper()
	if testEnv == nil {
		e, err := experiments.NewEnv(experiments.ScaleSmall, 7)
		if err != nil {
			t.Fatal(err)
		}
		testEnv = e
	}
	return testEnv
}

func do(t *testing.T, h http.Handler, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s: %v (body %q)", method, path, err, rec.Body.String())
		}
	}
	return rec
}

func TestStatusEndpoint(t *testing.T) {
	s := New(getEnv(t), "")
	var st StatusResponse
	rec := do(t, s.Handler(), "GET", "/status", nil, &st)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if st.PoPs == 0 || st.Peerings == 0 || st.UserGroups == 0 {
		t.Errorf("empty status %+v", st)
	}
	if st.Prefixes != 0 {
		t.Errorf("unsolved server should report 0 prefixes")
	}
}

func TestSolveConfigEvaluateFlow(t *testing.T) {
	s := New(getEnv(t), "")
	h := s.Handler()

	var sr SolveResponse
	rec := do(t, h, "POST", "/solve", SolveRequest{Budget: 4, Iterations: 1}, &sr)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d: %s", rec.Code, rec.Body.String())
	}
	if sr.Prefixes == 0 || sr.Prefixes > 4 {
		t.Errorf("solved %d prefixes", sr.Prefixes)
	}

	var cfg []PrefixJSON
	do(t, h, "GET", "/config", nil, &cfg)
	if len(cfg) != sr.Prefixes {
		t.Errorf("config has %d prefixes, solve said %d", len(cfg), sr.Prefixes)
	}
	for _, p := range cfg {
		if len(p.Peerings) == 0 {
			t.Errorf("prefix %s has no peerings", p.Prefix)
		}
	}

	var ev EvaluateResponse
	do(t, h, "GET", "/evaluate", nil, &ev)
	if ev.BenefitMs <= 0 {
		t.Errorf("benefit = %v, want positive", ev.BenefitMs)
	}
	if ev.FractionOfPossible <= 0 || ev.FractionOfPossible > 1 {
		t.Errorf("fraction = %v", ev.FractionOfPossible)
	}

	var reps []ReportJSON
	do(t, h, "GET", "/reports", nil, &reps)
	if len(reps) != sr.Iterations {
		t.Errorf("reports = %d, want %d", len(reps), sr.Iterations)
	}
}

func TestSolveValidation(t *testing.T) {
	s := New(getEnv(t), "")
	h := s.Handler()
	if rec := do(t, h, "POST", "/solve", SolveRequest{Budget: 0}, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("budget 0 = %d, want 400", rec.Code)
	}
	req := httptest.NewRequest("POST", "/solve", bytes.NewBufferString("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad json = %d, want 400", rec.Code)
	}
	// Wrong method is routed away by the mux.
	if rec := do(t, h, "GET", "/solve", nil, nil); rec.Code == http.StatusOK {
		t.Error("GET /solve should not succeed")
	}
}

func TestSolveAnnouncesToRouteServer(t *testing.T) {
	rs, err := routeserver.New(routeserver.Config{
		ListenAddr: "127.0.0.1:0", LocalAS: 64999, BGPID: 1, HoldTime: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	s := New(getEnv(t), rs.Addr())
	var sr SolveResponse
	rec := do(t, s.Handler(), "POST", "/solve", SolveRequest{Budget: 3, Iterations: 1}, &sr)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d: %s", rec.Code, rec.Body.String())
	}
	if !sr.Announced {
		t.Fatal("solve did not announce")
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && rs.RIB().Size() != sr.Prefixes {
		time.Sleep(5 * time.Millisecond)
	}
	if rs.RIB().Size() != sr.Prefixes {
		t.Errorf("route server learned %d prefixes, want %d", rs.RIB().Size(), sr.Prefixes)
	}
}

func TestPrefixForIndex(t *testing.T) {
	if got := PrefixForIndex(0).String(); got != "10.0.0.0/24" {
		t.Errorf("index 0 = %s", got)
	}
	if got := PrefixForIndex(300).String(); got != "10.1.44.0/24" {
		t.Errorf("index 300 = %s", got)
	}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		p := PrefixForIndex(i).String()
		if seen[p] {
			t.Fatalf("prefix collision at %d: %s", i, p)
		}
		seen[p] = true
	}
}
