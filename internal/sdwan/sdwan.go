// Package sdwan models the SD-WAN-with-multihoming baseline of §5.2.4:
// an enterprise edge device that can steer traffic through any of the
// enterprise's ISPs (or a direct cloud peering), and the path/PoP
// counting methodology used to compare its diversity against PAINTER.
package sdwan

import (
	"fmt"
	"sort"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// PathCounts compares path diversity for one UG.
type PathCounts struct {
	// SDWAN is the number of paths an SD-WAN device can choose between:
	// one per enterprise ISP, plus one for a direct cloud peering.
	SDWAN int
	// SDWANPoPs is the number of distinct ingress PoPs those paths reach.
	SDWANPoPs int
	// PainterLower counts one path per policy-compliant peering at the
	// UG's candidate PoPs (what the Advertisement Orchestrator exposes).
	PainterLower int
	// PainterUpper additionally distinguishes paths by the UG's first-hop
	// ISP, modeling advertisement-attribute manipulation (prepending)
	// exposing multiple routes per peering.
	PainterUpper int
	// PainterPoPs is the number of distinct candidate PoPs with at least
	// one policy-compliant peering for the UG.
	PainterPoPs int
}

// Analyzer computes Fig. 11's quantities over a world.
type Analyzer struct {
	world *netsim.World
	ugs   *usergroup.Set
	// candidatePoPs per region: PoPs receiving 90% of the region's
	// anycast ingress volume.
	candidatePoPs map[string][]cloud.PoPID // keyed by metro region
	// anycastSel is the per-AS anycast route selection (default paths).
	anycastSel map[topology.ASN]bgp.Route
}

// NewAnalyzer precomputes regional candidate PoP sets: for each region,
// the smallest set of PoPs receiving at least 90% of the region's UG
// anycast traffic (the paper's filter to remove high-latency routes).
func NewAnalyzer(w *netsim.World, ugs *usergroup.Set) (*Analyzer, error) {
	sel, err := w.ResolveIngress(w.Deploy.AllPeeringIDs())
	if err != nil {
		return nil, err
	}
	// Volume per (region, PoP).
	vol := make(map[string]map[cloud.PoPID]float64)
	regTotal := make(map[string]float64)
	for _, u := range ugs.UGs {
		r, ok := sel[u.ASN]
		if !ok {
			continue
		}
		pop, err := w.Deploy.PoPOfPeering(r.Ingress)
		if err != nil {
			return nil, err
		}
		region := regionOf(u.Metro)
		if vol[region] == nil {
			vol[region] = make(map[cloud.PoPID]float64)
		}
		vol[region][pop.ID] += u.Weight
		regTotal[region] += u.Weight
	}
	cand := make(map[string][]cloud.PoPID, len(vol))
	for region, popVol := range vol {
		type pv struct {
			id cloud.PoPID
			v  float64
		}
		var list []pv
		for id, v := range popVol {
			list = append(list, pv{id, v})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].v != list[j].v {
				return list[i].v > list[j].v
			}
			return list[i].id < list[j].id
		})
		var acc float64
		var ids []cloud.PoPID
		for _, e := range list {
			ids = append(ids, e.id)
			acc += e.v
			if acc >= 0.9*regTotal[region] {
				break
			}
		}
		cand[region] = ids
	}
	return &Analyzer{world: w, ugs: ugs, candidatePoPs: cand, anycastSel: sel}, nil
}

func regionOf(metro string) string {
	// Region lookup via the embedded metro DB; fall back to the metro
	// itself for unknown codes.
	if m, err := geo.MetroByCode(metro); err == nil {
		return string(m.Region)
	}
	return metro
}

// Counts computes Fig. 11a's quantities for one UG.
func (a *Analyzer) Counts(u usergroup.UG) (PathCounts, error) {
	as := a.world.Graph.AS(u.ASN)
	if as == nil {
		return PathCounts{}, fmt.Errorf("sdwan: unknown AS %v", u.ASN)
	}
	var pc PathCounts

	// SD-WAN: one path per ISP. (Direct cloud peerings would add one; our
	// deployments peer only with transit networks, so stubs have none.)
	pc.SDWAN = len(as.Providers)
	sdwanPoPs := make(map[cloud.PoPID]bool)
	for _, isp := range as.Providers {
		// Traffic shipped through this ISP enters where the ISP's own
		// anycast-selected route enters (destination-based routing).
		if r, ok := a.anycastSel[isp]; ok {
			if pop, err := a.world.Deploy.PoPOfPeering(r.Ingress); err == nil {
				sdwanPoPs[pop.ID] = true
			}
		}
	}
	pc.SDWANPoPs = len(sdwanPoPs)

	// PAINTER: policy-compliant peerings at the UG's regional candidate
	// PoPs.
	compliant, err := a.world.PolicyCompliant(u.ASN)
	if err != nil {
		return PathCounts{}, err
	}
	candidate := make(map[cloud.PoPID]bool)
	for _, id := range a.candidatePoPs[regionOf(u.Metro)] {
		candidate[id] = true
	}
	painterPoPs := make(map[cloud.PoPID]bool)
	for ing := range compliant {
		pop, err := a.world.Deploy.PoPOfPeering(ing)
		if err != nil {
			return PathCounts{}, err
		}
		if !candidate[pop.ID] {
			continue
		}
		pc.PainterLower++
		painterPoPs[pop.ID] = true
		// Upper bound: the UG could reach this peering via any of its
		// ISPs that yields a policy-compliant walk; prepending exposes
		// one route per such first hop (at least one exists).
		firstHops := 0
		for _, isp := range as.Providers {
			if a.world.Graph.InCone(isp, u.ASN) { // always true; ISP is provider
				firstHops++
			}
		}
		if firstHops == 0 {
			firstHops = 1
		}
		pc.PainterUpper += firstHops
	}
	pc.PainterPoPs = len(painterPoPs)
	return pc, nil
}

// AvoidanceFractions computes Fig. 11b for one UG: the maximum fraction
// of intermediate ASes on the UG's default (anycast) path that each
// approach can avoid by switching paths.
func (a *Analyzer) AvoidanceFractions(u usergroup.UG) (painter, sdwan float64, err error) {
	defaultPath := a.defaultPathASes(u.ASN)
	if len(defaultPath) == 0 {
		// Degenerate: the UG's provider is the ingress neighbor itself;
		// nothing to avoid, both approaches trivially avoid "all" of it.
		return 1, 1, nil
	}

	as := a.world.Graph.AS(u.ASN)
	compliant, err := a.world.PolicyCompliant(u.ASN)
	if err != nil {
		return 0, 0, err
	}

	// PAINTER alternatives: for each policy-compliant peering, the
	// shortest valley-free walk's AS set (approximated by the up-chain
	// through each ISP to the peering neighbor).
	best := 0.0
	for ing := range compliant {
		neighbor := a.world.Deploy.Peering(ing).PeerASN
		for _, isp := range as.Providers {
			alt := a.altPathASes(isp, neighbor)
			if alt == nil {
				continue
			}
			if f := avoidFrac(defaultPath, alt); f > best {
				best = f
			}
		}
		if best == 1 {
			break
		}
	}
	painter = best

	// SD-WAN alternatives: one per ISP, entering wherever that ISP's
	// default route enters.
	best = 0.0
	for _, isp := range as.Providers {
		r, ok := a.anycastSel[isp]
		if !ok {
			continue
		}
		alt := a.pathASesFrom(isp, r)
		if f := avoidFrac(defaultPath, alt); f > best {
			best = f
		}
	}
	sdwan = best
	return painter, sdwan, nil
}

// defaultPathASes walks the anycast Via-chain from the UG's AS to the
// injection neighbor, returning intermediate ASes (excluding the UG).
func (a *Analyzer) defaultPathASes(asn topology.ASN) map[topology.ASN]bool {
	out := make(map[topology.ASN]bool)
	cur := asn
	for i := 0; i < 64; i++ {
		r, ok := a.anycastSel[cur]
		if !ok {
			break
		}
		if r.Via == cur { // injection point
			out[cur] = true
			break
		}
		if cur != asn {
			out[cur] = true
		}
		cur = r.Via
	}
	delete(out, asn)
	return out
}

// pathASesFrom collects the Via-chain AS set starting at asn (inclusive)
// under the anycast selection.
func (a *Analyzer) pathASesFrom(asn topology.ASN, start bgp.Route) map[topology.ASN]bool {
	out := map[topology.ASN]bool{asn: true}
	cur := asn
	r := start
	for i := 0; i < 64; i++ {
		if r.Via == cur {
			break
		}
		cur = r.Via
		out[cur] = true
		var ok bool
		r, ok = a.anycastSel[cur]
		if !ok {
			break
		}
	}
	return out
}

// altPathASes returns the AS set of the shortest up-walk from isp to the
// peering neighbor (isp's transitive provider chain until reaching an
// ancestor of the neighbor, then down). Nil when no such walk exists.
func (a *Analyzer) altPathASes(isp, neighbor topology.ASN) map[topology.ASN]bool {
	// BFS up from isp until hitting neighbor or an AS with neighbor in
	// its customer cone.
	type node struct {
		asn  topology.ASN
		prev int
	}
	nodes := []node{{isp, -1}}
	seen := map[topology.ASN]bool{isp: true}
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if n.asn == neighbor || a.world.Graph.InCone(n.asn, neighbor) {
			// Reconstruct the up-walk; the down-walk to the neighbor adds
			// ASes we approximate by the neighbor itself (its providers
			// carry the route internally).
			out := map[topology.ASN]bool{neighbor: true}
			for j := i; j != -1; j = nodes[j].prev {
				out[nodes[j].asn] = true
			}
			delete(out, isp) // the first hop ISP is the enterprise's own choice
			out[isp] = true  // but it is still on the path
			return out
		}
		for _, p := range a.world.Graph.AS(n.asn).Providers {
			if !seen[p] {
				seen[p] = true
				nodes = append(nodes, node{p, i})
			}
		}
	}
	return nil
}

// avoidFrac returns |default \ alt| / |default|.
func avoidFrac(def, alt map[topology.ASN]bool) float64 {
	if len(def) == 0 {
		return 1
	}
	avoided := 0
	for asn := range def {
		if !alt[asn] {
			avoided++
		}
	}
	return float64(avoided) / float64(len(def))
}
