package sdwan

import (
	"testing"

	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

func testAnalyzer(t *testing.T) (*Analyzer, *usergroup.Set, *netsim.World) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 25, Tier1: 4, Tier2: 28, Stubs: 250,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.4, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{Name: "t", PoPMetros: 14, PeerFrac: 0.8, TransitProviders: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	w, err := netsim.New(g, d, 91)
	if err != nil {
		t.Fatal(err)
	}
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(w, ugs)
	if err != nil {
		t.Fatal(err)
	}
	return a, ugs, w
}

func TestCountsBasicInvariants(t *testing.T) {
	a, ugs, w := testAnalyzer(t)
	painterWins, total := 0, 0
	for _, u := range ugs.UGs {
		pc, err := a.Counts(u)
		if err != nil {
			t.Fatal(err)
		}
		deg := len(w.Graph.AS(u.ASN).Providers)
		if pc.SDWAN != deg {
			t.Fatalf("UG %d SDWAN paths = %d, want provider count %d", u.ID, pc.SDWAN, deg)
		}
		if pc.PainterUpper < pc.PainterLower {
			t.Fatalf("upper %d < lower %d", pc.PainterUpper, pc.PainterLower)
		}
		if pc.SDWANPoPs > pc.SDWAN {
			t.Fatalf("SD-WAN PoPs %d exceed paths %d", pc.SDWANPoPs, pc.SDWAN)
		}
		if pc.PainterPoPs > pc.PainterLower {
			t.Fatalf("PAINTER PoPs %d exceed peerings %d", pc.PainterPoPs, pc.PainterLower)
		}
		total++
		if pc.PainterLower > pc.SDWAN {
			painterWins++
		}
	}
	// The headline claim: PAINTER exposes more paths for most UGs.
	if frac := float64(painterWins) / float64(total); frac < 0.7 {
		t.Errorf("PAINTER exposes more paths for only %.0f%% of UGs, want most", frac*100)
	}
}

func TestPainterExposesSubstantiallyMorePaths(t *testing.T) {
	a, ugs, _ := testAnalyzer(t)
	var diffs []float64
	for _, u := range ugs.UGs {
		pc, err := a.Counts(u)
		if err != nil {
			t.Fatal(err)
		}
		diffs = append(diffs, float64(pc.PainterLower-pc.SDWAN))
	}
	// Median difference should be clearly positive (paper: ≥23 at Azure
	// scale; our deployment is smaller, so demand a smaller gap).
	n := 0
	for _, d := range diffs {
		if d >= 3 {
			n++
		}
	}
	if frac := float64(n) / float64(len(diffs)); frac < 0.5 {
		t.Errorf("only %.0f%% of UGs gain >=3 paths; deployment too sparse?", frac*100)
	}
}

func TestAvoidanceFractions(t *testing.T) {
	a, ugs, _ := testAnalyzer(t)
	var pFull, sFull, total float64
	for _, u := range ugs.UGs {
		p, s, err := a.AvoidanceFractions(u)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 || s < 0 || s > 1 {
			t.Fatalf("fractions out of range: %v / %v", p, s)
		}
		if p+1e-9 < s {
			// PAINTER's alternatives are a superset in our model, so it
			// should never avoid less... except path approximations; allow
			// rare small inversions.
			if s-p > 0.34 {
				t.Errorf("UG %d: SD-WAN avoids %.2f, PAINTER only %.2f", u.ID, s, p)
			}
		}
		if p == 1 {
			pFull++
		}
		if s == 1 {
			sFull++
		}
		total++
	}
	// Headline: PAINTER avoids ALL default-path ASes for more UGs than
	// SD-WAN (paper: 90.7% vs 69.5%).
	if pFull <= sFull {
		t.Errorf("PAINTER full-avoidance count (%v) should exceed SD-WAN's (%v)", pFull, sFull)
	}
	if pFull/total < 0.5 {
		t.Errorf("PAINTER avoids all default ASes for only %.0f%% of UGs", 100*pFull/total)
	}
}

func TestCountsUnknownAS(t *testing.T) {
	a, _, _ := testAnalyzer(t)
	if _, err := a.Counts(usergroup.UG{ASN: 999999, Metro: "nyc"}); err == nil {
		t.Error("unknown AS should fail")
	}
}
