package chaos

import (
	"fmt"

	"painter/internal/bgp"
	"painter/internal/topology"
)

// CheckValleyFree verifies that a propagation result respects
// Gao–Rexford export rules, by local consistency at every AS:
//
//   - a customer-class route was learned from a customer that itself
//     selected a customer-class route (routes climb provider chains);
//   - a peer-class route was learned from a peer holding a
//     customer-class route (one peer hop, never re-exported upward);
//   - a provider-class route was learned from a provider (descent may
//     follow any class);
//   - path lengths decrease by exactly one per hop, so every via chain
//     terminates at an injection in PathLen steps.
//
// Injection-neighbor routes (Via == self) must match an injection's
// ingress, class, and prepended path length. Each local check holding at
// every AS implies, inductively on PathLen, that every selected route
// corresponds to a valley-free path into the cloud.
func CheckValleyFree(g *topology.Graph, injections []bgp.Injection, sel map[topology.ASN]bgp.Route) error {
	injAt := make(map[topology.ASN][]bgp.Injection, len(injections))
	for _, inj := range injections {
		injAt[inj.Neighbor] = append(injAt[inj.Neighbor], inj)
	}
	for as, r := range sel {
		if r.PathLen < 1 {
			return fmt.Errorf("chaos: AS %v has non-positive path length %d", as, r.PathLen)
		}
		if r.Via == as {
			ok := false
			for _, inj := range injAt[as] {
				if inj.Ingress == r.Ingress && inj.Class == r.Class && 1+inj.Prepend == r.PathLen {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("chaos: AS %v claims injection route %+v but no matching injection exists", as, r)
			}
			continue
		}
		rv, ok := sel[r.Via]
		if !ok {
			return fmt.Errorf("chaos: AS %v learned via %v, which selected no route", as, r.Via)
		}
		if rv.Ingress != r.Ingress {
			return fmt.Errorf("chaos: AS %v (ingress %d) learned via %v (ingress %d): ingress changed mid-path",
				as, r.Ingress, r.Via, rv.Ingress)
		}
		if rv.PathLen != r.PathLen-1 {
			return fmt.Errorf("chaos: AS %v path length %d but via %v has %d (want %d)",
				as, r.PathLen, r.Via, rv.PathLen, r.PathLen-1)
		}
		a := g.AS(as)
		if a == nil {
			return fmt.Errorf("chaos: AS %v not in topology", as)
		}
		switch r.Class {
		case bgp.ClassCustomer:
			if !containsASN(a.Customers, r.Via) {
				return fmt.Errorf("chaos: AS %v holds a customer route via %v, not a customer", as, r.Via)
			}
			if rv.Class != bgp.ClassCustomer {
				return fmt.Errorf("chaos: AS %v customer route via %v whose own route is %v (valley!)",
					as, r.Via, rv.Class)
			}
		case bgp.ClassPeer:
			if !containsASN(a.Peers, r.Via) {
				return fmt.Errorf("chaos: AS %v holds a peer route via %v, not a peer", as, r.Via)
			}
			if rv.Class != bgp.ClassCustomer {
				return fmt.Errorf("chaos: AS %v peer route via %v whose own route is %v (valley!)",
					as, r.Via, rv.Class)
			}
		case bgp.ClassProvider:
			if !containsASN(a.Providers, r.Via) {
				return fmt.Errorf("chaos: AS %v holds a provider route via %v, not a provider", as, r.Via)
			}
		default:
			return fmt.Errorf("chaos: AS %v has invalid route class %v", as, r.Class)
		}
	}
	return nil
}

func containsASN(list []topology.ASN, n topology.ASN) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}
