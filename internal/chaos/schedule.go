package chaos

import (
	"fmt"
	"sort"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/topology"
)

// rng is a self-contained splitmix64 generator: fully deterministic
// across runs, platforms, and Go releases (unlike math/rand's default
// source, whose stream is only promised per major version).
type rng struct{ s uint64 }

func newRNG(seed int64) *rng { return &rng{s: uint64(seed) ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// ScheduledEvent is one world event pinned to a schedule tick.
type ScheduledEvent struct {
	Tick int
	Ev   netsim.Event
}

// Schedule is an ordered fault script: the engine applies all events of
// tick t before invoking the per-tick hook for t.
type Schedule []ScheduledEvent

// Kinds returns the set of distinct event kinds in the schedule.
func (s Schedule) Kinds() map[netsim.EventKind]int {
	out := make(map[netsim.EventKind]int)
	for _, se := range s {
		out[se.Ev.Kind]++
	}
	return out
}

// sortStable orders the schedule by tick, preserving within-tick
// insertion order (generation order is part of the deterministic
// contract).
func (s Schedule) sortStable() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Tick < s[j].Tick })
}

// GenConfig tunes randomized schedule generation. All probabilities are
// per tick.
type GenConfig struct {
	Seed  int64
	Ticks int

	// PeeringFailProb fails one random live peering; it recovers after
	// 1..MaxOutageTicks ticks.
	PeeringFailProb float64
	// PoPOutageProb fails one random healthy PoP (all its peerings).
	PoPOutageProb float64
	// StormProb triggers a withdrawal storm: StormSize live peerings
	// withdrawn at once, all recovering StormTicks later — the
	// route-churn burst steady-state propagation never sees.
	StormProb float64
	StormSize int
	// StormTicks is how long storm withdrawals last.
	StormTicks int
	// MaxOutageTicks bounds how long single-peering and PoP outages last.
	MaxOutageTicks int
	// SpikeProb adds a latency spike (up to SpikeMaxMs) on a random
	// ingress, cleared after 1..MaxOutageTicks ticks.
	SpikeProb  float64
	SpikeMaxMs float64
	// LossProb sets probe loss (up to MaxLossPct) on a random ingress,
	// cleared after 1..MaxOutageTicks ticks.
	LossProb   float64
	MaxLossPct int
	// PrefFlipProb re-rolls one random (AS, ingress) hidden preference.
	PrefFlipProb float64
	// FinalRecovery appends recoveries for everything still failed (or
	// spiked/lossy) after the last tick, so schedules end healthy.
	FinalRecovery bool
}

// DefaultGenConfig returns a schedule shape that exercises every event
// kind within a few dozen ticks.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:            seed,
		Ticks:           40,
		PeeringFailProb: 0.30,
		PoPOutageProb:   0.10,
		StormProb:       0.08,
		StormSize:       4,
		StormTicks:      3,
		MaxOutageTicks:  5,
		SpikeProb:       0.25,
		SpikeMaxMs:      150,
		LossProb:        0.20,
		MaxLossPct:      40,
		PrefFlipProb:    0.35,
		FinalRecovery:   true,
	}
}

// Generate builds a randomized but fully deterministic fault schedule
// against a deployment: equal (topology, deployment, config) inputs
// produce byte-identical schedules. Generated events are consistent —
// only live peerings fail, only failed ones recover — so the schedule
// can be replayed against any world built over the same deployment.
func Generate(g *topology.Graph, d *cloud.Deployment, cfg GenConfig) (Schedule, error) {
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("chaos: Ticks must be positive, got %d", cfg.Ticks)
	}
	if cfg.StormSize <= 0 {
		cfg.StormSize = 3
	}
	if cfg.StormTicks <= 0 {
		cfg.StormTicks = 2
	}
	if cfg.MaxOutageTicks <= 0 {
		cfg.MaxOutageTicks = 4
	}
	r := newRNG(cfg.Seed)
	all := d.AllPeeringIDs()
	asns := g.ASNs()
	if len(all) == 0 {
		return nil, fmt.Errorf("chaos: deployment has no peerings")
	}

	// Generation-time mirror of the overlay, so events stay consistent.
	downPeering := make(map[bgp.IngressID]bool)
	downPoP := make(map[cloud.PoPID]bool)
	spiked := make(map[bgp.IngressID]bool)
	lossy := make(map[bgp.IngressID]bool)
	// future[t] holds recovery events scheduled for tick t.
	future := make(map[int][]netsim.Event)

	var sched Schedule
	emit := func(t int, ev netsim.Event) {
		sched = append(sched, ScheduledEvent{Tick: t, Ev: ev})
	}
	livePeerings := func() []bgp.IngressID {
		out := make([]bgp.IngressID, 0, len(all))
		for _, id := range all {
			pr := d.Peering(id)
			if !downPeering[id] && !downPoP[pr.PoP] {
				out = append(out, id)
			}
		}
		return out
	}
	applyMirror := func(ev netsim.Event) {
		switch ev.Kind {
		case netsim.EventPeeringDown:
			downPeering[ev.Ingress] = true
		case netsim.EventPeeringUp:
			delete(downPeering, ev.Ingress)
		case netsim.EventPoPDown:
			downPoP[ev.PoP] = true
		case netsim.EventPoPUp:
			delete(downPoP, ev.PoP)
		case netsim.EventLatencySpike:
			if ev.Ms > 0 {
				spiked[ev.Ingress] = true
			} else {
				delete(spiked, ev.Ingress)
			}
		case netsim.EventProbeLoss:
			if ev.Pct > 0 {
				lossy[ev.Ingress] = true
			} else {
				delete(lossy, ev.Ingress)
			}
		}
	}
	schedule := func(t int, ev netsim.Event) {
		emit(t, ev)
		applyMirror(ev)
	}
	outageLen := func() int { return 1 + r.intn(cfg.MaxOutageTicks) }

	for t := 0; t < cfg.Ticks; t++ {
		// Due recoveries first: a slot freed this tick may fail again.
		for _, ev := range future[t] {
			schedule(t, ev)
		}
		delete(future, t)

		if r.float() < cfg.StormProb {
			live := livePeerings()
			n := cfg.StormSize
			if n > len(live) {
				n = len(live)
			}
			for i := 0; i < n; i++ {
				id := live[r.intn(len(live))]
				if downPeering[id] {
					continue
				}
				schedule(t, netsim.Event{Kind: netsim.EventPeeringDown, Ingress: id})
				rt := t + cfg.StormTicks
				future[rt] = append(future[rt], netsim.Event{Kind: netsim.EventPeeringUp, Ingress: id})
			}
		}
		if r.float() < cfg.PeeringFailProb {
			if live := livePeerings(); len(live) > 1 {
				id := live[r.intn(len(live))]
				schedule(t, netsim.Event{Kind: netsim.EventPeeringDown, Ingress: id})
				rt := t + outageLen()
				future[rt] = append(future[rt], netsim.Event{Kind: netsim.EventPeeringUp, Ingress: id})
			}
		}
		if r.float() < cfg.PoPOutageProb {
			var healthy []cloud.PoPID
			for _, p := range d.PoPs {
				if !downPoP[p.ID] {
					healthy = append(healthy, p.ID)
				}
			}
			// Keep at least two PoPs alive so the cloud never fully
			// vanishes mid-schedule.
			if len(healthy) > 2 {
				pop := healthy[r.intn(len(healthy))]
				schedule(t, netsim.Event{Kind: netsim.EventPoPDown, PoP: pop})
				rt := t + outageLen()
				future[rt] = append(future[rt], netsim.Event{Kind: netsim.EventPoPUp, PoP: pop})
			}
		}
		if r.float() < cfg.SpikeProb {
			id := all[r.intn(len(all))]
			if !spiked[id] {
				ms := 20 + r.float()*cfg.SpikeMaxMs
				schedule(t, netsim.Event{Kind: netsim.EventLatencySpike, Ingress: id, Ms: ms})
				rt := t + outageLen()
				future[rt] = append(future[rt], netsim.Event{Kind: netsim.EventLatencySpike, Ingress: id, Ms: 0})
			}
		}
		if r.float() < cfg.LossProb {
			id := all[r.intn(len(all))]
			if !lossy[id] {
				pct := 1 + r.intn(cfg.MaxLossPct)
				schedule(t, netsim.Event{Kind: netsim.EventProbeLoss, Ingress: id, Pct: pct})
				rt := t + outageLen()
				future[rt] = append(future[rt], netsim.Event{Kind: netsim.EventProbeLoss, Ingress: id, Pct: 0})
			}
		}
		if r.float() < cfg.PrefFlipProb {
			as := asns[r.intn(len(asns))]
			id := all[r.intn(len(all))]
			schedule(t, netsim.Event{Kind: netsim.EventPrefFlip, AS: as, Ingress: id})
		}
	}

	// Drain recoveries scheduled past the horizon, in tick order.
	var tail []int
	for t := range future {
		tail = append(tail, t)
	}
	sort.Ints(tail)
	last := cfg.Ticks - 1
	for _, t := range tail {
		at := t
		if cfg.FinalRecovery && at > last+1 {
			at = last + 1
		}
		for _, ev := range future[t] {
			schedule(at, ev)
		}
	}
	if cfg.FinalRecovery {
		for _, id := range all {
			if downPeering[id] {
				schedule(last+1, netsim.Event{Kind: netsim.EventPeeringUp, Ingress: id})
			}
		}
		for _, p := range d.PoPs {
			if downPoP[p.ID] {
				schedule(last+1, netsim.Event{Kind: netsim.EventPoPUp, PoP: p.ID})
			}
		}
	}

	sched.sortStable()
	return sched, nil
}
