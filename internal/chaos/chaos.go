// Package chaos is a deterministic, seeded fault-injection engine for
// the PAINTER simulator and Traffic Manager: it generates scripted or
// randomized event schedules (peering failures and recoveries,
// withdrawal storms, PoP outages, latency spikes, probe loss, and
// hidden-preference flips), drives them through netsim's
// ApplyEvent/Subscribe hook layer, and records a byte-serializable
// timeline so tests can assert that equal seeds produce identical
// failure histories and final route tables.
//
// The paper's core resilience claim (§6, Fig. 12/15) is that PAINTER
// reroutes around ingress failures at RTT timescales; catchment work
// (Sermpezis & Kotronis) shows the hard part is that route selection
// shifts unpredictably when announcements change. This package exists
// to exercise exactly that: correctness of cache invalidation, route
// selection, and failover under change rather than in steady state.
package chaos

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/topology"
)

// Record is one applied event, stamped with the schedule tick it ran in.
type Record struct {
	Tick int
	Ev   netsim.Event
}

// Result is one engine run: the full event timeline plus the end state.
type Result struct {
	Timeline []Record
	// FinalRoutes is the route table over all live peerings after the
	// last tick.
	FinalRoutes map[topology.ASN]bgp.Route
	// LiveAtEnd are the peerings still up after the last tick.
	LiveAtEnd []bgp.IngressID
}

// TickFunc runs after all of tick t's events have been applied. Errors
// abort the run.
type TickFunc func(tick int, w *netsim.World) error

// Run applies a schedule to a world tick by tick, invoking onTick (may
// be nil) after each tick's events, and returns the recorded timeline
// and final route table. The schedule is applied in (tick, insertion)
// order; Run does not mutate it.
func Run(w *netsim.World, d *cloud.Deployment, sched Schedule, onTick TickFunc) (*Result, error) {
	ordered := make(Schedule, len(sched))
	copy(ordered, sched)
	ordered.sortStable()

	res := &Result{}
	cur := 0
	cancel := w.Subscribe(func(ev netsim.Event) {
		res.Timeline = append(res.Timeline, Record{Tick: cur, Ev: ev})
	})
	defer cancel()

	maxTick := 0
	if len(ordered) > 0 {
		maxTick = ordered[len(ordered)-1].Tick
	}
	i := 0
	for t := 0; t <= maxTick; t++ {
		cur = t
		for i < len(ordered) && ordered[i].Tick == t {
			if err := w.ApplyEvent(ordered[i].Ev); err != nil {
				return nil, fmt.Errorf("chaos: tick %d: %w", t, err)
			}
			i++
		}
		if onTick != nil {
			if err := onTick(t, w); err != nil {
				return nil, err
			}
		}
	}

	all := d.AllPeeringIDs()
	res.LiveAtEnd = w.LiveIngresses(all)
	var err error
	res.FinalRoutes, err = w.ResolveIngress(all)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Bytes serializes the result canonically (little-endian, routes sorted
// by ASN): two runs are equivalent iff their Bytes are identical.
func (r *Result) Bytes() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }

	u32(uint32(len(r.Timeline)))
	for _, rec := range r.Timeline {
		u32(uint32(rec.Tick))
		b = append(b, byte(rec.Ev.Kind))
		u32(uint32(rec.Ev.Ingress))
		u32(uint32(rec.Ev.PoP))
		u32(uint32(rec.Ev.AS))
		u64(math.Float64bits(rec.Ev.Ms))
		u32(uint32(int32(rec.Ev.Pct)))
		u64(rec.Ev.Seq)
	}

	asns := make([]topology.ASN, 0, len(r.FinalRoutes))
	for n := range r.FinalRoutes {
		asns = append(asns, n)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	u32(uint32(len(asns)))
	for _, n := range asns {
		rt := r.FinalRoutes[n]
		u32(uint32(n))
		u32(uint32(rt.Ingress))
		u32(uint32(rt.PathLen))
		b = append(b, byte(rt.Class))
		u32(uint32(rt.Via))
	}

	u32(uint32(len(r.LiveAtEnd)))
	for _, id := range r.LiveAtEnd {
		u32(uint32(id))
	}
	return b
}
