package tmchaos

import "testing"

// TestNATRebindFlowsRehome: every injected NAT mapping reset must
// re-home (not orphan) the PoP's Known Flows entries, and end-to-end
// delivery must continue through the rebuilt mappings — in particular
// after the final rebind, proving return traffic follows the new outer
// address instead of blackholing to the stale one.
func TestNATRebindFlowsRehome(t *testing.T) {
	cfg := DefaultNATRebindConfig()
	res, err := RunNATRebind(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MappingsDropped < cfg.Rebinds {
		t.Errorf("MappingsDropped = %d, want >= %d (one per rebind)", res.MappingsDropped, cfg.Rebinds)
	}
	// Each rebind presents every flow from a new outer port; each must
	// re-home exactly once per rebind (a lost first-round packet defers
	// the move to the second round, never skips it).
	wantMoves := uint64(cfg.Flows * cfg.Rebinds)
	if res.FlowMoves < wantMoves*9/10 {
		t.Errorf("FlowMoves = %d, want >= %d", res.FlowMoves, wantMoves*9/10)
	}
	if res.DroppedReplies != 0 {
		t.Errorf("DroppedReplies = %d: rebinds orphaned flow entries", res.DroppedReplies)
	}
	if res.RcvdAfterLastRebind < int64(cfg.Flows) {
		t.Errorf("only %d echoes delivered after the final rebind, want >= %d (a full round)",
			res.RcvdAfterLastRebind, cfg.Flows)
	}
	if res.DeliveredPct < 90 {
		t.Errorf("delivered %.1f%% of echoes across rebinds, want >= 90%%", res.DeliveredPct)
	}
}
