// Package tmchaos holds chaos scenarios that fault the *running*
// Traffic Manager datapath (real sockets over emulated links), as
// opposed to package chaos, which faults the simulated routing world.
// It is a separate package because tm's own tests import chaos for
// schedule/invariant helpers.
package tmchaos

// NAT-rebinding chaos for the Traffic Manager datapath. A NAT device
// between an edge and a PoP can silently rebuild its port mappings
// (reboot, conntrack flush, CGN churn): the same inner flows suddenly
// arrive at the PoP from brand-new outer source ports. The PoP's Known
// Flows table keys NAT state by the *inner* FlowKey precisely so this is
// survivable — the entry re-homes to the new outer address and return
// traffic follows it immediately instead of blackholing to the stale
// one. This scenario drives a real edge↔PoP pair over an emul.Link,
// injects mapping resets with Link.Rebind, and measures whether that
// contract holds: flows re-home, echoes keep flowing, nothing is
// misdelivered.

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"painter/internal/netsim/emul"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

// NATRebindConfig parameterizes one NAT-rebind run.
type NATRebindConfig struct {
	// Flows is the number of concurrent client flows kept active across
	// the rebinds.
	Flows int
	// Rebinds is how many NAT mapping resets to inject.
	Rebinds int
	// Settle is how long to keep traffic flowing after each rebind before
	// sampling (must exceed one link RTT so re-homed echoes can land).
	Settle time.Duration
	// LinkDelay is the emulated one-way delay edge↔PoP.
	LinkDelay time.Duration
	// ProbeInterval is the edge's probe cadence.
	ProbeInterval time.Duration
}

// DefaultNATRebindConfig returns a configuration sized for CI: enough
// flows to exercise every stripe of the sharded table, small enough to
// finish in a few seconds.
func DefaultNATRebindConfig() NATRebindConfig {
	return NATRebindConfig{
		Flows:         64,
		Rebinds:       3,
		Settle:        250 * time.Millisecond,
		LinkDelay:     2 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
	}
}

// NATRebindResult is the measured outcome of one run.
type NATRebindResult struct {
	Flows   int `json:"flows"`
	Rebinds int `json:"rebinds"`
	// MappingsDropped is the total upstream mappings the link tore down
	// across all rebinds.
	MappingsDropped int `json:"mappings_dropped"`
	// FlowMoves is the PoP's count of Known Flows entries re-homed to a
	// new edge address. A correct run re-homes (close to) every flow on
	// every rebind.
	FlowMoves uint64 `json:"flow_moves"`
	// EchoesSent / EchoesRcvd measure end-to-end delivery across the
	// whole run, including the rebind windows.
	EchoesSent int   `json:"echoes_sent"`
	EchoesRcvd int64 `json:"echoes_rcvd"`
	// RcvdAfterLastRebind counts echoes delivered after the final rebind
	// — proof that return traffic followed the re-homed mappings rather
	// than the stale ones.
	RcvdAfterLastRebind int64 `json:"rcvd_after_last_rebind"`
	// DroppedReplies is the PoP's count of replies with no live flow
	// entry; rebinds must not orphan entries.
	DroppedReplies uint64 `json:"dropped_replies"`
	// DeliveredPct is EchoesRcvd/EchoesSent in percent.
	DeliveredPct float64 `json:"delivered_pct"`
}

// RunNATRebind executes the scenario and returns measurements. It is
// used both by the chaos tests and by painter-bench -exp datapath.
func RunNATRebind(cfg NATRebindConfig) (*NATRebindResult, error) {
	if cfg.Flows <= 0 || cfg.Rebinds <= 0 {
		return nil, fmt.Errorf("chaos: nat-rebind needs flows and rebinds > 0")
	}
	pop, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		return nil, err
	}
	defer pop.Close()
	link, err := emul.NewLink(pop.Addr(), cfg.LinkDelay, 11)
	if err != nil {
		return nil, err
	}
	defer link.Close()
	ap, err := netip.ParseAddrPort(link.Addr())
	if err != nil {
		return nil, err
	}

	var rcvd atomic.Int64
	ecfg := tm.DefaultEdgeConfig()
	ecfg.ProbeInterval = cfg.ProbeInterval
	ecfg.MinFailureTimeout = 20 * cfg.ProbeInterval // rebind loss is not PoP failure
	ecfg.Destinations = []tmproto.Destination{{Addr: ap.Addr(), Port: ap.Port(), PoP: 1}}
	ecfg.OnReturn = func(tmproto.FlowKey, []byte) { rcvd.Add(1) }
	edge, err := tm.NewEdge(ecfg)
	if err != nil {
		return nil, err
	}
	defer edge.Close()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := edge.Selected(); !ok {
		return nil, fmt.Errorf("chaos: nat-rebind: destination never came alive")
	}

	res := &NATRebindResult{Flows: cfg.Flows, Rebinds: cfg.Rebinds}
	keys := make([]tmproto.FlowKey, cfg.Flows)
	for i := range keys {
		keys[i] = tmproto.FlowKey{
			Proto:   17,
			Src:     netip.MustParseAddr("10.0.0.5"),
			Dst:     netip.MustParseAddr("203.0.113.9"),
			SrcPort: uint16(20000 + i),
			DstPort: 443,
		}
	}
	sendRound := func() {
		for _, k := range keys {
			if err := edge.Send(k, []byte("nat")); err == nil {
				res.EchoesSent++
			}
		}
	}
	waitRcvd := func(want int64, d time.Duration) {
		dl := time.Now().Add(d)
		for time.Now().Before(dl) && rcvd.Load() < want {
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Seed the Known Flows table and let the first round land.
	sendRound()
	waitRcvd(int64(res.EchoesSent), cfg.Settle)

	var afterLastBase int64
	for r := 0; r < cfg.Rebinds; r++ {
		res.MappingsDropped += link.Rebind()
		afterLastBase = rcvd.Load()
		// Two rounds through the rebuilt mappings: the first re-homes
		// every flow, the second must already ride the new path.
		sendRound()
		sendRound()
		waitRcvd(int64(res.EchoesSent), cfg.Settle)
	}

	res.EchoesRcvd = rcvd.Load()
	res.RcvdAfterLastRebind = res.EchoesRcvd - afterLastBase
	st := pop.Stats()
	res.FlowMoves = st.FlowMoves
	res.DroppedReplies = st.DroppedReplies
	if res.EchoesSent > 0 {
		res.DeliveredPct = 100 * float64(res.EchoesRcvd) / float64(res.EchoesSent)
	}
	return res, nil
}
