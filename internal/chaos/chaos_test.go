package chaos

// Engine-level property tests: byte-identical timelines for equal seeds,
// valley-freedom after every event, cached worlds agreeing with fresh
// replays at checkpoints, and deterministic parallel Execute under
// churn.

import (
	"bytes"
	"testing"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

// testRig builds a deterministic (graph, deployment, fresh-world
// factory) triple for chaos runs.
func testRig(t *testing.T) (*topology.Graph, *cloud.Deployment, func() *netsim.World) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Seed: 11, Tier1: 3, Tier2: 12, Stubs: 80,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3,
		EnterpriseFrac: 0.35, ContentFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{
		Name: "chaos", PoPMetros: 8, PeerFrac: 0.75, TransitProviders: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *netsim.World {
		w, err := netsim.New(g, d, 41)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	return g, d, fresh
}

func TestGenerateDeterministicAndConsistent(t *testing.T) {
	g, d, _ := testRig(t)
	cfg := DefaultGenConfig(12345)
	s1, err := Generate(g, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(g, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// Different seeds must diverge.
	s3, err := Generate(g, d, DefaultGenConfig(54321))
	if err != nil {
		t.Fatal(err)
	}
	same := len(s3) == len(s1)
	if same {
		for i := range s1 {
			if s1[i] != s3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestChaosRunDeterministic is the acceptance-critical property: a
// seeded schedule with at least five event kinds, run twice on fresh
// worlds, produces byte-identical timelines and final route tables.
func TestChaosRunDeterministic(t *testing.T) {
	g, d, fresh := testRig(t)
	sched, err := Generate(g, d, DefaultGenConfig(777))
	if err != nil {
		t.Fatal(err)
	}
	kinds := sched.Kinds()
	if len(kinds) < 5 {
		t.Fatalf("schedule has only %d distinct event kinds (%v), want >= 5", len(kinds), kinds)
	}

	r1, err := Run(fresh(), d, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(fresh(), d, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Timeline) == 0 {
		t.Fatal("empty timeline")
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Fatal("two runs of the same seeded schedule produced different results")
	}
	// FinalRecovery means every peering ends live and the final routes
	// match a clean world's.
	if len(r1.LiveAtEnd) != len(d.AllPeeringIDs()) {
		t.Errorf("only %d/%d peerings live at end of FinalRecovery schedule",
			len(r1.LiveAtEnd), len(d.AllPeeringIDs()))
	}
}

// TestValleyFreeUnderChaos asserts the valley-free invariant holds after
// every tick of a chaotic schedule: selection over the surviving peering
// set always corresponds to Gao–Rexford-exportable paths.
func TestValleyFreeUnderChaos(t *testing.T) {
	g, d, fresh := testRig(t)
	sched, err := Generate(g, d, DefaultGenConfig(4242))
	if err != nil {
		t.Fatal(err)
	}
	all := d.AllPeeringIDs()
	checked := 0
	_, err = Run(fresh(), d, sched, func(tick int, w *netsim.World) error {
		live := w.LiveIngresses(all)
		if len(live) == 0 {
			return nil
		}
		sel, err := w.ResolveIngress(all)
		if err != nil {
			return err
		}
		inj, err := d.Injections(live)
		if err != nil {
			return err
		}
		checked++
		return CheckValleyFree(g, inj, sel)
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no ticks checked")
	}
}

// TestCachedWorldMatchesFreshUnderChaos replays schedule prefixes onto
// fresh worlds at checkpoints and compares every query surface with the
// long-lived cached world.
func TestCachedWorldMatchesFreshUnderChaos(t *testing.T) {
	g, d, fresh := testRig(t)
	sched, err := Generate(g, d, DefaultGenConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	all := d.AllPeeringIDs()

	// Sample a few stub ASes for the pointwise queries.
	var asns []topology.ASN
	for _, n := range g.ASNs() {
		if a := g.AS(n); a.Tier == topology.TierStub && len(a.Metros) > 0 {
			asns = append(asns, n)
			if len(asns) == 6 {
				break
			}
		}
	}

	w := fresh()
	ordered := make(Schedule, len(sched))
	copy(ordered, sched)
	ordered.sortStable()

	checkpoints := map[int]bool{
		len(ordered) / 4:     true,
		len(ordered) / 2:     true,
		3 * len(ordered) / 4: true,
		len(ordered):         true,
	}
	for i := 0; i <= len(ordered); i++ {
		if i > 0 {
			if err := w.ApplyEvent(ordered[i-1].Ev); err != nil {
				t.Fatal(err)
			}
			// Exercise the caches between events so staleness can show.
			if _, err := w.ResolveIngress(all); err != nil {
				t.Fatal(err)
			}
		}
		if !checkpoints[i] {
			continue
		}
		fw := fresh()
		for j := 0; j < i; j++ {
			if err := fw.ApplyEvent(ordered[j].Ev); err != nil {
				t.Fatal(err)
			}
		}
		a, err := w.ResolveIngress(all)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fw.ResolveIngress(all)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("checkpoint %d: selection sizes differ (%d vs %d)", i, len(a), len(b))
		}
		for n, r := range a {
			if b[n] != r {
				t.Fatalf("checkpoint %d: AS %v selects %+v cached but %+v fresh", i, n, r, b[n])
			}
		}
		for _, asn := range asns {
			metro := g.AS(asn).Metros[0]
			am, ai, aerr := w.BestIngressLatency(asn, metro)
			bm, bi, berr := fw.BestIngressLatency(asn, metro)
			if (aerr == nil) != (berr == nil) || am != bm || ai != bi {
				t.Fatalf("checkpoint %d AS %v: BestIngressLatency (%v,%v,%v) != (%v,%v,%v)",
					i, asn, am, ai, aerr, bm, bi, berr)
			}
			al, err1 := w.LatencyMs(asn, metro, all[0])
			bl, err2 := fw.LatencyMs(asn, metro, all[0])
			if (err1 == nil) != (err2 == nil) || al != bl {
				t.Fatalf("checkpoint %d AS %v: LatencyMs diverges", i, asn)
			}
			ap, err1 := w.PolicyCompliant(asn)
			bp, err2 := fw.PolicyCompliant(asn)
			if (err1 == nil) != (err2 == nil) || len(ap) != len(bp) {
				t.Fatalf("checkpoint %d AS %v: PolicyCompliant diverges", i, asn)
			}
			for id, v := range ap {
				if bp[id] != v {
					t.Fatalf("checkpoint %d AS %v ing %d: PolicyCompliant diverges", i, asn, id)
				}
			}
		}
	}
}

// TestParallelExecuteDeterministicUnderChaos runs the parallel
// per-prefix executor between chaos ticks, twice with equal seeds, and
// requires identical observation streams.
func TestParallelExecuteDeterministicUnderChaos(t *testing.T) {
	g, d, fresh := testRig(t)
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Generate(g, d, DefaultGenConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	all := d.AllPeeringIDs()
	// Two prefixes partitioning the peerings, plus one anycast-style
	// full-set prefix.
	half := len(all) / 2
	cfg := core.Config{Prefixes: [][]bgp.IngressID{all[:half], all[half:], all}}

	run := func() [][]core.Observation {
		w := fresh()
		ex := core.NewWorldExecutor(w, ugs, 2.0, 17)
		var out [][]core.Observation
		_, err := Run(w, d, sched, func(tick int, w *netsim.World) error {
			if tick%5 != 0 {
				return nil
			}
			obs, err := ex.Execute(cfg)
			if err != nil {
				return err
			}
			out = append(out, obs)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("observation wave counts differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("wave %d: %d vs %d observations", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("wave %d obs %d: %+v vs %+v", i, j, a[i][j], b[i][j])
			}
		}
	}
}
