package chaos

// Convergence property for the continuous re-solve controller: drive a
// generated fault schedule through a world with a core.Controller
// syncing every tick, and assert (a) the incrementally maintained
// config's realized benefit lands within 1% of a cold full solve on the
// post-schedule world, and (b) the whole run — timeline, final routes,
// and final config — is byte-deterministic across same-seed runs.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"painter/internal/bgp"
	"painter/internal/core"
	"painter/internal/netsim"
	"painter/internal/usergroup"
)

// ctrlConfigBytes canonically serializes an advertisement config.
func ctrlConfigBytes(cfg core.Config) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cfg.Prefixes)))
	for _, S := range cfg.Prefixes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(S)))
		for _, ing := range S {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ing))
		}
	}
	return buf
}

// runControllerUnderChaos runs one full schedule with a controller
// syncing per tick and returns the canonical bytes of (timeline + final
// config) plus the realized benefits of the controller's config and a
// cold full solve, both on the post-schedule world.
func runControllerUnderChaos(t *testing.T, seed int64) (runBytes []byte, ctrlBenefit, coldBenefit float64) {
	t.Helper()
	g, d, fresh := testRig(t)
	w := fresh()
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(w, ugs, core.ControllerParams{Solver: core.DefaultParams(5)})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()

	sched, err := Generate(g, d, DefaultGenConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, d, sched, func(tick int, w *netsim.World) error {
		_, _, err := ctrl.Sync()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := ctrl.Config()
	if err := cfg.Validate(d); err != nil {
		t.Fatalf("post-schedule config invalid: %v", err)
	}
	ctrlEval, err := core.Evaluate(w, ugs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	in, _, err := core.SimInputs(w, ugs, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.New(in, nil, core.DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	cold := o.ComputeConfigLive(func(id bgp.IngressID) bool { return !w.IngressDown(id) })
	coldEval, err := core.Evaluate(w, ugs, cold)
	if err != nil {
		t.Fatal(err)
	}

	runBytes = append(res.Bytes(), ctrlConfigBytes(cfg)...)
	return runBytes, ctrlEval.Benefit, coldEval.Benefit
}

func TestControllerConvergesUnderChaos(t *testing.T) {
	for _, seed := range []int64{20230815, 424242} {
		b1, got, want := runControllerUnderChaos(t, seed)
		// Schedules end with FinalRecovery, so the post-schedule world is
		// healthy: the controller's last syncs must have converged back to
		// within 1% of a cold full solve.
		if got < 0.99*want-1e-9 {
			t.Errorf("seed %d: controller benefit %.3f below 99%% of cold solve %.3f",
				seed, got, want)
		}
		b2, _, _ := runControllerUnderChaos(t, seed)
		if !bytes.Equal(b1, b2) {
			t.Errorf("seed %d: same-seed runs produced different timelines/configs", seed)
		}
	}
}

// TestControllerSurvivesEveryEventKind replays a schedule that is
// guaranteed to contain every kind (DefaultGenConfig exercises all) and
// asserts the controller never errors and never advertises a dead
// peering at any tick.
func TestControllerNeverAdvertisesDeadPeerings(t *testing.T) {
	g, d, fresh := testRig(t)
	w := fresh()
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(w, ugs, core.ControllerParams{Solver: core.DefaultParams(5)})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()

	sched, err := Generate(g, d, DefaultGenConfig(777))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, d, sched, func(tick int, w *netsim.World) error {
		cfg, _, err := ctrl.Sync()
		if err != nil {
			return err
		}
		for pi, S := range cfg.Prefixes {
			for _, ing := range S {
				if w.IngressDown(ing) {
					t.Errorf("tick %d: prefix %d advertises dead ingress %d", tick, pi, ing)
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
