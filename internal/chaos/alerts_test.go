package chaos

// End-to-end detection test for the history/alert pipeline: a scripted
// peering-down + PoP-down schedule shifts the anycast catchment, the
// per-tick rig (CatchmentAnalyzer → CatchmentGauges → history.Sample →
// alert.Eval) must raise the catchment-drift alert within a bounded
// number of ticks, and two same-seed runs must produce byte-identical
// alert streams and history rings — the determinism contract.

import (
	"bytes"
	"testing"
	"time"

	"painter/internal/netsim"
	"painter/internal/obs"
	"painter/internal/obs/alert"
	"painter/internal/obs/history"
	"painter/internal/usergroup"
)

// alertRun replays the schedule on a fresh world with the full detector
// rig attached and returns the chaos result plus the canonical
// encodings of the alert stream and history ring, and the tick at which
// catchment_drift first fired (-1 = never).
func alertRun(t *testing.T, sched Schedule) (res *Result, stream, ring []byte, firedTick int) {
	t.Helper()
	g, d, fresh := testRig(t)
	ugs, err := usergroup.Build(g, usergroup.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := fresh()
	ca := netsim.NewCatchmentAnalyzer(w, ugs, 0)
	defer ca.Close()
	reg := obs.NewRegistry()
	cg := netsim.NewCatchmentGauges(reg, d)
	hist := history.New(history.Config{
		Clock: history.TickClock(0, int64(time.Second)),
		Regs:  func() []*obs.Registry { return []*obs.Registry{reg} },
	})
	eng := alert.NewEngine(hist, alert.CatchmentDriftRules(0, 4, 1), alert.Options{})

	firedTick = -1
	res, err = Run(w, d, sched, func(tick int, w *netsim.World) error {
		c, err := ca.Update()
		if err != nil {
			return err
		}
		cg.Set(c)
		eng.Eval(hist.Sample())
		if firedTick < 0 {
			for _, sv := range eng.Firing() {
				if sv.Rule == "catchment_drift" {
					firedTick = tick
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.Result().Bytes(), hist.Bytes(), firedTick
}

func TestCatchmentDriftAlertEndToEnd(t *testing.T) {
	// Warm the EWMA over quiet ticks, then take down a whole PoP (the
	// largest share shift a schedule can produce) plus one extra peering
	// elsewhere, and leave ticks after for detection.
	const faultTick = 8
	_, d, _ := testRig(t)
	pop := d.PoPs[0].ID
	sched := Schedule{
		{Tick: faultTick, Ev: netsim.Event{Kind: netsim.EventPoPDown, PoP: pop}},
		{Tick: faultTick + 8, Ev: netsim.Event{Kind: netsim.EventPoPUp, PoP: pop}},
	}
	for _, p := range d.PoPs[1:] {
		ids := d.PeeringsAt(p.ID)
		if len(ids) > 0 {
			sched = append(sched,
				ScheduledEvent{Tick: faultTick, Ev: netsim.Event{Kind: netsim.EventPeeringDown, Ingress: ids[0]}},
				ScheduledEvent{Tick: faultTick + 8, Ev: netsim.Event{Kind: netsim.EventPeeringUp, Ingress: ids[0]}})
			break
		}
	}

	res1, stream1, ring1, fired1 := alertRun(t, sched)
	if fired1 < faultTick {
		t.Fatalf("catchment_drift fired at tick %d, before the fault at %d (or never)", fired1, faultTick)
	}
	const detectBound = 4
	if fired1 > faultTick+detectBound {
		t.Fatalf("catchment_drift fired at tick %d, more than %d ticks after the fault at %d",
			fired1, detectBound, faultTick)
	}

	// Same seed, fresh rig: the alert stream and history ring must be
	// byte-identical, and so must the chaos timeline.
	res2, stream2, ring2, fired2 := alertRun(t, sched)
	if fired1 != fired2 {
		t.Fatalf("detection tick diverged: %d vs %d", fired1, fired2)
	}
	if !bytes.Equal(stream1, stream2) {
		t.Fatal("alert streams diverged across same-seed runs")
	}
	if !bytes.Equal(ring1, ring2) {
		t.Fatal("history rings diverged across same-seed runs")
	}
	if !bytes.Equal(res1.Bytes(), res2.Bytes()) {
		t.Fatal("chaos results diverged across same-seed runs")
	}
	if len(stream1) == 0 {
		t.Fatal("alert stream is empty despite a firing alert")
	}
}
