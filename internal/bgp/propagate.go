// Package bgp implements the BGP machinery PAINTER depends on: a BGP-4
// wire codec, RIBs with the standard decision process, a minimal TCP
// speaker, and — most importantly for the evaluation — a whole-graph
// route propagation engine that computes, for every AS in a topology,
// which route (and therefore which cloud ingress) it selects under a
// given advertisement, following Gao–Rexford export and selection rules.
package bgp

import (
	"fmt"
	"time"

	"painter/internal/topology"
)

// IngressID identifies one cloud ingress: a specific (PoP, peer AS)
// peering at which traffic enters the cloud. The cloud package assigns
// these; the propagation engine treats them as opaque route tags.
type IngressID int32

// InvalidIngress is the zero value, never assigned to a real peering.
const InvalidIngress IngressID = -1

// RouteClass is the Gao–Rexford preference class of a learned route,
// ordered best-first: routes learned from customers are preferred over
// routes learned from peers over routes learned from providers.
type RouteClass int8

const (
	ClassCustomer RouteClass = iota // learned from a customer
	ClassPeer                       // learned from a peer
	ClassProvider                   // learned from a provider
)

func (c RouteClass) String() string {
	switch c {
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return "invalid"
	}
}

// Route is a candidate or selected route at some AS for one prefix.
type Route struct {
	// Ingress tags the cloud peering where traffic following this route
	// enters the cloud.
	Ingress IngressID
	// PathLen is the AS-path length from this AS to the origin,
	// counting the origin.
	PathLen int
	// Class is the relationship class the route was learned through.
	Class RouteClass
	// Via is the neighbor AS the route was learned from (the next hop
	// toward the cloud). For injection neighbors it is the origin.
	Via topology.ASN
}

// Better reports whether r is strictly preferred over o by the standard
// decision process prior to tie-breaking: lower class first (customer <
// peer < provider), then shorter AS path.
func (r Route) Better(o Route) bool {
	if r.Class != o.Class {
		return r.Class < o.Class
	}
	return r.PathLen < o.PathLen
}

// Injection is a point where the cloud injects an advertisement into the
// topology: the neighbor AS receiving the advertisement, the class that
// route has at the neighbor (determined by the neighbor's relationship to
// the cloud: a transit provider of the cloud learns it from a customer,
// a settlement-free peer learns it from a peer), and the ingress tag.
//
// Prepend adds that many extra copies of the cloud's ASN to the
// advertised AS path on this peering only, making the route less
// preferred wherever path length decides — the standard attribute-
// manipulation knob prior work uses to expose additional paths
// (§5.2.4's "All Policy-Compliant Paths" upper bound).
type Injection struct {
	Neighbor topology.ASN
	Class    RouteClass
	Ingress  IngressID
	Prepend  int
}

// TieBreaker chooses among routes that are tied on (class, path length).
// It returns the index of the chosen candidate. The candidates slice is
// sorted deterministically before the call, so implementations may use
// any stable rule (e.g., hidden per-AS preferences in netsim, or lowest
// ingress ID for a deterministic default).
type TieBreaker func(as topology.ASN, candidates []Route) int

// MinIngressTieBreaker picks the candidate with the lowest ingress ID,
// then lowest via ASN: a deterministic default.
func MinIngressTieBreaker(_ topology.ASN, candidates []Route) int {
	best := 0
	for i := 1; i < len(candidates); i++ {
		c, b := candidates[i], candidates[best]
		if c.Ingress < b.Ingress || (c.Ingress == b.Ingress && c.Via < b.Via) {
			best = i
		}
	}
	return best
}

// validateInjections shares input validation between the dense engine
// and the reference implementation.
func validateInjections(g *topology.Graph, injections []Injection) error {
	for _, inj := range injections {
		if !g.Has(inj.Neighbor) {
			return fmt.Errorf("bgp: injection neighbor %v not in topology", inj.Neighbor)
		}
		if inj.Ingress < 0 {
			return fmt.Errorf("bgp: invalid ingress id %d", inj.Ingress)
		}
		if inj.Prepend < 0 || inj.Prepend > 16 {
			return fmt.Errorf("bgp: prepend %d out of range [0,16]", inj.Prepend)
		}
	}
	return nil
}

// denseCand is one pending candidate route at a dense AS id. Path
// length is implied by the bucket holding the candidate and the route
// class by the propagation phase, so only 12 bytes move through the
// queue and its sorts. via is a dense id; dense ids ascend with ASN, so
// sorting by via is sorting by the neighbor's ASN.
type denseCand struct {
	as  int32
	ing int32
	via int32
}

// sortCands orders candidates by (as, ing, via) — grouping each AS's
// candidates contiguously, already in the deterministic order the
// TieBreaker contract requires. Hand-specialized (insertion sort under
// a median-of-three quicksort) because sort.Slice's reflection-based
// swapper dominated the propagation profile.
func sortCands(e []denseCand) {
	for len(e) > 12 {
		// Median-of-three pivot, moved to e[0].
		m := len(e) / 2
		lo, hi := 0, len(e)-1
		if candLess(e[m], e[lo]) {
			e[m], e[lo] = e[lo], e[m]
		}
		if candLess(e[hi], e[lo]) {
			e[hi], e[lo] = e[lo], e[hi]
		}
		if candLess(e[hi], e[m]) {
			e[hi], e[m] = e[m], e[hi]
		}
		e[0], e[m] = e[m], e[0]
		p := e[0]
		i, j := 1, len(e)-1
		for {
			for i <= j && candLess(e[i], p) {
				i++
			}
			for i <= j && candLess(p, e[j]) {
				j--
			}
			if i > j {
				break
			}
			e[i], e[j] = e[j], e[i]
			i++
			j--
		}
		e[0], e[j] = e[j], e[0]
		// Recurse on the smaller half, loop on the larger.
		if j < len(e)-j-1 {
			sortCands(e[:j])
			e = e[j+1:]
		} else {
			sortCands(e[j+1:])
			e = e[:j]
		}
	}
	for i := 1; i < len(e); i++ {
		for k := i; k > 0 && candLess(e[k], e[k-1]); k-- {
			e[k], e[k-1] = e[k-1], e[k]
		}
	}
}

func candLess(a, b denseCand) bool {
	if a.as != b.as {
		return a.as < b.as
	}
	if a.ing != b.ing {
		return a.ing < b.ing
	}
	return a.via < b.via
}

// bucketQueue holds pending candidates bucketed by path length, the
// dense replacement for the reference engine's map[int]map[ASN][]Route
// level maps. Buckets grow on demand and backing arrays are reused
// across phases; each bucket is processed exactly once.
type bucketQueue struct {
	buckets [][]denseCand
}

func (q *bucketQueue) add(pathLen int, c denseCand) {
	for len(q.buckets) <= pathLen {
		if len(q.buckets) < cap(q.buckets) {
			// Re-extend over a retained bucket, keeping its capacity.
			q.buckets = q.buckets[:len(q.buckets)+1]
			q.buckets[len(q.buckets)-1] = q.buckets[len(q.buckets)-1][:0]
		} else {
			q.buckets = append(q.buckets, nil)
		}
	}
	q.buckets[pathLen] = append(q.buckets[pathLen], c)
}

// reset empties the queue for the next phase, retaining backing arrays.
func (q *bucketQueue) reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.buckets = q.buckets[:0]
}

// Propagate computes the route every AS selects for one prefix announced
// via the given injections, honoring valley-free export rules:
//
//   - customer-learned routes are exported to providers, peers, and
//     customers;
//   - peer-learned and provider-learned routes are exported only to
//     customers.
//
// Selection is class-first, then shortest path, then the tie-breaker.
// The returned map contains an entry for every AS that has any route.
//
// The engine runs the classic three-phase BFS (up the customer
// hierarchy, across one peer hop, down to customers) over the graph's
// dense index: selection state lives in flat arrays indexed by dense AS
// id, and pending candidates sit in a bucket queue keyed by path length.
// PropagateReference is the retained map-based original; the two select
// identical routes under any tie-breaker (see the differential tests).
func Propagate(g *topology.Graph, injections []Injection, tb TieBreaker) (map[topology.ASN]Route, error) {
	res, err := PropagateResult(g, injections, tb)
	if err != nil {
		return nil, err
	}
	return res.selectionMap(), nil
}

// PropagateResult runs the same engine but retains the dense selection
// state as a *Result, the warm base PropagateDelta repairs after small
// input changes instead of re-propagating the whole graph.
func PropagateResult(g *topology.Graph, injections []Injection, tb TieBreaker) (*Result, error) {
	if tb == nil {
		tb = MinIngressTieBreaker
	}
	if err := validateInjections(g, injections); err != nil {
		return nil, err
	}

	// Instrumentation is one pointer load when disabled; candidate and
	// bucket accounting below is per-bucket and only when m != nil.
	var m *propagateMetrics
	var start time.Time
	var cands, maxBucket int
	if obsEnabled {
		if m = propObs.Load(); m != nil {
			start = time.Now()
		}
	}

	idx := g.Index()
	n := idx.Len()
	sel := make([]Route, n)
	settled := make([]bool, n)
	settledCount := 0

	// scratch collects one AS's tied candidates for the tie-breaker; it
	// is reused across every settle to keep the engine allocation-free
	// on the hot path.
	scratch := make([]Route, 0, 16)

	// settleBucket settles every not-yet-settled AS that has candidates
	// in ents, all of which share pathLen (the bucket key) and class
	// (the phase). One sortCands per bucket groups each AS's candidates
	// contiguously, already in the deterministic (ingress, via) order
	// the TieBreaker contract requires; the group IS the tied-candidate
	// set. export (optional) is invoked once per newly settled AS.
	settleBucket := func(ents []denseCand, pathLen int, class RouteClass, export func(as int32, r Route)) {
		if len(ents) == 0 {
			return
		}
		sortCands(ents)
		for s := 0; s < len(ents); {
			e := s
			for e < len(ents) && ents[e].as == ents[s].as {
				e++
			}
			as := ents[s].as
			if !settled[as] {
				scratch = scratch[:0]
				for k := s; k < e; k++ {
					scratch = append(scratch, Route{
						Ingress: IngressID(ents[k].ing),
						PathLen: pathLen,
						Class:   class,
						Via:     idx.ASN(ents[k].via),
					})
				}
				r := scratch[tb(idx.ASN(as), scratch)]
				sel[as] = r
				settled[as] = true
				settledCount++
				if export != nil {
					export(as, r)
				}
			}
			s = e
		}
	}

	// --- Phase 1: customer routes propagate up provider chains.
	var q bucketQueue
	for _, inj := range injections {
		if inj.Class != ClassCustomer {
			continue
		}
		ni, _ := idx.ID(inj.Neighbor)
		q.add(1+inj.Prepend, denseCand{as: ni, ing: int32(inj.Ingress), via: ni})
	}
	exportUp := func(as int32, r Route) {
		for _, p := range idx.Providers(as) {
			if !settled[p] {
				q.add(r.PathLen+1, denseCand{as: p, ing: int32(r.Ingress), via: as})
			}
		}
	}
	for l := 1; l < len(q.buckets); l++ {
		if m != nil && len(q.buckets[l]) > 0 {
			cands += len(q.buckets[l])
			maxBucket = l
		}
		settleBucket(q.buckets[l], l, ClassCustomer, exportUp)
		q.buckets[l] = q.buckets[l][:0]
	}

	// --- Phase 2: one hop across peer links. Sources: all ASes settled
	// with a customer route, plus direct peer injections. No further
	// export, so all candidates are enqueued before any settling; the
	// ascending bucket scan realizes the settle-at-min-path-length rule.
	q.reset()
	for _, inj := range injections {
		if inj.Class != ClassPeer {
			continue
		}
		ni, _ := idx.ID(inj.Neighbor)
		if settled[ni] {
			continue
		}
		q.add(1+inj.Prepend, denseCand{as: ni, ing: int32(inj.Ingress), via: ni})
	}
	for as := int32(0); as < int32(n); as++ {
		if !settled[as] || sel[as].Class != ClassCustomer {
			continue
		}
		r := sel[as]
		for _, p := range idx.Peers(as) {
			if !settled[p] {
				q.add(r.PathLen+1, denseCand{as: p, ing: int32(r.Ingress), via: as})
			}
		}
	}
	for l := 1; l < len(q.buckets); l++ {
		if m != nil && len(q.buckets[l]) > 0 {
			cands += len(q.buckets[l])
			if l > maxBucket {
				maxBucket = l
			}
		}
		settleBucket(q.buckets[l], l, ClassPeer, nil)
		q.buckets[l] = q.buckets[l][:0]
	}

	// --- Phase 3: routes propagate down provider→customer edges,
	// Dijkstra-like by path length via the bucket queue. Sources are all
	// settled ASes plus provider-class injections.
	q.reset()
	for _, inj := range injections {
		if inj.Class != ClassProvider {
			continue
		}
		ni, _ := idx.ID(inj.Neighbor)
		if settled[ni] {
			continue
		}
		q.add(1+inj.Prepend, denseCand{as: ni, ing: int32(inj.Ingress), via: ni})
	}
	exportDown := func(as int32, r Route) {
		for _, c := range idx.Customers(as) {
			if !settled[c] {
				q.add(r.PathLen+1, denseCand{as: c, ing: int32(r.Ingress), via: as})
			}
		}
	}
	for as := int32(0); as < int32(n); as++ {
		if settled[as] {
			exportDown(as, sel[as])
		}
	}
	for l := 1; l < len(q.buckets); l++ {
		if m != nil && len(q.buckets[l]) > 0 {
			cands += len(q.buckets[l])
			if l > maxBucket {
				maxBucket = l
			}
		}
		settleBucket(q.buckets[l], l, ClassProvider, exportDown)
		q.buckets[l] = q.buckets[l][:0]
	}

	if m != nil {
		m.total.Inc()
		m.seconds.Observe(time.Since(start).Seconds())
		m.candidates.Observe(float64(cands))
		m.buckets.Observe(float64(maxBucket))
		m.settled.Observe(float64(settledCount))
	}
	return &Result{
		idx:          idx,
		sel:          sel,
		settled:      settled,
		settledCount: settledCount,
		inj:          append([]Injection(nil), injections...),
	}, nil
}

// ReachableIngresses computes, for one AS, the set of ingresses it could
// possibly use across ALL policy-compliant paths (not just the selected
// one): for each injection, the AS can reach that ingress if a valley-
// free path exists from the AS to the injection neighbor. This is the
// "all policy-compliant ingresses" set of §3.1 and §5.2.4, used both for
// modeling (Eq. 2's expectation) and for path-diversity counting.
//
// A valley-free path from source AS s to neighbor n (then into the cloud)
// exists iff: n is reachable from s by an up*(peer?)down* walk. We compute
// it per injection by checking: (a) s is in the customer cone of n
// (pure down from n = pure up from s), or (b) s can go up to some AS x
// that peers with an AS y that has n in its customer cone, or (c) s can
// go up to an AS that has n in its customer cone.
//
// The walk runs over the graph's dense index with flat visited arrays
// (an epoch stamp avoids reallocating between injections).
func ReachableIngresses(g *topology.Graph, src topology.ASN, injections []Injection) map[IngressID]bool {
	out := make(map[IngressID]bool)
	idx := g.Index()
	s, ok := idx.ID(src)
	if !ok {
		return out
	}
	n := idx.Len()

	// inUp: src and every AS reachable from src following provider links.
	// inPeer: ASes adjacent via one peer hop from any AS in inUp.
	inUp := make([]bool, n)
	inPeer := make([]bool, n)
	stack := make([]int32, 0, 64)
	stack = append(stack, s)
	inUp[s] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range idx.Providers(cur) {
			if !inUp[p] {
				inUp[p] = true
				stack = append(stack, p)
			}
		}
	}
	for x := int32(0); x < int32(n); x++ {
		if !inUp[x] {
			continue
		}
		for _, p := range idx.Peers(x) {
			inPeer[p] = true
		}
	}

	// seen is epoch-stamped so the per-injection cone BFS reuses it.
	seen := make([]int32, n)
	epoch := int32(0)

	for _, inj := range injections {
		if out[inj.Ingress] {
			continue
		}
		ni, _ := idx.ID(inj.Neighbor)
		// The traffic direction is src -> n -> cloud. Export rules
		// constrain which ASes ever HEAR the route:
		//   - customer-class injections (n is cloud's transit provider)
		//     propagate everywhere;
		//   - peer/provider-class injections propagate only down n's
		//     customer cone.
		switch inj.Class {
		case ClassCustomer:
			// Any AS with a valley-free walk to n can use it: n in inUp
			// (straight up), n in inPeer (up then one peer hop), or some
			// transitive provider of n in inUp∪inPeer (up, maybe peer,
			// then down into n). The last case BFSes up from n.
			if inUp[ni] || inPeer[ni] {
				out[inj.Ingress] = true
				continue
			}
			epoch++
			stack = stack[:0]
			stack = append(stack, ni)
			seen[ni] = epoch
			found := false
			for len(stack) > 0 && !found {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if inUp[cur] || inPeer[cur] {
					found = true
					break
				}
				for _, p := range idx.Providers(cur) {
					if seen[p] != epoch {
						seen[p] = epoch
						stack = append(stack, p)
					}
				}
			}
			if found {
				out[inj.Ingress] = true
			}
		default:
			// Peer- and provider-class routes are exported only to
			// customers, so the route is heard exactly by n and n's
			// customer cone; src is in that cone iff n is src itself or
			// one of src's transitive providers — i.e., n ∈ inUp.
			if inUp[ni] {
				out[inj.Ingress] = true
			}
		}
	}
	return out
}
