// Package bgp implements the BGP machinery PAINTER depends on: a BGP-4
// wire codec, RIBs with the standard decision process, a minimal TCP
// speaker, and — most importantly for the evaluation — a whole-graph
// route propagation engine that computes, for every AS in a topology,
// which route (and therefore which cloud ingress) it selects under a
// given advertisement, following Gao–Rexford export and selection rules.
package bgp

import (
	"fmt"
	"sort"

	"painter/internal/topology"
)

// IngressID identifies one cloud ingress: a specific (PoP, peer AS)
// peering at which traffic enters the cloud. The cloud package assigns
// these; the propagation engine treats them as opaque route tags.
type IngressID int32

// InvalidIngress is the zero value, never assigned to a real peering.
const InvalidIngress IngressID = -1

// RouteClass is the Gao–Rexford preference class of a learned route,
// ordered best-first: routes learned from customers are preferred over
// routes learned from peers over routes learned from providers.
type RouteClass int8

const (
	ClassCustomer RouteClass = iota // learned from a customer
	ClassPeer                       // learned from a peer
	ClassProvider                   // learned from a provider
)

func (c RouteClass) String() string {
	switch c {
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return "invalid"
	}
}

// Route is a candidate or selected route at some AS for one prefix.
type Route struct {
	// Ingress tags the cloud peering where traffic following this route
	// enters the cloud.
	Ingress IngressID
	// PathLen is the AS-path length from this AS to the origin,
	// counting the origin.
	PathLen int
	// Class is the relationship class the route was learned through.
	Class RouteClass
	// Via is the neighbor AS the route was learned from (the next hop
	// toward the cloud). For injection neighbors it is the origin.
	Via topology.ASN
}

// Better reports whether r is strictly preferred over o by the standard
// decision process prior to tie-breaking: lower class first (customer <
// peer < provider), then shorter AS path.
func (r Route) Better(o Route) bool {
	if r.Class != o.Class {
		return r.Class < o.Class
	}
	return r.PathLen < o.PathLen
}

// Injection is a point where the cloud injects an advertisement into the
// topology: the neighbor AS receiving the advertisement, the class that
// route has at the neighbor (determined by the neighbor's relationship to
// the cloud: a transit provider of the cloud learns it from a customer,
// a settlement-free peer learns it from a peer), and the ingress tag.
//
// Prepend adds that many extra copies of the cloud's ASN to the
// advertised AS path on this peering only, making the route less
// preferred wherever path length decides — the standard attribute-
// manipulation knob prior work uses to expose additional paths
// (§5.2.4's "All Policy-Compliant Paths" upper bound).
type Injection struct {
	Neighbor topology.ASN
	Class    RouteClass
	Ingress  IngressID
	Prepend  int
}

// TieBreaker chooses among routes that are tied on (class, path length).
// It returns the index of the chosen candidate. The candidates slice is
// sorted deterministically before the call, so implementations may use
// any stable rule (e.g., hidden per-AS preferences in netsim, or lowest
// ingress ID for a deterministic default).
type TieBreaker func(as topology.ASN, candidates []Route) int

// MinIngressTieBreaker picks the candidate with the lowest ingress ID,
// then lowest via ASN: a deterministic default.
func MinIngressTieBreaker(_ topology.ASN, candidates []Route) int {
	best := 0
	for i := 1; i < len(candidates); i++ {
		c, b := candidates[i], candidates[best]
		if c.Ingress < b.Ingress || (c.Ingress == b.Ingress && c.Via < b.Via) {
			best = i
		}
	}
	return best
}

// Propagate computes the route every AS selects for one prefix announced
// via the given injections, honoring valley-free export rules:
//
//   - customer-learned routes are exported to providers, peers, and
//     customers;
//   - peer-learned and provider-learned routes are exported only to
//     customers.
//
// Selection is class-first, then shortest path, then the tie-breaker.
// The returned map contains an entry for every AS that has any route.
//
// The implementation runs the classic three-phase BFS (up the customer
// hierarchy, across one peer hop, down to customers), which yields the
// same result as iterating the BGP decision process to convergence on a
// policy-annotated graph.
func Propagate(g *topology.Graph, injections []Injection, tb TieBreaker) (map[topology.ASN]Route, error) {
	if tb == nil {
		tb = MinIngressTieBreaker
	}
	for _, inj := range injections {
		if !g.Has(inj.Neighbor) {
			return nil, fmt.Errorf("bgp: injection neighbor %v not in topology", inj.Neighbor)
		}
		if inj.Ingress < 0 {
			return nil, fmt.Errorf("bgp: invalid ingress id %d", inj.Ingress)
		}
		if inj.Prepend < 0 || inj.Prepend > 16 {
			return nil, fmt.Errorf("bgp: prepend %d out of range [0,16]", inj.Prepend)
		}
	}

	selected := make(map[topology.ASN]Route)

	settle := func(as topology.ASN, cands []Route) Route {
		// Deterministic candidate order so tie-breakers see a stable view.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Ingress != cands[j].Ingress {
				return cands[i].Ingress < cands[j].Ingress
			}
			return cands[i].Via < cands[j].Via
		})
		r := cands[tb(as, cands)]
		selected[as] = r
		return r
	}

	// --- Phase 1: customer routes propagate up provider chains.
	// Level-synchronous BFS keyed by path length (prepending makes
	// starting lengths differ across injections).
	levels := make(map[int]map[topology.ASN][]Route)
	addLevel := func(l int, as topology.ASN, r Route) {
		m := levels[l]
		if m == nil {
			m = make(map[topology.ASN][]Route)
			levels[l] = m
		}
		m[as] = append(m[as], r)
	}
	maxLevel := 0
	for _, inj := range injections {
		if inj.Class != ClassCustomer {
			continue
		}
		l := 1 + inj.Prepend
		addLevel(l, inj.Neighbor, Route{
			Ingress: inj.Ingress, PathLen: l, Class: ClassCustomer, Via: inj.Neighbor,
		})
		if l > maxLevel {
			maxLevel = l
		}
	}
	for l := 1; l <= maxLevel; l++ {
		m := levels[l]
		if m == nil {
			continue
		}
		// Settle this level in deterministic ASN order.
		for _, as := range sortedKeys(m) {
			if _, done := selected[as]; done {
				continue
			}
			r := settle(as, m[as])
			// Export customer route to providers (stay in phase 1).
			for _, p := range g.AS(as).Providers {
				if _, done := selected[p]; !done {
					addLevel(r.PathLen+1, p, Route{
						Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassCustomer, Via: as,
					})
					if r.PathLen+1 > maxLevel {
						maxLevel = r.PathLen + 1
					}
				}
			}
		}
		delete(levels, l)
	}

	// --- Phase 2: one hop across peer links.
	// Sources: all ASes settled with a customer route, plus direct peer
	// injections.
	peerCands := make(map[topology.ASN][]Route)
	for _, inj := range injections {
		if inj.Class != ClassPeer {
			continue
		}
		if _, done := selected[inj.Neighbor]; done {
			continue
		}
		peerCands[inj.Neighbor] = append(peerCands[inj.Neighbor], Route{
			Ingress: inj.Ingress, PathLen: 1 + inj.Prepend, Class: ClassPeer, Via: inj.Neighbor,
		})
	}
	for _, as := range sortedKeys(selected) {
		r := selected[as]
		if r.Class != ClassCustomer {
			continue
		}
		for _, p := range g.AS(as).Peers {
			if _, done := selected[p]; !done {
				peerCands[p] = append(peerCands[p], Route{
					Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassPeer, Via: as,
				})
			}
		}
	}
	// Settle peer routes by shortest path length.
	settleByLen(peerCands, selected, settle)

	// --- Phase 3: routes propagate down provider→customer edges.
	// Dijkstra-like by path length; sources are all settled ASes plus
	// provider-class injections.
	down := make(map[topology.ASN][]Route)
	for _, inj := range injections {
		if inj.Class != ClassProvider {
			continue
		}
		if _, done := selected[inj.Neighbor]; done {
			continue
		}
		down[inj.Neighbor] = append(down[inj.Neighbor], Route{
			Ingress: inj.Ingress, PathLen: 1 + inj.Prepend, Class: ClassProvider, Via: inj.Neighbor,
		})
	}
	// Frontier: settled ASes exporting to their customers.
	frontier := sortedKeys(selected)
	for _, as := range frontier {
		r := selected[as]
		for _, c := range g.AS(as).Customers {
			if _, done := selected[c]; !done {
				down[c] = append(down[c], Route{
					Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassProvider, Via: as,
				})
			}
		}
	}
	// Iteratively settle the shortest unsettled candidates and export
	// further down.
	for len(down) > 0 {
		// Find minimum pending path length.
		minLen := -1
		for _, cands := range down {
			for _, c := range cands {
				if minLen == -1 || c.PathLen < minLen {
					minLen = c.PathLen
				}
			}
		}
		next := make(map[topology.ASN][]Route)
		for _, as := range sortedKeys(down) {
			cands := down[as]
			if _, done := selected[as]; done {
				continue
			}
			var atMin []Route
			var later []Route
			for _, c := range cands {
				if c.PathLen == minLen {
					atMin = append(atMin, c)
				} else {
					later = append(later, c)
				}
			}
			if len(atMin) == 0 {
				next[as] = later
				continue
			}
			r := settle(as, atMin)
			for _, cu := range g.AS(as).Customers {
				if _, done := selected[cu]; !done {
					next[cu] = append(next[cu], Route{
						Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassProvider, Via: as,
					})
				}
			}
		}
		down = next
	}

	return selected, nil
}

// settleByLen settles candidates class-tied routes by increasing path
// length (peer phase helper). No further export happens here.
func settleByLen(cands map[topology.ASN][]Route, selected map[topology.ASN]Route, settle func(topology.ASN, []Route) Route) {
	for _, as := range sortedKeys(cands) {
		if _, done := selected[as]; done {
			continue
		}
		cs := cands[as]
		minLen := cs[0].PathLen
		for _, c := range cs[1:] {
			if c.PathLen < minLen {
				minLen = c.PathLen
			}
		}
		var atMin []Route
		for _, c := range cs {
			if c.PathLen == minLen {
				atMin = append(atMin, c)
			}
		}
		settle(as, atMin)
	}
}

func sortedKeys[V any](m map[topology.ASN]V) []topology.ASN {
	out := make([]topology.ASN, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReachableIngresses computes, for one AS, the set of ingresses it could
// possibly use across ALL policy-compliant paths (not just the selected
// one): for each injection, the AS can reach that ingress if a valley-
// free path exists from the AS to the injection neighbor. This is the
// "all policy-compliant ingresses" set of §3.1 and §5.2.4, used both for
// modeling (Eq. 2's expectation) and for path-diversity counting.
//
// A valley-free path from source AS s to neighbor n (then into the cloud)
// exists iff: n is reachable from s by an up*(peer?)down* walk. We compute
// it per injection by checking: (a) s is in the customer cone of n
// (pure down from n = pure up from s), or (b) s can go up to some AS x
// that peers with an AS y that has n in its customer cone, or (c) s can
// go up to an AS that has n in its customer cone.
func ReachableIngresses(g *topology.Graph, src topology.ASN, injections []Injection) map[IngressID]bool {
	out := make(map[IngressID]bool)
	if !g.Has(src) {
		return out
	}
	// upSet: src and every AS reachable from src following provider links.
	upSet := make(map[topology.ASN]bool)
	stack := []topology.ASN{src}
	upSet[src] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.AS(n).Providers {
			if !upSet[p] {
				upSet[p] = true
				stack = append(stack, p)
			}
		}
	}
	// peerSet: ASes adjacent via one peer hop from any AS in upSet.
	peerSet := make(map[topology.ASN]bool)
	for x := range upSet {
		for _, p := range g.AS(x).Peers {
			peerSet[p] = true
		}
	}

	for _, inj := range injections {
		if out[inj.Ingress] {
			continue
		}
		n := inj.Neighbor
		// The traffic direction is src -> n -> cloud. Valley-free from
		// src: up through providers, optionally one peer hop, then down
		// through customers to n... but n must then carry the traffic to
		// the cloud, which it will (it learned the route per its class).
		// However, export rules constrain which ASes ever HEAR the route:
		//   - customer-class injections (n is cloud's transit provider)
		//     propagate everywhere;
		//   - peer/provider-class injections propagate only down n's
		//     customer cone.
		switch inj.Class {
		case ClassCustomer:
			// Route is exported up from n, across peers, and down: any AS
			// with a valley-free walk to n can use it. That walk exists
			// iff n in upSet (src goes straight up to n), n in peerSet
			// (up then one peer hop), or n's cone intersects upSet/peerSet
			// (up, maybe peer, then down into n).
			if upSet[n] || peerSet[n] {
				out[inj.Ingress] = true
				continue
			}
			if coneIntersects(g, n, upSet, peerSet) {
				out[inj.Ingress] = true
			}
		default:
			// Peer- and provider-class routes are exported only to
			// customers, so the route is heard exactly by n and n's
			// customer cone. (Cone membership is transitive, so "src's
			// provider chain enters the cone" is already equivalent to
			// src being in the cone.)
			if g.InCone(n, src) {
				out[inj.Ingress] = true
			}
		}
	}
	return out
}

// coneIntersects reports whether some walk top x in upSet∪peerSet has n
// in its customer cone, i.e., the valley-free walk can descend from x to
// n. Equivalently: some transitive provider of n is in upSet∪peerSet, so
// we BFS up from n through provider links and test set membership.
func coneIntersects(g *topology.Graph, n topology.ASN, upSet, peerSet map[topology.ASN]bool) bool {
	seen := map[topology.ASN]bool{n: true}
	queue := []topology.ASN{n}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if upSet[cur] || peerSet[cur] {
			return true
		}
		for _, p := range g.AS(cur).Providers {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return false
}
