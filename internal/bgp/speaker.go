package bgp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Speaker is a minimal BGP-4 speaker over a single TCP connection. It
// performs the OPEN exchange, then runs keepalive and update processing
// until the connection closes or Close is called. painterd uses Speakers
// to install advertisement configurations at PoP route servers; the
// Fig. 10 harness uses them to observe withdrawal/convergence churn.
//
// The state machine is intentionally simplified relative to RFC 4271:
// Idle → OpenSent → Established, with no Connect/Active retry logic
// (callers own dialing/retrying).
type Speaker struct {
	conn net.Conn
	bw   *bufio.Writer

	localAS  uint16
	bgpID    uint32
	holdTime time.Duration

	// OnUpdate is invoked for every received UPDATE. Set before Run.
	OnUpdate func(Update)

	mu       sync.Mutex
	writeErr error
	closed   bool

	// PeerOpen is the OPEN received from the peer, valid after Handshake.
	PeerOpen Open
}

// NewSpeaker wraps an established TCP connection.
func NewSpeaker(conn net.Conn, localAS uint16, bgpID uint32, holdTime time.Duration) *Speaker {
	return &Speaker{
		conn:     conn,
		bw:       bufio.NewWriter(conn),
		localAS:  localAS,
		bgpID:    bgpID,
		holdTime: holdTime,
	}
}

// Handshake exchanges OPEN messages and the initial KEEPALIVEs. OPENs
// are exchanged simultaneously (both sides send while reading), matching
// BGP collision behaviour and avoiding deadlock on unbuffered transports.
func (s *Speaker) Handshake() error {
	open := Open{Version: 4, AS: s.localAS, HoldTime: uint16(s.holdTime / time.Second), BGPID: s.bgpID}
	sendErr := make(chan error, 1)
	go func() {
		if err := s.send(open.Marshal()); err != nil {
			sendErr <- err
			return
		}
		sendErr <- s.send(Keepalive())
	}()

	h, body, err := s.readMessage()
	if err != nil {
		return fmt.Errorf("bgp: read OPEN: %w", err)
	}
	if h.Type != MsgOpen {
		return fmt.Errorf("bgp: expected OPEN, got %v", h.Type)
	}
	peer, err := ParseOpen(body)
	if err != nil {
		return err
	}
	s.PeerOpen = peer
	h, _, err = s.readMessage()
	if err != nil {
		return fmt.Errorf("bgp: read initial KEEPALIVE: %w", err)
	}
	if h.Type != MsgKeepalive {
		return fmt.Errorf("bgp: expected KEEPALIVE, got %v", h.Type)
	}
	if err := <-sendErr; err != nil {
		return fmt.Errorf("bgp: send OPEN/KEEPALIVE: %w", err)
	}
	return nil
}

// Run processes incoming messages until the connection closes. It sends
// keepalives at one third of the hold time. Run returns nil on a clean
// remote close or local Close.
func (s *Speaker) Run() error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		interval := s.holdTime / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := s.send(Keepalive()); err != nil {
					return
				}
			}
		}
	}()

	for {
		if s.holdTime > 0 {
			_ = s.conn.SetReadDeadline(time.Now().Add(s.holdTime))
		}
		h, body, err := s.readMessage()
		if err != nil {
			if errors.Is(err, io.EOF) || s.isClosed() {
				return nil
			}
			return err
		}
		switch h.Type {
		case MsgKeepalive:
		case MsgUpdate:
			u, err := ParseUpdate(body)
			if err != nil {
				return err
			}
			if s.OnUpdate != nil {
				s.OnUpdate(u)
			}
		case MsgNotification:
			n, _ := ParseNotification(body)
			return fmt.Errorf("bgp: peer sent NOTIFICATION code=%d subcode=%d", n.Code, n.Subcode)
		default:
			return fmt.Errorf("bgp: unexpected message %v", h.Type)
		}
	}
}

// SendUpdate serializes and sends an UPDATE.
func (s *Speaker) SendUpdate(u Update) error {
	b, err := u.Marshal()
	if err != nil {
		return err
	}
	return s.send(b)
}

// Close sends a CEASE notification (best effort) and closes the
// connection.
func (s *Speaker) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Best-effort CEASE: bound the write so Close never blocks on a
	// peer that stopped reading.
	_ = s.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
	_, _ = s.bw.Write(Notification{Code: NotifCease}.Marshal())
	_ = s.bw.Flush()
	s.mu.Unlock()
	return s.conn.Close()
}

func (s *Speaker) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Speaker) send(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writeErr != nil {
		return s.writeErr
	}
	if s.closed {
		return net.ErrClosed
	}
	if _, err := s.bw.Write(b); err != nil {
		s.writeErr = err
		return err
	}
	if err := s.bw.Flush(); err != nil {
		s.writeErr = err
		return err
	}
	return nil
}

// readMessage reads one complete framed message.
func (s *Speaker) readMessage() (Header, []byte, error) {
	var hb [headerLen]byte
	if _, err := io.ReadFull(s.conn, hb[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(hb[:])
	if err != nil {
		return Header{}, nil, err
	}
	body := make([]byte, int(h.Len)-headerLen)
	if _, err := io.ReadFull(s.conn, body); err != nil {
		return Header{}, nil, err
	}
	return h, body, nil
}
