package bgp

import (
	"net/netip"
	"sync"
	"testing"
)

func entry(peer PeerID, prefix string, lp uint32, path ...uint16) RIBEntry {
	return RIBEntry{
		Peer:      peer,
		Prefix:    netip.MustParsePrefix(prefix),
		ASPath:    path,
		NextHop:   netip.MustParseAddr("192.0.2.1"),
		LocalPref: lp,
	}
}

func TestRIBDecisionLocalPref(t *testing.T) {
	r := NewRIB(nil)
	r.Learn(entry(1, "10.0.0.0/24", 100, 65001))
	r.Learn(entry(2, "10.0.0.0/24", 200, 65001, 65002, 65003))
	best, ok := r.Best(netip.MustParsePrefix("10.0.0.0/24"))
	if !ok || best.Peer != 2 {
		t.Errorf("best = %+v, want peer 2 (higher local pref despite longer path)", best)
	}
}

func TestRIBDecisionPathLength(t *testing.T) {
	r := NewRIB(nil)
	r.Learn(entry(1, "10.0.0.0/24", 100, 65001, 65002))
	r.Learn(entry(2, "10.0.0.0/24", 100, 65001))
	best, _ := r.Best(netip.MustParsePrefix("10.0.0.0/24"))
	if best.Peer != 2 {
		t.Errorf("best = %+v, want peer 2 (shorter path)", best)
	}
}

func TestRIBDecisionTiebreakPeerID(t *testing.T) {
	r := NewRIB(nil)
	r.Learn(entry(7, "10.0.0.0/24", 100, 65001))
	r.Learn(entry(3, "10.0.0.0/24", 100, 65002))
	best, _ := r.Best(netip.MustParsePrefix("10.0.0.0/24"))
	if best.Peer != 3 {
		t.Errorf("best = %+v, want peer 3 (lowest peer id)", best)
	}
}

func TestRIBWithdraw(t *testing.T) {
	p := netip.MustParsePrefix("10.0.0.0/24")
	r := NewRIB(nil)
	r.Learn(entry(1, "10.0.0.0/24", 100, 65001))
	r.Learn(entry(2, "10.0.0.0/24", 200, 65002))
	r.Withdraw(2, p)
	best, ok := r.Best(p)
	if !ok || best.Peer != 1 {
		t.Errorf("after withdraw best = %+v ok=%v, want peer 1", best, ok)
	}
	r.Withdraw(1, p)
	if _, ok := r.Best(p); ok {
		t.Error("prefix should vanish after all withdrawals")
	}
	// Withdrawing an absent route is a no-op.
	r.Withdraw(9, p)
}

func TestRIBDropPeer(t *testing.T) {
	r := NewRIB(nil)
	r.Learn(entry(1, "10.0.0.0/24", 100))
	r.Learn(entry(1, "10.1.0.0/24", 100))
	r.Learn(entry(2, "10.0.0.0/24", 50))
	r.DropPeer(1)
	if r.Size() != 1 {
		t.Errorf("size = %d after DropPeer, want 1", r.Size())
	}
	best, ok := r.Best(netip.MustParsePrefix("10.0.0.0/24"))
	if !ok || best.Peer != 2 {
		t.Errorf("best = %+v, want peer 2", best)
	}
}

func TestRIBOnChangeFires(t *testing.T) {
	var events []string
	r := NewRIB(func(p netip.Prefix, best *RIBEntry) {
		if best == nil {
			events = append(events, "del "+p.String())
		} else {
			events = append(events, "set "+p.String())
		}
	})
	p := netip.MustParsePrefix("10.0.0.0/24")
	r.Learn(entry(1, "10.0.0.0/24", 100))       // set
	r.Learn(entry(1, "10.0.0.0/24", 100))       // identical: no event
	r.Learn(entry(2, "10.0.0.0/24", 200))       // set (better)
	r.Learn(entry(3, "10.0.0.0/24", 50, 65000)) // worse: no event
	r.Withdraw(2, p)                            // set (falls back)
	r.DropPeer(1)                               // set (peer 3 remains)
	r.Withdraw(3, p)                            // del
	want := []string{"set 10.0.0.0/24", "set 10.0.0.0/24", "set 10.0.0.0/24", "set 10.0.0.0/24", "del 10.0.0.0/24"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
}

func TestRIBPrefixesSorted(t *testing.T) {
	r := NewRIB(nil)
	r.Learn(entry(1, "10.2.0.0/24", 100))
	r.Learn(entry(1, "10.1.0.0/24", 100))
	r.Learn(entry(1, "10.1.0.0/16", 100))
	ps := r.Prefixes()
	if len(ps) != 3 {
		t.Fatalf("got %d prefixes", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		a, b := ps[i-1], ps[i]
		if b.Addr().Less(a.Addr()) {
			t.Errorf("prefixes not sorted: %v before %v", a, b)
		}
	}
}

func TestRIBConcurrentAccess(t *testing.T) {
	r := NewRIB(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := entry(PeerID(w), "10.0.0.0/24", uint32(i))
				r.Learn(e)
				r.Best(e.Prefix)
				r.Size()
				if i%10 == 0 {
					r.Withdraw(PeerID(w), e.Prefix)
				}
			}
		}(w)
	}
	wg.Wait()
}
