package bgp

import (
	"testing"

	"painter/internal/stats"
	"painter/internal/topology"
)

// referencePropagate is a brute-force implementation of policy routing:
// it iterates the BGP decision process to a fixpoint, re-evaluating
// every AS against its neighbors' current selections under valley-free
// export rules. It is O(iterations × E) and exists purely to validate
// the three-phase Propagate against first principles on small graphs.
func referencePropagate(g *topology.Graph, injections []Injection, tb TieBreaker) map[topology.ASN]Route {
	if tb == nil {
		tb = MinIngressTieBreaker
	}
	// Seed routes at injection neighbors.
	seed := make(map[topology.ASN][]Route)
	for _, inj := range injections {
		seed[inj.Neighbor] = append(seed[inj.Neighbor], Route{
			Ingress: inj.Ingress, PathLen: 1 + inj.Prepend, Class: inj.Class, Via: inj.Neighbor,
		})
	}
	selected := make(map[topology.ASN]Route)

	// exportsTo reports whether an AS that selected route r re-exports it
	// to a neighbor with relationship rel (from the AS's view).
	exportsTo := func(r Route, rel topology.Relationship) bool {
		if r.Class == ClassCustomer {
			return true // customer routes go to everyone
		}
		// peer/provider routes go to customers only
		return rel == topology.RelCustomer
	}

	for iter := 0; iter < 4*g.Len()+8; iter++ {
		changed := false
		for _, as := range g.ASNs() {
			// Gather candidates: direct injections plus neighbor exports.
			var cands []Route
			cands = append(cands, seed[as]...)
			a := g.AS(as)
			for _, nb := range a.Neighbors() {
				nr, ok := selected[nb]
				if !ok {
					continue
				}
				relNbToUs := g.Rel(nb, as)
				if !exportsTo(nr, relNbToUs) {
					continue
				}
				// Class at the receiver is our relationship to nb.
				var class RouteClass
				switch g.Rel(as, nb) {
				case topology.RelCustomer:
					class = ClassCustomer
				case topology.RelPeer:
					class = ClassPeer
				case topology.RelProvider:
					class = ClassProvider
				default:
					continue
				}
				cands = append(cands, Route{
					Ingress: nr.Ingress, PathLen: nr.PathLen + 1, Class: class, Via: nb,
				})
			}
			if len(cands) == 0 {
				continue
			}
			// Decision process: class, then length, then tie-break over
			// the co-best set (sorted deterministically like Propagate).
			best := cands[0]
			for _, c := range cands[1:] {
				if c.Better(best) {
					best = c
				}
			}
			var tied []Route
			for _, c := range cands {
				if c.Class == best.Class && c.PathLen == best.PathLen {
					tied = append(tied, c)
				}
			}
			sortRoutes(tied)
			chosen := tied[tb(as, tied)]
			if cur, ok := selected[as]; !ok || cur != chosen {
				selected[as] = chosen
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return selected
}

func sortRoutes(rs []Route) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if b.Ingress < a.Ingress || (b.Ingress == a.Ingress && b.Via < a.Via) {
				rs[j-1], rs[j] = b, a
			} else {
				break
			}
		}
	}
}

// TestPropagateMatchesReference cross-validates Propagate against the
// fixpoint reference on many random topologies and injection sets.
func TestPropagateMatchesReference(t *testing.T) {
	rng := stats.NewRand(99)
	for trial := 0; trial < 30; trial++ {
		g, err := topology.Generate(topology.GenConfig{
			Seed:              int64(1000 + trial),
			Tier1:             2 + rng.Intn(3),
			Tier2:             4 + rng.Intn(10),
			Stubs:             10 + rng.Intn(40),
			MeanStubProviders: 1.5 + rng.Float64(),
			Tier2PeerProb:     rng.Float64() * 0.6,
			EnterpriseFrac:    0.3,
			ContentFrac:       0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Random injections at transit ASes.
		var transit []topology.ASN
		for _, n := range g.ASNs() {
			if g.AS(n).Kind == topology.KindTransit {
				transit = append(transit, n)
			}
		}
		nInj := 1 + rng.Intn(5)
		var inj []Injection
		for i := 0; i < nInj; i++ {
			class := ClassPeer
			if rng.Intn(2) == 0 {
				class = ClassCustomer
			}
			inj = append(inj, Injection{
				Neighbor: transit[rng.Intn(len(transit))],
				Class:    class,
				Ingress:  IngressID(i),
				Prepend:  rng.Intn(3),
			})
		}
		got, err := Propagate(g, inj, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := referencePropagate(g, inj, nil)

		if len(got) != len(want) {
			t.Fatalf("trial %d: coverage differs: propagate=%d reference=%d (inj=%+v)",
				trial, len(got), len(want), inj)
		}
		for as, wr := range want {
			gr, ok := got[as]
			if !ok {
				t.Fatalf("trial %d: AS %v missing from Propagate", trial, as)
			}
			// Class and path length must agree exactly; the selected
			// ingress must agree because both use the same tie-breaker
			// over the same sorted co-best set.
			if gr.Class != wr.Class || gr.PathLen != wr.PathLen || gr.Ingress != wr.Ingress {
				t.Fatalf("trial %d: AS %v differs: propagate=%+v reference=%+v (inj=%+v)",
					trial, as, gr, wr, inj)
			}
		}
	}
}
