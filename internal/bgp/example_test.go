package bgp_test

import (
	"fmt"
	"net/netip"

	"painter/internal/bgp"
	"painter/internal/topology"
)

// ExamplePropagate shows how an advertisement injected at two peerings
// propagates through a small valley-free topology.
func ExamplePropagate() {
	g := topology.NewGraph()
	for _, as := range []struct {
		n    topology.ASN
		tier topology.Tier
	}{
		{1, topology.TierOne}, {10, topology.TierTwo}, {11, topology.TierTwo}, {100, topology.TierStub},
	} {
		_ = g.AddAS(&topology.AS{ASN: as.n, Tier: as.tier})
	}
	_ = g.Link(1, 10, topology.RelCustomer)
	_ = g.Link(1, 11, topology.RelCustomer)
	_ = g.Link(10, 100, topology.RelCustomer)
	_ = g.Link(11, 100, topology.RelCustomer)

	// The cloud buys transit from AS 1 (ingress 0) and peers with AS 11
	// (ingress 1). AS 100 multihomes to 10 and 11; the direct peer route
	// via 11 is shorter (2 hops) than transit via 10 (3 hops).
	sel, err := bgp.Propagate(g, []bgp.Injection{
		{Neighbor: 1, Class: bgp.ClassCustomer, Ingress: 0},
		{Neighbor: 11, Class: bgp.ClassPeer, Ingress: 1},
	}, nil)
	if err != nil {
		panic(err)
	}
	r := sel[100]
	fmt.Printf("AS100 ingress=%d class=%v pathlen=%d\n", r.Ingress, r.Class, r.PathLen)
	// Output: AS100 ingress=1 class=provider pathlen=2
}

// ExampleUpdate round-trips a BGP UPDATE through the wire codec.
func ExampleUpdate() {
	u := bgp.Update{
		Origin:  bgp.OriginIGP,
		ASPath:  []uint16{64500, 65001},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
	}
	wire, err := u.Marshal()
	if err != nil {
		panic(err)
	}
	parsed, err := bgp.ParseUpdate(wire[19:]) // skip the 19-byte header
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v via AS path %v\n", parsed.NLRI[0], parsed.ASPath)
	// Output: 198.51.100.0/24 via AS path [64500 65001]
}
