package bgp

import (
	"fmt"
	"sort"

	"painter/internal/topology"
)

// PropagateReference is the original map-based implementation of
// Propagate, retained verbatim as the differential-testing oracle for
// the dense engine. It runs the same three-phase BFS (up the customer
// hierarchy, across one peer hop, down to customers) using per-level
// maps and per-level key sorts; Propagate must select exactly the same
// route for every AS under any tie-breaker.
func PropagateReference(g *topology.Graph, injections []Injection, tb TieBreaker) (map[topology.ASN]Route, error) {
	if tb == nil {
		tb = MinIngressTieBreaker
	}
	for _, inj := range injections {
		if !g.Has(inj.Neighbor) {
			return nil, fmt.Errorf("bgp: injection neighbor %v not in topology", inj.Neighbor)
		}
		if inj.Ingress < 0 {
			return nil, fmt.Errorf("bgp: invalid ingress id %d", inj.Ingress)
		}
		if inj.Prepend < 0 || inj.Prepend > 16 {
			return nil, fmt.Errorf("bgp: prepend %d out of range [0,16]", inj.Prepend)
		}
	}

	selected := make(map[topology.ASN]Route)

	settle := func(as topology.ASN, cands []Route) Route {
		// Deterministic candidate order so tie-breakers see a stable view.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Ingress != cands[j].Ingress {
				return cands[i].Ingress < cands[j].Ingress
			}
			return cands[i].Via < cands[j].Via
		})
		r := cands[tb(as, cands)]
		selected[as] = r
		return r
	}

	// --- Phase 1: customer routes propagate up provider chains.
	// Level-synchronous BFS keyed by path length (prepending makes
	// starting lengths differ across injections).
	levels := make(map[int]map[topology.ASN][]Route)
	addLevel := func(l int, as topology.ASN, r Route) {
		m := levels[l]
		if m == nil {
			m = make(map[topology.ASN][]Route)
			levels[l] = m
		}
		m[as] = append(m[as], r)
	}
	maxLevel := 0
	for _, inj := range injections {
		if inj.Class != ClassCustomer {
			continue
		}
		l := 1 + inj.Prepend
		addLevel(l, inj.Neighbor, Route{
			Ingress: inj.Ingress, PathLen: l, Class: ClassCustomer, Via: inj.Neighbor,
		})
		if l > maxLevel {
			maxLevel = l
		}
	}
	for l := 1; l <= maxLevel; l++ {
		m := levels[l]
		if m == nil {
			continue
		}
		// Settle this level in deterministic ASN order.
		for _, as := range sortedKeys(m) {
			if _, done := selected[as]; done {
				continue
			}
			r := settle(as, m[as])
			// Export customer route to providers (stay in phase 1).
			for _, p := range g.AS(as).Providers {
				if _, done := selected[p]; !done {
					addLevel(r.PathLen+1, p, Route{
						Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassCustomer, Via: as,
					})
					if r.PathLen+1 > maxLevel {
						maxLevel = r.PathLen + 1
					}
				}
			}
		}
		delete(levels, l)
	}

	// --- Phase 2: one hop across peer links.
	// Sources: all ASes settled with a customer route, plus direct peer
	// injections.
	peerCands := make(map[topology.ASN][]Route)
	for _, inj := range injections {
		if inj.Class != ClassPeer {
			continue
		}
		if _, done := selected[inj.Neighbor]; done {
			continue
		}
		peerCands[inj.Neighbor] = append(peerCands[inj.Neighbor], Route{
			Ingress: inj.Ingress, PathLen: 1 + inj.Prepend, Class: ClassPeer, Via: inj.Neighbor,
		})
	}
	for _, as := range sortedKeys(selected) {
		r := selected[as]
		if r.Class != ClassCustomer {
			continue
		}
		for _, p := range g.AS(as).Peers {
			if _, done := selected[p]; !done {
				peerCands[p] = append(peerCands[p], Route{
					Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassPeer, Via: as,
				})
			}
		}
	}
	// Settle peer routes by shortest path length.
	settleByLen(peerCands, selected, settle)

	// --- Phase 3: routes propagate down provider→customer edges.
	// Dijkstra-like by path length; sources are all settled ASes plus
	// provider-class injections.
	down := make(map[topology.ASN][]Route)
	for _, inj := range injections {
		if inj.Class != ClassProvider {
			continue
		}
		if _, done := selected[inj.Neighbor]; done {
			continue
		}
		down[inj.Neighbor] = append(down[inj.Neighbor], Route{
			Ingress: inj.Ingress, PathLen: 1 + inj.Prepend, Class: ClassProvider, Via: inj.Neighbor,
		})
	}
	// Frontier: settled ASes exporting to their customers.
	frontier := sortedKeys(selected)
	for _, as := range frontier {
		r := selected[as]
		for _, c := range g.AS(as).Customers {
			if _, done := selected[c]; !done {
				down[c] = append(down[c], Route{
					Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassProvider, Via: as,
				})
			}
		}
	}
	// Iteratively settle the shortest unsettled candidates and export
	// further down.
	for len(down) > 0 {
		// Find minimum pending path length.
		minLen := -1
		for _, cands := range down {
			for _, c := range cands {
				if minLen == -1 || c.PathLen < minLen {
					minLen = c.PathLen
				}
			}
		}
		next := make(map[topology.ASN][]Route)
		for _, as := range sortedKeys(down) {
			cands := down[as]
			if _, done := selected[as]; done {
				continue
			}
			var atMin []Route
			var later []Route
			for _, c := range cands {
				if c.PathLen == minLen {
					atMin = append(atMin, c)
				} else {
					later = append(later, c)
				}
			}
			if len(atMin) == 0 {
				// Merge with any exports already appended by ASes settled
				// earlier in this round; assigning would drop them based
				// on ASN processing order, losing equal-length candidates.
				next[as] = append(next[as], later...)
				continue
			}
			r := settle(as, atMin)
			for _, cu := range g.AS(as).Customers {
				if _, done := selected[cu]; !done {
					next[cu] = append(next[cu], Route{
						Ingress: r.Ingress, PathLen: r.PathLen + 1, Class: ClassProvider, Via: as,
					})
				}
			}
		}
		down = next
	}

	return selected, nil
}

// settleByLen settles candidates class-tied routes by increasing path
// length (peer phase helper). No further export happens here.
func settleByLen(cands map[topology.ASN][]Route, selected map[topology.ASN]Route, settle func(topology.ASN, []Route) Route) {
	for _, as := range sortedKeys(cands) {
		if _, done := selected[as]; done {
			continue
		}
		cs := cands[as]
		minLen := cs[0].PathLen
		for _, c := range cs[1:] {
			if c.PathLen < minLen {
				minLen = c.PathLen
			}
		}
		var atMin []Route
		for _, c := range cs {
			if c.PathLen == minLen {
				atMin = append(atMin, c)
			}
		}
		settle(as, atMin)
	}
}

func sortedKeys[V any](m map[topology.ASN]V) []topology.ASN {
	out := make([]topology.ASN, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
