package bgp

import (
	"math"
	"net/netip"
	"sync"
	"time"
)

// Route-flap damping (RFC 2439). The Advertisement Orchestrator must
// pace its advertise→measure→learn iterations because ISPs penalize
// prefixes that flap: each withdrawal/re-announcement adds a penalty
// that decays exponentially; past the suppress threshold the prefix is
// ignored until the penalty decays below the reuse threshold. The
// Damper lets the orchestrator (and tests) check how fast configuration
// changes can safely be pushed.

// DampingConfig holds the RFC 2439 parameters (Cisco-like defaults).
type DampingConfig struct {
	// WithdrawPenalty is added per withdrawal; AttrPenalty per attribute
	// change (re-announcement with different path).
	WithdrawPenalty float64
	AttrPenalty     float64
	// SuppressThreshold starts suppression; ReuseThreshold ends it.
	SuppressThreshold float64
	ReuseThreshold    float64
	// HalfLife is the penalty's exponential decay half-life.
	HalfLife time.Duration
	// MaxSuppress bounds how long a prefix stays suppressed.
	MaxSuppress time.Duration
}

// DefaultDampingConfig returns commonly deployed values.
func DefaultDampingConfig() DampingConfig {
	return DampingConfig{
		WithdrawPenalty:   1000,
		AttrPenalty:       500,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          15 * time.Minute,
		MaxSuppress:       60 * time.Minute,
	}
}

// Damper tracks per-prefix flap penalties. Safe for concurrent use.
type Damper struct {
	cfg DampingConfig

	mu    sync.Mutex
	state map[netip.Prefix]*dampState
	// now allows tests to control time.
	now func() time.Time
}

type dampState struct {
	penalty      float64
	lastUpdated  time.Time
	suppressed   bool
	suppressedAt time.Time
}

// NewDamper creates a Damper. A nil nowFn uses time.Now.
func NewDamper(cfg DampingConfig, nowFn func() time.Time) *Damper {
	if nowFn == nil {
		nowFn = time.Now
	}
	return &Damper{cfg: cfg, state: make(map[netip.Prefix]*dampState), now: nowFn}
}

// decayTo brings the penalty up to date. Caller holds d.mu.
func (d *Damper) decayTo(s *dampState, now time.Time) {
	dt := now.Sub(s.lastUpdated)
	if dt <= 0 || s.penalty == 0 {
		s.lastUpdated = now
		return
	}
	halves := float64(dt) / float64(d.cfg.HalfLife)
	s.penalty *= pow2(-halves)
	if s.penalty < 1 {
		s.penalty = 0
	}
	s.lastUpdated = now
}

// pow2 computes 2^x.
func pow2(x float64) float64 { return math.Exp2(x) }

// OnWithdraw records a withdrawal flap.
func (d *Damper) OnWithdraw(p netip.Prefix) {
	d.flap(p, d.cfg.WithdrawPenalty)
}

// OnAttrChange records a re-announcement with changed attributes.
func (d *Damper) OnAttrChange(p netip.Prefix) {
	d.flap(p, d.cfg.AttrPenalty)
}

func (d *Damper) flap(p netip.Prefix, penalty float64) {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.state[p]
	if s == nil {
		s = &dampState{lastUpdated: now}
		d.state[p] = s
	}
	d.decayTo(s, now)
	s.penalty += penalty
	if !s.suppressed && s.penalty >= d.cfg.SuppressThreshold {
		s.suppressed = true
		s.suppressedAt = now
	}
}

// Suppressed reports whether the prefix is currently suppressed.
func (d *Damper) Suppressed(p netip.Prefix) bool {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.state[p]
	if s == nil {
		return false
	}
	d.decayTo(s, now)
	if s.suppressed {
		if s.penalty <= d.cfg.ReuseThreshold || now.Sub(s.suppressedAt) >= d.cfg.MaxSuppress {
			s.suppressed = false
		}
	}
	return s.suppressed
}

// SuppressedCount returns how many prefixes are currently suppressed
// (after bringing every penalty up to date). Intended for gauges; cost
// is linear in tracked prefixes.
func (d *Damper) SuppressedCount() int {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, s := range d.state {
		d.decayTo(s, now)
		if s.suppressed {
			if s.penalty <= d.cfg.ReuseThreshold || now.Sub(s.suppressedAt) >= d.cfg.MaxSuppress {
				s.suppressed = false
				continue
			}
			n++
		}
	}
	return n
}

// Penalty returns the current (decayed) penalty for a prefix.
func (d *Damper) Penalty(p netip.Prefix) float64 {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.state[p]
	if s == nil {
		return 0
	}
	d.decayTo(s, now)
	return s.penalty
}

// SafeUpdateInterval returns the minimum spacing between attribute-
// changing re-advertisements of one prefix that never triggers
// suppression: the interval at which the steady-state penalty stays
// below the suppress threshold. The Advertisement Orchestrator uses
// this to pace learning iterations (§3.1).
func (d *Damper) SafeUpdateInterval() time.Duration {
	// Steady state of penalty P with decay factor f per interval T and
	// per-flap addition A: P = A / (1 - f), f = 2^(-T/halflife).
	// Require P < SuppressThreshold ⇒ f < 1 - A/S ⇒
	// T > -halflife * log2(1 - A/S).
	ratio := d.cfg.AttrPenalty / d.cfg.SuppressThreshold
	if ratio >= 1 {
		return d.cfg.MaxSuppress
	}
	t := -float64(d.cfg.HalfLife) * log2(1-ratio)
	return time.Duration(t)
}

func log2(x float64) float64 { return math.Log2(x) }
